// Figure 3 — Normalized final TEIL vs the ratio r of single-cell
// displacements to pairwise interchanges.
//
// The paper sweeps r on circuits of ~25 macro cells (A_c = 200) and finds
// a flat minimum: any r in [7, 15] lands within one percent of the best,
// while very small r (interchange-dominated) and very large r
// (displacement-only) are worse. This bench reruns stage 1 over the same
// sweep on the 25-cell synthetic circuit and prints the normalized curve.
#include "place/stage1.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);
  const int trials = cfg.trials > 0 ? cfg.trials : 3;

  std::printf(
      "Figure 3: normalized avg final TEIL vs displacement:interchange "
      "ratio r\n(paper: flat minimum for r in [7,15]; ~25-cell circuits)\n\n");

  const double ratios[] = {1, 2, 4, 7, 10, 15, 20, 30};
  std::vector<double> means;

  // The paper's Figure 3 circuits were pure macro-cell chips (~25 macros);
  // a fixed circuit with varying annealer seeds isolates the r effect.
  CircuitSpec spec = medium_circuit(1);
  spec.custom_fraction = 0.0;
  const Netlist nl = generate_circuit(spec);

  for (const double r : ratios) {
    RunningStats teil;
    for (int t = 0; t < trials; ++t) {
      Stage1Params params;
      params.attempts_per_cell = cfg.paper ? 200 : cfg.ac;
      params.ratio_r = r;
      Stage1Placer placer(nl, params, trial_seed(cfg, 7, t));
      Placement placement(nl);
      teil.add(placer.run(placement).final_teil);
    }
    means.push_back(teil.mean());
  }

  const double best = *std::min_element(means.begin(), means.end());
  Table table({"r", "Avg final TEIL", "Normalized"});
  for (std::size_t i = 0; i < means.size(); ++i)
    table.add_row({Table::num(ratios[i], 0), Table::num(means[i], 0),
                   Table::num(means[i] / best, 3)});
  table.print();
  std::printf(
      "\nShape check: minimum in the r ~ 7..15 plateau; r = 1 "
      "(interchange-heavy) noticeably worse.\n");
  return 0;
}
