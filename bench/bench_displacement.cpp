// Section 3.2.3 — Structured (D_s) vs random (D_r) displacement-point
// selection.
//
// D_s restricts displacement targets to 48 evenly-dispersed lattice points
// inside the range-limiter window. The paper reports D_s gives slightly
// better final TEIL and ~22 % lower residual cell overlap than drawing
// uniformly from all window points (D_r).
#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);
  const int trials = cfg.trials > 0 ? cfg.trials : 8;

  std::printf(
      "Section 3.2.3: D_s (structured) vs D_r (random) displacement "
      "selection\n(paper: D_s slightly better TEIL, ~22%% lower residual "
      "overlap)\n\n");

  // Fixed macro-only circuit; only the annealer seed varies per trial.
  CircuitSpec spec = medium_circuit(31);
  spec.custom_fraction = 0.0;
  const Netlist nl = generate_circuit(spec);

  RunningStats teil[2], overlap[2];
  for (int t = 0; t < trials; ++t) {
    for (int mode = 0; mode < 2; ++mode) {
      Stage1Params params;
      params.attempts_per_cell = cfg.ac;
      params.selector =
          mode == 0 ? PointSelect::kStructured : PointSelect::kRandom;
      // Disable the penalty ramp entirely: the paper has none, and the
      // selector's effect on residual overlap is what this experiment
      // measures — any ramp squeezes the overlap to nothing for both
      // selectors and hides it.
      params.overlap_penalty_growth = 1.0;
      Stage1Placer placer(nl, params, trial_seed(cfg, 59, t));
      Placement placement(nl);
      const Stage1Result r = placer.run(placement);
      // Legalized TEIL: leftover overlap is unpaid wirelength.
      legalize_spread(placement, r.core, 2 * nl.tech().track_separation);
      teil[mode].add(placement.teil());
      overlap[mode].add(static_cast<double>(r.residual_overlap));
    }
  }

  Table table({"Selector", "Avg final TEIL", "Avg residual overlap"});
  table.add_row({"D_s (structured)", Table::num(teil[0].mean(), 0),
                 Table::num(overlap[0].mean(), 0)});
  table.add_row({"D_r (random)", Table::num(teil[1].mean(), 0),
                 Table::num(overlap[1].mean(), 0)});
  table.print();

  const double teil_delta =
      100.0 * (teil[1].mean() - teil[0].mean()) / teil[1].mean();
  const double ov_delta =
      overlap[1].mean() > 0
          ? 100.0 * (overlap[1].mean() - overlap[0].mean()) / overlap[1].mean()
          : 0.0;
  std::printf(
      "\nD_s vs D_r: TEIL better by %.1f%%, residual overlap lower by "
      "%.1f%% (paper: 'slightly' and ~22%%).\n",
      teil_delta, ov_delta);
  return 0;
}
