// Section 3.1.2 — Sensitivity to the overlap-penalty balance eta.
//
// p2 is normalized so that p2*C2 = eta*C1 at T_inf (Eqn 9). The paper
// reports eta ~ 0.5 best, with no degradation until eta drops below 0.25
// or exceeds 1.0. This bench sweeps eta through stage 1 and reports the
// final TEIL and the residual overlap: tiny eta under-penalizes overlap,
// huge eta over-constrains the search.
#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);
  const int trials = cfg.trials > 0 ? cfg.trials : 3;

  std::printf(
      "Section 3.1.2: final TEIL vs eta (p2*C2 = eta*C1 at T_inf)\n"
      "(paper: flat for eta in [0.25, 1.0], degrades outside)\n\n");

  const double etas[] = {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0};
  Table table({"eta", "Avg legalized TEIL", "Norm TEIL",
               "Avg residual overlap"});

  // Fixed macro-only circuit; only the annealer seed varies per trial.
  CircuitSpec spec = medium_circuit(11);
  spec.custom_fraction = 0.0;
  const Netlist nl = generate_circuit(spec);

  std::vector<double> teil_means, ov_means;
  for (const double eta : etas) {
    RunningStats teil, overlap;
    for (int t = 0; t < trials; ++t) {
      Stage1Params params;
      params.attempts_per_cell = cfg.ac;
      params.cost.eta = eta;
      Stage1Placer placer(nl, params, trial_seed(cfg, 31, t));
      Placement placement(nl);
      const Stage1Result r = placer.run(placement);
      // Legalize before measuring: leftover overlap is unpaid wirelength,
      // so comparing raw TEIL across eta would reward weak penalties.
      legalize_spread(placement, r.core, 2 * nl.tech().track_separation);
      teil.add(placement.teil());
      overlap.add(static_cast<double>(r.residual_overlap));
    }
    teil_means.push_back(teil.mean());
    ov_means.push_back(overlap.mean());
  }
  const double best = *std::min_element(teil_means.begin(), teil_means.end());
  for (std::size_t i = 0; i < teil_means.size(); ++i)
    table.add_row({Table::num(etas[i], 2), Table::num(teil_means[i], 0),
                   Table::num(teil_means[i] / best, 3),
                   Table::num(ov_means[i], 0)});
  table.print();
  std::printf(
      "\nShape check: normalized TEIL flat through the middle of the "
      "sweep; extremes (0.05, 4.0) worse in TEIL or overlap.\n");
  return 0;
}
