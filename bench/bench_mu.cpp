// Section 4.3 — The stage-2 window fraction mu.
//
// The placement-refinement anneal starts with a range-limiter window
// opened to the fraction mu of the core span (Eqns 25-28; mu = 0.03 in
// TimberWolfMC). The paper found larger mu equally good in final TEIL but
// slower, and degradation when mu is pushed somewhat below 0.03. This
// bench runs the full flow across a mu sweep, reporting final TEIL, chip
// area and refinement time.
#include <chrono>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);
  const int trials = cfg.trials > 0 ? cfg.trials : 2;

  std::printf(
      "Section 4.3: full-flow quality vs stage-2 window fraction mu\n"
      "(paper: mu = 0.03; larger mu no better but slower, smaller mu "
      "degrades)\n\n");

  const double mus[] = {0.01, 0.02, 0.03, 0.06, 0.12};
  std::vector<double> teils, areas, secs;
  for (const double mu : mus) {
    RunningStats teil, area;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < trials; ++t) {
      const Netlist nl =
          generate_circuit(medium_circuit(static_cast<std::uint64_t>(t) + 51));
      FlowParams fp = flow_params(cfg, trial_seed(cfg, 73, t));
      fp.stage2.mu = mu;
      TimberWolfMC flow(nl, fp);
      Placement placement(nl);
      const FlowResult r = flow.run(placement);
      teil.add(r.final_teil);
      area.add(static_cast<double>(r.final_chip_area));
    }
    const auto stop = std::chrono::steady_clock::now();
    teils.push_back(teil.mean());
    areas.push_back(area.mean());
    secs.push_back(std::chrono::duration<double>(stop - start).count() /
                   trials);
  }

  const double best = *std::min_element(teils.begin(), teils.end());
  Table table({"mu", "Avg final TEIL", "Norm TEIL", "Avg chip area",
               "sec/trial"});
  for (std::size_t i = 0; i < teils.size(); ++i)
    table.add_row({Table::num(mus[i], 2), Table::num(teils[i], 0),
                   Table::num(teils[i] / best, 3), Table::num(areas[i], 0),
                   Table::num(secs[i], 2)});
  table.print();
  std::printf(
      "\nShape check: quality roughly flat from 0.03 up (time rising); "
      "only the smallest mu should lag.\n");
  return 0;
}
