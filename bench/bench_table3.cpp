// Table 3 — Dynamic interconnect-area estimator accuracy.
//
// For each of the nine circuits, the full flow is run for several trials
// and the TEIL and chip area at the end of stage 2 are compared with the
// values at the end of stage 1, expressed as a percentage reduction
// (positive = stage 2 ended smaller). The paper's claim is that both
// changes are small — the dynamic estimator already reserved nearly the
// right interconnect space — with 9-circuit averages of 4.4 % (TEIL) and
// 4.1 % (area).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);

  std::printf(
      "Table 3: TEIL / core-area change from end of stage 1 to end of "
      "stage 2\n(paper: avg TEIL red. 4.4%%, avg area red. 4.1%%; small "
      "values = accurate estimator)\n\n");

  Table table({"Circuit", "Cells", "Nets", "Pins", "Trials",
               "Avg TEIL Red. (%)", "Avg Area Red. (%)"});
  RunningStats all_teil, all_area;

  std::uint64_t salt = 0;
  for (const PaperCircuit& pc : paper_circuits()) {
    ++salt;
    if (!cfg.circuit_enabled(pc.spec.name)) continue;
    const int trials = cfg.trials > 0 ? cfg.trials
                       : cfg.paper    ? pc.trials
                                      : 1;
    const Netlist nl = generate_circuit(pc.spec);

    RunningStats teil_red, area_red;
    for (int t = 0; t < trials; ++t) {
      TimberWolfMC flow(nl, flow_params(cfg, trial_seed(cfg, salt, t)));
      Placement placement(nl);
      const FlowResult r = flow.run(placement);
      teil_red.add(r.teil_change_pct());
      area_red.add(r.area_change_pct());
    }
    all_teil.add(teil_red.mean());
    all_area.add(area_red.mean());
    table.add_row({pc.spec.name, Table::integer(pc.spec.num_cells),
                   Table::integer(pc.spec.num_nets),
                   Table::integer(pc.spec.num_pins), Table::integer(trials),
                   Table::num(teil_red.mean(), 1),
                   Table::num(area_red.mean(), 1)});
  }
  table.add_row({"Avg.", "", "", "", "", Table::num(all_teil.mean(), 1),
                 Table::num(all_area.mean(), 1)});
  table.print();
  std::printf(
      "\nShape check: per-circuit changes within roughly +/-15%% and "
      "single-digit averages indicate the stage-1 estimator left little "
      "for the refinement to correct.\n");
  return 0;
}
