// Tables 1-2 — The cooling schedules, and the resulting temperature
// trajectory.
//
// Not an experiment per se (the tables are configuration), but this bench
// prints both schedules and simulates the stage-1 trajectory from
// T_inf = S_T * 1e5 to the stopping temperature, confirming the paper's
// "approximately 120 temperature values over approximately six decades".
#include "anneal/schedule.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  parse_args(argc, argv);

  std::printf("Table 1 (stage 1 cooling):\n");
  const CoolingSchedule stage1 = CoolingSchedule::stage1();
  Table t1({"For T_old >=", "alpha(T_old)"});
  for (const auto& s : stage1.steps())
    t1.add_row({"S_T * " + Table::num(s.threshold, 0), Table::num(s.alpha, 2)});
  t1.print();

  std::printf("\nTable 2 (stage 2 cooling):\n");
  const CoolingSchedule stage2 = CoolingSchedule::stage2();
  Table t2({"For T_old >=", "alpha(T_old)"});
  for (const auto& s : stage2.steps())
    t2.add_row({"S_T * " + Table::num(s.threshold, 0), Table::num(s.alpha, 2)});
  t2.print();

  // Trajectory simulation (S_T = 1).
  const CoolingSchedule sched = CoolingSchedule::stage1();
  double t = t_infinity(1.0);
  int steps = 0;
  int decade = 6;
  std::printf("\nStage-1 temperature trajectory (S_T = 1):\n");
  while (t > 0.1 && steps < 1000) {
    if (t <= std::pow(10.0, decade)) {
      std::printf("  step %3d: T = %.3g\n", steps, t);
      --decade;
    }
    t = sched.next(t, 1.0);
    ++steps;
  }
  std::printf(
      "\nTotal steps from 1e5 down to 0.1: %d (paper: ~120 values over ~6 "
      "decades)\n",
      steps);
  return 0;
}
