// Shared plumbing for the experiment benches: command-line options, flow
// parameter presets, and multi-trial helpers.
//
// Every bench accepts:
//   --trials N     trials per configuration (default: bench-specific)
//   --ac N         stage-1 attempts per cell per temperature (default 25,
//                  the paper's "early design stage" setting; --paper: 400)
//   --seed S       base RNG seed
//   --m N          router alternatives per net (default 4; --paper: 20)
//   --paper        paper-scale parameters (hours, not minutes)
//   --circuits a,b restrict the circuit list (names from Table 3/4)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "flow/timberwolf.hpp"
#include "util/stats.hpp"
#include "util/tableio.hpp"
#include "workload/paper_circuits.hpp"

namespace tw::bench {

struct Config {
  int trials = 0;  ///< 0: bench decides
  int ac = 25;
  int stage2_ac = 25;
  std::uint64_t seed = 1;
  int m = 4;
  bool paper = false;
  std::vector<std::string> circuits;

  bool circuit_enabled(const std::string& name) const {
    if (circuits.empty()) return true;
    for (const auto& c : circuits)
      if (c == name) return true;
    return false;
  }
};

inline Config parse_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--trials") {
      cfg.trials = std::atoi(next());
    } else if (a == "--ac") {
      cfg.ac = std::atoi(next());
    } else if (a == "--stage2-ac") {
      cfg.stage2_ac = std::atoi(next());
    } else if (a == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--m") {
      cfg.m = std::atoi(next());
    } else if (a == "--paper") {
      cfg.paper = true;
      cfg.ac = 400;
      cfg.stage2_ac = 100;
      cfg.m = 20;
    } else if (a == "--circuits") {
      std::string list = next();
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        cfg.circuits.push_back(list.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "options: --trials N --ac N --stage2-ac N --seed S --m N --paper "
          "--circuits a,b,...\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

inline FlowParams flow_params(const Config& cfg, std::uint64_t seed) {
  FlowParams p;
  p.stage1.attempts_per_cell = cfg.ac;
  p.stage2.attempts_per_cell = cfg.stage2_ac;
  p.stage2.router.steiner.m = cfg.m;
  p.seed = seed;
  return p;
}

/// Derives a per-(circuit, trial) seed from the base seed.
inline std::uint64_t trial_seed(const Config& cfg, std::uint64_t circuit_salt,
                                int trial) {
  return cfg.seed * 0x9E3779B97F4A7C15ull + circuit_salt * 1099511628211ull +
         static_cast<std::uint64_t>(trial) * 2654435761ull + 1;
}

}  // namespace tw::bench
