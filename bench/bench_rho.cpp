// Section 3.2.2 — The range-limiter contraction exponent rho.
//
// The window shrinks as rho^log10(T); the paper tested 1 <= rho <= 10 and
// found the final TEIL flat for rho in [1, 4] while the residual cell
// overlap falls as rho grows (smaller windows late in the run mean more
// local moves, which remove overlap); rho = 4 was chosen to get both.
#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);
  const int trials = cfg.trials > 0 ? cfg.trials : 3;

  std::printf(
      "Section 3.2.2: final TEIL and residual overlap vs rho\n"
      "(paper: TEIL flat for rho in [1,4]; overlap falls with rho; "
      "rho = 4 chosen)\n\n");

  const double rhos[] = {1, 2, 4, 6, 8, 10};

  // Fixed macro-only circuit; only the annealer seed varies per trial.
  CircuitSpec spec = medium_circuit(21);
  spec.custom_fraction = 0.0;
  const Netlist nl = generate_circuit(spec);

  std::vector<double> teil_means, ov_means;
  for (const double rho : rhos) {
    RunningStats teil, overlap;
    for (int t = 0; t < trials; ++t) {
      Stage1Params params;
      params.attempts_per_cell = cfg.ac;
      params.rho = rho;
      // The penalty ramp also squeezes overlap; soften it so the rho
      // effect itself is visible (the paper has no ramp at all).
      params.overlap_penalty_growth = 4.0;
      Stage1Placer placer(nl, params, trial_seed(cfg, 47, t));
      Placement placement(nl);
      const Stage1Result r = placer.run(placement);
      // Legalized TEIL: leftover overlap is unpaid wirelength.
      legalize_spread(placement, r.core, 2 * nl.tech().track_separation);
      teil.add(placement.teil());
      overlap.add(static_cast<double>(r.residual_overlap));
    }
    teil_means.push_back(teil.mean());
    ov_means.push_back(overlap.mean());
  }

  const double best_teil =
      *std::min_element(teil_means.begin(), teil_means.end());
  const double worst_ov = *std::max_element(ov_means.begin(), ov_means.end());
  Table table({"rho", "Avg final TEIL", "Norm TEIL", "Avg residual overlap",
               "Norm overlap"});
  for (std::size_t i = 0; i < teil_means.size(); ++i)
    table.add_row({Table::num(rhos[i], 0), Table::num(teil_means[i], 0),
                   Table::num(teil_means[i] / best_teil, 3),
                   Table::num(ov_means[i], 0),
                   Table::num(worst_ov > 0 ? ov_means[i] / worst_ov : 0, 3)});
  table.print();
  std::printf(
      "\nShape check: TEIL roughly flat at small rho; residual overlap "
      "trending down as rho grows.\n");
  return 0;
}
