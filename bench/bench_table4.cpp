// Table 4 — TimberWolfMC vs other placement methods.
//
// The paper compared against industrial tools (CIPAR), manual layouts
// (Intel, HP, AMD) and a resistive-network placer (Cheng-Kuh), reporting
// 8-49 % TEIL reduction and 4-56 % area reduction. Those comparators are
// closed, so this bench measures against the open stand-ins: the
// quadratic (resistive-network) placer, the greedy shelf packer, and
// random-legalized placement — reporting the reduction vs the *best*
// baseline per circuit, plus TimberWolfMC's absolute TEIL and chip
// dimensions in the paper's format.
#include "baseline/quadratic.hpp"
#include "baseline/random_place.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);

  std::printf(
      "Table 4: TimberWolfMC vs baseline placements\n(paper: TEIL red. "
      "8-49%%, avg 24.9%%; area red. 4-56%%, avg 26.9%% vs industrial/"
      "manual comparators)\n\n");

  Table table({"Circuit", "Cells", "Nets", "Pins", "TEIL", "Area (x*y)",
               "TEIL Red. (%)", "Area Red. (%)", "Best baseline"});
  RunningStats all_teil, all_area;

  std::uint64_t salt = 100;
  for (const PaperCircuit& pc : paper_circuits()) {
    ++salt;
    if (!cfg.circuit_enabled(pc.spec.name)) continue;
    const Netlist nl = generate_circuit(pc.spec);
    const Coord spacing = nominal_spacing(nl);

    // TimberWolfMC (best of `trials` runs — the paper also reports tuned
    // results).
    const int trials = cfg.trials > 0 ? cfg.trials : 1;
    double tw_teil = 0.0;
    Rect tw_bbox;
    for (int t = 0; t < trials; ++t) {
      TimberWolfMC flow(nl, flow_params(cfg, trial_seed(cfg, salt, t)));
      Placement placement(nl);
      const FlowResult r = flow.run(placement);
      if (t == 0 || r.final_teil < tw_teil) {
        tw_teil = r.final_teil;
        tw_bbox = r.final_chip_bbox;
      }
    }
    const double tw_area = static_cast<double>(tw_bbox.area());

    // Baselines (each placer on its own placement object).
    struct Entry {
      const char* name;
      BaselineResult r;
    };
    Placement pq(nl), ps(nl), pr(nl);
    QuadraticParams qp;
    qp.seed = cfg.seed + salt;
    qp.legalize.spacing = spacing;
    const Entry entries[] = {
        {"quadratic", place_quadratic(pq, qp)},
        {"shelf", place_shelf(ps, {spacing, 1.0})},
        {"random", place_random(pr, cfg.seed + salt, {spacing, 1.0})},
    };
    // "Best baseline" = the one TimberWolf has the *least* advantage over
    // in TEIL (the paper's comparisons were against the best available
    // placement for each circuit).
    const Entry* best = &entries[0];
    for (const Entry& e : entries)
      if (e.r.teil < best->r.teil) best = &e;

    const double teil_red = 100.0 * (best->r.teil - tw_teil) / best->r.teil;
    const double area_red =
        100.0 * (static_cast<double>(best->r.chip_area) - tw_area) /
        static_cast<double>(best->r.chip_area);
    all_teil.add(teil_red);
    all_area.add(area_red);

    char dims[64];
    std::snprintf(dims, sizeof(dims), "%lld x %lld",
                  static_cast<long long>(tw_bbox.width()),
                  static_cast<long long>(tw_bbox.height()));
    table.add_row({pc.spec.name, Table::integer(pc.spec.num_cells),
                   Table::integer(pc.spec.num_nets),
                   Table::integer(pc.spec.num_pins),
                   Table::integer(static_cast<long long>(tw_teil)), dims,
                   Table::num(teil_red, 1), Table::num(area_red, 1),
                   best->name});
  }
  table.add_row({"Avg.", "", "", "", "", "", Table::num(all_teil.mean(), 1),
                 Table::num(all_area.mean(), 1), ""});
  table.print();
  std::printf(
      "\nShape check: TimberWolfMC should win on TEIL against every "
      "baseline (double-digit average reduction), mirroring the paper's "
      "24.9%% / 26.9%% averages.\n");
  return 0;
}
