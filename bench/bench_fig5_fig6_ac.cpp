// Figures 5 and 6 — Quality vs the inner-loop criterion A_c.
//
// The paper plots, for 30-60 cell circuits, the normalized average final
// TEIL (Figure 5) and the relative final chip area after global routing
// and placement refinement (Figure 6) against A_c: both saturate around
// A_c ~ 400, and A_c = 25 is ~13 % off in TEIL at 16x less cpu time.
// This bench sweeps A_c through the full flow and prints both series plus
// the run time (the paper notes time is directly proportional to A_c).
#include <chrono>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);
  const int trials = cfg.trials > 0 ? cfg.trials : 2;

  std::printf(
      "Figures 5-6: normalized final TEIL and relative chip area vs A_c\n"
      "(paper: saturation by A_c ~ 400; A_c = 25 within ~13%% of best "
      "TEIL)\n\n");

  std::vector<int> acs{10, 25, 50, 100, 200};
  if (cfg.paper) acs.push_back(400);

  // 30-cell circuit in the paper's studied size band.
  CircuitSpec spec = medium_circuit(3);
  spec.name = "fig56";
  spec.num_cells = 30;
  spec.num_nets = 130;
  spec.num_pins = 520;

  std::vector<double> teils, areas, seconds;
  for (const int ac : acs) {
    RunningStats teil, area;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < trials; ++t) {
      const Netlist nl = generate_circuit(spec);
      Config run_cfg = cfg;
      run_cfg.ac = ac;
      TimberWolfMC flow(nl, flow_params(run_cfg, trial_seed(cfg, 56, t)));
      Placement placement(nl);
      const FlowResult r = flow.run(placement);
      teil.add(r.final_teil);
      area.add(static_cast<double>(r.final_chip_area));
    }
    const auto stop = std::chrono::steady_clock::now();
    teils.push_back(teil.mean());
    areas.push_back(area.mean());
    seconds.push_back(std::chrono::duration<double>(stop - start).count() /
                      trials);
  }

  const double best_teil = *std::min_element(teils.begin(), teils.end());
  const double best_area = *std::min_element(areas.begin(), areas.end());
  Table table({"A_c", "Avg final TEIL", "Norm TEIL (Fig 5)",
               "Avg chip area", "Rel area (Fig 6)", "sec/trial"});
  for (std::size_t i = 0; i < acs.size(); ++i)
    table.add_row({Table::integer(acs[i]), Table::num(teils[i], 0),
                   Table::num(teils[i] / best_teil, 3),
                   Table::num(areas[i], 0),
                   Table::num(areas[i] / best_area, 3),
                   Table::num(seconds[i], 2)});
  table.print();
  std::printf(
      "\nShape check: both normalized series fall toward 1.0 as A_c grows "
      "and flatten; run time grows ~linearly with A_c.\n");
  return 0;
}
