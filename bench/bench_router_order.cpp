// Section 4.2.2 — Net-ordering independence of the interchange router.
//
// The classical sequential router's result depends on the order nets are
// routed in; TimberWolfMC's two-phase router (enumerate M alternatives,
// then random interchange under the capacity constraints) avoids the
// problem. This bench routes a placed circuit's nets sequentially under
// many shuffled orders and compares the spread (and the best/worst) with
// the interchange router's single, order-free result.
#include "channel/channel_graph.hpp"
#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "route/interchange.hpp"
#include "route/sequential.hpp"
#include "bench_common.hpp"

#include <numeric>

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);
  const int orders = cfg.trials > 0 ? cfg.trials : 12;

  std::printf(
      "Section 4.2.2: routing-order dependence — sequential router under "
      "shuffled net orders vs the interchange router\n\n");

  // A placed medium circuit provides the routing instance.
  const Netlist nl = generate_circuit(medium_circuit(41));
  Stage1Params params;
  params.attempts_per_cell = cfg.ac;
  Stage1Placer placer(nl, params, cfg.seed + 41);
  Placement placement(nl);
  const Stage1Result s1 = placer.run(placement);
  legalize_spread(placement, s1.core, 2 * nl.tech().track_separation);
  const ChannelGraph cg = build_channel_graph(placement, s1.core);
  const auto targets = build_net_targets(nl, cg);

  RunningStats seq_len, seq_overflow;
  Rng rng(cfg.seed + 4242);
  std::vector<int> order(targets.size());
  std::iota(order.begin(), order.end(), 0);
  Table table({"Order #", "Sequential length", "Sequential overflow"});
  for (int o = 0; o < orders; ++o) {
    if (o > 0) rng.shuffle(order);
    const SequentialResult r = route_sequential(cg.graph, targets, order);
    seq_len.add(r.total_length);
    seq_overflow.add(r.total_overflow);
    table.add_row({Table::integer(o + 1), Table::num(r.total_length, 0),
                   Table::integer(r.total_overflow)});
  }
  table.print();

  GlobalRouter router(cg.graph, {{cfg.m, 12}, cfg.seed + 777});
  const GlobalRouteResult inter = router.route(targets);

  std::printf(
      "\nSequential over %d orders: length %0.0f .. %0.0f (mean %0.0f, "
      "stddev %0.0f), overflow %0.0f .. %0.0f (mean %0.1f)\n",
      orders, seq_len.min(), seq_len.max(), seq_len.mean(), seq_len.stddev(),
      seq_overflow.min(), seq_overflow.max(), seq_overflow.mean());
  std::printf(
      "Interchange router (order-free): length %0.0f, overflow %d, "
      "%lld interchange attempts\n",
      inter.total_length, inter.total_overflow,
      static_cast<long long>(inter.interchange_attempts));
  std::printf(
      "\nShape check: sequential results scatter with the order; the "
      "interchange router needs no order and its overflow should match or "
      "beat the best sequential order.\n");
  return 0;
}
