// Ablation — how much of TimberWolfMC's accuracy comes from its pieces?
//
// Two design choices DESIGN.md calls out are switched off one at a time:
//
//  (a) The *dynamic* interconnect-area estimator (the paper's central
//      contribution). Variants: the full estimator (position modulation
//      f_x*f_y and pin-density f_rp), a uniform static 0.5*C_W border
//      (factor (1) only — roughly the prior state of the art), and no
//      interconnect allowance at all. The estimator-accuracy metric is
//      Table 3's: the TEIL/area change between stage 1 and stage 2 (small
//      = stage 1 already reserved the right space).
//
//  (b) The overlap-penalty ramp (a successor-TimberWolf cure we adopted):
//      ramped vs the paper's fixed p2, measured by the residual overlap
//      stage 1 leaves behind.
#include "place/legalize.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tw;
  using namespace tw::bench;
  const Config cfg = parse_args(argc, argv);
  const int trials = cfg.trials > 0 ? cfg.trials : 2;

  std::printf("Ablation (a): interconnect-area estimation mode\n");
  std::printf(
      "(Table 3 metric: |stage1 -> stage2 change|; the dynamic estimator "
      "should predict the routed chip best)\n\n");

  struct Mode {
    const char* name;
    EstimatorMode mode;
  };
  const Mode modes[] = {
      {"dynamic (paper)", EstimatorMode::kDynamic},
      {"uniform 0.5*C_W", EstimatorMode::kUniform},
      {"none", EstimatorMode::kNone},
  };

  Table ta({"Estimator", "Avg |dTEIL| (%)", "Avg |dArea| (%)",
            "Avg final TEIL", "Avg final area"});
  for (const Mode& m : modes) {
    RunningStats dteil, darea, teil, area;
    for (int t = 0; t < trials; ++t) {
      const Netlist nl =
          generate_circuit(medium_circuit(static_cast<std::uint64_t>(t) + 61));
      FlowParams fp = flow_params(cfg, trial_seed(cfg, 91, t));
      fp.stage1.estimator_mode = m.mode;
      TimberWolfMC flow(nl, fp);
      Placement placement(nl);
      const FlowResult r = flow.run(placement);
      dteil.add(std::abs(r.teil_change_pct()));
      darea.add(std::abs(r.area_change_pct()));
      teil.add(r.final_teil);
      area.add(static_cast<double>(r.final_chip_area));
    }
    ta.add_row({m.name, Table::num(dteil.mean(), 1), Table::num(darea.mean(), 1),
                Table::num(teil.mean(), 0), Table::num(area.mean(), 0)});
  }
  ta.print();

  std::printf("\nAblation (b): overlap-penalty ramp\n");
  std::printf(
      "(residual overlap stage 1 leaves, and the legalized TEIL after "
      "cleanup)\n\n");
  Table tb({"p2 schedule", "Avg residual overlap", "Avg bare overlap",
            "Avg legalized TEIL"});
  for (const double growth : {1.0, 20.0}) {
    RunningStats residual, bare, teil;
    for (int t = 0; t < trials + 1; ++t) {
      const Netlist nl =
          generate_circuit(medium_circuit(static_cast<std::uint64_t>(t) + 71));
      Stage1Params params;
      params.attempts_per_cell = cfg.ac;
      params.overlap_penalty_growth = growth;
      Stage1Placer placer(nl, params, trial_seed(cfg, 97, t));
      Placement placement(nl);
      const Stage1Result r = placer.run(placement);
      residual.add(static_cast<double>(r.residual_overlap));
      bare.add(static_cast<double>(bare_overlap(placement)));
      legalize_spread(placement, r.core, 2 * nl.tech().track_separation);
      teil.add(placement.teil());
    }
    tb.add_row({growth == 1.0 ? "fixed p2 (paper)" : "ramped x20 (ours)",
                Table::num(residual.mean(), 0), Table::num(bare.mean(), 0),
                Table::num(teil.mean(), 0)});
  }
  tb.print();
  std::printf(
      "\nShape check: (a) the dynamic estimator gives the smallest "
      "stage1->stage2 changes (and the best final TEIL/area); (b) the "
      "ramp buys guaranteed near-zero overlap for a few percent of "
      "wirelength — insurance that pays off on circuits whose residue "
      "cannot be legalized cheaply.\n");
  return 0;
}
