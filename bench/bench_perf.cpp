// Section 5 (cpu time) — performance characteristics.
//
// The paper reports run times proportional to A_c and ranging from 15
// minutes (smallest circuits) to 4 hours (largest) on a DEC MicroVAX II.
// This google-benchmark binary measures the hot paths (overlap
// evaluation, net-span evaluation, shortest paths, channel definition)
// and the macro-level stage-1 throughput as a function of circuit size,
// which documents the same proportionality on modern hardware.
//
// The Stage1MoveThroughput family additionally records moves/sec per
// workload size and, after the run, emits a machine-readable
// BENCH_perf.json (into the working directory, or $TW_BENCH_OUT) so the
// perf trajectory is tracked across PRs — see docs/PERF.md.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "channel/channel_graph.hpp"
#include "flow/multilevel.hpp"
#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "place/stage1_parallel.hpp"
#include "recover/budget.hpp"
#include "route/interchange.hpp"
#include "workload/generator.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

/// One measured stage-1 throughput point, keyed by workload size.
struct ThroughputSample {
  int cells = 0;
  int attempts_per_cell = 0;
  long long attempts = 0;
  double seconds = 0.0;
  double moves_per_sec = 0.0;
};

std::map<int, ThroughputSample>& throughput_registry() {
  static std::map<int, ThroughputSample> samples;
  return samples;
}

/// One measured global-router throughput point, keyed by workload size.
/// `nets` counts every net handed to GlobalRouter::route (phase one
/// Steiner enumeration + phase two interchange), so nets_per_sec is the
/// end-to-end routing rate of the stage-3 hot path.
struct RouterSample {
  int cells = 0;
  long long nets = 0;
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  double seconds = 0.0;
  double nets_per_sec = 0.0;
};

std::map<int, RouterSample>& router_registry() {
  static std::map<int, RouterSample> samples;
  return samples;
}

/// Stage-1 attempts-per-cell for a throughput run: scaled so every
/// workload size attempts ~960 moves per temperature step (the historic
/// 96-cell point keeps its attempts_per_cell = 10), with a floor of 2 so
/// the SoC-scale points still anneal. Without the scaling the 1000-cell
/// point would attempt 10x the moves of the 96-cell point per step and
/// blow the bench budget.
int scaled_attempts_per_cell(int cells) {
  return std::max(2, 960 / std::max(1, cells));
}

/// One measured multilevel-flow point: a flat stage-1 anneal vs the
/// cluster-warm-started multilevel flow on the same netlist under the
/// same RunBudget (docs/PERF.md "Multilevel flow"). teil_ratio < 1 means
/// the multilevel flow won. The coarse-net degree pair documents the
/// aggregated-degree cap: uncapped, a hub net aggregates into one coarse
/// net touching hundreds of clusters (the 10k tier's former blow-up);
/// capped, no coarse net exceeds kDefaultAggregatedDegreeCap pins.
struct MlSample {
  int cells = 0;
  long long budget_moves = 0;
  int clusters = 0;
  int max_coarse_net_degree = 0;           ///< with the flow's default cap
  int uncapped_max_coarse_net_degree = 0;  ///< same clustering, cap disabled
  double warm_teil = 0.0;
  double ml_teil = 0.0;
  double flat_teil = 0.0;
  double ml_seconds = 0.0;
  double flat_seconds = 0.0;
};

std::map<int, MlSample>& multilevel_registry() {
  static std::map<int, MlSample> samples;
  return samples;
}

/// One measured parallel stage-1 point, keyed by worker count: the same
/// full-anneal figure of merit as Stage1MoveThroughput, on the parallel
/// engine (docs/PERF.md "Parallel annealing"). The result is
/// worker-count invariant, so clean/conflicted are identical across rows
/// and only seconds / moves_per_sec vary with the thread layout.
struct ParallelSample {
  int workers = 0;
  int cells = 0;
  long long attempts = 0;
  long long slots = 0;
  long long clean = 0;
  long long conflicted = 0;
  double seconds = 0.0;
  double moves_per_sec = 0.0;
};

std::map<int, ParallelSample>& parallel_registry() {
  static std::map<int, ParallelSample> samples;
  return samples;
}

/// Writes the throughput registry as BENCH_perf.json. The default path is
/// relative to the working directory: the CI perf step runs from the repo
/// root, so the artifact lands there; the ctest smoke runs from the build
/// tree and leaves the committed root file untouched.
void write_perf_json() {
  if (throughput_registry().empty() && router_registry().empty() &&
      multilevel_registry().empty() && parallel_registry().empty())
    return;
  const char* env = std::getenv("TW_BENCH_OUT");
  const std::string path = env != nullptr ? env : "BENCH_perf.json";
  std::ofstream out(path);
  if (!out) return;
  out << "{\n"
      << "  \"schema_version\": 4,\n"
      << "  \"suite\": \"bench_perf\",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"stage1_move_throughput\": [\n";
  bool first = true;
  for (const auto& [cells, s] : throughput_registry()) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"cells\": " << s.cells
        << ", \"attempts_per_cell\": " << s.attempts_per_cell
        << ", \"attempts\": " << s.attempts
        << ", \"seconds\": " << s.seconds
        << ", \"moves_per_sec\": " << s.moves_per_sec << "}";
  }
  out << "\n  ],\n"
      << "  \"router_throughput\": [\n";
  first = true;
  for (const auto& [cells, s] : router_registry()) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"cells\": " << s.cells
        << ", \"nets\": " << s.nets
        << ", \"graph_nodes\": " << s.graph_nodes
        << ", \"graph_edges\": " << s.graph_edges
        << ", \"seconds\": " << s.seconds
        << ", \"nets_per_sec\": " << s.nets_per_sec << "}";
  }
  out << "\n  ],\n"
      << "  \"stage1_parallel_throughput\": [\n";
  first = true;
  for (const auto& [workers, s] : parallel_registry()) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"workers\": " << s.workers
        << ", \"cells\": " << s.cells
        << ", \"attempts\": " << s.attempts
        << ", \"slots\": " << s.slots
        << ", \"clean\": " << s.clean
        << ", \"conflicted\": " << s.conflicted
        << ", \"seconds\": " << s.seconds
        << ", \"moves_per_sec\": " << s.moves_per_sec << "}";
  }
  out << "\n  ],\n"
      << "  \"multilevel_flow\": [\n";
  first = true;
  for (const auto& [cells, s] : multilevel_registry()) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"cells\": " << s.cells
        << ", \"budget_moves\": " << s.budget_moves
        << ", \"clusters\": " << s.clusters
        << ", \"max_coarse_net_degree\": " << s.max_coarse_net_degree
        << ", \"uncapped_max_coarse_net_degree\": "
        << s.uncapped_max_coarse_net_degree
        << ", \"warm_teil\": " << s.warm_teil
        << ", \"ml_teil\": " << s.ml_teil
        << ", \"flat_teil\": " << s.flat_teil
        << ", \"teil_ratio\": "
        << (s.flat_teil > 0.0 ? s.ml_teil / s.flat_teil : 0.0)
        << ", \"ml_seconds\": " << s.ml_seconds
        << ", \"flat_seconds\": " << s.flat_seconds << "}";
  }
  out << "\n  ]\n}\n";
}

struct PlacedFixture {
  Netlist nl;
  Placement placement;
  Rect core;

  explicit PlacedFixture(int cells) : nl(make_netlist(cells)), placement(nl) {
    DynamicAreaEstimator est(nl);
    core = est.compute_initial_core();
    Rng rng(7);
    placement.randomize(rng, core);
    legalize_spread(placement, core, 2);
  }

  static Netlist make_netlist(int cells) {
    CircuitSpec spec;
    spec.name = "perf";
    spec.num_cells = cells;
    spec.num_nets = cells * 4;
    spec.num_pins = cells * 16;
    spec.mean_cell_dim = 80;
    return generate_circuit(spec);
  }
};

void BM_PairOverlap(benchmark::State& state) {
  PlacedFixture f(24);
  OverlapEngine ov(f.placement, f.core, {});
  CellId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ov.cell_overlap(i));
    i = static_cast<CellId>((i + 1) % 24);
  }
}
BENCHMARK(BM_PairOverlap);

void BM_NetCost(benchmark::State& state) {
  PlacedFixture f(24);
  NetId n = 0;
  const auto num = static_cast<NetId>(f.nl.num_nets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.placement.net_cost(n));
    n = static_cast<NetId>((n + 1) % num);
  }
}
BENCHMARK(BM_NetCost);

void BM_ChannelGraphBuild(benchmark::State& state) {
  PlacedFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_channel_graph(f.placement, f.core));
  }
}
BENCHMARK(BM_ChannelGraphBuild)->Arg(12)->Arg(24)->Arg(48);

void BM_ShortestPath(benchmark::State& state) {
  PlacedFixture f(24);
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  const auto targets = build_net_targets(f.nl, cg);
  std::size_t n = 0;
  for (auto _ : state) {
    const auto& t = targets[n % targets.size()];
    if (t.pins.size() >= 2)
      benchmark::DoNotOptimize(
          shortest_path_between_sets(cg.graph, t.pins[0], t.pins[1]));
    ++n;
  }
}
BENCHMARK(BM_ShortestPath);

void BM_MBestRoutes(benchmark::State& state) {
  PlacedFixture f(24);
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  const auto targets = build_net_targets(f.nl, cg);
  std::size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m_best_routes(cg.graph, targets[n % targets.size()], {4, 12}));
    ++n;
  }
}
BENCHMARK(BM_MBestRoutes);

void BM_GlobalRoute(benchmark::State& state) {
  PlacedFixture f(24);
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  const auto targets = build_net_targets(f.nl, cg);
  for (auto _ : state) {
    GlobalRouter router(cg.graph, {{4, 12}, 3});
    benchmark::DoNotOptimize(router.route(targets));
  }
}
BENCHMARK(BM_GlobalRoute);

/// Global-router throughput: the full stage-3 hot path (M-best Steiner
/// enumeration + interchange selection) on a legalized placement's channel
/// graph, reported as nets routed per second of routing time. This is the
/// figure of merit of the router performance core (SearchWorkspace, A*,
/// Lawler deviations, overflow worklist — docs/PERF.md "Global router");
/// the per-size samples are recorded into BENCH_perf.json after the run.
void BM_RouterThroughput(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  PlacedFixture f(cells);
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  const auto targets = build_net_targets(f.nl, cg);
  long long nets = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    GlobalRouter router(cg.graph, {{4, 12}, 3});
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(router.route(targets));
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    nets += static_cast<long long>(targets.size());
    seconds += dt.count();
  }
  state.SetItemsProcessed(nets);
  if (seconds > 0.0) {
    const double rate = static_cast<double>(nets) / seconds;
    state.counters["nets_per_sec"] = rate;
    router_registry()[cells] = {cells,
                                nets,
                                cg.graph.num_nodes(),
                                cg.graph.num_edges(),
                                seconds,
                                rate};
  }
}
BENCHMARK(BM_RouterThroughput)
    ->Arg(12)
    ->Arg(24)
    ->Arg(48)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond);

void BM_Legalize(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PlacedFixture f(24);
    Rng rng(11);
    f.placement.randomize(rng, f.core);
    state.ResumeTiming();
    legalize_spread(f.placement, f.core, 2);
  }
}
BENCHMARK(BM_Legalize);

/// Macro benchmark: one full stage-1 run; time should scale with
/// cells * A_c (Eqn 17, and the paper's cpu-time observations).
void BM_Stage1(benchmark::State& state) {
  const Netlist nl = PlacedFixture::make_netlist(static_cast<int>(state.range(0)));
  Stage1Params params;
  params.attempts_per_cell = static_cast<int>(state.range(1));
  params.p2_samples = 8;
  for (auto _ : state) {
    Placement placement(nl);
    Stage1Placer placer(nl, params, 5);
    benchmark::DoNotOptimize(placer.run(placement));
  }
}
BENCHMARK(BM_Stage1)
    ->Args({12, 5})
    ->Args({12, 10})
    ->Args({12, 20})
    ->Args({24, 10})
    ->Args({48, 10})
    ->Unit(benchmark::kMillisecond);

/// Stage-1 move throughput: full annealing runs, reported as attempted
/// moves per second of annealing time (generate + evaluate + accept or
/// revert). This is the figure of merit of the incremental evaluation
/// core (spatial bin index, cached net bounds, MoveTxn); the per-size
/// samples are recorded into BENCH_perf.json after the run.
void BM_Stage1MoveThroughput(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  const Netlist nl = PlacedFixture::make_netlist(cells);
  Stage1Params params;
  params.attempts_per_cell = scaled_attempts_per_cell(cells);
  params.p2_samples = 8;
  long long attempts = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    Placement placement(nl);
    Stage1Placer placer(nl, params, 5);
    const auto t0 = std::chrono::steady_clock::now();
    const Stage1Result r = placer.run(placement);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    attempts += r.attempts;
    seconds += dt.count();
  }
  state.SetItemsProcessed(attempts);
  if (seconds > 0.0) {
    const double rate = static_cast<double>(attempts) / seconds;
    state.counters["moves_per_sec"] = rate;
    throughput_registry()[cells] = {cells, params.attempts_per_cell, attempts,
                                    seconds, rate};
  }
}
BENCHMARK(BM_Stage1MoveThroughput)
    ->Arg(12)
    ->Arg(24)
    ->Arg(48)
    ->Arg(96)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

/// Parallel stage-1 throughput: the same full-anneal figure of merit as
/// BM_Stage1MoveThroughput, on ParallelStage1Placer, swept over worker
/// counts. The per-worker samples (plus the host's hardware_concurrency,
/// recorded at the top of BENCH_perf.json) document what speculation buys
/// on this host — on a single-core container every row costs the same
/// wall clock and the sweep measures the speculation overhead instead.
void BM_Stage1ParallelThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int cells = 96;
  const Netlist nl = PlacedFixture::make_netlist(cells);
  ParallelStage1Params params;
  params.base.attempts_per_cell = scaled_attempts_per_cell(cells);
  params.base.p2_samples = 8;
  params.num_workers = workers;
  ParallelSample sample;
  sample.workers = workers;
  sample.cells = cells;
  for (auto _ : state) {
    Placement placement(nl);
    ParallelStage1Placer placer(nl, params, 5);
    const auto t0 = std::chrono::steady_clock::now();
    const Stage1Result r = placer.run(placement);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    sample.attempts += r.attempts;
    sample.seconds += dt.count();
    sample.slots += placer.batch_stats().slots;
    sample.clean += placer.batch_stats().clean;
    sample.conflicted += placer.batch_stats().conflicted;
  }
  state.SetItemsProcessed(sample.attempts);
  if (sample.seconds > 0.0) {
    sample.moves_per_sec =
        static_cast<double>(sample.attempts) / sample.seconds;
    state.counters["moves_per_sec"] = sample.moves_per_sec;
    parallel_registry()[workers] = sample;
  }
}
BENCHMARK(BM_Stage1ParallelThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Multilevel-flow benchmark: one flat stage-1 anneal and one
/// cluster-warm-started multilevel flow on the same netlist, each under
/// the same RunBudget, recorded side by side into BENCH_perf.json. A
/// single iteration: the figure of merit is the quality-per-budget ratio
/// (ml_teil / flat_teil), not a rate, and one full flow pair is already
/// several seconds of anneal. The 1k point keeps the historic generic
/// workload; the 10k point uses the SoC tier (soc_circuit), whose hub
/// nets are what the aggregated-degree cap exists for.
void BM_MultilevelFlow(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  const Netlist nl = cells >= 10000
                         ? generate_circuit(soc_circuit(SocTier::k10k))
                         : PlacedFixture::make_netlist(cells);
  const std::int64_t kMoves = 300LL * cells;

  Stage1Params sp;
  sp.attempts_per_cell = scaled_attempts_per_cell(cells);
  sp.p2_samples = 6;

  MlSample sample;
  sample.cells = cells;
  sample.budget_moves = kMoves;

  // Document the aggregated-degree cap on this workload: reproduce the
  // exact clustering the flow below will run (same derived seed chain,
  // flow-default cap) and the same clustering with the cap opted out, and
  // record the widest coarse net of each.
  {
    ClusterParams cp;
    cp.seed = derive_seed(derive_seed(17, "warm"), "cluster");
    cp.max_aggregated_degree = kDefaultAggregatedDegreeCap;
    const auto max_degree = [](const Netlist& coarse) {
      std::size_t widest = 0;
      for (const Net& n : coarse.nets()) widest = std::max(widest, n.pins.size());
      return static_cast<int>(widest);
    };
    sample.max_coarse_net_degree = max_degree(cluster_netlist(nl, cp).coarse);
    cp.max_aggregated_degree = -1;
    sample.uncapped_max_coarse_net_degree =
        max_degree(cluster_netlist(nl, cp).coarse);
  }

  for (auto _ : state) {
    {
      recover::RunBudget budget(kMoves, recover::RunBudget::kUnlimited);
      Stage1Placer flat(nl, sp, derive_seed(17, "stage1"));
      Stage1Hooks hooks;
      hooks.budget = &budget;
      flat.set_hooks(hooks);
      Placement placement(nl);
      const auto t0 = std::chrono::steady_clock::now();
      flat.run(placement);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      sample.flat_teil = placement.teil();
      sample.flat_seconds += dt.count();
    }
    {
      recover::RunBudget budget(kMoves, recover::RunBudget::kUnlimited);
      ClusterWarmStart warm({}, sp);
      MultilevelParams params;
      params.refine = sp;
      params.seed = 17;
      params.recover.budget = &budget;
      MultilevelFlow flow(nl, warm, params);
      Placement placement(nl);
      const auto t0 = std::chrono::steady_clock::now();
      const MultilevelResult r = flow.run(placement);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      sample.ml_teil = r.final_teil;
      sample.warm_teil = r.warm.teil;
      sample.clusters = r.warm.clusters;
      sample.ml_seconds += dt.count();
    }
  }
  state.counters["ml_teil"] = sample.ml_teil;
  state.counters["flat_teil"] = sample.flat_teil;
  multilevel_registry()[cells] = sample;
}
BENCHMARK(BM_MultilevelFlow)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tw::write_perf_json();
  return 0;
}
