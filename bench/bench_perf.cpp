// Section 5 (cpu time) — performance characteristics.
//
// The paper reports run times proportional to A_c and ranging from 15
// minutes (smallest circuits) to 4 hours (largest) on a DEC MicroVAX II.
// This google-benchmark binary measures the hot paths (overlap
// evaluation, net-span evaluation, shortest paths, channel definition)
// and the macro-level stage-1 throughput as a function of circuit size,
// which documents the same proportionality on modern hardware.
#include <benchmark/benchmark.h>

#include "channel/channel_graph.hpp"
#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "route/interchange.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

struct PlacedFixture {
  Netlist nl;
  Placement placement;
  Rect core;

  explicit PlacedFixture(int cells) : nl(make_netlist(cells)), placement(nl) {
    DynamicAreaEstimator est(nl);
    core = est.compute_initial_core();
    Rng rng(7);
    placement.randomize(rng, core);
    legalize_spread(placement, core, 2);
  }

  static Netlist make_netlist(int cells) {
    CircuitSpec spec;
    spec.name = "perf";
    spec.num_cells = cells;
    spec.num_nets = cells * 4;
    spec.num_pins = cells * 16;
    spec.mean_cell_dim = 80;
    return generate_circuit(spec);
  }
};

void BM_PairOverlap(benchmark::State& state) {
  PlacedFixture f(24);
  OverlapEngine ov(f.placement, f.core, {});
  CellId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ov.cell_overlap(i));
    i = static_cast<CellId>((i + 1) % 24);
  }
}
BENCHMARK(BM_PairOverlap);

void BM_NetCost(benchmark::State& state) {
  PlacedFixture f(24);
  NetId n = 0;
  const auto num = static_cast<NetId>(f.nl.num_nets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.placement.net_cost(n));
    n = static_cast<NetId>((n + 1) % num);
  }
}
BENCHMARK(BM_NetCost);

void BM_ChannelGraphBuild(benchmark::State& state) {
  PlacedFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_channel_graph(f.placement, f.core));
  }
}
BENCHMARK(BM_ChannelGraphBuild)->Arg(12)->Arg(24)->Arg(48);

void BM_ShortestPath(benchmark::State& state) {
  PlacedFixture f(24);
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  const auto targets = build_net_targets(f.nl, cg);
  std::size_t n = 0;
  for (auto _ : state) {
    const auto& t = targets[n % targets.size()];
    if (t.pins.size() >= 2)
      benchmark::DoNotOptimize(
          shortest_path_between_sets(cg.graph, t.pins[0], t.pins[1]));
    ++n;
  }
}
BENCHMARK(BM_ShortestPath);

void BM_MBestRoutes(benchmark::State& state) {
  PlacedFixture f(24);
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  const auto targets = build_net_targets(f.nl, cg);
  std::size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m_best_routes(cg.graph, targets[n % targets.size()], {4, 12}));
    ++n;
  }
}
BENCHMARK(BM_MBestRoutes);

void BM_GlobalRoute(benchmark::State& state) {
  PlacedFixture f(24);
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  const auto targets = build_net_targets(f.nl, cg);
  for (auto _ : state) {
    GlobalRouter router(cg.graph, {{4, 12}, 3});
    benchmark::DoNotOptimize(router.route(targets));
  }
}
BENCHMARK(BM_GlobalRoute);

void BM_Legalize(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PlacedFixture f(24);
    Rng rng(11);
    f.placement.randomize(rng, f.core);
    state.ResumeTiming();
    legalize_spread(f.placement, f.core, 2);
  }
}
BENCHMARK(BM_Legalize);

/// Macro benchmark: one full stage-1 run; time should scale with
/// cells * A_c (Eqn 17, and the paper's cpu-time observations).
void BM_Stage1(benchmark::State& state) {
  const Netlist nl = PlacedFixture::make_netlist(static_cast<int>(state.range(0)));
  Stage1Params params;
  params.attempts_per_cell = static_cast<int>(state.range(1));
  params.p2_samples = 8;
  for (auto _ : state) {
    Placement placement(nl);
    Stage1Placer placer(nl, params, 5);
    benchmark::DoNotOptimize(placer.run(placement));
  }
}
BENCHMARK(BM_Stage1)
    ->Args({12, 5})
    ->Args({12, 10})
    ->Args({12, 20})
    ->Args({24, 10})
    ->Args({48, 10})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tw

BENCHMARK_MAIN();
