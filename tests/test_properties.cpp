// Parameterized property suites: cross-module invariants checked over a
// sweep of circuit shapes and seeds (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include "channel/channel_graph.hpp"
#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "route/channel_router.hpp"
#include "route/interchange.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

struct CircuitCase {
  const char* label;
  int cells;
  int nets;
  int pins;
  double custom;
  double rectilinear;
  std::uint64_t seed;
};

void PrintTo(const CircuitCase& c, std::ostream* os) { *os << c.label; }

CircuitSpec to_spec(const CircuitCase& c) {
  CircuitSpec s;
  s.name = c.label;
  s.num_cells = c.cells;
  s.num_nets = c.nets;
  s.num_pins = c.pins;
  s.custom_fraction = c.custom;
  s.rectilinear_fraction = c.rectilinear;
  s.mean_cell_dim = 70;
  s.seed = c.seed;
  return s;
}

class CircuitProperty : public ::testing::TestWithParam<CircuitCase> {};

const CircuitCase kCases[] = {
    {"small_macro", 8, 20, 64, 0.0, 0.0, 1},
    {"small_mixed", 10, 26, 84, 0.4, 0.3, 2},
    {"rectilinear_heavy", 12, 30, 100, 0.0, 0.9, 3},
    {"custom_only", 9, 24, 80, 1.0, 0.0, 4},
    {"net_dense", 10, 60, 150, 0.2, 0.2, 5},
    {"pin_dense", 8, 24, 160, 0.3, 0.2, 6},
};

TEST_P(CircuitProperty, GeneratorInvariants) {
  const Netlist nl = generate_circuit(to_spec(GetParam()));
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.num_cells(), static_cast<std::size_t>(GetParam().cells));
  EXPECT_EQ(nl.num_nets(), static_cast<std::size_t>(GetParam().nets));
  EXPECT_EQ(nl.num_pins(), static_cast<std::size_t>(GetParam().pins));
  for (const auto& n : nl.nets()) EXPECT_GE(n.degree(), 2u);
  EXPECT_GT(nl.average_pin_density(), 0.0);
}

TEST_P(CircuitProperty, PinPositionsAlwaysOnCellBoundary) {
  const Netlist nl = generate_circuit(to_spec(GetParam()));
  Placement p(nl);
  Rng rng(GetParam().seed * 7 + 1);
  const Rect core{-500, -500, 500, 500};
  p.randomize(rng, core);
  for (const auto& pin : nl.pins()) {
    const Point pos = p.pin_position(pin.id);
    const Rect bb = p.bbox(pin.cell);
    EXPECT_TRUE(bb.contains(pos))
        << nl.cell(pin.cell).name << "." << pin.name;
  }
}

TEST_P(CircuitProperty, TeicInvariantUnderWholePlacementTranslation) {
  const Netlist nl = generate_circuit(to_spec(GetParam()));
  Placement p(nl);
  Rng rng(GetParam().seed * 13 + 5);
  p.randomize(rng, Rect{-400, -400, 400, 400});
  const double before = p.teic();
  for (const auto& cell : nl.cells())
    p.set_center(cell.id, p.state(cell.id).center + Point{137, -59});
  EXPECT_NEAR(p.teic(), before, 1e-9);
}

TEST_P(CircuitProperty, EstimatorCoreFitsExpandedCells) {
  const Netlist nl = generate_circuit(to_spec(GetParam()));
  DynamicAreaEstimator est(nl);
  const Rect core = est.compute_initial_core();
  double eff = 0.0;
  for (const auto& c : nl.cells()) {
    const CellInstance& inst = c.instances.front();
    const double e0 = est.nominal_expansion();
    eff += (static_cast<double>(inst.width) + 2.0 * e0) *
           (static_cast<double>(inst.height) + 2.0 * e0);
  }
  // The 0.85 packing slack must be visible.
  EXPECT_GE(static_cast<double>(core.area()), eff * 1.1);
}

TEST_P(CircuitProperty, LegalizedChannelGraphIsConnected) {
  const Netlist nl = generate_circuit(to_spec(GetParam()));
  Placement p(nl);
  Stage1Params s1p;
  s1p.attempts_per_cell = 8;
  s1p.p2_samples = 6;
  Stage1Placer placer(nl, s1p, GetParam().seed * 31 + 9);
  const Stage1Result s1 = placer.run(p);
  legalize_spread(p, s1.core, 2);
  const ChannelGraph cg = build_channel_graph(p, s1.core);

  std::vector<char> vis(cg.graph.num_nodes(), 0);
  std::vector<NodeId> stack{0};
  vis[0] = 1;
  std::size_t seen = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    ++seen;
    for (EdgeId e : cg.graph.incident(u)) {
      const NodeId v = cg.graph.edge(e).other(u);
      if (!vis[static_cast<std::size_t>(v)]) {
        vis[static_cast<std::size_t>(v)] = 1;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(seen, cg.graph.num_nodes()) << "disconnected channel graph";
}

TEST_P(CircuitProperty, SlabsNeverIntersectCells) {
  const Netlist nl = generate_circuit(to_spec(GetParam()));
  DynamicAreaEstimator est(nl);
  const Rect core = est.compute_initial_core();
  Placement p(nl);
  Rng rng(GetParam().seed * 3 + 2);
  p.randomize(rng, core);
  legalize_spread(p, core, 2);
  const auto slabs = free_space_slabs(p, core);
  for (const Rect& s : slabs) {
    for (const auto& cell : nl.cells())
      for (const Rect& t : p.absolute_tiles(cell.id))
        EXPECT_EQ(s.overlap_area(t.intersect(core)), 0);
    EXPECT_TRUE(core.contains(s));
  }
}

TEST_P(CircuitProperty, EverySelectedRouteConnectsItsNet) {
  const Netlist nl = generate_circuit(to_spec(GetParam()));
  // The realistic pipeline: a (brief) stage-1 placement, not a random one —
  // random configurations can have overlap residue that walls off regions.
  Placement p(nl);
  Stage1Params s1p;
  s1p.attempts_per_cell = 8;
  s1p.p2_samples = 6;
  Stage1Placer placer(nl, s1p, GetParam().seed * 17 + 3);
  const Stage1Result s1 = placer.run(p);
  legalize_spread(p, s1.core, 2);
  const ChannelGraph cg = build_channel_graph(p, s1.core);
  const auto targets = build_net_targets(nl, cg);
  const auto routed = GlobalRouter(cg.graph, {{4, 12}, 77}).route(targets);
  EXPECT_EQ(routed.unrouted_nets, 0);
  for (std::size_t n = 0; n < targets.size(); ++n) {
    const Route* r = routed.route_of(n);
    ASSERT_NE(r, nullptr) << "net " << n;
    EXPECT_TRUE(route_connects(cg.graph, targets[n], *r)) << "net " << n;
  }
}

TEST_P(CircuitProperty, RoutedChannelsSatisfyEqn22Bound) {
  const Netlist nl = generate_circuit(to_spec(GetParam()));
  Placement p(nl);
  Stage1Params s1p;
  s1p.attempts_per_cell = 8;
  s1p.p2_samples = 6;
  Stage1Placer placer(nl, s1p, GetParam().seed * 23 + 11);
  const Stage1Result s1 = placer.run(p);
  legalize_spread(p, s1.core, 2);
  const ChannelGraph cg = build_channel_graph(p, s1.core);
  const auto targets = build_net_targets(nl, cg);
  const auto routed = GlobalRouter(cg.graph, {{4, 12}, 99}).route(targets);
  std::vector<std::vector<EdgeId>> route_edges(targets.size());
  for (std::size_t n = 0; n < targets.size(); ++n)
    if (const Route* r = routed.route_of(n)) route_edges[n] = r->edges;
  EXPECT_EQ(validate_channel_widths(cg, route_edges), 0);
}

INSTANTIATE_TEST_SUITE_P(Circuits, CircuitProperty,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<CircuitCase>& info) {
                           return std::string(info.param.label);
                         });

// ---------------------------------------------------------------------------
// K-shortest-path properties parameterized over k.

class KShortestProperty : public ::testing::TestWithParam<int> {};

TEST_P(KShortestProperty, SortedDistinctSimple) {
  RoutingGraph g;
  Rng rng(42);
  // Random connected graph: a ring plus chords.
  const int n = 12;
  for (int i = 0; i < n; ++i) g.add_node({i * 10, (i * 7) % 30});
  for (int i = 0; i < n; ++i)
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
               static_cast<double>(rng.uniform_int(5, 30)), 2);
  for (int i = 0; i < 8; ++i) {
    const NodeId a = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    g.add_edge(a, b, static_cast<double>(rng.uniform_int(5, 40)), 2);
  }

  const int k = GetParam();
  const auto paths = k_shortest_paths(g, 0, 6, k);
  ASSERT_FALSE(paths.empty());
  EXPECT_LE(static_cast<int>(paths.size()), k);
  std::set<std::vector<EdgeId>> seen;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(paths[i].length, paths[i - 1].length);
    }
    EXPECT_TRUE(seen.insert(paths[i].edges).second);
    const auto nodes = g.walk_nodes(0, paths[i].edges);
    ASSERT_FALSE(nodes.empty());
    EXPECT_EQ(nodes.back(), 6);
    std::set<NodeId> uniq(nodes.begin(), nodes.end());
    EXPECT_EQ(uniq.size(), nodes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(K, KShortestProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

// ---------------------------------------------------------------------------
// Channel-router properties parameterized over the random-instance seed.

class LeftEdgeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeftEdgeProperty, OptimalAndConflictFree) {
  Rng rng(GetParam());
  std::vector<ChannelSegment> s;
  const int n = static_cast<int>(rng.uniform_int(3, 40));
  for (int i = 0; i < n; ++i) {
    const Coord lo = rng.uniform_int(0, 120);
    s.push_back({static_cast<std::int32_t>(rng.uniform_int(0, 11)),
                 {lo, lo + rng.uniform_int(1, 40)}});
  }
  const ChannelRouteResult r = route_channel(s);
  EXPECT_EQ(r.tracks_used, r.density);
  for (std::size_t a = 0; a < s.size(); ++a) {
    ASSERT_GE(r.track[a], 0);
    for (std::size_t b = a + 1; b < s.size(); ++b) {
      if (r.track[a] != r.track[b] || s[a].net == s[b].net) continue;
      EXPECT_EQ(s[a].extent.overlap(s[b].extent), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeftEdgeProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tw
