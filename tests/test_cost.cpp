// Tests for the stage-1 cost model: full vs partial consistency (the core
// correctness property behind the annealer's incremental deltas), the p2
// normalization (Eqn 9), and the three-term composition.
#include <gtest/gtest.h>

#include "place/cost.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

struct Fixture {
  Netlist nl;
  Placement placement;
  Rect core{-300, -300, 300, 300};
  OverlapEngine overlap;
  CostModel model;

  explicit Fixture(std::uint64_t seed = 1)
      : nl(generate_circuit(tiny_circuit(seed))),
        placement(nl),
        overlap(placement, core, {}),
        model(placement, overlap, {}) {
    Rng rng(seed);
    placement.randomize(rng, core);
    overlap.refresh_all();
  }
};

TEST(Cost, FullTermsNonNegative) {
  Fixture f;
  const CostTerms t = f.model.full();
  EXPECT_GT(t.c1, 0.0);
  EXPECT_GE(t.c2_raw, 0.0);
  EXPECT_GE(t.c3, 0.0);
  EXPECT_DOUBLE_EQ(t.total(2.0), t.c1 + 2.0 * t.c2_raw + t.c3);
}

TEST(Cost, C1MatchesTeic) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.model.full().c1, f.placement.teic());
}

TEST(Cost, C2MatchesEngine) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.model.full().c2_raw,
                   static_cast<double>(f.overlap.total_overlap()));
}

TEST(Cost, PartialC1SubsetOfFull) {
  Fixture f;
  const CellId cells[] = {0};
  EXPECT_LE(f.model.partial_c1(cells), f.model.full().c1 + 1e-9);
}

TEST(Cost, DeltaConsistency_SingleCellMove) {
  // The invariant the annealer relies on: partial-before/after deltas match
  // full-recompute deltas exactly.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Fixture f(seed);
    Rng rng(seed * 7 + 1);
    for (int trial = 0; trial < 30; ++trial) {
      const CellId i =
          static_cast<CellId>(rng.uniform_int(0, static_cast<std::int64_t>(f.nl.num_cells()) - 1));
      const CellId cells[] = {i};
      const CostTerms full_before = f.model.full();
      const double p1_before = f.model.partial_c1(cells);
      const double p2_before = f.model.partial_c2_raw(cells);
      const double p3_before = f.model.partial_c3(cells);

      f.placement.set_center(i, Point{rng.uniform_int(-250, 250),
                                      rng.uniform_int(-250, 250)});
      f.overlap.refresh(i);

      const CostTerms full_after = f.model.full();
      const double p1_after = f.model.partial_c1(cells);
      const double p2_after = f.model.partial_c2_raw(cells);
      const double p3_after = f.model.partial_c3(cells);

      EXPECT_NEAR(p1_after - p1_before, full_after.c1 - full_before.c1, 1e-6);
      EXPECT_NEAR(p2_after - p2_before, full_after.c2_raw - full_before.c2_raw,
                  1e-6);
      EXPECT_NEAR(p3_after - p3_before, full_after.c3 - full_before.c3, 1e-6);
    }
  }
}

TEST(Cost, DeltaConsistency_Interchange) {
  Fixture f(5);
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const auto n = static_cast<std::int64_t>(f.nl.num_cells());
    const CellId i = static_cast<CellId>(rng.uniform_int(0, n - 1));
    CellId j = i;
    while (j == i) j = static_cast<CellId>(rng.uniform_int(0, n - 1));
    const CellId cells[] = {i, j};

    const CostTerms full_before = f.model.full();
    const double p1b = f.model.partial_c1(cells);
    const double p2b = f.model.partial_c2_raw(cells);

    const Point ci = f.placement.state(i).center;
    const Point cj = f.placement.state(j).center;
    f.placement.set_center(i, cj);
    f.placement.set_center(j, ci);
    f.overlap.refresh(i);
    f.overlap.refresh(j);

    const CostTerms full_after = f.model.full();
    EXPECT_NEAR(f.model.partial_c1(cells) - p1b, full_after.c1 - full_before.c1,
                1e-6);
    EXPECT_NEAR(f.model.partial_c2_raw(cells) - p2b,
                full_after.c2_raw - full_before.c2_raw, 1e-6);
  }
}

TEST(Cost, DeltaConsistency_OrientationChange) {
  Fixture f(8);
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const CellId i = static_cast<CellId>(
        rng.uniform_int(0, static_cast<std::int64_t>(f.nl.num_cells()) - 1));
    const CellId cells[] = {i};
    const CostTerms fb = f.model.full();
    const double p1b = f.model.partial_c1(cells);
    const double p2b = f.model.partial_c2_raw(cells);
    f.placement.set_orient(
        i, kAllOrients[static_cast<std::size_t>(rng.uniform_int(0, 7))]);
    f.overlap.refresh(i);
    const CostTerms fa = f.model.full();
    EXPECT_NEAR(f.model.partial_c1(cells) - p1b, fa.c1 - fb.c1, 1e-6);
    EXPECT_NEAR(f.model.partial_c2_raw(cells) - p2b, fa.c2_raw - fb.c2_raw,
                1e-6);
  }
}

TEST(Cost, PartialC2CountsSetPairsOnce) {
  // partial over {i, j} must equal the full-overlap change of moving both:
  // verify against a brute-force recompute.
  Fixture f(11);
  const CellId cells[] = {0, 1};
  // Brute force contribution of cells {0,1}: all pairs touching them.
  Coord brute = f.overlap.border_overlap(0) + f.overlap.border_overlap(1) +
                f.overlap.pair_overlap(0, 1);
  const auto n = static_cast<CellId>(f.nl.num_cells());
  for (CellId k = 2; k < n; ++k)
    brute += f.overlap.pair_overlap(0, k) + f.overlap.pair_overlap(1, k);
  EXPECT_DOUBLE_EQ(f.model.partial_c2_raw(cells), static_cast<double>(brute));
}

TEST(Cost, CalibrationTargetsEta) {
  Fixture f(3);
  Rng rng(17);
  const double p2 = f.model.calibrate_p2(f.placement, f.overlap, f.core, rng, 32);
  EXPECT_GT(p2, 0.0);
  // After calibration, sampling fresh random states should give
  // p2 * avg(C2) ~ eta * avg(C1) within sampling noise.
  double sum_c1 = 0.0, sum_c2 = 0.0;
  for (int s = 0; s < 32; ++s) {
    f.placement.randomize(rng, f.core);
    f.overlap.refresh_all();
    sum_c1 += f.placement.teic();
    sum_c2 += static_cast<double>(f.overlap.total_overlap());
  }
  const double ratio = p2 * sum_c2 / sum_c1;
  EXPECT_NEAR(ratio, f.model.params().eta, 0.3);
}

TEST(Cost, CalibrationRespondsToEta) {
  Fixture f(3);
  Rng r1(17), r2(17);
  CostModel weak(f.placement, f.overlap, CostParams{0.25, 5.0});
  CostModel strong(f.placement, f.overlap, CostParams{1.0, 5.0});
  const double p_weak = weak.calibrate_p2(f.placement, f.overlap, f.core, r1, 16);
  const double p_strong =
      strong.calibrate_p2(f.placement, f.overlap, f.core, r2, 16);
  EXPECT_NEAR(p_strong / p_weak, 4.0, 0.1);
}

TEST(Cost, C3ReflectsSiteOverloads) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 64, 1.0, 1.0, 8);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  for (int i = 0; i < 3; ++i)
    nl.add_edge_pin(c, "p" + std::to_string(i), n);
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement placement(nl);
  OverlapEngine overlap(placement, Rect{-50, -50, 50, 50}, {});
  CostModel model(placement, overlap, {});
  for (int i = 0; i < 3; ++i) placement.assign_pin_to_site(c, i, 0);
  EXPECT_DOUBLE_EQ(model.full().c3, 49.0);
  const CellId cells[] = {c};
  EXPECT_DOUBLE_EQ(model.partial_c3(cells), 49.0);
  const CellId other[] = {d};
  EXPECT_DOUBLE_EQ(model.partial_c3(other), 0.0);
}

}  // namespace
}  // namespace tw
