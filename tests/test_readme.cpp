// Documentation-rot protection: the README's quickstart snippet, compiled
// and executed verbatim (modulo the trailing comment), plus API spot
// checks for every identifier the README mentions.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "fingerprint.hpp"
#include "pool/report.hpp"
#include "flow/multilevel.hpp"
#include "flow/timberwolf.hpp"
#include "workload/generator.hpp"
#include "netlist/parser.hpp"
#include "netlist/yal.hpp"
#include "pool/pool.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "workload/paper_circuits.hpp"

namespace {

TEST(Readme, QuickstartSnippetCompilesAndRuns) {
  tw::Netlist nl;                                   // or parse_netlist_file()
  tw::NetId n   = nl.add_net("clk");
  tw::CellId a  = nl.add_macro("ram", {tw::Rect{0, 0, 80, 60}});
  nl.add_fixed_pin(a, "ck", n, tw::Point{40, 0});
  tw::CellId b  = nl.add_custom("ctl", /*area=*/2000, /*aspect*/ 0.5, 2.0);
  nl.add_edge_pin(b, "ck", n);                      // uncommitted pin
  nl.validate();

  tw::TimberWolfMC flow(nl, {});                    // default parameters
  tw::Placement placement(nl);
  tw::FlowResult r = flow.run(placement);

  EXPECT_GT(r.final_teil, 0.0);
  EXPECT_GT(r.final_chip_area, 0);
  EXPECT_NE(placement.state(a).center, placement.state(b).center);
}

TEST(Readme, MultilevelSnippetCompilesAndRuns) {
  // The README's SoC-scale example, verbatim except the budget and the
  // anneal length, tightened so the test stays inside unit-test time.
  tw::Netlist nl = tw::generate_circuit(tw::soc_circuit(tw::SocTier::k1k));

  tw::recover::RunBudget budget(60'000, tw::recover::RunBudget::kUnlimited);
  tw::Stage1Params fast;
  fast.attempts_per_cell = 6;
  fast.p2_samples = 6;
  tw::ClusterWarmStart warm({}, fast);   // cluster -> coarse anneal -> project
  tw::MultilevelParams mp;
  mp.refine = fast;
  mp.seed = 42;
  mp.recover.budget = &budget;           // shared: coarse anneal + refinement

  tw::MultilevelFlow flow(nl, warm, mp);
  tw::Placement placement(nl);
  tw::MultilevelResult r = flow.run(placement);

  EXPECT_EQ(r.warm_source, "cluster");
  EXPECT_GT(r.warm.clusters, 0);
  EXPECT_GT(r.final_teil, 0.0);
  EXPECT_EQ(r.outcome, tw::recover::RunOutcome::kBudgetExhausted);
}

TEST(Readme, PoolSnippetEntryPointsExist) {
  // The README's multi-start example names paper_circuit("i3") — keep the
  // identifiers honest, but run the pool itself on a circuit sized for a
  // unit test.
  const tw::Netlist i3 = tw::generate_circuit(tw::paper_circuit("i3").spec);
  EXPECT_GT(i3.num_cells(), 0u);

  const tw::Netlist nl = tw::generate_circuit(tw::tiny_circuit(7));
  tw::pool::PoolParams pp;
  pp.replicas = 2;
  pp.master_seed = 42;
  pp.base = tw::testing::fast_flow(0);
  pp.watchdog.initial_moves = 50'000'000;

  tw::Placement best(nl);
  tw::pool::PoolResult pr = tw::pool::ReplicaPool(nl, pp).run(best);
  EXPECT_EQ(pr.stats.succeeded, 2);
  EXPECT_NE(tw::pool_report(pr).find("Replica pool report"),
            std::string::npos);
}

TEST(Readme, PlacementServiceQuickStartFlowWorks) {
  // The README's twserved/twcli walkthrough, in-process: a daemon on a
  // Unix socket, a YAL submission with the --fast knobs, a duplicate
  // served from cache, then shutdown. (The binaries are thin flag
  // parsers over exactly these entry points.)
  namespace serve = tw::serve;
  const std::string socket_path = ::testing::TempDir() + "/tw_readme.sock";
  const std::string state_dir = ::testing::TempDir() + "/tw_readme_state";
  std::filesystem::remove(socket_path);
  std::filesystem::remove_all(state_dir);
  std::filesystem::create_directories(state_dir);

  serve::DaemonConfig cfg;
  cfg.socket_path = socket_path;
  cfg.scheduler.state_dir = state_dir;
  cfg.scheduler.threads = 2;
  serve::Daemon daemon(std::move(cfg));
  std::thread server([&daemon] { daemon.run(); });

  {
    serve::Client client(socket_path);
    EXPECT_TRUE(client.ping());

    serve::SubmitRequest req;
    req.netlist_yal = tw::write_yal(tw::generate_circuit(tw::tiny_circuit(9)));
    req.params.replicas = 2;
    req.params.s1_attempts_per_cell = 12;   // twcli --fast
    req.params.s1_p2_samples = 6;
    req.params.s2_attempts_per_cell = 8;
    req.params.steiner_m = 4;

    const serve::Client::SubmitOutcome first =
        client.submit_and_wait(req, nullptr);
    ASSERT_FALSE(first.rejected.has_value());
    EXPECT_EQ(first.ack.disposition, serve::Disposition::kFresh);
    ASSERT_TRUE(first.result.has_value());
    EXPECT_EQ(first.result->status, serve::JobStatus::kCompleted);
    EXPECT_FALSE(first.result->cached);

    // "dedups identical submissions against an on-disk result cache"
    const serve::Client::SubmitOutcome dup =
        client.submit_and_wait(req, nullptr);
    ASSERT_TRUE(dup.result.has_value());
    EXPECT_TRUE(dup.result->cached);
    EXPECT_EQ(dup.result->fingerprint, first.result->fingerprint);

    // "A `stats` request snapshots the daemon's health" — the fields the
    // README's example output names must exist and be plausible here.
    const serve::StatsReply stats = client.stats();
    EXPECT_EQ(stats.jobs_in_flight, 0);
    EXPECT_GT(stats.journal_bytes, 0u);
    EXPECT_GE(stats.journal_segments, 1);
    EXPECT_GT(stats.cache_bytes, 0u);
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(stats.preempted, 0);

    // "--priority batch|normal|urgent" and the typed overloaded shed the
    // README describes are wire-level identifiers; keep them honest.
    static_assert(serve::kNumPriorityClasses == 3);
    EXPECT_STREQ(serve::to_string(serve::JobPriority::kUrgent), "urgent");
    EXPECT_STREQ(serve::to_string(serve::RejectCode::kOverloaded),
                 "overloaded");

    client.shutdown_server();
  }
  server.join();
}

TEST(Readme, MentionedEntryPointsExist) {
  // parse_netlist_file / parse_yal_file exist and reject missing files.
  EXPECT_THROW(tw::parse_netlist_file("/nonexistent.nl"), std::runtime_error);
  EXPECT_THROW(tw::parse_yal_file("/nonexistent.yal"), std::runtime_error);
}

}  // namespace
