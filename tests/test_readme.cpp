// Documentation-rot protection: the README's quickstart snippet, compiled
// and executed verbatim (modulo the trailing comment), plus API spot
// checks for every identifier the README mentions.
#include <gtest/gtest.h>

#include "flow/timberwolf.hpp"
#include "netlist/parser.hpp"
#include "netlist/yal.hpp"

namespace {

TEST(Readme, QuickstartSnippetCompilesAndRuns) {
  tw::Netlist nl;                                   // or parse_netlist_file()
  tw::NetId n   = nl.add_net("clk");
  tw::CellId a  = nl.add_macro("ram", {tw::Rect{0, 0, 80, 60}});
  nl.add_fixed_pin(a, "ck", n, tw::Point{40, 0});
  tw::CellId b  = nl.add_custom("ctl", /*area=*/2000, /*aspect*/ 0.5, 2.0);
  nl.add_edge_pin(b, "ck", n);                      // uncommitted pin
  nl.validate();

  tw::TimberWolfMC flow(nl, {});                    // default parameters
  tw::Placement placement(nl);
  tw::FlowResult r = flow.run(placement);

  EXPECT_GT(r.final_teil, 0.0);
  EXPECT_GT(r.final_chip_area, 0);
  EXPECT_NE(placement.state(a).center, placement.state(b).center);
}

TEST(Readme, MentionedEntryPointsExist) {
  // parse_netlist_file / parse_yal_file exist and reject missing files.
  EXPECT_THROW(tw::parse_netlist_file("/nonexistent.nl"), std::runtime_error);
  EXPECT_THROW(tw::parse_yal_file("/nonexistent.yal"), std::runtime_error);
}

}  // namespace
