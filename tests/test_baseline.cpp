// Tests for the baseline placers (Table 4 comparators): legality of the
// shelf packing, quadratic-placement quality vs random, and the common
// measurement helper.
#include <gtest/gtest.h>

#include "baseline/quadratic.hpp"
#include "baseline/random_place.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

bool placement_legal(const Placement& p) {
  const auto n = static_cast<CellId>(p.netlist().num_cells());
  for (CellId i = 0; i < n; ++i) {
    const auto ti = p.absolute_tiles(i);
    for (CellId j = i + 1; j < n; ++j)
      for (const Rect& a : ti)
        for (const Rect& b : p.absolute_tiles(j))
          if (a.overlaps(b)) return false;
  }
  return true;
}

TEST(Shelf, PackIsLegalWithoutSpacing) {
  const Netlist nl = generate_circuit(tiny_circuit(1));
  Placement p(nl);
  place_shelf(p, {0, 1.0});
  EXPECT_TRUE(placement_legal(p));
}

TEST(Shelf, PackIsLegalWithSpacing) {
  const Netlist nl = generate_circuit(tiny_circuit(2));
  Placement p(nl);
  place_shelf(p, {3, 1.0});
  EXPECT_TRUE(placement_legal(p));
  // Spacing guarantees a margin: shrink check — no pair of bboxes closer
  // than 2*spacing in both axes simultaneously.
  const auto n = static_cast<CellId>(nl.num_cells());
  for (CellId i = 0; i < n; ++i)
    for (CellId j = i + 1; j < n; ++j) {
      const Rect a = p.bbox(i).inflated(3);
      const Rect b = p.bbox(j).inflated(3);
      EXPECT_EQ(a.overlap_area(b), 0);
    }
}

TEST(Shelf, AspectControlsShape) {
  const Netlist nl = generate_circuit(tiny_circuit(3));
  Placement p(nl);
  const BaselineResult wide = place_shelf(p, {0, 0.5});
  Placement q(nl);
  const BaselineResult tall = place_shelf(q, {0, 2.0});
  EXPECT_GT(static_cast<double>(tall.chip_bbox.height()) / tall.chip_bbox.width(),
            static_cast<double>(wide.chip_bbox.height()) / wide.chip_bbox.width());
}

TEST(Shelf, MeasureMatchesPlacement) {
  const Netlist nl = generate_circuit(tiny_circuit(4));
  Placement p(nl);
  const BaselineResult r = place_shelf(p, {0, 1.0});
  EXPECT_DOUBLE_EQ(r.teil, p.teil());
  EXPECT_EQ(r.chip_area, r.chip_bbox.area());
}

TEST(Shelf, NominalSpacingPositive) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  EXPECT_GE(nominal_spacing(nl), 1);
}

TEST(Random, LegalAndDeterministic) {
  const Netlist nl = generate_circuit(tiny_circuit(6));
  Placement p1(nl), p2(nl);
  const BaselineResult r1 = place_random(p1, 42, {1, 1.0});
  const BaselineResult r2 = place_random(p2, 42, {1, 1.0});
  EXPECT_TRUE(placement_legal(p1));
  EXPECT_DOUBLE_EQ(r1.teil, r2.teil);
  Placement p3(nl);
  const BaselineResult r3 = place_random(p3, 43, {1, 1.0});
  EXPECT_NE(r1.teil, r3.teil);
}

TEST(Quadratic, LegalPlacement) {
  const Netlist nl = generate_circuit(tiny_circuit(7));
  Placement p(nl);
  QuadraticParams params;
  params.legalize.spacing = 1;
  place_quadratic(p, params);
  EXPECT_TRUE(placement_legal(p));
}

TEST(Quadratic, BeatsRandomOnAverage) {
  // The resistive-network placer optimizes wirelength; over several seeds
  // it must clearly beat random shelf order on the same circuit.
  double quad = 0.0, rnd = 0.0;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    const Netlist nl = generate_circuit(medium_circuit(s));
    Placement pq(nl), pr(nl);
    QuadraticParams params;
    params.seed = s;
    quad += place_quadratic(pq, params).teil;
    rnd += place_random(pr, s, {}).teil;
  }
  EXPECT_LT(quad, 0.9 * rnd);
}

TEST(Quadratic, DeterministicForSeed) {
  const Netlist nl = generate_circuit(tiny_circuit(8));
  Placement p1(nl), p2(nl);
  QuadraticParams params;
  params.seed = 5;
  const BaselineResult r1 = place_quadratic(p1, params);
  const BaselineResult r2 = place_quadratic(p2, params);
  EXPECT_DOUBLE_EQ(r1.teil, r2.teil);
}

TEST(Quadratic, MoreIterationsNotWorse) {
  const Netlist nl = generate_circuit(medium_circuit(9));
  Placement p1(nl), p2(nl);
  QuadraticParams few;
  few.iterations = 2;
  QuadraticParams many;
  many.iterations = 300;
  const double t_few = place_quadratic(p1, few).teil;
  const double t_many = place_quadratic(p2, many).teil;
  EXPECT_LT(t_many, t_few * 1.1);
}

}  // namespace
}  // namespace tw
