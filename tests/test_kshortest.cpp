// Tests for the Lawler/Yen M-shortest-paths machinery (Section 4.2.1),
// including a brute-force cross-check on a small graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "route/kshortest.hpp"

namespace tw {
namespace {

struct Grid3 {
  RoutingGraph g;
  Grid3() {
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) g.add_node(Point{c * 10, r * 10});
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) {
        const NodeId n = static_cast<NodeId>(3 * r + c);
        if (c + 1 < 3) g.add_edge(n, n + 1, 10.0, 2);
        if (r + 1 < 3) g.add_edge(n, n + 3, 10.0, 2);
      }
  }
};

/// All simple paths s->t by DFS, sorted by length (for cross-checking).
std::vector<double> brute_force_lengths(const RoutingGraph& g, NodeId s,
                                        NodeId t) {
  std::vector<double> lengths;
  std::vector<char> visited(g.num_nodes(), 0);
  std::function<void(NodeId, double)> dfs = [&](NodeId u, double len) {
    if (u == t) {
      lengths.push_back(len);
      return;
    }
    visited[static_cast<std::size_t>(u)] = 1;
    for (EdgeId e : g.incident(u)) {
      const NodeId v = g.edge(e).other(u);
      if (!visited[static_cast<std::size_t>(v)]) dfs(v, len + g.edge(e).length);
    }
    visited[static_cast<std::size_t>(u)] = 0;
  };
  dfs(s, 0.0);
  std::sort(lengths.begin(), lengths.end());
  return lengths;
}

TEST(KShortest, FirstIsShortest) {
  Grid3 f;
  const auto paths = k_shortest_paths(f.g, 0, 8, 5);
  ASSERT_FALSE(paths.empty());
  EXPECT_DOUBLE_EQ(paths[0].length, 40.0);
}

TEST(KShortest, LengthsNonDecreasing) {
  Grid3 f;
  const auto paths = k_shortest_paths(f.g, 0, 8, 12);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_GE(paths[i].length, paths[i - 1].length);
}

TEST(KShortest, PathsAreDistinct) {
  Grid3 f;
  const auto paths = k_shortest_paths(f.g, 0, 8, 12);
  std::set<std::vector<EdgeId>> seen;
  for (const auto& p : paths) EXPECT_TRUE(seen.insert(p.edges).second);
}

TEST(KShortest, PathsAreSimpleValidWalks)  {
  Grid3 f;
  for (const auto& p : k_shortest_paths(f.g, 0, 8, 12)) {
    const auto nodes = f.g.walk_nodes(0, p.edges);
    ASSERT_FALSE(nodes.empty());
    EXPECT_EQ(nodes.back(), 8);
    std::set<NodeId> uniq(nodes.begin(), nodes.end());
    EXPECT_EQ(uniq.size(), nodes.size()) << "loop in path";
    EXPECT_DOUBLE_EQ(p.length, f.g.path_length(p.edges));
  }
}

TEST(KShortest, MatchesBruteForceOnGrid) {
  Grid3 f;
  const auto brute = brute_force_lengths(f.g, 0, 8);
  const auto paths =
      k_shortest_paths(f.g, 0, 8, static_cast<int>(brute.size()) + 5);
  ASSERT_EQ(paths.size(), brute.size());  // finds every simple path
  for (std::size_t i = 0; i < brute.size(); ++i)
    EXPECT_DOUBLE_EQ(paths[i].length, brute[i]) << i;
}

TEST(KShortest, SixShortestOnGridAreKnown) {
  Grid3 f;
  // On a 3x3 unit grid, there are 6 monotone (length-40) paths 0 -> 8.
  const auto paths = k_shortest_paths(f.g, 0, 8, 7);
  ASSERT_GE(paths.size(), 7u);
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(paths[static_cast<std::size_t>(i)].length, 40.0);
  EXPECT_GT(paths[6].length, 40.0);
}

TEST(KShortest, KOneEqualsDijkstra) {
  Grid3 f;
  const auto one = k_shortest_paths(f.g, 0, 5, 1);
  ASSERT_EQ(one.size(), 1u);
  const auto sp = shortest_path(f.g, 0, 5);
  EXPECT_DOUBLE_EQ(one[0].length, sp->length);
}

TEST(KShortest, HandlesUnreachable) {
  RoutingGraph g;
  g.add_node({0, 0});
  g.add_node({1, 1});
  EXPECT_TRUE(k_shortest_paths(g, 0, 1, 4).empty());
}

TEST(KShortest, HandlesFewerPathsThanK) {
  // A path graph 0-1-2 has exactly one simple path.
  RoutingGraph g;
  for (int i = 0; i < 3; ++i) g.add_node({i * 10, 0});
  g.add_edge(0, 1, 10.0, 1);
  g.add_edge(1, 2, 10.0, 1);
  const auto paths = k_shortest_paths(g, 0, 2, 10);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(KShortest, ParallelEdgesAreDistinctPaths) {
  RoutingGraph g;
  g.add_node({0, 0});
  g.add_node({10, 0});
  g.add_edge(0, 1, 10.0, 1);
  g.add_edge(0, 1, 12.0, 1);
  const auto paths = k_shortest_paths(g, 0, 1, 5);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].length, 10.0);
  EXPECT_DOUBLE_EQ(paths[1].length, 12.0);
}

TEST(KShortestSets, DegenerateSharedNode) {
  Grid3 f;
  const NodeId sources[] = {0, 4};
  const NodeId targets[] = {4};
  const auto paths = k_shortest_between_sets(f.g, sources, targets, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].edges.empty());
  EXPECT_DOUBLE_EQ(paths[0].length, 0.0);
}

TEST(KShortestSets, FindsPathsFromTreeToPin) {
  Grid3 f;
  const NodeId sources[] = {0, 1, 2};  // a "tree" along the top row
  const NodeId targets[] = {8};
  const auto paths = k_shortest_between_sets(f.g, sources, targets, 4);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].length, 20.0);  // from node 2 straight down
  for (const auto& p : paths) {
    EXPECT_EQ(p.dst, 8);
    EXPECT_TRUE(p.src == 0 || p.src == 1 || p.src == 2);
    // Edge ids are valid in the ORIGINAL graph.
    for (EdgeId e : p.edges) EXPECT_LT(static_cast<std::size_t>(e), f.g.num_edges());
    EXPECT_DOUBLE_EQ(p.length, f.g.path_length(p.edges));
  }
}

TEST(KShortestSets, EquivalentTargetsOfferAlternatives) {
  Grid3 f;
  const NodeId sources[] = {0};
  const NodeId targets[] = {2, 6};  // either corner acceptable
  const auto paths = k_shortest_between_sets(f.g, sources, targets, 6);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].length, 20.0);
  bool to2 = false, to6 = false;
  for (const auto& p : paths) {
    if (p.dst == 2) to2 = true;
    if (p.dst == 6) to6 = true;
  }
  EXPECT_TRUE(to2);
  EXPECT_TRUE(to6);
}

TEST(KShortestSets, EmptyInputs) {
  Grid3 f;
  const NodeId some[] = {0};
  EXPECT_TRUE(k_shortest_between_sets(f.g, {}, some, 3).empty());
  EXPECT_TRUE(k_shortest_between_sets(f.g, some, {}, 3).empty());
  EXPECT_TRUE(k_shortest_between_sets(f.g, some, some, 0).empty());
}

}  // namespace
}  // namespace tw
