// Tests for pin-site generation (Section 2.4).
#include <gtest/gtest.h>

#include "netlist/pin_sites.hpp"

namespace tw {
namespace {

CellInstance rect_instance(Coord w, Coord h) {
  CellInstance inst;
  inst.tiles = {Rect{0, 0, w, h}};
  inst.width = w;
  inst.height = h;
  return inst;
}

TEST(PinSites, CountAndOrdering) {
  const auto sites = make_pin_sites(rect_instance(40, 20), 4, 1);
  ASSERT_EQ(sites.size(), 16u);
  // Edge-major order: left, right, bottom, top.
  for (int k = 0; k < 4; ++k) EXPECT_EQ(sites[static_cast<std::size_t>(k)].side, Side::kLeft);
  for (int k = 4; k < 8; ++k) EXPECT_EQ(sites[static_cast<std::size_t>(k)].side, Side::kRight);
  for (int k = 8; k < 12; ++k) EXPECT_EQ(sites[static_cast<std::size_t>(k)].side, Side::kBottom);
  for (int k = 12; k < 16; ++k) EXPECT_EQ(sites[static_cast<std::size_t>(k)].side, Side::kTop);
}

TEST(PinSites, SitesLieOnTheirEdges) {
  const auto sites = make_pin_sites(rect_instance(40, 20), 4, 1);
  for (const auto& s : sites) {
    switch (s.side) {
      case Side::kLeft: EXPECT_EQ(s.offset.x, 0); break;
      case Side::kRight: EXPECT_EQ(s.offset.x, 40); break;
      case Side::kBottom: EXPECT_EQ(s.offset.y, 0); break;
      case Side::kTop: EXPECT_EQ(s.offset.y, 20); break;
    }
    EXPECT_GE(s.offset.x, 0);
    EXPECT_LE(s.offset.x, 40);
    EXPECT_GE(s.offset.y, 0);
    EXPECT_LE(s.offset.y, 20);
  }
}

TEST(PinSites, EvenlySpacedAlongEdge) {
  const auto sites = make_pin_sites(rect_instance(40, 20), 4, 1);
  // Bottom edge sites at x = 5, 15, 25, 35 (centers of 4 subdivisions).
  EXPECT_EQ(sites[8].offset, (Point{5, 0}));
  EXPECT_EQ(sites[9].offset, (Point{15, 0}));
  EXPECT_EQ(sites[10].offset, (Point{25, 0}));
  EXPECT_EQ(sites[11].offset, (Point{35, 0}));
}

TEST(PinSites, CapacityScalesWithEdgeAndPitch) {
  const auto sites = make_pin_sites(rect_instance(40, 20), 4, 1);
  EXPECT_EQ(sites[0].capacity, 5);   // left edge: 20/4/1
  EXPECT_EQ(sites[8].capacity, 10);  // bottom edge: 40/4/1
  const auto coarse = make_pin_sites(rect_instance(40, 20), 4, 2);
  EXPECT_EQ(coarse[8].capacity, 5);  // pitch 2 halves the capacity
}

TEST(PinSites, CapacityNeverBelowOne) {
  const auto sites = make_pin_sites(rect_instance(6, 6), 8, 4);
  for (const auto& s : sites) EXPECT_GE(s.capacity, 1);
}

TEST(PinSites, RejectsBadArguments) {
  EXPECT_THROW(make_pin_sites(rect_instance(10, 10), 0, 1),
               std::invalid_argument);
  EXPECT_THROW(make_pin_sites(rect_instance(10, 10), 4, 0),
               std::invalid_argument);
}

TEST(PinSites, IndexMapping) {
  EXPECT_EQ(site_index_of(Side::kLeft, 0, 4), 0);
  EXPECT_EQ(site_index_of(Side::kLeft, 3, 4), 3);
  EXPECT_EQ(site_index_of(Side::kRight, 0, 4), 4);
  EXPECT_EQ(site_index_of(Side::kBottom, 2, 4), 10);
  EXPECT_EQ(site_index_of(Side::kTop, 3, 4), 15);
}

TEST(PinSites, SitesInMask) {
  const auto lr = sites_in_mask(kSideLeft | kSideRight, 4);
  ASSERT_EQ(lr.size(), 8u);
  EXPECT_EQ(lr.front(), 0);
  EXPECT_EQ(lr.back(), 7);
  EXPECT_EQ(sites_in_mask(kSideAny, 4).size(), 16u);
  EXPECT_EQ(sites_in_mask(kSideTop, 2).size(), 2u);
}

TEST(PinSites, TotalCapacityTracksPerimeter) {
  // Total capacity ~ perimeter / pitch (within rounding).
  const auto sites = make_pin_sites(rect_instance(100, 60), 10, 1);
  int total = 0;
  for (const auto& s : sites) total += s.capacity;
  EXPECT_EQ(total, 2 * (100 + 60));
}

}  // namespace
}  // namespace tw
