// Tests for channel definition (Section 4.1): placed-edge extraction,
// critical regions (two bounding edges, empty interior, overlapping
// regions kept), the channel graph, and pin projection.
#include <gtest/gtest.h>

#include "channel/channel_graph.hpp"
#include "place/stage1.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

/// Two 10x10 cells side by side with a 6-wide gap, inside a 60x40 core.
struct TwoCellFixture {
  Netlist nl;
  Placement placement;
  Rect core{-30, -20, 30, 20};

  TwoCellFixture() : nl(build()), placement(nl) {
    placement.set_center(0, Point{-8, 0});  // bbox {-13,-5,-3,5}
    placement.set_center(1, Point{8, 0});   // bbox {3,-5,13,5}
  }

  static Netlist build() {
    Netlist nl;
    const NetId n = nl.add_net("n");
    const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
    const CellId b = nl.add_macro("b", {Rect{0, 0, 10, 10}});
    nl.add_fixed_pin(a, "p", n, Point{10, 5});  // right edge center
    nl.add_fixed_pin(b, "q", n, Point{0, 5});   // left edge center
    return nl;
  }
};

TEST(Edges, CollectIncludesCellsAndCore) {
  TwoCellFixture f;
  const auto edges = collect_edges(f.placement, f.core);
  // 4 per rect cell + 4 core edges.
  EXPECT_EQ(edges.size(), 12u);
  int core_edges = 0;
  for (const auto& e : edges)
    if (e.is_core()) ++core_edges;
  EXPECT_EQ(core_edges, 4);
}

TEST(Edges, CoreEdgesFaceInward) {
  TwoCellFixture f;
  for (const auto& e : collect_edges(f.placement, f.core)) {
    if (!e.is_core()) continue;
    if (e.edge.pos == f.core.xlo) {
      EXPECT_EQ(e.edge.side, Side::kRight);
    }
    if (e.edge.pos == f.core.xhi) {
      EXPECT_EQ(e.edge.side, Side::kLeft);
    }
    if (e.edge.pos == f.core.ylo) {
      EXPECT_EQ(e.edge.side, Side::kTop);
    }
    if (e.edge.pos == f.core.yhi) {
      EXPECT_EQ(e.edge.side, Side::kBottom);
    }
  }
}

TEST(Edges, PinsMapToOwningCellEdges) {
  TwoCellFixture f;
  const auto edges = collect_edges(f.placement, f.core);
  const auto map = map_pins_to_edges(f.placement, edges);
  // Pin 0 is on cell 0's right edge at x = -3.
  const PlacedEdge& e0 = edges[map[0]];
  EXPECT_EQ(e0.cell, 0);
  EXPECT_EQ(e0.edge.side, Side::kRight);
  EXPECT_EQ(e0.edge.pos, -3);
  const PlacedEdge& e1 = edges[map[1]];
  EXPECT_EQ(e1.cell, 1);
  EXPECT_EQ(e1.edge.side, Side::kLeft);
}

TEST(CriticalRegions, GapBetweenFacingCells) {
  TwoCellFixture f;
  const auto edges = collect_edges(f.placement, f.core);
  const auto regions = find_critical_regions(edges);
  // Find the cell-to-cell channel: x in [-3,3], y in [-5,5].
  bool found = false;
  for (const auto& r : regions) {
    if (r.rect == (Rect{-3, -5, 3, 5})) {
      found = true;
      EXPECT_TRUE(r.vertical);
      EXPECT_EQ(r.thickness(), 6);
      EXPECT_EQ(r.length(), 10);
      // Both bounding edges belong to cells, not the core.
      EXPECT_FALSE(edges[r.edge_a].is_core());
      EXPECT_FALSE(edges[r.edge_b].is_core());
    }
  }
  EXPECT_TRUE(found);
}

TEST(CriticalRegions, CellToCoreChannelsExist) {
  TwoCellFixture f;
  const auto edges = collect_edges(f.placement, f.core);
  const auto regions = find_critical_regions(edges);
  int with_core = 0;
  for (const auto& r : regions) {
    if (r.is_junction()) continue;  // junctions have no bounding edges
    if (edges[r.edge_a].is_core() || edges[r.edge_b].is_core()) ++with_core;
  }
  EXPECT_GE(with_core, 4);  // left, right, top, bottom of the pair
}

TEST(CriticalRegions, EveryRegionHasEmptyInterior) {
  TwoCellFixture f;
  const auto edges = collect_edges(f.placement, f.core);
  const auto regions = find_critical_regions(edges);
  for (const auto& r : regions) {
    for (CellId c = 0; c < 2; ++c) {
      for (const Rect& t : f.placement.absolute_tiles(c)) {
        EXPECT_EQ(t.overlap_area(r.rect), 0)
            << "cell tile inside region " << r.rect.str();
      }
    }
  }
}

TEST(CriticalRegions, ThirdCellBlocksLongChannel) {
  // Three cells in a row: no region may span from cell 0 to cell 2.
  Netlist nl;
  const NetId n = nl.add_net("n");
  for (int i = 0; i < 3; ++i)
    nl.add_macro("c" + std::to_string(i), {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(0, "p", n, Point{10, 5});
  nl.add_fixed_pin(2, "q", n, Point{0, 5});
  Placement p(nl);
  p.set_center(0, Point{-20, 0});
  p.set_center(1, Point{0, 0});
  p.set_center(2, Point{20, 0});
  const auto edges = collect_edges(p, Rect{-40, -20, 40, 20});
  for (const auto& r : find_critical_regions(edges)) {
    const bool spans_across = r.rect.xlo <= -15 + 1 && r.rect.xhi >= 15 - 1 &&
                              r.rect.yspan().overlap({-5, 5}) > 0;
    EXPECT_FALSE(spans_across) << r.rect.str();
  }
}

TEST(CriticalRegions, OverlappingRegionsKept) {
  // Four cells forming a plus-shaped crossing: the vertical and horizontal
  // channels overlap in the middle; both must be kept (unlike Chen's
  // bottlenecks).
  Netlist nl;
  const NetId n = nl.add_net("n");
  for (int i = 0; i < 4; ++i)
    nl.add_macro("c" + std::to_string(i), {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(0, "p", n, Point{10, 5});
  nl.add_fixed_pin(1, "q", n, Point{0, 5});
  Placement p(nl);
  // Quadrant layout with a 6-wide cross gap.
  p.set_center(0, Point{-8, -8});
  p.set_center(1, Point{8, -8});
  p.set_center(2, Point{-8, 8});
  p.set_center(3, Point{8, 8});
  const auto edges = collect_edges(p, Rect{-30, -30, 30, 30});
  const auto regions = find_critical_regions(edges);
  // The four channel arms exist.
  int arms = 0;
  for (const auto& r : regions) {
    if (r.rect == (Rect{-3, -13, 3, -3}) || r.rect == (Rect{-3, 3, 3, 13}) ||
        r.rect == (Rect{-13, -3, -3, 3}) || r.rect == (Rect{3, -3, 13, 3}))
      ++arms;
  }
  EXPECT_EQ(arms, 4);
  // The crossing itself is covered by a junction region, so the channel
  // graph stays connected across it.
  bool junction = false;
  for (const auto& r : regions)
    if (r.is_junction() && r.rect.contains(Rect{-3, -3, 3, 3})) junction = true;
  EXPECT_TRUE(junction);
}

TEST(CriticalRegions, RouteCrossesJunction) {
  // Routing across the 4-cell cross must succeed (via the junction node).
  Netlist nl;
  const NetId n = nl.add_net("n");
  for (int i = 0; i < 4; ++i)
    nl.add_macro("c" + std::to_string(i), {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(0, "p", n, Point{10, 5});  // bottom-left, right edge
  nl.add_fixed_pin(3, "q", n, Point{0, 5});   // top-right, left edge
  Placement p(nl);
  p.set_center(0, Point{-8, -8});
  p.set_center(1, Point{8, -8});
  p.set_center(2, Point{-8, 8});
  p.set_center(3, Point{8, 8});
  const ChannelGraph cg = build_channel_graph(p, Rect{-30, -30, 30, 30});
  const auto targets = build_net_targets(nl, cg);
  const auto routes = m_best_routes(cg.graph, targets[0], {4, 12});
  ASSERT_FALSE(routes.empty());
  EXPECT_TRUE(route_connects(cg.graph, targets[0], routes[0]));
}

TEST(CriticalRegions, TouchingCellsGetZeroThicknessRegion) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  nl.add_macro("a", {Rect{0, 0, 10, 10}});
  nl.add_macro("b", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(0, "p", n, Point{10, 5});
  nl.add_fixed_pin(1, "q", n, Point{0, 5});
  Placement p(nl);
  p.set_center(0, Point{-5, 0});
  p.set_center(1, Point{5, 0});  // abutting at x = 0
  const auto edges = collect_edges(p, Rect{-30, -30, 30, 30});
  bool zero = false;
  for (const auto& r : find_critical_regions(edges))
    if (r.vertical && r.thickness() == 0 && r.length() == 10) zero = true;
  EXPECT_TRUE(zero);
}

TEST(ChannelGraph, SlabsTileFreeSpaceExactly) {
  TwoCellFixture f;
  const auto slabs = free_space_slabs(f.placement, f.core);
  ASSERT_FALSE(slabs.empty());
  // Non-overlapping.
  for (std::size_t a = 0; a < slabs.size(); ++a)
    for (std::size_t b = a + 1; b < slabs.size(); ++b)
      EXPECT_EQ(slabs[a].overlap_area(slabs[b]), 0);
  // Total area = core minus cells.
  Coord slab_area = 0;
  for (const Rect& s : slabs) slab_area += s.area();
  EXPECT_EQ(slab_area, f.core.area() - 2 * 100);
  // No slab intersects a cell.
  for (const Rect& s : slabs)
    for (CellId c = 0; c < 2; ++c)
      for (const Rect& t : f.placement.absolute_tiles(c))
        EXPECT_EQ(s.overlap_area(t), 0);
}

TEST(ChannelGraph, NodesEdgesAndPins) {
  TwoCellFixture f;
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  EXPECT_GT(cg.regions.size(), 0u);
  EXPECT_GT(cg.slabs.size(), 0u);
  // One graph node per slab plus one per mapped pin.
  std::size_t mapped = 0;
  for (NodeId n : cg.pin_node)
    if (n != kInvalidNode) ++mapped;
  EXPECT_EQ(mapped, f.nl.num_pins());
  EXPECT_EQ(cg.graph.num_nodes(), cg.slabs.size() + mapped);
}

TEST(ChannelGraph, PinProjectsIntoAdjacentSlab) {
  TwoCellFixture f;
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  // Pin 0 (right edge of cell 0 at (-3, 0)) must land in the slab between
  // the two cells, preserving the along-edge coordinate.
  const auto s0 = cg.pin_slab[0];
  ASSERT_GE(s0, 0);
  const Rect& slab = cg.slabs[static_cast<std::size_t>(s0)];
  EXPECT_TRUE(slab.contains(cg.graph.node_pos(cg.pin_node[0])));
  EXPECT_EQ(cg.graph.node_pos(cg.pin_node[0]).y, 0);
  EXPECT_EQ(cg.graph.node_pos(cg.pin_node[0]).x, -3);
}

TEST(ChannelGraph, PinsConnected) {
  TwoCellFixture f;
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  for (PinId p = 0; p < 2; ++p) {
    ASSERT_NE(cg.pin_node[static_cast<std::size_t>(p)], kInvalidNode);
    EXPECT_GE(cg.graph.incident(cg.pin_node[static_cast<std::size_t>(p)]).size(), 1u);
  }
}

TEST(ChannelGraph, GraphIsConnectedOnLegalPlacement) {
  TwoCellFixture f;
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  // BFS from node 0 reaches everything: the free space is connected.
  std::vector<char> vis(cg.graph.num_nodes(), 0);
  std::vector<NodeId> stack{0};
  vis[0] = 1;
  std::size_t seen = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    ++seen;
    for (EdgeId e : cg.graph.incident(u)) {
      const NodeId v = cg.graph.edge(e).other(u);
      if (!vis[static_cast<std::size_t>(v)]) {
        vis[static_cast<std::size_t>(v)] = 1;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(seen, cg.graph.num_nodes());
}

TEST(ChannelGraph, EdgeCapacityFromContact) {
  TwoCellFixture f;
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  const Coord ts = f.nl.tech().track_separation;
  for (std::size_t e = 0; e < cg.edge_slabs.size(); ++e) {
    const auto& [sa, sb] = cg.edge_slabs[e];
    const int cap = cg.graph.edge(static_cast<EdgeId>(e)).capacity;
    if (sa == sb) continue;  // pin stub
    const Rect& ra = cg.slabs[static_cast<std::size_t>(sa)];
    const Rect& rb = cg.slabs[static_cast<std::size_t>(sb)];
    const Coord contact = std::max(ra.xspan().overlap(rb.xspan()),
                                   ra.yspan().overlap(rb.yspan()));
    EXPECT_EQ(cap, static_cast<int>(contact / ts));
  }
}

TEST(ChannelGraph, NetTargetsGroupEquivalentPins) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 10, 10}});
  const PinId p0 = nl.add_fixed_pin(a, "p0", n, Point{10, 3});
  const PinId p1 = nl.add_fixed_pin(a, "p1", n, Point{0, 3});  // feed-through
  nl.add_fixed_pin(b, "q", n, Point{0, 5});
  nl.set_equivalent(p0, p1);
  Placement p(nl);
  p.set_center(a, Point{-8, 0});
  p.set_center(b, Point{8, 0});
  const ChannelGraph cg = build_channel_graph(p, Rect{-30, -20, 30, 20});
  const auto targets = build_net_targets(nl, cg);
  ASSERT_EQ(targets.size(), 1u);
  // Two logical pins: {p0, p1} and {q}.
  ASSERT_EQ(targets[0].pins.size(), 2u);
  std::size_t sizes[2] = {targets[0].pins[0].size(), targets[0].pins[1].size()};
  std::sort(sizes, sizes + 2);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
}

TEST(ChannelGraph, RegionDensitiesCountNetsOnce) {
  TwoCellFixture f;
  const ChannelGraph cg = build_channel_graph(f.placement, f.core);
  // Fake route: a single net using the first two graph edges twice over.
  std::vector<std::vector<EdgeId>> routes{{0, 1}};
  const auto d = region_densities(cg, routes);
  for (int v : d) EXPECT_LE(v, 1);
}

TEST(ChannelGraph, OnStage1Output) {
  // End-to-end sanity: channel definition on a real annealed placement.
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Stage1Params params;
  params.attempts_per_cell = 10;
  params.p2_samples = 6;
  Stage1Placer placer(nl, params, 4);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  const ChannelGraph cg = build_channel_graph(placement, r.core);
  EXPECT_GT(cg.regions.size(), nl.num_cells());
  std::size_t mapped = 0;
  for (NodeId n : cg.pin_node)
    if (n != kInvalidNode) ++mapped;
  EXPECT_EQ(mapped, nl.num_pins());
}

}  // namespace
}  // namespace tw
