// Tests for the stage-1 annealing placer: improvement over random,
// overlap removal, determinism, trace structure, and the behavior the
// paper attributes to its knobs.
#include <gtest/gtest.h>

#include "place/stage1.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

Stage1Params fast_params() {
  Stage1Params p;
  p.attempts_per_cell = 12;  // keep unit tests quick
  p.p2_samples = 8;
  return p;
}

TEST(Stage1, ImprovesTeilOverRandom) {
  const Netlist nl = generate_circuit(tiny_circuit(1));
  // Random baseline: mean TEIL over a few random placements in the core.
  Stage1Placer placer(nl, fast_params(), 42);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);

  Placement rnd(nl);
  Rng rng(7);
  double random_teil = 0.0;
  for (int i = 0; i < 8; ++i) {
    rnd.randomize(rng, r.core);
    random_teil += rnd.teil();
  }
  random_teil /= 8.0;
  EXPECT_LT(r.final_teil, 0.8 * random_teil);
}

TEST(Stage1, RemovesMostOverlap) {
  const Netlist nl = generate_circuit(tiny_circuit(2));
  Stage1Placer placer(nl, fast_params(), 3);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  // The *bare* cell overlap (legality) must be a small fraction of the
  // total cell area. The reported residual_overlap additionally counts
  // shared routing margins (the estimator's expansions) and is larger.
  OverlapEngine bare(placement, r.core, {});
  EXPECT_LT(static_cast<double>(bare.total_overlap()),
            0.08 * static_cast<double>(nl.total_cell_area()));
  EXPECT_GE(r.residual_overlap, bare.total_overlap());
}

TEST(Stage1, DeterministicForSeed) {
  const Netlist nl = generate_circuit(tiny_circuit(3));
  Placement p1(nl), p2(nl);
  const Stage1Result r1 = Stage1Placer(nl, fast_params(), 11).run(p1);
  const Stage1Result r2 = Stage1Placer(nl, fast_params(), 11).run(p2);
  EXPECT_DOUBLE_EQ(r1.final_teic, r2.final_teic);
  EXPECT_EQ(r1.residual_overlap, r2.residual_overlap);
  for (const auto& c : nl.cells())
    EXPECT_EQ(p1.state(c.id).center, p2.state(c.id).center);
}

TEST(Stage1, DifferentSeedsDiffer) {
  const Netlist nl = generate_circuit(tiny_circuit(3));
  Placement p1(nl), p2(nl);
  const Stage1Result r1 = Stage1Placer(nl, fast_params(), 1).run(p1);
  const Stage1Result r2 = Stage1Placer(nl, fast_params(), 2).run(p2);
  EXPECT_NE(r1.final_teic, r2.final_teic);
}

TEST(Stage1, TraceStructure) {
  const Netlist nl = generate_circuit(tiny_circuit(4));
  Stage1Placer placer(nl, fast_params(), 5);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  ASSERT_GT(r.trace.size(), 10u);
  EXPECT_EQ(static_cast<int>(r.trace.size()), r.temperature_steps);
  // Temperatures strictly decrease; windows never grow.
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LT(r.trace[i].t, r.trace[i - 1].t);
    EXPECT_LE(r.trace[i].window_x, r.trace[i - 1].window_x);
  }
  // Acceptance near 100 percent at T_inf, low at the end.
  EXPECT_GT(r.trace.front().acceptance_rate, 0.85);
  EXPECT_LT(r.trace.back().acceptance_rate, 0.45);
}

TEST(Stage1, StopsAtMinimumWindow) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  Stage1Placer placer(nl, fast_params(), 5);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  EXPECT_EQ(r.trace.back().window_x, 6);
  EXPECT_LT(r.temperature_steps, fast_params().max_temperature_steps);
}

TEST(Stage1, TInfinityScalesWithCellArea) {
  // Eqn 19: T_inf proportional to the average effective cell area.
  CircuitSpec small = tiny_circuit(6);
  CircuitSpec big = tiny_circuit(6);
  big.name = "big";
  big.mean_cell_dim = small.mean_cell_dim * 3;
  const Netlist nls = generate_circuit(small);
  const Netlist nlb = generate_circuit(big);
  Placement ps(nls), pb(nlb);
  const Stage1Result rs = Stage1Placer(nls, fast_params(), 1).run(ps);
  const Stage1Result rb = Stage1Placer(nlb, fast_params(), 1).run(pb);
  EXPECT_GT(rb.t_infinity, 4.0 * rs.t_infinity);
}

TEST(Stage1, CellsEndInsideCore) {
  const Netlist nl = generate_circuit(tiny_circuit(7));
  Stage1Placer placer(nl, fast_params(), 9);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  // Centers stay in the core by construction; the overwhelming share of
  // cell area must also lie inside (border penalty drives it in).
  Coord inside = 0, total = 0;
  for (const auto& c : nl.cells()) {
    for (const Rect& t : placement.absolute_tiles(c.id)) {
      total += t.area();
      inside += t.intersect(r.core).area();
    }
  }
  EXPECT_GT(static_cast<double>(inside), 0.9 * static_cast<double>(total));
}

TEST(Stage1, PinSitesNotOverloadedAtEnd) {
  CircuitSpec spec = tiny_circuit(8);
  spec.custom_fraction = 0.5;
  const Netlist nl = generate_circuit(spec);
  Stage1Placer placer(nl, fast_params(), 13);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  // kappa = 5 drives overloads to zero by the end of stage 1.
  EXPECT_LE(r.overloaded_sites, 1);
}

TEST(Stage1, RunsWithPureMacroCircuit) {
  CircuitSpec spec = tiny_circuit(9);
  spec.custom_fraction = 0.0;
  const Netlist nl = generate_circuit(spec);
  Stage1Placer placer(nl, fast_params(), 1);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  EXPECT_GT(r.final_teil, 0.0);
}

TEST(Stage1, RunsWithAllCustomCircuit) {
  CircuitSpec spec = tiny_circuit(10);
  spec.custom_fraction = 1.0;
  const Netlist nl = generate_circuit(spec);
  Stage1Placer placer(nl, fast_params(), 1);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  EXPECT_GT(r.final_teil, 0.0);
  EXPECT_EQ(placement.overloaded_sites(), r.overloaded_sites);
}

TEST(Stage1, AttemptCountScalesWithAc) {
  const Netlist nl = generate_circuit(tiny_circuit(11));
  Stage1Params p1 = fast_params();
  p1.attempts_per_cell = 5;
  Stage1Params p2 = fast_params();
  p2.attempts_per_cell = 10;
  Placement a(nl), b(nl);
  const Stage1Result r1 = Stage1Placer(nl, p1, 1).run(a);
  const Stage1Result r2 = Stage1Placer(nl, p2, 1).run(b);
  EXPECT_GT(r2.attempts, r1.attempts);
}

TEST(Stage1, MoreAttemptsNoWorseQuality) {
  const Netlist nl = generate_circuit(medium_circuit(1));
  Stage1Params lo = fast_params();
  lo.attempts_per_cell = 4;
  Stage1Params hi = fast_params();
  hi.attempts_per_cell = 40;
  double lo_sum = 0.0, hi_sum = 0.0;
  for (std::uint64_t s = 1; s <= 2; ++s) {
    Placement a(nl), b(nl);
    lo_sum += Stage1Placer(nl, lo, s).run(a).final_teil;
    hi_sum += Stage1Placer(nl, hi, s).run(b).final_teil;
  }
  EXPECT_LT(hi_sum, lo_sum * 1.05);
}

TEST(Stage1, NetWeightingShortensCriticalNet) {
  // Eqn 6's weighting factors: a heavily weighted net should end with a
  // clearly smaller span than the same net unweighted (averaged over
  // seeds). Build a circuit where one net competes against several others.
  auto build = [](double weight) {
    Netlist nl;
    const NetId critical = nl.add_net("critical", weight, weight);
    std::vector<NetId> rest;
    for (int i = 0; i < 6; ++i)
      rest.push_back(nl.add_net("n" + std::to_string(i)));
    for (int c = 0; c < 8; ++c)
      nl.add_macro("c" + std::to_string(c), {Rect{0, 0, 30, 30}});
    // The critical net joins cells 0 and 7; the rest form a chain that
    // pulls 0 and 7 apart.
    nl.add_fixed_pin(0, "crit", critical, Point{15, 15});
    nl.add_fixed_pin(7, "crit", critical, Point{15, 15});
    for (int i = 0; i < 6; ++i) {
      nl.add_fixed_pin(static_cast<CellId>(i), "a", rest[static_cast<std::size_t>(i)], Point{0, 15});
      nl.add_fixed_pin(static_cast<CellId>(i + 1), "b", rest[static_cast<std::size_t>(i)], Point{30, 15});
    }
    nl.validate();
    return nl;
  };

  double weighted = 0.0, unweighted = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const double w : {1.0, 8.0}) {
      const Netlist nl = build(w);
      Stage1Params params;
      params.attempts_per_cell = 25;
      params.p2_samples = 8;
      Stage1Placer placer(nl, params, seed * 101);
      Placement placement(nl);
      placer.run(placement);
      const Rect bb = placement.net_bbox(0);
      (w > 1.0 ? weighted : unweighted) +=
          static_cast<double>(bb.half_perimeter());
    }
  }
  EXPECT_LT(weighted, unweighted);
}

TEST(Stage1, P2Positive) {
  const Netlist nl = generate_circuit(tiny_circuit(12));
  Stage1Placer placer(nl, fast_params(), 2);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  EXPECT_GT(r.p2, 0.0);
}

}  // namespace
}  // namespace tw
