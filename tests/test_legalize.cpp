// Tests for overlap removal (legalization): spreading, relocation, the
// row-repack fallback, and preservation of placement quality.
#include <gtest/gtest.h>

#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

Netlist small_circuit() {
  Netlist nl;
  const NetId n = nl.add_net("n");
  for (int i = 0; i < 4; ++i)
    nl.add_macro("c" + std::to_string(i), {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(0, "p", n, Point{10, 5});
  nl.add_fixed_pin(1, "q", n, Point{0, 5});
  return nl;
}

TEST(Legalize, BareOverlapMeasure) {
  const Netlist nl = small_circuit();
  Placement p(nl);
  for (CellId c = 0; c < 4; ++c) p.set_center(c, Point{0, 0});
  EXPECT_EQ(bare_overlap(p), 6 * 100);  // all pairs fully stacked
  p.set_center(0, Point{-50, -50});
  p.set_center(1, Point{50, -50});
  p.set_center(2, Point{-50, 50});
  p.set_center(3, Point{50, 50});
  EXPECT_EQ(bare_overlap(p), 0);
}

TEST(Legalize, SeparatesStackedCells) {
  const Netlist nl = small_circuit();
  Placement p(nl);
  const Rect core{-100, -100, 100, 100};
  for (CellId c = 0; c < 4; ++c)
    p.set_center(c, Point{c, 0});  // heavy mutual overlap
  const LegalizeResult r = legalize_spread(p, core);
  EXPECT_TRUE(r.success());
  EXPECT_EQ(bare_overlap(p), 0);
  EXPECT_GT(r.initial_overlap, 0);
}

TEST(Legalize, RespectsMargin) {
  const Netlist nl = small_circuit();
  Placement p(nl);
  const Rect core{-100, -100, 100, 100};
  for (CellId c = 0; c < 4; ++c) p.set_center(c, Point{c, c});
  const LegalizeResult r = legalize_spread(p, core, 4);
  EXPECT_TRUE(r.success());
  // Every pair of cells keeps a gap of at least the margin in one axis.
  for (CellId i = 0; i < 4; ++i)
    for (CellId j = static_cast<CellId>(i + 1); j < 4; ++j) {
      const Rect a = p.bbox(i).inflated(2);
      const Rect b = p.bbox(j).inflated(2);
      EXPECT_EQ(a.overlap_area(b), 0) << i << "," << j;
    }
}

TEST(Legalize, ClampsIntoCore) {
  const Netlist nl = small_circuit();
  Placement p(nl);
  const Rect core{-100, -100, 100, 100};
  p.set_center(0, Point{500, 500});  // far outside
  p.set_center(1, Point{-50, -50});
  p.set_center(2, Point{50, -50});
  p.set_center(3, Point{-50, 50});
  legalize_spread(p, core);
  EXPECT_TRUE(core.inflated(1).contains(p.bbox(0)));
}

TEST(Legalize, NoopOnLegalPlacement) {
  const Netlist nl = small_circuit();
  Placement p(nl);
  const Rect core{-100, -100, 100, 100};
  p.set_center(0, Point{-50, -50});
  p.set_center(1, Point{50, -50});
  p.set_center(2, Point{-50, 50});
  p.set_center(3, Point{50, 50});
  const std::vector<Point> before{p.state(0).center, p.state(1).center,
                                  p.state(2).center, p.state(3).center};
  const LegalizeResult r = legalize_spread(p, core);
  EXPECT_TRUE(r.success());
  EXPECT_LE(r.iterations, 2);
  for (CellId c = 0; c < 4; ++c)
    EXPECT_EQ(p.state(c).center, before[static_cast<std::size_t>(c)]);
}

TEST(Legalize, RepackAlwaysLegal) {
  const Netlist nl = generate_circuit(tiny_circuit(3));
  Placement p(nl);
  Rng rng(5);
  const Rect core{-200, -200, 200, 200};
  p.randomize(rng, core);
  legalize_repack(p, core, 2);
  EXPECT_EQ(bare_overlap(p), 0);
}

TEST(Legalize, RepackPreservesRoughOrdering) {
  const Netlist nl = generate_circuit(tiny_circuit(4));
  Placement p(nl);
  const Rect core{-300, -300, 300, 300};
  // Two cells at opposite corners should stay on their sides after repack.
  Rng rng(6);
  p.randomize(rng, core);
  p.set_center(0, Point{-290, -290});
  p.set_center(1, Point{290, 290});
  legalize_repack(p, core, 2);
  EXPECT_LT(p.state(0).center.y, p.state(1).center.y);
}

TEST(Legalize, Stage1OutputLegalizesCheaply) {
  // The end-to-end property the stage-2 pipeline depends on: stage 1 with
  // the penalty ramp leaves so little overlap that legalization barely
  // moves the TEIL.
  const Netlist nl = generate_circuit(tiny_circuit(5));
  Stage1Params params;
  params.attempts_per_cell = 20;
  params.p2_samples = 8;
  Placement p(nl);
  const Stage1Result s1 = Stage1Placer(nl, params, 9).run(p);
  const double teil_before = p.teil();
  const LegalizeResult r =
      legalize_spread(p, s1.core, 2 * nl.tech().track_separation);
  // At most a sliver of overlap remains (under the repack tolerance of 2
  // percent of the cell area) and the wirelength survives.
  EXPECT_LT(static_cast<double>(r.final_overlap),
            0.02 * static_cast<double>(nl.total_cell_area()));
  EXPECT_FALSE(r.repacked);
  EXPECT_LT(p.teil(), 1.2 * teil_before);
}

TEST(Legalize, RandomPlacementsAlwaysEndNearlyLegal) {
  // Property sweep: any random configuration must end with overlap under
  // the repack tolerance (2 percent of cell area), via the fallback chain.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist nl = generate_circuit(tiny_circuit(seed));
    Placement p(nl);
    Rng rng(seed * 13);
    // Core sized like the estimator's target.
    DynamicAreaEstimator est(nl);
    const Rect core = est.compute_initial_core();
    p.randomize(rng, core);
    const LegalizeResult r = legalize_spread(p, core, 2);
    EXPECT_LE(static_cast<double>(r.final_overlap),
              0.02 * static_cast<double>(nl.total_cell_area()))
        << "seed " << seed;
  }
}

TEST(Legalize, RelocateFixesIsolatedCollision) {
  const Netlist nl = small_circuit();
  Placement p(nl);
  const Rect core{-100, -100, 100, 100};
  p.set_center(0, Point{-50, -50});
  p.set_center(1, Point{-50, -50});  // stacked on 0
  p.set_center(2, Point{50, 50});
  p.set_center(3, Point{-50, 50});
  EXPECT_TRUE(relocate_overlapping(p, core, 2));
  EXPECT_EQ(bare_overlap(p), 0);
}

}  // namespace
}  // namespace tw
