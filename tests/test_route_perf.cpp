// Regression tests for the router performance core (see docs/PERF.md,
// "Global router"): randomized equivalence of A* against plain Dijkstra,
// of the deviation k-shortest algorithm against brute force and against
// its Dijkstra-driven twin, consistency + same-seed determinism of the
// worklist-driven interchange, and the zero-allocation warm-query
// guarantee of SearchWorkspace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <new>
#include <optional>
#include <set>
#include <vector>

#include "route/interchange.hpp"
#include "route/kshortest.hpp"
#include "route/shortest_path.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. Replacing the global operator new/delete pair
// lets the warm-query test assert that a hot search performs literally
// zero heap allocations. The counter is process-wide but the tests are
// single-threaded, so before/after deltas around a measured region are
// exact.
namespace {
long long g_new_calls = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_new_calls;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tw {
namespace {

// ---------------------------------------------------------------------------
// Random instances. Edge lengths and extra costs are small integers so
// every path length is an exactly representable double and cross-checks
// can compare with ==.

/// w x h grid with unit spacing 10. `exact_manhattan` gives every edge its
/// manhattan length (the channel-graph case, A* scale alpha = 1); otherwise
/// lengths are random in [5, 15] per step, which exercises the degraded
/// alpha < 1 (and alpha = 0) regimes. A few random chord edges break the
/// regular structure.
RoutingGraph random_grid(Rng& rng, int w, int h, bool exact_manhattan) {
  RoutingGraph g;
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) g.add_node(Point{x * 10, y * 10});
  auto id = [w](int x, int y) { return static_cast<NodeId>(y * w + x); };
  auto len = [&](double manhattan) {
    return exact_manhattan ? manhattan
                           : static_cast<double>(rng.uniform_int(5, 15));
  };
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) g.add_edge(id(x, y), id(x + 1, y), len(10.0), 2);
      if (y + 1 < h) g.add_edge(id(x, y), id(x, y + 1), len(10.0), 2);
    }
  const int chords = static_cast<int>(rng.uniform_int(0, w));
  for (int c = 0; c < chords; ++c) {
    const auto a = static_cast<NodeId>(rng.uniform_int(0, w * h - 1));
    const auto b = static_cast<NodeId>(rng.uniform_int(0, w * h - 1));
    if (a == b) continue;
    const Point pa = g.node_pos(a), pb = g.node_pos(b);
    const double manhattan =
        static_cast<double>(std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y));
    g.add_edge(a, b, len(manhattan), 2);
  }
  return g;
}

/// 1-3 distinct nodes, disjoint from `avoid`.
std::vector<NodeId> random_node_set(Rng& rng, const RoutingGraph& g,
                                    const std::set<NodeId>& avoid) {
  std::set<NodeId> picked;
  const int want = static_cast<int>(rng.uniform_int(1, 3));
  for (int tries = 0; static_cast<int>(picked.size()) < want && tries < 64;
       ++tries) {
    const auto n = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.num_nodes()) - 1));
    if (!avoid.count(n)) picked.insert(n);
  }
  return {picked.begin(), picked.end()};
}

double query_cost(const RoutingGraph& g, const PathResult& p,
                  const PathQuery& q) {
  double c = 0.0;
  for (EdgeId e : p.edges) {
    c += g.edge(e).length;
    if (q.extra_cost) c += (*q.extra_cost)[static_cast<std::size_t>(e)];
  }
  return c;
}

// ---------------------------------------------------------------------------
// A* vs Dijkstra. Goal direction changes which nodes are explored — and,
// among equally-near targets, possibly which one settles first — but
// never the returned length; and each mode on its own is a pure function
// of the query (bit-for-bit repeatable).

TEST(RoutePerf, AStarMatchesDijkstraFuzz) {
  Rng rng(20260806);
  int compared = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const bool manhattan = rng.uniform_int(0, 1) == 0;
    const int w = static_cast<int>(rng.uniform_int(2, 6));
    const int h = static_cast<int>(rng.uniform_int(2, 6));
    RoutingGraph g = random_grid(rng, w, h, manhattan);

    const auto sources = random_node_set(rng, g, {});
    const auto targets = random_node_set(
        rng, g, std::set<NodeId>(sources.begin(), sources.end()));
    if (targets.empty()) continue;

    PathQuery q;
    std::vector<double> extra;
    if (rng.uniform_int(0, 1) == 0) {
      extra.resize(g.num_edges());
      for (double& x : extra) x = static_cast<double>(rng.uniform_int(0, 5));
      q.extra_cost = &extra;
    }
    std::vector<char> blocked;
    if (rng.uniform_int(0, 1) == 0) {
      blocked.assign(g.num_edges(), 0);
      for (auto&& b : blocked) b = rng.uniform_int(0, 4) == 0 ? 1 : 0;
      q.blocked_edges = &blocked;
    }

    SearchWorkspace astar;
    SearchWorkspace plain;
    plain.set_astar(false);
    const auto pa = shortest_path_between_sets(g, sources, targets, q, astar);
    const auto pd = shortest_path_between_sets(g, sources, targets, q, plain);
    ASSERT_EQ(pa.has_value(), pd.has_value());
    if (!pa) continue;
    ++compared;
    EXPECT_EQ(pa->length, pd->length);
    EXPECT_EQ(pa->length, query_cost(g, *pa, q));
    EXPECT_EQ(pd->length, query_cost(g, *pd, q));

    // Each mode is deterministic: the same query replayed returns the
    // identical path, not merely an equal-length one.
    const auto pa2 = shortest_path_between_sets(g, sources, targets, q, astar);
    ASSERT_TRUE(pa2.has_value());
    EXPECT_EQ(pa2->edges, pa->edges);
    EXPECT_EQ(pa2->src, pa->src);
    EXPECT_EQ(pa2->dst, pa->dst);

    // The cost cap keeps equal-cost paths and prunes anything beyond it.
    PathQuery capped = q;
    capped.cost_cap = pa->length;
    SearchWorkspace ws;
    const auto pc = shortest_path_between_sets(g, sources, targets, capped, ws);
    ASSERT_TRUE(pc.has_value());
    EXPECT_EQ(pc->length, pa->length);
    capped.cost_cap = pa->length - 0.5;
    const auto pn = shortest_path_between_sets(g, sources, targets, capped, ws);
    EXPECT_FALSE(pn.has_value());
  }
  EXPECT_GT(compared, 100);  // the fuzz actually compared real paths
}

// ---------------------------------------------------------------------------
// Deviation algorithm. Brute force enumerates every simple path by DFS;
// the k shortest of those must match k_shortest_paths exactly by length.
// The Dijkstra-driven twin (A* off — no exact-heuristic sweep, no goal
// direction; only the cost cap differs in reached nodes) must produce the
// identical length sequence.

std::vector<double> brute_force_lengths(const RoutingGraph& g, NodeId s,
                                        NodeId t) {
  std::vector<double> lengths;
  std::vector<char> visited(g.num_nodes(), 0);
  std::function<void(NodeId, double)> dfs = [&](NodeId u, double len) {
    if (u == t) {
      lengths.push_back(len);
      return;
    }
    visited[static_cast<std::size_t>(u)] = 1;
    for (EdgeId e : g.incident(u)) {
      const NodeId v = g.edge(e).other(u);
      if (!visited[static_cast<std::size_t>(v)]) dfs(v, len + g.edge(e).length);
    }
    visited[static_cast<std::size_t>(u)] = 0;
  };
  dfs(s, 0.0);
  std::sort(lengths.begin(), lengths.end());
  return lengths;
}

TEST(RoutePerf, KShortestMatchesBruteForceFuzz) {
  Rng rng(42);
  for (int iter = 0; iter < 120; ++iter) {
    const bool manhattan = rng.uniform_int(0, 1) == 0;
    const int w = static_cast<int>(rng.uniform_int(2, 3));
    const int h = static_cast<int>(rng.uniform_int(2, 3));
    RoutingGraph g = random_grid(rng, w, h, manhattan);
    const NodeId s = 0;
    const auto t = static_cast<NodeId>(g.num_nodes() - 1);

    const auto ref = brute_force_lengths(g, s, t);
    const int k = static_cast<int>(rng.uniform_int(1, 12));
    SearchWorkspace astar;
    SearchWorkspace plain;
    plain.set_astar(false);
    const auto got = k_shortest_paths(g, s, t, k, astar);
    const auto twin = k_shortest_paths(g, s, t, k, plain);

    const std::size_t expect_n =
        std::min<std::size_t>(static_cast<std::size_t>(k), ref.size());
    ASSERT_EQ(got.size(), expect_n);
    ASSERT_EQ(twin.size(), expect_n);
    std::set<std::vector<EdgeId>> seen;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].length, ref[i]);
      EXPECT_EQ(twin[i].length, ref[i]);
      EXPECT_EQ(got[i].length, g.path_length(got[i].edges));
      EXPECT_TRUE(seen.insert(got[i].edges).second) << "duplicate path";
      const auto nodes = g.walk_nodes(got[i].src, got[i].edges);
      ASSERT_FALSE(nodes.empty());
      EXPECT_EQ(nodes.front(), s);
      EXPECT_EQ(nodes.back(), t);
      EXPECT_EQ(std::set<NodeId>(nodes.begin(), nodes.end()).size(),
                nodes.size())
          << "loop in path";
    }
  }
}

TEST(RoutePerf, KShortestBetweenSetsAStarTwinFuzz) {
  Rng rng(7);
  for (int iter = 0; iter < 80; ++iter) {
    const bool manhattan = rng.uniform_int(0, 1) == 0;
    const int w = static_cast<int>(rng.uniform_int(2, 5));
    const int h = static_cast<int>(rng.uniform_int(2, 5));
    RoutingGraph g = random_grid(rng, w, h, manhattan);
    const auto sources = random_node_set(rng, g, {});
    const auto targets = random_node_set(
        rng, g, std::set<NodeId>(sources.begin(), sources.end()));
    if (targets.empty()) continue;
    const int k = static_cast<int>(rng.uniform_int(1, 8));

    SearchWorkspace astar;
    SearchWorkspace plain;
    plain.set_astar(false);
    const auto got = k_shortest_between_sets(g, sources, targets, k, astar);
    const auto twin = k_shortest_between_sets(g, sources, targets, k, plain);
    ASSERT_EQ(got.size(), twin.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i].length, twin[i].length);
  }
}

// ---------------------------------------------------------------------------
// Worklist interchange. The incrementally maintained overflowed-edge list
// must leave the router bit-for-bit deterministic per seed, and its final
// bookkeeping must agree with an exhaustive recomputation from the
// selected routes (the same certificate the router itself asserts).

TEST(RoutePerf, InterchangeWorklistConsistentAndDeterministic) {
  Rng rng(99);
  for (int iter = 0; iter < 8; ++iter) {
    RoutingGraph g = random_grid(rng, 5, 5, true);
    std::vector<NetTargets> nets;
    const int n_nets = static_cast<int>(rng.uniform_int(6, 14));
    for (int i = 0; i < n_nets; ++i) {
      NetTargets net;
      const int pins = static_cast<int>(rng.uniform_int(2, 4));
      std::set<NodeId> uniq;
      while (static_cast<int>(uniq.size()) < pins)
        uniq.insert(static_cast<NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(g.num_nodes()) - 1)));
      for (NodeId n : uniq) net.pins.push_back({n});
      nets.push_back(std::move(net));
    }

    GlobalRouterParams params;
    params.seed = static_cast<std::uint64_t>(iter) + 1;
    GlobalRouter router_a(g, params);
    GlobalRouter router_b(g, params);
    const auto ra = router_a.route(nets);
    const auto rb = router_b.route(nets);

    // Same seed, same instance -> identical selection and bookkeeping.
    EXPECT_EQ(ra.choice, rb.choice);
    EXPECT_EQ(ra.edge_usage, rb.edge_usage);
    EXPECT_EQ(ra.total_length, rb.total_length);
    EXPECT_EQ(ra.total_overflow, rb.total_overflow);
    EXPECT_EQ(ra.interchange_attempts, rb.interchange_attempts);

    // Exhaustive recomputation from the selected routes.
    std::vector<int> usage(g.num_edges(), 0);
    double length = 0.0;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const Route* r = ra.route_of(i);
      if (r == nullptr) continue;
      length += r->length;
      for (EdgeId e : r->edges) ++usage[static_cast<std::size_t>(e)];
    }
    EXPECT_EQ(usage, ra.edge_usage);
    EXPECT_EQ(length, ra.total_length);
    EXPECT_EQ(total_overflow(g, usage), ra.total_overflow);
    EXPECT_GT(ra.counters.dijkstra_runs, 0);
    EXPECT_EQ(ra.counters.interchange_trials, ra.interchange_attempts);
  }
}

// ---------------------------------------------------------------------------
// Zero-allocation warm queries. Once a workspace (and the output path's
// capacity) has warmed up on a graph, further searches must not touch the
// heap allocator at all — the core throughput guarantee of the epoch-
// stamped workspace design.

TEST(RoutePerf, WarmQueryPerformsNoAllocations) {
  Rng rng(123);
  RoutingGraph g = random_grid(rng, 8, 8, true);
  SearchWorkspace ws;
  const NodeId sources[] = {0};
  const NodeId targets[] = {static_cast<NodeId>(g.num_nodes() - 1),
                            static_cast<NodeId>(g.num_nodes() / 2)};
  const PathQuery q;
  PathResult out;

  // Warm-up: sizes the stamped arrays, the heap, and the path buffer.
  ws.clear_blocks();
  NodeId hit = search(g, sources, targets, q, ws);
  ASSERT_NE(hit, kInvalidNode);
  ASSERT_TRUE(extract_path(g, ws, hit, out));
  const double warm_length = out.length;

  for (int repeat = 0; repeat < 3; ++repeat) {
    const long long before = g_new_calls;
    ws.clear_blocks();
    hit = search(g, sources, targets, q, ws);
    const bool ok = extract_path(g, ws, hit, out);
    const long long after = g_new_calls;
    ASSERT_NE(hit, kInvalidNode);
    ASSERT_TRUE(ok);
    EXPECT_EQ(out.length, warm_length);
    EXPECT_EQ(after - before, 0) << "warm query allocated";
  }
}

}  // namespace
}  // namespace tw
