// Tests for points, spans and rectangles: the exact integer geometry the
// overlap penalty (Eqn 8) and the channel definition depend on.
#include <gtest/gtest.h>

#include "geom/rect.hpp"

namespace tw {
namespace {

TEST(Point, Arithmetic) {
  const Point a{3, 4}, b{-1, 2};
  EXPECT_EQ((a + b), (Point{2, 6}));
  EXPECT_EQ((a - b), (Point{4, 2}));
  EXPECT_EQ(manhattan(a, b), 4 + 2);
}

TEST(Span, OverlapCases) {
  const Span a{0, 10};
  EXPECT_EQ(a.overlap({5, 15}), 5);
  EXPECT_EQ(a.overlap({10, 20}), 0);  // touching only
  EXPECT_EQ(a.overlap({11, 20}), 0);  // disjoint
  EXPECT_EQ(a.overlap({2, 8}), 6);    // contained
  EXPECT_EQ(a.overlap({-5, 25}), 10); // containing
}

TEST(Span, IntersectAndContains) {
  const Span a{0, 10};
  EXPECT_EQ(a.intersect({5, 15}), (Span{5, 10}));
  EXPECT_FALSE(a.intersect({12, 15}).valid());
  EXPECT_TRUE(a.contains(0));
  EXPECT_TRUE(a.contains(10));
  EXPECT_FALSE(a.contains(11));
}

TEST(Rect, BasicMeasures) {
  const Rect r{1, 2, 5, 9};
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 7);
  EXPECT_EQ(r.area(), 28);
  EXPECT_EQ(r.half_perimeter(), 11);
  EXPECT_EQ(r.center(), (Point{3, 5}));
  EXPECT_TRUE(r.valid());
}

TEST(Rect, InvalidRectHasZeroMeasures) {
  const Rect r{5, 5, 1, 1};
  EXPECT_FALSE(r.valid());
  EXPECT_EQ(r.width(), 0);
  EXPECT_EQ(r.area(), 0);
}

TEST(Rect, FromCenterOddAndEven) {
  const Rect e = Rect::from_center({0, 0}, 10, 4);
  EXPECT_EQ(e, (Rect{-5, -2, 5, 2}));
  const Rect o = Rect::from_center({0, 0}, 5, 3);
  EXPECT_EQ(o.width(), 5);
  EXPECT_EQ(o.height(), 3);
}

TEST(Rect, OverlapArea) {
  const Rect a{0, 0, 10, 10};
  EXPECT_EQ(a.overlap_area({5, 5, 15, 15}), 25);
  EXPECT_EQ(a.overlap_area({10, 0, 20, 10}), 0);  // edge contact
  EXPECT_EQ(a.overlap_area({20, 20, 30, 30}), 0);
  EXPECT_EQ(a.overlap_area({2, 2, 4, 4}), 4);     // contained
  EXPECT_EQ(a.overlap_area(a), 100);              // identical
}

TEST(Rect, OverlapIsSymmetric) {
  const Rect a{0, 0, 7, 9}, b{3, -2, 12, 5};
  EXPECT_EQ(a.overlap_area(b), b.overlap_area(a));
}

TEST(Rect, IntersectAndUnion) {
  const Rect a{0, 0, 10, 10}, b{5, 5, 15, 15};
  EXPECT_EQ(a.intersect(b), (Rect{5, 5, 10, 10}));
  EXPECT_EQ(a.bounding_union(b), (Rect{0, 0, 15, 15}));
}

TEST(Rect, ContainsPointAndRect) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.contains(Point{0, 10}));
  EXPECT_FALSE(a.contains(Point{11, 0}));
  EXPECT_TRUE(a.contains(Rect{2, 2, 8, 8}));
  EXPECT_FALSE(a.contains(Rect{2, 2, 12, 8}));
}

TEST(Rect, InflateAsymmetric) {
  const Rect a{0, 0, 10, 10};
  EXPECT_EQ(a.inflated(1, 2, 3, 4), (Rect{-1, -3, 12, 14}));
  EXPECT_EQ(a.inflated(2), (Rect{-2, -2, 12, 12}));
}

TEST(Rect, Translate) {
  const Rect a{0, 0, 4, 4};
  EXPECT_EQ(a.translated({3, -2}), (Rect{3, -2, 7, 2}));
}

TEST(Rect, BoundingBoxOfMany) {
  const std::vector<Rect> v{{0, 0, 2, 2}, {5, -3, 6, 1}, {-1, 0, 0, 4}};
  EXPECT_EQ(bounding_box(v), (Rect{-1, -3, 6, 4}));
  EXPECT_THROW(bounding_box({}), std::invalid_argument);
}

TEST(Rect, TotalArea) {
  EXPECT_EQ(total_area({{0, 0, 2, 2}, {10, 10, 12, 13}}), 4 + 6);
  EXPECT_EQ(total_area({}), 0);
}

TEST(Rect, OrientedRectRoundTripDims) {
  const Rect r{1, 2, 4, 7};  // inside a 10 x 20 cell
  for (Orient o : kAllOrients) {
    const Rect t = apply_orient(o, r, 10, 20);
    EXPECT_EQ(t.area(), r.area()) << to_string(o);
    if (swaps_axes(o)) {
      EXPECT_EQ(t.width(), r.height()) << to_string(o);
    } else {
      EXPECT_EQ(t.width(), r.width()) << to_string(o);
    }
    // Stays inside the oriented bbox.
    const Rect obb{0, 0, oriented_width(o, 10, 20), oriented_height(o, 10, 20)};
    EXPECT_TRUE(obb.contains(t)) << to_string(o);
  }
}

}  // namespace
}  // namespace tw
