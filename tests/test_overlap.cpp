// Tests for the overlap engine: Eqns 7-8 tile-pair overlap, dynamic vs
// static expansion modes, and the dummy-border core containment
// (footnote 16).
#include <gtest/gtest.h>

#include "place/overlap.hpp"

namespace tw {
namespace {

Netlist pair_circuit() {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(a, "p", n, Point{10, 5});
  nl.add_fixed_pin(b, "q", n, Point{0, 5});
  return nl;
}

Netlist l_shape_circuit() {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro_polygon(
      "L", {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 4, 4}});
  nl.add_fixed_pin(a, "p", n, Point{0, 0});
  nl.add_fixed_pin(b, "q", n, Point{0, 0});
  return nl;
}

TEST(Overlap, NoExpansionBasicPairOverlap) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  const Rect core{-100, -100, 100, 100};
  OverlapEngine ov(p, core, {});
  p.set_center(0, Point{0, 0});
  p.set_center(1, Point{5, 0});  // 5 overlap in x, 10 in y
  ov.refresh_all();
  EXPECT_EQ(ov.pair_overlap(0, 1), 50);
  EXPECT_EQ(ov.pair_overlap(1, 0), 50);
  EXPECT_EQ(ov.total_overlap(), 50);
}

TEST(Overlap, DisjointCellsZero) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  OverlapEngine ov(p, Rect{-100, -100, 100, 100}, {});
  p.set_center(0, Point{-20, 0});
  p.set_center(1, Point{20, 0});
  ov.refresh_all();
  EXPECT_EQ(ov.total_overlap(), 0);
}

TEST(Overlap, TouchingCellsZeroWithoutExpansion) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  OverlapEngine ov(p, Rect{-100, -100, 100, 100}, {});
  p.set_center(0, Point{0, 0});
  p.set_center(1, Point{10, 0});  // abutting at x=5
  ov.refresh_all();
  EXPECT_EQ(ov.total_overlap(), 0);
}

TEST(Overlap, StaticExpansionCreatesSpacingPressure) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  std::vector<std::array<Coord, 4>> exp(2, {2, 2, 2, 2});
  OverlapEngine ov(p, Rect{-100, -100, 100, 100}, exp);
  p.set_center(0, Point{0, 0});
  p.set_center(1, Point{10, 0});  // abutting; expanded tiles overlap 4 x 14
  ov.refresh_all();
  EXPECT_EQ(ov.pair_overlap(0, 1), 4 * 14);
}

TEST(Overlap, RectilinearTilePairSum) {
  const Netlist nl = l_shape_circuit();
  Placement p(nl);
  OverlapEngine ov(p, Rect{-100, -100, 100, 100}, {});
  // Put the 4x4 cell inside the L's notch (upper right): no overlap.
  p.set_center(0, Point{0, 0});   // L bbox {-5,-5,5,5}; notch x[0,5] y[0,5]
  p.set_center(1, Point{2, 2});   // fits the notch region x[0,4] y[0,4]
  ov.refresh_all();
  EXPECT_EQ(ov.pair_overlap(0, 1), 0);
  // Move it to overlap the stem.
  p.set_center(1, Point{-3, -3});
  ov.refresh(1);
  EXPECT_GT(ov.pair_overlap(0, 1), 0);
}

TEST(Overlap, BorderOverlapOutsideCore) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  const Rect core{-50, -50, 50, 50};
  OverlapEngine ov(p, core, {});
  p.set_center(0, Point{0, 0});
  p.set_center(1, Point{48, 0});  // bbox {43,-5,53,5}: 3 x 10 outside
  ov.refresh_all();
  EXPECT_EQ(ov.border_overlap(0), 0);
  EXPECT_EQ(ov.border_overlap(1), 30);
  EXPECT_EQ(ov.total_overlap(), 30);
}

TEST(Overlap, FullyOutsideCoreCountsWholeArea) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  const Rect core{-50, -50, 50, 50};
  OverlapEngine ov(p, core, {});
  p.set_center(0, Point{0, 0});
  p.set_center(1, Point{200, 200});
  ov.refresh_all();
  EXPECT_EQ(ov.border_overlap(1), 100);
}

TEST(Overlap, CellOverlapSumsPairsAndBorder) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  const Rect core{-50, -50, 50, 50};
  OverlapEngine ov(p, core, {});
  p.set_center(0, Point{48, 0});   // 30 outside
  p.set_center(1, Point{44, 0});   // overlaps cell 0 and pokes out 0
  ov.refresh_all();
  EXPECT_EQ(ov.cell_overlap(0), ov.pair_overlap(0, 1) + ov.border_overlap(0));
}

TEST(Overlap, TotalEqualsSumOverPairs) {
  const Netlist nl = l_shape_circuit();
  Placement p(nl);
  OverlapEngine ov(p, Rect{-100, -100, 100, 100}, {});
  p.set_center(0, Point{0, 0});
  p.set_center(1, Point{1, 1});
  ov.refresh_all();
  EXPECT_EQ(ov.total_overlap(),
            ov.pair_overlap(0, 1) + ov.border_overlap(0) + ov.border_overlap(1));
}

TEST(Overlap, RefreshTracksMovement) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  OverlapEngine ov(p, Rect{-100, -100, 100, 100}, {});
  p.set_center(0, Point{0, 0});
  p.set_center(1, Point{0, 0});
  ov.refresh_all();
  EXPECT_EQ(ov.pair_overlap(0, 1), 100);
  p.set_center(1, Point{50, 0});
  ov.refresh(1);
  EXPECT_EQ(ov.pair_overlap(0, 1), 0);
}

TEST(Overlap, SetExpansionsPerCell) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  OverlapEngine ov(p, Rect{-100, -100, 100, 100}, {});
  p.set_center(0, Point{0, 0});
  ov.refresh_all();
  ov.set_expansions(0, {1, 2, 3, 4});
  const auto& tiles = ov.expanded_tiles(0);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], (Rect{-5 - 1, -5 - 3, 5 + 2, 5 + 4}));
  EXPECT_EQ(ov.expansions(0), (std::array<Coord, 4>{1, 2, 3, 4}));
}

TEST(Overlap, ExpansionCountMismatchThrows) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  std::vector<std::array<Coord, 4>> wrong(5, {0, 0, 0, 0});
  EXPECT_THROW(OverlapEngine(p, Rect{-10, -10, 10, 10}, wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace tw
