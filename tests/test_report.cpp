// Tests for the run-report and SVG visualization modules, the stage-1
// instance-selection move, and the footnote-27 Prim generalization.
#include <gtest/gtest.h>

#include <fstream>

#include "channel/channel_graph.hpp"
#include "flow/report.hpp"
#include "flow/visualize.hpp"
#include "place/legalize.hpp"
#include "util/svg_writer.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

TEST(SvgWriter, ProducesWellFormedDocument) {
  SvgWriter svg(Rect{0, 0, 100, 50});
  svg.rect({10, 10, 30, 20}, "#4e79a7", "#222", 1.0, 0.8);
  svg.line({0, 0}, {100, 50}, "#555", 2.0);
  svg.circle({50, 25}, 3.0, "#f00");
  svg.text({50, 25}, "hello", 12.0);
  const std::string s = svg.str();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  EXPECT_NE(s.find("<rect"), std::string::npos);
  EXPECT_NE(s.find("<line"), std::string::npos);
  EXPECT_NE(s.find("<circle"), std::string::npos);
  EXPECT_NE(s.find(">hello</text>"), std::string::npos);
}

TEST(SvgWriter, FlipsYAxis) {
  SvgWriter svg(Rect{0, 0, 100, 100});
  // A rect at the top of the world must appear near svg-y 0.
  svg.rect({0, 90, 10, 100}, "#000");
  const std::string s = svg.str();
  EXPECT_NE(s.find("y=\"0\""), std::string::npos);
}

TEST(SvgWriter, SkipsInvalidRects) {
  SvgWriter svg(Rect{0, 0, 10, 10});
  svg.rect({5, 5, 1, 1}, "#000");  // invalid
  EXPECT_EQ(svg.str().find("<rect"), std::string::npos);
}

TEST(SvgWriter, SavesToFile) {
  SvgWriter svg(Rect{0, 0, 10, 10});
  svg.rect({0, 0, 10, 10}, "#abc");
  const std::string path = ::testing::TempDir() + "/tw_test.svg";
  svg.save(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  EXPECT_THROW(svg.save("/nonexistent/dir/x.svg"), std::runtime_error);
}

TEST(Visualize, PlacementSvgShowsEveryCell) {
  const Netlist nl = generate_circuit(tiny_circuit(1));
  Placement p(nl);
  Rng rng(2);
  const Rect core{-300, -300, 300, 300};
  p.randomize(rng, core);
  const std::string s = placement_svg(p, core);
  for (const auto& cell : nl.cells())
    EXPECT_NE(s.find(">" + cell.name + "<"), std::string::npos) << cell.name;
  // One circle per pin.
  std::size_t circles = 0, pos = 0;
  while ((pos = s.find("<circle", pos)) != std::string::npos) {
    ++circles;
    ++pos;
  }
  EXPECT_EQ(circles, nl.num_pins());
}

TEST(Visualize, RoutingSvgContainsRoutesAndChannels) {
  const Netlist nl = generate_circuit(tiny_circuit(2));
  Placement p(nl);
  DynamicAreaEstimator est(nl);
  const Rect core = est.compute_initial_core();
  Rng rng(3);
  p.randomize(rng, core);
  legalize_spread(p, core, 2);
  const ChannelGraph cg = build_channel_graph(p, core);
  GlobalRouter router(cg.graph, {{4, 12}, 5});
  const auto routed = router.route(build_net_targets(nl, cg));
  const std::string s = routing_svg(p, core, cg, routed);
  EXPECT_NE(s.find("<line"), std::string::npos);   // route segments
  EXPECT_NE(s.find("<rect"), std::string::npos);   // cells / channels
}

TEST(Report, SummaryMatchesPlacement) {
  const Netlist nl = generate_circuit(tiny_circuit(3));
  Placement p(nl);
  Rng rng(4);
  const Rect core{-400, -400, 400, 400};
  p.randomize(rng, core);
  const PlacementSummary s = summarize_placement(p);
  EXPECT_DOUBLE_EQ(s.teil, p.teil());
  EXPECT_EQ(s.cells, nl.num_cells());
  EXPECT_EQ(s.cell_area, nl.total_cell_area());
  EXPECT_GT(s.chip_area, 0);
  EXPECT_GT(s.utilization, 0.0);
  EXPECT_LE(s.utilization, 1.0);
  EXPECT_EQ(s.bare_overlap, bare_overlap(p));
}

TEST(Report, FlowReportContainsKeySections) {
  const Netlist nl = generate_circuit(tiny_circuit(4));
  FlowParams params;
  params.stage1.attempts_per_cell = 10;
  params.stage1.p2_samples = 6;
  params.stage2.attempts_per_cell = 8;
  params.stage2.router.steiner.m = 3;
  params.seed = 7;
  TimberWolfMC flow(nl, params);
  Placement placement(nl);
  const FlowResult r = flow.run(placement);
  const std::string report = flow_report(nl, placement, r);
  EXPECT_NE(report.find("stage 1"), std::string::npos);
  EXPECT_NE(report.find("stage 2"), std::string::npos);
  EXPECT_NE(report.find("final"), std::string::npos);
  EXPECT_NE(report.find("longest nets"), std::string::npos);
  EXPECT_NE(report.find("utilization"), std::string::npos);
}

TEST(InstanceSelection, AnnealerPicksBetterInstance) {
  // A cell whose second instance is dramatically better shaped for its
  // connectivity: a tall 10x160 block connecting left and right neighbors
  // vs a flat 160x10 alternative. The annealer should usually end on an
  // orientation/instance combination with the small bbox span.
  Netlist nl;
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  const CellId left = nl.add_macro("left", {Rect{0, 0, 40, 40}});
  const CellId right = nl.add_macro("right", {Rect{0, 0, 40, 40}});
  const CellId mid = nl.add_macro("mid", {Rect{0, 0, 10, 160}});
  nl.add_fixed_pin(mid, "a", n1, Point{0, 80});
  nl.add_fixed_pin(mid, "b", n2, Point{10, 80});
  nl.add_instance(mid, {Rect{0, 0, 160, 10}},
                  {Point{0, 5}, Point{160, 5}});
  nl.add_fixed_pin(left, "a", n1, Point{40, 20});
  nl.add_fixed_pin(right, "b", n2, Point{0, 20});
  nl.validate();

  Stage1Params params;
  params.attempts_per_cell = 60;
  params.p2_samples = 8;
  Stage1Placer placer(nl, params, 11);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);
  EXPECT_GT(r.final_teil, 0.0);
  // Whichever instance won, the run must have evaluated instance moves:
  // the chosen instance is a legal index.
  const InstanceId chosen = placement.state(mid).instance;
  EXPECT_TRUE(chosen == 0 || chosen == 1);
}

TEST(InstanceSelection, GeneratorEmitsMultiInstanceMacros) {
  CircuitSpec spec = medium_circuit(5);
  spec.custom_fraction = 0.0;
  spec.rectilinear_fraction = 0.0;
  spec.multi_instance_fraction = 1.0;
  const Netlist nl = generate_circuit(spec);
  int multi = 0;
  for (const auto& c : nl.cells())
    if (c.instances.size() > 1) ++multi;
  EXPECT_EQ(multi, spec.num_cells);
  EXPECT_NO_THROW(nl.validate());
  // Transposed instance has swapped dims.
  const Cell& c0 = nl.cell(0);
  EXPECT_EQ(c0.instances[1].width, c0.instances[0].height);
  EXPECT_EQ(c0.instances[1].height, c0.instances[0].width);
}

TEST(PrimK, BranchingFindsAtLeastAsGoodRoutes) {
  // 4x4 grid net with 4 pins: prim_k > 0 explores alternative connection
  // orders; the best route must be no worse than the base algorithm's.
  RoutingGraph g;
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) g.add_node(Point{c * 10, r * 10});
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) {
      const NodeId n = static_cast<NodeId>(4 * r + c);
      if (c + 1 < 4) g.add_edge(n, n + 1, 10.0, 2);
      if (r + 1 < 4) g.add_edge(n, n + 4, 10.0, 2);
    }
  NetTargets net;
  net.pins = {{0}, {3}, {12}, {15}};
  SteinerParams base{4, 12, 0};
  SteinerParams branched{4, 12, 2};
  const auto r0 = m_best_routes(g, net, base);
  const auto r2 = m_best_routes(g, net, branched);
  ASSERT_FALSE(r0.empty());
  ASSERT_FALSE(r2.empty());
  EXPECT_LE(r2[0].length, r0[0].length);
  for (const auto& r : r2) EXPECT_TRUE(route_connects(g, net, r));
}

}  // namespace
}  // namespace tw
