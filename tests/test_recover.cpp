// The recover subsystem in isolation: bounds-checked serialization,
// checkpoint framing (magic/version/size/CRC, atomic temp+rename writes),
// corruption and truncation handling — a damaged file must always yield a
// typed CheckpointError, never UB — plus RunBudget / FaultPlan semantics
// and the graceful wind-down of a budget-limited flow.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "check/validate.hpp"
#include "fingerprint.hpp"
#include "flow/timberwolf.hpp"
#include "recover/budget.hpp"
#include "recover/checkpoint.hpp"
#include "recover/fault.hpp"
#include "recover/serialize.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

using recover::ByteReader;
using recover::ByteWriter;
using recover::CheckpointErrc;
using recover::CheckpointError;
using recover::DiskFault;
using recover::DiskFaultPlan;
using recover::DiskSite;
using recover::FaultPlan;
using recover::FaultSite;
using recover::FlowCheckpoint;
using recover::RunBudget;
using recover::RunOutcome;
using testing::fast_flow;

std::string temp_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------- serialize

TEST(Serialize, RoundTripsEveryType) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-(1ll << 40));
  w.f64(-0.1);
  w.vec_i32({1, -2, 3});
  const std::vector<std::uint8_t> bytes = w.bytes();

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -(1ll << 40));
  EXPECT_EQ(r.f64(), -0.1);  // bit-exact via bit_cast
  EXPECT_EQ(r.vec_i32(), (std::vector<std::int32_t>{1, -2, 3}));
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serialize, ShortReadsThrowTruncated) {
  ByteWriter w;
  w.u32(7);
  const std::vector<std::uint8_t> bytes = w.bytes();
  ByteReader r(bytes);
  EXPECT_THROW(r.u64(), CheckpointError);
  try {
    ByteReader r2(bytes);
    r2.u64();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kTruncated);
  }
}

TEST(Serialize, GiantLengthPrefixIsRejectedBeforeAllocating) {
  // A corrupted length prefix larger than the remaining bytes must fail
  // the validation, not attempt a multi-gigabyte allocation.
  ByteWriter w;
  w.u32(0x7FFFFFFFu);
  const std::vector<std::uint8_t> bytes = w.bytes();
  ByteReader r(bytes);
  EXPECT_THROW(r.vec_i32(), CheckpointError);
}

TEST(Serialize, TrailingBytesAreCorrupt) {
  ByteWriter w;
  w.u32(1);
  w.u8(0);
  const std::vector<std::uint8_t> bytes = w.bytes();
  ByteReader r(bytes);
  (void)r.u32();
  EXPECT_THROW(r.expect_end(), CheckpointError);
}

TEST(Serialize, Crc32MatchesReferenceVector) {
  // The standard check value of CRC-32/IEEE: crc("123456789").
  const std::string s = "123456789";
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  EXPECT_EQ(recover::crc32(bytes), 0xCBF43926u);
}

// ------------------------------------------------------------------ budget

TEST(RunBudget, UnlimitedNeverStops) {
  RunBudget b;
  for (int i = 0; i < 1000; ++i) b.charge_move();
  b.charge_step();
  EXPECT_FALSE(b.stop_requested());
}

TEST(RunBudget, MoveAndStepLimitsTrigger) {
  RunBudget moves(5, RunBudget::kUnlimited);
  for (int i = 0; i < 4; ++i) moves.charge_move();
  EXPECT_FALSE(moves.stop_requested());
  moves.charge_move();
  EXPECT_TRUE(moves.stop_requested());
  EXPECT_EQ(moves.stop_outcome(), RunOutcome::kBudgetExhausted);

  RunBudget steps(RunBudget::kUnlimited, 2);
  steps.charge_step();
  EXPECT_FALSE(steps.stop_requested());
  steps.charge_step();
  EXPECT_TRUE(steps.stop_requested());
}

TEST(RunBudget, CancellationWinsOverExhaustion) {
  RunBudget b(1, RunBudget::kUnlimited);
  b.charge_move();
  b.request_cancel();
  EXPECT_TRUE(b.stop_requested());
  EXPECT_EQ(b.stop_outcome(), RunOutcome::kCancelled);
}

// ------------------------------------------------------------------- fault

TEST(FaultPlan, FiresAtTheArmedPollExactlyOnce) {
  FaultPlan plan;
  plan.kill_at(FaultSite::kStage1Step, 2);
  EXPECT_NO_THROW(plan.poll(FaultSite::kStage1Step));  // poll 0
  EXPECT_NO_THROW(plan.poll(FaultSite::kStage1Step));  // poll 1
  EXPECT_NO_THROW(plan.poll(FaultSite::kStage2Step));  // other site
  try {
    plan.poll(FaultSite::kStage1Step);  // poll 2 — armed
    FAIL() << "expected InjectedFault";
  } catch (const recover::InjectedFault& e) {
    EXPECT_EQ(e.site(), FaultSite::kStage1Step);
    EXPECT_EQ(e.count(), 2);
  }
  // Each arm fires at most once; later polls pass.
  EXPECT_NO_THROW(plan.poll(FaultSite::kStage1Step));
  EXPECT_EQ(plan.count(FaultSite::kStage1Step), 4);
}

// -------------------------------------------------------------- checkpoint

/// Runs a short checkpointed flow and returns the latest checkpoint path.
std::string make_checkpoint(const std::string& dir) {
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Placement p(nl);
  FlowParams params = fast_flow(77);
  params.recover.checkpoint_dir = dir;
  params.recover.checkpoint_every = 1;
  (void)TimberWolfMC(nl, params).run(p);
  const auto latest = recover::find_latest_checkpoint(dir);
  EXPECT_TRUE(latest.has_value());
  return *latest;
}

TEST(Checkpoint, EncodeDecodeIsAFixedPoint) {
  const std::string path = make_checkpoint(temp_dir("tw_ckpt_roundtrip"));
  const FlowCheckpoint cp = recover::load_checkpoint(path);
  const std::vector<std::uint8_t> once = recover::encode_checkpoint(cp);
  const FlowCheckpoint back = recover::decode_checkpoint(once);
  EXPECT_EQ(recover::encode_checkpoint(back), once);
}

TEST(Checkpoint, AtomicWriteLeavesNoTempFile) {
  const std::string path = make_checkpoint(temp_dir("tw_ckpt_atomic"));
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(Checkpoint, MissingFileIsIoError) {
  try {
    (void)recover::load_checkpoint("/nonexistent/ckpt-000001.twcp");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kIo);
  }
}

TEST(Checkpoint, BitFlipsAreDetected) {
  const std::string path = make_checkpoint(temp_dir("tw_ckpt_flip"));
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 16u);
  // Flip one bit at a spread of offsets covering magic, version, size,
  // CRC, and payload; every damaged file must fail with a typed error.
  for (std::size_t off = 0; off < bytes.size();
       off += 1 + bytes.size() / 97) {
    std::vector<char> damaged = bytes;
    damaged[off] ^= 0x10;
    const std::string bad = path + ".flip";
    std::ofstream(bad, std::ios::binary | std::ios::trunc)
        .write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
    try {
      (void)recover::load_checkpoint(bad);
      FAIL() << "flip at offset " << off << " went undetected";
    } catch (const CheckpointError&) {
      // Expected: kBadMagic / kBadVersion / kTruncated / kBadCrc,
      // depending on which field the flip landed in.
    }
  }
}

TEST(Checkpoint, TruncationsAreDetectedAtEveryLength) {
  const std::string path = make_checkpoint(temp_dir("tw_ckpt_trunc"));
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 16u);
  for (std::size_t len = 0; len < bytes.size();
       len += 1 + bytes.size() / 61) {
    const std::string bad = path + ".trunc";
    std::ofstream(bad, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(len));
    try {
      (void)recover::load_checkpoint(bad);
      FAIL() << "truncation to " << len << " bytes went undetected";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.code(), CheckpointErrc::kTruncated) << "len " << len;
    }
  }
}

TEST(Checkpoint, CorruptPayloadUnderValidCrcIsStillTyped) {
  // Damage the payload, then re-stamp the CRC so the frame checks pass:
  // the decoder's own validation must catch the bad content.
  const std::string path = make_checkpoint(temp_dir("tw_ckpt_payload"));
  const FlowCheckpoint cp = recover::load_checkpoint(path);
  std::vector<std::uint8_t> payload = recover::encode_checkpoint(cp);
  int detected = 0;
  for (std::size_t off = 0; off < payload.size(); ++off) {
    std::vector<std::uint8_t> damaged = payload;
    damaged[off] ^= 0xFF;
    try {
      const FlowCheckpoint dec = recover::decode_checkpoint(damaged);
      // Some flips produce a different-but-well-formed checkpoint (e.g.
      // in a metric double); those decode fine. What must never happen
      // is a crash, which the sanitizer jobs would catch here.
      (void)dec;
    } catch (const CheckpointError&) {
      ++detected;
    }
  }
  // Flips landing in validated fields (phase, enums, orients, length
  // prefixes) must be caught.
  EXPECT_GT(detected, 0) << "of " << payload.size();
}

TEST(Checkpoint, SinkNumbersFilesAndFindsLatest) {
  const std::string dir = temp_dir("tw_ckpt_sink");
  const std::string path = make_checkpoint(dir);
  EXPECT_EQ(std::filesystem::path(path).filename().string().rfind("ckpt-", 0),
            0u);
  // The latest file must be the numerically largest.
  int max_seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    int n = 0;
    if (std::sscanf(name.c_str(), "ckpt-%d.twcp", &n) == 1)
      max_seen = std::max(max_seen, n);
  }
  int latest_n = 0;
  ASSERT_EQ(std::sscanf(std::filesystem::path(path).filename().c_str(),
                        "ckpt-%d.twcp", &latest_n),
            1);
  EXPECT_EQ(latest_n, max_seen);
  EXPECT_GT(max_seen, 1);
}

TEST(Checkpoint, FindLatestOnMissingOrEmptyDirIsNull) {
  EXPECT_FALSE(recover::find_latest_checkpoint("/nonexistent/dir").has_value());
  const std::string dir = temp_dir("tw_ckpt_empty");
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(recover::find_latest_checkpoint(dir).has_value());
}

TEST(Checkpoint, SinkSurfacesIoErrorsAsTyped) {
  // Target directory path occupied by a regular file: the sink cannot
  // create it and must say so — a checkpoint is never silently dropped.
  const std::string dir = temp_dir("tw_ckpt_io");
  std::filesystem::create_directories(dir);
  const std::string blocker = dir + "/not-a-dir";
  { std::ofstream(blocker) << "occupied"; }
  try {
    recover::FileCheckpointSink sink(blocker + "/sub");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kIo);
  }

  // Unwritable directory: the write (not the construction) fails, again
  // typed. Root bypasses permission bits, so this half only runs
  // unprivileged (CI does; the container may not).
  if (::geteuid() != 0) {
    const std::string ro = dir + "/readonly";
    std::filesystem::create_directories(ro);
    std::filesystem::permissions(ro, std::filesystem::perms::owner_read |
                                         std::filesystem::perms::owner_exec);
    recover::FileCheckpointSink sink(ro);
    try {
      (void)sink.save(FlowCheckpoint{});
      FAIL() << "expected CheckpointError";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.code(), CheckpointErrc::kIo);
    }
    std::filesystem::permissions(ro, std::filesystem::perms::owner_all);
  }
}

TEST(Checkpoint, SinkRetentionKeepsNewestK) {
  const std::string dir = temp_dir("tw_ckpt_keep");
  recover::FileCheckpointSink sink(dir, /*keep=*/3);
  std::string last;
  for (int i = 0; i < 10; ++i) last = sink.save(FlowCheckpoint{});
  EXPECT_EQ(sink.saved(), 10);

  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    names.push_back(entry.path().filename().string());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{
                       "ckpt-000008.twcp", "ckpt-000009.twcp",
                       "ckpt-000010.twcp"}));
  EXPECT_EQ(recover::find_latest_checkpoint(dir), last);
}

TEST(Checkpoint, SinkResumesNumberingAfterExistingFiles) {
  // A retried attempt's sink must never number below an earlier attempt's
  // files, or find_latest_checkpoint would keep returning the stale one.
  const std::string dir = temp_dir("tw_ckpt_renumber");
  {
    recover::FileCheckpointSink first(dir);
    for (int i = 0; i < 3; ++i) (void)first.save(FlowCheckpoint{});
  }
  recover::FileCheckpointSink second(dir);
  const std::string next = second.save(FlowCheckpoint{});
  EXPECT_EQ(std::filesystem::path(next).filename().string(),
            "ckpt-000004.twcp");
  EXPECT_EQ(recover::find_latest_checkpoint(dir), next);
}

TEST(Checkpoint, SinkQuotaPrunesForRoomThenRefusesTyped) {
  // Size one empty-checkpoint frame via an unbounded probe sink (frames
  // are identical for identical checkpoints).
  std::uint64_t frame = 0;
  {
    recover::FileCheckpointSink probe(temp_dir("tw_ckpt_quota_probe"));
    (void)probe.save(FlowCheckpoint{});
    frame = probe.bytes();
    ASSERT_GT(frame, 0u);
  }

  // With retention to prune, the quota makes room instead of refusing:
  // every save lands, and the directory never exceeds the budget.
  const std::string dir = temp_dir("tw_ckpt_quota");
  recover::FileCheckpointSink sink(dir, /*keep=*/2,
                                   /*quota_bytes=*/2 * frame + frame / 2);
  for (int i = 0; i < 5; ++i) (void)sink.save(FlowCheckpoint{});
  EXPECT_EQ(sink.saved(), 5);
  EXPECT_LE(sink.bytes(), sink.quota_bytes());
  EXPECT_EQ(sink.prune_failures(), 0);

  // With nothing prunable (keep=0 retains everything), the save that
  // would burst the quota is refused *before* writing: typed, and the
  // directory is exactly as it was.
  const std::string tight_dir = temp_dir("tw_ckpt_quota_tight");
  recover::FileCheckpointSink tight(tight_dir, /*keep=*/0,
                                    /*quota_bytes=*/2 * frame);
  (void)tight.save(FlowCheckpoint{});
  const std::string last = tight.save(FlowCheckpoint{});
  try {
    (void)tight.save(FlowCheckpoint{});
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kQuotaExceeded);
  }
  EXPECT_EQ(tight.saved(), 2);
  EXPECT_EQ(tight.bytes(), 2 * frame);
  int files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(tight_dir))
    ++files;
  EXPECT_EQ(files, 2) << "a refused save must not leave partial files";
  EXPECT_EQ(recover::find_latest_checkpoint(tight_dir), last);
}

TEST(Checkpoint, SinkHonorsInjectedDiskFaults) {
  const std::string dir = temp_dir("tw_ckpt_fault");
  DiskFaultPlan plan;
  plan.fail_at(DiskSite::kCheckpointWrite, 1, DiskFault::kEnospc);
  plan.fail_at(DiskSite::kCheckpointWrite, 2, DiskFault::kShortWrite);
  recover::FileCheckpointSink sink(dir, /*keep=*/0, /*quota_bytes=*/0,
                                   &plan);
  const std::string first = sink.save(FlowCheckpoint{});  // write 0: clean
  for (int i = 0; i < 2; ++i) {  // write 1: ENOSPC, write 2: short write
    try {
      (void)sink.save(FlowCheckpoint{});
      FAIL() << "expected CheckpointError";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.code(), CheckpointErrc::kIo);
    }
  }
  EXPECT_EQ(sink.saved(), 1);
  // Neither failure reached the durable name: the newest *valid*
  // checkpoint is still the clean first save (the short write left only
  // a truncated .tmp, which adoption never reads).
  EXPECT_EQ(recover::find_latest_checkpoint(dir), first);
  // The disk "recovers"; the sink keeps working.
  const std::string next = sink.save(FlowCheckpoint{});
  EXPECT_EQ(recover::find_latest_checkpoint(dir), next);
  EXPECT_EQ(plan.count(DiskSite::kCheckpointWrite), 4);
}

TEST(Checkpoint, FindLatestSkipsCorruptNewest) {
  const std::string dir = temp_dir("tw_ckpt_corrupt_latest");
  recover::FileCheckpointSink sink(dir);
  const std::string good = sink.save(FlowCheckpoint{});
  const std::string bad = sink.save(FlowCheckpoint{});

  // Flip a payload bit of the newest file: its CRC check now fails, so
  // the previous (valid) checkpoint must be selected instead.
  {
    std::fstream f(bad, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    f.put('\xFF');
  }
  EXPECT_EQ(recover::find_latest_checkpoint(dir), good);

  // With every file damaged there is nothing valid left to resume from.
  {
    std::fstream f(good, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    f.put('\xFF');
  }
  EXPECT_FALSE(recover::find_latest_checkpoint(dir).has_value());
}

// ----------------------------------------------------- budgeted flow runs

TEST(Budget, ExhaustedFlowDegradesGracefully) {
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Placement p(nl);
  FlowParams params = fast_flow(77);
  RunBudget budget(2000, RunBudget::kUnlimited);
  params.recover.budget = &budget;
  const FlowResult r = TimberWolfMC(nl, params).run(p);
  EXPECT_EQ(r.outcome, RunOutcome::kBudgetExhausted);
  // Graceful degradation: the returned placement is a valid, feasible
  // configuration, not a torn mid-move state.
  const ValidationReport vr = validate_placement(p);
  EXPECT_TRUE(vr.ok()) << vr.str();
  EXPECT_GE(budget.moves_charged(), 2000);
}

TEST(Budget, CancelledFlowReportsCancelled) {
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Placement p(nl);
  FlowParams params = fast_flow(77);
  RunBudget budget;
  budget.request_cancel();
  params.recover.budget = &budget;
  const FlowResult r = TimberWolfMC(nl, params).run(p);
  EXPECT_EQ(r.outcome, RunOutcome::kCancelled);
  const ValidationReport vr = validate_placement(p);
  EXPECT_TRUE(vr.ok()) << vr.str();
}

TEST(Budget, UnlimitedBudgetMatchesUninstrumentedRun) {
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Placement p1(nl), p2(nl);
  const FlowResult r1 = TimberWolfMC(nl, fast_flow(77)).run(p1);
  FlowParams params = fast_flow(77);
  RunBudget budget;
  params.recover.budget = &budget;
  const FlowResult r2 = TimberWolfMC(nl, params).run(p2);
  EXPECT_EQ(r2.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(testing::fingerprint(p1, r1), testing::fingerprint(p2, r2));
}

}  // namespace
}  // namespace tw
