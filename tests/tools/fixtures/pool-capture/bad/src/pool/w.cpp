namespace tw::pool {
void spawn(void (*run)(int&)) {
  int counter = 0;
  auto w = [&counter, run]() { run(counter); };
  w();
}
}  // namespace tw::pool
