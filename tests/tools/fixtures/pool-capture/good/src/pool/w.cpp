#include <atomic>
namespace tw::pool {
void spawn(void (*run)(std::atomic<int>&), std::atomic<int>& slots) {
  std::atomic<int>& counter = slots;
  auto w = [&counter, run]() { run(counter); };
  w();
}
}  // namespace tw::pool
