#include <string>
namespace tw::recover {
std::string checkpoint_path(const std::string& dir, int n) {
  return dir + "/ckpt-000001.twcp";
}
}  // namespace tw::recover
