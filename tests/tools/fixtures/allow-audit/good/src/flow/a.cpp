namespace tw {
int checked(int x) {
  assert(x > 0);  // lint: allow(raw-assert)
  return x;
}
}  // namespace tw
