namespace tw {
int plain(int x) { return x; }       // lint: allow(bogus-rule)
int also_plain(int x) { return x; }  // lint: allow(raw-assert)
}  // namespace tw
