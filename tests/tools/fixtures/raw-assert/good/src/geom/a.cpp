namespace tw {
int checked(int x) {
  TW_REQUIRE(x > 0, "x=", x);
  return x;
}
}  // namespace tw
