namespace tw {
int checked(int x) {
  assert(x > 0);
  return x;
}
}  // namespace tw
