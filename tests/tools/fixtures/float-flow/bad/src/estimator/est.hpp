#pragma once
namespace tw {
using Coord = double;
Coord half_span(Coord c);
}  // namespace tw
