#pragma once
#include <cstdint>
namespace tw {
using Coord = std::int64_t;
Coord half_span(Coord c);
double cost_of(double wirelen);
}  // namespace tw
