namespace tw {
class SearchWorkspace;
int search(SearchWorkspace& ws);
int search_twice(SearchWorkspace& ws) { return search(ws) + search(ws); }
}  // namespace tw
