#include <queue>
namespace tw {
int pop_min(std::priority_queue<int>& heap);
int search() {
  std::priority_queue<int> frontier;
  frontier.push(3);
  return pop_min(frontier);
}
}  // namespace tw
