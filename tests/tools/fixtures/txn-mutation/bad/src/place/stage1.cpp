namespace tw {
struct Point { long x, y; };
struct Placement { void set_center(int, Point); };
void nudge(Placement& placement, Point p) {
  placement.set_center(0, p);
}
}  // namespace tw
