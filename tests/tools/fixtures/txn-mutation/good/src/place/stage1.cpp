namespace tw {
struct Point { long x, y; };
struct MoveTxn { void set_center(int, Point); };
void nudge(MoveTxn& txn, Point p) {
  txn.set_center(0, p);
}
}  // namespace tw
