// Fixture: socket syscalls outside src/serve must fire daemon-syscalls.
#include <sys/socket.h>
#include <sys/un.h>

int open_side_channel() {
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  listen(fd, 4);
  return accept(fd, nullptr, nullptr);
}
