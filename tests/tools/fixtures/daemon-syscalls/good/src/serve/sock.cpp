// Fixture twin: the same syscalls are fine inside src/serve.
#include <sys/socket.h>
#include <sys/un.h>

int open_listener() {
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  listen(fd, 4);
  return accept(fd, nullptr, nullptr);
}
