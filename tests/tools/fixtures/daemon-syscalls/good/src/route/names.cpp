// Fixture guard: legitimate identifiers that merely contain or resemble
// socket tokens must NOT fire daemon-syscalls outside src/serve.
struct Graph {};
struct Workspace {
  void bind(const Graph&) {}
};
struct Injector {
  void poll(int) {}
};
bool metropolis_accept(long delta) { return delta <= 0; }

int run(Workspace& ws, Injector& inj) {
  Graph g;
  ws.bind(g);
  inj.poll(3);
  return metropolis_accept(-1) ? 0 : 1;
}
