#pragma once
#include "netlist/n.hpp"
