#pragma once
// Carve-out group: matches `fast` (declared before the directory
// catch-all `cluster`), so the bottom include is a declared dep here.
#include "bottom/b.hpp"
#include "cluster/c.hpp"
