#pragma once
#include "cluster/c.hpp"
#include "netlist/n.hpp"
