#pragma once
#include "bottom/b.hpp"
