#pragma once
