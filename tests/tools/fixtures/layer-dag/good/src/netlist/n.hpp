#pragma once
