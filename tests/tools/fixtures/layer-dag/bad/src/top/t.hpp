#pragma once
