#pragma once
// Not fast.*: first-match assigns this file to `cluster`, whose deps do
// not include bottom — the carve-out next door must not leak here.
#include "bottom/b.hpp"
