#pragma once
