#pragma once
#include "cluster/c.hpp"
