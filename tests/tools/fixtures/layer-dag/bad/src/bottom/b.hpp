#pragma once
#include "top/t.hpp"
