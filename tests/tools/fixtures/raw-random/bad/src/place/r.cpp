#include <random>
namespace tw {
int roll() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}
}  // namespace tw
