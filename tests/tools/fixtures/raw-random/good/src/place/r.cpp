namespace tw {
class Rng;
int roll(Rng& rng);
int roll_twice(Rng& rng) { return roll(rng) + roll(rng); }
}  // namespace tw
