namespace tw {
struct Point { long x, y; };
struct Placement { void set_center(int, Point); };
void bump(Placement& p, Point t) {
  p.set_center(0, t);
}
}  // namespace tw
