namespace tw {
struct Point { long x, y; };
struct Placement { void set_center(int, Point); };
void bump(Placement& p, Point t);
struct Stage1Placer {
  void run_impl() { bump(p_, Point{1, 2}); }
  Placement& p_;
};
}  // namespace tw
