namespace tw {
struct Point { long x, y; };
struct MoveTxn { void set_center(int, Point); };
void bump(MoveTxn& txn, Point t);
struct Stage1Placer {
  void run_impl() { bump(txn_, Point{1, 2}); }
  MoveTxn& txn_;
};
}  // namespace tw
