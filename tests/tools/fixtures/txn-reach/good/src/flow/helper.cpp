namespace tw {
struct Point { long x, y; };
struct MoveTxn { void set_center(int, Point); };
void bump(MoveTxn& txn, Point t) {
  txn.set_center(0, t);
}
}  // namespace tw
