#pragma once
namespace tw {
class Rng;
using LocalRng = Rng;
double entropy_of(LocalRng rng);
inline double jitter(LocalRng rng) { return entropy_of(rng); }
}  // namespace tw
