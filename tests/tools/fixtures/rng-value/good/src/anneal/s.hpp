#pragma once
namespace tw {
class Rng;
double jitter(Rng& rng);
}  // namespace tw
