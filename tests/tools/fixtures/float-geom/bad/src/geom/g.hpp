#pragma once
namespace tw {
inline double scale_factor() { return 0.5; }
}  // namespace tw
