#pragma once
#include <cstdint>
namespace tw {
inline std::int64_t scale_factor() { return 2; }
}  // namespace tw
