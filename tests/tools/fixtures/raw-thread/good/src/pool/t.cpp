#include <thread>
namespace tw::pool {
void run_async(void (*fn)()) {
  std::thread worker(fn);
  worker.join();
}
}  // namespace tw::pool
