#include <thread>
namespace tw {
void run_async(void (*fn)()) {
  std::thread worker(fn);
  worker.join();
}
}  // namespace tw
