#pragma once
namespace tw {
class Rng { public: Rng(int); };
inline Rng fork_stream(Rng& rng) { return Rng(1); }  // lint: allow(rng-value)
}  // namespace tw
