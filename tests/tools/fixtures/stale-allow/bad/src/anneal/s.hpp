#pragma once
namespace tw {
class Rng;
void stir(Rng& rng);  // lint: allow(rng-value)
}  // namespace tw
