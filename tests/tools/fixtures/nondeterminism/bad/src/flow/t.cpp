#include <chrono>
namespace tw {
long long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace tw
