namespace tw {
long long stamp(long long counter) { return counter + 1; }
}  // namespace tw
