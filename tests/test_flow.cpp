// Integration tests: the full TimberWolfMC flow (stage 1 + three
// refinement executions) end to end on generated circuits.
#include <gtest/gtest.h>

#include "flow/timberwolf.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

FlowParams fast_flow(std::uint64_t seed) {
  FlowParams p;
  p.stage1.attempts_per_cell = 15;
  p.stage1.p2_samples = 8;
  p.stage2.attempts_per_cell = 10;
  p.stage2.router.steiner.m = 4;
  p.seed = seed;
  return p;
}

TEST(Flow, EndToEndProducesConsistentResult) {
  const Netlist nl = generate_circuit(tiny_circuit(1));
  TimberWolfMC flow(nl, fast_flow(3));
  Placement placement(nl);
  const FlowResult r = flow.run(placement);

  EXPECT_GT(r.stage1_teil, 0.0);
  EXPECT_GT(r.final_teil, 0.0);
  EXPECT_GT(r.stage1_chip_area, 0);
  EXPECT_GT(r.final_chip_area, 0);
  EXPECT_EQ(r.stage2.passes.size(), 3u);
  EXPECT_DOUBLE_EQ(r.final_teil, placement.teil());
}

TEST(Flow, Table3MetricsAreSmallChanges) {
  // The estimator-accuracy property: TEIL and area change little between
  // the two stages (paper: avg 4.4% TEIL, 4.1% area over 9 circuits; we
  // allow a wide band per single tiny circuit).
  const Netlist nl = generate_circuit(tiny_circuit(2));
  TimberWolfMC flow(nl, fast_flow(5));
  Placement placement(nl);
  const FlowResult r = flow.run(placement);
  EXPECT_LT(std::abs(r.teil_change_pct()), 40.0);
  EXPECT_LT(std::abs(r.area_change_pct()), 40.0);
}

TEST(Flow, FinalPlacementNearlyLegal) {
  const Netlist nl = generate_circuit(tiny_circuit(3));
  TimberWolfMC flow(nl, fast_flow(7));
  Placement placement(nl);
  const FlowResult r = flow.run(placement);
  OverlapEngine bare(placement, r.stage1.core, {});
  EXPECT_LT(static_cast<double>(bare.total_overlap()),
            0.08 * static_cast<double>(nl.total_cell_area()));
}

TEST(Flow, DeterministicForSeed) {
  const Netlist nl = generate_circuit(tiny_circuit(4));
  Placement p1(nl), p2(nl);
  const FlowResult r1 = TimberWolfMC(nl, fast_flow(9)).run(p1);
  const FlowResult r2 = TimberWolfMC(nl, fast_flow(9)).run(p2);
  EXPECT_DOUBLE_EQ(r1.final_teil, r2.final_teil);
  EXPECT_EQ(r1.final_chip_area, r2.final_chip_area);
  for (const auto& c : nl.cells())
    EXPECT_EQ(p1.state(c.id).center, p2.state(c.id).center);
}

TEST(Flow, Stage1OnlyEntryPoint) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  TimberWolfMC flow(nl, fast_flow(2));
  Placement placement(nl);
  const Stage1Result r = flow.run_stage1(placement);
  EXPECT_GT(r.final_teil, 0.0);
  EXPECT_GT(r.temperature_steps, 50);
}

TEST(Flow, HandlesMixedMacroCustomChipPlanning) {
  // The chip-planning case the paper emphasizes: macros + soft cells with
  // groups, discrete aspects and equivalent pins, all in one run.
  CircuitSpec spec = tiny_circuit(6);
  spec.custom_fraction = 0.5;
  spec.equiv_fraction = 0.05;
  Netlist nl = generate_circuit(spec);
  // Force one custom cell to discrete aspects.
  for (const auto& c : nl.cells())
    if (c.is_custom()) {
      nl.set_discrete_aspects(c.id, {0.5, 1.0, 2.0});
      break;
    }
  TimberWolfMC flow(nl, fast_flow(4));
  Placement placement(nl);
  const FlowResult r = flow.run(placement);
  EXPECT_GT(r.final_teil, 0.0);
  EXPECT_EQ(placement.overloaded_sites(), 0);
  // Discrete-aspect cell realized one of its allowed values.
  for (const auto& c : nl.cells())
    if (!c.discrete_aspects.empty()) {
      bool legal = false;
      for (double a : c.discrete_aspects)
        if (std::abs(placement.state(c.id).aspect - a) < 1e-9) legal = true;
      EXPECT_TRUE(legal);
    }
}

TEST(Flow, ChannelWidthRuleHoldsInEveryPass) {
  const Netlist nl = generate_circuit(tiny_circuit(8));
  TimberWolfMC flow(nl, fast_flow(6));
  Placement placement(nl);
  const FlowResult r = flow.run(placement);
  for (const auto& pass : r.stage2.passes)
    EXPECT_EQ(pass.width_rule_violations, 0);
}

class PaperCircuitFlow : public ::testing::TestWithParam<const char*> {};

TEST_P(PaperCircuitFlow, FullFlowBehavesLikeTable3) {
  // The three fastest paper circuits, end to end: the flow must terminate,
  // route every net, keep the stage1 -> stage2 change inside a generous
  // Table-3 band, and deliver a near-legal placement.
  const PaperCircuit pc = paper_circuit(GetParam());
  const Netlist nl = generate_circuit(pc.spec);
  FlowParams params;
  params.stage1.attempts_per_cell = 15;
  params.stage1.p2_samples = 8;
  params.stage2.attempts_per_cell = 10;
  params.stage2.router.steiner.m = 4;
  params.seed = 31;
  TimberWolfMC flow(nl, params);
  Placement placement(nl);
  const FlowResult r = flow.run(placement);

  EXPECT_LT(std::abs(r.teil_change_pct()), 30.0);
  EXPECT_LT(std::abs(r.area_change_pct()), 35.0);
  for (const auto& pass : r.stage2.passes) {
    EXPECT_EQ(pass.unrouted_nets, 0);
    EXPECT_EQ(pass.width_rule_violations, 0);
  }
  OverlapEngine bare(placement, r.stage2.final_core, {});
  Coord pair_overlap = 0;
  const auto n = static_cast<CellId>(nl.num_cells());
  for (CellId i = 0; i < n; ++i)
    for (CellId j = static_cast<CellId>(i + 1); j < n; ++j)
      pair_overlap += bare.pair_overlap(i, j);
  EXPECT_LT(static_cast<double>(pair_overlap),
            0.02 * static_cast<double>(nl.total_cell_area()));
}

INSTANTIATE_TEST_SUITE_P(Papers, PaperCircuitFlow,
                         ::testing::Values("p1", "x1", "i3"));

TEST(Flow, RouteOverflowLowAfterRefinement) {
  const Netlist nl = generate_circuit(tiny_circuit(7));
  TimberWolfMC flow(nl, fast_flow(11));
  Placement placement(nl);
  const FlowResult r = flow.run(placement);
  // After refinement the channels were sized from real densities, so the
  // final pass should route with little or no overflow.
  EXPECT_LE(r.stage2.passes.back().route_overflow,
            r.stage2.passes.front().route_overflow + 2);
}

}  // namespace
}  // namespace tw
