// Edge cases across modules that the per-module suites do not cover:
// visualization options, junction-region expansion handling, degenerate
// pin-site configurations, estimator core updates, and report stability.
#include <gtest/gtest.h>

#include "channel/channel_graph.hpp"
#include "flow/report.hpp"
#include "flow/visualize.hpp"
#include "place/legalize.hpp"
#include "refine/stage2.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

TEST(VisualizeOptions, TogglesControlOutput) {
  const Netlist nl = generate_circuit(tiny_circuit(1));
  Placement p(nl);
  Rng rng(2);
  const Rect core{-300, -300, 300, 300};
  p.randomize(rng, core);

  VisualizeOptions bare;
  bare.show_pins = false;
  bare.show_names = false;
  bare.show_core = false;
  const std::string s = placement_svg(p, core, bare);
  EXPECT_EQ(s.find("<circle"), std::string::npos);
  EXPECT_EQ(s.find("<text"), std::string::npos);
  // Cells still drawn.
  EXPECT_NE(s.find("<rect"), std::string::npos);
}

TEST(Stage2Expansions, JunctionRegionsContributeNothing) {
  // A 4-cell cross produces junction regions; derive_expansions must skip
  // them (they have no bounding cell edges) without crashing.
  Netlist nl;
  const NetId n = nl.add_net("n");
  for (int i = 0; i < 4; ++i)
    nl.add_macro("c" + std::to_string(i), {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(0, "p", n, Point{10, 5});
  nl.add_fixed_pin(3, "q", n, Point{0, 5});
  Placement p(nl);
  p.set_center(0, Point{-8, -8});
  p.set_center(1, Point{8, -8});
  p.set_center(2, Point{-8, 8});
  p.set_center(3, Point{8, 8});
  const ChannelGraph cg = build_channel_graph(p, Rect{-30, -30, 30, 30});
  bool has_junction = false;
  for (const auto& r : cg.regions)
    if (r.is_junction()) has_junction = true;
  ASSERT_TRUE(has_junction);
  std::vector<int> densities(cg.regions.size(), 5);
  const auto exp = Stage2Refiner::derive_expansions(nl, cg, densities);
  // Every cell side bounding a channel gets (5+2+1)/2 = 4 at most; no
  // negative or absurd values from junction handling.
  for (const auto& e : exp)
    for (Coord v : e) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 4);
    }
}

TEST(PinSites, SingleSitePerEdge) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 400, 1.0, 1.0, 1);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  nl.add_edge_pin(c, "p", n, kSideAny);
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement p(nl);
  // One site per edge: the pin sits at an edge midpoint.
  const CellState& st = p.state(c);
  EXPECT_EQ(st.sites.size(), 4u);
  EXPECT_GE(st.pin_site[0], 0);
  EXPECT_LT(st.pin_site[0], 4);
}

TEST(Estimator, SetCoreRescalesChannelWidth) {
  const Netlist nl = generate_circuit(tiny_circuit(3));
  DynamicAreaEstimator est(nl);
  est.compute_initial_core();
  const double cw0 = est.channel_width();
  // A 4x-area core: N_L grows ~2x (sqrt), C_L slightly; C_W must grow.
  const Rect big = est.core().inflated(est.core().width() / 2);
  est.set_core(big);
  EXPECT_GT(est.channel_width(), cw0);
}

TEST(Estimator, TechModulationParametersRespected) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  nl.add_macro("a", {Rect{0, 0, 40, 40}});
  nl.add_macro("b", {Rect{0, 0, 40, 40}});
  nl.add_fixed_pin(0, "p", n, Point{40, 20});
  nl.add_fixed_pin(1, "q", n, Point{0, 20});
  nl.tech().modulation_max = 3.0;
  nl.tech().modulation_min = 1.5;
  DynamicAreaEstimator est(nl);
  est.compute_initial_core();
  EXPECT_DOUBLE_EQ(est.modulation().mx, 3.0);
  EXPECT_DOUBLE_EQ(est.modulation().bx, 1.5);
  EXPECT_DOUBLE_EQ(est.modulation().alpha(), 0.25 * 4.5 * 4.5);
}

TEST(Report, StableAcrossIdenticalRuns) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  FlowParams params;
  params.stage1.attempts_per_cell = 8;
  params.stage1.p2_samples = 6;
  params.stage2.attempts_per_cell = 6;
  params.stage2.router.steiner.m = 3;
  params.seed = 4;
  Placement p1(nl), p2(nl);
  const FlowResult r1 = TimberWolfMC(nl, params).run(p1);
  const FlowResult r2 = TimberWolfMC(nl, params).run(p2);
  EXPECT_EQ(flow_report(nl, p1, r1), flow_report(nl, p2, r2));
}

TEST(Legalize, MarginZeroStillSeparates) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  nl.add_macro("a", {Rect{0, 0, 10, 10}});
  nl.add_macro("b", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(0, "p", n, Point{10, 5});
  nl.add_fixed_pin(1, "q", n, Point{0, 5});
  Placement p(nl);
  p.set_center(0, Point{0, 0});
  p.set_center(1, Point{2, 1});
  const LegalizeResult r = legalize_spread(p, Rect{-50, -50, 50, 50}, 0);
  EXPECT_TRUE(r.success());
}

TEST(Workload, LocalityParameterShapesNets) {
  // Tighter locality must reduce average latent-space distance between a
  // net's members; verify through the placement-independent proxy of net
  // fanout concentration: with very tight locality, nets reuse nearby
  // cells more, so the number of *distinct cell pairs* co-appearing in
  // nets shrinks.
  auto distinct_pairs = [](const Netlist& nl) {
    std::set<std::pair<CellId, CellId>> pairs;
    for (const auto& net : nl.nets()) {
      for (std::size_t i = 0; i < net.pins.size(); ++i)
        for (std::size_t j = i + 1; j < net.pins.size(); ++j) {
          CellId a = nl.pin(net.pins[i]).cell;
          CellId b = nl.pin(net.pins[j]).cell;
          if (a == b) continue;
          if (a > b) std::swap(a, b);
          pairs.insert({a, b});
        }
    }
    return pairs.size();
  };
  CircuitSpec tight = medium_circuit(7);
  tight.locality = 0.05;
  CircuitSpec loose = medium_circuit(7);
  loose.name = "loose";
  loose.locality = 10.0;
  EXPECT_LT(distinct_pairs(generate_circuit(tight)),
            distinct_pairs(generate_circuit(loose)));
}

TEST(Netlist, TeilEqualsTeicWhenWeightsAreUnity) {
  // Section 3: "If all of the net-weighting factors have a value of 1.0,
  // the TEIL is identically equal to the TEIC."
  const Netlist nl = generate_circuit(tiny_circuit(8));
  Placement p(nl);
  Rng rng(9);
  p.randomize(rng, Rect{-300, -300, 300, 300});
  EXPECT_DOUBLE_EQ(p.teic(), p.teil());
}

}  // namespace
}  // namespace tw
