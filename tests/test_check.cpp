// Tests for the correctness tooling layer: contract macros, domain
// validators, the CostAudit drift checker, and seed derivation.
#include <gtest/gtest.h>

#include "check/contracts.hpp"
#include "check/cost_audit.hpp"
#include "check/validate.hpp"
#include "estimator/area_estimator.hpp"
#include "place/cost.hpp"
#include "place/overlap.hpp"
#include "place/placement.hpp"
#include "route/interchange.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

// ---------------------------------------------------------------------------
// Contract machinery. check::fail is always compiled (it backs the runtime
// checkers like CostAudit), so the trap tests below run at every
// TW_CHECK_LEVEL; the macro-specific ones are gated on the level the test
// binary was built at.

TEST(Contracts, TrapTurnsFailureIntoException) {
  check::ScopedContractTrap trap;
  EXPECT_THROW(check::fail("CostAudit", "", "f.cpp", 12, "C2 drifted"),
               check::ContractViolation);
}

TEST(Contracts, ViolationCarriesAllFields) {
  check::ScopedContractTrap trap;
  try {
    check::fail("TW_REQUIRE", "site >= 0", "placement.cpp", 42, "site=-3");
    FAIL() << "fail() returned";
  } catch (const check::ContractViolation& e) {
    EXPECT_STREQ(e.violation.kind, "TW_REQUIRE");
    EXPECT_STREQ(e.violation.expr, "site >= 0");
    EXPECT_EQ(e.violation.line, 42);
    EXPECT_NE(std::string(e.what()).find("site=-3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("placement.cpp"), std::string::npos);
  }
}

TEST(Contracts, TrapRestoresPreviousHandlerOnExit) {
  {
    check::ScopedContractTrap outer;
    {
      check::ScopedContractTrap inner;
      EXPECT_THROW(check::fail("TW_ASSERT", "x", "f", 1, ""),
                   check::ContractViolation);
    }
    // Outer trap is back in force.
    EXPECT_THROW(check::fail("TW_ASSERT", "x", "f", 2, ""),
                 check::ContractViolation);
  }
}

#if TW_CHECK_LEVEL >= 1
TEST(Contracts, MacroPrintsOffendingValues) {
  check::ScopedContractTrap trap;
  const int site = -3;
  const int n = 8;
  try {
    TW_ASSERT(site >= 0 && site < n, "site=", site, " n=", n);
    FAIL() << "contract did not fire";
  } catch (const check::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("site=-3"), std::string::npos) << what;
    EXPECT_NE(what.find("n=8"), std::string::npos) << what;
    EXPECT_NE(what.find("site >= 0"), std::string::npos) << what;
  }
}

TEST(Contracts, PassingConditionIsSilent) {
  check::ScopedContractTrap trap;
  EXPECT_NO_THROW(TW_ASSERT(2 + 2 == 4, "arithmetic broke"));
  EXPECT_NO_THROW(TW_REQUIRE(true));
  EXPECT_NO_THROW(TW_ENSURE(1 < 2, "x=", 1));
}
#endif

// ---------------------------------------------------------------------------
// Netlist validator.

TEST(ValidateNetlist, GeneratedCircuitIsClean) {
  const Netlist nl = generate_circuit(tiny_circuit(11));
  const ValidationReport r = validate_netlist(nl);
  EXPECT_TRUE(r.ok()) << r.str();
  EXPECT_EQ(r.str(), "ok");
}

TEST(ValidateNetlist, DetectsDegreeOneNet) {
  Netlist nl;
  const NetId n = nl.add_net("lonely");
  const CellId c = nl.add_macro("m", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(c, "p", n, Point{0, 0});
  const ValidationReport r = validate_netlist(nl);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.str().find("lonely"), std::string::npos) << r.str();
}

TEST(ValidateNetlist, AcceptsMinimalTwoPinCircuit) {
  Netlist nl;
  const NetId n = nl.add_net("n0");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 6, 8}});
  nl.add_fixed_pin(a, "pa", n, Point{0, 0});
  nl.add_fixed_pin(b, "pb", n, Point{0, 0});
  const ValidationReport r = validate_netlist(nl);
  EXPECT_TRUE(r.ok()) << r.str();
}

// ---------------------------------------------------------------------------
// Placement validator.

struct PlacementFixture {
  Netlist nl;
  Rect core;

  PlacementFixture() : nl(generate_circuit(tiny_circuit(5))) {
    DynamicAreaEstimator est(nl);
    core = est.compute_initial_core();
  }
};

TEST(ValidatePlacement, CleanAfterRandomize) {
  PlacementFixture f;
  Placement p(f.nl);
  Rng rng(7);
  p.randomize(rng, f.core);
  const ValidationReport r = validate_placement(p, {.core = f.core});
  EXPECT_TRUE(r.ok()) << r.str();
}

TEST(ValidatePlacement, DetectsCenterOutsideCore) {
  PlacementFixture f;
  Placement p(f.nl);
  Rng rng(7);
  p.randomize(rng, f.core);
  p.set_center(0, Point{f.core.xhi + 100000, f.core.yhi + 100000});
  const ValidationReport r = validate_placement(p, {.core = f.core});
  EXPECT_FALSE(r.ok());
  // Without the core option the same state is legal.
  EXPECT_TRUE(validate_placement(p).ok());
}

TEST(ValidatePlacement, DetectsCorruptOrientation) {
  PlacementFixture f;
  Placement p(f.nl);
  Rng rng(7);
  p.randomize(rng, f.core);
  CellState s = p.snapshot(0);
  s.orient = static_cast<Orient>(9);
  p.restore(0, std::move(s));
  const ValidationReport r = validate_placement(p);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.str().find("orient"), std::string::npos) << r.str();
}

TEST(ValidatePlacement, DetectsCorruptPinSiteAssignment) {
  PlacementFixture f;
  Placement p(f.nl);
  Rng rng(7);
  p.randomize(rng, f.core);
  // Find a custom cell with at least one sited pin and corrupt the
  // assignment to a nonexistent site index.
  bool corrupted = false;
  for (const auto& cell : f.nl.cells()) {
    if (!cell.is_custom()) continue;
    CellState s = p.snapshot(cell.id);
    for (std::size_t k = 0; k < s.pin_site.size(); ++k) {
      if (s.pin_site[k] >= 0) {
        s.pin_site[k] = static_cast<int>(s.sites.size()) + 1000;
        p.restore(cell.id, std::move(s));
        corrupted = true;
        break;
      }
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted) << "workload produced no sited pins";
  EXPECT_FALSE(validate_placement(p).ok());
}

// ---------------------------------------------------------------------------
// Routing validator.

struct RoutingFixture {
  RoutingGraph g;
  std::vector<NetTargets> nets;
  GlobalRouteResult result;

  RoutingFixture() {
    // A 2x3 grid of nodes; unit capacities.
    for (int y = 0; y < 2; ++y)
      for (int x = 0; x < 3; ++x) g.add_node({x * 10, y * 10});
    auto at = [](int x, int y) { return static_cast<NodeId>(y * 3 + x); };
    for (int y = 0; y < 2; ++y)
      for (int x = 0; x < 2; ++x)
        g.add_edge(at(x, y), at(x + 1, y), 10.0, 2);
    for (int x = 0; x < 3; ++x) g.add_edge(at(x, 0), at(x, 1), 10.0, 2);
    nets.push_back({{{at(0, 0)}, {at(2, 0)}}});
    nets.push_back({{{at(0, 1)}, {at(2, 1)}}});
    result = GlobalRouter(g, {{4, 12}, 3}).route(nets);
  }
};

TEST(ValidateRouting, CleanRouterOutputPasses) {
  RoutingFixture f;
  ASSERT_EQ(f.result.unrouted_nets, 0);
  const ValidationReport r = validate_routing(f.g, f.nets, f.result);
  EXPECT_TRUE(r.ok()) << r.str();
}

TEST(ValidateRouting, DetectsUsageDesync) {
  RoutingFixture f;
  f.result.edge_usage[0] += 1;
  EXPECT_FALSE(validate_routing(f.g, f.nets, f.result).ok());
}

TEST(ValidateRouting, DetectsWrongTotalLength) {
  RoutingFixture f;
  f.result.total_length += 5.0;
  const ValidationReport r = validate_routing(f.g, f.nets, f.result);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.str().find("length"), std::string::npos) << r.str();
}

TEST(ValidateRouting, DetectsChoiceOutOfRange) {
  RoutingFixture f;
  f.result.choice[0] =
      static_cast<int>(f.result.alternatives[0].size()) + 5;
  EXPECT_FALSE(validate_routing(f.g, f.nets, f.result).ok());
}

TEST(ValidateRouting, DetectsDisconnectedRoute) {
  RoutingFixture f;
  ASSERT_GE(f.result.choice[0], 0);
  // Gut the selected route's edges: still sorted/valid edges, no longer
  // connecting the net.
  auto& route = f.result.alternatives[0][static_cast<std::size_t>(
      f.result.choice[0])];
  ASSERT_FALSE(route.edges.empty());
  const EdgeId kept = route.edges.front();
  // Recompute the bookkeeping the corruption would otherwise desync, so
  // the *connectivity* check is what fires.
  f.result.total_length -= route.length - f.g.edge(kept).length;
  for (std::size_t i = 1; i < route.edges.size(); ++i)
    --f.result.edge_usage[static_cast<std::size_t>(route.edges[i])];
  route.edges = {kept};
  route.length = f.g.edge(kept).length;
  f.result.total_overflow = total_overflow(f.g, f.result.edge_usage);
  const ValidationReport r = validate_routing(f.g, f.nets, f.result);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.str().find("connect"), std::string::npos) << r.str();
}

// ---------------------------------------------------------------------------
// CostAudit: the incremental-cost drift checker.

struct AuditFixture {
  Netlist nl;
  Rect core;
  Placement p;
  OverlapEngine ov;
  CostModel model;
  CostTerms truth;

  AuditFixture()
      : nl(generate_circuit(tiny_circuit(9))),
        core(DynamicAreaEstimator(nl).compute_initial_core()),
        p(nl),
        ov(p, core, {}),
        model(p, ov) {
    Rng rng(13);
    p.randomize(rng, core);
    ov.refresh_all();
    truth = model.full();
  }
};

TEST(CostAudit, NoDriftOnConsistentTotals) {
  AuditFixture f;
  CostAudit audit(f.model);
  const CostDriftReport r = audit.compare(f.truth);
  EXPECT_FALSE(r.any()) << r.str();
}

TEST(CostAudit, NamesExactlyTheDriftedTerm) {
  AuditFixture f;
  CostAudit audit(f.model);

  CostTerms bad_c1 = f.truth;
  bad_c1.c1 += 100.0;
  CostDriftReport r = audit.compare(bad_c1);
  EXPECT_TRUE(r.c1_drifted);
  EXPECT_FALSE(r.c2_drifted);
  EXPECT_FALSE(r.c3_drifted);
  EXPECT_NE(r.str().find("C1"), std::string::npos) << r.str();
  EXPECT_EQ(r.str().find("C2"), std::string::npos) << r.str();

  CostTerms bad_c2 = f.truth;
  bad_c2.c2_raw += 100.0;
  r = audit.compare(bad_c2);
  EXPECT_FALSE(r.c1_drifted);
  EXPECT_TRUE(r.c2_drifted);
  EXPECT_FALSE(r.c3_drifted);
  EXPECT_NE(r.str().find("C2"), std::string::npos) << r.str();

  CostTerms bad_c3 = f.truth;
  bad_c3.c3 += 100.0;
  r = audit.compare(bad_c3);
  EXPECT_FALSE(r.c1_drifted);
  EXPECT_FALSE(r.c2_drifted);
  EXPECT_TRUE(r.c3_drifted);
  EXPECT_NE(r.str().find("C3"), std::string::npos) << r.str();
}

TEST(CostAudit, ToleratesFloatNoiseWithinEpsilon) {
  AuditFixture f;
  CostAudit audit(f.model);
  CostTerms wiggled = f.truth;
  wiggled.c1 += 1e-9 * (std::abs(wiggled.c1) + 1.0);
  EXPECT_FALSE(audit.compare(wiggled).any());
}

TEST(CostAudit, CorruptedIncrementalStateRaisesNamedViolation) {
  // The satellite scenario: the annealer's running totals desync (here,
  // by simulated partial-evaluation bug in C2); the accept-interval
  // checkpoint must raise a contract violation naming C2 and only C2.
  AuditFixture f;
  CostAuditParams ap;
  ap.every_accepts = 1;
  CostAudit audit(f.model, ap);

  CostTerms drifted = f.truth;
  drifted.c2_raw += 42.0;

  check::ScopedContractTrap trap;
  try {
    audit.on_accept(drifted, "test move");
    FAIL() << "drift was not caught";
  } catch (const check::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_STREQ(e.violation.kind, "CostAudit");
    EXPECT_NE(what.find("C2"), std::string::npos) << what;
    EXPECT_EQ(what.find("C1"), std::string::npos) << what;
    EXPECT_NE(what.find("test move"), std::string::npos) << what;
  }
}

TEST(CostAudit, AcceptIntervalControlsCheckpointCadence) {
  AuditFixture f;
  CostAuditParams ap;
  ap.every_accepts = 3;
  ap.at_temperature_steps = false;
  CostAudit audit(f.model, ap);
  for (int i = 0; i < 9; ++i) audit.on_accept(f.truth, "move");
  EXPECT_EQ(audit.checks_run(), 3);
  audit.on_temperature_step(f.truth, "step");
  EXPECT_EQ(audit.checks_run(), 3);  // disabled at temperature steps
}

TEST(CostAudit, TemperatureStepCheckpointRuns) {
  AuditFixture f;
  CostAuditParams ap;
  ap.at_temperature_steps = true;
  CostAudit audit(f.model, ap);
  audit.on_temperature_step(f.truth, "step");
  EXPECT_EQ(audit.checks_run(), 1);
}

// ---------------------------------------------------------------------------
// Seed derivation.

TEST(DeriveSeed, DeterministicAndStreamSensitive) {
  EXPECT_EQ(derive_seed(1, "stage1"), derive_seed(1, "stage1"));
  EXPECT_NE(derive_seed(1, "stage1"), derive_seed(1, "stage2"));
  EXPECT_NE(derive_seed(1, "stage1"), derive_seed(2, "stage1"));
  // A derived seed never collides with the master passed straight through
  // for these streams (regression against identity mixing).
  EXPECT_NE(derive_seed(1, "stage1"), 1u);
}

}  // namespace
}  // namespace tw
