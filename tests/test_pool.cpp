// Supervised replica pool (src/pool): best-feasible selection across
// replicas, fault-injected retry/resume with attempt histories matching
// the injected plan exactly, graceful degradation when replicas exhaust
// their retries, the typed all-failed error, the deterministic work-based
// watchdog, and thread-count independence. The >= 4-replica concurrent
// cases double as the ThreadSanitizer smoke tests (debug-tsan preset):
// every replica's fingerprint must equal its solo same-seed run, which
// only holds when the workers share no mutable state.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "fingerprint.hpp"
#include "pool/executor.hpp"
#include "pool/report.hpp"
#include "pool/pool.hpp"
#include "recover/fault.hpp"
#include "util/rng.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

using pool::AttemptOutcome;
using pool::PoolError;
using pool::PoolParams;
using pool::PoolResult;
using pool::ReplicaOutcome;
using pool::ReplicaPool;
using pool::ReplicaReport;
using pool::WatchdogPolicy;
using recover::FaultPlan;
using recover::FaultSite;
using testing::fast_flow;

constexpr std::uint64_t kMaster = 2024;

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

const Netlist& test_netlist() {
  static const Netlist nl = generate_circuit(tiny_circuit(21));
  return nl;
}

PoolParams base_params(int replicas, int threads) {
  PoolParams p;
  p.replicas = replicas;
  p.threads = threads;
  p.master_seed = kMaster;
  p.base = fast_flow(0);  // seed is ignored; the pool derives per-replica
  return p;
}

/// Fingerprint of the uninterrupted solo flow under `seed` — the ground
/// truth a pool replica on the same derived seed must reproduce.
std::uint64_t solo_fingerprint(std::uint64_t seed) {
  Placement p(test_netlist());
  const FlowResult r =
      TimberWolfMC(test_netlist(), fast_flow(seed)).run(p);
  return pool::result_fingerprint(p, r);
}

TEST(WatchdogPolicyTest, AllowanceBacksOffAndCaps) {
  WatchdogPolicy w;
  w.initial_moves = 100;
  w.backoff = 2.0;
  w.max_moves = 350;
  EXPECT_EQ(w.allowance(0), 100);
  EXPECT_EQ(w.allowance(1), 200);
  EXPECT_EQ(w.allowance(2), 350);  // 400 capped
  EXPECT_EQ(w.allowance(3), 350);

  WatchdogPolicy off;  // defaults: unlimited
  EXPECT_EQ(off.allowance(0), WatchdogPolicy::kUnlimited);
  EXPECT_EQ(off.allowance(7), WatchdogPolicy::kUnlimited);
}

TEST(SeedDerivation, AttemptZeroIsTheReplicaSeedAndRotationsAreFresh) {
  EXPECT_EQ(derive_attempt_seed(kMaster, 3, 0),
            derive_replica_seed(kMaster, 3));
  EXPECT_NE(derive_attempt_seed(kMaster, 3, 1),
            derive_attempt_seed(kMaster, 3, 0));
  EXPECT_NE(derive_attempt_seed(kMaster, 3, 1),
            derive_attempt_seed(kMaster, 3, 2));
  EXPECT_NE(derive_replica_seed(kMaster, 0), derive_replica_seed(kMaster, 1));
  EXPECT_NE(derive_replica_seed(kMaster, 0),
            derive_replica_seed(kMaster + 1, 0));
}

TEST(ReplicaPoolTest, BestFeasibleAcrossReplicas) {
  PoolParams params = base_params(/*replicas=*/4, /*threads=*/2);
  ReplicaPool rpool(test_netlist(), params);
  Placement placement(test_netlist());
  const PoolResult res = rpool.run(placement);

  ASSERT_EQ(res.replicas.size(), 4u);
  EXPECT_EQ(res.stats.succeeded, 4);
  EXPECT_EQ(res.stats.failed, 0);
  EXPECT_EQ(res.stats.attempts, 4);
  EXPECT_EQ(res.stats.retries, 0);

  // The winner is the lowest final TEIL among the (all feasible) replicas.
  ASSERT_GE(res.best, 0);
  for (const ReplicaReport& r : res.replicas) {
    EXPECT_EQ(r.outcome, ReplicaOutcome::kSucceeded);
    ASSERT_EQ(r.attempts.size(), 1u);
    EXPECT_EQ(r.attempts[0].outcome, AttemptOutcome::kCompleted);
    EXPECT_FALSE(r.attempts[0].resumed);
    EXPECT_EQ(r.attempts[0].seed, derive_replica_seed(kMaster, r.replica));
    EXPECT_GE(r.final_teil, res.best_report().final_teil);
  }
  EXPECT_DOUBLE_EQ(res.stats.teil_best, res.best_report().final_teil);
  EXPECT_LE(res.stats.teil_best, res.stats.teil_mean);
  EXPECT_LE(res.stats.teil_mean, res.stats.teil_worst);

  // run() applied the winning placement to the caller's object.
  EXPECT_EQ(pool::result_fingerprint(placement, res.best_report().flow),
            res.best_report().fingerprint);
}

// ThreadSanitizer smoke: >= 4 replicas actually concurrent, each replica's
// fingerprint equal to its solo same-seed run. Any cross-replica data race
// or shared-RNG leak breaks the equality (and trips TSan in debug-tsan).
TEST(ReplicaPoolTest, ConcurrentReplicasMatchSoloSameSeedRuns) {
  PoolParams params = base_params(/*replicas=*/4, /*threads=*/4);
  ReplicaPool rpool(test_netlist(), params);
  Placement placement(test_netlist());
  const PoolResult res = rpool.run(placement);

  ASSERT_EQ(res.stats.succeeded, 4);
  for (const ReplicaReport& r : res.replicas) {
    EXPECT_EQ(r.fingerprint,
              solo_fingerprint(derive_replica_seed(kMaster, r.replica)))
        << "replica " << r.replica
        << " diverged from its solo same-seed run";
  }
}

// The acceptance scenario: faults injected into k of N replicas, one of
// which fails every retry. The pool still returns the best among
// survivors, and each attempt history matches the injected plan exactly.
TEST(ReplicaPoolTest, InjectedFaultsIntoKofNReplicasDegradeGracefully) {
  const std::string root = fresh_dir("tw_pool_kofn");

  // Replica 0 dies at stage-1 step polls 0, 1 and 2 — one kill per
  // attempt (poll counts span the replica's whole supervised lifetime),
  // so it fails every retry and exhausts max_attempts = 3.
  FaultPlan doomed;
  doomed.kill_at(FaultSite::kStage1Step, 0);
  doomed.kill_at(FaultSite::kStage1Step, 1);
  doomed.kill_at(FaultSite::kStage1Step, 2);
  // Replica 1 dies once mid-schedule, then its retry resumes from the
  // surviving checkpoint and completes.
  FaultPlan flaky;
  flaky.kill_at(FaultSite::kStage1Step, 4);

  PoolParams params = base_params(/*replicas=*/4, /*threads=*/2);
  params.max_attempts = 3;
  params.checkpoint_root = root;
  params.checkpoint_every = 1;
  params.fault_for = [&](int replica) -> recover::FaultInjector* {
    if (replica == 0) return &doomed;
    if (replica == 1) return &flaky;
    return nullptr;
  };

  ReplicaPool rpool(test_netlist(), params);
  Placement placement(test_netlist());
  const PoolResult res = rpool.run(placement);

  EXPECT_EQ(res.stats.succeeded, 3);
  EXPECT_EQ(res.stats.failed, 1);
  EXPECT_EQ(res.stats.attempts, 3 + 2 + 1 + 1);
  EXPECT_EQ(res.stats.retries, 2 + 1);

  // Replica 0: three attempts, every one fault-killed; the first is cold,
  // the retries resume from the checkpoint the previous attempt left.
  const ReplicaReport& r0 = res.replicas[0];
  EXPECT_EQ(r0.outcome, ReplicaOutcome::kFailed);
  ASSERT_EQ(r0.attempts.size(), 3u);
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(r0.attempts[a].attempt, a);
    EXPECT_EQ(r0.attempts[a].outcome, AttemptOutcome::kFaultKilled);
    EXPECT_EQ(r0.attempts[a].resumed, a > 0);
  }
  EXPECT_EQ(r0.attempts[0].seed, derive_replica_seed(kMaster, 0));

  // Replica 1: cold kill, resumed completion — and the resumed run is
  // byte-identical to the uninterrupted solo run on the same seed.
  const ReplicaReport& r1 = res.replicas[1];
  EXPECT_EQ(r1.outcome, ReplicaOutcome::kSucceeded);
  ASSERT_EQ(r1.attempts.size(), 2u);
  EXPECT_EQ(r1.attempts[0].outcome, AttemptOutcome::kFaultKilled);
  EXPECT_FALSE(r1.attempts[0].resumed);
  EXPECT_EQ(r1.attempts[1].outcome, AttemptOutcome::kCompleted);
  EXPECT_TRUE(r1.attempts[1].resumed);
  EXPECT_EQ(r1.attempts[1].seed, derive_replica_seed(kMaster, 1));
  EXPECT_EQ(r1.fingerprint,
            solo_fingerprint(derive_replica_seed(kMaster, 1)));

  // Untouched replicas ran clean.
  for (int i = 2; i < 4; ++i) {
    EXPECT_EQ(res.replicas[i].outcome, ReplicaOutcome::kSucceeded);
    EXPECT_EQ(res.replicas[i].attempts.size(), 1u);
  }

  // Best-feasible selection considers only the three survivors.
  ASSERT_GE(res.best, 1);
  for (int i = 1; i < 4; ++i)
    EXPECT_GE(res.replicas[i].final_teil, res.best_report().final_teil);
}

TEST(ReplicaPoolTest, AllReplicasFailingIsATypedError) {
  const std::string root = fresh_dir("tw_pool_allfail");

  std::vector<FaultPlan> plans(2);
  for (FaultPlan& plan : plans) {
    plan.kill_at(FaultSite::kStage1Step, 0);
    plan.kill_at(FaultSite::kStage1Step, 1);
    plan.kill_at(FaultSite::kStage1Step, 2);
  }

  PoolParams params = base_params(/*replicas=*/2, /*threads=*/2);
  params.max_attempts = 3;
  params.checkpoint_root = root;
  params.checkpoint_every = 1;
  params.fault_for = [&](int replica) -> recover::FaultInjector* {
    return &plans[static_cast<std::size_t>(replica)];
  };

  ReplicaPool rpool(test_netlist(), params);
  Placement placement(test_netlist());
  const std::vector<CellState> before = [&] {
    std::vector<CellState> s;
    const auto n = static_cast<CellId>(test_netlist().num_cells());
    for (CellId c = 0; c < n; ++c) s.push_back(placement.state(c));
    return s;
  }();

  try {
    (void)rpool.run(placement);
    FAIL() << "expected PoolError";
  } catch (const PoolError& e) {
    ASSERT_EQ(e.replicas().size(), 2u);
    for (const ReplicaReport& r : e.replicas()) {
      EXPECT_EQ(r.outcome, ReplicaOutcome::kFailed);
      ASSERT_EQ(r.attempts.size(), 3u);
      for (const auto& a : r.attempts)
        EXPECT_EQ(a.outcome, AttemptOutcome::kFaultKilled);
    }
  }

  // The caller's placement must be untouched on total failure.
  const auto n = static_cast<CellId>(test_netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    EXPECT_EQ(placement.state(c).center.x, before[c].center.x);
    EXPECT_EQ(placement.state(c).center.y, before[c].center.y);
    EXPECT_EQ(placement.state(c).orient, before[c].orient);
  }
}

TEST(ReplicaPoolTest, WatchdogKillsStuckAttemptAndBackoffRecovers) {
  const std::string root = fresh_dir("tw_pool_watchdog");

  PoolParams params = base_params(/*replicas=*/1, /*threads=*/1);
  params.max_attempts = 3;
  params.checkpoint_root = root;
  params.checkpoint_every = 1;
  // First attempt's allowance is far below a full run; the retry's
  // thousandfold backoff admits the remaining schedule.
  params.watchdog.initial_moves = 200;
  params.watchdog.backoff = 1000.0;

  ReplicaPool rpool(test_netlist(), params);
  Placement placement(test_netlist());
  const PoolResult res = rpool.run(placement);

  const ReplicaReport& r = res.replicas[0];
  EXPECT_EQ(r.outcome, ReplicaOutcome::kSucceeded);
  ASSERT_EQ(r.attempts.size(), 2u);
  EXPECT_EQ(r.attempts[0].outcome, AttemptOutcome::kWatchdogExpired);
  EXPECT_EQ(r.attempts[0].watchdog_allowance, 200);
  EXPECT_GT(r.attempts[0].moves, 200);  // the kill fired past the allowance
  EXPECT_EQ(r.attempts[1].outcome, AttemptOutcome::kCompleted);
  EXPECT_TRUE(r.attempts[1].resumed);
  EXPECT_EQ(r.attempts[1].watchdog_allowance, 200 * 1000);
}

TEST(ReplicaPoolTest, CancelledPoolReturnsBestEffortResults) {
  PoolParams params = base_params(/*replicas=*/2, /*threads=*/2);
  ReplicaPool rpool(test_netlist(), params);
  // Cancel before the run: every attempt observes the flag at its first
  // poll boundary and winds down gracefully — a usable, validated result,
  // not a failure.
  rpool.request_cancel();
  Placement placement(test_netlist());
  const PoolResult res = rpool.run(placement);

  EXPECT_EQ(res.stats.succeeded, 2);
  for (const ReplicaReport& r : res.replicas) {
    EXPECT_EQ(r.outcome, ReplicaOutcome::kSucceeded);
    ASSERT_EQ(r.attempts.size(), 1u);
    EXPECT_EQ(r.attempts[0].outcome, AttemptOutcome::kCancelled);
  }
}

TEST(ReplicaPoolTest, ResultsAreIndependentOfThreadCount) {
  const auto run_with = [&](int threads, const std::string& leaf) {
    FaultPlan flaky;
    flaky.kill_at(FaultSite::kStage1Step, 3);
    PoolParams params = base_params(/*replicas=*/4, threads);
    params.checkpoint_root = fresh_dir(leaf);
    params.checkpoint_every = 1;
    params.fault_for = [&](int replica) -> recover::FaultInjector* {
      return replica == 1 ? &flaky : nullptr;
    };
    ReplicaPool rpool(test_netlist(), params);
    Placement placement(test_netlist());
    return rpool.run(placement);
  };

  const PoolResult serial = run_with(1, "tw_pool_t1");
  const PoolResult threaded = run_with(4, "tw_pool_t4");

  EXPECT_EQ(serial.best, threaded.best);
  ASSERT_EQ(serial.replicas.size(), threaded.replicas.size());
  for (std::size_t i = 0; i < serial.replicas.size(); ++i) {
    const ReplicaReport& a = serial.replicas[i];
    const ReplicaReport& b = threaded.replicas[i];
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    ASSERT_EQ(a.attempts.size(), b.attempts.size());
    for (std::size_t k = 0; k < a.attempts.size(); ++k) {
      EXPECT_EQ(a.attempts[k].outcome, b.attempts[k].outcome);
      EXPECT_EQ(a.attempts[k].seed, b.attempts[k].seed);
      EXPECT_EQ(a.attempts[k].resumed, b.attempts[k].resumed);
    }
  }
}

TEST(ReplicaPoolTest, PoolReportRendersOutcomesAndHistories) {
  FaultPlan flaky;
  flaky.kill_at(FaultSite::kStage1Step, 2);
  PoolParams params = base_params(/*replicas=*/2, /*threads=*/1);
  params.checkpoint_root = fresh_dir("tw_pool_report");
  params.checkpoint_every = 1;
  params.fault_for = [&](int replica) -> recover::FaultInjector* {
    return replica == 0 ? &flaky : nullptr;
  };

  ReplicaPool rpool(test_netlist(), params);
  Placement placement(test_netlist());
  const PoolResult res = rpool.run(placement);

  const std::string report = pool_report(res);
  EXPECT_NE(report.find("Replica pool report"), std::string::npos);
  EXPECT_NE(report.find("succeeded"), std::string::npos);
  EXPECT_NE(report.find("TEIL spread"), std::string::npos);
  // The retried replica's attempt history is spelled out.
  EXPECT_NE(report.find("replica 0 attempt history"), std::string::npos);
  EXPECT_NE(report.find("fault_killed"), std::string::npos);
}

// ---------------------------------------------------------------- executor

/// Collects PoolExecutor completions (worker threads) in arrival order.
struct DoneLog {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<pool::ExecutorResult> done;

  pool::PoolExecutor::Hooks hooks() {
    pool::PoolExecutor::Hooks h;
    h.on_done = [this](pool::ExecutorResult r) {
      {
        std::lock_guard<std::mutex> lock(mu);
        done.push_back(std::move(r));
      }
      cv.notify_all();
    };
    return h;
  }

  /// Blocks until `n` jobs completed; returns their ids in finish order.
  std::vector<std::uint64_t> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done.size() >= n; });
    std::vector<std::uint64_t> order;
    for (const pool::ExecutorResult& r : done) order.push_back(r.job);
    return order;
  }

  pool::ExecutorResult result_for(std::uint64_t job) {
    std::lock_guard<std::mutex> lock(mu);
    for (const pool::ExecutorResult& r : done)
      if (r.job == job) return r;
    ADD_FAILURE() << "no result for job " << job;
    return {};
  }
};

pool::ExecutorJob executor_job(std::uint64_t id, std::uint64_t seed,
                               int priority) {
  pool::ExecutorJob j;
  j.job = id;
  j.nl = &test_netlist();
  j.base = fast_flow(0);
  j.master_seed = seed;
  j.priority = priority;
  return j;
}

/// Polls until the executor runs >= 1 task of priority class `prio`.
void wait_until_running(pool::PoolExecutor& ex, int prio) {
  for (int i = 0; i < 5000; ++i) {
    if (ex.stats().running[static_cast<std::size_t>(prio)] >= 1) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "no priority-" << prio << " task ever ran";
}

TEST(PoolExecutorTest, QueueDrainsInPriorityOrderUrgentOvertakesBatch) {
  DoneLog log;
  pool::PoolExecutor ex(/*threads=*/1, log.hooks());

  // Job 1 occupies the single worker. It takes no checkpoints, so it can
  // NOT be preempted — the later jobs genuinely queue behind it. Slowed
  // ~5x past the fast parameterization so it is still annealing when
  // they arrive.
  pool::ExecutorJob pin = executor_job(1, 100, /*priority=*/1);
  pin.base.stage1.attempts_per_cell = 60;
  ex.submit(pin);
  wait_until_running(ex, 1);

  // A batch job arrives first, an urgent one second.
  ex.submit(executor_job(2, 200, /*priority=*/0));
  ex.submit(executor_job(3, 300, /*priority=*/2));
  const pool::PoolExecutor::Stats st = ex.stats();
  EXPECT_EQ(st.queued[0], 1);
  EXPECT_EQ(st.queued[2], 1);
  EXPECT_EQ(st.preempted, 0) << "an unparkable job must never be preempted";

  const std::vector<std::uint64_t> order = log.wait_for(3);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 2}))
      << "the urgent job must overtake the earlier-queued batch job";
  ex.shutdown();
}

// The preemption acceptance test at the executor layer: an urgent arrival
// on a saturated pool parks the running batch job at its next checkpoint
// save, runs, and the parked job then resumes from that checkpoint — with
// a final fingerprint byte-identical to a never-preempted run of the same
// job. Scheduling pressure must be invisible in the bytes.
TEST(PoolExecutorTest, AutoPreemptionResumesByteIdentically) {
  const auto victim_job = [&](const std::string& leaf) {
    pool::ExecutorJob j = executor_job(1, kMaster, /*priority=*/0);
    j.base.stage1.attempts_per_cell = 60;
    j.base.stage2.attempts_per_cell = 40;
    j.checkpoint_root = fresh_dir(leaf);
    j.checkpoint_every = 1;
    return j;
  };

  // Ground truth: the same job on an idle executor.
  std::uint64_t clean_fp = 0;
  {
    DoneLog log;
    pool::PoolExecutor ex(/*threads=*/1, log.hooks());
    ex.submit(victim_job("tw_exec_clean"));
    (void)log.wait_for(1);
    const pool::ExecutorResult r = log.result_for(1);
    ASSERT_TRUE(r.ok());
    clean_fp = r.best_report().fingerprint;
    ASSERT_NE(clean_fp, 0u);
    ex.shutdown();
  }

  DoneLog log;
  pool::PoolExecutor ex(/*threads=*/1, log.hooks());
  ex.submit(victim_job("tw_exec_preempt"));
  wait_until_running(ex, 0);

  // The urgent submission finds the only worker busy with a lower class:
  // submit() preempts the batch job automatically.
  ex.submit(executor_job(2, 777, /*priority=*/2));
  (void)log.wait_for(2);

  const pool::PoolExecutor::Stats st = ex.stats();
  EXPECT_GE(st.preempted, 1) << "the urgent job never displaced the batch";
  EXPECT_GE(st.resumed, 1) << "the parked task was never claimed again";

  const pool::ExecutorResult urgent = log.result_for(2);
  ASSERT_TRUE(urgent.ok());
  const pool::ExecutorResult batch = log.result_for(1);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.best_report().fingerprint, clean_fp)
      << "preempted-then-resumed run diverged from the uninterrupted one";
  ex.shutdown();
}

}  // namespace
}  // namespace tw
