// Tests for the netlist data model: builder API, invariants, statistics.
#include <gtest/gtest.h>

#include "netlist/netlist.hpp"

namespace tw {
namespace {

Netlist two_macro_circuit() {
  Netlist nl;
  const NetId n = nl.add_net("n1");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 20, 6}});
  nl.add_fixed_pin(a, "p", n, Point{10, 5});
  nl.add_fixed_pin(b, "p", n, Point{0, 3});
  return nl;
}

TEST(Netlist, BuildTwoMacros) {
  Netlist nl = two_macro_circuit();
  EXPECT_EQ(nl.num_cells(), 2u);
  EXPECT_EQ(nl.num_nets(), 1u);
  EXPECT_EQ(nl.num_pins(), 2u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, TilesNormalizedToOrigin) {
  Netlist nl;
  const CellId c = nl.add_macro("a", {Rect{5, 7, 15, 17}});
  const auto& inst = nl.cell(c).instances.front();
  EXPECT_EQ(inst.tiles[0], (Rect{0, 0, 10, 10}));
  EXPECT_EQ(inst.width, 10);
  EXPECT_EQ(inst.height, 10);
}

TEST(Netlist, MacroPolygonDecomposes) {
  Netlist nl;
  const CellId c = nl.add_macro_polygon(
      "L", {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  EXPECT_EQ(nl.cell(c).instances.front().area(), 75);
}

TEST(Netlist, CustomCellRealizesGeometricMeanAspect) {
  Netlist nl;
  const CellId c = nl.add_custom("c", 400, 0.25, 4.0);
  const auto& inst = nl.cell(c).instances.front();
  // Geometric mean aspect = 1 -> ~20 x 20.
  EXPECT_NEAR(static_cast<double>(inst.width), 20.0, 2.0);
  EXPECT_NEAR(static_cast<double>(inst.width) * inst.height, 400.0, 40.0);
}

TEST(Netlist, CustomRejectsBadAspect) {
  Netlist nl;
  EXPECT_THROW(nl.add_custom("c", 100, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(nl.add_custom("c", 100, 2.0, 1.0), std::invalid_argument);
}

TEST(Netlist, ClampAspectContinuousAndDiscrete) {
  Netlist nl;
  const CellId c = nl.add_custom("c", 100, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(nl.cell(c).clamp_aspect(3.0), 2.0);
  EXPECT_DOUBLE_EQ(nl.cell(c).clamp_aspect(0.1), 0.5);
  EXPECT_DOUBLE_EQ(nl.cell(c).clamp_aspect(1.0), 1.0);
  nl.set_discrete_aspects(c, {0.5, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(nl.cell(c).clamp_aspect(0.8), 1.0);
  EXPECT_DOUBLE_EQ(nl.cell(c).clamp_aspect(1.8), 2.0);
}

TEST(Netlist, DiscreteAspectsRequireCustom) {
  Netlist nl;
  const CellId m = nl.add_macro("m", {Rect{0, 0, 5, 5}});
  EXPECT_THROW(nl.set_discrete_aspects(m, {1.0}), std::invalid_argument);
}

TEST(Netlist, MultipleInstancesWithPins) {
  Netlist nl;
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  const CellId c = nl.add_macro("c", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(c, "p1", n1, Point{0, 5});
  // Alternative instance: 20 x 5 with the pin relocated.
  nl.add_instance(c, {Rect{0, 0, 20, 5}}, {Point{0, 2}});
  EXPECT_EQ(nl.cell(c).instances.size(), 2u);
  // New pins must provide offsets for both instances.
  nl.add_fixed_pin(c, "p2", n2, {Point{10, 10}, Point{20, 5}});
  // One more cell so nets have 2 pins.
  const CellId d = nl.add_macro("d", {Rect{0, 0, 4, 4}});
  nl.add_fixed_pin(d, "q1", n1, Point{0, 0});
  nl.add_fixed_pin(d, "q2", n2, Point{4, 4});
  EXPECT_NO_THROW(nl.validate());
  // A single offset broadcasts to all instances; a wrong multi-count throws.
  EXPECT_THROW(nl.add_fixed_pin(c, "p3", n1,
                                std::vector<Point>{{0, 0}, {0, 0}, {0, 0}}),
               std::invalid_argument);
}

TEST(Netlist, EdgePinRequiresCustom) {
  Netlist nl;
  nl.add_net("n");
  const CellId m = nl.add_macro("m", {Rect{0, 0, 5, 5}});
  EXPECT_THROW(nl.add_edge_pin(m, "p", 0), std::invalid_argument);
}

TEST(Netlist, GroupsAndSequences) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 400, 0.5, 2.0);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  const GroupId g = nl.add_group(c, "bus", kSideLeft | kSideRight, true);
  nl.add_group_pin(c, g, "b0", n);
  nl.add_group_pin(c, g, "b1", n);
  EXPECT_EQ(nl.cell(c).groups[0].pins.size(), 2u);
  EXPECT_EQ(nl.pin(nl.cell(c).groups[0].pins[0]).commit, PinCommit::kSequenced);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, EquivalencePairsAndMerging) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
  const PinId p1 = nl.add_fixed_pin(a, "p1", n, Point{0, 0});
  const PinId p2 = nl.add_fixed_pin(a, "p2", n, Point{10, 0});
  const PinId p3 = nl.add_fixed_pin(a, "p3", n, Point{10, 10});
  nl.set_equivalent(p1, p2);
  EXPECT_NE(nl.pin(p1).equiv_class, 0);
  EXPECT_EQ(nl.pin(p1).equiv_class, nl.pin(p2).equiv_class);
  nl.set_equivalent(p3, p1);
  EXPECT_EQ(nl.pin(p3).equiv_class, nl.pin(p2).equiv_class);
}

TEST(Netlist, EquivalenceRejectsDifferentNets) {
  Netlist nl;
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
  const PinId p1 = nl.add_fixed_pin(a, "p1", n1, Point{0, 0});
  const PinId p2 = nl.add_fixed_pin(a, "p2", n2, Point{10, 0});
  EXPECT_THROW(nl.set_equivalent(p1, p2), std::invalid_argument);
}

TEST(Netlist, Statistics) {
  Netlist nl = two_macro_circuit();
  EXPECT_EQ(nl.total_cell_area(), 100 + 120);
  EXPECT_EQ(nl.total_cell_perimeter(), 40 + 52);
  EXPECT_NEAR(nl.average_pin_density(), 2.0 / 92.0, 1e-12);
}

TEST(Netlist, ValidateCatchesSingletonNet) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(a, "p", n, Point{0, 0});
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ValidateCatchesPinOutsideBBox) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(a, "p", n, Point{11, 0});  // outside
  nl.add_fixed_pin(b, "q", n, Point{0, 0});
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, SetNetWeights) {
  Netlist nl = two_macro_circuit();
  nl.set_net_weights(0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(nl.net(0).weight_h, 2.0);
  EXPECT_DOUBLE_EQ(nl.net(0).weight_v, 3.0);
  EXPECT_THROW(nl.set_net_weights(99, 1, 1), std::invalid_argument);
}

TEST(SideMask, Conversions) {
  EXPECT_EQ(side_to_mask(Side::kLeft), kSideLeft);
  const auto sides = sides_in_mask(kSideLeft | kSideTop);
  ASSERT_EQ(sides.size(), 2u);
  EXPECT_EQ(sides[0], Side::kLeft);
  EXPECT_EQ(sides[1], Side::kTop);
  EXPECT_EQ(sides_in_mask(kSideAny).size(), 4u);
}

}  // namespace
}  // namespace tw
