// Tests for the utility layer: RNG determinism and distributions, running
// statistics, median, and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/tableio.hpp"

namespace tw {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(12);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.uniform01());
  EXPECT_NEAR(st.mean(), 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, OneOrTwoMatchesPaperRatio) {
  // r = p/(1-p); with r = 10 expect ~10x more 1s than 2s.
  Rng rng(14);
  const double p = 10.0 / 11.0;
  int ones = 0, twos = 0;
  for (int i = 0; i < 22000; ++i)
    (rng.one_or_two(p) == 1 ? ones : twos)++;
  EXPECT_NEAR(static_cast<double>(ones) / twos, 10.0, 1.5);
}

TEST(Rng, NormalMoments) {
  Rng rng(15);
  RunningStats st;
  for (int i = 0; i < 40000; ++i) st.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(st.mean(), 3.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, LognormalPositive) {
  Rng rng(16);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(2.0, 0.5), 0.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng b(42);
  Rng child_b = b.split();
  EXPECT_EQ(child(), child_b());  // deterministic
  EXPECT_NE(child(), a());        // but a different stream
}

TEST(RunningStats, Empty) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(v);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStats, ClearResets) {
  RunningStats st;
  st.add(1.0);
  st.clear();
  EXPECT_EQ(st.count(), 0u);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

TEST(AcceptanceCounter, Rates) {
  AcceptanceCounter ac;
  ac.record(true);
  ac.record(false);
  ac.record(true);
  EXPECT_EQ(ac.attempted, 3u);
  EXPECT_EQ(ac.accepted, 2u);
  EXPECT_NEAR(ac.rate(), 2.0 / 3.0, 1e-12);
  ac.clear();
  EXPECT_EQ(ac.rate(), 0.0);
}

TEST(Table, AlignsColumnsAndFormats) {
  Table t({"name", "value"});
  t.add_row({"x", Table::num(1.5, 2)});
  t.add_row({"longer", Table::percent(12.345, 1)});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("12.3%"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.str().find("only"), std::string::npos);
}

TEST(Table, IntegerFormat) {
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::integer(1234567), "1234567");
}

}  // namespace
}  // namespace tw
