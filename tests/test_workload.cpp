// Tests for the synthetic circuit generator and the nine paper circuits:
// exact published counts, structural realism, determinism.
#include <gtest/gtest.h>

#include <map>

#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

TEST(Generator, ExactCounts) {
  const CircuitSpec spec = tiny_circuit(1);
  const Netlist nl = generate_circuit(spec);
  EXPECT_EQ(nl.num_cells(), static_cast<std::size_t>(spec.num_cells));
  EXPECT_EQ(nl.num_nets(), static_cast<std::size_t>(spec.num_nets));
  EXPECT_EQ(nl.num_pins(), static_cast<std::size_t>(spec.num_pins));
}

TEST(Generator, ValidatesAndHasMinDegree2) {
  const Netlist nl = generate_circuit(medium_circuit(2));
  EXPECT_NO_THROW(nl.validate());
  for (const auto& n : nl.nets()) EXPECT_GE(n.degree(), 2u);
}

TEST(Generator, DeterministicPerSeed) {
  const Netlist a = generate_circuit(tiny_circuit(3));
  const Netlist b = generate_circuit(tiny_circuit(3));
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    EXPECT_EQ(a.cell(static_cast<CellId>(i)).instances.front().width,
              b.cell(static_cast<CellId>(i)).instances.front().width);
  }
  for (std::size_t i = 0; i < a.num_pins(); ++i)
    EXPECT_EQ(a.pin(static_cast<PinId>(i)).net, b.pin(static_cast<PinId>(i)).net);
}

TEST(Generator, SeedsProduceDifferentCircuits) {
  const Netlist a = generate_circuit(tiny_circuit(4));
  const Netlist b = generate_circuit(tiny_circuit(5));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.num_cells(); ++i)
    if (a.cell(static_cast<CellId>(i)).instances.front().width !=
        b.cell(static_cast<CellId>(i)).instances.front().width)
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Generator, CustomFractionRespected) {
  CircuitSpec spec = medium_circuit(6);
  spec.custom_fraction = 0.0;
  const Netlist none = generate_circuit(spec);
  for (const auto& c : none.cells()) EXPECT_FALSE(c.is_custom());
  spec.custom_fraction = 1.0;
  const Netlist all = generate_circuit(spec);
  for (const auto& c : all.cells()) EXPECT_TRUE(c.is_custom());
}

TEST(Generator, RectilinearCellsPresent) {
  CircuitSpec spec = medium_circuit(7);
  spec.custom_fraction = 0.0;
  spec.rectilinear_fraction = 1.0;
  const Netlist nl = generate_circuit(spec);
  int multi_tile = 0;
  for (const auto& c : nl.cells())
    if (c.instances.front().tiles.size() > 1) ++multi_tile;
  EXPECT_GT(multi_tile, spec.num_cells / 2);
}

TEST(Generator, LongTailNetDegrees) {
  const Netlist nl = generate_circuit(medium_circuit(8));
  std::size_t max_degree = 0;
  int two_pin = 0;
  for (const auto& n : nl.nets()) {
    max_degree = std::max(max_degree, n.degree());
    if (n.degree() == 2) ++two_pin;
  }
  EXPECT_GT(max_degree, 6u);                       // some fat nets
  EXPECT_GT(two_pin, static_cast<int>(nl.num_nets()) / 3);  // many 2-pin nets
}

TEST(Generator, EquivalentPinsCreated) {
  CircuitSpec spec = medium_circuit(9);
  spec.equiv_fraction = 0.05;
  const Netlist nl = generate_circuit(spec);
  int equiv = 0;
  for (const auto& p : nl.pins())
    if (p.equiv_class != 0) ++equiv;
  EXPECT_GE(equiv, 2);
  // Equivalent pins pair up within one net.
  std::map<std::int32_t, std::vector<PinId>> classes;
  for (const auto& p : nl.pins())
    if (p.equiv_class != 0) classes[p.equiv_class].push_back(p.id);
  for (const auto& [cls, pins] : classes) {
    (void)cls;
    ASSERT_GE(pins.size(), 2u);
    for (PinId p : pins) EXPECT_EQ(nl.pin(p).net, nl.pin(pins[0]).net);
  }
}

TEST(Generator, PinsOnCellBoundary) {
  const Netlist nl = generate_circuit(tiny_circuit(10));
  for (const auto& c : nl.cells()) {
    if (c.is_custom()) continue;
    const CellInstance& inst = c.instances.front();
    const auto edges = exposed_edges(inst.tiles);
    for (std::size_t k = 0; k < c.pins.size(); ++k) {
      const Point off = inst.pin_offsets[k];
      bool on_edge = false;
      for (const auto& e : edges) {
        if (is_vertical(e.side)) {
          if (off.x == e.pos && e.span.contains(off.y)) on_edge = true;
        } else {
          if (off.y == e.pos && e.span.contains(off.x)) on_edge = true;
        }
      }
      EXPECT_TRUE(on_edge) << c.name << " pin " << k;
    }
  }
}

TEST(Generator, RejectsInfeasibleSpecs) {
  CircuitSpec spec;
  spec.num_cells = 1;
  EXPECT_THROW(generate_circuit(spec), std::invalid_argument);
  spec = CircuitSpec{};
  spec.num_nets = 100;
  spec.num_pins = 150;  // under 2 per net
  EXPECT_THROW(generate_circuit(spec), std::invalid_argument);
}

TEST(PaperCircuits, AllNineWithPublishedCounts) {
  const auto all = paper_circuits();
  ASSERT_EQ(all.size(), 9u);
  // Spot-check the published triples (cells, nets, pins).
  const std::map<std::string, std::array<int, 3>> expected{
      {"i1", {33, 121, 452}}, {"p1", {11, 83, 309}},  {"x1", {10, 267, 762}},
      {"i2", {23, 127, 577}}, {"i3", {18, 38, 102}},  {"l1", {62, 570, 4309}},
      {"d2", {20, 656, 1776}}, {"d1", {17, 288, 837}}, {"d3", {17, 136, 665}},
  };
  for (const auto& pc : all) {
    const auto it = expected.find(pc.spec.name);
    ASSERT_NE(it, expected.end()) << pc.spec.name;
    EXPECT_EQ(pc.spec.num_cells, it->second[0]);
    EXPECT_EQ(pc.spec.num_nets, it->second[1]);
    EXPECT_EQ(pc.spec.num_pins, it->second[2]);
    EXPECT_GE(pc.trials, 2);
  }
}

TEST(PaperCircuits, TrialCountsMatchTable3) {
  EXPECT_EQ(paper_circuit("i1").trials, 5);
  EXPECT_EQ(paper_circuit("p1").trials, 6);
  EXPECT_EQ(paper_circuit("x1").trials, 4);
  EXPECT_EQ(paper_circuit("i3").trials, 2);
  EXPECT_EQ(paper_circuit("d3").trials, 2);
}

TEST(PaperCircuits, GenerateSmallOnes) {
  // Generate the three smallest circuits fully and validate.
  for (const char* name : {"p1", "x1", "i3"}) {
    const PaperCircuit pc = paper_circuit(name);
    const Netlist nl = generate_circuit(pc.spec);
    EXPECT_EQ(nl.num_cells(), static_cast<std::size_t>(pc.spec.num_cells));
    EXPECT_EQ(nl.num_nets(), static_cast<std::size_t>(pc.spec.num_nets));
    EXPECT_EQ(nl.num_pins(), static_cast<std::size_t>(pc.spec.num_pins));
  }
}

TEST(PaperCircuits, UnknownNameThrows) {
  EXPECT_THROW(paper_circuit("zz9"), std::invalid_argument);
}

}  // namespace
}  // namespace tw
