// Tests for the parallel stage-1 annealer (src/place/stage1_parallel.*):
// thread-count determinism (the tentpole guarantee: byte-identical
// same-seed fingerprints at 1/2/4/8 workers), indexed-vs-naive exactness
// under parallel commit, checkpoint/resume equivalence, budget wind-down,
// and the WorkerCrew primitive itself. The whole suite carries the
// "robustness" label, so the ASan and TSan CI legs both run it — any
// cross-replica data race in the speculation batches fails the TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <iomanip>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include <filesystem>

#include "check/validate.hpp"
#include "fingerprint.hpp"
#include "flow/timberwolf.hpp"
#include "place/stage1_parallel.hpp"
#include "pool/workers.hpp"
#include "recover/fault.hpp"
#include "workload/generator.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

ParallelStage1Params fast_params(int workers) {
  ParallelStage1Params p;
  p.base.attempts_per_cell = 12;  // keep unit tests quick
  p.base.p2_samples = 8;
  p.num_workers = workers;
  return p;
}

/// Hexfloat fingerprint of the final placement + every result metric: two
/// runs compare equal only when every bit of every value matches.
std::string fingerprint(const Placement& p, const Stage1Result& r) {
  std::ostringstream os;
  os << std::hexfloat;
  const auto n = static_cast<CellId>(p.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    const CellState& s = p.state(c);
    os << "cell " << c << ": (" << s.center.x << "," << s.center.y << ") o"
       << static_cast<int>(s.orient) << " i" << s.instance << " a" << s.aspect
       << " sites[";
    for (int site : s.pin_site) os << site << ",";
    os << "]\n";
  }
  os << "teic " << r.final_teic << " teil " << r.final_teil << " ov "
     << r.residual_overlap << " sites " << r.overloaded_sites << "\n";
  os << "steps " << r.temperature_steps << " attempts " << r.attempts
     << " accepts " << r.accepts << " p2 " << r.p2 << "\n";
  for (const auto& tp : r.trace)
    os << "t " << tp.t << " cost " << tp.avg_cost << " acc "
       << tp.acceptance_rate << " win " << tp.window_x << "\n";
  return os.str();
}

TEST(ParallelStage1, FingerprintStableAcrossWorkerCounts) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  std::optional<std::string> reference;
  ParallelStage1Placer::BatchStats ref_stats;
  for (const int workers : {1, 2, 4, 8}) {
    ParallelStage1Placer placer(nl, fast_params(workers), 71);
    Placement placement(nl);
    const Stage1Result r = placer.run(placement);
    const std::string fp = fingerprint(placement, r);
    if (!reference) {
      reference = fp;
      ref_stats = placer.batch_stats();
      EXPECT_GT(r.attempts, 0);
    } else {
      EXPECT_EQ(*reference, fp) << "workers=" << workers;
      // The whole trajectory is worker-independent, down to which slots
      // speculated cleanly and which were re-executed after a conflict.
      EXPECT_EQ(ref_stats.clean, placer.batch_stats().clean);
      EXPECT_EQ(ref_stats.conflicted, placer.batch_stats().conflicted);
    }
  }
  EXPECT_EQ(ref_stats.slots, ref_stats.clean + ref_stats.conflicted);
  EXPECT_GT(ref_stats.clean, 0);
}

TEST(ParallelStage1, MatchesOwnRerunAndImprovesLayout) {
  const Netlist nl = generate_circuit(tiny_circuit(6));
  ParallelStage1Placer a(nl, fast_params(4), 13);
  ParallelStage1Placer b(nl, fast_params(4), 13);
  Placement pa(nl), pb(nl);
  const Stage1Result ra = a.run(pa);
  const Stage1Result rb = b.run(pb);
  EXPECT_EQ(fingerprint(pa, ra), fingerprint(pb, rb));

  // Quality sanity: beats the mean random placement by a wide margin.
  Placement rnd(nl);
  Rng rng(7);
  double random_teil = 0.0;
  for (int i = 0; i < 8; ++i) {
    rnd.randomize(rng, ra.core);
    random_teil += rnd.teil();
  }
  random_teil /= 8.0;
  EXPECT_LT(ra.final_teil, 0.8 * random_teil);
}

TEST(ParallelStage1, ExactnessUnderParallelCommit) {
  // The incremental state the commit pass maintains (net-bound cache,
  // overlap index) must equal a from-scratch recompute after the run —
  // the indexed-vs-naive equivalence under parallel commit.
  const Netlist nl = generate_circuit(medium_circuit(2));
  ParallelStage1Params params = fast_params(4);
  ParallelStage1Placer placer(nl, params, 29);
  Placement placement(nl);
  const Stage1Result r = placer.run(placement);

  EXPECT_EQ(placement.net_bounds_drift(), "");
  OverlapEngine bare(placement, r.core, {});
  EXPECT_EQ(bare.total_overlap(), bare.total_overlap_naive());
  const ValidationReport pr = validate_placement(placement, {.core = r.core});
  EXPECT_TRUE(pr.ok()) << pr.str();
}

TEST(ParallelStage1, ResumeReproducesUninterruptedRun) {
  const Netlist nl = generate_circuit(tiny_circuit(9));

  // Uninterrupted run, capturing a mid-run cursor + placement snapshot
  // (checkpoints fire at the top of a step, before it mutates anything,
  // so copying the annealed placement inside the hook is exact).
  std::optional<Stage1Cursor> cursor;
  std::optional<Placement> snapshot;
  Placement uninterrupted(nl);
  ParallelStage1Placer full(nl, fast_params(2), 45);
  Stage1Hooks hooks;
  hooks.checkpoint_every = 3;
  hooks.on_checkpoint = [&](const Stage1Cursor& cur) {
    if (cur.next_step == 6) {
      cursor = cur;
      snapshot.emplace(uninterrupted);
    }
  };
  full.set_hooks(hooks);
  const Stage1Result r_full = full.run(uninterrupted);
  ASSERT_TRUE(cursor.has_value());
  ASSERT_TRUE(snapshot.has_value());

  // Fresh placer resumed at the captured step — and with a different
  // worker count than the original run, which must not matter.
  ParallelStage1Placer resumed(nl, fast_params(8), 45);
  Placement continued = *snapshot;
  const Stage1Result r_res = resumed.resume(continued, *cursor);
  EXPECT_EQ(fingerprint(uninterrupted, r_full), fingerprint(continued, r_res));
}

TEST(ParallelStage1, BudgetStopIsWorkerCountIndependent) {
  const Netlist nl = generate_circuit(tiny_circuit(4));
  std::optional<std::string> reference;
  for (const int workers : {1, 4}) {
    ParallelStage1Placer placer(nl, fast_params(workers), 91);
    recover::RunBudget budget(2500, recover::RunBudget::kUnlimited);
    Stage1Hooks hooks;
    hooks.budget = &budget;
    placer.set_hooks(hooks);
    Placement placement(nl);
    const Stage1Result r = placer.run(placement);
    EXPECT_EQ(r.outcome, recover::RunOutcome::kBudgetExhausted);
    const std::string fp = fingerprint(placement, r);
    if (!reference) {
      reference = fp;
    } else {
      EXPECT_EQ(*reference, fp) << "workers=" << workers;
    }
  }
}

TEST(ParallelFlow, KillResumeReproducesBaselineAcrossEngineSelection) {
  // Full-flow crash recovery with the parallel engine: kill mid-stage-1,
  // resume from the on-disk checkpoint under DIFFERENT stage1_workers
  // settings (including 0 = "serial"), and require byte-identical results.
  // The checkpoint's kParallelStage1 phase tag must re-select the parallel
  // engine no matter what the resume-time params say.
  const Netlist nl = generate_circuit(tiny_circuit(21));
  FlowParams base = testing::fast_flow(57);
  base.stage1_workers = 3;

  std::string reference;
  {
    Placement p(nl);
    const FlowResult r = TimberWolfMC(nl, base).run(p);
    reference = testing::fingerprint(p, r);
  }

  const std::string dir = ::testing::TempDir() + "/tw_par_flow_resume";
  std::filesystem::remove_all(dir);
  recover::FaultPlan plan;
  plan.kill_at(recover::FaultSite::kStage1Step, 4);
  FlowParams doomed_params = base;
  doomed_params.recover.checkpoint_dir = dir;
  doomed_params.recover.checkpoint_every = 1;
  doomed_params.recover.faults = &plan;
  {
    Placement doomed(nl);
    EXPECT_THROW((void)TimberWolfMC(nl, doomed_params).run(doomed),
                 recover::InjectedFault);
  }

  const auto latest = recover::find_latest_checkpoint(dir);
  ASSERT_TRUE(latest.has_value());
  const recover::FlowCheckpoint cp = recover::load_checkpoint(*latest);
  EXPECT_EQ(cp.phase, recover::FlowPhase::kParallelStage1);

  for (const int resume_workers : {0, 1, 8}) {
    FlowParams rp = testing::fast_flow(57);
    rp.stage1_workers = resume_workers;
    Placement p(nl);
    const FlowResult r = TimberWolfMC(nl, rp).resume(p, cp);
    EXPECT_EQ(r.outcome, recover::RunOutcome::kResumed);
    EXPECT_EQ(testing::fingerprint(p, r), reference)
        << "resume_workers=" << resume_workers;
  }
}

TEST(ParallelFlow, SerialCheckpointStaysOnSerialEngine) {
  // The inverse selection: a serial-engine checkpoint resumed under
  // stage1_workers > 0 must finish on the serial engine (and reproduce
  // the serial baseline).
  const Netlist nl = generate_circuit(tiny_circuit(21));
  const FlowParams base = testing::fast_flow(58);

  std::string reference;
  {
    Placement p(nl);
    const FlowResult r = TimberWolfMC(nl, base).run(p);
    reference = testing::fingerprint(p, r);
  }

  const std::string dir = ::testing::TempDir() + "/tw_ser_flow_resume";
  std::filesystem::remove_all(dir);
  recover::FaultPlan plan;
  plan.kill_at(recover::FaultSite::kStage1Step, 4);
  FlowParams doomed_params = base;
  doomed_params.recover.checkpoint_dir = dir;
  doomed_params.recover.checkpoint_every = 1;
  doomed_params.recover.faults = &plan;
  {
    Placement doomed(nl);
    EXPECT_THROW((void)TimberWolfMC(nl, doomed_params).run(doomed),
                 recover::InjectedFault);
  }

  const auto latest = recover::find_latest_checkpoint(dir);
  ASSERT_TRUE(latest.has_value());
  const recover::FlowCheckpoint cp = recover::load_checkpoint(*latest);
  EXPECT_EQ(cp.phase, recover::FlowPhase::kStage1);

  FlowParams rp = testing::fast_flow(58);
  rp.stage1_workers = 4;
  Placement p(nl);
  const FlowResult r = TimberWolfMC(nl, rp).resume(p, cp);
  EXPECT_EQ(r.outcome, recover::RunOutcome::kResumed);
  EXPECT_EQ(testing::fingerprint(p, r), reference);
}

TEST(ParallelStage1, SlotSeedsAreCollisionFree) {
  // Regression: the slot-seed mixer once folded step/batch/slot into the
  // raw SplitMix64 counter, where the small integers cancelled — >99% of
  // all slot streams collided and the anneal replayed the same proposal
  // sequences at every temperature.
  std::unordered_set<std::uint64_t> seen;
  for (int step = 0; step < 60; ++step)
    for (long long batch = 0; batch < 60; ++batch)
      for (int slot = 0; slot < 16; ++slot)
        EXPECT_TRUE(
            seen.insert(derive_slot_seed(12345, step, batch, slot)).second)
            << "collision at step=" << step << " batch=" << batch
            << " slot=" << slot;
  // Disjoint from the string-derived stream family for the same master.
  EXPECT_FALSE(seen.contains(derive_seed(12345, "p1-slots")));
}

TEST(WorkerCrew, RunsEverySlotExactlyOnce) {
  WorkerCrew crew(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  std::atomic<int> worker_seen{0};
  crew.run(257, [&](int worker, int slot) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    worker_seen.fetch_or(1 << worker);
    hits[static_cast<std::size_t>(slot)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Batch after batch reuses the parked threads.
  crew.run(3, [&](int, int slot) { hits[static_cast<std::size_t>(slot)].fetch_add(1); });
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(hits[s].load(), 2);
}

TEST(WorkerCrew, SerialDegenerateFormUsesCallerOnly) {
  WorkerCrew crew(1);
  std::vector<int> order;
  crew.run(5, [&](int worker, int slot) {
    EXPECT_EQ(worker, 0);
    order.push_back(slot);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkerCrew, PropagatesFirstException) {
  WorkerCrew crew(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      crew.run(64,
               [&](int, int slot) {
                 executed.fetch_add(1);
                 if (slot == 7) throw std::runtime_error("slot 7 failed");
               }),
      std::runtime_error);
  // The crew must be reusable after an error drained the batch.
  std::atomic<int> after{0};
  crew.run(8, [&](int, int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

}  // namespace
}  // namespace tw
