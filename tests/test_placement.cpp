// Tests for placement state: absolute geometry, pin positions under all
// orientations, net bounding boxes, TEIC/TEIL, pin-site assignment and the
// C3 penalty bookkeeping.
#include <gtest/gtest.h>

#include "place/placement.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

Netlist pair_circuit() {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 4}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 6, 6}});
  nl.add_fixed_pin(a, "p", n, Point{10, 2});
  nl.add_fixed_pin(b, "q", n, Point{0, 3});
  return nl;
}

TEST(Placement, BBoxFollowsCenterAndOrient) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  p.set_center(0, Point{100, 50});
  EXPECT_EQ(p.bbox(0), (Rect{95, 48, 105, 52}));
  p.set_orient(0, Orient::W);  // 10x4 -> 4x10
  const Rect bb = p.bbox(0);
  EXPECT_EQ(bb.width(), 4);
  EXPECT_EQ(bb.height(), 10);
  EXPECT_EQ(bb.center(), (Point{100, 50}));
}

TEST(Placement, AbsoluteTilesMatchBBoxForRect) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  p.set_center(0, Point{7, 7});
  const auto tiles = p.absolute_tiles(0);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], p.bbox(0));
}

TEST(Placement, PinPositionIdentityOrient) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  p.set_center(0, Point{100, 50});
  // bbox = {95,48,105,52}; pin offset (10,2) -> (105, 50).
  EXPECT_EQ(p.pin_position(0), (Point{105, 50}));
}

TEST(Placement, PinPositionUnderAllOrients) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  p.set_center(0, Point{0, 0});
  for (Orient o : kAllOrients) {
    p.set_orient(0, o);
    const Point pos = p.pin_position(0);
    // The pin sits on the cell boundary in every orientation.
    const Rect bb = p.bbox(0);
    EXPECT_TRUE(pos.x == bb.xlo || pos.x == bb.xhi || pos.y == bb.ylo ||
                pos.y == bb.yhi)
        << to_string(o);
  }
}

TEST(Placement, MirrorMovesPinToOppositeSide) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  p.set_center(0, Point{0, 0});
  const Point at_n = p.pin_position(0);
  p.set_orient(0, Orient::FN);  // mirror about Y
  const Point at_fn = p.pin_position(0);
  EXPECT_EQ(at_fn.x, -at_n.x);
  EXPECT_EQ(at_fn.y, at_n.y);
}

TEST(Placement, NetBBoxAndCost) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  p.set_center(0, Point{0, 0});   // pin at (5, 0)
  p.set_center(1, Point{20, 10}); // pin q offset (0,3), bbox {17,7,23,13} -> (17,10)
  const Rect bb = p.net_bbox(0);
  EXPECT_EQ(bb, (Rect{5, 0, 17, 10}));
  EXPECT_DOUBLE_EQ(p.net_cost(0), 12.0 + 10.0);
  EXPECT_DOUBLE_EQ(p.teic(), p.net_cost(0));
  EXPECT_DOUBLE_EQ(p.teil(), 22.0);
}

TEST(Placement, WeightedTeicDiffersFromTeil) {
  Netlist nl = pair_circuit();
  nl.set_net_weights(0, 2.0, 0.5);
  Placement p(nl);
  p.set_center(0, Point{0, 0});
  p.set_center(1, Point{20, 10});
  EXPECT_DOUBLE_EQ(p.teic(), 2.0 * 12.0 + 0.5 * 10.0);
  EXPECT_DOUBLE_EQ(p.teil(), 22.0);
}

TEST(Placement, NetsOfCellDeduplicated) {
  Netlist nl;
  const NetId n1 = nl.add_net("n1");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 10, 10}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(a, "p1", n1, Point{0, 0});
  nl.add_fixed_pin(a, "p2", n1, Point{10, 10});
  nl.add_fixed_pin(b, "q", n1, Point{0, 0});
  Placement p(nl);
  EXPECT_EQ(p.nets_of_cell(a).size(), 1u);
}

TEST(Placement, SnapshotRestoreRoundTrip) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  p.set_center(0, Point{5, 5});
  p.set_orient(0, Orient::S);
  const CellState snap = p.snapshot(0);
  p.set_center(0, Point{50, 50});
  p.set_orient(0, Orient::E);
  p.restore(0, snap);
  EXPECT_EQ(p.state(0).center, (Point{5, 5}));
  EXPECT_EQ(p.state(0).orient, Orient::S);
}

TEST(Placement, CustomCellAspectChange) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 400, 0.25, 4.0);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  nl.add_edge_pin(c, "p", n);
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement p(nl);
  p.set_aspect(c, 4.0);
  const CellInstance& g = p.geometry(c);
  EXPECT_NEAR(static_cast<double>(g.height) / g.width, 4.0, 0.6);
  EXPECT_NEAR(static_cast<double>(g.width * g.height), 400.0, 60.0);
  // Clamped outside the range.
  p.set_aspect(c, 100.0);
  EXPECT_NEAR(static_cast<double>(p.geometry(c).height) / p.geometry(c).width,
              4.0, 0.6);
}

TEST(Placement, AspectChangeRejectsMacro) {
  const Netlist nl = pair_circuit();
  Placement p(nl);
  EXPECT_THROW(p.set_aspect(0, 1.0), std::invalid_argument);
}

TEST(Placement, CustomFixedPinScalesWithAspect) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 400, 0.25, 4.0);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  // Fixed pin at the middle of the right edge of the initial realization.
  const CellInstance& init = nl.cell(c).instances.front();
  nl.add_fixed_pin(c, "p", n, Point{init.width, init.height / 2});
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement p(nl);
  p.set_aspect(c, 4.0);
  const CellInstance& g = p.geometry(c);
  const Point off = g.pin_offsets[0];
  EXPECT_EQ(off.x, g.width);  // still on the right edge
}

TEST(Placement, SitePenaltyZeroWhenSpread) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 1600, 1.0, 1.0, 4);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  nl.add_edge_pin(c, "p0", n);
  nl.add_edge_pin(c, "p1", n);
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement p(nl);
  // Constructor spreads pins; capacity of a 40-long edge site is 40/4 = 10.
  EXPECT_DOUBLE_EQ(p.site_penalty(c, 5.0), 0.0);
  EXPECT_EQ(p.overloaded_sites(), 0);
}

TEST(Placement, SitePenaltyMatchesEqn10And11) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  // Tiny custom cell: site capacity 1 (edge 8 long, 8 sites).
  const CellId c = nl.add_custom("c", 64, 1.0, 1.0, 8);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  std::vector<PinId> pins;
  for (int i = 0; i < 3; ++i)
    pins.push_back(nl.add_edge_pin(c, "p" + std::to_string(i), n));
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement p(nl);
  // Cram all three pins into site 0 (capacity 1): E = (3-1)+5 = 7, C3 = 49.
  for (int i = 0; i < 3; ++i) p.assign_pin_to_site(c, i, 0);
  EXPECT_DOUBLE_EQ(p.site_penalty(c, 5.0), 49.0);
  EXPECT_EQ(p.overloaded_sites(), 1);
  // Moving one pin away: 2 pins in a capacity-1 site -> E = 1+5 = 6.
  p.assign_pin_to_site(c, 0, 1);
  EXPECT_DOUBLE_EQ(p.site_penalty(c, 5.0), 36.0);
}

TEST(Placement, AssignGroupSequencedConsecutive) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 6400, 1.0, 1.0, 8);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  const GroupId g = nl.add_group(c, "bus", kSideLeft | kSideRight, true);
  for (int i = 0; i < 3; ++i)
    nl.add_group_pin(c, g, "b" + std::to_string(i), n);
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement p(nl);
  p.assign_group(c, g, Side::kRight, 2);
  const CellState& st = p.state(c);
  // Pins occupy consecutive sites 2,3,4 on the right edge.
  const int base = site_index_of(Side::kRight, 2, 8);
  EXPECT_EQ(st.pin_site[0], base);
  EXPECT_EQ(st.pin_site[1], base + 1);
  EXPECT_EQ(st.pin_site[2], base + 2);
  // Sequenced order preserved along the edge.
  EXPECT_LT(st.sites[static_cast<std::size_t>(st.pin_site[0])].offset.y,
            st.sites[static_cast<std::size_t>(st.pin_site[2])].offset.y);
}

TEST(Placement, AssignGroupClampsAtEdgeEnd) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 6400, 1.0, 1.0, 4);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  const GroupId g = nl.add_group(c, "bus", kSideTop, true);
  for (int i = 0; i < 3; ++i)
    nl.add_group_pin(c, g, "b" + std::to_string(i), n);
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement p(nl);
  p.assign_group(c, g, Side::kTop, 3);  // last site; trailing pins share it
  const CellState& st = p.state(c);
  const int last = site_index_of(Side::kTop, 3, 4);
  EXPECT_EQ(st.pin_site[0], last);
  EXPECT_EQ(st.pin_site[1], last);
  EXPECT_EQ(st.pin_site[2], last);
}

TEST(Placement, AssignGroupRejectsIllegalSide) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 400, 1.0, 1.0, 4);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  const GroupId g = nl.add_group(c, "bus", kSideLeft, false);
  nl.add_group_pin(c, g, "b0", n);
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement p(nl);
  EXPECT_THROW(p.assign_group(c, g, Side::kTop, 0), std::invalid_argument);
}

TEST(Placement, RandomizeKeepsCellsInCore) {
  const Netlist nl = generate_circuit(tiny_circuit());
  Placement p(nl);
  Rng rng(3);
  const Rect core{-200, -200, 200, 200};
  p.randomize(rng, core);
  for (const auto& c : nl.cells()) {
    EXPECT_TRUE(core.contains(p.state(c.id).center)) << c.name;
  }
}

TEST(Placement, RandomizeDeterministicPerSeed) {
  const Netlist nl = generate_circuit(tiny_circuit());
  Placement p1(nl), p2(nl);
  Rng r1(9), r2(9);
  const Rect core{-200, -200, 200, 200};
  p1.randomize(r1, core);
  p2.randomize(r2, core);
  for (const auto& c : nl.cells()) {
    EXPECT_EQ(p1.state(c.id).center, p2.state(c.id).center);
    EXPECT_EQ(p1.state(c.id).orient, p2.state(c.id).orient);
  }
  EXPECT_DOUBLE_EQ(p1.teic(), p2.teic());
}

TEST(Placement, UncommittedPinSitsOnAllowedSide) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId c = nl.add_custom("c", 400, 1.0, 1.0, 4);
  const CellId d = nl.add_macro("d", {Rect{0, 0, 5, 5}});
  nl.add_edge_pin(c, "p", n, kSideTop);
  nl.add_fixed_pin(d, "q", n, Point{0, 0});
  Placement p(nl);
  p.set_center(c, Point{0, 0});
  const Point pos = p.pin_position(0);
  EXPECT_EQ(pos.y, p.bbox(c).yhi);  // on the top edge
}

}  // namespace
}  // namespace tw
