// Tests for the multilevel flow (src/flow/multilevel + warm_start):
// same-seed byte-identical determinism, warm-start source behavior, the
// known-optimum quality comparison against a flat anneal under the same
// RunBudget, and the SoC-tier smoke (ctest -L soc runs this binary).
#include <gtest/gtest.h>

#include "fingerprint.hpp"
#include "flow/multilevel.hpp"
#include "place/stage1.hpp"
#include "workload/generator.hpp"
#include "workload/known_optimum.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

/// Compact anneal parameters that finish in test time.
Stage1Params fast_stage1(int attempts_per_cell = 12) {
  Stage1Params p;
  p.attempts_per_cell = attempts_per_cell;
  p.p2_samples = 6;
  return p;
}

MultilevelParams fast_multilevel(std::uint64_t seed) {
  MultilevelParams p;
  p.refine = fast_stage1();
  p.seed = seed;
  return p;
}

TEST(Multilevel, SameSeedRunsAreByteIdentical) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  std::string prints[2];
  for (auto& print : prints) {
    ClusterWarmStart warm({}, fast_stage1(8));
    MultilevelFlow flow(nl, warm, fast_multilevel(42));
    Placement placement(nl);
    const MultilevelResult r = flow.run(placement);
    EXPECT_EQ(r.outcome, recover::RunOutcome::kCompleted);
    EXPECT_EQ(r.warm_source, "cluster");
    EXPECT_GT(r.warm.clusters, 0);
    print = testing::fingerprint(placement, r);
  }
  EXPECT_EQ(prints[0], prints[1]);
}

TEST(Multilevel, SeedChangesTheRun) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  std::string prints[2];
  std::uint64_t seeds[2] = {42, 43};
  for (int i = 0; i < 2; ++i) {
    ClusterWarmStart warm({}, fast_stage1(8));
    MultilevelFlow flow(nl, warm, fast_multilevel(seeds[i]));
    Placement placement(nl);
    const MultilevelResult r = flow.run(placement);
    prints[i] = testing::fingerprint(placement, r);
  }
  EXPECT_NE(prints[0], prints[1]);
}

TEST(Multilevel, QuadraticWarmStartRuns) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  QuadraticWarmStart warm;
  MultilevelFlow flow(nl, warm, fast_multilevel(7));
  Placement placement(nl);
  const MultilevelResult r = flow.run(placement);
  EXPECT_EQ(r.outcome, recover::RunOutcome::kCompleted);
  EXPECT_EQ(r.warm_source, "quadratic");
  EXPECT_EQ(r.warm.clusters, 0);
  EXPECT_GT(r.warm.teil, 0.0);
  EXPECT_GT(r.final_teil, 0.0);
}

TEST(Multilevel, BudgetExpiryWindsDownGracefully) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  recover::RunBudget budget(400, recover::RunBudget::kUnlimited);
  ClusterWarmStart warm({}, fast_stage1(8));
  MultilevelParams params = fast_multilevel(7);
  params.recover.budget = &budget;
  MultilevelFlow flow(nl, warm, params);
  Placement placement(nl);
  const MultilevelResult r = flow.run(placement);
  EXPECT_EQ(r.outcome, recover::RunOutcome::kBudgetExhausted);
  EXPECT_GT(r.final_teil, 0.0);
}

TEST(Multilevel, RejectsBadRefineTFactor) {
  const Netlist nl = generate_circuit(tiny_circuit(5));
  ClusterWarmStart warm({}, fast_stage1(8));
  MultilevelParams params = fast_multilevel(7);
  params.refine_t_factor = 1.0;
  EXPECT_THROW(MultilevelFlow(nl, warm, params), std::invalid_argument);
}

/// The acceptance experiment at unit-test size: on a known-optimum grid
/// instance, the multilevel flow must reach a lower final TEIL than a flat
/// stage-1 anneal given the same move budget.
TEST(Multilevel, BeatsFlatAnnealOnKnownOptimumUnderSameBudget) {
  const KnownOptimumCircuit ko = known_optimum_circuit({/*grid=*/8,
                                                        /*cell_size=*/40,
                                                        /*seed=*/3});
  const std::int64_t kMoves = 60000;

  double flat_teil = 0.0;
  {
    recover::RunBudget budget(kMoves, recover::RunBudget::kUnlimited);
    Stage1Params sp = fast_stage1();
    Stage1Placer flat(ko.netlist, sp, derive_seed(21, "stage1"));
    Stage1Hooks hooks;
    hooks.budget = &budget;
    flat.set_hooks(hooks);
    Placement placement(ko.netlist);
    flat.run(placement);
    flat_teil = placement.teil();
  }

  double ml_teil = 0.0;
  {
    recover::RunBudget budget(kMoves, recover::RunBudget::kUnlimited);
    ClusterWarmStart warm({}, fast_stage1());
    MultilevelParams params = fast_multilevel(21);
    params.recover.budget = &budget;
    MultilevelFlow flow(ko.netlist, warm, params);
    Placement placement(ko.netlist);
    const MultilevelResult r = flow.run(placement);
    ml_teil = r.final_teil;
  }

  EXPECT_LT(ml_teil, flat_teil)
      << "multilevel " << ml_teil << " vs flat " << flat_teil
      << " (optimum " << ko.optimal_teil << ")";
}

/// The probe gate: deriving the refinement's starting temperature from
/// the warm placement must not re-scramble a good warm start. On the
/// known-optimum instance the probed run has to stay in the same quality
/// band as the fixed-factor run (the failure mode being guarded against —
/// probing far too hot — lands 2-3x worse, far outside the band), and the
/// probe must not cost quality against the flat-anneal baseline either.
TEST(Multilevel, ProbedRefineTemperatureKeepsKnownOptimumQuality) {
  const KnownOptimumCircuit ko = known_optimum_circuit({/*grid=*/8,
                                                        /*cell_size=*/40,
                                                        /*seed=*/3});
  const std::int64_t kMoves = 60000;

  const auto run_ml = [&](bool probe) {
    recover::RunBudget budget(kMoves, recover::RunBudget::kUnlimited);
    ClusterWarmStart warm({}, fast_stage1());
    MultilevelParams params = fast_multilevel(21);
    params.probe_refine_t = probe;
    params.recover.budget = &budget;
    MultilevelFlow flow(ko.netlist, warm, params);
    Placement placement(ko.netlist);
    const MultilevelResult r = flow.run(placement);
    EXPECT_GT(r.final_teil, 0.0);
    return r.final_teil;
  };

  const double probed = run_ml(true);
  const double fixed = run_ml(false);
  EXPECT_LT(probed, 1.25 * fixed)
      << "probed " << probed << " vs fixed " << fixed
      << " (optimum " << ko.optimal_teil << ")";
}

// --- SoC tier ---------------------------------------------------------------
// The CI smoke (ctest -L soc): a 1k-macro circuit through the full
// multilevel flow under a RunBudget. Bounded by moves, not steps, so the
// test finishes in CI time at any optimization level.

TEST(Soc, TierSpecsScale) {
  EXPECT_EQ(soc_circuit(SocTier::k1k).num_cells, 1000);
  EXPECT_EQ(soc_circuit(SocTier::k4k).num_cells, 4000);
  EXPECT_EQ(soc_circuit(SocTier::k10k).num_cells, 10000);
  EXPECT_EQ(soc_circuit(SocTier::k10k).num_pins, 140000);
}

TEST(Soc, MultilevelFlowSmoke1k) {
  const Netlist nl = generate_circuit(soc_circuit(SocTier::k1k, 2));
  ASSERT_EQ(nl.num_cells(), 1000u);

  recover::RunBudget budget(300000, recover::RunBudget::kUnlimited);
  ClusterWarmStart warm({}, fast_stage1(8));
  MultilevelParams params;
  params.refine = fast_stage1(8);
  params.seed = 9;
  params.recover.budget = &budget;
  MultilevelFlow flow(nl, warm, params);
  Placement placement(nl);
  const MultilevelResult r = flow.run(placement);

  EXPECT_GT(r.warm.clusters, 100);
  EXPECT_GT(r.warm.teil, 0.0);
  EXPECT_GT(r.final_teil, 0.0);
  EXPECT_EQ(r.outcome, recover::RunOutcome::kBudgetExhausted);
  // Note the warm placement's TEIL is not a lower bound for the
  // refinement: the projection leaves inter-cluster overlap, and
  // squeezing it out legitimately lengthens some nets. The quality
  // criterion (beating the flat anneal under the same budget) is the
  // next test.
}

/// The acceptance experiment at SoC scale: 1024 macros with a constructed
/// optimum, flat vs multilevel under the same move budget.
TEST(Soc, MultilevelBeatsFlatOn1kKnownOptimum) {
  const KnownOptimumCircuit ko = known_optimum_circuit({/*grid=*/32,
                                                        /*cell_size=*/40,
                                                        /*seed=*/3});
  ASSERT_EQ(ko.netlist.num_cells(), 1024u);
  const std::int64_t kMoves = 300000;

  double flat_teil = 0.0;
  {
    recover::RunBudget budget(kMoves, recover::RunBudget::kUnlimited);
    Stage1Placer flat(ko.netlist, fast_stage1(8), derive_seed(21, "stage1"));
    Stage1Hooks hooks;
    hooks.budget = &budget;
    flat.set_hooks(hooks);
    Placement placement(ko.netlist);
    flat.run(placement);
    flat_teil = placement.teil();
  }

  double ml_teil = 0.0;
  {
    recover::RunBudget budget(kMoves, recover::RunBudget::kUnlimited);
    ClusterWarmStart warm({}, fast_stage1(8));
    MultilevelParams params;
    params.refine = fast_stage1(8);
    params.seed = 21;
    params.recover.budget = &budget;
    MultilevelFlow flow(ko.netlist, warm, params);
    Placement placement(ko.netlist);
    ml_teil = flow.run(placement).final_teil;
  }

  EXPECT_LT(ml_teil, flat_teil)
      << "multilevel " << ml_teil << " vs flat " << flat_teil
      << " (optimum " << ko.optimal_teil << ")";
}

}  // namespace
}  // namespace tw
