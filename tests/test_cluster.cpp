// Tests for src/cluster: partition round-trip, pin-aggregation
// conservation, determinism (same inputs from many threads), and the
// validate_clustering rejection cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "netlist/parser.hpp"
#include "workload/generator.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

Netlist test_circuit(std::uint64_t seed = 7) {
  CircuitSpec spec = medium_circuit(seed);
  spec.num_cells = 40;
  spec.num_nets = 140;
  spec.num_pins = 520;
  return generate_circuit(spec);
}

TEST(Cluster, PartitionRoundTrips) {
  const Netlist nl = test_circuit();
  ClusterParams params;
  params.max_cluster_size = 6;
  const Clustering c = cluster_netlist(nl, params);

  // Every flat cell is in exactly one member list, and the two views of
  // the partition agree.
  std::vector<int> seen(nl.num_cells(), 0);
  for (CellId k = 0; k < static_cast<CellId>(c.coarse.num_cells()); ++k) {
    const auto& members = c.map.members[static_cast<std::size_t>(k)];
    EXPECT_FALSE(members.empty()) << "cluster " << k;
    EXPECT_LE(members.size(),
              static_cast<std::size_t>(params.max_cluster_size));
    for (const ClusterMember& m : members) {
      seen[static_cast<std::size_t>(m.cell)] += 1;
      EXPECT_EQ(c.map.cluster_of[static_cast<std::size_t>(m.cell)], k);
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);

  EXPECT_TRUE(validate_clustering(nl, c.coarse, c.map).ok())
      << validate_clustering(nl, c.coarse, c.map).str();
}

TEST(Cluster, IdentityClusteringAtCapOne) {
  const Netlist nl = test_circuit();
  ClusterParams params;
  params.max_cluster_size = 1;
  const Clustering c = cluster_netlist(nl, params);
  EXPECT_EQ(c.coarse.num_cells(), nl.num_cells());
  for (const auto& members : c.map.members) EXPECT_EQ(members.size(), 1u);
  EXPECT_TRUE(validate_clustering(nl, c.coarse, c.map).ok());
}

TEST(Cluster, PinAggregationConservesNets) {
  const Netlist nl = test_circuit();
  const Clustering c = cluster_netlist(nl, {});

  // Every flat net is either dropped as intra-cluster or mapped; the
  // counts are conserved.
  int mapped = 0;
  int dropped = 0;
  for (NetId n = 0; n < static_cast<NetId>(nl.num_nets()); ++n) {
    const NetId cn = c.map.coarse_net_of[static_cast<std::size_t>(n)];
    if (cn == kInvalidNet) {
      ++dropped;
      // All pins really are inside one cluster.
      CellId cluster = kInvalidCell;
      bool same = true;
      for (const PinId pid : nl.net(n).pins) {
        const CellId k =
            c.map.cluster_of[static_cast<std::size_t>(nl.pin(pid).cell)];
        if (cluster == kInvalidCell) cluster = k;
        same = same && (k == cluster);
      }
      EXPECT_TRUE(same) << "net " << n << " dropped but spans clusters";
    } else {
      ++mapped;
      EXPECT_EQ(c.map.flat_net_of[static_cast<std::size_t>(cn)], n);
      // One aggregated pin per incident cluster.
      std::vector<CellId> incident;
      for (const PinId pid : nl.net(n).pins)
        incident.push_back(
            c.map.cluster_of[static_cast<std::size_t>(nl.pin(pid).cell)]);
      std::sort(incident.begin(), incident.end());
      incident.erase(std::unique(incident.begin(), incident.end()),
                     incident.end());
      EXPECT_EQ(c.coarse.net(cn).pins.size(), incident.size()) << "net " << n;
    }
  }
  EXPECT_EQ(dropped, c.map.dropped_nets);
  EXPECT_EQ(static_cast<std::size_t>(mapped), c.coarse.num_nets());
  EXPECT_GT(mapped, 0);
  EXPECT_GT(dropped, 0) << "test circuit should produce intra-cluster nets";
}

/// A circuit with one deliberate hub net (a clock) touching every cell,
/// plus a chain of 2-pin nets that gives the clusterer real affinity.
Netlist hub_circuit(int cells) {
  Netlist nl;
  for (int i = 0; i < cells; ++i)
    nl.add_macro("c" + std::to_string(i), {Rect{0, 0, 8, 8}});
  const NetId hub = nl.add_net("clk", 1.0, 1.0);
  for (CellId c = 0; c < cells; ++c)
    nl.add_fixed_pin(c, "clk" + std::to_string(c), hub, Point{4, 4});
  for (CellId c = 0; c + 1 < cells; ++c) {
    const NetId n = nl.add_net("w" + std::to_string(c), 1.0, 1.0);
    nl.add_fixed_pin(c, "a" + std::to_string(c), n, Point{8, 4});
    nl.add_fixed_pin(c + 1, "b" + std::to_string(c), n, Point{0, 4});
  }
  nl.validate();
  return nl;
}

TEST(Cluster, DegreeCapSplitsHubNetsIntoAChain) {
  const Netlist nl = hub_circuit(40);
  ClusterParams params;
  params.max_cluster_size = 4;
  params.max_aggregated_degree = 4;
  const Clustering c = cluster_netlist(nl, params);
  const ValidationReport vr = validate_clustering(nl, c.coarse, c.map);
  ASSERT_TRUE(vr.ok()) << vr.str();

  // No coarse net exceeds the cap.
  for (const Net& cn : c.coarse.nets())
    EXPECT_LE(cn.pins.size(), 4u) << "coarse net " << cn.id;

  // The hub net split into a chain: several segments, all pointing back at
  // it, jointly covering every cluster, consecutive ones sharing a
  // cluster, and coarse_net_of naming the first.
  const NetId hub = 0;
  std::vector<NetId> segs;
  for (NetId cn = 0; cn < static_cast<NetId>(c.coarse.num_nets()); ++cn)
    if (c.map.flat_net_of[static_cast<std::size_t>(cn)] == hub)
      segs.push_back(cn);
  ASSERT_GT(segs.size(), 1u);
  EXPECT_EQ(c.map.coarse_net_of[static_cast<std::size_t>(hub)], segs.front());
  std::vector<CellId> covered;
  std::vector<CellId> prev;
  for (const NetId seg : segs) {
    std::vector<CellId> cells;
    for (const PinId pid : c.coarse.net(seg).pins)
      cells.push_back(c.coarse.pin(pid).cell);
    std::sort(cells.begin(), cells.end());
    if (!prev.empty()) {
      std::vector<CellId> shared;
      std::set_intersection(prev.begin(), prev.end(), cells.begin(),
                            cells.end(), std::back_inserter(shared));
      EXPECT_EQ(shared.size(), 1u) << "segment " << seg;
    }
    covered.insert(covered.end(), cells.begin(), cells.end());
    prev = std::move(cells);
  }
  std::sort(covered.begin(), covered.end());
  covered.erase(std::unique(covered.begin(), covered.end()), covered.end());
  EXPECT_EQ(covered.size(), c.coarse.num_cells());
}

TEST(Cluster, InactiveCapReproducesUncappedClustering) {
  const Netlist nl = test_circuit();
  ClusterParams capped;
  capped.max_aggregated_degree = 64;  // larger than any aggregated degree
  const Clustering a = cluster_netlist(nl, {});
  const Clustering b = cluster_netlist(nl, capped);
  EXPECT_EQ(write_netlist(a.coarse), write_netlist(b.coarse));
  EXPECT_EQ(a.map.coarse_net_of, b.map.coarse_net_of);
  EXPECT_EQ(a.map.flat_net_of, b.map.flat_net_of);
}

TEST(ClusterValidate, RejectsBrokenSegmentChains) {
  const Netlist nl = hub_circuit(40);
  ClusterParams params;
  params.max_cluster_size = 4;
  params.max_aggregated_degree = 4;
  const Clustering good = cluster_netlist(nl, params);
  ASSERT_TRUE(validate_clustering(nl, good.coarse, good.map).ok());

  {  // a trailing segment re-attributed to a different flat net: its own
     // net loses coverage and the other net gains a foreign segment
    ClusterMap bad = good.map;
    for (std::size_t cn = 0; cn < bad.flat_net_of.size(); ++cn)
      if (bad.flat_net_of[cn] == 0 &&
          good.map.coarse_net_of[0] != static_cast<NetId>(cn)) {
        bad.flat_net_of[cn] = 1;
        break;
      }
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // coarse_net_of pointed at a later segment instead of the first
    ClusterMap bad = good.map;
    NetId last = kInvalidNet;
    for (std::size_t cn = 0; cn < bad.flat_net_of.size(); ++cn)
      if (bad.flat_net_of[cn] == 0) last = static_cast<NetId>(cn);
    ASSERT_NE(last, bad.coarse_net_of[0]);
    bad.coarse_net_of[0] = last;
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
}

TEST(Cluster, DeterministicAcrossThreads) {
  const Netlist nl = test_circuit(11);
  const Clustering ref = cluster_netlist(nl, {});
  const std::string ref_text = write_netlist(ref.coarse);

  constexpr int kThreads = 4;
  std::vector<std::string> texts(kThreads);
  std::vector<ClusterMap> maps(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      workers.emplace_back([&, i] {
        Clustering c = cluster_netlist(nl, {});
        texts[static_cast<std::size_t>(i)] = write_netlist(c.coarse);
        maps[static_cast<std::size_t>(i)] = std::move(c.map);
      });
    for (auto& w : workers) w.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(texts[static_cast<std::size_t>(i)], ref_text) << "thread " << i;
    EXPECT_EQ(maps[static_cast<std::size_t>(i)].cluster_of, ref.map.cluster_of);
    EXPECT_EQ(maps[static_cast<std::size_t>(i)].coarse_net_of,
              ref.map.coarse_net_of);
    EXPECT_EQ(maps[static_cast<std::size_t>(i)].dropped_nets,
              ref.map.dropped_nets);
  }

  // Different seeds are allowed to differ (and on this circuit do).
  ClusterParams other;
  other.seed = 99;
  const Clustering alt = cluster_netlist(nl, other);
  EXPECT_TRUE(validate_clustering(nl, alt.coarse, alt.map).ok());
}

TEST(ClusterValidate, RejectsCorruptedMaps) {
  const Netlist nl = test_circuit();
  const Clustering good = cluster_netlist(nl, {});
  ASSERT_TRUE(validate_clustering(nl, good.coarse, good.map).ok());

  {  // a cell claimed by the wrong cluster
    ClusterMap bad = good.map;
    bad.cluster_of[0] =
        (bad.cluster_of[0] + 1) % static_cast<CellId>(good.coarse.num_cells());
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // a member listed twice
    ClusterMap bad = good.map;
    bad.members[0].push_back(bad.members[0].front());
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // a member pushed outside its cluster rectangle
    ClusterMap bad = good.map;
    bad.members[0].front().offset.x += 100000;
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // an inter-cluster net mislabeled as dropped
    ClusterMap bad = good.map;
    const auto it = std::find_if(
        bad.coarse_net_of.begin(), bad.coarse_net_of.end(),
        [](NetId n) { return n != kInvalidNet; });
    ASSERT_NE(it, bad.coarse_net_of.end());
    *it = kInvalidNet;
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // dropped-net count off by one
    ClusterMap bad = good.map;
    bad.dropped_nets += 1;
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // shape mismatch: truncated cluster_of
    ClusterMap bad = good.map;
    bad.cluster_of.pop_back();
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
}

}  // namespace
}  // namespace tw
