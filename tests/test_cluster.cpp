// Tests for src/cluster: partition round-trip, pin-aggregation
// conservation, determinism (same inputs from many threads), and the
// validate_clustering rejection cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "netlist/parser.hpp"
#include "workload/generator.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

Netlist test_circuit(std::uint64_t seed = 7) {
  CircuitSpec spec = medium_circuit(seed);
  spec.num_cells = 40;
  spec.num_nets = 140;
  spec.num_pins = 520;
  return generate_circuit(spec);
}

TEST(Cluster, PartitionRoundTrips) {
  const Netlist nl = test_circuit();
  ClusterParams params;
  params.max_cluster_size = 6;
  const Clustering c = cluster_netlist(nl, params);

  // Every flat cell is in exactly one member list, and the two views of
  // the partition agree.
  std::vector<int> seen(nl.num_cells(), 0);
  for (CellId k = 0; k < static_cast<CellId>(c.coarse.num_cells()); ++k) {
    const auto& members = c.map.members[static_cast<std::size_t>(k)];
    EXPECT_FALSE(members.empty()) << "cluster " << k;
    EXPECT_LE(members.size(),
              static_cast<std::size_t>(params.max_cluster_size));
    for (const ClusterMember& m : members) {
      seen[static_cast<std::size_t>(m.cell)] += 1;
      EXPECT_EQ(c.map.cluster_of[static_cast<std::size_t>(m.cell)], k);
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);

  EXPECT_TRUE(validate_clustering(nl, c.coarse, c.map).ok())
      << validate_clustering(nl, c.coarse, c.map).str();
}

TEST(Cluster, IdentityClusteringAtCapOne) {
  const Netlist nl = test_circuit();
  ClusterParams params;
  params.max_cluster_size = 1;
  const Clustering c = cluster_netlist(nl, params);
  EXPECT_EQ(c.coarse.num_cells(), nl.num_cells());
  for (const auto& members : c.map.members) EXPECT_EQ(members.size(), 1u);
  EXPECT_TRUE(validate_clustering(nl, c.coarse, c.map).ok());
}

TEST(Cluster, PinAggregationConservesNets) {
  const Netlist nl = test_circuit();
  const Clustering c = cluster_netlist(nl, {});

  // Every flat net is either dropped as intra-cluster or mapped; the
  // counts are conserved.
  int mapped = 0;
  int dropped = 0;
  for (NetId n = 0; n < static_cast<NetId>(nl.num_nets()); ++n) {
    const NetId cn = c.map.coarse_net_of[static_cast<std::size_t>(n)];
    if (cn == kInvalidNet) {
      ++dropped;
      // All pins really are inside one cluster.
      CellId cluster = kInvalidCell;
      bool same = true;
      for (const PinId pid : nl.net(n).pins) {
        const CellId k =
            c.map.cluster_of[static_cast<std::size_t>(nl.pin(pid).cell)];
        if (cluster == kInvalidCell) cluster = k;
        same = same && (k == cluster);
      }
      EXPECT_TRUE(same) << "net " << n << " dropped but spans clusters";
    } else {
      ++mapped;
      EXPECT_EQ(c.map.flat_net_of[static_cast<std::size_t>(cn)], n);
      // One aggregated pin per incident cluster.
      std::vector<CellId> incident;
      for (const PinId pid : nl.net(n).pins)
        incident.push_back(
            c.map.cluster_of[static_cast<std::size_t>(nl.pin(pid).cell)]);
      std::sort(incident.begin(), incident.end());
      incident.erase(std::unique(incident.begin(), incident.end()),
                     incident.end());
      EXPECT_EQ(c.coarse.net(cn).pins.size(), incident.size()) << "net " << n;
    }
  }
  EXPECT_EQ(dropped, c.map.dropped_nets);
  EXPECT_EQ(static_cast<std::size_t>(mapped), c.coarse.num_nets());
  EXPECT_GT(mapped, 0);
  EXPECT_GT(dropped, 0) << "test circuit should produce intra-cluster nets";
}

TEST(Cluster, DeterministicAcrossThreads) {
  const Netlist nl = test_circuit(11);
  const Clustering ref = cluster_netlist(nl, {});
  const std::string ref_text = write_netlist(ref.coarse);

  constexpr int kThreads = 4;
  std::vector<std::string> texts(kThreads);
  std::vector<ClusterMap> maps(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      workers.emplace_back([&, i] {
        Clustering c = cluster_netlist(nl, {});
        texts[static_cast<std::size_t>(i)] = write_netlist(c.coarse);
        maps[static_cast<std::size_t>(i)] = std::move(c.map);
      });
    for (auto& w : workers) w.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(texts[static_cast<std::size_t>(i)], ref_text) << "thread " << i;
    EXPECT_EQ(maps[static_cast<std::size_t>(i)].cluster_of, ref.map.cluster_of);
    EXPECT_EQ(maps[static_cast<std::size_t>(i)].coarse_net_of,
              ref.map.coarse_net_of);
    EXPECT_EQ(maps[static_cast<std::size_t>(i)].dropped_nets,
              ref.map.dropped_nets);
  }

  // Different seeds are allowed to differ (and on this circuit do).
  ClusterParams other;
  other.seed = 99;
  const Clustering alt = cluster_netlist(nl, other);
  EXPECT_TRUE(validate_clustering(nl, alt.coarse, alt.map).ok());
}

TEST(ClusterValidate, RejectsCorruptedMaps) {
  const Netlist nl = test_circuit();
  const Clustering good = cluster_netlist(nl, {});
  ASSERT_TRUE(validate_clustering(nl, good.coarse, good.map).ok());

  {  // a cell claimed by the wrong cluster
    ClusterMap bad = good.map;
    bad.cluster_of[0] =
        (bad.cluster_of[0] + 1) % static_cast<CellId>(good.coarse.num_cells());
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // a member listed twice
    ClusterMap bad = good.map;
    bad.members[0].push_back(bad.members[0].front());
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // a member pushed outside its cluster rectangle
    ClusterMap bad = good.map;
    bad.members[0].front().offset.x += 100000;
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // an inter-cluster net mislabeled as dropped
    ClusterMap bad = good.map;
    const auto it = std::find_if(
        bad.coarse_net_of.begin(), bad.coarse_net_of.end(),
        [](NetId n) { return n != kInvalidNet; });
    ASSERT_NE(it, bad.coarse_net_of.end());
    *it = kInvalidNet;
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // dropped-net count off by one
    ClusterMap bad = good.map;
    bad.dropped_nets += 1;
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
  {  // shape mismatch: truncated cluster_of
    ClusterMap bad = good.map;
    bad.cluster_of.pop_back();
    EXPECT_FALSE(validate_clustering(nl, good.coarse, bad).ok());
  }
}

}  // namespace
}  // namespace tw
