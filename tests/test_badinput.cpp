// Malformed-input corpus: every file under tests/data/bad is fed to the
// matching frontend (.net → parse_netlist, .yal → parse_yal). The
// contract under test is diagnostics-not-crash: the parser returns
// nullopt with at least one localized diagnostic, never UB — the
// sanitizer CI job runs this suite under ASan/UBSan to make "never UB"
// an enforced statement, not an aspiration. The corpus includes binary
// garbage, truncations, structural errors, and files that parse but fail
// semantic validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "netlist/parser.hpp"
#include "netlist/yal.hpp"

#ifndef TW_BAD_INPUT_DIR
#error "TW_BAD_INPUT_DIR must point at the corpus directory"
#endif

namespace tw {
namespace {

std::vector<std::string> corpus(const std::string& ext) {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(TW_BAD_INPUT_DIR))
    if (entry.path().extension() == ext)
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(BadInput, CorpusIsNotEmpty) {
  EXPECT_GE(corpus(".net").size(), 5u);
  EXPECT_GE(corpus(".yal").size(), 5u);
}

TEST(BadInput, NetFilesYieldDiagnosticsNotCrashes) {
  for (const std::string& path : corpus(".net")) {
    SCOPED_TRACE(path);
    ParseReport report;
    const std::optional<Netlist> nl = parse_netlist_file(path, report);
    EXPECT_FALSE(nl.has_value());
    EXPECT_FALSE(report.ok());
    EXPECT_FALSE(report.str().empty());
    // Saturation bounds the damage a pathological file can do.
    EXPECT_LE(static_cast<int>(report.diagnostics.size()),
              ParseReport::kMaxDiagnostics);
  }
}

TEST(BadInput, YalFilesYieldDiagnosticsNotCrashes) {
  for (const std::string& path : corpus(".yal")) {
    SCOPED_TRACE(path);
    ParseReport report;
    const std::optional<Netlist> nl = parse_yal_file(path, report);
    EXPECT_FALSE(nl.has_value());
    EXPECT_FALSE(report.ok());
    EXPECT_FALSE(report.str().empty());
    EXPECT_LE(static_cast<int>(report.diagnostics.size()),
              ParseReport::kMaxDiagnostics);
  }
}

TEST(BadInput, ThrowingApisCarryTheFullReport) {
  for (const std::string& path : corpus(".net")) {
    SCOPED_TRACE(path);
    try {
      (void)parse_netlist_file(path);
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_FALSE(e.report().ok());
      EXPECT_NE(std::string(e.what()).find("parse error"), std::string::npos);
    }
  }
  for (const std::string& path : corpus(".yal")) {
    SCOPED_TRACE(path);
    EXPECT_THROW((void)parse_yal_file(path), ParseError);
  }
}

TEST(BadInput, MultipleDefectsAreAllReported) {
  ParseReport report;
  const auto nl = parse_netlist_file(
      std::string(TW_BAD_INPUT_DIR) + "/multiple_errors.net", report);
  EXPECT_FALSE(nl.has_value());
  // One pass over the file surfaces several independent defects.
  EXPECT_GE(report.diagnostics.size(), 3u) << report.str();
  // Diagnostics carry 1-based line numbers.
  for (const ParseDiagnostic& d : report.diagnostics)
    EXPECT_GE(d.line, 0) << d.str();
}

TEST(BadInput, SaturationCountsTheSuppressedTail) {
  // 200 defective lines against a 50-diagnostic cap: the overflow must be
  // counted and named, not silently dropped, so a saturated report is
  // distinguishable from one whose input had exactly kMaxDiagnostics
  // defects.
  std::string text;
  for (int i = 0; i < 200; ++i) text += "bogus directive " + std::to_string(i) + "\n";
  ParseReport report;
  const auto nl = parse_netlist_string(text, report);
  EXPECT_FALSE(nl.has_value());
  ASSERT_TRUE(report.saturated()) << report.str();
  EXPECT_EQ(static_cast<int>(report.diagnostics.size()),
            ParseReport::kMaxDiagnostics);
  EXPECT_GT(report.suppressed, 0);
  EXPECT_EQ(report.total(),
            ParseReport::kMaxDiagnostics + report.suppressed);
  EXPECT_NE(report.str().find("more diagnostic(s) suppressed"),
            std::string::npos)
      << report.str();
}

TEST(BadInput, UnsaturatedReportsDoNotClaimSuppression) {
  ParseReport report;
  (void)parse_netlist_file(
      std::string(TW_BAD_INPUT_DIR) + "/multiple_errors.net", report);
  EXPECT_EQ(report.suppressed, 0);
  EXPECT_EQ(report.total(), static_cast<int>(report.diagnostics.size()));
  EXPECT_EQ(report.str().find("suppressed"), std::string::npos);
}

TEST(BadInput, YalResynchronizesAcrossModules) {
  ParseReport report;
  const auto nl = parse_yal_file(
      std::string(TW_BAD_INPUT_DIR) + "/bad_statements.yal", report);
  EXPECT_FALSE(nl.has_value());
  // Both broken modules (a and b) are reported, not just the first.
  EXPECT_GE(report.diagnostics.size(), 2u) << report.str();
}

}  // namespace
}  // namespace tw
