// Tests for the netlist text format: parsing, error reporting, round-trip.
#include <gtest/gtest.h>

#include "netlist/parser.hpp"

namespace tw {
namespace {

const char* kSample = R"(# sample circuit
tech track_separation 2
tech modulation 2.5 1.25
net clk hweight 2 vweight 3
macro alu
  rect 20 10
  pin a net clk at 0 5
  pin b net data at 20 5
end
macro rom
  polygon 0 0 10 0 10 5 5 5 5 10 0 10
  pin a net data at 0 0
  pin c net clk at 10 0
end
custom ctrl area 100 aspect 0.5 2 sites 4
  aspects 0.5 1 2
  pin x net clk edges LR
  group bus edges BT seq
    pin b0 net data
    pin b1 net data
  endgroup
end
equiv rom.a rom.c
)";

TEST(Parser, ParsesSample) {
  // rom.a and rom.c are on different nets -> equiv must throw; fix sample
  // inline by making them the same net.
  std::string text = kSample;
  const auto pos = text.find("pin c net clk at 10 0");
  text.replace(pos, 21, "pin c net data at 10 0");
  const Netlist nl = parse_netlist_string(text);
  EXPECT_EQ(nl.num_cells(), 3u);
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_EQ(nl.num_pins(), 7u);
  EXPECT_EQ(nl.tech().track_separation, 2);
  EXPECT_DOUBLE_EQ(nl.tech().modulation_max, 2.5);
  EXPECT_DOUBLE_EQ(nl.net(0).weight_h, 2.0);
  EXPECT_DOUBLE_EQ(nl.net(0).weight_v, 3.0);
}

TEST(Parser, RectilinearMacroTiles) {
  const Netlist nl = parse_netlist_string(R"(
macro L
  polygon 0 0 10 0 10 5 5 5 5 10 0 10
  pin a net n at 0 0
end
macro M
  rect 5 5
  pin b net n at 0 0
end
)");
  EXPECT_EQ(nl.cell(0).instances.front().area(), 75);
}

TEST(Parser, CustomCellProperties) {
  const Netlist nl = parse_netlist_string(R"(
custom c area 100 aspect 0.5 2 sites 6
  pin x net n edges *
end
macro m
  rect 4 4
  pin y net n at 0 0
end
)");
  const Cell& c = nl.cell(0);
  EXPECT_TRUE(c.is_custom());
  EXPECT_EQ(c.target_area, 100);
  EXPECT_EQ(c.sites_per_edge, 6);
  EXPECT_EQ(nl.pin(0).commit, PinCommit::kEdge);
  EXPECT_EQ(nl.pin(0).side_mask, kSideAny);
}

TEST(Parser, GroupPins) {
  const Netlist nl = parse_netlist_string(R"(
custom c area 100 aspect 1 1
  group g edges LR seq
    pin a net n
    pin b net n
  endgroup
end
macro m
  rect 4 4
  pin y net n at 0 0
end
)");
  EXPECT_EQ(nl.cell(0).groups.size(), 1u);
  EXPECT_TRUE(nl.cell(0).groups[0].sequenced);
  EXPECT_EQ(nl.cell(0).groups[0].side_mask, kSideLeft | kSideRight);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist_string("macro a\n  rect 5 5\n  bogus directive\nend\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, RejectsNestedCell) {
  EXPECT_THROW(parse_netlist_string("macro a\nmacro b\n"), std::runtime_error);
}

TEST(Parser, RejectsUnterminatedCell) {
  EXPECT_THROW(parse_netlist_string("macro a\n  rect 5 5\n"),
               std::runtime_error);
}

TEST(Parser, RejectsGeometryOnCustom) {
  EXPECT_THROW(
      parse_netlist_string("custom c area 9 aspect 1 1\n  rect 3 3\nend\n"),
      std::runtime_error);
}

TEST(Parser, RejectsDuplicateCell) {
  EXPECT_THROW(parse_netlist_string(
                   "macro a\n rect 2 2\nend\nmacro a\n rect 2 2\nend\n"),
               std::runtime_error);
}

TEST(Parser, RejectsBadSides) {
  EXPECT_THROW(parse_netlist_string(
                   "custom c area 9 aspect 1 1\n  pin p net n edges QZ\nend\n"),
               std::runtime_error);
}

TEST(Parser, RejectsUnknownEquivPin) {
  EXPECT_THROW(parse_netlist_string(R"(
macro a
  rect 2 2
  pin p net n at 0 0
end
macro b
  rect 2 2
  pin q net n at 0 0
end
equiv a.p a.missing
)"),
               std::runtime_error);
}

TEST(Parser, CommentsAndBlankLines) {
  const Netlist nl = parse_netlist_string(R"(
# full comment line

macro a   # trailing comment
  rect 5 5
  pin p net n at 0 0
end
macro b
  rect 5 5
  pin q net n at 5 5
end
)");
  EXPECT_EQ(nl.num_cells(), 2u);
}

TEST(Parser, RoundTripPreservesStructure) {
  std::string text = kSample;
  const auto pos = text.find("pin c net clk at 10 0");
  text.replace(pos, 21, "pin c net data at 10 0");
  const Netlist nl = parse_netlist_string(text);
  const std::string dumped = write_netlist(nl);
  const Netlist nl2 = parse_netlist_string(dumped);
  EXPECT_EQ(nl2.num_cells(), nl.num_cells());
  EXPECT_EQ(nl2.num_nets(), nl.num_nets());
  EXPECT_EQ(nl2.num_pins(), nl.num_pins());
  EXPECT_EQ(nl2.tech().track_separation, nl.tech().track_separation);
  // Geometry preserved per cell.
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    EXPECT_EQ(nl2.cell(static_cast<CellId>(c)).instances.front().area(),
              nl.cell(static_cast<CellId>(c)).instances.front().area());
  }
  // Equivalence preserved.
  int classes = 0;
  for (const auto& p : nl2.pins())
    if (p.equiv_class != 0) ++classes;
  EXPECT_EQ(classes, 2);
  // Second round trip is a fixed point.
  EXPECT_EQ(write_netlist(nl2), dumped);
}

TEST(Parser, FileRoundTrip) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 6, 4}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 3, 3}});
  nl.add_fixed_pin(a, "p", n, Point{0, 0});
  nl.add_fixed_pin(b, "q", n, Point{3, 3});
  const std::string path = ::testing::TempDir() + "/tw_roundtrip.nl";
  write_netlist_file(nl, path);
  const Netlist nl2 = parse_netlist_file(path);
  EXPECT_EQ(nl2.num_pins(), 2u);
  EXPECT_THROW(parse_netlist_file("/nonexistent/x.nl"), std::runtime_error);
}

TEST(Parser, MultiTileCellsRoundTripViaTilesDirective) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro_polygon(
      "L", {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  const CellId b = nl.add_macro("m", {Rect{0, 0, 3, 3}});
  nl.add_fixed_pin(a, "p", n, Point{0, 0});
  nl.add_fixed_pin(b, "q", n, Point{3, 3});
  const Netlist nl2 = parse_netlist_string(write_netlist(nl));
  EXPECT_EQ(nl2.cell(0).instances.front().area(), 75);
  EXPECT_GT(nl2.cell(0).instances.front().tiles.size(), 1u);
}

}  // namespace
}  // namespace tw
