// Shared helpers for the determinism and crash-recovery tests: a compact
// flow parameterization that finishes in milliseconds, and a bit-exact
// fingerprint of everything a run produced. Doubles are printed as
// hexfloat, so two fingerprints compare equal only when every bit of every
// value matches — the resume tests rely on this to prove a continued run
// is byte-identical to the uninterrupted one.
#pragma once

#include <iomanip>
#include <sstream>
#include <string>

#include "flow/multilevel.hpp"
#include "flow/timberwolf.hpp"

namespace tw::testing {

inline FlowParams fast_flow(std::uint64_t seed) {
  FlowParams p;
  p.stage1.attempts_per_cell = 12;
  p.stage1.p2_samples = 6;
  p.stage2.attempts_per_cell = 8;
  p.stage2.router.steiner.m = 4;
  p.seed = seed;
  return p;
}

/// Serializes everything a run produced — placement state, per-stage
/// metrics, per-pass routing metrics — with hexfloat doubles.
inline std::string fingerprint(const Placement& p, const FlowResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  const auto n = static_cast<CellId>(p.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    const CellState& s = p.state(c);
    os << "cell " << c << ": (" << s.center.x << "," << s.center.y << ") o"
       << static_cast<int>(s.orient) << " i" << s.instance << " a"
       << s.aspect << " sites[";
    for (int site : s.pin_site) os << site << ",";
    os << "] occ[";
    for (int occ : s.site_occupancy) os << occ << ",";
    os << "]\n";
  }
  os << "teil " << r.final_teil << " s1 " << r.stage1_teil << "\n";
  os << "area " << r.final_chip_area << " bbox " << r.final_chip_bbox.xlo
     << "," << r.final_chip_bbox.ylo << "," << r.final_chip_bbox.xhi
     << "," << r.final_chip_bbox.yhi << "\n";
  for (const auto& pass : r.stage2.passes)
    os << "pass: overflow " << pass.route_overflow << " unrouted "
       << pass.unrouted_nets << " wrv " << pass.width_rule_violations
       << "\n";
  return os.str();
}

/// Same idea for a multilevel run: placement state plus every metric the
/// flow reports, hexfloat throughout.
inline std::string fingerprint(const Placement& p, const MultilevelResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  const auto n = static_cast<CellId>(p.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    const CellState& s = p.state(c);
    os << "cell " << c << ": (" << s.center.x << "," << s.center.y << ") o"
       << static_cast<int>(s.orient) << " i" << s.instance << " a"
       << s.aspect << "\n";
  }
  os << "warm " << r.warm_source << " teil " << r.warm.teil << " clusters "
     << r.warm.clusters << " dropped " << r.warm.dropped_nets << "\n";
  os << "refine teil " << r.refine.final_teil << " steps "
     << r.refine.temperature_steps << " attempts " << r.refine.attempts
     << " accepts " << r.refine.accepts << "\n";
  os << "final teil " << r.final_teil << " area " << r.final_chip_area
     << " bbox " << r.final_chip_bbox.xlo << "," << r.final_chip_bbox.ylo
     << "," << r.final_chip_bbox.xhi << "," << r.final_chip_bbox.yhi << "\n";
  return os.str();
}

}  // namespace tw::testing
