// Tests for the routing graph container and Dijkstra shortest paths.
#include <gtest/gtest.h>

#include "route/shortest_path.hpp"

namespace tw {
namespace {

/// A 3x3 grid graph with unit positions; edge length = 10 per hop.
/// Node numbering: n = 3*row + col.
struct Grid3 {
  RoutingGraph g;
  Grid3() {
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) g.add_node(Point{c * 10, r * 10});
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) {
        const NodeId n = static_cast<NodeId>(3 * r + c);
        if (c + 1 < 3) g.add_edge(n, n + 1, 10.0, 2);
        if (r + 1 < 3) g.add_edge(n, n + 3, 10.0, 2);
      }
  }
};

TEST(Graph, AddAndQuery) {
  RoutingGraph g;
  const NodeId a = g.add_node({0, 0});
  const NodeId b = g.add_node({5, 0});
  const EdgeId e = g.add_edge(a, b, 5.0, 3);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(e).other(a), b);
  EXPECT_EQ(g.edge(e).other(b), a);
  EXPECT_EQ(g.incident(a).size(), 1u);
  EXPECT_EQ(g.node_pos(b), (Point{5, 0}));
}

TEST(Graph, RejectsBadEdges) {
  RoutingGraph g;
  const NodeId a = g.add_node({0, 0});
  const NodeId b = g.add_node({1, 0});
  EXPECT_THROW(g.add_edge(a, a, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 99, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, b, -1.0, 1), std::invalid_argument);
}

TEST(Graph, PathLengthAndWalk) {
  Grid3 f;
  // Path 0 -> 1 -> 2 (edges 0 and 2 by construction order?) — use walk to
  // verify rather than hard-coding ids.
  const auto sp = shortest_path(f.g, 0, 2);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(f.g.path_length(sp->edges), 20.0);
  const auto nodes = f.g.walk_nodes(0, sp->edges);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes.front(), 0);
  EXPECT_EQ(nodes.back(), 2);
}

TEST(Graph, WalkRejectsDisconnectedSequence) {
  Grid3 f;
  // Edge between 0-1 then an edge not incident to 1.
  std::vector<EdgeId> bogus;
  for (std::size_t e = 0; e < f.g.num_edges(); ++e) {
    const auto& ge = f.g.edge(static_cast<EdgeId>(e));
    if ((ge.a == 0 && ge.b == 1) || (ge.a == 1 && ge.b == 0))
      bogus.push_back(static_cast<EdgeId>(e));
    if ((ge.a == 5 && ge.b == 8) || (ge.a == 8 && ge.b == 5))
      bogus.push_back(static_cast<EdgeId>(e));
  }
  ASSERT_EQ(bogus.size(), 2u);
  EXPECT_TRUE(f.g.walk_nodes(0, bogus).empty());
}

TEST(ShortestPath, StraightLine) {
  Grid3 f;
  const auto sp = shortest_path(f.g, 0, 8);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->length, 40.0);  // 4 hops
  EXPECT_EQ(sp->src, 0);
  EXPECT_EQ(sp->dst, 8);
  EXPECT_EQ(sp->edges.size(), 4u);
}

TEST(ShortestPath, SameNode) {
  Grid3 f;
  const auto sp = shortest_path(f.g, 4, 4);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->length, 0.0);
  EXPECT_TRUE(sp->edges.empty());
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  RoutingGraph g;
  g.add_node({0, 0});
  g.add_node({1, 1});
  EXPECT_FALSE(shortest_path(g, 0, 1).has_value());
}

TEST(ShortestPath, RespectsBlockedEdges) {
  Grid3 f;
  std::vector<char> blocked(f.g.num_edges(), 0);
  // Block all edges incident to node 1 -> path 0..2 must detour (length 40).
  for (EdgeId e : f.g.incident(1)) blocked[static_cast<std::size_t>(e)] = 1;
  PathQuery q;
  q.blocked_edges = &blocked;
  const auto sp = shortest_path(f.g, 0, 2, q);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->length, 40.0);
}

TEST(ShortestPath, RespectsBlockedNodes) {
  Grid3 f;
  std::vector<char> blocked(f.g.num_nodes(), 0);
  blocked[1] = blocked[4] = 1;  // force the long way around the bottom
  PathQuery q;
  q.blocked_nodes = &blocked;
  const auto sp = shortest_path(f.g, 0, 2, q);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->length, 60.0);
  // Fully blocked -> unreachable.
  blocked[3] = 1;
  EXPECT_FALSE(shortest_path(f.g, 0, 2, q).has_value());
}

TEST(ShortestPath, ExtraCostRedirects) {
  Grid3 f;
  std::vector<double> extra(f.g.num_edges(), 0.0);
  // Penalize every edge incident to the center node.
  for (EdgeId e : f.g.incident(4)) extra[static_cast<std::size_t>(e)] = 100.0;
  PathQuery q;
  q.extra_cost = &extra;
  const auto sp = shortest_path(f.g, 3, 5, q);  // across the middle row
  ASSERT_TRUE(sp.has_value());
  // Avoids node 4: detour over row 0 or row 2, physical length 40.
  EXPECT_DOUBLE_EQ(f.g.path_length(sp->edges), 40.0);
}

TEST(ShortestPath, MultiSourceMultiTarget) {
  Grid3 f;
  const NodeId sources[] = {0, 6};
  const NodeId targets[] = {2, 8};
  const auto sp = shortest_path_between_sets(f.g, sources, targets);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->length, 20.0);
  EXPECT_TRUE(sp->src == 0 || sp->src == 6);
  EXPECT_TRUE(sp->dst == 2 || sp->dst == 8);
}

TEST(ShortestPath, MultiSourcePicksNearest) {
  Grid3 f;
  const NodeId sources[] = {0, 7};  // 7 is adjacent to 8
  const NodeId targets[] = {8};
  const auto sp = shortest_path_between_sets(f.g, sources, targets);
  ASSERT_TRUE(sp.has_value());
  EXPECT_EQ(sp->src, 7);
  EXPECT_DOUBLE_EQ(sp->length, 10.0);
}

TEST(ShortestPath, ParallelEdgesUsesCheaper) {
  RoutingGraph g;
  const NodeId a = g.add_node({0, 0});
  const NodeId b = g.add_node({10, 0});
  g.add_edge(a, b, 10.0, 1);
  const EdgeId cheap = g.add_edge(a, b, 3.0, 1);
  const auto sp = shortest_path(g, a, b);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->length, 3.0);
  EXPECT_EQ(sp->edges[0], cheap);
}

}  // namespace
}  // namespace tw
