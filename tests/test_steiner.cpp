// Tests for phase one of the global router: M-best Steiner route
// enumeration with Prim ordering, beam recursion and equivalent pins
// (Section 4.2.1, Figures 10-12).
#include <gtest/gtest.h>

#include <set>

#include "route/steiner.hpp"

namespace tw {
namespace {

struct Grid4 {
  RoutingGraph g;
  Grid4() {
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) g.add_node(Point{c * 10, r * 10});
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) {
        const NodeId n = static_cast<NodeId>(4 * r + c);
        if (c + 1 < 4) g.add_edge(n, n + 1, 10.0, 2);
        if (r + 1 < 4) g.add_edge(n, n + 4, 10.0, 2);
      }
  }
  NodeId at(int r, int c) const { return static_cast<NodeId>(4 * r + c); }
};

TEST(Steiner, TwoPinReducesToShortestPaths) {
  Grid4 f;
  NetTargets net;
  net.pins = {{f.at(0, 0)}, {f.at(0, 3)}};
  const auto routes = m_best_routes(f.g, net, {8, 12});
  ASSERT_GE(routes.size(), 2u);
  EXPECT_DOUBLE_EQ(routes[0].length, 30.0);
  for (std::size_t i = 1; i < routes.size(); ++i)
    EXPECT_GE(routes[i].length, routes[i - 1].length);
  for (const auto& r : routes) EXPECT_TRUE(route_connects(f.g, net, r));
}

TEST(Steiner, ThreePinLShapedNetUsesSteinerPoint) {
  Grid4 f;
  // Pins at (0,0), (0,3), (3,0): the optimal Steiner tree has length 60
  // (a corner tree through (0,0)).
  NetTargets net;
  net.pins = {{f.at(0, 0)}, {f.at(0, 3)}, {f.at(3, 0)}};
  const auto routes = m_best_routes(f.g, net, {8, 12});
  ASSERT_FALSE(routes.empty());
  EXPECT_DOUBLE_EQ(routes[0].length, 60.0);
  EXPECT_TRUE(route_connects(f.g, net, routes[0]));
}

TEST(Steiner, FourPinCrossNet) {
  Grid4 f;
  // Pins on the four corners: minimal tree length 90 on a 4x4 grid.
  NetTargets net;
  net.pins = {{f.at(0, 0)}, {f.at(0, 3)}, {f.at(3, 0)}, {f.at(3, 3)}};
  const auto routes = m_best_routes(f.g, net, {8, 12});
  ASSERT_FALSE(routes.empty());
  EXPECT_DOUBLE_EQ(routes[0].length, 90.0);
  for (const auto& r : routes) {
    EXPECT_TRUE(route_connects(f.g, net, r));
    // No duplicate edges in a route.
    std::set<EdgeId> uniq(r.edges.begin(), r.edges.end());
    EXPECT_EQ(uniq.size(), r.edges.size());
  }
}

TEST(Steiner, RoutesAreDistinct) {
  Grid4 f;
  NetTargets net;
  net.pins = {{f.at(0, 0)}, {f.at(3, 3)}};
  const auto routes = m_best_routes(f.g, net, {10, 12});
  std::set<std::vector<EdgeId>> seen;
  for (const auto& r : routes) EXPECT_TRUE(seen.insert(r.edges).second);
  EXPECT_GT(routes.size(), 3u);
}

TEST(Steiner, EquivalentPinPicksCloserAlternative) {
  Grid4 f;
  // Logical pin 2 may connect at (0,3) or (3,3); source at (0,0). The best
  // route should use (0,3) (distance 30 vs 60).
  NetTargets net;
  net.pins = {{f.at(0, 0)}, {f.at(0, 3), f.at(3, 3)}};
  const auto routes = m_best_routes(f.g, net, {6, 12});
  ASSERT_FALSE(routes.empty());
  EXPECT_DOUBLE_EQ(routes[0].length, 30.0);
}

TEST(Steiner, EquivalentPinsMayBridgeComponents) {
  // A net {A, B} where B is equivalent-paired: the route may pass through
  // either alternative; route_connects must accept a route reaching only
  // the nearer alternative.
  Grid4 f;
  NetTargets net;
  net.pins = {{f.at(1, 1)}, {f.at(0, 0), f.at(3, 3)}};
  Route r;
  // Route connecting (1,1) to (0,0) only.
  const auto sp = shortest_path(f.g, f.at(1, 1), f.at(0, 0));
  ASSERT_TRUE(sp.has_value());
  r.edges = sp->edges;
  std::sort(r.edges.begin(), r.edges.end());
  r.length = sp->length;
  EXPECT_TRUE(route_connects(f.g, net, r));
}

TEST(Steiner, SinglePinNetIsEmptyRoute) {
  Grid4 f;
  NetTargets net;
  net.pins = {{f.at(0, 0)}};
  const auto routes = m_best_routes(f.g, net, {4, 12});
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_TRUE(routes[0].edges.empty());
}

TEST(Steiner, UnroutableNetReturnsEmpty) {
  RoutingGraph g;
  g.add_node({0, 0});
  g.add_node({10, 10});
  NetTargets net;
  net.pins = {{0}, {1}};
  EXPECT_TRUE(m_best_routes(g, net, {4, 12}).empty());
}

TEST(Steiner, PinWithNoAlternativesIsUnroutable) {
  Grid4 f;
  NetTargets net;
  net.pins = {{f.at(0, 0)}, {}};
  EXPECT_TRUE(m_best_routes(f.g, net, {4, 12}).empty());
}

TEST(Steiner, WideNetFallsBackToGreedy) {
  Grid4 f;
  NetTargets net;
  // 6 pins with threshold 5 -> beam width 1, still a valid tree.
  net.pins = {{f.at(0, 0)}, {f.at(0, 3)}, {f.at(3, 0)},
              {f.at(3, 3)}, {f.at(1, 1)}, {f.at(2, 2)}};
  SteinerParams params;
  params.m = 4;
  params.wide_net_threshold = 5;
  const auto routes = m_best_routes(f.g, net, params);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_TRUE(route_connects(f.g, net, routes[0]));
}

TEST(Steiner, SharedNodePinsConnectTrivially) {
  Grid4 f;
  NetTargets net;
  net.pins = {{f.at(1, 1)}, {f.at(1, 1)}};
  const auto routes = m_best_routes(f.g, net, {4, 12});
  ASSERT_FALSE(routes.empty());
  EXPECT_DOUBLE_EQ(routes[0].length, 0.0);
  EXPECT_TRUE(route_connects(f.g, net, routes[0]));
}

TEST(Steiner, MLimitsRouteCount) {
  Grid4 f;
  NetTargets net;
  net.pins = {{f.at(0, 0)}, {f.at(3, 3)}};
  const auto routes = m_best_routes(f.g, net, {3, 12});
  EXPECT_LE(routes.size(), 3u);
}

TEST(Steiner, RouteLengthMatchesEdgeSum) {
  Grid4 f;
  NetTargets net;
  net.pins = {{f.at(0, 1)}, {f.at(2, 3)}, {f.at(3, 0)}};
  for (const auto& r : m_best_routes(f.g, net, {6, 12})) {
    double sum = 0.0;
    for (EdgeId e : r.edges) sum += f.g.edge(e).length;
    EXPECT_DOUBLE_EQ(r.length, sum);
  }
}

TEST(Steiner, RouteConnectsRejectsBrokenRoute) {
  Grid4 f;
  NetTargets net;
  net.pins = {{f.at(0, 0)}, {f.at(3, 3)}};
  Route r;  // empty route cannot connect distinct pins
  EXPECT_FALSE(route_connects(f.g, net, r));
  // A route touching only one pin fails too.
  const auto sp = shortest_path(f.g, f.at(0, 0), f.at(0, 2));
  r.edges = sp->edges;
  EXPECT_FALSE(route_connects(f.g, net, r));
}

}  // namespace
}  // namespace tw
