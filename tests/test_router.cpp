// Tests for phase two of the global router (random interchange under
// capacity constraints, Eqns 23-24) and the sequential baseline router.
#include <gtest/gtest.h>

#include "route/interchange.hpp"
#include "route/sequential.hpp"

namespace tw {
namespace {

/// Two parallel corridors between endpoint clusters:
///   s - a1 - a2 - t   (short, length 30, capacity `cap_short` per edge)
///   s - b1 - b2 - t   (long, length 60)
struct TwoCorridor {
  RoutingGraph g;
  NodeId s, a1, a2, b1, b2, t;
  explicit TwoCorridor(int cap_short, int cap_long = 8) {
    s = g.add_node({0, 0});
    a1 = g.add_node({10, 10});
    a2 = g.add_node({20, 10});
    b1 = g.add_node({10, -20});
    b2 = g.add_node({20, -20});
    t = g.add_node({30, 0});
    g.add_edge(s, a1, 10.0, cap_short);
    g.add_edge(a1, a2, 10.0, cap_short);
    g.add_edge(a2, t, 10.0, cap_short);
    g.add_edge(s, b1, 20.0, cap_long);
    g.add_edge(b1, b2, 20.0, cap_long);
    g.add_edge(b2, t, 20.0, cap_long);
  }
};

NetTargets two_pin(NodeId a, NodeId b) {
  NetTargets n;
  n.pins = {{a}, {b}};
  return n;
}

TEST(Interchange, AllShortWhenCapacityAllows) {
  TwoCorridor f(4);
  std::vector<NetTargets> nets{two_pin(f.s, f.t), two_pin(f.s, f.t)};
  GlobalRouter router(f.g, {{8, 12}, 1});
  const auto r = router.route(nets);
  EXPECT_EQ(r.total_overflow, 0);
  EXPECT_DOUBLE_EQ(r.total_length, 60.0);  // both on the short corridor
  EXPECT_EQ(r.unrouted_nets, 0);
}

TEST(Interchange, SpillsToLongCorridorUnderPressure) {
  // Short corridor holds one net; three nets must split 1 + 2.
  TwoCorridor f(1);
  std::vector<NetTargets> nets{two_pin(f.s, f.t), two_pin(f.s, f.t),
                               two_pin(f.s, f.t)};
  GlobalRouter router(f.g, {{8, 12}, 3});
  const auto r = router.route(nets);
  EXPECT_EQ(r.total_overflow, 0);
  EXPECT_DOUBLE_EQ(r.total_length, 30.0 + 60.0 + 60.0);
}

TEST(Interchange, ReportsOverflowWhenInfeasible) {
  // Both corridors capacity 1, three nets: overflow unavoidable.
  TwoCorridor f(1, 1);
  std::vector<NetTargets> nets{two_pin(f.s, f.t), two_pin(f.s, f.t),
                               two_pin(f.s, f.t)};
  GlobalRouter router(f.g, {{8, 12}, 5});
  const auto r = router.route(nets);
  EXPECT_GT(r.total_overflow, 0);
  // Usage bookkeeping consistent with choices.
  std::vector<int> usage(f.g.num_edges(), 0);
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const Route* rt = r.route_of(n);
    ASSERT_NE(rt, nullptr);
    for (EdgeId e : rt->edges) ++usage[static_cast<std::size_t>(e)];
  }
  EXPECT_EQ(usage, r.edge_usage);
  EXPECT_EQ(r.total_overflow, total_overflow(f.g, usage));
}

TEST(Interchange, SelectedRoutesConnectTheirNets) {
  TwoCorridor f(1);
  std::vector<NetTargets> nets{two_pin(f.s, f.t), two_pin(f.s, f.t),
                               two_pin(f.a1, f.b2)};
  GlobalRouter router(f.g, {{8, 12}, 7});
  const auto r = router.route(nets);
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const Route* rt = r.route_of(n);
    ASSERT_NE(rt, nullptr);
    EXPECT_TRUE(route_connects(f.g, nets[n], *rt)) << n;
  }
}

TEST(Interchange, DeterministicForSeed) {
  TwoCorridor f(1);
  std::vector<NetTargets> nets{two_pin(f.s, f.t), two_pin(f.s, f.t),
                               two_pin(f.s, f.t)};
  const auto r1 = GlobalRouter(f.g, {{8, 12}, 9}).route(nets);
  const auto r2 = GlobalRouter(f.g, {{8, 12}, 9}).route(nets);
  EXPECT_EQ(r1.choice, r2.choice);
  EXPECT_DOUBLE_EQ(r1.total_length, r2.total_length);
}

TEST(Interchange, TotalLengthConsistent) {
  TwoCorridor f(1);
  std::vector<NetTargets> nets{two_pin(f.s, f.t), two_pin(f.s, f.t),
                               two_pin(f.s, f.t)};
  const auto r = GlobalRouter(f.g, {{8, 12}, 11}).route(nets);
  double sum = 0.0;
  for (std::size_t n = 0; n < nets.size(); ++n) sum += r.route_of(n)->length;
  EXPECT_NEAR(r.total_length, sum, 1e-9);
}

TEST(Interchange, UnroutableNetCounted) {
  RoutingGraph g;
  const NodeId a = g.add_node({0, 0});
  const NodeId b = g.add_node({10, 0});
  g.add_node({99, 99});  // isolated
  g.add_edge(a, b, 10.0, 2);
  std::vector<NetTargets> nets{two_pin(a, b), two_pin(a, 2)};
  const auto r = GlobalRouter(g, {{4, 12}, 1}).route(nets);
  EXPECT_EQ(r.unrouted_nets, 1);
  EXPECT_EQ(r.choice[1], -1);
  EXPECT_EQ(r.route_of(1), nullptr);
}

TEST(Sequential, RoutesGreedily) {
  TwoCorridor f(4);
  std::vector<NetTargets> nets{two_pin(f.s, f.t)};
  const auto r = route_sequential(f.g, nets);
  EXPECT_EQ(r.total_overflow, 0);
  EXPECT_DOUBLE_EQ(r.total_length, 30.0);
}

TEST(Sequential, AvoidsSaturatedEdges) {
  TwoCorridor f(1);
  std::vector<NetTargets> nets{two_pin(f.s, f.t), two_pin(f.s, f.t)};
  const auto r = route_sequential(f.g, nets);
  EXPECT_EQ(r.total_overflow, 0);
  EXPECT_DOUBLE_EQ(r.total_length, 30.0 + 60.0);
}

TEST(Sequential, OrderDependenceDemonstrated) {
  // The classical problem (Section 4.2.2): a net whose only short corridor
  // is shared. Order A routes the flexible net first and blocks the rigid
  // one; order B does not. The interchange router matches the better order
  // regardless.
  RoutingGraph g;
  // Chain: u - v with capacity 1 short edge and a long detour for net X
  // only; net Y has no detour.
  const NodeId u = g.add_node({0, 0});
  const NodeId v = g.add_node({10, 0});
  const NodeId d1 = g.add_node({0, 20});
  const NodeId d2 = g.add_node({10, 20});
  g.add_edge(u, v, 10.0, 1);    // shared short edge
  g.add_edge(u, d1, 10.0, 4);   // detour, only reachable from u/v
  g.add_edge(d1, d2, 10.0, 4);
  g.add_edge(d2, v, 10.0, 4);

  std::vector<NetTargets> nets{two_pin(u, v), two_pin(u, v)};
  const int order_a[] = {0, 1};
  const int order_b[] = {1, 0};
  const auto ra = route_sequential(g, nets, order_a);
  const auto rb = route_sequential(g, nets, order_b);
  // Both orders give 10 + 30 here (symmetric nets) — extend with an
  // asymmetric pair: net 1 can ONLY use the short edge.
  RoutingGraph g2;
  const NodeId s = g2.add_node({0, 0});
  const NodeId m = g2.add_node({10, 0});
  const NodeId t = g2.add_node({20, 0});
  const NodeId e1 = g2.add_node({0, 20});
  const NodeId e2 = g2.add_node({20, 20});
  g2.add_edge(s, m, 10.0, 1);
  g2.add_edge(m, t, 10.0, 1);
  g2.add_edge(s, e1, 15.0, 4);
  g2.add_edge(e1, e2, 15.0, 4);
  g2.add_edge(e2, t, 15.0, 4);
  // Net 0: s->t (has the detour). Net 1: s->m (must use edge s-m).
  std::vector<NetTargets> nets2{two_pin(s, t), two_pin(s, m)};
  const auto seq_bad = route_sequential(g2, nets2, order_a);   // net 0 first
  const auto seq_good = route_sequential(g2, nets2, order_b);  // net 1 first
  // Routing net 0 first grabs s-m; net 1 then overflows it.
  EXPECT_GT(seq_bad.total_overflow, 0);
  EXPECT_EQ(seq_good.total_overflow, 0);

  // The interchange router is order-free: it must match the good outcome.
  const auto inter = GlobalRouter(g2, {{8, 12}, 21}).route(nets2);
  EXPECT_EQ(inter.total_overflow, 0);
  EXPECT_DOUBLE_EQ(inter.total_length, 45.0 + 10.0);

  (void)ra;
  (void)rb;
}

TEST(Sequential, UsageBookkeeping) {
  TwoCorridor f(2);
  std::vector<NetTargets> nets{two_pin(f.s, f.t), two_pin(f.s, f.t)};
  const auto r = route_sequential(f.g, nets);
  std::vector<int> usage(f.g.num_edges(), 0);
  for (const auto& rt : r.routes)
    for (EdgeId e : rt.edges) ++usage[static_cast<std::size_t>(e)];
  EXPECT_EQ(usage, r.edge_usage);
}

TEST(Interchange, AugmentationFindsDetourBeyondMAlternatives) {
  // A ladder where the M shortest alternatives of every net share the same
  // congested rungs, but a long detour exists. With M = 1 phase one only
  // knows the shared shortest route; the rip-up augmentation must discover
  // the detour and clear the overflow.
  RoutingGraph g;
  const NodeId s = g.add_node({0, 0});
  const NodeId t = g.add_node({30, 0});
  const NodeId m1 = g.add_node({10, 0});
  const NodeId m2 = g.add_node({20, 0});
  g.add_edge(s, m1, 10.0, 1);
  g.add_edge(m1, m2, 10.0, 1);
  g.add_edge(m2, t, 10.0, 1);
  // Detour: four hops over the top, ample capacity.
  const NodeId d1 = g.add_node({5, 20});
  const NodeId d2 = g.add_node({25, 20});
  g.add_edge(s, d1, 25.0, 8);
  g.add_edge(d1, d2, 25.0, 8);
  g.add_edge(d2, t, 25.0, 8);

  std::vector<NetTargets> nets{two_pin(s, t), two_pin(s, t)};
  GlobalRouterParams params;
  params.steiner.m = 1;  // phase one yields only the shared shortest route
  params.seed = 5;
  const auto r = GlobalRouter(g, params).route(nets);
  EXPECT_EQ(r.total_overflow, 0);
  // One net on the short path (30), one on the detour (75).
  EXPECT_DOUBLE_EQ(r.total_length, 30.0 + 75.0);
  // The augmented alternative was recorded in the pool.
  EXPECT_GT(r.alternatives[0].size() + r.alternatives[1].size(), 2u);
}

TEST(Interchange, AugmentationGivesUpGracefully) {
  // No detour exists: augmentation must terminate and report overflow.
  RoutingGraph g;
  const NodeId a = g.add_node({0, 0});
  const NodeId b = g.add_node({10, 0});
  g.add_edge(a, b, 10.0, 1);
  std::vector<NetTargets> nets{two_pin(a, b), two_pin(a, b), two_pin(a, b)};
  const auto r = GlobalRouter(g, {{2, 12}, 3}).route(nets);
  EXPECT_EQ(r.total_overflow, 2);
  EXPECT_EQ(r.unrouted_nets, 0);
}

TEST(Sequential, MultiPinNetWithEquivalents) {
  TwoCorridor f(4);
  NetTargets net;
  net.pins = {{f.s}, {f.a2, f.b2}, {f.t}};
  const auto r = route_sequential(f.g, {net});
  EXPECT_EQ(r.unrouted_nets, 0);
  EXPECT_TRUE(route_connects(f.g, net, r.routes[0]));
  // Best: s -a1- a2 -t picks the a2 alternative, total 30.
  EXPECT_DOUBLE_EQ(r.total_length, 30.0);
}

}  // namespace
}  // namespace tw
