// Tests for the 8-orientation group: TimberWolfMC evaluates the TEIC from
// exact pin locations, so orientation transforms must be exact group
// actions (closure, inverses, composition) on the integer grid.
#include <gtest/gtest.h>

#include "geom/orientation.hpp"

namespace tw {
namespace {

constexpr Coord kW = 10;
constexpr Coord kH = 20;

TEST(Orient, IdentityIsN) {
  const Point p{3, 7};
  EXPECT_EQ(apply_orient(Orient::N, p, kW, kH), p);
}

TEST(Orient, CornersStayCorners) {
  const Point corners[] = {{0, 0}, {kW, 0}, {0, kH}, {kW, kH}};
  for (Orient o : kAllOrients) {
    const Coord ow = oriented_width(o, kW, kH);
    const Coord oh = oriented_height(o, kW, kH);
    for (const Point& c : corners) {
      const Point t = apply_orient(o, c, kW, kH);
      EXPECT_TRUE((t.x == 0 || t.x == ow) && (t.y == 0 || t.y == oh))
          << to_string(o) << " corner (" << c.x << "," << c.y << ")";
    }
  }
}

TEST(Orient, InteriorStaysInterior) {
  const Point p{3, 7};
  for (Orient o : kAllOrients) {
    const Point t = apply_orient(o, p, kW, kH);
    EXPECT_GT(t.x, 0);
    EXPECT_LT(t.x, oriented_width(o, kW, kH));
    EXPECT_GT(t.y, 0);
    EXPECT_LT(t.y, oriented_height(o, kW, kH));
  }
}

TEST(Orient, SwapsAxesExactlyForQuarterTurns) {
  EXPECT_FALSE(swaps_axes(Orient::N));
  EXPECT_TRUE(swaps_axes(Orient::W));
  EXPECT_FALSE(swaps_axes(Orient::S));
  EXPECT_TRUE(swaps_axes(Orient::E));
  EXPECT_FALSE(swaps_axes(Orient::FN));
  EXPECT_TRUE(swaps_axes(Orient::FW));
  EXPECT_FALSE(swaps_axes(Orient::FS));
  EXPECT_TRUE(swaps_axes(Orient::FE));
}

TEST(Orient, InverseUndoes) {
  const Point p{3, 7};
  for (Orient o : kAllOrients) {
    const Coord ow = oriented_width(o, kW, kH);
    const Coord oh = oriented_height(o, kW, kH);
    const Point t = apply_orient(o, p, kW, kH);
    const Point back = apply_orient(inverse_orient(o), t, ow, oh);
    EXPECT_EQ(back, p) << to_string(o);
  }
}

TEST(Orient, ComposeMatchesSequentialApplication) {
  const Point p{3, 7};
  for (Orient a : kAllOrients) {
    for (Orient b : kAllOrients) {
      // Apply b first, then a.
      const Coord bw = oriented_width(b, kW, kH);
      const Coord bh = oriented_height(b, kW, kH);
      const Point via = apply_orient(a, apply_orient(b, p, kW, kH), bw, bh);
      const Point direct = apply_orient(compose(a, b), p, kW, kH);
      EXPECT_EQ(via, direct) << to_string(a) << " o " << to_string(b);
    }
  }
}

TEST(Orient, ComposeWithIdentity) {
  for (Orient o : kAllOrients) {
    EXPECT_EQ(compose(Orient::N, o), o);
    EXPECT_EQ(compose(o, Orient::N), o);
  }
}

TEST(Orient, GroupClosureAndInverses) {
  for (Orient a : kAllOrients) {
    EXPECT_EQ(compose(a, inverse_orient(a)), Orient::N) << to_string(a);
    EXPECT_EQ(compose(inverse_orient(a), a), Orient::N) << to_string(a);
  }
}

TEST(Orient, AspectInversionSwapsAxesParity) {
  for (Orient o : kAllOrients) {
    EXPECT_NE(swaps_axes(o), swaps_axes(aspect_inverted(o))) << to_string(o);
  }
}

TEST(Orient, AspectInversionTwiceReturnsSameDims) {
  for (Orient o : kAllOrients) {
    const Orient oo = aspect_inverted(aspect_inverted(o));
    EXPECT_EQ(swaps_axes(oo), swaps_axes(o));
  }
}

TEST(Orient, VectorTransformPreservesLength) {
  const Point v{3, -4};
  for (Orient o : kAllOrients) {
    const Point t = apply_orient_vec(o, v);
    EXPECT_EQ(t.x * t.x + t.y * t.y, 25);
  }
}

TEST(Orient, VectorTransformInverse) {
  const Point v{1, 0};
  for (Orient o : kAllOrients) {
    const Point t = apply_orient_vec(inverse_orient(o), apply_orient_vec(o, v));
    EXPECT_EQ(t, v) << to_string(o);
  }
}

TEST(Orient, StringRoundTrip) {
  for (Orient o : kAllOrients)
    EXPECT_EQ(orient_from_string(to_string(o)), o);
  EXPECT_THROW(orient_from_string("XX"), std::invalid_argument);
}

TEST(Orient, AllEightDistinctActions) {
  // No two orientations act identically on a generic point.
  const Point p{3, 7};
  for (std::size_t i = 0; i < kAllOrients.size(); ++i)
    for (std::size_t j = i + 1; j < kAllOrients.size(); ++j) {
      const bool same_dims =
          swaps_axes(kAllOrients[i]) == swaps_axes(kAllOrients[j]);
      if (!same_dims) continue;
      EXPECT_NE(apply_orient(kAllOrients[i], p, kW, kH),
                apply_orient(kAllOrients[j], p, kW, kH))
          << to_string(kAllOrients[i]) << " vs " << to_string(kAllOrients[j]);
    }
}

}  // namespace
}  // namespace tw
