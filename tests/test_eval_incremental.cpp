// Equivalence fuzz for the incremental evaluation core (docs/PERF.md):
// the spatial bin index, the net-bound cache, and the MoveTxn layer must
// be *exactly* equivalent to from-scratch evaluation after any sequence
// of moves, commits and reverts.
//
// The fuzz drives thousands of randomized annealer-shaped moves
// (displacement, orientation, interchange, aspect, instance, pin/group
// moves) through a MoveTxn with random commit/revert decisions, and after
// every move asserts:
//   * OverlapEngine::total_overlap() == total_overlap_naive()  (index
//     never prunes a real overlap — integer-exact),
//   * Placement::net_bounds_drift() is empty (cache == full pin rescan),
//   * the running CostTerms maintained from committed deltas match a
//     from-scratch CostModel::full() (C2 exactly; C1/C3 to fp tolerance).
// Environment changes outside the transaction layer (set_expansions,
// set_core, direct mutator + refresh) are interleaved to cover the
// stage-2 and resynchronization paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>

#include "estimator/area_estimator.hpp"
#include "geom/bins.hpp"
#include "place/move_txn.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace tw {
namespace {

// ---------------------------------------------------------------------------
// BinGrid unit tests
// ---------------------------------------------------------------------------

TEST(BinGrid, DegenerateExtentIsSingleBin) {
  const BinGrid g = BinGrid::make(Rect{5, 5, 5, 5}, 100, 64);
  EXPECT_EQ(g.nx, 1);
  EXPECT_EQ(g.ny, 1);
  EXPECT_EQ(g.num_bins(), 1);
  EXPECT_EQ(g.x_of(-1000), 0);
  EXPECT_EQ(g.x_of(1000), 0);
}

TEST(BinGrid, ClampsOutOfExtentCoordinates) {
  const BinGrid g = BinGrid::make(Rect{0, 0, 100, 100}, 10, 64);
  EXPECT_GT(g.nx, 1);
  EXPECT_EQ(g.x_of(-50), 0);
  EXPECT_EQ(g.x_of(0), 0);
  EXPECT_EQ(g.x_of(100), g.nx - 1);
  EXPECT_EQ(g.x_of(100000), g.nx - 1);
  EXPECT_EQ(g.y_of(-7), 0);
  EXPECT_EQ(g.y_of(100000), g.ny - 1);
}

TEST(BinGrid, RespectsMaxBinsPerAxis) {
  const BinGrid g = BinGrid::make(Rect{0, 0, 1000000, 1000000}, 1, 16);
  EXPECT_LE(g.nx, 16);
  EXPECT_LE(g.ny, 16);
}

TEST(BinGrid, InvalidRectMapsToSingleBin) {
  const BinGrid g = BinGrid::make(Rect{0, 0, 100, 100}, 10, 64);
  const BinGrid::Range r = g.range(Rect{50, 50, 40, 40});  // xhi < xlo
  EXPECT_EQ(r.x0, r.x1);
  EXPECT_EQ(r.y0, r.y1);
}

TEST(BinGrid, MappingIsMonotone) {
  const BinGrid g = BinGrid::make(Rect{-37, -11, 113, 257}, 9, 64);
  for (Coord x = -60; x <= 140; ++x) EXPECT_LE(g.x_of(x), g.x_of(x + 1));
  for (Coord y = -40; y <= 280; ++y) EXPECT_LE(g.y_of(y), g.y_of(y + 1));
}

// Monotonicity + clamping imply the index invariant directly, but assert
// it explicitly on random rect pairs: rects with positive overlap area
// always share at least one bin.
TEST(BinGrid, OverlappingRectsShareABin) {
  const BinGrid g = BinGrid::make(Rect{0, 0, 500, 400}, 37, 64);
  Rng rng(99);
  for (int it = 0; it < 2000; ++it) {
    const Coord ax = rng.uniform_int(-50, 500);
    const Coord ay = rng.uniform_int(-50, 450);
    const Rect a{ax, ay, ax + rng.uniform_int(1, 120),
                 ay + rng.uniform_int(1, 120)};
    const Coord bx = rng.uniform_int(-50, 500);
    const Coord by = rng.uniform_int(-50, 450);
    const Rect b{bx, by, bx + rng.uniform_int(1, 120),
                 by + rng.uniform_int(1, 120)};
    if (a.overlap_area(b) <= 0) continue;
    const BinGrid::Range ra = g.range(a);
    const BinGrid::Range rb = g.range(b);
    EXPECT_TRUE(ra.x0 <= rb.x1 && rb.x0 <= ra.x1 && ra.y0 <= rb.y1 &&
                rb.y0 <= ra.y1)
        << "overlapping rects landed in disjoint bin ranges";
  }
}

// ---------------------------------------------------------------------------
// Equivalence fuzz
// ---------------------------------------------------------------------------

void expect_terms_match(const CostTerms& running, const CostTerms& full,
                        long long step) {
  // C1/C3 accumulate float deltas; C2 deltas are integer-valued doubles,
  // so the running overlap must match the recomputation *exactly*.
  const double e1 = 1e-6 * std::max(1.0, std::abs(full.c1));
  const double e3 = 1e-6 * std::max(1.0, std::abs(full.c3));
  EXPECT_NEAR(running.c1, full.c1, e1) << "C1 drifted at step " << step;
  EXPECT_EQ(running.c2_raw, full.c2_raw) << "C2 drifted at step " << step;
  EXPECT_NEAR(running.c3, full.c3, e3) << "C3 drifted at step " << step;
}

struct FuzzConfig {
  bool dynamic_engine = false;   ///< estimator-driven expansions (stage 1)
  bool env_changes = false;      ///< set_expansions / set_core / direct moves
  std::uint64_t seed = 1;
  int moves = 1200;
};

void run_fuzz(const Netlist& nl, const FuzzConfig& cfg) {
  Placement p(nl);
  Rng rng(cfg.seed);
  DynamicAreaEstimator est(nl);
  Rect core = est.compute_initial_core(1.0);

  std::optional<OverlapEngine> ov;
  if (cfg.dynamic_engine) {
    ov.emplace(p, est);
  } else {
    // Static mode with a nominal uniform spacing, like stage 2.
    const Coord e = static_cast<Coord>(std::ceil(0.25 * est.channel_width()));
    ov.emplace(p, core,
               std::vector<std::array<Coord, 4>>(nl.num_cells(),
                                                 std::array<Coord, 4>{
                                                     e, e, e, e}));
  }

  p.randomize(rng, core);
  ov->refresh_all();

  CostModel model(p, *ov);
  model.set_p2(0.5);
  MoveTxn txn(p, *ov, model);
  CostTerms running = model.full();

  const auto num_cells = static_cast<std::int64_t>(nl.num_cells());
  ASSERT_GE(num_cells, 2);

  for (int step = 0; step < cfg.moves; ++step) {
    const CellId i = static_cast<CellId>(rng.uniform_int(0, num_cells - 1));
    const Cell& cell = nl.cell(i);
    const int kind = static_cast<int>(rng.uniform_int(0, 7));
    bool opened = false;

    switch (kind) {
      case 0: {  // displacement (optionally with an orientation flip)
        txn.begin(i);
        txn.set_center(i, Point{rng.uniform_int(core.xlo, core.xhi),
                                rng.uniform_int(core.ylo, core.yhi)});
        if (rng.bernoulli(0.3))
          txn.set_orient(i, aspect_inverted(p.state(i).orient));
        opened = true;
        break;
      }
      case 1: {  // orientation change
        txn.begin(i);
        txn.set_orient(i, static_cast<Orient>(rng.uniform_int(0, 7)));
        opened = true;
        break;
      }
      case 2: {  // pairwise interchange
        CellId j = i;
        while (j == i)
          j = static_cast<CellId>(rng.uniform_int(0, num_cells - 1));
        txn.begin(i, j);
        const Point ci = p.state(i).center;
        const Point cj = p.state(j).center;
        txn.set_center(i, cj);
        txn.set_center(j, ci);
        if (rng.bernoulli(0.25)) {
          txn.set_orient(i, aspect_inverted(p.state(i).orient));
          txn.set_orient(j, aspect_inverted(p.state(j).orient));
        }
        opened = true;
        break;
      }
      case 3: {  // aspect change (custom cells)
        if (!cell.has_aspect_freedom()) break;
        txn.begin(i);
        txn.set_aspect(i, rng.uniform_real(cell.aspect_lo, cell.aspect_hi));
        opened = true;
        break;
      }
      case 4: {  // instance change
        if (cell.instances.size() < 2) break;
        txn.begin(i);
        txn.set_instance(i, static_cast<InstanceId>(rng.uniform_int(
                                0,
                                static_cast<std::int64_t>(
                                    cell.instances.size()) -
                                    1)));
        opened = true;
        break;
      }
      case 5: {  // pin / pin-group move (custom cells)
        if (!cell.is_custom()) break;
        std::vector<int>& loose = txn.scratch_ints();
        loose.clear();
        for (std::size_t k = 0; k < cell.pins.size(); ++k)
          if (nl.pin(cell.pins[k]).commit == PinCommit::kEdge)
            loose.push_back(static_cast<int>(k));
        const std::size_t units = cell.groups.size() + loose.size();
        if (units == 0) break;
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(units) - 1));
        std::vector<NetId>& nets = txn.scratch_nets();
        nets.clear();
        if (pick < cell.groups.size()) {
          for (PinId pid : cell.groups[pick].pins)
            nets.push_back(nl.pin(pid).net);
        } else {
          const int local = loose[pick - cell.groups.size()];
          nets.push_back(
              nl.pin(cell.pins[static_cast<std::size_t>(local)]).net);
        }
        std::sort(nets.begin(), nets.end());
        nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
        txn.begin_pins(i, nets);
        if (pick < cell.groups.size()) {
          const auto g = static_cast<GroupId>(pick);
          const auto sides = sides_in_mask(cell.groups[pick].side_mask);
          const Side side = sides[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(sides.size()) - 1))];
          txn.assign_group(
              g, side,
              static_cast<int>(rng.uniform_int(0, cell.sites_per_edge - 1)));
        } else {
          const int local = loose[pick - cell.groups.size()];
          const Pin& pin = nl.pin(cell.pins[static_cast<std::size_t>(local)]);
          const auto legal = sites_in_mask(pin.side_mask, cell.sites_per_edge);
          txn.assign_pin_to_site(
              local, legal[static_cast<std::size_t>(rng.uniform_int(
                         0, static_cast<std::int64_t>(legal.size()) - 1))]);
        }
        opened = true;
        break;
      }
      case 6: {  // environment change: expansions / core (outside any txn)
        if (!cfg.env_changes) break;
        if (cfg.dynamic_engine || rng.bernoulli(0.4)) {
          // Grow the core a little (stage 2 does this when the channel
          // estimate changes). Border overlap changes; resync below.
          core = Rect{core.xlo - 2, core.ylo - 2, core.xhi + 2, core.yhi + 2};
          ov->set_core(core);
          if (cfg.dynamic_engine) {
            // Changing the estimator's core re-modulates every cell's
            // expansion, so the engine's caches must be re-derived before
            // any transaction snapshots them (stage 1 sets the core once,
            // before annealing, for exactly this reason).
            est.set_core(core);
            ov->refresh_all();
          }
        } else {
          const Coord e = rng.uniform_int(0, 8);
          ov->set_expansions(i, {e, e, e, e});
        }
        running = model.full();
        break;
      }
      default: {  // direct mutator + refresh (checkpoint-restore path)
        if (!cfg.env_changes) break;
        p.set_center(i, Point{rng.uniform_int(core.xlo, core.xhi),
                              rng.uniform_int(core.ylo, core.yhi)});
        ov->refresh(i);
        running = model.full();
        break;
      }
    }

    if (opened) {
      const double delta = txn.evaluate();
      EXPECT_TRUE(std::isfinite(delta));
      if (rng.bernoulli(0.5))
        txn.commit(running);
      else
        txn.revert();
      EXPECT_FALSE(txn.active());
    }

    // --- the three exactness invariants, after *every* step ---------------
    ASSERT_EQ(ov->total_overlap(), ov->total_overlap_naive())
        << "spatial index drifted at step " << step;
    const std::string drift = p.net_bounds_drift();
    ASSERT_TRUE(drift.empty()) << "step " << step << ": " << drift;
    expect_terms_match(running, model.full(), step);
  }
}

Netlist fuzz_circuit(int cells, std::uint64_t seed) {
  CircuitSpec spec;
  spec.name = "eval_fuzz";
  spec.num_cells = cells;
  spec.num_nets = cells * 4;
  spec.num_pins = cells * 16;
  spec.mean_cell_dim = 60.0;
  spec.seed = seed;
  return generate_circuit(spec);
}

TEST(EvalIncremental, StaticEngineSmallCircuit) {
  run_fuzz(fuzz_circuit(12, 7), {.dynamic_engine = false,
                                 .env_changes = false,
                                 .seed = 101,
                                 .moves = 1500});
}

TEST(EvalIncremental, StaticEngineWithEnvironmentChanges) {
  run_fuzz(fuzz_circuit(16, 11), {.dynamic_engine = false,
                                  .env_changes = true,
                                  .seed = 202,
                                  .moves = 1200});
}

TEST(EvalIncremental, DynamicEngineSmallCircuit) {
  run_fuzz(fuzz_circuit(12, 13), {.dynamic_engine = true,
                                  .env_changes = false,
                                  .seed = 303,
                                  .moves = 1500});
}

TEST(EvalIncremental, DynamicEngineMediumCircuit) {
  run_fuzz(fuzz_circuit(32, 17), {.dynamic_engine = true,
                                  .env_changes = true,
                                  .seed = 404,
                                  .moves = 900});
}

// SoC-scale exactness: above 1024 cells the overlap engine switches to a
// size-scaled bin grid (see max_bins_per_axis in overlap.cpp); the
// indexed-vs-naive and incremental-vs-full invariants must hold across
// that policy boundary too. Few moves — the naive O(n^2) cross-check
// dominates the cost at this size.
TEST(EvalIncremental, DynamicEngineSocScaleCircuit) {
  run_fuzz(fuzz_circuit(1500, 19), {.dynamic_engine = true,
                                    .env_changes = false,
                                    .seed = 505,
                                    .moves = 30});
}

// A committed transaction must leave the mutation standing; a reverted one
// must restore the exact prior state (byte-level via the snapshot).
TEST(EvalIncremental, CommitAndRevertSemantics) {
  const Netlist nl = fuzz_circuit(8, 23);
  Placement p(nl);
  Rng rng(5);
  DynamicAreaEstimator est(nl);
  const Rect core = est.compute_initial_core(1.0);
  OverlapEngine ov(p, core, {});
  p.randomize(rng, core);
  ov.refresh_all();
  CostModel model(p, ov);
  MoveTxn txn(p, ov, model);
  CostTerms running = model.full();

  const Point before = p.state(0).center;
  txn.begin(0);
  txn.set_center(0, Point{before.x + 11, before.y - 7});
  const double delta = txn.evaluate();
  txn.revert();
  EXPECT_EQ(p.state(0).center.x, before.x);
  EXPECT_EQ(p.state(0).center.y, before.y);
  expect_terms_match(running, model.full(), -1);

  txn.begin(0);
  txn.set_center(0, Point{before.x + 11, before.y - 7});
  EXPECT_NEAR(txn.evaluate(), delta, 1e-9 * std::max(1.0, std::abs(delta)));
  txn.commit(running);
  EXPECT_EQ(p.state(0).center.x, before.x + 11);
  expect_terms_match(running, model.full(), -2);
}

}  // namespace
}  // namespace tw
