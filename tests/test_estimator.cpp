// Tests for the wire estimator and the dynamic interconnect-area estimator
// (Section 2.2): modulation functions, alpha normalization, pin-density
// factors, the dynamic position dependence, and initial core sizing.
#include <gtest/gtest.h>

#include "estimator/area_estimator.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

Netlist simple_circuit() {
  Netlist nl;
  const NetId n = nl.add_net("n");
  const CellId a = nl.add_macro("a", {Rect{0, 0, 40, 40}});
  const CellId b = nl.add_macro("b", {Rect{0, 0, 40, 40}});
  // All of a's pins on the right side -> high pin density there.
  nl.add_fixed_pin(a, "p0", n, Point{40, 10});
  nl.add_fixed_pin(a, "p1", n, Point{40, 20});
  nl.add_fixed_pin(a, "p2", n, Point{40, 30});
  nl.add_fixed_pin(b, "q0", n, Point{0, 20});
  return nl;
}

TEST(Modulation, PeaksAtCenterFallsToEdges) {
  Modulation m;
  m.core = {-50, -50, 50, 50};
  EXPECT_DOUBLE_EQ(m.fx(0), 2.0);
  EXPECT_DOUBLE_EQ(m.fx(50), 1.0);
  EXPECT_DOUBLE_EQ(m.fx(-50), 1.0);
  EXPECT_DOUBLE_EQ(m.fx(25), 1.5);
  EXPECT_DOUBLE_EQ(m.fy(0), 2.0);
  EXPECT_DOUBLE_EQ(m.fy(-50), 1.0);
}

TEST(Modulation, ClampsOutsideCore) {
  Modulation m;
  m.core = {-50, -50, 50, 50};
  EXPECT_DOUBLE_EQ(m.fx(200), 1.0);
  EXPECT_DOUBLE_EQ(m.fx(-200), 1.0);
}

TEST(Modulation, OffCenterCore) {
  Modulation m;
  m.core = {0, 0, 100, 100};
  EXPECT_DOUBLE_EQ(m.fx(50), 2.0);
  EXPECT_DOUBLE_EQ(m.fx(0), 1.0);
  EXPECT_DOUBLE_EQ(m.fx(100), 1.0);
}

TEST(Modulation, AlphaClosedForm) {
  Modulation m;  // M=2, B=1
  EXPECT_DOUBLE_EQ(m.alpha(), 2.25);  // ((2+1)/2)^2, Eqn 4
  m.mx = m.my = 3.0;
  m.bx = m.by = 1.0;
  EXPECT_DOUBLE_EQ(m.alpha(), 4.0);
}

TEST(Modulation, AlphaMatchesNumericalMean) {
  // alpha must equal the mean of fx*fy over the core (Eqn 3).
  Modulation m;
  m.mx = 2.0; m.bx = 1.0; m.my = 2.5; m.by = 0.5;
  m.core = {-100, -80, 100, 80};
  double sum = 0.0;
  int count = 0;
  for (Coord x = -100; x <= 100; x += 2)
    for (Coord y = -80; y <= 80; y += 2) {
      sum += m.fx(x) * m.fy(y);
      ++count;
    }
  // Inclusive endpoint sampling biases the discrete mean slightly low.
  EXPECT_NEAR(sum / count, m.alpha(), 0.03);
}

TEST(WireEstimator, MonotoneInAreaAndDegrees) {
  const Netlist nl = generate_circuit(tiny_circuit());
  WireEstimator est(nl);
  EXPECT_GT(est.total_length(1e6), est.total_length(1e4));
  EXPECT_GT(est.total_length(1e4), 0.0);
  EXPECT_GT(est.channel_width(500, 500), 0.0);
}

TEST(WireEstimator, ChannelWidthIsLengthOverChannelLength) {
  const Netlist nl = generate_circuit(tiny_circuit());
  WireEstimator est(nl);
  const double cw = est.channel_width(300, 300);
  const double nlen = est.total_length(300.0 * 300.0);
  const double cl = est.total_channel_length(300, 300);
  EXPECT_NEAR(cw, nlen / cl * static_cast<double>(nl.tech().track_separation),
              1e-9);
}

TEST(AreaEstimator, InitialCoreFitsCells) {
  const Netlist nl = generate_circuit(tiny_circuit());
  DynamicAreaEstimator est(nl);
  const Rect core = est.compute_initial_core();
  EXPECT_GT(core.area(), nl.total_cell_area());
  // Core is centered at the origin.
  EXPECT_LE(std::abs(core.xlo + core.xhi), 1);
  EXPECT_LE(std::abs(core.ylo + core.yhi), 1);
}

TEST(AreaEstimator, CoreRespectsAspect) {
  const Netlist nl = generate_circuit(tiny_circuit());
  DynamicAreaEstimator est(nl);
  const Rect tall = est.compute_initial_core(2.0);
  EXPECT_NEAR(static_cast<double>(tall.height()) / tall.width(), 2.0, 0.1);
}

TEST(AreaEstimator, RejectsBadInputs) {
  const Netlist nl = generate_circuit(tiny_circuit());
  DynamicAreaEstimator est(nl);
  EXPECT_THROW(est.compute_initial_core(0.0), std::invalid_argument);
  EXPECT_THROW(est.set_core(Rect{0, 0, 0, 0}), std::invalid_argument);
}

TEST(AreaEstimator, PinDensityFactorAtLeastOne) {
  const Netlist nl = simple_circuit();
  DynamicAreaEstimator est(nl);
  est.compute_initial_core();
  for (Side s : {Side::kLeft, Side::kRight, Side::kBottom, Side::kTop}) {
    EXPECT_GE(est.pin_density_factor(0, 0, s), 1.0);
    EXPECT_GE(est.pin_density_factor(1, 0, s), 1.0);
  }
}

TEST(AreaEstimator, DenseSideGetsBiggerFactor) {
  const Netlist nl = simple_circuit();
  DynamicAreaEstimator est(nl);
  est.compute_initial_core();
  // Cell a has 3 pins on its right edge and none elsewhere.
  EXPECT_GT(est.pin_density_factor(0, 0, Side::kRight),
            est.pin_density_factor(0, 0, Side::kLeft));
}

TEST(AreaEstimator, ExpansionLargerAtCoreCenter) {
  const Netlist nl = simple_circuit();
  DynamicAreaEstimator est(nl);
  const Rect core = est.compute_initial_core();
  const Coord center_exp =
      est.edge_expansion(0, 0, Orient::N, Side::kRight, Point{0, 0});
  const Coord corner_exp = est.edge_expansion(
      0, 0, Orient::N, Side::kRight, Point{core.xhi, core.yhi});
  EXPECT_GE(center_exp, corner_exp);
  EXPECT_GT(center_exp, 0);
}

TEST(AreaEstimator, CellEffectiveAreaGrowsTowardCenter) {
  // The paper's key dynamic property: moving a cell from a corner to the
  // center increases its effective (expanded) area.
  const Netlist nl = simple_circuit();
  DynamicAreaEstimator est(nl);
  const Rect core = est.compute_initial_core();
  const auto at_center = est.side_expansions(0, 0, Orient::N, Point{0, 0});
  const auto at_corner =
      est.side_expansions(0, 0, Orient::N, Point{core.xlo, core.ylo});
  Coord sum_center = 0, sum_corner = 0;
  for (int s = 0; s < 4; ++s) {
    sum_center += at_center[static_cast<std::size_t>(s)];
    sum_corner += at_corner[static_cast<std::size_t>(s)];
  }
  EXPECT_GT(sum_center, sum_corner);
}

TEST(AreaEstimator, OrientationRotatesPinDensity) {
  const Netlist nl = simple_circuit();
  DynamicAreaEstimator est(nl);
  est.compute_initial_core();
  // Under a 90-degree CCW rotation (W), the dense local Right side faces up.
  const auto n_exp = est.side_expansions(0, 0, Orient::N, Point{0, 0});
  const auto w_exp = est.side_expansions(0, 0, Orient::W, Point{0, 0});
  // N: dense side = right (index 1). W: dense side = top (index 3).
  EXPECT_EQ(n_exp[1], w_exp[3]);
  EXPECT_GE(n_exp[1], n_exp[0]);
}

TEST(AreaEstimator, NominalExpansionMatchesEqn5) {
  const Netlist nl = generate_circuit(tiny_circuit());
  DynamicAreaEstimator est(nl);
  est.compute_initial_core();
  const double expected =
      0.5 * est.channel_width() / est.modulation().alpha() *
      est.modulation().mx * est.modulation().my;
  EXPECT_DOUBLE_EQ(est.nominal_expansion(), expected);
}

TEST(AreaEstimator, ExpectedExpansionIsHalfChannelWidth) {
  // Property behind the alpha normalization: averaged over uniformly random
  // positions, e_w ~= 0.5 * C_W (for f_rp = 1 edges).
  const Netlist nl = generate_circuit(tiny_circuit(7));
  DynamicAreaEstimator est(nl);
  const Rect core = est.compute_initial_core();
  // Pick a side with f_rp == 1.
  CellId cell = kInvalidCell;
  Side side = Side::kLeft;
  for (const auto& c : nl.cells()) {
    for (Side s : {Side::kLeft, Side::kRight, Side::kBottom, Side::kTop})
      if (est.pin_density_factor(c.id, 0, s) == 1.0) {
        cell = c.id;
        side = s;
        break;
      }
    if (cell != kInvalidCell) break;
  }
  ASSERT_NE(cell, kInvalidCell);

  Rng rng(3);
  double sum = 0.0;
  const int samples = 4000;
  for (int i = 0; i < samples; ++i) {
    const Point p{rng.uniform_int(core.xlo, core.xhi),
                  rng.uniform_int(core.ylo, core.yhi)};
    sum += static_cast<double>(est.edge_expansion(cell, 0, Orient::N, side, p));
  }
  const double mean = sum / samples;
  // ceil() rounding biases up by < 0.5 grid units.
  EXPECT_NEAR(mean, 0.5 * est.channel_width(), 0.5 + 0.05 * est.channel_width());
}

}  // namespace
}  // namespace tw
