// Tests for rectilinear polygon decomposition and exposed-edge extraction
// (the cell-contour machinery behind the estimator and channel definition).
#include <gtest/gtest.h>

#include <algorithm>

#include "geom/polygon.hpp"

namespace tw {
namespace {

Coord edge_length_total(const std::vector<BoundaryEdge>& edges, Side s) {
  Coord sum = 0;
  for (const auto& e : edges)
    if (e.side == s) sum += e.length();
  return sum;
}

TEST(Decompose, RectangleIsOneTile) {
  const auto tiles =
      decompose_rectilinear({{0, 0}, {10, 0}, {10, 5}, {0, 5}});
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], (Rect{0, 0, 10, 5}));
}

TEST(Decompose, RectangleClockwiseAlsoWorks) {
  const auto tiles =
      decompose_rectilinear({{0, 0}, {0, 5}, {10, 5}, {10, 0}});
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], (Rect{0, 0, 10, 5}));
}

TEST(Decompose, LShape) {
  // 10x10 with the top-right 5x5 removed: area 75.
  const auto tiles = decompose_rectilinear(
      {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  EXPECT_EQ(total_area(tiles), 75);
  for (std::size_t i = 0; i < tiles.size(); ++i)
    for (std::size_t j = i + 1; j < tiles.size(); ++j)
      EXPECT_FALSE(tiles[i].overlaps(tiles[j]));
}

TEST(Decompose, TShape) {
  // A T: 12-wide bar on top of a 4-wide stem.
  const auto tiles = decompose_rectilinear({{4, 0},
                                            {8, 0},
                                            {8, 6},
                                            {12, 6},
                                            {12, 10},
                                            {0, 10},
                                            {0, 6},
                                            {4, 6}});
  EXPECT_EQ(total_area(tiles), 4 * 6 + 12 * 4);
}

TEST(Decompose, RejectsDegenerateInput) {
  EXPECT_THROW(decompose_rectilinear({{0, 0}, {1, 0}}), std::invalid_argument);
  EXPECT_THROW(decompose_rectilinear({{0, 0}, {5, 3}, {5, 5}, {0, 5}}),
               std::invalid_argument);  // diagonal edge
  EXPECT_THROW(
      decompose_rectilinear({{0, 0}, {0, 0}, {5, 0}, {5, 5}, {0, 5}}),
      std::invalid_argument);  // zero-length edge
}

TEST(SubtractSpans, Cases) {
  const Span base{0, 10};
  EXPECT_EQ(subtract_spans(base, {}), (std::vector<Span>{{0, 10}}));
  EXPECT_TRUE(subtract_spans(base, {{0, 10}}).empty());
  EXPECT_EQ(subtract_spans(base, {{3, 5}}),
            (std::vector<Span>{{0, 3}, {5, 10}}));
  EXPECT_EQ(subtract_spans(base, {{-5, 2}, {8, 15}}),
            (std::vector<Span>{{2, 8}}));
  // Overlapping covers merge.
  EXPECT_EQ(subtract_spans(base, {{1, 4}, {3, 6}}),
            (std::vector<Span>{{0, 1}, {6, 10}}));
  // Covers outside the base are ignored.
  EXPECT_EQ(subtract_spans(base, {{20, 30}}), (std::vector<Span>{{0, 10}}));
}

TEST(ExposedEdges, SingleRect) {
  const auto edges = exposed_edges({Rect{0, 0, 10, 5}});
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edge_length_total(edges, Side::kLeft), 5);
  EXPECT_EQ(edge_length_total(edges, Side::kRight), 5);
  EXPECT_EQ(edge_length_total(edges, Side::kBottom), 10);
  EXPECT_EQ(edge_length_total(edges, Side::kTop), 10);
}

TEST(ExposedEdges, TwoAbuttingTilesHideSharedEdge) {
  // Two 5x5 tiles side by side: shared edge at x=5 not exposed.
  const auto edges = exposed_edges({{0, 0, 5, 5}, {5, 0, 10, 5}});
  EXPECT_EQ(exposed_perimeter({{0, 0, 5, 5}, {5, 0, 10, 5}}), 2 * 10 + 2 * 5);
  for (const auto& e : edges) {
    const bool shared_line = is_vertical(e.side) && e.pos == 5;
    EXPECT_FALSE(shared_line) << "shared edge leaked at x=5";
  }
}

TEST(ExposedEdges, PartialAbutment) {
  // Second tile abuts only the lower half of the first tile's right side.
  const auto edges = exposed_edges({{0, 0, 5, 10}, {5, 0, 8, 5}});
  // Right side of tile 1 exposed only for y in [5,10].
  Coord right_at_5 = 0;
  for (const auto& e : edges)
    if (e.side == Side::kRight && e.pos == 5) right_at_5 += e.length();
  EXPECT_EQ(right_at_5, 5);
}

TEST(ExposedEdges, LShapePerimeter) {
  const auto tiles = decompose_rectilinear(
      {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  // L perimeter: 10+5+5+5+5+10 = 40.
  EXPECT_EQ(exposed_perimeter(tiles), 40);
}

TEST(ExposedEdges, CollinearSegmentsMerged) {
  // Two stacked tiles with identical x-range: left side merges into one edge.
  const auto edges = exposed_edges({{0, 0, 5, 5}, {0, 5, 5, 9}});
  int left_edges = 0;
  for (const auto& e : edges)
    if (e.side == Side::kLeft) {
      ++left_edges;
      EXPECT_EQ(e.span, (Span{0, 9}));
    }
  EXPECT_EQ(left_edges, 1);
}

TEST(ExposedEdges, MidpointOnEdge) {
  const BoundaryEdge v{Side::kLeft, 3, {0, 10}};
  EXPECT_EQ(v.midpoint(), (Point{3, 5}));
  const BoundaryEdge h{Side::kTop, 7, {2, 6}};
  EXPECT_EQ(h.midpoint(), (Point{4, 7}));
}

TEST(Side, OppositeAndStrings) {
  EXPECT_EQ(opposite(Side::kLeft), Side::kRight);
  EXPECT_EQ(opposite(Side::kTop), Side::kBottom);
  EXPECT_STREQ(to_string(Side::kBottom), "bottom");
  EXPECT_TRUE(is_vertical(Side::kLeft));
  EXPECT_FALSE(is_vertical(Side::kTop));
}

TEST(Decompose, DecompositionMatchesExposedEdgesOfPolygon) {
  // Property: decomposing and re-deriving the perimeter gives the polygon's
  // own perimeter for a staircase shape.
  const auto tiles = decompose_rectilinear({{0, 0},
                                            {6, 0},
                                            {6, 2},
                                            {4, 2},
                                            {4, 4},
                                            {2, 4},
                                            {2, 6},
                                            {0, 6}});
  // Staircase perimeter: 6+2+2+2+2+2+2+6 = 24.
  EXPECT_EQ(exposed_perimeter(tiles), 24);
  EXPECT_EQ(total_area(tiles), 6 * 2 + 4 * 2 + 2 * 2);
}

}  // namespace
}  // namespace tw
