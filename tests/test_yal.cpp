// Tests for the YAL (MCNC macro benchmark format) reader/writer.
#include <gtest/gtest.h>

#include "flow/timberwolf.hpp"
#include "netlist/yal.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

const char* kSample = R"(
/* A minimal apte-style example. */
MODULE alu;
  TYPE GENERAL;
  DIMENSIONS 0 0 100 0 100 60 0 60;
  IOLIST;
    a B 0 30 1 PDIFF;
    b B 100 30 1 PDIFF;
    ck I 50 0 1 METAL1;
    vdd PWR 50 60 4 METAL2;
  ENDIOLIST;
ENDMODULE;

MODULE ram;
  TYPE GENERAL;
  DIMENSIONS 0 0 80 0 80 80 40 80 40 120 0 120;
  IOLIST;
    d B 80 40;
    ck I 40 0;
  ENDIOLIST;
ENDMODULE;

MODULE chip;
  TYPE PARENT;
  DIMENSIONS 0 0 500 0 500 500 0 500;
  IOLIST;
  ENDIOLIST;
  NETWORK;
    u_alu0 alu busA busB clk VDD;
    u_alu1 alu busB busA clk VDD;
    u_ram0 ram busA clk;
  ENDNETWORK;
ENDMODULE;
)";

TEST(Yal, ParsesSample) {
  const Netlist nl = parse_yal_string(kSample);
  EXPECT_EQ(nl.num_cells(), 3u);
  // Nets: busA (3 pins), busB (2), clk (3); VDD filtered as power.
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.num_pins(), 8u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Yal, RectilinearOutlineDecomposed) {
  const Netlist nl = parse_yal_string(kSample);
  // u_ram0 is the L-shaped module: area 80*80 + 40*40.
  bool found = false;
  for (const auto& c : nl.cells())
    if (c.name == "u_ram0") {
      found = true;
      EXPECT_EQ(c.instances.front().area(), 80 * 80 + 40 * 40);
      EXPECT_GT(c.instances.front().tiles.size(), 1u);
    }
  EXPECT_TRUE(found);
}

TEST(Yal, PinPositionsPreserved) {
  const Netlist nl = parse_yal_string(kSample);
  for (const auto& c : nl.cells()) {
    if (c.name != "u_alu0") continue;
    const CellInstance& inst = c.instances.front();
    ASSERT_EQ(c.pins.size(), 3u);  // a, b, ck (vdd filtered)
    EXPECT_EQ(inst.pin_offsets[0], (Point{0, 30}));
    EXPECT_EQ(inst.pin_offsets[1], (Point{100, 30}));
    EXPECT_EQ(inst.pin_offsets[2], (Point{50, 0}));
  }
}

TEST(Yal, PositionalSignalBinding) {
  const Netlist nl = parse_yal_string(kSample);
  // u_alu1 binds busB to terminal 'a' and busA to 'b' (swapped).
  for (const auto& c : nl.cells()) {
    if (c.name != "u_alu1") continue;
    const Pin& a = nl.pin(c.pins[0]);
    EXPECT_EQ(a.name, "a");
    EXPECT_EQ(nl.net(a.net).name, "busB");
  }
}

TEST(Yal, PowerFilteringConfigurable) {
  YalOptions opts;
  opts.power_names.clear();
  opts.drop_singleton_nets = false;
  const Netlist nl = parse_yal_string(kSample, opts);
  // VDD now kept: one more net, two more pins.
  EXPECT_EQ(nl.num_nets(), 4u);
  EXPECT_EQ(nl.num_pins(), 10u);
}

TEST(Yal, SingletonNetsDropped) {
  const char* text = R"(
MODULE m; TYPE GENERAL;
  DIMENSIONS 0 0 10 0 10 10 0 10;
  IOLIST; p B 5 0; q B 5 10; ENDIOLIST;
ENDMODULE;
MODULE chip; TYPE PARENT;
  DIMENSIONS 0 0 99 0 99 99 0 99;
  IOLIST; ENDIOLIST;
  NETWORK;
    u0 m shared lonely;
    u1 m shared other;
    u2 m other dangling;
  ENDNETWORK;
ENDMODULE;
)";
  const Netlist nl = parse_yal_string(text);
  // "lonely" and "dangling" have fanout 1 and are dropped.
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_EQ(nl.num_pins(), 4u);
}

TEST(Yal, ErrorsCarryLineNumbers) {
  try {
    parse_yal_string("MODULE m;\n  TYPE GENERAL;\n  BOGUS;\nENDMODULE;\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Yal, RejectsStructuralErrors) {
  EXPECT_THROW(parse_yal_string("MODULE m; TYPE GENERAL; ENDMODULE;"),
               std::runtime_error);  // no PARENT
  EXPECT_THROW(parse_yal_string(R"(
MODULE chip; TYPE PARENT;
  NETWORK; u0 missing a b; ENDNETWORK;
ENDMODULE;)"),
               std::runtime_error);  // unknown module
  EXPECT_THROW(parse_yal_string(R"(
MODULE m; TYPE GENERAL;
  DIMENSIONS 0 0 10 0 10 10 0 10;
  IOLIST; p B 5 0; ENDIOLIST;
ENDMODULE;
MODULE chip; TYPE PARENT;
  DIMENSIONS 0 0 9 0 9 9 0 9;
  IOLIST; ENDIOLIST;
  NETWORK; u0 m a b c; ENDNETWORK;
ENDMODULE;)"),
               std::runtime_error);  // arity mismatch
}

TEST(Yal, CommentsSkipped) {
  const Netlist nl = parse_yal_string(kSample);  // kSample starts with one
  EXPECT_EQ(nl.num_cells(), 3u);
}

TEST(Yal, WriterRoundTrip) {
  const Netlist original = generate_circuit(tiny_circuit(9));
  const std::string yal = write_yal(original, "tiny");
  YalOptions opts;
  opts.drop_singleton_nets = false;
  const Netlist back = parse_yal_string(yal, opts);
  EXPECT_EQ(back.num_cells(), original.num_cells());
  EXPECT_EQ(back.num_nets(), original.num_nets());
  EXPECT_EQ(back.num_pins(), original.num_pins());
  // Per-cell bounding boxes survive (custom cells realized at their
  // initial geometry).
  for (std::size_t c = 0; c < original.num_cells(); ++c) {
    const CellInstance& a = original.cell(static_cast<CellId>(c)).instances.front();
    const CellInstance& b = back.cell(static_cast<CellId>(c)).instances.front();
    EXPECT_EQ(a.width, b.width) << c;
    EXPECT_EQ(a.height, b.height) << c;
  }
}

TEST(Yal, ParsedCircuitRunsThroughTheFlow) {
  const Netlist nl = parse_yal_string(kSample);
  FlowParams params;
  params.stage1.attempts_per_cell = 20;
  params.stage1.p2_samples = 6;
  params.stage2.attempts_per_cell = 8;
  params.stage2.router.steiner.m = 3;
  TimberWolfMC flow(nl, params);
  Placement placement(nl);
  const FlowResult r = flow.run(placement);
  EXPECT_GT(r.final_teil, 0.0);
  EXPECT_GT(r.final_chip_area, 0);
}

}  // namespace
}  // namespace tw
