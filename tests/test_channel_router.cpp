// Tests for the left-edge channel router and the Eqn 22 validation
// (t <= d + 1 track need per channel).
#include <gtest/gtest.h>

#include "channel/channel_graph.hpp"
#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "route/channel_router.hpp"
#include "route/interchange.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

std::vector<ChannelSegment> segs(
    std::initializer_list<std::pair<int, Span>> list) {
  std::vector<ChannelSegment> out;
  for (const auto& [net, span] : list) out.push_back({net, span});
  return out;
}

TEST(ChannelDensity, BasicCases) {
  EXPECT_EQ(channel_density({}), 0);
  EXPECT_EQ(channel_density(segs({{0, {0, 10}}})), 1);
  // Two disjoint nets: density 1.
  EXPECT_EQ(channel_density(segs({{0, {0, 5}}, {1, {6, 10}}})), 1);
  // Two overlapping nets: density 2.
  EXPECT_EQ(channel_density(segs({{0, {0, 6}}, {1, {4, 10}}})), 2);
  // Touching nets do not stack (the via sits between them).
  EXPECT_EQ(channel_density(segs({{0, {0, 5}}, {1, {5, 10}}})), 1);
}

TEST(ChannelDensity, SameNetCountsOnce) {
  EXPECT_EQ(channel_density(segs({{0, {0, 6}}, {0, {4, 10}}})), 1);
  EXPECT_EQ(channel_density(segs({{0, {0, 6}}, {0, {4, 10}}, {1, {2, 8}}})), 2);
}

TEST(ChannelDensity, ClassicStack) {
  // Three mutually overlapping nets.
  EXPECT_EQ(
      channel_density(segs({{0, {0, 10}}, {1, {2, 8}}, {2, {4, 6}}})), 3);
}

TEST(LeftEdge, UsesExactlyDensityTracks) {
  const auto cases = {
      segs({{0, {0, 10}}, {1, {2, 8}}, {2, {4, 6}}}),
      segs({{0, {0, 5}}, {1, {5, 10}}, {2, {0, 10}}}),
      segs({{0, {0, 3}}, {1, {2, 5}}, {2, {4, 7}}, {3, {6, 9}}}),
      segs({{0, {0, 2}}, {1, {3, 5}}, {2, {6, 8}}}),
  };
  for (const auto& c : cases) {
    const ChannelRouteResult r = route_channel(c);
    EXPECT_EQ(r.tracks_used, r.density);
  }
}

TEST(LeftEdge, AssignmentIsConflictFree) {
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<ChannelSegment> s;
    const int n = static_cast<int>(rng.uniform_int(2, 24));
    for (int i = 0; i < n; ++i) {
      const Coord lo = rng.uniform_int(0, 80);
      const Coord hi = lo + rng.uniform_int(1, 30);
      s.push_back({static_cast<std::int32_t>(rng.uniform_int(0, 9)), {lo, hi}});
    }
    const ChannelRouteResult r = route_channel(s);
    // No two distinct nets on one track with overlapping interiors.
    for (std::size_t a = 0; a < s.size(); ++a)
      for (std::size_t b = a + 1; b < s.size(); ++b) {
        if (r.track[a] != r.track[b]) continue;
        if (s[a].net == s[b].net) continue;
        EXPECT_EQ(s[a].extent.overlap(s[b].extent), 0)
            << "trial " << trial << ": nets " << s[a].net << "/" << s[b].net;
      }
    // Left-edge without vertical constraints is optimal.
    EXPECT_EQ(r.tracks_used, r.density) << "trial " << trial;
  }
}

TEST(LeftEdge, SameNetSharesTrack) {
  const auto s = segs({{0, {0, 6}}, {0, {4, 10}}});
  const ChannelRouteResult r = route_channel(s);
  EXPECT_EQ(r.track[0], r.track[1]);
  EXPECT_EQ(r.tracks_used, 1);
}

TEST(LeftEdge, EmptyChannel) {
  const ChannelRouteResult r = route_channel({});
  EXPECT_EQ(r.tracks_used, 0);
  EXPECT_EQ(r.density, 0);
  EXPECT_TRUE(r.track.empty());
}

TEST(Eqn22, RoutedChannelsFitWithinDPlusOneTracks) {
  // End to end: place, route, and verify every channel's track need is
  // within the d + 1 bound the Eqn 22 width rule assumes.
  const Netlist nl = generate_circuit(tiny_circuit(6));
  Stage1Params params;
  params.attempts_per_cell = 15;
  params.p2_samples = 8;
  Stage1Placer placer(nl, params, 21);
  Placement placement(nl);
  const Stage1Result s1 = placer.run(placement);
  legalize_spread(placement, s1.core, 2 * nl.tech().track_separation);
  const ChannelGraph cg = build_channel_graph(placement, s1.core);
  GlobalRouter router(cg.graph, {{4, 12}, 3});
  const auto routed = router.route(build_net_targets(nl, cg));
  std::vector<std::vector<EdgeId>> route_edges(nl.num_nets());
  for (std::size_t n = 0; n < route_edges.size(); ++n)
    if (const Route* r = routed.route_of(n)) route_edges[n] = r->edges;
  EXPECT_EQ(validate_channel_widths(cg, route_edges), 0);
}

}  // namespace
}  // namespace tw
