// Tests for the annealing framework: Tables 1-2 cooling schedules, the S_T
// temperature scaling (Eqns 19-21), the range limiter (Eqns 12-14), the
// displacement selectors (D_s / D_r), and the Metropolis rule.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "anneal/displacement.hpp"
#include "anneal/range_limiter.hpp"
#include "anneal/schedule.hpp"

namespace tw {
namespace {

TEST(Schedule, Table1Entries) {
  const CoolingSchedule s = CoolingSchedule::stage1();
  // S_T = 1: thresholds apply directly.
  EXPECT_DOUBLE_EQ(s.alpha_at(1e5, 1.0), 0.85);
  EXPECT_DOUBLE_EQ(s.alpha_at(7000.0, 1.0), 0.85);
  EXPECT_DOUBLE_EQ(s.alpha_at(6999.0, 1.0), 0.92);
  EXPECT_DOUBLE_EQ(s.alpha_at(200.0, 1.0), 0.92);
  EXPECT_DOUBLE_EQ(s.alpha_at(199.0, 1.0), 0.85);
  EXPECT_DOUBLE_EQ(s.alpha_at(10.0, 1.0), 0.85);
  EXPECT_DOUBLE_EQ(s.alpha_at(9.9, 1.0), 0.80);
}

TEST(Schedule, Table2Entries) {
  const CoolingSchedule s = CoolingSchedule::stage2();
  EXPECT_DOUBLE_EQ(s.alpha_at(100.0, 1.0), 0.82);
  EXPECT_DOUBLE_EQ(s.alpha_at(10.0, 1.0), 0.82);
  EXPECT_DOUBLE_EQ(s.alpha_at(9.0, 1.0), 0.70);
}

TEST(Schedule, ScaleShiftsThresholds) {
  const CoolingSchedule s = CoolingSchedule::stage1();
  // With S_T = 10, the 200 threshold sits at 2000.
  EXPECT_DOUBLE_EQ(s.alpha_at(2000.0, 10.0), 0.92);
  EXPECT_DOUBLE_EQ(s.alpha_at(1999.0, 10.0), 0.85);
}

TEST(Schedule, NextMultiplies) {
  const CoolingSchedule s = CoolingSchedule::stage1();
  EXPECT_DOUBLE_EQ(s.next(1000.0, 1.0), 920.0);
}

TEST(Schedule, TemperatureScaling) {
  // Eqns 19-21: a 25-cell circuit with avg effective cell area 1e4 gets
  // T_inf = 1e5; areas scale linearly.
  EXPECT_DOUBLE_EQ(temperature_scale(1e4), 1.0);
  EXPECT_DOUBLE_EQ(t_infinity(temperature_scale(1e4)), 1e5);
  EXPECT_DOUBLE_EQ(t_infinity(temperature_scale(2e4)), 2e5);
}

TEST(Schedule, ValidatesStepLists) {
  EXPECT_THROW(CoolingSchedule({}), std::invalid_argument);
  EXPECT_THROW(CoolingSchedule({{100.0, 0.9}}), std::invalid_argument);
  EXPECT_THROW(CoolingSchedule({{0.0, 1.5}}), std::invalid_argument);
  EXPECT_THROW(CoolingSchedule({{10.0, 0.9}, {10.0, 0.8}, {0.0, 0.7}}),
               std::invalid_argument);
}

TEST(Schedule, RoughlyPaperStepCountOverSixDecades) {
  // The paper considers ~120 temperature values over ~6 decades.
  const CoolingSchedule s = CoolingSchedule::stage1();
  double t = 1e5;
  int steps = 0;
  while (t > 0.1 && steps < 1000) {
    t = s.next(t, 1.0);
    ++steps;
  }
  EXPECT_GT(steps, 80);
  EXPECT_LT(steps, 180);
}

TEST(Metropolis, DownhillAlwaysAccepted) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(metropolis_accept(-1.0, 1.0, rng));
    EXPECT_TRUE(metropolis_accept(0.0, 1.0, rng));
  }
}

TEST(Metropolis, UphillRateMatchesBoltzmann) {
  Rng rng(2);
  const double dc = 2.0, t = 4.0;
  int acc = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i)
    if (metropolis_accept(dc, t, rng)) ++acc;
  EXPECT_NEAR(static_cast<double>(acc) / n, std::exp(-dc / t), 0.01);
}

TEST(Metropolis, ZeroTemperatureRejectsUphill) {
  Rng rng(3);
  EXPECT_FALSE(metropolis_accept(1.0, 0.0, rng));
  EXPECT_TRUE(metropolis_accept(-1.0, 0.0, rng));
}

TEST(RangeLimiter, FullWindowAtTInfinity) {
  RangeLimiter rl(1000, 600, 1e5, 4.0);
  EXPECT_EQ(rl.window_x(1e5), 1000);
  EXPECT_EQ(rl.window_y(1e5), 600);
  EXPECT_FALSE(rl.at_minimum(1e5));
}

TEST(RangeLimiter, MonotoneShrinkWithT) {
  RangeLimiter rl(1000, 600, 1e5, 4.0);
  Coord prev = rl.window_x(1e5);
  for (double t = 1e5; t > 0.1; t *= 0.8) {
    const Coord w = rl.window_x(t);
    EXPECT_LE(w, prev);
    prev = w;
  }
}

TEST(RangeLimiter, ReachesMinimumSpan) {
  RangeLimiter rl(1000, 600, 1e5, 4.0);
  EXPECT_TRUE(rl.at_minimum(0.01));
  EXPECT_EQ(rl.window_x(0.01), 6);
  EXPECT_EQ(rl.window_y(0.01), 6);
}

TEST(RangeLimiter, MatchesEqn12) {
  // W_x(T) = W_inf * rho^log10(T) / rho^log10(T_inf).
  const double rho = 4.0, t_inf = 1e5;
  RangeLimiter rl(1000, 1000, t_inf, rho);
  for (double t : {1e4, 1e3, 1e2}) {
    const double expect =
        1000.0 * std::pow(rho, std::log10(t)) / std::pow(rho, std::log10(t_inf));
    EXPECT_NEAR(static_cast<double>(rl.window_x(t)), expect, 1.0) << t;
  }
}

TEST(RangeLimiter, RhoOneNeverShrinks) {
  RangeLimiter rl(1000, 600, 1e5, 1.0);
  EXPECT_EQ(rl.window_x(0.1), 1000);
  EXPECT_FALSE(rl.at_minimum(0.1));
}

TEST(RangeLimiter, LargerRhoShrinksFaster) {
  RangeLimiter slow(1000, 1000, 1e5, 2.0);
  RangeLimiter fast(1000, 1000, 1e5, 8.0);
  EXPECT_LT(fast.window_x(1e3), slow.window_x(1e3));
}

TEST(RangeLimiter, WindowCenteredOnCell) {
  RangeLimiter rl(100, 60, 1e5, 4.0);
  const Rect w = rl.window(Point{10, 20}, 1e5);
  EXPECT_EQ(w.center(), (Point{10, 20}));
  EXPECT_EQ(w.width(), 100);
  EXPECT_EQ(w.height(), 60);
}

TEST(RangeLimiter, Validation) {
  EXPECT_THROW(RangeLimiter(4, 100, 1e5, 4.0), std::invalid_argument);
  EXPECT_THROW(RangeLimiter(100, 100, 0.0, 4.0), std::invalid_argument);
  EXPECT_THROW(RangeLimiter(100, 100, 1e5, 0.5), std::invalid_argument);
  EXPECT_THROW(RangeLimiter(100, 100, 1e5, 11.0), std::invalid_argument);
}

TEST(Displacement, NeverZero) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Point d = select_displacement(rng, 60, 60, PointSelect::kStructured);
    EXPECT_FALSE(d.x == 0 && d.y == 0);
    const Point r = select_displacement(rng, 60, 60, PointSelect::kRandom);
    EXPECT_FALSE(r.x == 0 && r.y == 0);
  }
}

TEST(Displacement, StructuredHits48Points) {
  Rng rng(6);
  std::set<std::pair<Coord, Coord>> pts;
  for (int i = 0; i < 5000; ++i) {
    const Point d = select_displacement(rng, 60, 60, PointSelect::kStructured);
    pts.insert({d.x, d.y});
  }
  EXPECT_EQ(pts.size(), 48u);  // 7x7 lattice minus the origin
}

TEST(Displacement, StructuredStepsAreMultiples) {
  Rng rng(7);
  const Coord step = 60 / 6;
  for (int i = 0; i < 500; ++i) {
    const Point d = select_displacement(rng, 60, 60, PointSelect::kStructured);
    EXPECT_EQ(d.x % step, 0);
    EXPECT_EQ(d.y % step, 0);
    EXPECT_LE(std::abs(d.x), 30);
    EXPECT_LE(std::abs(d.y), 30);
  }
}

TEST(Displacement, MinimumWindowUnitSteps) {
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const Point d = select_displacement(rng, 6, 6, PointSelect::kStructured);
    EXPECT_LE(std::abs(d.x), 3);
    EXPECT_LE(std::abs(d.y), 3);
  }
}

TEST(Displacement, RandomStaysInWindow) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const Point d = select_displacement(rng, 100, 40, PointSelect::kRandom);
    EXPECT_LE(std::abs(d.x), 50);
    EXPECT_LE(std::abs(d.y), 20);
  }
}

TEST(Displacement, RandomCoversMorePointsThanStructured) {
  Rng rng(10);
  std::set<std::pair<Coord, Coord>> structured, random;
  for (int i = 0; i < 4000; ++i) {
    const Point s = select_displacement(rng, 60, 60, PointSelect::kStructured);
    structured.insert({s.x, s.y});
    const Point r = select_displacement(rng, 60, 60, PointSelect::kRandom);
    random.insert({r.x, r.y});
  }
  EXPECT_GT(random.size(), structured.size() * 10);
}

}  // namespace
}  // namespace tw
