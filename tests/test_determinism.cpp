// Determinism regression: the full stochastic pipeline — stage 1 anneal,
// stage 2 refinement (which runs the global router every pass) — must be a
// pure function of (netlist, parameters, master seed). Two runs with the
// same seed must agree byte for byte on every piece of placement state and
// every reported metric; hidden nondeterminism (wall-clock seeding,
// iteration over address-keyed containers, uninitialized reads) breaks
// this immediately.
#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>

#include "flow/timberwolf.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

FlowParams fast_flow(std::uint64_t seed) {
  FlowParams p;
  p.stage1.attempts_per_cell = 12;
  p.stage1.p2_samples = 6;
  p.stage2.attempts_per_cell = 8;
  p.stage2.router.steiner.m = 4;
  p.seed = seed;
  return p;
}

/// Serializes everything a run produced. Doubles are printed as hexfloat,
/// so two fingerprints compare equal only when every bit of every value
/// matches.
std::string fingerprint(const Placement& p, const FlowResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  const auto n = static_cast<CellId>(p.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    const CellState& s = p.state(c);
    os << "cell " << c << ": (" << s.center.x << "," << s.center.y << ") o"
       << static_cast<int>(s.orient) << " i" << s.instance << " a"
       << s.aspect << " sites[";
    for (int site : s.pin_site) os << site << ",";
    os << "] occ[";
    for (int occ : s.site_occupancy) os << occ << ",";
    os << "]\n";
  }
  os << "teil " << r.final_teil << " s1 " << r.stage1_teil << "\n";
  os << "area " << r.final_chip_area << " bbox " << r.final_chip_bbox.xlo
     << "," << r.final_chip_bbox.ylo << "," << r.final_chip_bbox.xhi
     << "," << r.final_chip_bbox.yhi << "\n";
  for (const auto& pass : r.stage2.passes)
    os << "pass: overflow " << pass.route_overflow << " unrouted "
       << pass.unrouted_nets << " wrv " << pass.width_rule_violations
       << "\n";
  return os.str();
}

TEST(Determinism, SameSeedSameBytes) {
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Placement p1(nl), p2(nl);
  const FlowResult r1 = TimberWolfMC(nl, fast_flow(77)).run(p1);
  const FlowResult r2 = TimberWolfMC(nl, fast_flow(77)).run(p2);
  EXPECT_EQ(fingerprint(p1, r1), fingerprint(p2, r2));
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Not a strict requirement of correctness, but if two different master
  // seeds yield bit-identical runs the seed is not actually being threaded
  // into the annealer.
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Placement p1(nl), p2(nl);
  const FlowResult r1 = TimberWolfMC(nl, fast_flow(77)).run(p1);
  const FlowResult r2 = TimberWolfMC(nl, fast_flow(78)).run(p2);
  EXPECT_NE(fingerprint(p1, r1), fingerprint(p2, r2));
}

TEST(Determinism, Stage1EntryPointDeterministic) {
  const Netlist nl = generate_circuit(tiny_circuit(22));
  Placement p1(nl), p2(nl);
  TimberWolfMC f1(nl, fast_flow(5)), f2(nl, fast_flow(5));
  const Stage1Result r1 = f1.run_stage1(p1);
  const Stage1Result r2 = f2.run_stage1(p2);
  EXPECT_EQ(r1.final_teil, r2.final_teil);
  EXPECT_EQ(r1.temperature_steps, r2.temperature_steps);
  const auto n = static_cast<CellId>(nl.num_cells());
  for (CellId c = 0; c < n; ++c) {
    EXPECT_EQ(p1.state(c).center, p2.state(c).center) << "cell " << c;
    EXPECT_EQ(p1.state(c).orient, p2.state(c).orient) << "cell " << c;
  }
}

}  // namespace
}  // namespace tw
