// Determinism regression: the full stochastic pipeline — stage 1 anneal,
// stage 2 refinement (which runs the global router every pass) — must be a
// pure function of (netlist, parameters, master seed). Two runs with the
// same seed must agree byte for byte on every piece of placement state and
// every reported metric; hidden nondeterminism (wall-clock seeding,
// iteration over address-keyed containers, uninitialized reads) breaks
// this immediately. The fingerprint itself lives in tests/fingerprint.hpp,
// shared with the crash-recovery suite (test_resume.cpp).
#include <gtest/gtest.h>

#include "fingerprint.hpp"
#include "flow/timberwolf.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

using testing::fast_flow;
using testing::fingerprint;

TEST(Determinism, SameSeedSameBytes) {
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Placement p1(nl), p2(nl);
  const FlowResult r1 = TimberWolfMC(nl, fast_flow(77)).run(p1);
  const FlowResult r2 = TimberWolfMC(nl, fast_flow(77)).run(p2);
  EXPECT_EQ(fingerprint(p1, r1), fingerprint(p2, r2));
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Not a strict requirement of correctness, but if two different master
  // seeds yield bit-identical runs the seed is not actually being threaded
  // into the annealer.
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Placement p1(nl), p2(nl);
  const FlowResult r1 = TimberWolfMC(nl, fast_flow(77)).run(p1);
  const FlowResult r2 = TimberWolfMC(nl, fast_flow(78)).run(p2);
  EXPECT_NE(fingerprint(p1, r1), fingerprint(p2, r2));
}

TEST(Determinism, Stage1EntryPointDeterministic) {
  const Netlist nl = generate_circuit(tiny_circuit(22));
  Placement p1(nl), p2(nl);
  TimberWolfMC f1(nl, fast_flow(5)), f2(nl, fast_flow(5));
  const Stage1Result r1 = f1.run_stage1(p1);
  const Stage1Result r2 = f2.run_stage1(p2);
  EXPECT_EQ(r1.final_teil, r2.final_teil);
  EXPECT_EQ(r1.temperature_steps, r2.temperature_steps);
  const auto n = static_cast<CellId>(nl.num_cells());
  for (CellId c = 0; c < n; ++c) {
    EXPECT_EQ(p1.state(c).center, p2.state(c).center) << "cell " << c;
    EXPECT_EQ(p1.state(c).orient, p2.state(c).orient) << "cell " << c;
  }
}

TEST(Determinism, CheckpointingDoesNotPerturbTheRun) {
  // Writing checkpoints must be a pure observer: a run with a checkpoint
  // directory configured produces the same bytes as one without.
  const Netlist nl = generate_circuit(tiny_circuit(21));
  Placement p1(nl), p2(nl);
  const FlowResult r1 = TimberWolfMC(nl, fast_flow(77)).run(p1);
  FlowParams params = fast_flow(77);
  params.recover.checkpoint_dir =
      ::testing::TempDir() + "/tw_ckpt_observer";
  params.recover.checkpoint_every = 2;
  const FlowResult r2 = TimberWolfMC(nl, params).run(p2);
  EXPECT_EQ(fingerprint(p1, r1), fingerprint(p2, r2));
  EXPECT_TRUE(recover::find_latest_checkpoint(params.recover.checkpoint_dir)
                  .has_value());
}

}  // namespace
}  // namespace tw
