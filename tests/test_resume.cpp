// Crash-recovery determinism: kill the flow at an armed poll site via
// FaultPlan, resume from the latest on-disk checkpoint, and require the
// continued run to be byte-identical (hexfloat fingerprint) to the same
// seed run that was never interrupted. This is the strongest statement a
// checkpoint can make: nothing the annealer depends on — RNG stream,
// schedule position, calibrations, incremental cost state — was lost or
// recomputed differently.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "check/validate.hpp"
#include "fingerprint.hpp"
#include "flow/multilevel.hpp"
#include "flow/timberwolf.hpp"
#include "recover/budget.hpp"
#include "recover/checkpoint.hpp"
#include "recover/fault.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

using recover::CheckpointErrc;
using recover::CheckpointError;
using recover::FaultPlan;
using recover::FaultSite;
using recover::FlowCheckpoint;
using recover::InjectedFault;
using recover::RunOutcome;
using testing::fast_flow;
using testing::fingerprint;

constexpr std::uint64_t kSeed = 77;

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

const Netlist& test_netlist() {
  static const Netlist nl = generate_circuit(tiny_circuit(21));
  return nl;
}

/// Fingerprint of the uninterrupted run — the ground truth every resumed
/// run must reproduce.
const std::string& baseline() {
  static const std::string fp = [] {
    Placement p(test_netlist());
    const FlowResult r = TimberWolfMC(test_netlist(), fast_flow(kSeed)).run(p);
    return fingerprint(p, r);
  }();
  return fp;
}

/// Runs the flow with a kill armed at (site, nth), proves the fault fired,
/// resumes from the newest checkpoint, and returns the continuation's
/// fingerprint (asserting its outcome is kResumed).
std::string kill_and_resume(FaultSite site, std::int64_t nth,
                            const std::string& leaf) {
  const std::string dir = fresh_dir(leaf);

  FaultPlan plan;
  plan.kill_at(site, nth);
  FlowParams params = fast_flow(kSeed);
  params.recover.checkpoint_dir = dir;
  params.recover.checkpoint_every = 1;
  params.recover.faults = &plan;

  {
    Placement doomed(test_netlist());
    EXPECT_THROW((void)TimberWolfMC(test_netlist(), params).run(doomed),
                 InjectedFault)
        << "site " << recover::to_string(site) << " poll " << nth
        << " never fired";
  }

  const auto latest = recover::find_latest_checkpoint(dir);
  EXPECT_TRUE(latest.has_value()) << "no checkpoint survived the crash";
  if (!latest) return {};
  const FlowCheckpoint cp = recover::load_checkpoint(*latest);

  FlowParams resume_params = fast_flow(kSeed);
  Placement p(test_netlist());
  const FlowResult r =
      TimberWolfMC(test_netlist(), resume_params).resume(p, cp);
  EXPECT_EQ(r.outcome, RunOutcome::kResumed);
  return fingerprint(p, r);
}

TEST(Resume, Stage1KilledAtEarlyStep) {
  EXPECT_EQ(kill_and_resume(FaultSite::kStage1Step, 1, "tw_res_s1a"),
            baseline());
}

TEST(Resume, Stage1KilledMidSchedule) {
  EXPECT_EQ(kill_and_resume(FaultSite::kStage1Step, 4, "tw_res_s1b"),
            baseline());
}

TEST(Resume, Stage1KilledLate) {
  EXPECT_EQ(kill_and_resume(FaultSite::kStage1Step, 9, "tw_res_s1c"),
            baseline());
}

TEST(Resume, Stage1KilledMidStepAtAnAccept) {
  // Dying between checkpoints loses the partial step; the resume replays
  // it from the last boundary and must still converge to the same bytes.
  EXPECT_EQ(kill_and_resume(FaultSite::kStage1Accept, 100, "tw_res_s1d"),
            baseline());
}

TEST(Resume, Stage2KilledAtFirstStep) {
  EXPECT_EQ(kill_and_resume(FaultSite::kStage2Step, 0, "tw_res_s2a"),
            baseline());
}

TEST(Resume, Stage2KilledLater) {
  EXPECT_EQ(kill_and_resume(FaultSite::kStage2Step, 3, "tw_res_s2b"),
            baseline());
}

TEST(Resume, Stage2KilledAtAPassBoundary) {
  EXPECT_EQ(kill_and_resume(FaultSite::kStage2Pass, 1, "tw_res_s2c"),
            baseline());
}

TEST(Resume, Stage3RoutingKilledAtAnEarlyNet) {
  // Dying inside stage-3 global routing loses the partial pass; the
  // resume replays it from the last checkpointed boundary and must still
  // converge to the same bytes.
  EXPECT_EQ(kill_and_resume(FaultSite::kRouteNet, 2, "tw_res_s3a"),
            baseline());
}

TEST(Resume, Stage3RoutingKilledDeepInThePass) {
  EXPECT_EQ(kill_and_resume(FaultSite::kRouteNet, 8, "tw_res_s3b"),
            baseline());
}

/// Observer for the budget wind-down test: records how much work the
/// budget had charged when stage-3 routing first polled, without ever
/// killing anything.
class RouteBudgetProbe final : public recover::FaultInjector {
 public:
  explicit RouteBudgetProbe(const recover::RunBudget* budget)
      : budget_(budget) {}

  void poll(FaultSite site) override {
    if (site != FaultSite::kRouteNet) return;
    ++route_polls_;
    if (first_route_moves_ < 0)
      first_route_moves_ = budget_->moves_charged();
  }

  std::int64_t first_route_moves() const { return first_route_moves_; }
  std::int64_t route_polls() const { return route_polls_; }

 private:
  const recover::RunBudget* budget_;
  std::int64_t first_route_moves_ = -1;
  std::int64_t route_polls_ = 0;
};

// A work quota that expires while stage-3 routing is under way must wind
// down gracefully: typed kBudgetExhausted outcome and a placement that
// still validates. (No fingerprint claim — budget counters are not part
// of the checkpoint, so a budgeted run is its own reproducible schedule,
// compared against nothing.)
TEST(Resume, BudgetExpiryDuringRoutingWindsDownToAValidPlacement) {
  // Measurement run: where does routing start, in budget-moves terms?
  recover::RunBudget unlimited;
  RouteBudgetProbe probe(&unlimited);
  FlowParams params = fast_flow(kSeed);
  params.recover.budget = &unlimited;
  params.recover.faults = &probe;
  {
    Placement p(test_netlist());
    const FlowResult r = TimberWolfMC(test_netlist(), params).run(p);
    ASSERT_EQ(r.outcome, RunOutcome::kCompleted);
  }
  ASSERT_GT(probe.route_polls(), 0) << "stage 3 never polled";
  ASSERT_GE(probe.first_route_moves(), 0);

  // Budgeted run: the quota lands just past the first routed net, so the
  // exhaustion is observed during (or immediately after) stage-3 work.
  recover::RunBudget budget(probe.first_route_moves() + 50,
                            recover::RunBudget::kUnlimited);
  RouteBudgetProbe confirm(&budget);
  FlowParams capped = fast_flow(kSeed);
  capped.recover.budget = &budget;
  capped.recover.faults = &confirm;
  Placement p(test_netlist());
  const FlowResult r = TimberWolfMC(test_netlist(), capped).run(p);

  EXPECT_EQ(r.outcome, RunOutcome::kBudgetExhausted);
  EXPECT_GT(confirm.route_polls(), 0)
      << "the quota fired before routing ever started";
  EXPECT_GE(budget.moves_charged(), probe.first_route_moves());
  const ValidationReport vr = validate_placement(p);
  EXPECT_TRUE(vr.ok()) << vr.str();
}

// --- multilevel flow --------------------------------------------------------

MultilevelParams fast_multilevel() {
  MultilevelParams p;
  p.refine.attempts_per_cell = 12;
  p.refine.p2_samples = 6;
  p.seed = kSeed;
  return p;
}

Stage1Params fast_coarse() {
  Stage1Params p;
  p.attempts_per_cell = 8;
  p.p2_samples = 6;
  return p;
}

/// Ground truth for the multilevel resume tests: the uninterrupted run.
const std::string& ml_baseline() {
  static const std::string fp = [] {
    ClusterWarmStart warm({}, fast_coarse());
    MultilevelFlow flow(test_netlist(), warm, fast_multilevel());
    Placement p(test_netlist());
    const MultilevelResult r = flow.run(p);
    return fingerprint(p, r);
  }();
  return fp;
}

/// Kill inside the refinement anneal, resume from the newest checkpoint,
/// and require the continuation to be byte-identical to ml_baseline().
/// The warm start (clustering + coarse anneal) is not replayed on resume:
/// its outputs ride in the kMultilevelRefine checkpoint.
std::string ml_kill_and_resume(FaultSite site, std::int64_t nth,
                               const std::string& leaf) {
  const std::string dir = fresh_dir(leaf);

  FaultPlan plan;
  plan.kill_at(site, nth);
  MultilevelParams params = fast_multilevel();
  params.recover.checkpoint_dir = dir;
  params.recover.checkpoint_every = 1;
  params.recover.faults = &plan;

  {
    ClusterWarmStart warm({}, fast_coarse());
    MultilevelFlow doomed_flow(test_netlist(), warm, params);
    Placement doomed(test_netlist());
    EXPECT_THROW((void)doomed_flow.run(doomed), InjectedFault)
        << "site " << recover::to_string(site) << " poll " << nth
        << " never fired";
  }

  const auto latest = recover::find_latest_checkpoint(dir);
  EXPECT_TRUE(latest.has_value()) << "no checkpoint survived the crash";
  if (!latest) return {};
  const FlowCheckpoint cp = recover::load_checkpoint(*latest);
  EXPECT_EQ(cp.phase, recover::FlowPhase::kMultilevelRefine);

  ClusterWarmStart warm({}, fast_coarse());
  MultilevelFlow flow(test_netlist(), warm, fast_multilevel());
  Placement p(test_netlist());
  const MultilevelResult r = flow.resume(p, cp);
  EXPECT_EQ(r.outcome, RunOutcome::kResumed);
  return fingerprint(p, r);
}

TEST(Resume, MultilevelRefineKilledEarly) {
  EXPECT_EQ(ml_kill_and_resume(FaultSite::kStage1Step, 1, "tw_res_mla"),
            ml_baseline());
}

TEST(Resume, MultilevelRefineKilledMidSchedule) {
  EXPECT_EQ(ml_kill_and_resume(FaultSite::kStage1Step, 5, "tw_res_mlb"),
            ml_baseline());
}

TEST(Resume, MultilevelRefineKilledMidStepAtAnAccept) {
  // Dying between checkpoints loses the partial step; the resume replays
  // it from the last boundary and must still converge to the same bytes.
  EXPECT_EQ(ml_kill_and_resume(FaultSite::kStage1Accept, 120, "tw_res_mlc"),
            ml_baseline());
}

TEST(Resume, MultilevelRejectsForeignPhaseCheckpoint) {
  // A stage-1 checkpoint from the classic flow must be refused by the
  // multilevel resume with a typed error, not misinterpreted.
  const std::string dir = fresh_dir("tw_res_mlphase");
  FlowParams params = fast_flow(kSeed);
  params.recover.checkpoint_dir = dir;
  params.recover.checkpoint_every = 1;
  Placement p(test_netlist());
  (void)TimberWolfMC(test_netlist(), params).run(p);
  FlowCheckpoint cp =
      recover::load_checkpoint(*recover::find_latest_checkpoint(dir));
  ASSERT_NE(cp.phase, recover::FlowPhase::kMultilevelRefine);

  ClusterWarmStart warm({}, fast_coarse());
  MultilevelFlow flow(test_netlist(), warm, fast_multilevel());
  Placement p2(test_netlist());
  try {
    (void)flow.resume(p2, cp);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kCorrupt);
  }
}

TEST(Resume, OldCheckpointVersionIsTypedError) {
  // A version-2 file (the pre-multilevel format) must be rejected with
  // kBadVersion by today's reader — no silent migration. The frame CRC
  // only covers the payload, so rewriting the version field alone forges
  // a structurally valid old-version file.
  const std::string dir = fresh_dir("tw_res_oldver");
  FlowParams params = fast_flow(kSeed);
  params.recover.checkpoint_dir = dir;
  params.recover.checkpoint_every = 1;
  Placement p(test_netlist());
  (void)TimberWolfMC(test_netlist(), params).run(p);
  const std::string path = *recover::find_latest_checkpoint(dir);

  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekp(4);  // magic "TWCP" | u32 version | ...
  const std::uint32_t old_version = 2;
  f.write(reinterpret_cast<const char*>(&old_version), 4);
  f.close();

  try {
    (void)recover::load_checkpoint(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kBadVersion);
  }
}

TEST(Resume, NetlistMismatchIsTypedError) {
  const std::string dir = fresh_dir("tw_res_badnl");
  FlowParams params = fast_flow(kSeed);
  params.recover.checkpoint_dir = dir;
  params.recover.checkpoint_every = 1;
  Placement p(test_netlist());
  (void)TimberWolfMC(test_netlist(), params).run(p);
  const FlowCheckpoint cp =
      recover::load_checkpoint(*recover::find_latest_checkpoint(dir));

  const Netlist other = generate_circuit(tiny_circuit(22));
  Placement po(other);
  try {
    (void)TimberWolfMC(other, fast_flow(kSeed)).resume(po, cp);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kNetlistMismatch);
  }
}

TEST(Resume, SeedMismatchIsTypedError) {
  const std::string dir = fresh_dir("tw_res_badseed");
  FlowParams params = fast_flow(kSeed);
  params.recover.checkpoint_dir = dir;
  params.recover.checkpoint_every = 1;
  Placement p(test_netlist());
  (void)TimberWolfMC(test_netlist(), params).run(p);
  const FlowCheckpoint cp =
      recover::load_checkpoint(*recover::find_latest_checkpoint(dir));

  Placement p2(test_netlist());
  try {
    (void)TimberWolfMC(test_netlist(), fast_flow(kSeed + 1)).resume(p2, cp);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kSeedMismatch);
  }
}

}  // namespace
}  // namespace tw
