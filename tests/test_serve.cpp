// Placement service (src/serve): wire-protocol framing against truncated,
// corrupted and hostile byte streams; write-ahead journal replay with torn
// tails and compaction; the bounded on-disk result cache; the scheduler's
// typed admission control (quotas, queue-full, parse rejection), dedup
// against running and cached work, and crash recovery (journal replay +
// checkpoint re-adoption reproducing the uninterrupted fingerprint); and
// the daemon end-to-end over a real Unix socket — submit, progress
// streaming, cached duplicates, cooperative cancel, graceful shutdown.
//
// Tests may use std::thread (the raw-thread lint rule confines threads in
// src/ to the pool); the daemon cases run Daemon::run() on a test thread
// and stop it with request_stop().
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "netlist/parser.hpp"
#include "netlist/yal.hpp"
#include "pool/executor.hpp"
#include "recover/checkpoint.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/journal.hpp"
#include "serve/result_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/wire.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

using namespace tw::serve;

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// YAL text of the compact workload circuit the pool tests anneal.
const std::string& test_yal() {
  static const std::string yal =
      write_yal(generate_circuit(tiny_circuit(21)));
  return yal;
}

/// The fast parameterization (the knobs tests/fingerprint.hpp's fast_flow
/// sets), expressed as wire-visible JobParams.
JobParams fast_params(std::uint64_t seed) {
  JobParams p;
  p.master_seed = seed;
  p.s1_attempts_per_cell = 12;
  p.s1_p2_samples = 6;
  p.s2_attempts_per_cell = 8;
  p.steiner_m = 4;
  p.checkpoint_every = 1;
  return p;
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(WireTest, RoundTripsEveryMessageType) {
  SubmitRequest submit;
  submit.params = fast_params(42);
  submit.params.budget_moves = 123456;
  submit.netlist_yal = "MODULE a;\nENDMODULE;\n";
  submit.want_progress = true;

  ResultEvent result;
  result.job = 9;
  result.status = JobStatus::kBudgetExhausted;
  result.cached = true;
  result.fingerprint = 0xdeadbeefcafef00dull;
  result.final_teil = 6318.25;
  result.final_chip_area = 863950;
  result.replicas_succeeded = 2;
  result.replicas_total = 3;
  result.attempts = 5;
  result.detail = "partial";

  const std::vector<Message> all = {
      submit,
      QueryRequest{7},
      CancelRequest{8},
      PingRequest{},
      ShutdownRequest{},
      SubmitReply{11, Disposition::kDuplicateRunning},
      RejectReply{RejectCode::kQuotaExceeded, "too many replicas"},
      ProgressEvent{3, 1, 1, 40, 2, 81.5, 1234.75},
      result,
      StatusReply{5, JobState::kRunning},
      PongReply{},
  };

  FrameParser parser;
  for (const Message& m : all) {
    const std::vector<std::uint8_t> frame = encode_frame(m);
    parser.feed(frame);
  }
  for (const Message& m : all) {
    ASSERT_TRUE(parser.has_message());
    const Message got = parser.take_message();
    EXPECT_EQ(type_of(got), type_of(m));
  }
  EXPECT_FALSE(parser.has_message());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(WireTest, DecodedFieldsSurviveTheRoundTrip) {
  SubmitRequest submit;
  submit.params = fast_params(77);
  submit.netlist_yal = test_yal();
  submit.want_progress = true;

  FrameParser parser;
  parser.feed(encode_frame(submit));
  ASSERT_TRUE(parser.has_message());
  const auto got = std::get<SubmitRequest>(parser.take_message());
  EXPECT_EQ(got.params, submit.params);
  EXPECT_EQ(got.netlist_yal, submit.netlist_yal);
  EXPECT_TRUE(got.want_progress);

  ResultEvent r;
  r.job = 4;
  r.status = JobStatus::kCompleted;
  r.fingerprint = 0x123456789abcdef0ull;
  r.final_teil = 0.1;
  r.final_chip_area = 77;
  parser.feed(encode_frame(r));
  ASSERT_TRUE(parser.has_message());
  const auto gr = std::get<ResultEvent>(parser.take_message());
  EXPECT_EQ(gr.job, 4u);
  EXPECT_EQ(gr.status, JobStatus::kCompleted);
  EXPECT_EQ(gr.fingerprint, r.fingerprint);
  EXPECT_DOUBLE_EQ(gr.final_teil, 0.1);
  EXPECT_EQ(gr.final_chip_area, 77);
}

TEST(WireTest, ByteAtATimeFeedingReassembles) {
  const std::vector<std::uint8_t> frame =
      encode_frame(StatusReply{31, JobState::kDone});
  FrameParser parser;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(parser.has_message()) << "message before byte " << i;
    parser.feed(std::span(&frame[i], 1));
  }
  ASSERT_TRUE(parser.has_message());
  const auto got = std::get<StatusReply>(parser.take_message());
  EXPECT_EQ(got.job, 31u);
  EXPECT_EQ(got.state, JobState::kDone);
}

TEST(WireTest, BadMagicIsTyped) {
  std::vector<std::uint8_t> junk = {'H', 'T', 'T', 'P', '/', '1', '.', '1',
                                    ' ', ' ', ' ', ' ', ' ', ' ', ' ', ' ',
                                    ' ', ' ', ' ', ' '};
  FrameParser parser;
  try {
    parser.feed(junk);
    (void)parser.has_message();
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrc::kBadMagic);
  }
}

TEST(WireTest, CorruptPayloadFailsTheCrc) {
  std::vector<std::uint8_t> frame = encode_frame(QueryRequest{123});
  frame.back() ^= 0x01;  // flip one payload bit
  FrameParser parser;
  try {
    parser.feed(frame);
    (void)parser.has_message();
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrc::kBadCrc);
  }
}

TEST(WireTest, WrongVersionIsTyped) {
  std::vector<std::uint8_t> frame = encode_frame(PingRequest{});
  frame[4] = 0xEE;  // version field (little-endian) after the 4-byte magic
  FrameParser parser;
  try {
    parser.feed(frame);
    (void)parser.has_message();
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrc::kBadVersion);
  }
}

TEST(WireTest, OversizedLengthPrefixNeverAllocates) {
  // A hostile header claiming a multi-GiB payload must be rejected from
  // the 20 header bytes alone.
  std::vector<std::uint8_t> frame = encode_frame(PingRequest{});
  frame[12] = 0xFF;  // payload-size field
  frame[13] = 0xFF;
  frame[14] = 0xFF;
  frame[15] = 0x7F;
  FrameParser parser;
  try {
    parser.feed(std::span(frame.data(), 20));
    (void)parser.has_message();
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrc::kOversized);
  }
}

TEST(WireTest, ParamsDigestSeparatesEveryField) {
  const JobParams base = fast_params(1);
  std::vector<JobParams> variants(12, base);
  variants[0].master_seed = 2;
  variants[1].replicas = 4;
  variants[2].max_attempts = 9;
  variants[3].budget_moves = 5;
  variants[4].budget_steps = 6;
  variants[5].watchdog_moves = 7;
  variants[6].s1_attempts_per_cell = 99;
  variants[7].s1_p2_samples = 98;
  variants[8].s2_attempts_per_cell = 97;
  variants[9].steiner_m = 96;
  variants[10].checkpoint_every = 95;
  variants[11].checkpoint_keep = 94;
  for (std::size_t i = 0; i < variants.size(); ++i)
    EXPECT_NE(params_digest(variants[i]), params_digest(base))
        << "field " << i << " does not reach the digest";
  EXPECT_EQ(params_digest(base), params_digest(fast_params(1)));
}

// ---------------------------------------------------------------------------
// Write-ahead journal

TEST(JournalTest, ReplayReconstructsLiveJobsInOrder) {
  const std::string dir = fresh_dir("tw_srv_journal");
  const std::string path = dir + "/journal.twj";
  {
    JobJournal j(path);
    j.record_submitted(1, fast_params(1), "netlist one");
    j.record_submitted(2, fast_params(2), "netlist two");
    j.record_submitted(3, fast_params(3), "netlist three");
    j.record_finished(2);
    j.record_cancelled(3);
  }
  const JournalReplay r = JobJournal::replay(path);
  EXPECT_EQ(r.records, 5);
  EXPECT_EQ(r.max_job, 3u);
  EXPECT_EQ(r.dropped, 1);
  EXPECT_FALSE(r.torn_tail);
  ASSERT_EQ(r.live.size(), 2u);
  EXPECT_EQ(r.live[0].job, 1u);
  EXPECT_EQ(r.live[0].netlist_yal, "netlist one");
  EXPECT_FALSE(r.live[0].cancelled);
  EXPECT_EQ(r.live[1].job, 3u);
  EXPECT_TRUE(r.live[1].cancelled);
  EXPECT_EQ(r.live[1].params, fast_params(3));
}

TEST(JournalTest, MissingJournalIsAnEmptyHistory) {
  const JournalReplay r =
      JobJournal::replay(fresh_dir("tw_srv_nojournal") + "/none.twj");
  EXPECT_TRUE(r.live.empty());
  EXPECT_EQ(r.records, 0);
  EXPECT_FALSE(r.torn_tail);
}

TEST(JournalTest, TornTailIsDroppedEarlierRecordsSurvive) {
  const std::string dir = fresh_dir("tw_srv_torn");
  const std::string path = dir + "/journal.twj";
  {
    JobJournal j(path);
    j.record_submitted(1, fast_params(1), "first");
    j.record_submitted(2, fast_params(2), "second");
  }
  // Chop bytes off the tail: a kill mid-append leaves exactly this shape.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 5);

  const JournalReplay r = JobJournal::replay(path);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.records, 1);
  ASSERT_EQ(r.live.size(), 1u);
  EXPECT_EQ(r.live[0].job, 1u);
  EXPECT_EQ(r.live[0].netlist_yal, "first");
}

TEST(JournalTest, CorruptTailRecordIsDroppedNotFatal) {
  const std::string dir = fresh_dir("tw_srv_crc");
  const std::string path = dir + "/journal.twj";
  {
    JobJournal j(path);
    j.record_submitted(1, fast_params(1), "good");
    j.record_submitted(2, fast_params(2), "about to rot");
  }
  {  // Flip a byte inside the LAST record's payload.
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 3u);
    bytes[bytes.size() - 3] ^= 0x40;
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const JournalReplay r = JobJournal::replay(path);
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.live.size(), 1u);
  EXPECT_EQ(r.live[0].job, 1u);
}

TEST(JournalTest, CompactionKeepsOnlyLiveJobsAndCancelMarkers) {
  const std::string dir = fresh_dir("tw_srv_compact");
  const std::string path = dir + "/journal.twj";
  JobJournal j(path);
  for (std::uint64_t id = 1; id <= 6; ++id)
    j.record_submitted(id, fast_params(id), "job " + std::to_string(id));
  for (std::uint64_t id = 1; id <= 4; ++id) j.record_finished(id);
  j.record_cancelled(6);

  JournalReplay before = JobJournal::replay(path);
  ASSERT_EQ(before.live.size(), 2u);
  j.compact(before.live);

  const JournalReplay after = JobJournal::replay(path);
  EXPECT_EQ(after.dropped, 0);
  ASSERT_EQ(after.live.size(), 2u);
  EXPECT_EQ(after.live[0].job, 5u);
  EXPECT_FALSE(after.live[0].cancelled);
  EXPECT_EQ(after.live[1].job, 6u);
  EXPECT_TRUE(after.live[1].cancelled);
  EXPECT_EQ(after.max_job, 6u);

  // The journal stays appendable after the rewrite.
  j.record_submitted(7, fast_params(7), "post-compact");
  const JournalReplay more = JobJournal::replay(path);
  ASSERT_EQ(more.live.size(), 3u);
  EXPECT_EQ(more.live[2].job, 7u);
}

// ---------------------------------------------------------------------------
// Result cache

CachedResult sample_result(std::uint64_t fp) {
  CachedResult r;
  r.status = JobStatus::kCompleted;
  r.fingerprint = fp;
  r.final_teil = 123.5;
  r.final_chip_area = 999;
  r.replicas_succeeded = 1;
  r.replicas_total = 1;
  r.attempts = 1;
  return r;
}

TEST(ResultCacheTest, PutLookupAndReloadAcrossRestart) {
  const std::string dir = fresh_dir("tw_srv_cache1");
  const CacheKey key{0x1111, 0x2222};
  {
    ResultCache cache(dir, 8);
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.put(key, sample_result(0xabcd));
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->fingerprint, 0xabcdu);
    EXPECT_DOUBLE_EQ(hit->final_teil, 123.5);
  }
  // A fresh instance (daemon restart) reloads the entry from disk.
  ResultCache cache(dir, 8);
  EXPECT_EQ(cache.loaded(), 1);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->fingerprint, 0xabcdu);
  EXPECT_EQ(hit->status, JobStatus::kCompleted);
}

TEST(ResultCacheTest, CapacityBoundsFifoEvictOldest) {
  const std::string dir = fresh_dir("tw_srv_cache2");
  ResultCache cache(dir, 3);
  for (std::uint64_t i = 1; i <= 5; ++i)
    cache.put(CacheKey{i, i}, sample_result(i));
  EXPECT_EQ(cache.size(), 3);
  EXPECT_FALSE(cache.lookup(CacheKey{1, 1}).has_value());
  EXPECT_FALSE(cache.lookup(CacheKey{2, 2}).has_value());
  for (std::uint64_t i = 3; i <= 5; ++i)
    EXPECT_TRUE(cache.lookup(CacheKey{i, i}).has_value()) << i;
  EXPECT_EQ(cache.prune_failures(), 0);

  // The directory itself is bounded too, not just the index.
  int files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    files += e.path().extension() == ".twr" ? 1 : 0;
  EXPECT_EQ(files, 3);
}

TEST(ResultCacheTest, NonDeterministicTerminalStatesAreNotCached) {
  const std::string dir = fresh_dir("tw_srv_cache3");
  ResultCache cache(dir, 8);
  CachedResult cancelled = sample_result(1);
  cancelled.status = JobStatus::kCancelled;
  CachedResult failed = sample_result(2);
  failed.status = JobStatus::kFailed;
  CachedResult partial = sample_result(3);
  partial.status = JobStatus::kBudgetExhausted;

  cache.put(CacheKey{1, 1}, cancelled);
  cache.put(CacheKey{2, 2}, failed);
  cache.put(CacheKey{3, 3}, partial);

  EXPECT_FALSE(cacheable(JobStatus::kCancelled));
  EXPECT_FALSE(cacheable(JobStatus::kFailed));
  EXPECT_TRUE(cacheable(JobStatus::kBudgetExhausted));
  EXPECT_TRUE(cacheable(JobStatus::kCompleted));
  EXPECT_FALSE(cache.lookup(CacheKey{1, 1}).has_value());
  EXPECT_FALSE(cache.lookup(CacheKey{2, 2}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{3, 3}).has_value());
}

TEST(ResultCacheTest, TornEntryFromAKilledDaemonIsSkippedOnLoad) {
  const std::string dir = fresh_dir("tw_srv_cache4");
  {
    ResultCache cache(dir, 8);
    cache.put(CacheKey{10, 10}, sample_result(10));
  }
  // A garbage .twr file (torn write, disk rot) must not poison the load.
  std::ofstream(dir + "/res-000099.twr", std::ios::binary)
      << "not a cache entry";
  ResultCache cache(dir, 8);
  EXPECT_EQ(cache.loaded(), 1);
  EXPECT_TRUE(cache.lookup(CacheKey{10, 10}).has_value());

  // And the counter resumed above the junk file's number: a new put must
  // not collide with (or be shadowed by) anything present.
  cache.put(CacheKey{11, 11}, sample_result(11));
  ResultCache reloaded(dir, 8);
  EXPECT_TRUE(reloaded.lookup(CacheKey{11, 11}).has_value());
}

// ---------------------------------------------------------------------------
// Scheduler

/// Routes PoolExecutor callbacks (worker threads) back to the test thread,
/// exactly as the daemon's event queue does.
struct DoneQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<pool::ExecutorResult> results;

  pool::PoolExecutor::Hooks hooks() {
    pool::PoolExecutor::Hooks h;
    h.on_done = [this](pool::ExecutorResult r) {
      {
        std::lock_guard<std::mutex> lock(mu);
        results.push_back(std::move(r));
      }
      cv.notify_all();
    };
    return h;
  }

  pool::ExecutorResult wait_pop() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return !results.empty(); });
    pool::ExecutorResult r = std::move(results.front());
    results.pop_front();
    return r;
  }
};

SubmitRequest fast_submit(std::uint64_t seed) {
  SubmitRequest req;
  req.params = fast_params(seed);
  req.netlist_yal = test_yal();
  return req;
}

TEST(SchedulerTest, QuotaViolationsAreTypedRejections) {
  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_quota");
  cfg.threads = 1;
  cfg.limits.max_replicas = 2;
  cfg.limits.max_cells = 4;  // the test netlist has 21
  cfg.limits.max_budget_moves = 1000;
  Scheduler sched(cfg, q.hooks());

  SubmitRequest req = fast_submit(1);
  req.params.replicas = 3;  // above max_replicas
  Submitted s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kQuotaExceeded);

  req = fast_submit(1);
  req.params.budget_moves = 5000;  // above max_budget_moves
  s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kQuotaExceeded);

  req = fast_submit(1);  // budget_moves = -1: unlimited request under a cap
  s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kQuotaExceeded);

  req = fast_submit(1);
  req.params.budget_moves = 500;  // within quota — but the netlist is not
  s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kQuotaExceeded);
  EXPECT_NE(s.reject.detail.find("cell"), std::string::npos);

  req.params.replicas = 0;  // degenerate request
  s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kBadRequest);

  EXPECT_EQ(sched.in_flight(), 0);
  sched.shutdown();
}

TEST(SchedulerTest, UnparseableNetlistIsRejectedWithDiagnostics) {
  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_parse");
  cfg.threads = 1;
  Scheduler sched(cfg, q.hooks());

  SubmitRequest req;
  req.params = fast_params(1);
  req.netlist_yal = "MODULE broken;\n  TYPE GENERAL;\nthis is not YAL";
  const Submitted s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kParseError);
  EXPECT_FALSE(s.reject.detail.empty());
  sched.shutdown();
}

TEST(SchedulerTest, QueueFullPastMaxJobsInFlight) {
  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_qfull");
  cfg.threads = 1;
  cfg.limits.max_jobs = 1;
  Scheduler sched(cfg, q.hooks());

  const Submitted first = sched.submit(fast_submit(1));
  ASSERT_EQ(first.kind, Submitted::Kind::kAccepted);
  EXPECT_EQ(sched.in_flight(), 1);

  // A *different* job (other seed => other params digest) has no slot.
  const Submitted second = sched.submit(fast_submit(2));
  ASSERT_EQ(second.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(second.reject.code, RejectCode::kQueueFull);

  // Once the first finishes, the slot frees up.
  (void)sched.finish(q.wait_pop());
  EXPECT_EQ(sched.in_flight(), 0);
  const Submitted third = sched.submit(fast_submit(2));
  EXPECT_EQ(third.kind, Submitted::Kind::kAccepted);
  (void)sched.finish(q.wait_pop());
  sched.shutdown();
}

TEST(SchedulerTest, IdenticalRunningSubmissionAttachesNotRequeues) {
  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_attach");
  cfg.threads = 1;
  Scheduler sched(cfg, q.hooks());

  const Submitted a = sched.submit(fast_submit(5));
  ASSERT_EQ(a.kind, Submitted::Kind::kAccepted);
  EXPECT_EQ(a.disposition, Disposition::kFresh);

  const Submitted b = sched.submit(fast_submit(5));
  ASSERT_EQ(b.kind, Submitted::Kind::kAccepted);
  EXPECT_EQ(b.disposition, Disposition::kDuplicateRunning);
  EXPECT_EQ(b.job, a.job);
  EXPECT_EQ(sched.in_flight(), 1) << "the duplicate must not enqueue work";

  (void)sched.finish(q.wait_pop());
  sched.shutdown();
}

TEST(SchedulerTest, FinishedResultsServeDuplicatesFromCacheAcrossRestart) {
  const std::string state = fresh_dir("tw_srv_dedup");
  std::uint64_t fresh_fp = 0;
  {
    DoneQueue q;
    SchedulerConfig cfg;
    cfg.state_dir = state;
    cfg.threads = 1;
    Scheduler sched(cfg, q.hooks());
    ASSERT_EQ(sched.submit(fast_submit(5)).kind, Submitted::Kind::kAccepted);
    const ResultEvent done = sched.finish(q.wait_pop());
    EXPECT_EQ(done.status, JobStatus::kCompleted);
    EXPECT_FALSE(done.cached);
    fresh_fp = done.fingerprint;
    ASSERT_NE(fresh_fp, 0u);

    // Same process: the duplicate is served from cache, nothing enqueued.
    const Submitted dup = sched.submit(fast_submit(5));
    ASSERT_EQ(dup.kind, Submitted::Kind::kCached);
    EXPECT_TRUE(dup.cached.cached);
    EXPECT_EQ(dup.cached.fingerprint, fresh_fp);
    EXPECT_EQ(sched.in_flight(), 0);
    sched.shutdown();
  }

  // Fresh daemon, same state dir: nothing to recover (the journal saw the
  // completion), and the duplicate still comes from the on-disk cache.
  DoneQueue q2;
  SchedulerConfig cfg2;
  cfg2.state_dir = state;
  cfg2.threads = 1;
  Scheduler sched2(cfg2, q2.hooks());
  EXPECT_TRUE(sched2.recovered().empty());
  const Submitted dup = sched2.submit(fast_submit(5));
  ASSERT_EQ(dup.kind, Submitted::Kind::kCached);
  EXPECT_EQ(dup.cached.fingerprint, fresh_fp);
  sched2.shutdown();
}

// The crash-recovery acceptance test at the policy layer: a scheduler dies
// (destroyed without finish()) with a journaled job in flight; its
// successor on the same state dir re-adopts the job from the journal and
// the surviving checkpoints, and the finished result fingerprints
// identically to a never-interrupted scheduler's run of the same job.
TEST(SchedulerTest, RecoveryReadoptsJournaledJobsAndReproducesBytes) {
  // Ground truth: an uninterrupted scheduler in its own state dir.
  std::uint64_t clean_fp = 0;
  {
    DoneQueue q;
    SchedulerConfig cfg;
    cfg.state_dir = fresh_dir("tw_srv_clean");
    cfg.threads = 1;
    Scheduler sched(cfg, q.hooks());
    ASSERT_EQ(sched.submit(fast_submit(9)).kind, Submitted::Kind::kAccepted);
    clean_fp = sched.finish(q.wait_pop()).fingerprint;
    ASSERT_NE(clean_fp, 0u);
    sched.shutdown();
  }

  const std::string state = fresh_dir("tw_srv_recover");
  {
    DoneQueue q;
    SchedulerConfig cfg;
    cfg.state_dir = state;
    cfg.threads = 1;
    Scheduler sched(cfg, q.hooks());
    ASSERT_EQ(sched.submit(fast_submit(9)).kind, Submitted::Kind::kAccepted);
    // Die without ever calling finish(): the journal holds a submitted
    // record with no terminal record, exactly like a SIGKILL.
  }

  DoneQueue q2;
  SchedulerConfig cfg2;
  cfg2.state_dir = state;
  cfg2.threads = 1;
  Scheduler sched2(cfg2, q2.hooks());
  ASSERT_EQ(sched2.recovered().size(), 1u);
  const ResultEvent done = sched2.finish(q2.wait_pop());
  EXPECT_EQ(done.job, sched2.recovered()[0]);
  EXPECT_EQ(done.status, JobStatus::kCompleted);
  EXPECT_EQ(done.fingerprint, clean_fp)
      << "re-adopted run diverged from the uninterrupted one";

  // Third restart: the journal was settled by finish(); nothing recovers,
  // and the result is now a cache hit.
  sched2.shutdown();
  DoneQueue q3;
  Scheduler sched3(cfg2, q3.hooks());
  EXPECT_TRUE(sched3.recovered().empty());
  const Submitted dup = sched3.submit(fast_submit(9));
  ASSERT_EQ(dup.kind, Submitted::Kind::kCached);
  EXPECT_EQ(dup.cached.fingerprint, clean_fp);
  sched3.shutdown();
}

TEST(SchedulerTest, ParseSubmissionSpeaksBothFormats) {
  ParseReport report;
  EXPECT_TRUE(parse_submission(test_yal(), report).has_value());
  EXPECT_TRUE(report.diagnostics.empty());

  const Netlist nl = generate_circuit(tiny_circuit(7));
  ParseReport native_report;
  const auto native = parse_submission(write_netlist(nl), native_report);
  ASSERT_TRUE(native.has_value());
  EXPECT_EQ(native->num_cells(), nl.num_cells());

  ParseReport bad_report;
  EXPECT_FALSE(parse_submission("neither format", bad_report).has_value());
  EXPECT_GT(bad_report.total(), 0);
}

// ---------------------------------------------------------------------------
// Daemon end-to-end over a real Unix socket

struct DaemonFixture {
  std::string socket_path;
  std::string state_dir;
  Daemon daemon;
  std::thread thread;

  explicit DaemonFixture(const std::string& leaf,
                         SchedulerLimits limits = {})
      : socket_path(::testing::TempDir() + "/" + leaf + ".sock"),
        state_dir(fresh_dir(leaf)),
        daemon([&] {
          std::filesystem::remove(socket_path);
          DaemonConfig cfg;
          cfg.socket_path = socket_path;
          cfg.scheduler.state_dir = state_dir;
          cfg.scheduler.threads = 2;
          cfg.scheduler.limits = limits;
          return cfg;
        }()) {
    thread = std::thread([this] { daemon.run(); });
  }

  ~DaemonFixture() {
    daemon.request_stop();
    if (thread.joinable()) thread.join();
  }
};

TEST(DaemonTest, PingSubmitProgressAndCachedDuplicate) {
  DaemonFixture fx("tw_srv_daemon1");
  Client client(fx.socket_path);
  EXPECT_TRUE(client.ping());

  SubmitRequest req = fast_submit(3);
  req.want_progress = true;
  int progress_events = 0;
  const Client::SubmitOutcome first = client.submit_and_wait(
      req, [&](const ProgressEvent& pg) {
        ++progress_events;
        EXPECT_GE(pg.replica, 0);
      });
  ASSERT_FALSE(first.rejected.has_value());
  EXPECT_EQ(first.ack.disposition, Disposition::kFresh);
  ASSERT_TRUE(first.result.has_value());
  EXPECT_EQ(first.result->status, JobStatus::kCompleted);
  EXPECT_FALSE(first.result->cached);
  EXPECT_GT(progress_events, 0);
  const std::uint64_t fp = first.result->fingerprint;
  ASSERT_NE(fp, 0u);

  // Identical resubmission: served from cache, bit-identical, instant.
  Client dup_client(fx.socket_path);
  const Client::SubmitOutcome dup = dup_client.submit_and_wait(req);
  ASSERT_FALSE(dup.rejected.has_value());
  EXPECT_EQ(dup.ack.disposition, Disposition::kCached);
  ASSERT_TRUE(dup.result.has_value());
  EXPECT_TRUE(dup.result->cached);
  EXPECT_EQ(dup.result->fingerprint, fp);
}

TEST(DaemonTest, QueryAndTypedUnknownJob) {
  DaemonFixture fx("tw_srv_daemon2");
  Client client(fx.socket_path);

  client.send(QueryRequest{424242});
  const Message m = client.recv();
  const auto* rej = std::get_if<RejectReply>(&m);
  ASSERT_NE(rej, nullptr);
  EXPECT_EQ(rej->code, RejectCode::kUnknownJob);
}

TEST(DaemonTest, ExplicitCancelWindsDownToAUsableResult) {
  DaemonFixture fx("tw_srv_daemon3");
  Client client(fx.socket_path);

  // An oversized stage-1 schedule: a run long enough (seconds) that the
  // cancel frame beats its completion by a wide margin.
  SubmitRequest req;
  req.params.master_seed = 11;
  req.params.checkpoint_every = 1;
  req.params.s1_attempts_per_cell = 5000;
  req.netlist_yal = test_yal();
  client.send(req);
  Message m = client.recv();
  const auto* ack = std::get_if<SubmitReply>(&m);
  ASSERT_NE(ack, nullptr);

  client.send(CancelRequest{ack->job});
  // Skip frames until the job's terminal event.
  for (;;) {
    m = client.recv();
    if (const auto* r = std::get_if<ResultEvent>(&m)) {
      EXPECT_EQ(r->job, ack->job);
      EXPECT_EQ(r->status, JobStatus::kCancelled);
      EXPECT_FALSE(r->cached);
      break;
    }
  }
}

TEST(DaemonTest, QuotaRejectionReachesTheClientTyped) {
  SchedulerLimits limits;
  limits.max_replicas = 1;
  DaemonFixture fx("tw_srv_daemon4", limits);
  Client client(fx.socket_path);

  SubmitRequest req = fast_submit(1);
  req.params.replicas = 4;
  const Client::SubmitOutcome out = client.submit_and_wait(req);
  ASSERT_TRUE(out.rejected.has_value());
  EXPECT_EQ(out.rejected->code, RejectCode::kQuotaExceeded);
}

TEST(DaemonTest, ShutdownFrameDrainsAndStops) {
  const std::string leaf = "tw_srv_daemon5";
  const std::string socket_path = ::testing::TempDir() + "/" + leaf + ".sock";
  std::filesystem::remove(socket_path);
  DaemonConfig cfg;
  cfg.socket_path = socket_path;
  cfg.scheduler.state_dir = fresh_dir(leaf);
  cfg.scheduler.threads = 1;
  auto daemon = std::make_unique<Daemon>(cfg);
  int rc = -1;
  std::thread t([&] { rc = daemon->run(); });

  {
    Client client(socket_path);
    client.shutdown_server();
  }
  t.join();
  EXPECT_EQ(rc, 0);

  // Once the drained daemon is gone, so is its socket — a late client
  // gets a typed connection error, not a hang.
  daemon.reset();
  EXPECT_THROW(Client{socket_path}, ServeError);
}

}  // namespace
}  // namespace tw
