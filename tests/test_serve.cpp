// Placement service (src/serve): wire-protocol framing against truncated,
// corrupted and hostile byte streams; segmented write-ahead journal
// replay with rotation, torn tails and crash-safe compaction; the
// byte-budgeted on-disk result cache; the scheduler's typed admission
// control (quotas, priority-aware overload shedding, parse rejection),
// dedup against running and cached work, checkpoint preemption with
// byte-identical resume, disk-fault degraded modes, and crash recovery
// (journal replay + checkpoint re-adoption reproducing the uninterrupted
// fingerprint); and the daemon end-to-end over a real Unix socket —
// submit, progress streaming, cached duplicates, cooperative cancel,
// stats snapshots, graceful shutdown.
//
// Tests may use std::thread (the raw-thread lint rule confines threads in
// src/ to the pool); the daemon cases run Daemon::run() on a test thread
// and stop it with request_stop().
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "netlist/parser.hpp"
#include "netlist/yal.hpp"
#include "pool/executor.hpp"
#include "recover/checkpoint.hpp"
#include "recover/fault.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/journal.hpp"
#include "serve/result_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/wire.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

using namespace tw::serve;

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// YAL text of the compact workload circuit the pool tests anneal.
const std::string& test_yal() {
  static const std::string yal =
      write_yal(generate_circuit(tiny_circuit(21)));
  return yal;
}

/// The fast parameterization (the knobs tests/fingerprint.hpp's fast_flow
/// sets), expressed as wire-visible JobParams.
JobParams fast_params(std::uint64_t seed) {
  JobParams p;
  p.master_seed = seed;
  p.s1_attempts_per_cell = 12;
  p.s1_p2_samples = 6;
  p.s2_attempts_per_cell = 8;
  p.steiner_m = 4;
  p.checkpoint_every = 1;
  return p;
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(WireTest, RoundTripsEveryMessageType) {
  SubmitRequest submit;
  submit.params = fast_params(42);
  submit.params.budget_moves = 123456;
  submit.netlist_yal = "MODULE a;\nENDMODULE;\n";
  submit.want_progress = true;

  ResultEvent result;
  result.job = 9;
  result.status = JobStatus::kBudgetExhausted;
  result.cached = true;
  result.fingerprint = 0xdeadbeefcafef00dull;
  result.final_teil = 6318.25;
  result.final_chip_area = 863950;
  result.replicas_succeeded = 2;
  result.replicas_total = 3;
  result.attempts = 5;
  result.detail = "partial";

  StatsReply stats;
  stats.jobs_in_flight = 3;
  stats.queued = {1, 0, 2};
  stats.running = {0, 1, 1};
  stats.shed = 7;
  stats.preempted = 2;
  stats.resumed = 2;
  stats.journal_bytes = 4096;
  stats.journal_segments = 2;
  stats.cache_bytes = 512;
  stats.cache_budget_bytes = 1024;
  stats.cache_off = true;
  stats.journal_degraded = true;
  stats.checkpoint_off_jobs = 1;

  const std::vector<Message> all = {
      submit,
      QueryRequest{7},
      CancelRequest{8},
      PingRequest{},
      ShutdownRequest{},
      StatsRequest{},
      SubmitReply{11, Disposition::kDuplicateRunning},
      RejectReply{RejectCode::kQuotaExceeded, "too many replicas"},
      RejectReply{RejectCode::kOverloaded, "3 in flight", 750},
      ProgressEvent{3, 1, 1, 40, 2, 81.5, 1234.75},
      result,
      StatusReply{5, JobState::kRunning},
      PongReply{},
      stats,
  };

  FrameParser parser;
  for (const Message& m : all) {
    const std::vector<std::uint8_t> frame = encode_frame(m);
    parser.feed(frame);
  }
  for (const Message& m : all) {
    ASSERT_TRUE(parser.has_message());
    const Message got = parser.take_message();
    EXPECT_EQ(type_of(got), type_of(m));
  }
  EXPECT_FALSE(parser.has_message());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(WireTest, DecodedFieldsSurviveTheRoundTrip) {
  SubmitRequest submit;
  submit.params = fast_params(77);
  submit.netlist_yal = test_yal();
  submit.want_progress = true;

  FrameParser parser;
  parser.feed(encode_frame(submit));
  ASSERT_TRUE(parser.has_message());
  const auto got = std::get<SubmitRequest>(parser.take_message());
  EXPECT_EQ(got.params, submit.params);
  EXPECT_EQ(got.netlist_yal, submit.netlist_yal);
  EXPECT_TRUE(got.want_progress);

  ResultEvent r;
  r.job = 4;
  r.status = JobStatus::kCompleted;
  r.fingerprint = 0x123456789abcdef0ull;
  r.final_teil = 0.1;
  r.final_chip_area = 77;
  parser.feed(encode_frame(r));
  ASSERT_TRUE(parser.has_message());
  const auto gr = std::get<ResultEvent>(parser.take_message());
  EXPECT_EQ(gr.job, 4u);
  EXPECT_EQ(gr.status, JobStatus::kCompleted);
  EXPECT_EQ(gr.fingerprint, r.fingerprint);
  EXPECT_DOUBLE_EQ(gr.final_teil, 0.1);
  EXPECT_EQ(gr.final_chip_area, 77);
}

TEST(WireTest, PriorityAndRetryHintSurviveTheRoundTrip) {
  SubmitRequest submit;
  submit.params = fast_params(9);
  submit.params.priority = JobPriority::kUrgent;
  submit.netlist_yal = "MODULE a;\nENDMODULE;\n";

  FrameParser parser;
  parser.feed(encode_frame(submit));
  ASSERT_TRUE(parser.has_message());
  const auto got = std::get<SubmitRequest>(parser.take_message());
  EXPECT_EQ(got.params.priority, JobPriority::kUrgent);

  parser.feed(encode_frame(
      RejectReply{RejectCode::kOverloaded, "busy", 1250}));
  ASSERT_TRUE(parser.has_message());
  const auto rej = std::get<RejectReply>(parser.take_message());
  EXPECT_EQ(rej.code, RejectCode::kOverloaded);
  EXPECT_EQ(rej.retry_after_ms, 1250u);

  StatsReply stats;
  stats.jobs_in_flight = 5;
  stats.queued = {3, 2, 1};
  stats.running = {0, 2, 1};
  stats.shed = 11;
  stats.preempted = 4;
  stats.resumed = 3;
  stats.recovered = 2;
  stats.cache_evictions = 6;
  stats.progress_dropped = 99;
  stats.reaped = 1;
  stats.journal_bytes = 123456;
  stats.journal_segments = 3;
  stats.cache_bytes = 789;
  stats.cache_budget_bytes = 8192;
  stats.cache_off = true;
  stats.journal_degraded = true;
  stats.checkpoint_off_jobs = 2;
  parser.feed(encode_frame(stats));
  ASSERT_TRUE(parser.has_message());
  const auto gs = std::get<StatsReply>(parser.take_message());
  EXPECT_EQ(gs, stats);
}

TEST(WireTest, ByteAtATimeFeedingReassembles) {
  const std::vector<std::uint8_t> frame =
      encode_frame(StatusReply{31, JobState::kDone});
  FrameParser parser;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(parser.has_message()) << "message before byte " << i;
    parser.feed(std::span(&frame[i], 1));
  }
  ASSERT_TRUE(parser.has_message());
  const auto got = std::get<StatusReply>(parser.take_message());
  EXPECT_EQ(got.job, 31u);
  EXPECT_EQ(got.state, JobState::kDone);
}

TEST(WireTest, BadMagicIsTyped) {
  std::vector<std::uint8_t> junk = {'H', 'T', 'T', 'P', '/', '1', '.', '1',
                                    ' ', ' ', ' ', ' ', ' ', ' ', ' ', ' ',
                                    ' ', ' ', ' ', ' '};
  FrameParser parser;
  try {
    parser.feed(junk);
    (void)parser.has_message();
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrc::kBadMagic);
  }
}

TEST(WireTest, CorruptPayloadFailsTheCrc) {
  std::vector<std::uint8_t> frame = encode_frame(QueryRequest{123});
  frame.back() ^= 0x01;  // flip one payload bit
  FrameParser parser;
  try {
    parser.feed(frame);
    (void)parser.has_message();
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrc::kBadCrc);
  }
}

TEST(WireTest, WrongVersionIsTyped) {
  std::vector<std::uint8_t> frame = encode_frame(PingRequest{});
  frame[4] = 0xEE;  // version field (little-endian) after the 4-byte magic
  FrameParser parser;
  try {
    parser.feed(frame);
    (void)parser.has_message();
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrc::kBadVersion);
  }
}

TEST(WireTest, OversizedLengthPrefixNeverAllocates) {
  // A hostile header claiming a multi-GiB payload must be rejected from
  // the 20 header bytes alone.
  std::vector<std::uint8_t> frame = encode_frame(PingRequest{});
  frame[12] = 0xFF;  // payload-size field
  frame[13] = 0xFF;
  frame[14] = 0xFF;
  frame[15] = 0x7F;
  FrameParser parser;
  try {
    parser.feed(std::span(frame.data(), 20));
    (void)parser.has_message();
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrc::kOversized);
  }
}

TEST(WireTest, ParamsDigestSeparatesEveryField) {
  const JobParams base = fast_params(1);
  std::vector<JobParams> variants(12, base);
  variants[0].master_seed = 2;
  variants[1].replicas = 4;
  variants[2].max_attempts = 9;
  variants[3].budget_moves = 5;
  variants[4].budget_steps = 6;
  variants[5].watchdog_moves = 7;
  variants[6].s1_attempts_per_cell = 99;
  variants[7].s1_p2_samples = 98;
  variants[8].s2_attempts_per_cell = 97;
  variants[9].steiner_m = 96;
  variants[10].checkpoint_every = 95;
  variants[11].checkpoint_keep = 94;
  for (std::size_t i = 0; i < variants.size(); ++i)
    EXPECT_NE(params_digest(variants[i]), params_digest(base))
        << "field " << i << " does not reach the digest";
  EXPECT_EQ(params_digest(base), params_digest(fast_params(1)));

  // Priority is deliberately EXCLUDED: it routes scheduling, it does not
  // change the computation, so identical work dedups across classes.
  JobParams urgent = base;
  urgent.priority = JobPriority::kUrgent;
  EXPECT_EQ(params_digest(urgent), params_digest(base))
      << "priority must not reach the digest (it would defeat dedup)";
}

// ---------------------------------------------------------------------------
// Write-ahead journal

/// Path of the newest (highest-numbered) segment file in `dir`.
std::string newest_segment(const std::string& dir) {
  std::string best;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.starts_with("seg-") && e.path().extension() == ".twj" &&
        (best.empty() || name > std::filesystem::path(best).filename().string()))
      best = e.path().string();
  }
  return best;
}

int count_segments(const std::string& dir) {
  int n = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    n += e.path().extension() == ".twj" ? 1 : 0;
  return n;
}

TEST(JournalTest, ReplayReconstructsLiveJobsInOrder) {
  const std::string dir = fresh_dir("tw_srv_journal") + "/journal";
  {
    JobJournal j(dir);
    j.record_submitted(1, fast_params(1), "netlist one");
    j.record_submitted(2, fast_params(2), "netlist two");
    j.record_submitted(3, fast_params(3), "netlist three");
    j.record_finished(2);
    j.record_cancelled(3);
  }
  const JournalReplay r = JobJournal::replay(dir);
  EXPECT_EQ(r.records, 5);
  EXPECT_EQ(r.max_job, 3u);
  EXPECT_EQ(r.dropped, 1);
  EXPECT_EQ(r.segments, 1);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_FALSE(r.torn_interior);
  ASSERT_EQ(r.live.size(), 2u);
  EXPECT_EQ(r.live[0].job, 1u);
  EXPECT_EQ(r.live[0].netlist_yal, "netlist one");
  EXPECT_FALSE(r.live[0].cancelled);
  EXPECT_EQ(r.live[1].job, 3u);
  EXPECT_TRUE(r.live[1].cancelled);
  EXPECT_EQ(r.live[1].params, fast_params(3));
}

TEST(JournalTest, MissingJournalIsAnEmptyHistory) {
  const JournalReplay r =
      JobJournal::replay(fresh_dir("tw_srv_nojournal") + "/none");
  EXPECT_TRUE(r.live.empty());
  EXPECT_EQ(r.records, 0);
  EXPECT_EQ(r.segments, 0);
  EXPECT_FALSE(r.torn_tail);
}

TEST(JournalTest, TornTailIsDroppedEarlierRecordsSurvive) {
  const std::string dir = fresh_dir("tw_srv_torn") + "/journal";
  {
    JobJournal j(dir);
    j.record_submitted(1, fast_params(1), "first");
    j.record_submitted(2, fast_params(2), "second");
  }
  // Chop bytes off the tail: a kill mid-append leaves exactly this shape.
  const std::string path = newest_segment(dir);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 5);

  const JournalReplay r = JobJournal::replay(dir);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_FALSE(r.torn_interior);
  EXPECT_EQ(r.records, 1);
  ASSERT_EQ(r.live.size(), 1u);
  EXPECT_EQ(r.live[0].job, 1u);
  EXPECT_EQ(r.live[0].netlist_yal, "first");
}

TEST(JournalTest, CorruptTailRecordIsDroppedNotFatal) {
  const std::string dir = fresh_dir("tw_srv_crc") + "/journal";
  {
    JobJournal j(dir);
    j.record_submitted(1, fast_params(1), "good");
    j.record_submitted(2, fast_params(2), "about to rot");
  }
  const std::string path = newest_segment(dir);
  {  // Flip a byte inside the LAST record's payload.
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 3u);
    bytes[bytes.size() - 3] ^= 0x40;
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const JournalReplay r = JobJournal::replay(dir);
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.live.size(), 1u);
  EXPECT_EQ(r.live[0].job, 1u);
}

TEST(JournalTest, RotationSplitsRecordsAcrossSegmentsReplaySeesOneStream) {
  const std::string dir = fresh_dir("tw_srv_rotate") + "/journal";
  // A segment cap small enough that every submit record bursts it: each
  // record rotates into its own segment.
  JobJournal j(dir, /*max_segment_bytes=*/64);
  const std::string netlist(100, 'x');
  for (std::uint64_t id = 1; id <= 4; ++id)
    j.record_submitted(id, fast_params(id), netlist);
  j.record_finished(2);   // terminal record lands segments away from its
  j.record_cancelled(3);  // submit — replay must still connect them
  EXPECT_GE(j.segments(), 3);

  const JournalReplay r = JobJournal::replay(dir);
  EXPECT_EQ(r.segments, j.segments());
  EXPECT_EQ(r.records, 6);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_FALSE(r.torn_interior);
  ASSERT_EQ(r.live.size(), 3u);
  EXPECT_EQ(r.live[0].job, 1u);
  EXPECT_EQ(r.live[1].job, 3u);
  EXPECT_TRUE(r.live[1].cancelled) << "cancel marker in a later segment "
                                      "must reach its submit record";
  EXPECT_EQ(r.live[2].job, 4u);

  // Total bytes equal the sum of the on-disk segment files.
  std::uint64_t disk = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().extension() == ".twj")
      disk += std::filesystem::file_size(e.path());
  EXPECT_EQ(j.bytes(), disk);
}

TEST(JournalTest, TornTailInNewestSegmentOnlyOlderDamageIsInterior) {
  const std::string dir = fresh_dir("tw_srv_interior") + "/journal";
  {
    JobJournal j(dir, /*max_segment_bytes=*/64);
    for (std::uint64_t id = 1; id <= 3; ++id)
      j.record_submitted(id, fast_params(id), std::string(100, 'y'));
  }
  ASSERT_GE(count_segments(dir), 3);

  // Damage an *older* segment (the first): replay flags torn_interior,
  // not torn_tail, and still salvages the later segments.
  std::string first;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string p = e.path().string();
    if (e.path().extension() == ".twj" && (first.empty() || p < first))
      first = p;
  }
  std::filesystem::resize_file(first,
                               std::filesystem::file_size(first) - 5);

  const JournalReplay r = JobJournal::replay(dir);
  EXPECT_TRUE(r.torn_interior);
  EXPECT_FALSE(r.torn_tail) << "older-segment damage is disk rot, not a "
                               "legitimate crash signature";
  ASSERT_EQ(r.live.size(), 2u);
  EXPECT_EQ(r.live[0].job, 2u);
  EXPECT_EQ(r.live[1].job, 3u);
}

TEST(JournalTest, CompactionKeepsOnlyLiveJobsAndCancelMarkers) {
  const std::string dir = fresh_dir("tw_srv_compact") + "/journal";
  JobJournal j(dir);
  for (std::uint64_t id = 1; id <= 6; ++id)
    j.record_submitted(id, fast_params(id), "job " + std::to_string(id));
  for (std::uint64_t id = 1; id <= 4; ++id) j.record_finished(id);
  j.record_cancelled(6);

  JournalReplay before = JobJournal::replay(dir);
  ASSERT_EQ(before.live.size(), 2u);
  const std::uint64_t bytes_before = j.bytes();
  j.compact(before.live);
  EXPECT_LT(j.bytes(), bytes_before) << "compaction must shed dead bytes";
  EXPECT_EQ(j.segments(), 1) << "old segments must be unlinked";

  const JournalReplay after = JobJournal::replay(dir);
  EXPECT_EQ(after.dropped, 0);
  ASSERT_EQ(after.live.size(), 2u);
  EXPECT_EQ(after.live[0].job, 5u);
  EXPECT_FALSE(after.live[0].cancelled);
  EXPECT_EQ(after.live[1].job, 6u);
  EXPECT_TRUE(after.live[1].cancelled);
  EXPECT_EQ(after.max_job, 6u);

  // The journal stays appendable after the rewrite.
  j.record_submitted(7, fast_params(7), "post-compact");
  const JournalReplay more = JobJournal::replay(dir);
  ASSERT_EQ(more.live.size(), 3u);
  EXPECT_EQ(more.live[2].job, 7u);
}

TEST(JournalTest, ReplayConvergesWhenCompactionCrashedBeforeUnlinking) {
  // A crash between the compacted segment's rename and the unlinks of the
  // old segments leaves BOTH on disk. Replay must converge to the same
  // live set, because a re-submit of an already-seen id is ignored.
  const std::string dir = fresh_dir("tw_srv_compact_crash") + "/journal";
  JobJournal j(dir, /*max_segment_bytes=*/64);
  for (std::uint64_t id = 1; id <= 4; ++id)
    j.record_submitted(id, fast_params(id), std::string(80, 'z'));
  j.record_finished(1);
  j.record_finished(2);
  const JournalReplay before = JobJournal::replay(dir);
  ASSERT_EQ(before.live.size(), 2u);

  // Simulate the crash: write the compacted segment by hand (a fresh
  // journal in a scratch dir, then copy its segment in ABOVE the existing
  // numbers) without removing the old segments.
  const std::string scratch = fresh_dir("tw_srv_compact_scratch") + "/j";
  {
    JobJournal c(scratch);
    for (const LiveJob& lj : before.live)
      c.record_submitted(lj.job, lj.params, lj.netlist_yal);
  }
  std::filesystem::copy_file(newest_segment(scratch),
                             dir + "/seg-999999.twj");

  const JournalReplay merged = JobJournal::replay(dir);
  EXPECT_FALSE(merged.torn_tail);
  ASSERT_EQ(merged.live.size(), 2u);
  EXPECT_EQ(merged.live[0].job, 3u);
  EXPECT_EQ(merged.live[1].job, 4u);
  EXPECT_EQ(merged.max_job, 4u);
}

TEST(JournalTest, InjectedAppendFaultsAreTypedAndTornTailIsGenuine) {
  const std::string dir = fresh_dir("tw_srv_jfault") + "/journal";
  recover::DiskFaultPlan plan;
  plan.fail_at(recover::DiskSite::kJournalAppend, 1,
               recover::DiskFault::kEnospc);
  plan.fail_at(recover::DiskSite::kJournalAppend, 2,
               recover::DiskFault::kShortWrite);
  JobJournal j(dir, 1u << 20, &plan);
  j.record_submitted(1, fast_params(1), "survives");
  // ENOSPC: nothing written, typed error, journal still appendable.
  EXPECT_THROW(j.record_submitted(2, fast_params(2), "enospc"), ServeError);
  // Short write: a truncated prefix reaches the disk (a genuine torn
  // tail), then the typed error.
  EXPECT_THROW(j.record_submitted(3, fast_params(3), "torn"), ServeError);

  const JournalReplay r = JobJournal::replay(dir);
  EXPECT_TRUE(r.torn_tail) << "the short write must leave a real torn tail";
  ASSERT_EQ(r.live.size(), 1u);
  EXPECT_EQ(r.live[0].job, 1u);
}

// ---------------------------------------------------------------------------
// Result cache

CachedResult sample_result(std::uint64_t fp) {
  CachedResult r;
  r.status = JobStatus::kCompleted;
  r.fingerprint = fp;
  r.final_teil = 123.5;
  r.final_chip_area = 999;
  r.replicas_succeeded = 1;
  r.replicas_total = 1;
  r.attempts = 1;
  return r;
}

/// On-disk size of one cache entry (they are fixed-width records, so one
/// probe sizes them all) — the unit the byte-budget tests measure in.
std::uint64_t cache_entry_bytes() {
  static const std::uint64_t bytes = [] {
    ResultCache probe(fresh_dir("tw_srv_cache_probe"), 1u << 20);
    probe.put(CacheKey{1, 1}, sample_result(1));
    return probe.bytes();
  }();
  return bytes;
}

TEST(ResultCacheTest, PutLookupAndReloadAcrossRestart) {
  const std::string dir = fresh_dir("tw_srv_cache1");
  const CacheKey key{0x1111, 0x2222};
  {
    ResultCache cache(dir, 1u << 20);
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.put(key, sample_result(0xabcd));
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->fingerprint, 0xabcdu);
    EXPECT_DOUBLE_EQ(hit->final_teil, 123.5);
  }
  // A fresh instance (daemon restart) reloads the entry from disk.
  ResultCache cache(dir, 1u << 20);
  EXPECT_EQ(cache.loaded(), 1);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->fingerprint, 0xabcdu);
  EXPECT_EQ(hit->status, JobStatus::kCompleted);
}

TEST(ResultCacheTest, ByteBudgetEvictsOldestFilesFirst) {
  const std::uint64_t entry = cache_entry_bytes();
  ASSERT_GT(entry, 0u);

  const std::string dir = fresh_dir("tw_srv_cache2");
  ResultCache cache(dir, 3 * entry);
  for (std::uint64_t i = 1; i <= 5; ++i)
    cache.put(CacheKey{i, i}, sample_result(i));
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.evictions(), 2);
  EXPECT_LE(cache.bytes(), cache.budget_bytes());
  EXPECT_FALSE(cache.lookup(CacheKey{1, 1}).has_value());
  EXPECT_FALSE(cache.lookup(CacheKey{2, 2}).has_value());
  for (std::uint64_t i = 3; i <= 5; ++i)
    EXPECT_TRUE(cache.lookup(CacheKey{i, i}).has_value()) << i;
  EXPECT_EQ(cache.prune_failures(), 0);

  // The directory itself is bounded too, not just the index.
  int files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    files += e.path().extension() == ".twr" ? 1 : 0;
  EXPECT_EQ(files, 3);
}

TEST(ResultCacheTest, ShrunkBudgetPrunesAtStartupAndOversizedIsRefused) {
  const std::uint64_t entry = cache_entry_bytes();
  const std::string dir = fresh_dir("tw_srv_cache_shrink");
  {
    ResultCache cache(dir, 1u << 20);
    for (std::uint64_t i = 1; i <= 5; ++i)
      cache.put(CacheKey{i, i}, sample_result(i));
    EXPECT_EQ(cache.size(), 5);
  }
  // Restart under a smaller budget: the overflow is evicted at load,
  // oldest first — the disk must fit the budget the operator set *now*.
  ResultCache cache(dir, 2 * entry);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_LE(cache.bytes(), cache.budget_bytes());
  EXPECT_TRUE(cache.lookup(CacheKey{4, 4}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{5, 5}).has_value());

  // An entry that alone exceeds the whole budget is refused up front —
  // caching it would evict everything and then itself be evicted.
  ResultCache tiny(fresh_dir("tw_srv_cache_tiny"), entry - 1);
  EXPECT_THROW(tiny.put(CacheKey{9, 9}, sample_result(9)), ServeError);
  EXPECT_EQ(tiny.size(), 0);
  EXPECT_EQ(tiny.bytes(), 0u);
}

TEST(ResultCacheTest, InjectedWriteFaultIsTypedAndLeavesTheCacheConsistent) {
  recover::DiskFaultPlan plan;
  plan.fail_at(recover::DiskSite::kCacheWrite, 0,
               recover::DiskFault::kEnospc);
  const std::string dir = fresh_dir("tw_srv_cache_fault");
  ResultCache cache(dir, 1u << 20, &plan);
  EXPECT_THROW(cache.put(CacheKey{1, 1}, sample_result(1)), ServeError);
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.lookup(CacheKey{1, 1}).has_value());
  // The fault was one-shot; the cache keeps working afterwards.
  cache.put(CacheKey{2, 2}, sample_result(2));
  EXPECT_TRUE(cache.lookup(CacheKey{2, 2}).has_value());
  EXPECT_EQ(plan.count(recover::DiskSite::kCacheWrite), 2);
}

TEST(ResultCacheTest, NonDeterministicTerminalStatesAreNotCached) {
  const std::string dir = fresh_dir("tw_srv_cache3");
  ResultCache cache(dir, 1u << 20);
  CachedResult cancelled = sample_result(1);
  cancelled.status = JobStatus::kCancelled;
  CachedResult failed = sample_result(2);
  failed.status = JobStatus::kFailed;
  CachedResult partial = sample_result(3);
  partial.status = JobStatus::kBudgetExhausted;

  cache.put(CacheKey{1, 1}, cancelled);
  cache.put(CacheKey{2, 2}, failed);
  cache.put(CacheKey{3, 3}, partial);

  EXPECT_FALSE(cacheable(JobStatus::kCancelled));
  EXPECT_FALSE(cacheable(JobStatus::kFailed));
  EXPECT_TRUE(cacheable(JobStatus::kBudgetExhausted));
  EXPECT_TRUE(cacheable(JobStatus::kCompleted));
  EXPECT_FALSE(cache.lookup(CacheKey{1, 1}).has_value());
  EXPECT_FALSE(cache.lookup(CacheKey{2, 2}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{3, 3}).has_value());
}

TEST(ResultCacheTest, TornEntryFromAKilledDaemonIsSkippedOnLoad) {
  const std::string dir = fresh_dir("tw_srv_cache4");
  {
    ResultCache cache(dir, 1u << 20);
    cache.put(CacheKey{10, 10}, sample_result(10));
  }
  // A garbage .twr file (torn write, disk rot) must not poison the load.
  std::ofstream(dir + "/res-000099.twr", std::ios::binary)
      << "not a cache entry";
  ResultCache cache(dir, 1u << 20);
  EXPECT_EQ(cache.loaded(), 1);
  EXPECT_TRUE(cache.lookup(CacheKey{10, 10}).has_value());

  // And the counter resumed above the junk file's number: a new put must
  // not collide with (or be shadowed by) anything present.
  cache.put(CacheKey{11, 11}, sample_result(11));
  ResultCache reloaded(dir, 1u << 20);
  EXPECT_TRUE(reloaded.lookup(CacheKey{11, 11}).has_value());
}

// ---------------------------------------------------------------------------
// Scheduler

/// Routes PoolExecutor callbacks (worker threads) back to the test thread,
/// exactly as the daemon's event queue does.
struct DoneQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<pool::ExecutorResult> results;

  pool::PoolExecutor::Hooks hooks() {
    pool::PoolExecutor::Hooks h;
    h.on_done = [this](pool::ExecutorResult r) {
      {
        std::lock_guard<std::mutex> lock(mu);
        results.push_back(std::move(r));
      }
      cv.notify_all();
    };
    return h;
  }

  pool::ExecutorResult wait_pop() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return !results.empty(); });
    pool::ExecutorResult r = std::move(results.front());
    results.pop_front();
    return r;
  }
};

SubmitRequest fast_submit(std::uint64_t seed) {
  SubmitRequest req;
  req.params = fast_params(seed);
  req.netlist_yal = test_yal();
  return req;
}

TEST(SchedulerTest, QuotaViolationsAreTypedRejections) {
  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_quota");
  cfg.threads = 1;
  cfg.limits.max_replicas = 2;
  cfg.limits.max_cells = 4;  // the test netlist has 21
  cfg.limits.max_budget_moves = 1000;
  Scheduler sched(cfg, q.hooks());

  SubmitRequest req = fast_submit(1);
  req.params.replicas = 3;  // above max_replicas
  Submitted s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kQuotaExceeded);

  req = fast_submit(1);
  req.params.budget_moves = 5000;  // above max_budget_moves
  s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kQuotaExceeded);

  req = fast_submit(1);  // budget_moves = -1: unlimited request under a cap
  s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kQuotaExceeded);

  req = fast_submit(1);
  req.params.budget_moves = 500;  // within quota — but the netlist is not
  s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kQuotaExceeded);
  EXPECT_NE(s.reject.detail.find("cell"), std::string::npos);

  req.params.replicas = 0;  // degenerate request
  s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kBadRequest);

  EXPECT_EQ(sched.in_flight(), 0);
  sched.shutdown();
}

TEST(SchedulerTest, UnparseableNetlistIsRejectedWithDiagnostics) {
  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_parse");
  cfg.threads = 1;
  Scheduler sched(cfg, q.hooks());

  SubmitRequest req;
  req.params = fast_params(1);
  req.netlist_yal = "MODULE broken;\n  TYPE GENERAL;\nthis is not YAL";
  const Submitted s = sched.submit(req);
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kParseError);
  EXPECT_FALSE(s.reject.detail.empty());
  sched.shutdown();
}

TEST(SchedulerTest, OverloadShedsTypedWithARetryHint) {
  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_qfull");
  cfg.threads = 1;
  cfg.limits.max_jobs = 1;
  Scheduler sched(cfg, q.hooks());

  const Submitted first = sched.submit(fast_submit(1));
  ASSERT_EQ(first.kind, Submitted::Kind::kAccepted);
  EXPECT_EQ(sched.in_flight(), 1);

  // A *different* job (other seed => other params digest) is shed with a
  // typed kOverloaded carrying a deterministic retry hint — the client's
  // cue to back off instead of guessing.
  const Submitted second = sched.submit(fast_submit(2));
  ASSERT_EQ(second.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(second.reject.code, RejectCode::kOverloaded);
  EXPECT_GT(second.reject.retry_after_ms, 0u);
  EXPECT_EQ(sched.stats().shed, 1);

  // Once the first finishes, the slot frees up.
  (void)sched.finish(q.wait_pop());
  EXPECT_EQ(sched.in_flight(), 0);
  const Submitted third = sched.submit(fast_submit(2));
  EXPECT_EQ(third.kind, Submitted::Kind::kAccepted);
  (void)sched.finish(q.wait_pop());
  sched.shutdown();
}

TEST(SchedulerTest, AdmissionThresholdsAreGradedByPriority) {
  SchedulerLimits lim;
  lim.max_jobs = 8;
  EXPECT_EQ(lim.shed_threshold(JobPriority::kUrgent), 8);
  EXPECT_EQ(lim.shed_threshold(JobPriority::kNormal), 6);
  EXPECT_EQ(lim.shed_threshold(JobPriority::kBatch), 4);

  const auto prio_submit = [](std::uint64_t seed, JobPriority p) {
    SubmitRequest r = fast_submit(seed);
    r.params.priority = p;
    return r;
  };

  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_graded");
  cfg.threads = 1;
  cfg.limits.max_jobs = 4;  // thresholds: urgent 4, normal 3, batch 2
  Scheduler sched(cfg, q.hooks());

  ASSERT_EQ(sched.submit(prio_submit(1, JobPriority::kNormal)).kind,
            Submitted::Kind::kAccepted);
  ASSERT_EQ(sched.submit(prio_submit(2, JobPriority::kNormal)).kind,
            Submitted::Kind::kAccepted);

  // 2 in flight: batch is at its threshold (shed first), normal is not.
  const Submitted b = sched.submit(prio_submit(3, JobPriority::kBatch));
  ASSERT_EQ(b.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(b.reject.code, RejectCode::kOverloaded);
  EXPECT_EQ(b.reject.retry_after_ms, 250u);  // at the threshold: one step
  ASSERT_EQ(sched.submit(prio_submit(3, JobPriority::kNormal)).kind,
            Submitted::Kind::kAccepted);

  // 3 in flight: normal sheds now, urgent still has headroom.
  ASSERT_EQ(sched.submit(prio_submit(4, JobPriority::kNormal)).kind,
            Submitted::Kind::kRejected);
  ASSERT_EQ(sched.submit(prio_submit(4, JobPriority::kUrgent)).kind,
            Submitted::Kind::kAccepted);

  // 4 in flight = max_jobs: even urgent is shed.
  const Submitted u = sched.submit(prio_submit(5, JobPriority::kUrgent));
  ASSERT_EQ(u.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(u.reject.code, RejectCode::kOverloaded);
  EXPECT_EQ(sched.stats().shed, 3);

  for (int i = 0; i < 4; ++i) (void)sched.finish(q.wait_pop());
  sched.shutdown();
}

TEST(SchedulerTest, JournalWriteFailureShedsTypedAndFlagsDegraded) {
  DoneQueue q;
  recover::DiskFaultPlan plan;
  plan.fail_at(recover::DiskSite::kJournalAppend, 0,
               recover::DiskFault::kEnospc);
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_jdeg");
  cfg.threads = 1;
  cfg.disk_faults = &plan;
  Scheduler sched(cfg, q.hooks());

  // The WAL cannot take the record, so the daemon cannot promise the job
  // survives a crash — it must shed (typed, retryable), never accept.
  const Submitted s = sched.submit(fast_submit(1));
  ASSERT_EQ(s.kind, Submitted::Kind::kRejected);
  EXPECT_EQ(s.reject.code, RejectCode::kOverloaded);
  EXPECT_EQ(s.reject.retry_after_ms, 1000u);
  EXPECT_TRUE(sched.journal_degraded());
  EXPECT_TRUE(sched.stats().journal_degraded);

  // The fault was one-shot (disk freed up): the retry is admitted and
  // completes normally.
  const Submitted retry = sched.submit(fast_submit(1));
  ASSERT_EQ(retry.kind, Submitted::Kind::kAccepted);
  EXPECT_EQ(sched.finish(q.wait_pop()).status, JobStatus::kCompleted);
  sched.shutdown();
}

TEST(SchedulerTest, CacheWriteFailureEngagesCacheOffModeResultsStillFlow) {
  DoneQueue q;
  recover::DiskFaultPlan plan;
  plan.fail_from(recover::DiskSite::kCacheWrite, 0,
                 recover::DiskFault::kEnospc);
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_coff");
  cfg.threads = 1;
  cfg.disk_faults = &plan;
  Scheduler sched(cfg, q.hooks());

  ASSERT_EQ(sched.submit(fast_submit(3)).kind, Submitted::Kind::kAccepted);
  const ResultEvent first = sched.finish(q.wait_pop());
  EXPECT_EQ(first.status, JobStatus::kCompleted);
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(sched.cache_off());
  EXPECT_TRUE(sched.stats().cache_off);

  // Cross-restart dedup is lost in cache-off mode — but resubmissions
  // still run and still reproduce the same bytes.
  ASSERT_EQ(sched.submit(fast_submit(3)).kind, Submitted::Kind::kAccepted);
  const ResultEvent second = sched.finish(q.wait_pop());
  EXPECT_FALSE(second.cached);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  sched.shutdown();
}

TEST(SchedulerTest, CheckpointQuotaDegradesToCheckpointOffTyped) {
  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_ckq");
  cfg.threads = 1;
  cfg.checkpoint_quota_bytes = 1;  // nothing fits: every save bursts it
  Scheduler sched(cfg, q.hooks());

  SubmitRequest req = fast_submit(4);
  req.params.checkpoint_every = 1;
  req.params.max_attempts = 2;  // attempt 1 hits the quota; 2 runs cold
  ASSERT_EQ(sched.submit(req).kind, Submitted::Kind::kAccepted);
  const ResultEvent done = sched.finish(q.wait_pop());
  EXPECT_EQ(done.status, JobStatus::kCompleted)
      << "a checkpoint-dir quota must degrade checkpointing, not the job";
  EXPECT_GE(sched.stats().checkpoint_off_jobs, 1);
  sched.shutdown();
}

// The preemption acceptance test at the policy layer: an urgent arrival
// parks the running batch job at a checkpoint boundary; the batch job
// later resumes from that checkpoint and its finished result fingerprints
// identically to a never-preempted run — preemption must be invisible in
// the bytes, exactly like crash recovery.
TEST(SchedulerTest, PreemptedJobResumesToTheIdenticalFingerprint) {
  // Slow the batch job down (~5x the fast parameterization) so it is
  // still annealing when the urgent job lands; checkpoint every step so a
  // preempt point is always near.
  SubmitRequest batch = fast_submit(11);
  batch.params.priority = JobPriority::kBatch;
  batch.params.checkpoint_every = 1;
  batch.params.s1_attempts_per_cell = 60;
  batch.params.s2_attempts_per_cell = 40;

  // Ground truth: the same job in an idle scheduler.
  std::uint64_t clean_fp = 0;
  {
    DoneQueue q;
    SchedulerConfig cfg;
    cfg.state_dir = fresh_dir("tw_srv_preempt_ref");
    cfg.threads = 1;
    Scheduler sched(cfg, q.hooks());
    ASSERT_EQ(sched.submit(batch).kind, Submitted::Kind::kAccepted);
    clean_fp = sched.finish(q.wait_pop()).fingerprint;
    ASSERT_NE(clean_fp, 0u);
    sched.shutdown();
  }

  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_preempt");
  cfg.threads = 1;  // one worker: the urgent job MUST displace the batch
  Scheduler sched(cfg, q.hooks());
  const Submitted sb = sched.submit(batch);
  ASSERT_EQ(sb.kind, Submitted::Kind::kAccepted);

  // Only a *running* job can be parked; wait until the batch job holds
  // the worker before applying pressure.
  bool saw_running = false;
  for (int i = 0; i < 5000 && !saw_running; ++i) {
    saw_running = sched.stats().running[0] >= 1;
    if (!saw_running) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(saw_running) << "batch job never occupied the worker";

  SubmitRequest urgent = fast_submit(12);
  urgent.params.priority = JobPriority::kUrgent;
  const Submitted su = sched.submit(urgent);
  ASSERT_EQ(su.kind, Submitted::Kind::kAccepted);

  ResultEvent batch_done, urgent_done;
  for (int i = 0; i < 2; ++i) {
    ResultEvent ev = sched.finish(q.wait_pop());
    (ev.job == sb.job ? batch_done : urgent_done) = ev;
  }
  EXPECT_EQ(urgent_done.status, JobStatus::kCompleted);
  EXPECT_EQ(batch_done.status, JobStatus::kCompleted);
  EXPECT_EQ(batch_done.fingerprint, clean_fp)
      << "preempted-then-resumed run diverged from the uninterrupted one";

  const StatsReply st = sched.stats();
  EXPECT_GE(st.preempted, 1) << "the urgent job never displaced the batch";
  EXPECT_GE(st.resumed, 1) << "the parked job was never claimed again";
  sched.shutdown();
}

TEST(SchedulerTest, IdenticalRunningSubmissionAttachesNotRequeues) {
  DoneQueue q;
  SchedulerConfig cfg;
  cfg.state_dir = fresh_dir("tw_srv_attach");
  cfg.threads = 1;
  Scheduler sched(cfg, q.hooks());

  const Submitted a = sched.submit(fast_submit(5));
  ASSERT_EQ(a.kind, Submitted::Kind::kAccepted);
  EXPECT_EQ(a.disposition, Disposition::kFresh);

  const Submitted b = sched.submit(fast_submit(5));
  ASSERT_EQ(b.kind, Submitted::Kind::kAccepted);
  EXPECT_EQ(b.disposition, Disposition::kDuplicateRunning);
  EXPECT_EQ(b.job, a.job);
  EXPECT_EQ(sched.in_flight(), 1) << "the duplicate must not enqueue work";

  (void)sched.finish(q.wait_pop());
  sched.shutdown();
}

TEST(SchedulerTest, FinishedResultsServeDuplicatesFromCacheAcrossRestart) {
  const std::string state = fresh_dir("tw_srv_dedup");
  std::uint64_t fresh_fp = 0;
  {
    DoneQueue q;
    SchedulerConfig cfg;
    cfg.state_dir = state;
    cfg.threads = 1;
    Scheduler sched(cfg, q.hooks());
    ASSERT_EQ(sched.submit(fast_submit(5)).kind, Submitted::Kind::kAccepted);
    const ResultEvent done = sched.finish(q.wait_pop());
    EXPECT_EQ(done.status, JobStatus::kCompleted);
    EXPECT_FALSE(done.cached);
    fresh_fp = done.fingerprint;
    ASSERT_NE(fresh_fp, 0u);

    // Same process: the duplicate is served from cache, nothing enqueued.
    const Submitted dup = sched.submit(fast_submit(5));
    ASSERT_EQ(dup.kind, Submitted::Kind::kCached);
    EXPECT_TRUE(dup.cached.cached);
    EXPECT_EQ(dup.cached.fingerprint, fresh_fp);
    EXPECT_EQ(sched.in_flight(), 0);
    sched.shutdown();
  }

  // Fresh daemon, same state dir: nothing to recover (the journal saw the
  // completion), and the duplicate still comes from the on-disk cache.
  DoneQueue q2;
  SchedulerConfig cfg2;
  cfg2.state_dir = state;
  cfg2.threads = 1;
  Scheduler sched2(cfg2, q2.hooks());
  EXPECT_TRUE(sched2.recovered().empty());
  const Submitted dup = sched2.submit(fast_submit(5));
  ASSERT_EQ(dup.kind, Submitted::Kind::kCached);
  EXPECT_EQ(dup.cached.fingerprint, fresh_fp);
  sched2.shutdown();
}

// The crash-recovery acceptance test at the policy layer: a scheduler dies
// (destroyed without finish()) with a journaled job in flight; its
// successor on the same state dir re-adopts the job from the journal and
// the surviving checkpoints, and the finished result fingerprints
// identically to a never-interrupted scheduler's run of the same job.
TEST(SchedulerTest, RecoveryReadoptsJournaledJobsAndReproducesBytes) {
  // Ground truth: an uninterrupted scheduler in its own state dir.
  std::uint64_t clean_fp = 0;
  {
    DoneQueue q;
    SchedulerConfig cfg;
    cfg.state_dir = fresh_dir("tw_srv_clean");
    cfg.threads = 1;
    Scheduler sched(cfg, q.hooks());
    ASSERT_EQ(sched.submit(fast_submit(9)).kind, Submitted::Kind::kAccepted);
    clean_fp = sched.finish(q.wait_pop()).fingerprint;
    ASSERT_NE(clean_fp, 0u);
    sched.shutdown();
  }

  const std::string state = fresh_dir("tw_srv_recover");
  {
    DoneQueue q;
    SchedulerConfig cfg;
    cfg.state_dir = state;
    cfg.threads = 1;
    Scheduler sched(cfg, q.hooks());
    ASSERT_EQ(sched.submit(fast_submit(9)).kind, Submitted::Kind::kAccepted);
    // Die without ever calling finish(): the journal holds a submitted
    // record with no terminal record, exactly like a SIGKILL.
  }

  DoneQueue q2;
  SchedulerConfig cfg2;
  cfg2.state_dir = state;
  cfg2.threads = 1;
  Scheduler sched2(cfg2, q2.hooks());
  ASSERT_EQ(sched2.recovered().size(), 1u);
  const ResultEvent done = sched2.finish(q2.wait_pop());
  EXPECT_EQ(done.job, sched2.recovered()[0]);
  EXPECT_EQ(done.status, JobStatus::kCompleted);
  EXPECT_EQ(done.fingerprint, clean_fp)
      << "re-adopted run diverged from the uninterrupted one";

  // Third restart: the journal was settled by finish(); nothing recovers,
  // and the result is now a cache hit.
  sched2.shutdown();
  DoneQueue q3;
  Scheduler sched3(cfg2, q3.hooks());
  EXPECT_TRUE(sched3.recovered().empty());
  const Submitted dup = sched3.submit(fast_submit(9));
  ASSERT_EQ(dup.kind, Submitted::Kind::kCached);
  EXPECT_EQ(dup.cached.fingerprint, clean_fp);
  sched3.shutdown();
}

TEST(SchedulerTest, ParseSubmissionSpeaksBothFormats) {
  ParseReport report;
  EXPECT_TRUE(parse_submission(test_yal(), report).has_value());
  EXPECT_TRUE(report.diagnostics.empty());

  const Netlist nl = generate_circuit(tiny_circuit(7));
  ParseReport native_report;
  const auto native = parse_submission(write_netlist(nl), native_report);
  ASSERT_TRUE(native.has_value());
  EXPECT_EQ(native->num_cells(), nl.num_cells());

  ParseReport bad_report;
  EXPECT_FALSE(parse_submission("neither format", bad_report).has_value());
  EXPECT_GT(bad_report.total(), 0);
}

// ---------------------------------------------------------------------------
// Daemon end-to-end over a real Unix socket

struct DaemonFixture {
  std::string socket_path;
  std::string state_dir;
  Daemon daemon;
  std::thread thread;

  explicit DaemonFixture(const std::string& leaf,
                         SchedulerLimits limits = {})
      : socket_path(::testing::TempDir() + "/" + leaf + ".sock"),
        state_dir(fresh_dir(leaf)),
        daemon([&] {
          std::filesystem::remove(socket_path);
          DaemonConfig cfg;
          cfg.socket_path = socket_path;
          cfg.scheduler.state_dir = state_dir;
          cfg.scheduler.threads = 2;
          cfg.scheduler.limits = limits;
          return cfg;
        }()) {
    thread = std::thread([this] { daemon.run(); });
  }

  ~DaemonFixture() {
    daemon.request_stop();
    if (thread.joinable()) thread.join();
  }
};

TEST(DaemonTest, PingSubmitProgressAndCachedDuplicate) {
  DaemonFixture fx("tw_srv_daemon1");
  Client client(fx.socket_path);
  EXPECT_TRUE(client.ping());

  SubmitRequest req = fast_submit(3);
  req.want_progress = true;
  int progress_events = 0;
  const Client::SubmitOutcome first = client.submit_and_wait(
      req, [&](const ProgressEvent& pg) {
        ++progress_events;
        EXPECT_GE(pg.replica, 0);
      });
  ASSERT_FALSE(first.rejected.has_value());
  EXPECT_EQ(first.ack.disposition, Disposition::kFresh);
  ASSERT_TRUE(first.result.has_value());
  EXPECT_EQ(first.result->status, JobStatus::kCompleted);
  EXPECT_FALSE(first.result->cached);
  EXPECT_GT(progress_events, 0);
  const std::uint64_t fp = first.result->fingerprint;
  ASSERT_NE(fp, 0u);

  // Identical resubmission: served from cache, bit-identical, instant.
  Client dup_client(fx.socket_path);
  const Client::SubmitOutcome dup = dup_client.submit_and_wait(req);
  ASSERT_FALSE(dup.rejected.has_value());
  EXPECT_EQ(dup.ack.disposition, Disposition::kCached);
  ASSERT_TRUE(dup.result.has_value());
  EXPECT_TRUE(dup.result->cached);
  EXPECT_EQ(dup.result->fingerprint, fp);
}

TEST(DaemonTest, QueryAndTypedUnknownJob) {
  DaemonFixture fx("tw_srv_daemon2");
  Client client(fx.socket_path);

  client.send(QueryRequest{424242});
  const Message m = client.recv();
  const auto* rej = std::get_if<RejectReply>(&m);
  ASSERT_NE(rej, nullptr);
  EXPECT_EQ(rej->code, RejectCode::kUnknownJob);
}

TEST(DaemonTest, ExplicitCancelWindsDownToAUsableResult) {
  DaemonFixture fx("tw_srv_daemon3");
  Client client(fx.socket_path);

  // An oversized stage-1 schedule: a run long enough (seconds) that the
  // cancel frame beats its completion by a wide margin.
  SubmitRequest req;
  req.params.master_seed = 11;
  req.params.checkpoint_every = 1;
  req.params.s1_attempts_per_cell = 5000;
  req.netlist_yal = test_yal();
  client.send(req);
  Message m = client.recv();
  const auto* ack = std::get_if<SubmitReply>(&m);
  ASSERT_NE(ack, nullptr);

  client.send(CancelRequest{ack->job});
  // Skip frames until the job's terminal event.
  for (;;) {
    m = client.recv();
    if (const auto* r = std::get_if<ResultEvent>(&m)) {
      EXPECT_EQ(r->job, ack->job);
      EXPECT_EQ(r->status, JobStatus::kCancelled);
      EXPECT_FALSE(r->cached);
      break;
    }
  }
}

TEST(DaemonTest, QuotaRejectionReachesTheClientTyped) {
  SchedulerLimits limits;
  limits.max_replicas = 1;
  DaemonFixture fx("tw_srv_daemon4", limits);
  Client client(fx.socket_path);

  SubmitRequest req = fast_submit(1);
  req.params.replicas = 4;
  const Client::SubmitOutcome out = client.submit_and_wait(req);
  ASSERT_TRUE(out.rejected.has_value());
  EXPECT_EQ(out.rejected->code, RejectCode::kQuotaExceeded);
}

TEST(DaemonTest, StatsReportHealthOverTheSocket) {
  DaemonFixture fx("tw_srv_daemon6");
  Client client(fx.socket_path);

  const StatsReply before = client.stats();
  EXPECT_EQ(before.jobs_in_flight, 0);
  EXPECT_EQ(before.shed, 0);
  EXPECT_FALSE(before.cache_off);
  EXPECT_FALSE(before.journal_degraded);

  const Client::SubmitOutcome out = client.submit_and_wait(fast_submit(7));
  ASSERT_TRUE(out.result.has_value());
  ASSERT_EQ(out.result->status, JobStatus::kCompleted);

  // The snapshot reflects the finished job: nothing in flight, its
  // journal records and cached result on disk and measured in bytes.
  const StatsReply after = client.stats();
  EXPECT_EQ(after.jobs_in_flight, 0);
  EXPECT_GT(after.journal_bytes, 0u);
  EXPECT_GE(after.journal_segments, 1);
  EXPECT_GT(after.cache_bytes, 0u);
  EXPECT_GT(after.cache_budget_bytes, 0u);
  EXPECT_LE(after.cache_bytes, after.cache_budget_bytes);
}

TEST(DaemonTest, ShutdownFrameDrainsAndStops) {
  const std::string leaf = "tw_srv_daemon5";
  const std::string socket_path = ::testing::TempDir() + "/" + leaf + ".sock";
  std::filesystem::remove(socket_path);
  DaemonConfig cfg;
  cfg.socket_path = socket_path;
  cfg.scheduler.state_dir = fresh_dir(leaf);
  cfg.scheduler.threads = 1;
  auto daemon = std::make_unique<Daemon>(cfg);
  int rc = -1;
  std::thread t([&] { rc = daemon->run(); });

  {
    Client client(socket_path);
    client.shutdown_server();
  }
  t.join();
  EXPECT_EQ(rc, 0);

  // Once the drained daemon is gone, so is its socket — a late client
  // gets a typed connection error, not a hang.
  daemon.reset();
  EXPECT_THROW(Client{socket_path}, ServeError);
}

}  // namespace
}  // namespace tw
