// Tests for stage-2 placement refinement (Section 4): the Eqn 28 initial
// temperature, Eqn 22 expansion derivation, and the three-pass refinement
// behavior (convergence, legality improvement, determinism).
#include <gtest/gtest.h>

#include <cmath>

#include "refine/stage2.hpp"
#include "util/stats.hpp"
#include "workload/paper_circuits.hpp"

namespace tw {
namespace {

struct FlowFixture {
  Netlist nl;
  Placement placement;
  Stage1Result s1;

  explicit FlowFixture(std::uint64_t seed = 1, int ac = 12)
      : nl(generate_circuit(tiny_circuit(seed))), placement(nl) {
    Stage1Params p;
    p.attempts_per_cell = ac;
    p.p2_samples = 8;
    Stage1Placer placer(nl, p, seed * 31 + 7);
    s1 = placer.run(placement);
  }
};

Stage2Params fast_stage2() {
  Stage2Params p;
  p.attempts_per_cell = 10;
  p.router.steiner.m = 4;
  return p;
}

TEST(Stage2, InitialTemperatureMatchesEqn28) {
  // T' = mu^(log_4 10) * T_inf for rho = 4.
  const double t_inf = 1e5;
  const double expected = std::pow(0.03, std::log(10.0) / std::log(4.0)) * t_inf;
  EXPECT_NEAR(Stage2Refiner::initial_temperature(0.03, t_inf, 4.0), expected,
              1e-6);
  // mu = 1 opens the full window: T' = T_inf.
  EXPECT_NEAR(Stage2Refiner::initial_temperature(1.0, t_inf, 4.0), t_inf, 1e-6);
  // Larger mu -> higher starting temperature.
  EXPECT_GT(Stage2Refiner::initial_temperature(0.06, t_inf, 4.0),
            Stage2Refiner::initial_temperature(0.03, t_inf, 4.0));
}

TEST(Stage2, InitialTemperatureInvertsRangeLimiter) {
  // Property: the window at T' is mu times the window at T_inf.
  const double t_inf = 1e5;
  const double mu = 0.03;
  const double t_prime = Stage2Refiner::initial_temperature(mu, t_inf, 4.0);
  RangeLimiter rl(100000, 100000, t_inf, 4.0);
  EXPECT_NEAR(static_cast<double>(rl.window_x(t_prime)), mu * 100000.0,
              0.02 * mu * 100000.0);
}

TEST(Stage2, DeriveExpansionsFollowsEqn22) {
  // Build a trivial two-cell channel and check w = (d+2) t_s halves.
  Netlist nl;
  const NetId n = nl.add_net("n");
  nl.add_macro("a", {Rect{0, 0, 10, 10}});
  nl.add_macro("b", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(0, "p", n, Point{10, 5});
  nl.add_fixed_pin(1, "q", n, Point{0, 5});
  Placement p(nl);
  p.set_center(0, Point{-8, 0});
  p.set_center(1, Point{8, 0});
  const ChannelGraph cg = build_channel_graph(p, Rect{-30, -20, 30, 20});
  // Density 3 in every region -> w = 5, half = 3 on the bounding sides.
  std::vector<int> densities(cg.regions.size(), 3);
  const auto exp = Stage2Refiner::derive_expansions(nl, cg, densities);
  ASSERT_EQ(exp.size(), 2u);
  // Cell 0's right side (index 1) bounds the central channel.
  EXPECT_EQ(exp[0][1], 3);
  EXPECT_EQ(exp[1][0], 3);
}

TEST(Stage2, DeriveExpansionsTakesMaxOverChannels) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  nl.add_macro("a", {Rect{0, 0, 10, 10}});
  nl.add_macro("b", {Rect{0, 0, 10, 10}});
  nl.add_fixed_pin(0, "p", n, Point{10, 5});
  nl.add_fixed_pin(1, "q", n, Point{0, 5});
  Placement p(nl);
  p.set_center(0, Point{-8, 0});
  p.set_center(1, Point{8, 0});
  const ChannelGraph cg = build_channel_graph(p, Rect{-30, -20, 30, 20});
  std::vector<int> densities(cg.regions.size(), 0);
  // Give only the central cell-to-cell channel a high density.
  for (std::size_t r = 0; r < cg.regions.size(); ++r) {
    if (cg.regions[r].is_junction()) continue;
    if (!cg.edges[cg.regions[r].edge_a].is_core() &&
        !cg.edges[cg.regions[r].edge_b].is_core())
      densities[r] = 8;  // w = 10, half = 5
  }
  const auto exp = Stage2Refiner::derive_expansions(nl, cg, densities);
  EXPECT_EQ(exp[0][1], 5);
  // Sides facing only the core keep the density-0 allowance (w=2, half=1).
  EXPECT_EQ(exp[0][0], 1);
}

TEST(Stage2, RunProducesPassesAndConverges) {
  FlowFixture f(1);
  Stage2Refiner refiner(f.nl, fast_stage2(), 99);
  const Stage2Result r = refiner.run(f.placement, f.s1.core, f.s1.t_infinity,
                                     f.s1.temperature_scale);
  ASSERT_EQ(r.passes.size(), 3u);
  for (const auto& pass : r.passes) {
    EXPECT_GT(pass.regions, 0u);
    EXPECT_GT(pass.teil, 0.0);
    EXPECT_GT(pass.chip_area, 0);
    EXPECT_EQ(pass.unrouted_nets, 0);
  }
  EXPECT_DOUBLE_EQ(r.final_teil, f.placement.teil());
  // Convergence: pass 3's TEIL within a modest factor of pass 2's.
  EXPECT_LT(std::abs(r.passes[2].teil - r.passes[1].teil),
            0.25 * r.passes[1].teil + 1.0);
}

TEST(Stage2, KeepsOrientationsAndAspectsFixed) {
  FlowFixture f(2);
  std::vector<Orient> orients;
  std::vector<double> aspects;
  for (const auto& c : f.nl.cells()) {
    orients.push_back(f.placement.state(c.id).orient);
    aspects.push_back(f.placement.state(c.id).aspect);
  }
  Stage2Refiner refiner(f.nl, fast_stage2(), 5);
  refiner.run(f.placement, f.s1.core, f.s1.t_infinity, f.s1.temperature_scale);
  for (const auto& c : f.nl.cells()) {
    EXPECT_EQ(f.placement.state(c.id).orient,
              orients[static_cast<std::size_t>(c.id)]);
    EXPECT_DOUBLE_EQ(f.placement.state(c.id).aspect,
                     aspects[static_cast<std::size_t>(c.id)]);
  }
}

TEST(Stage2, MovesAreLocal) {
  // With mu = 0.03 the refinement anneal only makes local moves; the
  // *typical* cell barely travels across the three passes. (Individual
  // cells can jump farther when the legalizer relocates them out of an
  // overlap, so the bound is on the median, not the max.)
  FlowFixture f(3);
  std::vector<Point> before;
  for (const auto& c : f.nl.cells())
    before.push_back(f.placement.state(c.id).center);
  Stage2Refiner refiner(f.nl, fast_stage2(), 7);
  refiner.run(f.placement, f.s1.core, f.s1.t_infinity, f.s1.temperature_scale);
  const Coord span = std::max(f.s1.core.width(), f.s1.core.height());
  std::vector<double> moved;
  for (const auto& c : f.nl.cells())
    moved.push_back(static_cast<double>(manhattan(
        f.placement.state(c.id).center,
        before[static_cast<std::size_t>(c.id)])));
  // "Local" relative to stage 1, whose moves cross the whole core: the
  // typical refinement displacement stays under half the core span even
  // accumulated over three passes plus legalization.
  EXPECT_LE(median(moved), static_cast<double>(span) / 2.0);
}

TEST(Stage2, DeterministicForSeed) {
  FlowFixture f1(4), f2(4);
  Stage2Refiner r1(f1.nl, fast_stage2(), 11);
  Stage2Refiner r2(f2.nl, fast_stage2(), 11);
  const Stage2Result a =
      r1.run(f1.placement, f1.s1.core, f1.s1.t_infinity, f1.s1.temperature_scale);
  const Stage2Result b =
      r2.run(f2.placement, f2.s1.core, f2.s1.t_infinity, f2.s1.temperature_scale);
  EXPECT_DOUBLE_EQ(a.final_teil, b.final_teil);
  EXPECT_EQ(a.final_chip_area, b.final_chip_area);
}

TEST(Stage2, SmallTeilChangeFromStage1) {
  // Table 3's claim: stage 2 changes the TEIL only slightly (the dynamic
  // estimator was already accurate). Allow a generous band for the tiny
  // test circuit.
  FlowFixture f(5, 25);
  const double teil_before = f.s1.final_teil;
  Stage2Refiner refiner(f.nl, fast_stage2(), 13);
  const Stage2Result r = refiner.run(f.placement, f.s1.core, f.s1.t_infinity,
                                     f.s1.temperature_scale);
  EXPECT_LT(std::abs(r.final_teil - teil_before), 0.35 * teil_before);
}

}  // namespace
}  // namespace tw
