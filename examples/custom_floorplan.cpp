// Floorplanning: a circuit made entirely of soft (custom) cells — the
// problem setting of Otten/van Ginneken and Wong/Liu that TimberWolfMC
// also covers (Section 1 notes it places all-custom circuits). Every
// block's aspect ratio and pin positions are chosen by the annealer.
//
//   ./custom_floorplan [seed]
#include <cstdio>
#include <cstdlib>

#include "flow/timberwolf.hpp"
#include "workload/generator.hpp"

#include "ascii_art.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // A generated all-soft floorplanning instance: 14 blocks, 36 nets.
  CircuitSpec spec;
  spec.name = "floorplan";
  spec.num_cells = 14;
  spec.num_nets = 36;
  spec.num_pins = 120;
  spec.mean_cell_dim = 90;
  spec.custom_fraction = 1.0;  // every cell is soft
  spec.group_fraction = 0.4;
  spec.seed = seed;
  const Netlist nl = generate_circuit(spec);

  FlowParams params;
  params.stage1.attempts_per_cell = 60;
  params.seed = seed + 17;
  TimberWolfMC flow(nl, params);
  Placement placement(nl);
  const FlowResult r = flow.run(placement);

  std::printf("floorplan of %zu soft blocks:\n", nl.num_cells());
  std::printf("  TEIL: stage 1 %.0f -> final %.0f (%.1f%% change)\n",
              r.stage1_teil, r.final_teil, -r.teil_change_pct());
  std::printf("  chip: %lld x %lld, area %lld\n",
              static_cast<long long>(r.final_chip_bbox.width()),
              static_cast<long long>(r.final_chip_bbox.height()),
              static_cast<long long>(r.final_chip_area));

  // Aspect-ratio decisions.
  double total_block_area = 0.0;
  std::printf("\n  chosen aspect ratios (allowed range -> chosen):\n");
  for (const auto& cell : nl.cells()) {
    const CellState& st = placement.state(cell.id);
    const CellInstance& g = placement.geometry(cell.id);
    total_block_area += static_cast<double>(g.width) * g.height;
    std::printf("    %-14s [%4.2f, %4.2f] -> %4.2f  (%lld x %lld)\n",
                cell.name.c_str(), cell.aspect_lo, cell.aspect_hi, st.aspect,
                static_cast<long long>(g.width),
                static_cast<long long>(g.height));
  }
  std::printf("\n  block area utilisation: %.1f%%\n",
              100.0 * total_block_area /
                  static_cast<double>(r.final_chip_area));
  std::printf("  pin sites above capacity: %d\n\n",
              placement.overloaded_sites());

  tw::examples::render_placement(placement, r.final_chip_bbox);
  return 0;
}
