// MCNC-format input: parse a YAL macro-cell benchmark (the format of
// apte, xerox, hp, ami33, ami49) and run the full flow on it.
//
//   ./mcnc_yal [path/to/benchmark.yal] [seed]
//
// Without arguments, the bundled examples/data/sample.yal is used (the
// build copies it next to the binary).
#include <cstdio>
#include <cstdlib>

#include "flow/report.hpp"
#include "flow/timberwolf.hpp"
#include "netlist/yal.hpp"

#include "ascii_art.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "data/sample.yal";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  Netlist nl;
  try {
    nl = parse_yal_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(), e.what());
    std::fprintf(stderr,
                 "usage: mcnc_yal [benchmark.yal] [seed]  (run from the "
                 "examples build directory, or pass a path)\n");
    return 1;
  }

  std::printf("YAL benchmark %s: %zu cells, %zu nets, %zu pins\n\n",
              path.c_str(), nl.num_cells(), nl.num_nets(), nl.num_pins());

  FlowParams params;
  params.stage1.attempts_per_cell = 60;
  params.seed = seed;
  TimberWolfMC flow(nl, params);
  Placement placement(nl);
  const FlowResult r = flow.run(placement);

  std::printf("%s\n", flow_report(nl, placement, r).c_str());
  tw::examples::render_placement(placement, r.final_chip_bbox);
  return 0;
}
