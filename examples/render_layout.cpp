// Layout rendering: runs the full flow on a generated circuit and writes
// SVG figures of the final placement and the global routing, plus the
// structured text run report — everything one needs to inspect a result.
//
//   ./render_layout [seed] [output-prefix]
//
// Writes <prefix>_placement.svg, <prefix>_routing.svg.
#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <string>

#include "channel/channel_graph.hpp"
#include "flow/report.hpp"
#include "flow/visualize.hpp"
#include "place/legalize.hpp"
#include "route/interchange.hpp"
#include "util/svg_writer.hpp"
#include "workload/paper_circuits.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const std::string prefix = argc > 2 ? argv[2] : "layout";

  const Netlist nl = generate_circuit(medium_circuit(seed));

  FlowParams params;
  params.stage1.attempts_per_cell = 40;
  params.seed = seed + 5;
  TimberWolfMC flow(nl, params);
  Placement placement(nl);
  const FlowResult r = flow.run(placement);

  std::printf("%s", flow_report(nl, placement, r).c_str());

  // Final placement figure.
  const Rect frame = r.stage2.final_core;
  {
    std::ofstream out(prefix + "_placement.svg");
    out << placement_svg(placement, frame);
  }

  // Routing figure: channel structure shaded by density plus the routes.
  const ChannelGraph cg = build_channel_graph(placement, frame);
  GlobalRouter router(cg.graph, {{8, 12}, seed + 99});
  const GlobalRouteResult routed = router.route(build_net_targets(nl, cg));
  {
    std::ofstream out(prefix + "_routing.svg");
    out << routing_svg(placement, frame, cg, routed);
  }

  std::printf("\nwrote %s_placement.svg and %s_routing.svg (route length "
              "%.0f, overflow %d)\n",
              prefix.c_str(), prefix.c_str(), routed.total_length,
              routed.total_overflow);
  return 0;
}
