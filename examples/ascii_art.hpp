// Tiny ASCII rendering of a placement, shared by the examples: each cell
// is drawn with its own letter inside the chip bounding box.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "place/placement.hpp"

namespace tw::examples {

inline void render_placement(const Placement& placement, const Rect& frame,
                             int columns = 72) {
  const int rows =
      std::max(8, static_cast<int>(columns * frame.height() /
                                   std::max<Coord>(1, frame.width()) / 2));
  std::vector<std::string> canvas(static_cast<std::size_t>(rows),
                                  std::string(static_cast<std::size_t>(columns), '.'));

  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    const char glyph = static_cast<char>(c < 26 ? 'A' + c : 'a' + (c - 26) % 26);
    for (const Rect& t : placement.absolute_tiles(c)) {
      const Rect clipped = t.intersect(frame);
      if (!clipped.valid()) continue;
      const int x0 = static_cast<int>((clipped.xlo - frame.xlo) * columns /
                                      std::max<Coord>(1, frame.width()));
      const int x1 = static_cast<int>((clipped.xhi - frame.xlo) * columns /
                                      std::max<Coord>(1, frame.width()));
      const int y0 = static_cast<int>((clipped.ylo - frame.ylo) * rows /
                                      std::max<Coord>(1, frame.height()));
      const int y1 = static_cast<int>((clipped.yhi - frame.ylo) * rows /
                                      std::max<Coord>(1, frame.height()));
      for (int y = y0; y < std::min(y1 + 1, rows); ++y)
        for (int x = x0; x < std::min(x1 + 1, columns); ++x)
          canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = glyph;
    }
  }
  // Row 0 is the bottom of the chip; print top-down.
  for (auto it = canvas.rbegin(); it != canvas.rend(); ++it)
    std::printf("  %s\n", it->c_str());
}

}  // namespace tw::examples
