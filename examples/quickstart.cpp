// Quickstart: build a small macro-cell netlist with the builder API, run
// the full TimberWolfMC flow, and inspect the result. Also demonstrates
// the text netlist format round trip.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "flow/timberwolf.hpp"
#include "netlist/parser.hpp"

#include "ascii_art.hpp"

using namespace tw;

namespace {

/// A hand-built 6-macro circuit: a datapath block, two RAMs, a ROM, a
/// control PLA and an L-shaped pad ring corner.
Netlist build_circuit() {
  Netlist nl;
  nl.tech().track_separation = 1;

  const NetId bus_a = nl.add_net("bus_a");
  const NetId bus_b = nl.add_net("bus_b");
  const NetId clk = nl.add_net("clk");
  const NetId ctl = nl.add_net("ctl");

  const CellId dp = nl.add_macro("datapath", {Rect{0, 0, 120, 60}});
  nl.add_fixed_pin(dp, "a0", bus_a, Point{0, 20});
  nl.add_fixed_pin(dp, "b0", bus_b, Point{0, 40});
  nl.add_fixed_pin(dp, "ck", clk, Point{60, 0});
  nl.add_fixed_pin(dp, "en", ctl, Point{120, 30});

  const CellId ram0 = nl.add_macro("ram0", {Rect{0, 0, 80, 80}});
  nl.add_fixed_pin(ram0, "a", bus_a, Point{80, 40});
  nl.add_fixed_pin(ram0, "ck", clk, Point{40, 0});

  const CellId ram1 = nl.add_macro("ram1", {Rect{0, 0, 80, 80}});
  nl.add_fixed_pin(ram1, "b", bus_b, Point{80, 40});
  nl.add_fixed_pin(ram1, "ck", clk, Point{40, 80});

  const CellId rom = nl.add_macro("rom", {Rect{0, 0, 100, 40}});
  nl.add_fixed_pin(rom, "a", bus_a, Point{0, 20});
  nl.add_fixed_pin(rom, "c", ctl, Point{100, 20});

  // The control PLA is L-shaped (a rectilinear macro).
  const CellId pla = nl.add_macro_polygon(
      "pla", {{0, 0}, {90, 0}, {90, 30}, {45, 30}, {45, 60}, {0, 60}});
  nl.add_fixed_pin(pla, "c", ctl, Point{90, 15});
  nl.add_fixed_pin(pla, "ck", clk, Point{0, 30});
  nl.add_fixed_pin(pla, "b", bus_b, Point{45, 60});

  const CellId io = nl.add_macro("iocorner", {Rect{0, 0, 50, 50}});
  nl.add_fixed_pin(io, "a", bus_a, Point{25, 50});
  nl.add_fixed_pin(io, "ck", clk, Point{0, 25});

  nl.validate();
  return nl;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  Netlist nl = build_circuit();
  std::printf("circuit: %zu cells, %zu nets, %zu pins\n", nl.num_cells(),
              nl.num_nets(), nl.num_pins());

  // The netlist round-trips through the text format.
  const std::string text = write_netlist(nl);
  std::printf("\n--- netlist file format ---\n%s---\n\n", text.c_str());
  nl = parse_netlist_string(text);

  FlowParams params;
  params.stage1.attempts_per_cell = 60;
  params.seed = seed;
  TimberWolfMC flow(nl, params);

  Placement placement(nl);
  const FlowResult r = flow.run(placement);

  std::printf("stage 1: TEIL %.0f, chip area %lld, residual overlap %lld\n",
              r.stage1_teil, static_cast<long long>(r.stage1_chip_area),
              static_cast<long long>(r.stage1.residual_overlap));
  std::printf("stage 2: TEIL %.0f, chip area %lld (change: %.1f%% TEIL, "
              "%.1f%% area)\n",
              r.final_teil, static_cast<long long>(r.final_chip_area),
              r.teil_change_pct(), r.area_change_pct());

  std::printf("\nfinal placement (chip %s):\n", r.final_chip_bbox.str().c_str());
  for (const auto& cell : nl.cells()) {
    const CellState& st = placement.state(cell.id);
    std::printf("  %-10s at (%5lld, %5lld) orient %-2s\n", cell.name.c_str(),
                static_cast<long long>(st.center.x),
                static_cast<long long>(st.center.y), to_string(st.orient));
  }
  std::printf("\n");
  tw::examples::render_placement(placement, r.final_chip_bbox);
  return 0;
}
