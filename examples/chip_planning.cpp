// Chip planning: the scenario the paper emphasizes — a chip mixing
// fixed-geometry macros with soft custom cells whose aspect ratios,
// instances and pin positions are still open. TimberWolfMC selects
// everything at once, guided by the TEIC and the empty space around each
// cell:
//   * a custom datapath with a continuous aspect range and a *sequenced*
//     bus pin group,
//   * a custom control block restricted to discrete aspect ratios,
//   * a macro RAM offered in two alternative instances (1-port tall
//     layout vs 2-port wide layout),
//   * electrically equivalent feed-through pins on the crossbar macro.
//
//   ./chip_planning [seed]
#include <cstdio>
#include <cstdlib>

#include "flow/timberwolf.hpp"

#include "ascii_art.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  Netlist nl;
  const NetId bus0 = nl.add_net("bus0");
  const NetId bus1 = nl.add_net("bus1");
  const NetId bus2 = nl.add_net("bus2");
  const NetId clk = nl.add_net("clk");
  const NetId sel = nl.add_net("sel");

  // Soft datapath: 8000 area units, aspect anywhere in [0.4, 2.5], pins on
  // a sequenced bus group that must stay ordered along one edge.
  const CellId dp = nl.add_custom("datapath", 8000, 0.4, 2.5, 8);
  const GroupId bus_group = nl.add_group(dp, "bus", kSideLeft | kSideRight, true);
  nl.add_group_pin(dp, bus_group, "d0", bus0);
  nl.add_group_pin(dp, bus_group, "d1", bus1);
  nl.add_group_pin(dp, bus_group, "d2", bus2);
  nl.add_edge_pin(dp, "ck", clk, kSideBottom | kSideTop);

  // Control block: only three discrete realizations are available.
  const CellId ctl = nl.add_custom("control", 3600, 0.5, 2.0, 6);
  nl.set_discrete_aspects(ctl, {0.5, 1.0, 2.0});
  nl.add_edge_pin(ctl, "s", sel, kSideAny);
  nl.add_edge_pin(ctl, "ck", clk, kSideAny);
  nl.add_edge_pin(ctl, "b2", bus2, kSideAny);

  // RAM macro with two instances: tall single-port and wide dual-port.
  const CellId ram = nl.add_macro("ram", {Rect{0, 0, 60, 100}});
  nl.add_fixed_pin(ram, "q", bus0, Point{60, 50});
  nl.add_fixed_pin(ram, "ck", clk, Point{30, 0});
  nl.add_instance(ram, {Rect{0, 0, 110, 55}},
                  {Point{110, 28}, Point{55, 0}});

  // Crossbar macro with electrically equivalent feed-through pins on
  // opposite edges (the router may use either end).
  const CellId xbar = nl.add_macro("xbar", {Rect{0, 0, 90, 50}});
  const PinId xw = nl.add_fixed_pin(xbar, "b1_w", bus1, Point{0, 25});
  const PinId xe = nl.add_fixed_pin(xbar, "b1_e", bus1, Point{90, 25});
  nl.set_equivalent(xw, xe);
  nl.add_fixed_pin(xbar, "s", sel, Point{45, 50});
  nl.add_fixed_pin(xbar, "b0", bus0, Point{45, 0});

  // A clock buffer macro to anchor the clk net.
  const CellId ckb = nl.add_macro("clkbuf", {Rect{0, 0, 30, 30}});
  nl.add_fixed_pin(ckb, "ck", clk, Point{15, 30});
  nl.add_fixed_pin(ckb, "b2", bus2, Point{15, 0});

  nl.validate();

  FlowParams params;
  params.stage1.attempts_per_cell = 80;
  params.seed = seed;
  TimberWolfMC flow(nl, params);
  Placement placement(nl);
  const FlowResult r = flow.run(placement);

  std::printf("chip planning result (TEIL %.0f -> %.0f, area %lld -> %lld):\n\n",
              r.stage1_teil, r.final_teil,
              static_cast<long long>(r.stage1_chip_area),
              static_cast<long long>(r.final_chip_area));

  for (const auto& cell : nl.cells()) {
    const CellState& st = placement.state(cell.id);
    const CellInstance& g = placement.geometry(cell.id);
    std::printf("  %-9s %4lld x %-4lld orient %-2s", cell.name.c_str(),
                static_cast<long long>(g.width),
                static_cast<long long>(g.height), to_string(st.orient));
    if (cell.is_custom())
      std::printf("  (chosen aspect %.2f of [%.2f, %.2f]%s)", st.aspect,
                  cell.aspect_lo, cell.aspect_hi,
                  cell.discrete_aspects.empty() ? "" : ", discrete");
    else if (cell.instances.size() > 1)
      std::printf("  (instance %d of %zu)", st.instance + 1,
                  cell.instances.size());
    std::printf("\n");
  }

  // Where did the sequenced bus land?
  std::printf("\nsequenced bus pins on 'datapath':\n");
  for (PinId pid : nl.cell(dp).groups[0].pins) {
    const Point pos = placement.pin_position(pid);
    std::printf("  %-3s at (%lld, %lld)\n", nl.pin(pid).name.c_str(),
                static_cast<long long>(pos.x), static_cast<long long>(pos.y));
  }
  std::printf("pin sites above capacity: %d (must be 0)\n",
              placement.overloaded_sites());

  std::printf("\n");
  tw::examples::render_placement(placement, r.final_chip_bbox);
  return 0;
}
