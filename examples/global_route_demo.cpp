// Global routing demo: channel definition and the two-phase global router
// on a placed circuit, with the per-channel densities and the Eqn 22
// channel widths printed — the data the placement-refinement step
// consumes.
//
//   ./global_route_demo [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "channel/channel_graph.hpp"
#include "place/legalize.hpp"
#include "place/stage1.hpp"
#include "route/interchange.hpp"
#include "route/sequential.hpp"
#include "workload/paper_circuits.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  const Netlist nl = generate_circuit(tiny_circuit(seed));
  std::printf("circuit: %zu cells, %zu nets, %zu pins\n\n", nl.num_cells(),
              nl.num_nets(), nl.num_pins());

  // Place with stage 1, then clean up residual overlap.
  Stage1Params params;
  params.attempts_per_cell = 40;
  Stage1Placer placer(nl, params, seed + 3);
  Placement placement(nl);
  const Stage1Result s1 = placer.run(placement);
  legalize_spread(placement, s1.core, 2 * nl.tech().track_separation);

  // Channel definition (Section 4.1).
  const ChannelGraph cg = build_channel_graph(placement, s1.core);
  std::size_t junctions = 0;
  for (const auto& r : cg.regions)
    if (r.is_junction()) ++junctions;
  std::printf("channel definition: %zu critical regions (%zu junctions), "
              "%zu free-space slabs, graph: %zu nodes / %zu edges\n",
              cg.regions.size(), junctions, cg.slabs.size(),
              cg.graph.num_nodes(), cg.graph.num_edges());

  // Phase 1 + 2 (Section 4.2).
  const auto targets = build_net_targets(nl, cg);
  GlobalRouter router(cg.graph, {{8, 12}, seed + 9});
  const GlobalRouteResult routed = router.route(targets);
  std::printf("global routing: total length %.0f, overflow X = %d, "
              "%d unrouted, %lld interchange attempts\n",
              routed.total_length, routed.total_overflow, routed.unrouted_nets,
              static_cast<long long>(routed.interchange_attempts));

  // Alternatives statistics (phase 1's M routes per net).
  std::size_t alt_total = 0, routed_nets = 0;
  int nonzero_choice = 0;
  for (std::size_t n = 0; n < targets.size(); ++n) {
    if (routed.choice[n] < 0) continue;
    ++routed_nets;
    alt_total += routed.alternatives[n].size();
    if (routed.choice[n] > 0) ++nonzero_choice;
  }
  std::printf("phase 1 kept %.1f alternatives per net; phase 2 moved %d "
              "nets off their shortest route to satisfy capacities\n\n",
              static_cast<double>(alt_total) /
                  static_cast<double>(std::max<std::size_t>(1, routed_nets)),
              nonzero_choice);

  // Channel densities and Eqn 22 widths (the busiest ten channels).
  std::vector<std::vector<EdgeId>> route_edges(targets.size());
  for (std::size_t n = 0; n < targets.size(); ++n)
    if (const Route* r = routed.route_of(n)) route_edges[n] = r->edges;
  const auto densities = region_densities(cg, route_edges);

  std::vector<std::size_t> order(cg.regions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return densities[a] > densities[b];
  });
  std::printf("busiest channels (width rule w = (d + 2) * t_s, Eqn 22):\n");
  std::printf("  %-28s %-10s %8s %7s %7s\n", "region", "axis", "density",
              "width", "have");
  const Coord ts = nl.tech().track_separation;
  for (std::size_t k = 0; k < std::min<std::size_t>(10, order.size()); ++k) {
    const CriticalRegion& r = cg.regions[order[k]];
    std::printf("  %-28s %-10s %8d %7lld %7lld\n", r.rect.str().c_str(),
                r.is_junction() ? "junction" : (r.vertical ? "vertical" : "horizontal"),
                densities[order[k]],
                static_cast<long long>((densities[order[k]] + 2) * ts),
                static_cast<long long>(r.thickness()));
  }

  // Contrast with the sequential baseline (first-come-first-served).
  const SequentialResult seq = route_sequential(cg.graph, targets);
  std::printf("\nsequential baseline: length %.0f, overflow %d "
              "(interchange router: %.0f / %d)\n",
              seq.total_length, seq.total_overflow, routed.total_length,
              routed.total_overflow);
  return 0;
}
