#include "check/cost_audit.hpp"

#include <cmath>
#include <sstream>

namespace tw {
namespace {

bool drifted(double inc, double ref, double epsilon) {
  return std::abs(inc - ref) > epsilon * std::max(1.0, std::abs(ref));
}

void describe(std::ostringstream& os, const char* term, double inc,
              double ref) {
  os << term << " drifted: incremental=" << inc << " recomputed=" << ref
     << " delta=" << inc - ref << "; ";
}

}  // namespace

std::string CostDriftReport::str() const {
  if (!any()) return "no drift";
  std::ostringstream os;
  if (c1_drifted) describe(os, "C1(TEIC)", incremental.c1, recomputed.c1);
  if (c2_drifted)
    describe(os, "C2(overlap)", incremental.c2_raw, recomputed.c2_raw);
  if (c3_drifted) describe(os, "C3(pin-site)", incremental.c3, recomputed.c3);
  return os.str();
}

CostAudit::CostAudit(const CostModel& model, CostAuditParams params)
    : model_(&model), params_(params) {}

CostDriftReport CostAudit::compare(const CostTerms& incremental) const {
  CostDriftReport r;
  r.incremental = incremental;
  r.recomputed = model_->full();
  r.c1_drifted = drifted(incremental.c1, r.recomputed.c1, params_.epsilon);
  r.c2_drifted =
      drifted(incremental.c2_raw, r.recomputed.c2_raw, params_.epsilon);
  r.c3_drifted = drifted(incremental.c3, r.recomputed.c3, params_.epsilon);
  return r;
}

void CostAudit::checkpoint(const CostTerms& incremental, const char* where) {
  ++checks_;
  const CostDriftReport r = compare(incremental);
  if (r.any())
    check::fail("CostAudit", "", __FILE__, __LINE__,
                std::string(where) + ": " + r.str());
  if constexpr (check::kLevel >= check::kLevelFull) {
    // The incremental caches under the cost terms must be drift-free too:
    // the net-bound cache against a full pin rescan, and the spatial bin
    // index against the all-pairs overlap sum.
    const std::string nb = model_->placement().net_bounds_drift();
    if (!nb.empty())
      check::fail("CostAudit", "", __FILE__, __LINE__,
                  std::string(where) + ": " + nb);
    const Coord indexed = model_->overlap().total_overlap();
    const Coord naive = model_->overlap().total_overlap_naive();
    if (indexed != naive)
      check::fail("CostAudit", "", __FILE__, __LINE__,
                  std::string(where) + ": spatial index drifted: indexed=" +
                      std::to_string(indexed) +
                      " naive=" + std::to_string(naive));
  }
}

void CostAudit::on_accept(const CostTerms& incremental, const char* where) {
  if (params_.every_accepts <= 0) return;
  if (++accepts_since_check_ < params_.every_accepts) return;
  accepts_since_check_ = 0;
  checkpoint(incremental, where);
}

void CostAudit::on_temperature_step(const CostTerms& incremental,
                                    const char* where) {
  if (!params_.at_temperature_steps) return;
  checkpoint(incremental, where);
}

}  // namespace tw
