// CostAudit: the incremental-cost drift checker.
//
// Stage 1 and stage 2 maintain the Eqn 6-11 cost terms (C1 TEIC, C2
// overlap, C3 pin-site penalty) incrementally: every accepted move adds
// its partial-evaluation delta to a running CostTerms. A bug in any
// partial evaluation — a net missed in the affected set, an overlap pair
// counted twice, a site-occupancy update skipped — silently desynchronizes
// the running totals from the true cost, and the anneal optimizes the
// wrong function while every reported number looks plausible.
//
// CostAudit recomputes all three terms from scratch (CostModel::full())
// at configurable checkpoints — every N accepted moves and/or at every
// temperature step — and compares each term against the incrementally-
// maintained value. On drift it raises a contract violation whose message
// names exactly which term drifted and by how much.
//
// The annealers wire this in unconditionally; with default parameters the
// accept-interval is off and temperature-step checks are enabled only at
// TW_CHECK_LEVEL=full, so release builds pay nothing.
#pragma once

#include <string>

#include "check/contracts.hpp"
#include "place/cost.hpp"

namespace tw {

struct CostAuditParams {
  /// Recompute-and-compare every this many accepted moves (0 = disabled).
  int every_accepts = 0;

  /// Check at every temperature step (defaults on at full check level).
  bool at_temperature_steps = check::kLevel >= check::kLevelFull;

  /// Relative comparison tolerance per term: a term t drifted when
  /// |inc - ref| > epsilon * max(1, |ref|). The default leaves ~6 decades
  /// of headroom above worst-case double accumulation over one inner loop.
  double epsilon = 1e-6;
};

/// Result of one recompute-and-compare.
struct CostDriftReport {
  CostTerms incremental;  ///< the annealer's running totals
  CostTerms recomputed;   ///< CostModel::full() at the checkpoint
  bool c1_drifted = false;
  bool c2_drifted = false;
  bool c3_drifted = false;

  bool any() const { return c1_drifted || c2_drifted || c3_drifted; }

  /// Names the drifted term(s) with incremental/recomputed values and the
  /// per-term deltas, e.g. "C2 drifted: incremental=12 recomputed=14 ...".
  std::string str() const;
};

class CostAudit {
public:
  explicit CostAudit(const CostModel& model, CostAuditParams params = {});

  const CostAuditParams& params() const { return params_; }

  /// Recomputes from scratch and compares; no side effects, never raises.
  CostDriftReport compare(const CostTerms& incremental) const;

  /// Counts an accepted move; runs a checkpoint when the accept interval
  /// elapses. Raises a contract violation (kind "CostAudit") on drift.
  void on_accept(const CostTerms& incremental, const char* where);

  /// Temperature-step checkpoint. Call *before* resynchronizing the
  /// running totals (the resync would mask exactly the drift this hunts).
  void on_temperature_step(const CostTerms& incremental, const char* where);

  /// Checkpoints that actually ran (for tests and diagnostics).
  long long checks_run() const { return checks_; }

private:
  void checkpoint(const CostTerms& incremental, const char* where);

  const CostModel* model_;
  CostAuditParams params_;
  long long accepts_since_check_ = 0;
  long long checks_ = 0;
};

}  // namespace tw
