// Invariant contracts for TimberWolfMC.
//
// The annealer's speed comes entirely from incrementally-maintained state
// (running cost totals, cached expanded tiles, pin-site occupancy); a
// silent drift bug in any of it invalidates every downstream number. The
// macros here make such bugs loud, at a compile-time-selected cost:
//
//   TW_CHECK_LEVEL=0 (off)    all contracts compile to no-ops
//   TW_CHECK_LEVEL=1 (cheap)  O(1) argument/bounds/state checks
//   TW_CHECK_LEVEL=2 (full)   adds whole-structure validation and the
//                             CostAudit recompute-from-scratch checkpoints
//
// The build system maps the string option TW_CHECK_LEVEL=off|cheap|full to
// this macro (cheap is the Debug default, off the Release default).
//
// Macro vocabulary (cheap level unless suffixed _FULL):
//
//   TW_REQUIRE(cond, ...)  precondition at a public entry point
//   TW_ENSURE(cond, ...)   postcondition before returning
//   TW_ASSERT(cond, ...)   internal invariant
//
// Trailing arguments are streamed into the failure message, so contracts
// print the offending values:
//
//   TW_REQUIRE(site >= 0 && site < n, "site=", site, " n=", n);
//
// A violation formats the message and calls the installed handler; the
// default prints to stderr and aborts. Tests install a throwing handler
// (ScopedContractTrap) to assert that bad inputs are caught without
// killing the test binary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#ifndef TW_CHECK_LEVEL
#define TW_CHECK_LEVEL 1
#endif

namespace tw::check {

inline constexpr int kLevelOff = 0;
inline constexpr int kLevelCheap = 1;
inline constexpr int kLevelFull = 2;

/// The level this translation unit was compiled at. Use
/// `if constexpr (check::kLevel >= check::kLevelFull)` to gate expensive
/// validation whose inputs the macros alone cannot express.
inline constexpr int kLevel = TW_CHECK_LEVEL;

/// Everything known about a failed contract.
struct Violation {
  const char* kind = "";  ///< "TW_ASSERT", "TW_REQUIRE", ..., "CostAudit"
  const char* expr = "";  ///< stringified condition ("" for runtime checks)
  const char* file = "";
  int line = 0;
  std::string message;    ///< formatted context values

  std::string str() const;
};

/// Thrown by the trap handler installed by ScopedContractTrap.
struct ContractViolation : std::runtime_error {
  explicit ContractViolation(const Violation& v);
  Violation violation;
};

using Handler = void (*)(const Violation&);

/// Installs a violation handler and returns the previous one. The handler
/// may throw (how tests trap violations); if it returns normally the
/// process aborts — a contract violation is never continuable.
Handler set_violation_handler(Handler h);

/// Formats and dispatches a violation (used by the macros and by runtime
/// checkers like CostAudit). Aborts unless the installed handler throws.
void fail(const char* kind, const char* expr, const char* file, int line,
          std::string message);

/// RAII: routes violations into ContractViolation exceptions for the
/// duration of a test, restoring the previous handler on destruction.
class ScopedContractTrap {
public:
  ScopedContractTrap();
  ~ScopedContractTrap();
  ScopedContractTrap(const ScopedContractTrap&) = delete;
  ScopedContractTrap& operator=(const ScopedContractTrap&) = delete;

private:
  Handler previous_;
};

namespace detail {

template <typename... Args>
std::string format(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

}  // namespace detail
}  // namespace tw::check

#define TW_CHECK_IMPL(kind, cond, ...)                              \
  do {                                                              \
    if (!(cond))                                                    \
      ::tw::check::fail(kind, #cond, __FILE__, __LINE__,            \
                        ::tw::check::detail::format(__VA_ARGS__));  \
  } while (0)

#define TW_CHECK_NOP() \
  do {                 \
  } while (0)

#if TW_CHECK_LEVEL >= 1
#define TW_ASSERT(cond, ...) TW_CHECK_IMPL("TW_ASSERT", cond, __VA_ARGS__)
#define TW_REQUIRE(cond, ...) TW_CHECK_IMPL("TW_REQUIRE", cond, __VA_ARGS__)
#define TW_ENSURE(cond, ...) TW_CHECK_IMPL("TW_ENSURE", cond, __VA_ARGS__)
#else
#define TW_ASSERT(...) TW_CHECK_NOP()
#define TW_REQUIRE(...) TW_CHECK_NOP()
#define TW_ENSURE(...) TW_CHECK_NOP()
#endif

#if TW_CHECK_LEVEL >= 2
#define TW_ASSERT_FULL(cond, ...) \
  TW_CHECK_IMPL("TW_ASSERT_FULL", cond, __VA_ARGS__)
#define TW_REQUIRE_FULL(cond, ...) \
  TW_CHECK_IMPL("TW_REQUIRE_FULL", cond, __VA_ARGS__)
#define TW_ENSURE_FULL(cond, ...) \
  TW_CHECK_IMPL("TW_ENSURE_FULL", cond, __VA_ARGS__)
#else
#define TW_ASSERT_FULL(...) TW_CHECK_NOP()
#define TW_REQUIRE_FULL(...) TW_CHECK_NOP()
#define TW_ENSURE_FULL(...) TW_CHECK_NOP()
#endif
