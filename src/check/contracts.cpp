#include "check/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace tw::check {
namespace {

void default_handler(const Violation& v) {
  std::fputs(v.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

// Atomic: pool replicas evaluate contracts concurrently while a test's
// ScopedContractTrap may install/restore handlers on the main thread.
std::atomic<Handler> g_handler{&default_handler};

void throwing_handler(const Violation& v) { throw ContractViolation(v); }

}  // namespace

std::string Violation::str() const {
  std::ostringstream os;
  os << file << ':' << line << ": contract violation: " << kind;
  if (expr[0] != '\0') os << '(' << expr << ')';
  if (!message.empty()) os << ": " << message;
  return os.str();
}

ContractViolation::ContractViolation(const Violation& v)
    : std::runtime_error(v.str()), violation(v) {}

Handler set_violation_handler(Handler h) {
  return g_handler.exchange(h != nullptr ? h : &default_handler);
}

void fail(const char* kind, const char* expr, const char* file, int line,
          std::string message) {
  Violation v;
  v.kind = kind;
  v.expr = expr;
  v.file = file;
  v.line = line;
  v.message = std::move(message);
  g_handler.load()(v);
  // A handler that does not throw cannot make the violation continuable.
  std::abort();
}

ScopedContractTrap::ScopedContractTrap()
    : previous_(set_violation_handler(&throwing_handler)) {}

ScopedContractTrap::~ScopedContractTrap() { set_violation_handler(previous_); }

}  // namespace tw::check
