#include "check/contracts.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace tw::check {
namespace {

void default_handler(const Violation& v) {
  std::fputs(v.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

// Single-threaded by design (the annealer is single-threaded); revisit
// with the parallel-moves work.
Handler g_handler = &default_handler;

void throwing_handler(const Violation& v) { throw ContractViolation(v); }

}  // namespace

std::string Violation::str() const {
  std::ostringstream os;
  os << file << ':' << line << ": contract violation: " << kind;
  if (expr[0] != '\0') os << '(' << expr << ')';
  if (!message.empty()) os << ": " << message;
  return os.str();
}

ContractViolation::ContractViolation(const Violation& v)
    : std::runtime_error(v.str()), violation(v) {}

Handler set_violation_handler(Handler h) {
  return std::exchange(g_handler, h != nullptr ? h : &default_handler);
}

void fail(const char* kind, const char* expr, const char* file, int line,
          std::string message) {
  Violation v;
  v.kind = kind;
  v.expr = expr;
  v.file = file;
  v.line = line;
  v.message = std::move(message);
  g_handler(v);
  // A handler that does not throw cannot make the violation continuable.
  std::abort();
}

ScopedContractTrap::ScopedContractTrap()
    : previous_(set_violation_handler(&throwing_handler)) {}

ScopedContractTrap::~ScopedContractTrap() { set_violation_handler(previous_); }

}  // namespace tw::check
