// ValidationReport: the result type shared by every whole-structure
// validator (netlist, placement, routing).
//
// This header sits at the bottom of the layering (no domain includes) so
// that validators can live next to the structures they validate —
// validate_netlist is owned by src/netlist, while the placement/routing
// validators, which need the upper-layer types, stay in
// check/validate.hpp. See DESIGN.md "Layering (normative)".
#pragma once

#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace tw {

struct ValidationIssue {
  std::string where;   ///< object, e.g. "cell 3 'alu'" or "net 7"
  std::string detail;  ///< what is wrong, with the offending values
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const { return issues.empty(); }
  /// Every issue on one "; "-joined line ("ok" when clean) —
  /// contract-message friendly.
  std::string str() const {
    if (ok()) return "ok";
    std::ostringstream os;
    for (std::size_t i = 0; i < issues.size(); ++i) {
      if (i > 0) os << "; ";
      os << issues[i].where << ": " << issues[i].detail;
    }
    return os.str();
  }
};

namespace check_detail {

/// Streams the trailing arguments into one issue, so validators report
/// the offending values the same way the contract macros do.
template <typename... Args>
void add_issue(ValidationReport& r, std::string where, const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  r.issues.push_back({std::move(where), os.str()});
}

}  // namespace check_detail

}  // namespace tw
