#include "check/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "route/steiner.hpp"

namespace tw {
namespace {

std::string cell_label(const Cell& c) {
  std::ostringstream os;
  os << "cell " << c.id << " '" << c.name << "'";
  return os.str();
}

template <typename... Args>
void add_issue(ValidationReport& r, std::string where, const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  r.issues.push_back({std::move(where), os.str()});
}

bool near(double a, double b, double eps = 1e-9) {
  return std::abs(a - b) <= eps * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

}  // namespace

std::string ValidationReport::str() const {
  if (ok()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < issues.size(); ++i) {
    if (i > 0) os << "; ";
    os << issues[i].where << ": " << issues[i].detail;
  }
  return os.str();
}

ValidationReport validate_netlist(const Netlist& nl) {
  ValidationReport r;
  const auto num_cells = static_cast<std::size_t>(nl.num_cells());
  const auto num_nets = static_cast<std::size_t>(nl.num_nets());
  const auto num_pins = static_cast<std::size_t>(nl.num_pins());

  for (std::size_t ci = 0; ci < num_cells; ++ci) {
    const Cell& c = nl.cells()[ci];
    if (c.id != static_cast<CellId>(ci))
      add_issue(r, cell_label(c), "id ", c.id, " != index ", ci);
    if (c.instances.empty()) {
      add_issue(r, cell_label(c), "no instances");
      continue;
    }
    for (std::size_t k = 0; k < c.instances.size(); ++k)
      if (c.instances[k].pin_offsets.size() != c.pins.size())
        add_issue(r, cell_label(c), "instance ", k, " has ",
                  c.instances[k].pin_offsets.size(), " pin offsets for ",
                  c.pins.size(), " pins");
    for (PinId pid : c.pins) {
      if (pid < 0 || static_cast<std::size_t>(pid) >= num_pins) {
        add_issue(r, cell_label(c), "pin id ", pid, " out of range");
        continue;
      }
      if (nl.pin(pid).cell != c.id)
        add_issue(r, cell_label(c), "pin ", pid, " claims cell ",
                  nl.pin(pid).cell);
    }
    for (std::size_t gi = 0; gi < c.groups.size(); ++gi) {
      const PinGroup& g = c.groups[gi];
      if (g.side_mask == 0)
        add_issue(r, cell_label(c), "group ", gi, " has empty side mask");
      for (PinId pid : g.pins) {
        if (pid < 0 || static_cast<std::size_t>(pid) >= num_pins ||
            nl.pin(pid).cell != c.id)
          add_issue(r, cell_label(c), "group ", gi, " member pin ", pid,
                    " is not a pin of this cell");
        else if (nl.pin(pid).group != static_cast<GroupId>(gi))
          add_issue(r, cell_label(c), "group ", gi, " member pin ", pid,
                    " claims group ", nl.pin(pid).group);
      }
    }
    if (c.is_custom()) {
      if (c.aspect_lo <= 0.0 || c.aspect_hi < c.aspect_lo)
        add_issue(r, cell_label(c), "bad aspect range [", c.aspect_lo, ", ",
                  c.aspect_hi, "]");
      for (double a : c.discrete_aspects)
        if (a <= 0.0)
          add_issue(r, cell_label(c), "non-positive discrete aspect ", a);
      if (c.sites_per_edge < 1)
        add_issue(r, cell_label(c), "sites_per_edge=", c.sites_per_edge);
      // Pin-site capacity: the initial realization's sites must be able to
      // hold every uncommitted pin (otherwise C3 can never reach zero).
      int uncommitted = 0;
      for (PinId pid : c.pins)
        if (!nl.pin(pid).committed()) ++uncommitted;
      if (uncommitted > 0 && c.sites_per_edge >= 1) {
        const auto sites =
            make_pin_sites(c.instances.front(), c.sites_per_edge,
                           nl.tech().track_separation);
        long long capacity = 0;
        for (const PinSite& s : sites) capacity += s.capacity;
        if (capacity < uncommitted)
          add_issue(r, cell_label(c), "pin-site capacity ", capacity,
                    " cannot hold ", uncommitted, " uncommitted pins");
      }
    }
  }

  for (std::size_t pi = 0; pi < num_pins; ++pi) {
    const Pin& p = nl.pins()[pi];
    std::ostringstream where;
    where << "pin " << pi << " '" << p.name << "'";
    if (p.id != static_cast<PinId>(pi))
      add_issue(r, where.str(), "id ", p.id, " != index ", pi);
    if (p.cell < 0 || static_cast<std::size_t>(p.cell) >= num_cells) {
      add_issue(r, where.str(), "cell ", p.cell, " out of range");
    } else {
      const auto& pins = nl.cell(p.cell).pins;
      if (std::find(pins.begin(), pins.end(), static_cast<PinId>(pi)) ==
          pins.end())
        add_issue(r, where.str(), "not listed by its cell ", p.cell);
    }
    if (p.net < 0 || static_cast<std::size_t>(p.net) >= num_nets) {
      add_issue(r, where.str(), "net ", p.net, " out of range");
    } else {
      const auto& pins = nl.net(p.net).pins;
      if (std::find(pins.begin(), pins.end(), static_cast<PinId>(pi)) ==
          pins.end())
        add_issue(r, where.str(), "not listed by its net ", p.net);
    }
    if (p.commit != PinCommit::kFixed && p.side_mask == 0)
      add_issue(r, where.str(), "uncommitted pin with empty side mask");
  }

  for (std::size_t ni = 0; ni < num_nets; ++ni) {
    const Net& n = nl.nets()[ni];
    std::ostringstream where;
    where << "net " << ni << " '" << n.name << "'";
    if (n.id != static_cast<NetId>(ni))
      add_issue(r, where.str(), "id ", n.id, " != index ", ni);
    if (n.degree() < 2)
      add_issue(r, where.str(), "degree ", n.degree(), " < 2");
    if (n.weight_h < 0.0 || n.weight_v < 0.0)
      add_issue(r, where.str(), "negative weight h=", n.weight_h,
                " v=", n.weight_v);
    for (PinId pid : n.pins)
      if (pid < 0 || static_cast<std::size_t>(pid) >= num_pins ||
          nl.pin(pid).net != n.id)
        add_issue(r, where.str(), "member pin ", pid,
                  " does not reference this net");
  }
  return r;
}

ValidationReport validate_placement(const Placement& placement,
                                    const PlacementCheckOptions& options) {
  ValidationReport r;
  const Netlist& nl = placement.netlist();

  for (const Cell& c : nl.cells()) {
    const CellState& st = placement.state(c.id);
    const auto orient_raw = static_cast<int>(st.orient);
    bool geometry_usable = true;
    if (orient_raw < 0 || orient_raw >= 8) {
      add_issue(r, cell_label(c), "illegal orientation ", orient_raw);
      geometry_usable = false;
    }
    if (st.instance < 0 ||
        static_cast<std::size_t>(st.instance) >= c.instances.size()) {
      add_issue(r, cell_label(c), "instance ", st.instance, " of ",
                c.instances.size());
      geometry_usable = false;
    }

    if (options.core && !options.core->contains(st.center))
      add_issue(r, cell_label(c), "center (", st.center.x, ", ", st.center.y,
                ") outside core ", options.core->str());

    // The tile decomposition must stay internally disjoint under the
    // current orientation/instance/aspect realization. Geometry queries
    // require a legal orientation and instance, so skip them when either
    // is corrupt (the issue is already recorded above).
    if (geometry_usable) {
      const auto tiles = placement.absolute_tiles(c.id);
      if (tiles.empty()) add_issue(r, cell_label(c), "no tiles");
      for (std::size_t i = 0; i < tiles.size(); ++i) {
        if (!tiles[i].valid() || tiles[i].area() == 0)
          add_issue(r, cell_label(c), "degenerate tile ", i, " ",
                    tiles[i].str());
        for (std::size_t j = i + 1; j < tiles.size(); ++j)
          if (tiles[i].overlaps(tiles[j]))
            add_issue(r, cell_label(c), "tiles ", i, " and ", j,
                      " overlap: ", tiles[i].str(), " vs ", tiles[j].str());
      }
    }

    if (st.pin_site.size() != c.pins.size())
      add_issue(r, cell_label(c), "pin_site size ", st.pin_site.size(),
                " != pin count ", c.pins.size());

    if (c.is_custom()) {
      if (!c.discrete_aspects.empty()) {
        bool legal = false;
        for (const double a : c.discrete_aspects)
          if (std::abs(st.aspect - a) < 1e-9) legal = true;
        if (!legal)
          add_issue(r, cell_label(c), "aspect ", st.aspect,
                    " is not one of the cell's discrete aspects");
      } else if (st.aspect < c.aspect_lo - 1e-9 ||
                 st.aspect > c.aspect_hi + 1e-9) {
        add_issue(r, cell_label(c), "aspect ", st.aspect, " outside [",
                  c.aspect_lo, ", ", c.aspect_hi, "]");
      }
      if (st.site_occupancy.size() != st.sites.size())
        add_issue(r, cell_label(c), "site_occupancy size ",
                  st.site_occupancy.size(), " != site count ",
                  st.sites.size());
      std::vector<int> occupancy(st.sites.size(), 0);
      const std::size_t local_count =
          std::min(st.pin_site.size(), c.pins.size());
      for (std::size_t k = 0; k < local_count; ++k) {
        const Pin& p = nl.pin(c.pins[k]);
        const int site = st.pin_site[k];
        if (p.committed()) {
          if (site != -1)
            add_issue(r, cell_label(c), "fixed pin ", k, " assigned to site ",
                      site);
          continue;
        }
        if (site < 0 || static_cast<std::size_t>(site) >= st.sites.size()) {
          add_issue(r, cell_label(c), "pin ", k, " site ", site, " of ",
                    st.sites.size());
          continue;
        }
        ++occupancy[static_cast<std::size_t>(site)];
      }
      if (occupancy.size() == st.site_occupancy.size())
        for (std::size_t s = 0; s < occupancy.size(); ++s)
          if (occupancy[s] != st.site_occupancy[s])
            add_issue(r, cell_label(c), "site ", s, " occupancy counter ",
                      st.site_occupancy[s], " != actual ", occupancy[s]);
    } else {
      for (std::size_t k = 0; k < st.pin_site.size(); ++k)
        if (st.pin_site[k] != -1)
          add_issue(r, cell_label(c), "macro pin ", k, " assigned to site ",
                    st.pin_site[k]);
    }
  }
  return r;
}

ValidationReport validate_routing(const RoutingGraph& g,
                                  const std::vector<NetTargets>& nets,
                                  const GlobalRouteResult& result) {
  ValidationReport r;
  if (result.choice.size() != nets.size() ||
      result.alternatives.size() != nets.size()) {
    add_issue(r, "result", "sizes (choice=", result.choice.size(),
              ", alternatives=", result.alternatives.size(), ") != net count ",
              nets.size());
    return r;
  }
  if (result.edge_usage.size() != g.num_edges()) {
    add_issue(r, "result", "edge_usage size ", result.edge_usage.size(),
              " != edge count ", g.num_edges());
    return r;
  }

  std::vector<int> usage(g.num_edges(), 0);
  double length = 0.0;
  int unrouted = 0;
  for (std::size_t n = 0; n < nets.size(); ++n) {
    std::ostringstream where;
    where << "net " << n;
    const int choice = result.choice[n];
    if (choice < 0) {
      ++unrouted;
      continue;
    }
    if (static_cast<std::size_t>(choice) >= result.alternatives[n].size()) {
      add_issue(r, where.str(), "choice ", choice, " of ",
                result.alternatives[n].size(), " alternatives");
      continue;
    }
    const Route& route = result.alternatives[n][static_cast<std::size_t>(choice)];
    for (EdgeId e : route.edges) {
      if (e < 0 || static_cast<std::size_t>(e) >= g.num_edges()) {
        add_issue(r, where.str(), "edge ", e, " out of range");
        continue;
      }
      ++usage[static_cast<std::size_t>(e)];
    }
    if (!std::is_sorted(route.edges.begin(), route.edges.end()) ||
        std::adjacent_find(route.edges.begin(), route.edges.end()) !=
            route.edges.end())
      add_issue(r, where.str(), "route edges not sorted/deduplicated");
    if (!route_connects(g, nets[n], route))
      add_issue(r, where.str(), "selected route does not connect the net");
    if (!near(route.length, g.path_length(route.edges)))
      add_issue(r, where.str(), "route length ", route.length,
                " != edge-length sum ", g.path_length(route.edges));
    length += route.length;
  }

  for (std::size_t e = 0; e < usage.size(); ++e)
    if (usage[e] != result.edge_usage[e])
      add_issue(r, "edge " + std::to_string(e), "usage counter ",
                result.edge_usage[e], " != recount ", usage[e]);
  const int overflow = total_overflow(g, usage);
  if (overflow != result.total_overflow)
    add_issue(r, "result", "total_overflow ", result.total_overflow,
              " != recomputed ", overflow);
  if (unrouted != result.unrouted_nets)
    add_issue(r, "result", "unrouted_nets ", result.unrouted_nets,
              " != recount ", unrouted);
  if (!near(length, result.total_length))
    add_issue(r, "result", "total_length ", result.total_length,
              " != recomputed ", length);
  return r;
}

}  // namespace tw
