#include "check/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

namespace tw {
namespace {

using check_detail::add_issue;

std::string cell_label(const Cell& c) {
  std::ostringstream os;
  os << "cell " << c.id << " '" << c.name << "'";
  return os.str();
}

}  // namespace

ValidationReport validate_placement(const Placement& placement,
                                    const PlacementCheckOptions& options) {
  ValidationReport r;
  const Netlist& nl = placement.netlist();

  for (const Cell& c : nl.cells()) {
    const CellState& st = placement.state(c.id);
    const auto orient_raw = static_cast<int>(st.orient);
    bool geometry_usable = true;
    if (orient_raw < 0 || orient_raw >= 8) {
      add_issue(r, cell_label(c), "illegal orientation ", orient_raw);
      geometry_usable = false;
    }
    if (st.instance < 0 ||
        static_cast<std::size_t>(st.instance) >= c.instances.size()) {
      add_issue(r, cell_label(c), "instance ", st.instance, " of ",
                c.instances.size());
      geometry_usable = false;
    }

    if (options.core && !options.core->contains(st.center))
      add_issue(r, cell_label(c), "center (", st.center.x, ", ", st.center.y,
                ") outside core ", options.core->str());

    // The tile decomposition must stay internally disjoint under the
    // current orientation/instance/aspect realization. Geometry queries
    // require a legal orientation and instance, so skip them when either
    // is corrupt (the issue is already recorded above).
    if (geometry_usable) {
      const auto tiles = placement.absolute_tiles(c.id);
      if (tiles.empty()) add_issue(r, cell_label(c), "no tiles");
      for (std::size_t i = 0; i < tiles.size(); ++i) {
        if (!tiles[i].valid() || tiles[i].area() == 0)
          add_issue(r, cell_label(c), "degenerate tile ", i, " ",
                    tiles[i].str());
        for (std::size_t j = i + 1; j < tiles.size(); ++j)
          if (tiles[i].overlaps(tiles[j]))
            add_issue(r, cell_label(c), "tiles ", i, " and ", j,
                      " overlap: ", tiles[i].str(), " vs ", tiles[j].str());
      }
    }

    if (st.pin_site.size() != c.pins.size())
      add_issue(r, cell_label(c), "pin_site size ", st.pin_site.size(),
                " != pin count ", c.pins.size());

    if (c.is_custom()) {
      if (!c.discrete_aspects.empty()) {
        bool legal = false;
        for (const double a : c.discrete_aspects)
          if (std::abs(st.aspect - a) < 1e-9) legal = true;
        if (!legal)
          add_issue(r, cell_label(c), "aspect ", st.aspect,
                    " is not one of the cell's discrete aspects");
      } else if (st.aspect < c.aspect_lo - 1e-9 ||
                 st.aspect > c.aspect_hi + 1e-9) {
        add_issue(r, cell_label(c), "aspect ", st.aspect, " outside [",
                  c.aspect_lo, ", ", c.aspect_hi, "]");
      }
      if (st.site_occupancy.size() != st.sites.size())
        add_issue(r, cell_label(c), "site_occupancy size ",
                  st.site_occupancy.size(), " != site count ",
                  st.sites.size());
      std::vector<int> occupancy(st.sites.size(), 0);
      const std::size_t local_count =
          std::min(st.pin_site.size(), c.pins.size());
      for (std::size_t k = 0; k < local_count; ++k) {
        const Pin& p = nl.pin(c.pins[k]);
        const int site = st.pin_site[k];
        if (p.committed()) {
          if (site != -1)
            add_issue(r, cell_label(c), "fixed pin ", k, " assigned to site ",
                      site);
          continue;
        }
        if (site < 0 || static_cast<std::size_t>(site) >= st.sites.size()) {
          add_issue(r, cell_label(c), "pin ", k, " site ", site, " of ",
                    st.sites.size());
          continue;
        }
        ++occupancy[static_cast<std::size_t>(site)];
      }
      if (occupancy.size() == st.site_occupancy.size())
        for (std::size_t s = 0; s < occupancy.size(); ++s)
          if (occupancy[s] != st.site_occupancy[s])
            add_issue(r, cell_label(c), "site ", s, " occupancy counter ",
                      st.site_occupancy[s], " != actual ", occupancy[s]);
    } else {
      for (std::size_t k = 0; k < st.pin_site.size(); ++k)
        if (st.pin_site[k] != -1)
          add_issue(r, cell_label(c), "macro pin ", k, " assigned to site ",
                    st.pin_site[k]);
    }
  }
  return r;
}

}  // namespace tw
