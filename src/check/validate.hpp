// Domain validators: whole-structure consistency checks for the netlist,
// the placement state, and global-routing results.
//
// Unlike the contract macros (compile-time gated, abort on failure), the
// validators always compile and return a ValidationReport listing every
// violation found, so tests can probe deliberately-broken inputs and
// callers can decide between logging and failing. The annealers run them
// through TW_*_FULL contracts at their entry/exit boundaries, so a full-
// checks build turns any inconsistency into a hard failure.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "place/placement.hpp"
#include "route/interchange.hpp"

namespace tw {

struct ValidationIssue {
  std::string where;   ///< object, e.g. "cell 3 'alu'" or "net 7"
  std::string detail;  ///< what is wrong, with the offending values
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const { return issues.empty(); }
  /// One line per issue ("ok" when clean) — contract-message friendly.
  std::string str() const;
};

/// Structural netlist invariants: pin/net/cell cross-references are
/// mutually consistent, net degrees >= 2, every cell has at least one
/// instance with per-pin offsets, custom aspect-ratio ranges are sane, and
/// per-cell pin-site capacity can accommodate the uncommitted pins.
ValidationReport validate_netlist(const Netlist& nl);

struct PlacementCheckOptions {
  /// When set, every cell center must lie inside this core region (the
  /// annealers clamp displacement targets to the core, so mid-anneal
  /// centers are always inside; full bboxes may legitimately protrude and
  /// are only penalized via C2's border overlap).
  std::optional<Rect> core;
};

/// Placement-state invariants: tile decompositions are internally
/// disjoint, orientations are legal, the selected instance exists, custom
/// aspects lie in the cell's range, pin-site assignments are in range with
/// occupancy counters that match, and (optionally) centers are inside the
/// core.
ValidationReport validate_placement(const Placement& placement,
                                    const PlacementCheckOptions& options = {});

/// Global-routing invariants: every selected route connects its net (one
/// alternative of every logical pin in one connected component), edge
/// usage equals the recount over selected routes, the total overflow
/// matches the per-edge excess over capacities, and the reported length
/// and unrouted count match the selections.
ValidationReport validate_routing(const RoutingGraph& g,
                                  const std::vector<NetTargets>& nets,
                                  const GlobalRouteResult& result);

}  // namespace tw
