// Domain validators: whole-structure consistency checks for the netlist,
// the placement state, and global-routing results.
//
// Unlike the contract macros (compile-time gated, abort on failure), the
// validators always compile and return a ValidationReport listing every
// violation found, so tests can probe deliberately-broken inputs and
// callers can decide between logging and failing. The annealers run them
// through TW_*_FULL contracts at their entry/exit boundaries, so a full-
// checks build turns any inconsistency into a hard failure.
#pragma once

#include <optional>

#include "check/validation_report.hpp"
#include "netlist/validate.hpp"  // re-export: validate_netlist lives with the netlist model
#include "place/placement.hpp"
#include "route/validate.hpp"  // re-export: validate_routing lives with the route model

namespace tw {

struct PlacementCheckOptions {
  /// When set, every cell center must lie inside this core region (the
  /// annealers clamp displacement targets to the core, so mid-anneal
  /// centers are always inside; full bboxes may legitimately protrude and
  /// are only penalized via C2's border overlap).
  std::optional<Rect> core;
};

/// Placement-state invariants: tile decompositions are internally
/// disjoint, orientations are legal, the selected instance exists, custom
/// aspects lie in the cell's range, pin-site assignments are in range with
/// occupancy counters that match, and (optionally) centers are inside the
/// core.
ValidationReport validate_placement(const Placement& placement,
                                    const PlacementCheckOptions& options = {});

}  // namespace tw
