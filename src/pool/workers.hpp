// Fixed crew of slot-claiming worker threads for intra-run parallelism.
//
// The ReplicaPool's executor (src/pool/executor.*) parallelizes across
// independent flows; WorkerCrew parallelizes *inside* one algorithm: a
// caller repeatedly hands it a batch of independent slots (speculative
// move evaluations, per-replica state replays) and blocks until every
// slot has run. Threads are spawned once and parked between batches, so
// the per-batch overhead is one wake/join handshake, not thread churn.
//
// Determinism contract: the crew guarantees only that each slot index in
// [0, num_slots) is executed exactly once per run() and that run() is a
// full barrier (all slot effects happen-before run() returns). Which
// worker claims which slot is scheduling-dependent — callers that need
// thread-count-independent results must key all randomness and all
// output locations off the *slot* index (see derive_slot_seed and the
// parallel annealer's commit pass), never off the worker id.
//
// The worker id passed to the job selects per-worker scratch (one
// workspace per worker, like the router's SearchWorkspace pattern); two
// slots running concurrently always see different worker ids.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tw {

class WorkerCrew {
public:
  /// Runs one slot: `job(worker, slot)`. `worker` is in [0, num_workers)
  /// and is stable for the duration of the slot; `slot` is in
  /// [0, num_slots) of the current run() call.
  using Job = std::function<void(int worker, int slot)>;

  /// Spawns `num_workers - 1` helper threads (the calling thread of
  /// run() participates as worker 0). num_workers <= 1 spawns nothing
  /// and run() degenerates to a serial loop.
  explicit WorkerCrew(int num_workers);
  ~WorkerCrew();

  WorkerCrew(const WorkerCrew&) = delete;
  WorkerCrew& operator=(const WorkerCrew&) = delete;

  int num_workers() const { return num_workers_; }

  /// Executes `job` for every slot in [0, num_slots), distributing slots
  /// over the crew by atomic claiming, and returns when all have
  /// finished. If any slot throws, the batch drains (remaining slots are
  /// skipped), and the first exception is rethrown on the caller.
  /// Not reentrant: one run() at a time.
  void run(int num_slots, const Job& job);

private:
  void worker_main(int worker);
  void claim_loop(int worker);

  const int num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumped per run(); wakes the helpers
  int helpers_running_ = 0;
  bool shutdown_ = false;
  const Job* job_ = nullptr;
  int num_slots_ = 0;
  std::atomic<int> next_slot_{0};
  std::exception_ptr first_error_;  // guarded by mu_
};

}  // namespace tw
