#include "pool/executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "check/contracts.hpp"
#include "util/log.hpp"

namespace tw::pool {
namespace {

/// Deterministic best-feasible order, identical to ReplicaPool's: lower
/// TEIL, then smaller chip area, then lower replica id (implicit via
/// strict improvement over the in-order scan).
bool improves(const ReplicaReport& candidate, const ReplicaReport& best) {
  if (candidate.final_teil != best.final_teil)
    return candidate.final_teil < best.final_teil;
  return candidate.final_chip_area < best.final_chip_area;
}

int select_best(const std::vector<ReplicaReport>& replicas) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(replicas.size()); ++i) {
    const ReplicaReport& r = replicas[static_cast<std::size_t>(i)];
    if (r.outcome != ReplicaOutcome::kSucceeded) continue;
    if (best < 0 || improves(r, replicas[static_cast<std::size_t>(best)]))
      best = i;
  }
  return best;
}

ReplicaReport rejected_report(int replica, const std::string& why) {
  ReplicaReport r;
  r.replica = replica;
  r.outcome = ReplicaOutcome::kFailed;
  AttemptRecord rec;
  rec.outcome = AttemptOutcome::kError;
  rec.error = why;
  r.attempts.push_back(std::move(rec));
  return r;
}

int clamp_priority(int p) {
  return std::clamp(p, 0, kNumPriorities - 1);
}

}  // namespace

struct PoolExecutor::Shared {
  /// One submitted job's live state. `cancel` and `preempt` are the only
  /// fields touched outside `mu`: workers read them lock-free through
  /// ReplicaConfig, and each worker writes only its own `reports` slot —
  /// the disjoint-slot pattern of ReplicaPool — before re-acquiring `mu`
  /// to decrement `remaining`, which is what publishes the slot to
  /// whoever assembles the result.
  struct JobState {
    ExecutorJob spec;
    std::atomic<bool> cancel{false};
    std::atomic<bool> preempt{false};
    int remaining = 0;                    // mu: tasks not yet reported
    int running = 0;                      // mu: tasks on a worker right now
    std::vector<ReplicaReport> reports;   // disjoint slots, one per task
    /// Per-replica crash/preempt re-adoption flags (mu): a preempted
    /// replica re-runs with adoption on so it resumes its own parked
    /// checkpoint instead of cold-starting.
    std::vector<bool> adopt;
  };

  /// Priority-ordered ready queue. Key = (kNumPriorities - 1 - priority,
  /// seq): workers always claim the highest priority, FIFO within a
  /// class — deterministic for any arrival order.
  using QueueKey = std::pair<int, std::uint64_t>;
  struct Task {
    std::shared_ptr<JobState> job;
    int replica = 0;
  };

  std::mutex mu;
  std::condition_variable cv;
  bool stopping = false;                                        // mu
  std::uint64_t next_seq = 0;                                   // mu
  std::map<std::uint64_t, std::shared_ptr<JobState>> jobs;      // mu
  std::map<QueueKey, Task> queue;                               // mu
  std::int64_t preempted = 0;                                   // mu
  std::int64_t resumed = 0;                                     // mu
  std::vector<std::thread> workers;  // mu; joined once by shutdown()
  Hooks hooks;                       // immutable after construction

  void enqueue_locked(const std::shared_ptr<JobState>& st, int replica) {
    const QueueKey key{kNumPriorities - 1 - clamp_priority(st->spec.priority),
                       next_seq++};
    queue.emplace(key, Task{st, replica});
  }

  /// Picks the preemption victim for an arriving job of `priority`: the
  /// lowest-priority running job strictly below it that checkpoints (a
  /// job without a checkpoint root cannot park), newest job id as the
  /// deterministic tiebreak. Returns nullptr when nothing qualifies.
  std::shared_ptr<JobState> preempt_victim_locked(int priority) {
    std::shared_ptr<JobState> victim;
    for (const auto& [id, st] : jobs) {
      if (st->running <= 0) continue;
      if (st->spec.checkpoint_root.empty()) continue;
      if (clamp_priority(st->spec.priority) >= priority) continue;
      if (st->preempt.load(std::memory_order_relaxed)) continue;
      if (!victim ||
          clamp_priority(st->spec.priority) <
              clamp_priority(victim->spec.priority) ||
          (clamp_priority(st->spec.priority) ==
               clamp_priority(victim->spec.priority) &&
           st->spec.job > victim->spec.job))
        victim = st;
    }
    return victim;
  }

  void worker_loop();
  /// Runs one task. nullopt means the task was preempted and re-queued —
  /// no report slot was filled and `remaining` must not budge.
  std::optional<ReplicaReport> run_task(const std::shared_ptr<JobState>& job,
                                        int replica, bool adopt);
};

std::optional<ReplicaReport> PoolExecutor::Shared::run_task(
    const std::shared_ptr<JobState>& job, int replica, bool adopt) {
  const ExecutorJob& spec = job->spec;
  ReplicaConfig cfg;
  cfg.replica = replica;
  cfg.master_seed = spec.master_seed;
  cfg.base = spec.base;
  cfg.max_attempts = spec.max_attempts;
  cfg.watchdog = spec.watchdog;
  cfg.budget_moves = spec.budget_moves;
  cfg.budget_steps = spec.budget_steps;
  if (!spec.checkpoint_root.empty())
    cfg.checkpoint_dir =
        spec.checkpoint_root + "/replica-" + std::to_string(replica);
  cfg.checkpoint_every = spec.checkpoint_every;
  cfg.checkpoint_keep = spec.checkpoint_keep;
  cfg.checkpoint_quota_bytes = spec.checkpoint_quota_bytes;
  cfg.disk_faults = spec.disk_faults;
  cfg.adopt_existing = adopt;
  cfg.cancel = &job->cancel;
  cfg.preempt = &job->preempt;
  if (hooks.on_progress) {
    const auto forward = hooks.on_progress;
    const std::uint64_t id = spec.job;
    cfg.on_progress = [forward, id, replica](const FlowProgress& pg) {
      forward(id, replica, pg);
    };
  }
  try {
    return run_replica(*spec.nl, cfg);
  } catch (const recover::Preempted& e) {
    // Parked, not failed: the replica's newest checkpoint holds exactly
    // this boundary. Re-queue it (at the job's own priority) with
    // adoption on; the resumed run is byte-identical to one that was
    // never preempted, because resume replays from the saved cursor.
    log_info("executor job ", spec.job, " replica ", replica, " ", e.what(),
             "; re-queued for resume");
    std::lock_guard<std::mutex> lock(mu);
    job->adopt[static_cast<std::size_t>(replica)] = true;
    ++preempted;
    enqueue_locked(job, replica);
    cv.notify_one();
    return std::nullopt;
  } catch (const std::exception& e) {
    // run_replica absorbs flow failures; anything reaching here
    // (bad_alloc, a throwing contract trap) must not take the worker —
    // and with it every queued job — down.
    return rejected_report(replica, e.what());
  }
}

void PoolExecutor::Shared::worker_loop() {
  for (;;) {
    std::shared_ptr<JobState> job;
    int replica = -1;
    bool adopt = false;
    {
      std::unique_lock<std::mutex> lock(mu);
      while (queue.empty() && !stopping) cv.wait(lock);
      if (queue.empty()) return;  // stopping and fully drained
      const auto it = queue.begin();
      job = std::move(it->second.job);
      replica = it->second.replica;
      queue.erase(it);
      ++job->running;
      adopt = job->adopt[static_cast<std::size_t>(replica)];
      if (adopt) ++resumed;
      // Claiming a task of a preempted job un-parks it: everything of
      // higher priority that triggered the preemption has already
      // drained ahead of it in the queue.
      job->preempt.store(false, std::memory_order_relaxed);
    }

    std::optional<ReplicaReport> rep = run_task(job, replica, adopt);

    ExecutorResult done;
    bool finished = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      --job->running;
      if (rep.has_value()) {
        rep->replica = replica;
        job->reports[static_cast<std::size_t>(replica)] = std::move(*rep);
        if (--job->remaining == 0) {
          finished = true;
          done.job = job->spec.job;
          done.replicas = std::move(job->reports);
          jobs.erase(job->spec.job);
        }
      }
    }
    if (!finished) continue;

    done.best = select_best(done.replicas);
    int succeeded = 0;
    for (const ReplicaReport& r : done.replicas)
      succeeded += r.outcome == ReplicaOutcome::kSucceeded ? 1 : 0;
    log_info("executor job ", done.job, ": ", succeeded, "/",
             done.replicas.size(), " replica(s) succeeded",
             done.best >= 0
                 ? ", best teil=" + std::to_string(
                       done.best_report().final_teil)
                 : ", no usable result");
    // Outside the lock: on_done may re-enter submit()/cancel().
    if (hooks.on_done) hooks.on_done(std::move(done));
  }
}

PoolExecutor::PoolExecutor(int threads, Hooks hooks)
    : shared_(std::make_shared<Shared>()),
      threads_(std::max(1, threads)) {
  shared_->hooks = std::move(hooks);
  const std::shared_ptr<Shared> sh = shared_;
  shared_->workers.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i)
    shared_->workers.emplace_back([sh]() { sh->worker_loop(); });
}

PoolExecutor::~PoolExecutor() { shutdown(); }

void PoolExecutor::submit(ExecutorJob job) {
  TW_REQUIRE(job.nl != nullptr, "executor job ", job.job, " has no netlist");
  TW_REQUIRE(job.replicas >= 1, "replicas=", job.replicas);
  const int n = job.replicas;
  const std::uint64_t id = job.job;
  const int priority = clamp_priority(job.priority);

  auto st = std::make_shared<Shared::JobState>();
  st->spec = std::move(job);
  st->remaining = n;
  st->reports.resize(static_cast<std::size_t>(n));
  st->adopt.assign(static_cast<std::size_t>(n), st->spec.adopt_existing);

  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (!shared_->stopping) {
      // The emplace must stay outside TW_REQUIRE: contract macros (and
      // their argument expressions) compile away at TW_CHECK_LEVEL=0.
      const bool inserted = shared_->jobs.emplace(id, st).second;
      TW_REQUIRE(inserted, "duplicate executor job id ", id);
      (void)inserted;
      for (int i = 0; i < n; ++i) shared_->enqueue_locked(st, i);
      // Priority admission: when every worker is busy and something of
      // lower priority is running, ask it to park at its next
      // checkpoint so this job starts sooner. One victim per
      // submission — preemption frees that job's workers as its
      // replicas reach their boundaries.
      int running_total = 0;
      for (const auto& [jid, js] : shared_->jobs) running_total += js->running;
      if (priority > 0 && running_total >= threads_) {
        if (const auto victim = shared_->preempt_victim_locked(priority)) {
          victim->preempt.store(true, std::memory_order_relaxed);
          log_info("executor job ", id, " (priority ", priority,
                   ") preempts job ", victim->spec.job, " (priority ",
                   clamp_priority(victim->spec.priority), ")");
        }
      }
      shared_->cv.notify_all();
      return;
    }
  }

  // Shut down: complete the job immediately (on the submitting thread)
  // with every replica failed — never silently dropped.
  ExecutorResult done;
  done.job = id;
  for (int i = 0; i < n; ++i)
    done.replicas.push_back(rejected_report(i, "executor is shut down"));
  if (shared_->hooks.on_done) shared_->hooks.on_done(std::move(done));
}

void PoolExecutor::cancel(std::uint64_t job) {
  std::lock_guard<std::mutex> lock(shared_->mu);
  const auto it = shared_->jobs.find(job);
  if (it != shared_->jobs.end())
    it->second->cancel.store(true, std::memory_order_relaxed);
}

void PoolExecutor::preempt(std::uint64_t job) {
  std::lock_guard<std::mutex> lock(shared_->mu);
  const auto it = shared_->jobs.find(job);
  if (it != shared_->jobs.end() && it->second->running > 0 &&
      !it->second->spec.checkpoint_root.empty())
    it->second->preempt.store(true, std::memory_order_relaxed);
}

void PoolExecutor::shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stopping = true;
    for (auto& [id, st] : shared_->jobs)
      st->cancel.store(true, std::memory_order_relaxed);
    workers.swap(shared_->workers);
    shared_->cv.notify_all();
  }
  for (std::thread& t : workers) t.join();
}

PoolExecutor::Stats PoolExecutor::stats() const {
  Stats s;
  std::lock_guard<std::mutex> lock(shared_->mu);
  for (const auto& [key, task] : shared_->queue)
    ++s.queued[static_cast<std::size_t>(
        clamp_priority(task.job->spec.priority))];
  for (const auto& [id, st] : shared_->jobs)
    s.running[static_cast<std::size_t>(clamp_priority(st->spec.priority))] +=
        st->running;
  s.preempted = shared_->preempted;
  s.resumed = shared_->resumed;
  return s;
}

}  // namespace tw::pool
