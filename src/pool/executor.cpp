#include "pool/executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "check/contracts.hpp"
#include "util/log.hpp"

namespace tw::pool {
namespace {

/// Deterministic best-feasible order, identical to ReplicaPool's: lower
/// TEIL, then smaller chip area, then lower replica id (implicit via
/// strict improvement over the in-order scan).
bool improves(const ReplicaReport& candidate, const ReplicaReport& best) {
  if (candidate.final_teil != best.final_teil)
    return candidate.final_teil < best.final_teil;
  return candidate.final_chip_area < best.final_chip_area;
}

int select_best(const std::vector<ReplicaReport>& replicas) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(replicas.size()); ++i) {
    const ReplicaReport& r = replicas[static_cast<std::size_t>(i)];
    if (r.outcome != ReplicaOutcome::kSucceeded) continue;
    if (best < 0 || improves(r, replicas[static_cast<std::size_t>(best)]))
      best = i;
  }
  return best;
}

ReplicaReport rejected_report(int replica, const std::string& why) {
  ReplicaReport r;
  r.replica = replica;
  r.outcome = ReplicaOutcome::kFailed;
  AttemptRecord rec;
  rec.outcome = AttemptOutcome::kError;
  rec.error = why;
  r.attempts.push_back(std::move(rec));
  return r;
}

}  // namespace

struct PoolExecutor::Shared {
  /// One submitted job's live state. `cancel` is the only field touched
  /// outside `mu`: workers read it lock-free through ReplicaConfig, and
  /// each worker writes only its own `reports` slot — the disjoint-slot
  /// pattern of ReplicaPool — before re-acquiring `mu` to decrement
  /// `remaining`, which is what publishes the slot to whoever assembles
  /// the result.
  struct JobState {
    ExecutorJob spec;
    std::atomic<bool> cancel{false};
    int remaining = 0;                    // guarded by mu
    std::vector<ReplicaReport> reports;   // disjoint slots, one per task
  };

  std::mutex mu;
  std::condition_variable cv;
  bool stopping = false;                                        // mu
  std::map<std::uint64_t, std::shared_ptr<JobState>> jobs;      // mu
  std::deque<std::pair<std::shared_ptr<JobState>, int>> queue;  // mu
  std::vector<std::thread> workers;  // mu; joined once by shutdown()
  Hooks hooks;                       // immutable after construction

  void worker_loop();
  ReplicaReport run_task(const std::shared_ptr<JobState>& job, int replica);
};

ReplicaReport PoolExecutor::Shared::run_task(
    const std::shared_ptr<JobState>& job, int replica) {
  const ExecutorJob& spec = job->spec;
  ReplicaConfig cfg;
  cfg.replica = replica;
  cfg.master_seed = spec.master_seed;
  cfg.base = spec.base;
  cfg.max_attempts = spec.max_attempts;
  cfg.watchdog = spec.watchdog;
  cfg.budget_moves = spec.budget_moves;
  cfg.budget_steps = spec.budget_steps;
  if (!spec.checkpoint_root.empty())
    cfg.checkpoint_dir =
        spec.checkpoint_root + "/replica-" + std::to_string(replica);
  cfg.checkpoint_every = spec.checkpoint_every;
  cfg.checkpoint_keep = spec.checkpoint_keep;
  cfg.adopt_existing = spec.adopt_existing;
  cfg.cancel = &job->cancel;
  if (hooks.on_progress) {
    const auto forward = hooks.on_progress;
    const std::uint64_t id = spec.job;
    cfg.on_progress = [forward, id, replica](const FlowProgress& pg) {
      forward(id, replica, pg);
    };
  }
  try {
    return run_replica(*spec.nl, cfg);
  } catch (const std::exception& e) {
    // run_replica absorbs flow failures; anything reaching here
    // (bad_alloc, a throwing contract trap) must not take the worker —
    // and with it every queued job — down.
    return rejected_report(replica, e.what());
  }
}

void PoolExecutor::Shared::worker_loop() {
  for (;;) {
    std::shared_ptr<JobState> job;
    int replica = -1;
    {
      std::unique_lock<std::mutex> lock(mu);
      while (queue.empty() && !stopping) cv.wait(lock);
      if (queue.empty()) return;  // stopping and fully drained
      job = std::move(queue.front().first);
      replica = queue.front().second;
      queue.pop_front();
    }

    ReplicaReport rep = run_task(job, replica);
    rep.replica = replica;
    job->reports[static_cast<std::size_t>(replica)] = std::move(rep);

    ExecutorResult done;
    bool finished = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (--job->remaining == 0) {
        finished = true;
        done.job = job->spec.job;
        done.replicas = std::move(job->reports);
        jobs.erase(job->spec.job);
      }
    }
    if (!finished) continue;

    done.best = select_best(done.replicas);
    int succeeded = 0;
    for (const ReplicaReport& r : done.replicas)
      succeeded += r.outcome == ReplicaOutcome::kSucceeded ? 1 : 0;
    log_info("executor job ", done.job, ": ", succeeded, "/",
             done.replicas.size(), " replica(s) succeeded",
             done.best >= 0
                 ? ", best teil=" + std::to_string(
                       done.best_report().final_teil)
                 : ", no usable result");
    // Outside the lock: on_done may re-enter submit()/cancel().
    if (hooks.on_done) hooks.on_done(std::move(done));
  }
}

PoolExecutor::PoolExecutor(int threads, Hooks hooks)
    : shared_(std::make_shared<Shared>()),
      threads_(std::max(1, threads)) {
  shared_->hooks = std::move(hooks);
  const std::shared_ptr<Shared> sh = shared_;
  shared_->workers.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i)
    shared_->workers.emplace_back([sh]() { sh->worker_loop(); });
}

PoolExecutor::~PoolExecutor() { shutdown(); }

void PoolExecutor::submit(ExecutorJob job) {
  TW_REQUIRE(job.nl != nullptr, "executor job ", job.job, " has no netlist");
  TW_REQUIRE(job.replicas >= 1, "replicas=", job.replicas);
  const int n = job.replicas;
  const std::uint64_t id = job.job;

  auto st = std::make_shared<Shared::JobState>();
  st->spec = std::move(job);
  st->remaining = n;
  st->reports.resize(static_cast<std::size_t>(n));

  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (!shared_->stopping) {
      // The emplace must stay outside TW_REQUIRE: contract macros (and
      // their argument expressions) compile away at TW_CHECK_LEVEL=0.
      const bool inserted = shared_->jobs.emplace(id, st).second;
      TW_REQUIRE(inserted, "duplicate executor job id ", id);
      (void)inserted;
      for (int i = 0; i < n; ++i) shared_->queue.emplace_back(st, i);
      shared_->cv.notify_all();
      return;
    }
  }

  // Shut down: complete the job immediately (on the submitting thread)
  // with every replica failed — never silently dropped.
  ExecutorResult done;
  done.job = id;
  for (int i = 0; i < n; ++i)
    done.replicas.push_back(rejected_report(i, "executor is shut down"));
  if (shared_->hooks.on_done) shared_->hooks.on_done(std::move(done));
}

void PoolExecutor::cancel(std::uint64_t job) {
  std::lock_guard<std::mutex> lock(shared_->mu);
  const auto it = shared_->jobs.find(job);
  if (it != shared_->jobs.end())
    it->second->cancel.store(true, std::memory_order_relaxed);
}

void PoolExecutor::shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stopping = true;
    for (auto& [id, st] : shared_->jobs)
      st->cancel.store(true, std::memory_order_relaxed);
    workers.swap(shared_->workers);
    shared_->cv.notify_all();
  }
  for (std::thread& t : workers) t.join();
}

}  // namespace tw::pool
