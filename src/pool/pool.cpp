#include "pool/pool.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "check/contracts.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace tw::pool {
namespace {

/// Deterministic best-feasible order: lower TEIL, then smaller chip area,
/// then lower replica id (the iteration order makes the id tiebreak
/// implicit via strict improvement).
bool improves(const ReplicaReport& candidate, const ReplicaReport& best) {
  if (candidate.final_teil != best.final_teil)
    return candidate.final_teil < best.final_teil;
  return candidate.final_chip_area < best.final_chip_area;
}

}  // namespace

PoolError::PoolError(const std::string& what,
                     std::vector<ReplicaReport> replicas)
    : std::runtime_error(what), replicas_(std::move(replicas)) {}

ReplicaPool::ReplicaPool(const Netlist& nl, PoolParams params)
    : nl_(nl), params_(std::move(params)) {
  TW_REQUIRE(params_.replicas >= 1, "replicas=", params_.replicas);
  TW_REQUIRE(params_.max_attempts >= 1,
             "max_attempts=", params_.max_attempts);
}

PoolResult ReplicaPool::run(Placement& placement) {
  TW_REQUIRE(&placement.netlist() == &nl_,
             "placement was built on a different netlist");

  const int n = params_.replicas;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  int threads = params_.threads > 0 ? params_.threads
                                    : static_cast<int>(std::min(
                                          static_cast<unsigned>(n), hw));
  threads = std::clamp(threads, 1, n);

  std::vector<ReplicaReport> reports(static_cast<std::size_t>(n));
  std::atomic<int> next{0};

  // Each worker claims replica ids off the shared counter and writes only
  // its own report slot; the joins below publish every slot to this
  // thread. No other state is shared — the netlist is immutable after
  // construction and each replica owns its placement, RNG streams, budget
  // and checkpoint directory. The capture list is explicit (enforced by
  // semlint's pool-capture check): const views of the immutable inputs,
  // the two atomics, and the disjoint-slot report vector.
  const PoolParams& params = params_;
  const Netlist& nl = nl_;
  std::atomic<bool>& cancel = cancel_;
  const auto worker = [n, &params, &nl, &cancel, &next, &reports]() {
    for (;;) {
      const int id = next.fetch_add(1, std::memory_order_relaxed);
      if (id >= n) return;
      ReplicaConfig cfg;
      cfg.replica = id;
      cfg.master_seed = params.master_seed;
      cfg.base = params.base;
      cfg.max_attempts = params.max_attempts;
      cfg.watchdog = params.watchdog;
      cfg.budget_moves = params.budget_moves;
      cfg.budget_steps = params.budget_steps;
      if (!params.checkpoint_root.empty())
        cfg.checkpoint_dir =
            params.checkpoint_root + "/replica-" + std::to_string(id);
      cfg.checkpoint_every = params.checkpoint_every;
      cfg.checkpoint_keep = params.checkpoint_keep;
      cfg.faults = params.fault_for ? params.fault_for(id) : nullptr;
      cfg.cancel = &cancel;
      try {
        reports[static_cast<std::size_t>(id)] = run_replica(nl, cfg);
      } catch (const std::exception& e) {
        // run_replica absorbs flow failures itself; anything reaching
        // here (bad_alloc, a throwing contract trap) still must not take
        // the pool down — record it as a failed replica.
        ReplicaReport& r = reports[static_cast<std::size_t>(id)];
        r.replica = id;
        r.outcome = ReplicaOutcome::kFailed;
        AttemptRecord rec;
        rec.attempt = static_cast<int>(r.attempts.size());
        rec.outcome = AttemptOutcome::kError;
        rec.error = e.what();
        r.attempts.push_back(std::move(rec));
      }
    }
  };

  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) workers.emplace_back(worker);
    for (std::thread& t : workers) t.join();
  }

  PoolResult out;
  out.replicas = std::move(reports);
  RunningStats teil;
  int best = -1;
  for (int i = 0; i < n; ++i) {
    const ReplicaReport& r = out.replicas[static_cast<std::size_t>(i)];
    out.stats.attempts += static_cast<int>(r.attempts.size());
    out.stats.retries +=
        std::max(0, static_cast<int>(r.attempts.size()) - 1);
    if (r.outcome != ReplicaOutcome::kSucceeded) {
      ++out.stats.failed;
      continue;
    }
    ++out.stats.succeeded;
    teil.add(r.final_teil);
    if (best < 0 ||
        improves(r, out.replicas[static_cast<std::size_t>(best)]))
      best = i;
  }
  if (best < 0)
    throw PoolError("replica pool: all " + std::to_string(n) +
                        " replica(s) exhausted their retries",
                    std::move(out.replicas));
  out.best = best;
  out.stats.teil_best = teil.min();
  out.stats.teil_worst = teil.max();
  out.stats.teil_mean = teil.mean();
  out.stats.teil_stddev = teil.stddev();

  recover::apply_placement(placement, out.best_report().placement);
  log_info("replica pool: ", out.stats.succeeded, "/", n,
           " replica(s) succeeded in ", out.stats.attempts,
           " attempt(s); best teil=", out.stats.teil_best,
           " (replica ", best, "), mean=", out.stats.teil_mean);
  return out;
}

}  // namespace tw::pool
