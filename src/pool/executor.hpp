// PoolExecutor: a long-lived, multi-job replica executor.
//
// ReplicaPool (pool.hpp) runs ONE job's replicas to completion and tears
// its workers down. A server cannot afford that shape: jobs arrive and
// finish continuously, and all of them must share one fixed worker pool
// so a burst of submissions degrades into queueing, never into unbounded
// thread creation. PoolExecutor keeps the pool's supervision semantics —
// every replica runs through run_replica (watchdog, capped retries,
// checkpoint resume, typed attempt records) — but decouples the worker
// threads from job lifetime:
//
//   * submit() enqueues one task per replica and returns immediately;
//     tasks from different jobs interleave FIFO on the shared workers, so
//     a large job cannot starve the queue behind it of all progress.
//   * per-job cooperative cancellation (cancel()) flips the job's cancel
//     flag; running replicas wind down gracefully through the existing
//     RunBudget cancel path and still report their best feasible state.
//   * completion and streaming progress surface through callbacks that
//     fire on worker threads — the receiver owns its synchronization
//     (the placement service pushes into a mutex-guarded event queue and
//     wakes its poll loop through a pipe).
//
// Results are deterministic per job: each replica is a pure function of
// (netlist, spec, replica id), so neither the worker count nor the
// interleaving with other jobs changes any job's outcome.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pool/replica.hpp"

namespace tw::pool {

/// Priority classes an executor job may carry. Kept as a small integer
/// band here (the wire protocol owns the user-facing enum): higher runs
/// first, and an arriving higher-priority job may checkpoint-preempt a
/// running lower-priority one when every worker is busy.
inline constexpr int kNumPriorities = 3;

/// One job's execution request. `nl` is non-owning and must stay alive
/// until the job's on_done callback has returned.
struct ExecutorJob {
  std::uint64_t job = 0;      ///< caller's id, threaded through callbacks
  const Netlist* nl = nullptr;
  /// Stage parameters (seed/recover ignored; see ReplicaConfig::base).
  FlowParams base;
  std::uint64_t master_seed = 1;
  int replicas = 1;
  int max_attempts = 2;
  /// Scheduling class, clamped into [0, kNumPriorities): 0 = batch,
  /// 1 = normal, 2 = urgent. Affects *when* the job runs, never what it
  /// computes — results stay byte-identical across priorities.
  int priority = 1;
  WatchdogPolicy watchdog;
  /// Per-replica work quota (RunBudget semantics: graceful wind-down).
  std::int64_t budget_moves = recover::RunBudget::kUnlimited;
  std::int64_t budget_steps = recover::RunBudget::kUnlimited;
  /// When non-empty, replica `i` checkpoints into
  /// `<checkpoint_root>/replica-<i>`.
  std::string checkpoint_root;
  int checkpoint_every = 5;
  int checkpoint_keep = 4;
  /// Per-replica checkpoint-directory byte quota (0 = unbounded); see
  /// ReplicaConfig::checkpoint_quota_bytes.
  std::uint64_t checkpoint_quota_bytes = 0;
  /// Disk-fault injection seam forwarded to every replica's checkpoint
  /// sink (non-owning, thread-safe implementation required).
  recover::DiskFaultInjector* disk_faults = nullptr;
  /// Crash re-adoption (see ReplicaConfig::adopt_existing): first attempts
  /// resume from surviving checkpoints instead of starting cold.
  bool adopt_existing = false;
};

/// Terminal state of one executed job.
struct ExecutorResult {
  std::uint64_t job = 0;
  std::vector<ReplicaReport> replicas;  ///< indexed by replica id
  int best = -1;  ///< best-feasible replica, -1 when every replica failed

  bool ok() const { return best >= 0; }
  const ReplicaReport& best_report() const {
    return replicas.at(static_cast<std::size_t>(best));
  }
};

class PoolExecutor {
 public:
  /// Both callbacks fire on executor worker threads, possibly
  /// concurrently for different jobs; they must not throw and must do
  /// their own locking. on_progress is per replica and high-frequency;
  /// on_done fires exactly once per submitted job (even for jobs whose
  /// every replica failed, and for jobs drained by shutdown).
  struct Hooks {
    std::function<void(ExecutorResult)> on_done;
    std::function<void(std::uint64_t job, int replica, const FlowProgress&)>
        on_progress;
  };

  /// Starts `threads` workers (>= 1) immediately.
  PoolExecutor(int threads, Hooks hooks);
  ~PoolExecutor();  ///< shutdown() + join

  PoolExecutor(const PoolExecutor&) = delete;
  PoolExecutor& operator=(const PoolExecutor&) = delete;

  /// Enqueues the job's replicas. Jobs submitted after shutdown() are
  /// completed immediately with every replica failed (outcome recorded as
  /// an error attempt), never silently dropped.
  void submit(ExecutorJob job);

  /// Cooperative per-job cancellation: running replicas wind down to
  /// their best feasible state (still reported through on_done); queued
  /// replicas start, observe the flag at their first poll boundary, and
  /// wind down immediately. No-op for unknown/finished jobs.
  void cancel(std::uint64_t job);

  /// Requests checkpoint preemption of a running job: its running
  /// replicas park at their next checkpoint-write boundary (the
  /// checkpoint is saved first, so zero work is lost) and re-enter the
  /// queue at the job's priority, to resume byte-identically when a
  /// worker frees up. Best-effort and cooperative: jobs that take no
  /// checkpoints, or replicas that finish before reaching a boundary,
  /// simply complete. submit() calls this automatically for the
  /// lowest-priority running job when a higher-priority submission finds
  /// every worker busy. No-op for unknown/finished jobs.
  void preempt(std::uint64_t job);

  /// Stops accepting work, cancels every in-flight job, drains the task
  /// queue (each job still gets its on_done) and joins the workers.
  /// Idempotent.
  void shutdown();

  /// Scheduling observability for load-shedding decisions: queue depth
  /// and running tasks per priority class, plus cumulative counts of
  /// preempted task parkings and resumes. Counts *tasks* (replicas), not
  /// jobs.
  struct Stats {
    std::array<int, kNumPriorities> queued{};
    std::array<int, kNumPriorities> running{};
    std::int64_t preempted = 0;  ///< tasks parked at a checkpoint so far
    std::int64_t resumed = 0;    ///< parked tasks claimed again so far
  };
  Stats stats() const;

  int threads() const { return threads_; }

 private:
  struct Shared;  // mutex-guarded queue/jobs state, defined in executor.cpp

  std::shared_ptr<Shared> shared_;
  int threads_ = 0;
};

}  // namespace tw::pool
