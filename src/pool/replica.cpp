#include "pool/replica.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <iomanip>
#include <optional>
#include <sstream>

#include "check/validate.hpp"
#include "recover/fault.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace tw::pool {
namespace {

/// The supervisor's in-process kill switch, installed as the flow's fault
/// injector. Order matters in poll(): the replica's scripted fault plan is
/// forwarded first (so injected kills fire at exactly the poll counts the
/// plan names, watchdog or not), then the cooperative cancel flag is
/// folded into the attempt's budget, then the watchdog allowance is
/// enforced against the moves the budget has counted — the "heartbeats"
/// of the ISSUE: pure work, never wall-clock, so every supervisor
/// transition replays identically run after run.
class ReplicaProbe final : public recover::FaultInjector {
 public:
  ReplicaProbe(int replica, int attempt, recover::RunBudget& budget,
               std::int64_t allowance, recover::FaultInjector* inner,
               const std::atomic<bool>* cancel,
               const std::atomic<bool>* preempt)
      : replica_(replica),
        attempt_(attempt),
        budget_(budget),
        allowance_(allowance),
        inner_(inner),
        cancel_(cancel),
        preempt_(preempt) {}

  void poll(recover::FaultSite site) override {
    if (inner_ != nullptr) inner_->poll(site);
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed))
      budget_.request_cancel();
    // Fold the executor's preempt request into the budget; the flow acts
    // on it only at its next checkpoint-write boundary (and not at all
    // when cancelled — cancellation is the stronger request).
    if (preempt_ != nullptr && preempt_->load(std::memory_order_relaxed))
      budget_.request_preempt();
    if (allowance_ != WatchdogPolicy::kUnlimited &&
        budget_.moves_charged() > allowance_)
      throw WatchdogExpired(replica_, attempt_, budget_.moves_charged(),
                            allowance_);
  }

 private:
  int replica_;
  int attempt_;
  recover::RunBudget& budget_;
  std::int64_t allowance_;
  recover::FaultInjector* inner_;
  const std::atomic<bool>* cancel_;
  const std::atomic<bool>* preempt_;
};

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::int64_t WatchdogPolicy::allowance(int attempt) const {
  if (initial_moves == kUnlimited) return kUnlimited;
  double a = static_cast<double>(initial_moves);
  const double growth = std::max(1.0, backoff);
  for (int i = 0; i < attempt; ++i) a *= growth;
  std::int64_t v = a >= 9.0e18 ? std::int64_t{9'000'000'000'000'000'000}
                               : static_cast<std::int64_t>(a);
  if (max_moves != kUnlimited) v = std::min(v, max_moves);
  return v;
}

WatchdogExpired::WatchdogExpired(int replica, int attempt, std::int64_t moves,
                                 std::int64_t allowance)
    : std::runtime_error("watchdog expired: replica " +
                         std::to_string(replica) + " attempt " +
                         std::to_string(attempt) + " charged " +
                         std::to_string(moves) + " move(s), allowance " +
                         std::to_string(allowance)),
      moves_(moves),
      allowance_(allowance) {}

const char* to_string(AttemptOutcome o) {
  switch (o) {
    case AttemptOutcome::kCompleted: return "completed";
    case AttemptOutcome::kBudgetExhausted: return "budget_exhausted";
    case AttemptOutcome::kCancelled: return "cancelled";
    case AttemptOutcome::kFaultKilled: return "fault_killed";
    case AttemptOutcome::kWatchdogExpired: return "watchdog_expired";
    case AttemptOutcome::kCheckpointError: return "checkpoint_error";
    case AttemptOutcome::kInvalid: return "invalid";
    case AttemptOutcome::kError: return "error";
  }
  return "unknown";
}

bool attempt_usable(AttemptOutcome o) {
  return o == AttemptOutcome::kCompleted ||
         o == AttemptOutcome::kBudgetExhausted ||
         o == AttemptOutcome::kCancelled;
}

const char* to_string(ReplicaOutcome o) {
  switch (o) {
    case ReplicaOutcome::kSucceeded: return "succeeded";
    case ReplicaOutcome::kFailed: return "failed";
  }
  return "unknown";
}

std::uint64_t result_fingerprint(const Placement& placement,
                                 const FlowResult& result) {
  std::ostringstream os;
  os << std::hexfloat;
  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    const CellState& s = placement.state(c);
    os << "cell " << c << ": (" << s.center.x << "," << s.center.y << ") o"
       << static_cast<int>(s.orient) << " i" << s.instance << " a" << s.aspect
       << " sites[";
    for (const int site : s.pin_site) os << site << ",";
    os << "] occ[";
    for (const int occ : s.site_occupancy) os << occ << ",";
    os << "]\n";
  }
  os << "teil " << result.final_teil << " s1 " << result.stage1_teil << "\n";
  os << "area " << result.final_chip_area << " bbox "
     << result.final_chip_bbox.xlo << "," << result.final_chip_bbox.ylo << ","
     << result.final_chip_bbox.xhi << "," << result.final_chip_bbox.yhi
     << "\n";
  for (const auto& pass : result.stage2.passes)
    os << "pass: overflow " << pass.route_overflow << " unrouted "
       << pass.unrouted_nets << " wrv " << pass.width_rule_violations << "\n";
  return fnv1a(os.str());
}

ReplicaReport run_replica(const Netlist& nl, const ReplicaConfig& cfg) {
  ReplicaReport report;
  report.replica = cfg.replica;

  const std::uint64_t digest = recover::netlist_digest(nl);
  const int max_attempts = std::max(1, cfg.max_attempts);
  int rotation = 0;  // cold starts consumed, drives the seed rotation
  // Checkpoint-off degraded mode: once an attempt dies on a checkpoint
  // write failure (full disk, byte quota), later attempts stop *writing*
  // checkpoints instead of dying the same way again — the job still
  // finishes, only crash resumability is lost. Adoption of checkpoints
  // already on disk keeps working, so the retry resumes the dead
  // attempt's progress first.
  bool checkpoints_off = false;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    AttemptRecord rec;
    rec.attempt = attempt;
    rec.watchdog_allowance = cfg.watchdog.allowance(attempt);
    rec.checkpoints_disabled = checkpoints_off;

    // Retry policy: resume from the newest *valid* checkpoint of a
    // previous attempt when one survives (adopt_checkpoint skips torn or
    // bit-rotted files and checkpoints from a different netlist — a stale
    // directory is treated as absent); cold-restart on the next rotated
    // seed otherwise. With `adopt_existing` (the placement service's
    // crash-recovery path) even the first attempt adopts a surviving
    // checkpoint, so a job killed mid-anneal continues instead of
    // restarting from scratch.
    std::optional<recover::FlowCheckpoint> cp;
    if (!cfg.checkpoint_dir.empty() && (attempt > 0 || cfg.adopt_existing))
      cp = recover::adopt_checkpoint(cfg.checkpoint_dir, digest);
    rec.resumed = cp.has_value();
    if (cp) {
      // Resuming binds the attempt to the seed the checkpoint was taken
      // under; rotation applies only to cold restarts.
      rec.seed = cp->master_seed;
    } else {
      rec.seed = derive_attempt_seed(cfg.master_seed, cfg.replica, rotation);
      ++rotation;
    }

    FlowParams params = cfg.base;
    params.seed = rec.seed;
    params.recover = {};
    params.recover.checkpoint_dir = checkpoints_off ? "" : cfg.checkpoint_dir;
    params.recover.checkpoint_every = cfg.checkpoint_every;
    params.recover.checkpoint_keep = cfg.checkpoint_keep;
    params.recover.checkpoint_quota_bytes = cfg.checkpoint_quota_bytes;
    params.recover.disk_faults = cfg.disk_faults;
    params.recover.on_progress = cfg.on_progress;
    recover::RunBudget budget(cfg.budget_moves, cfg.budget_steps);
    params.recover.budget = &budget;
    ReplicaProbe probe(cfg.replica, attempt, budget, rec.watchdog_allowance,
                       cfg.faults, cfg.cancel, cfg.preempt);
    params.recover.faults = &probe;

    Placement placement(nl);
    bool usable = false;
    try {
      TimberWolfMC flow(nl, params);
      const FlowResult fr =
          cp ? flow.resume(placement, *cp) : flow.run(placement);
      rec.flow_outcome = fr.outcome;
      const ValidationReport vr = validate_placement(placement);
      if (!vr.ok()) {
        rec.outcome = AttemptOutcome::kInvalid;
        rec.error = vr.str();
      } else {
        switch (fr.outcome) {
          case recover::RunOutcome::kBudgetExhausted:
            rec.outcome = AttemptOutcome::kBudgetExhausted;
            break;
          case recover::RunOutcome::kCancelled:
            rec.outcome = AttemptOutcome::kCancelled;
            break;
          default:
            rec.outcome = AttemptOutcome::kCompleted;
        }
        usable = true;
        report.flow = fr;
      }
    } catch (const recover::Preempted&) {
      // Not a failure: the replica is parked at a just-written checkpoint.
      // Unwind to the executor, which re-queues it to resume later.
      throw;
    } catch (const recover::InjectedFault& e) {
      rec.outcome = AttemptOutcome::kFaultKilled;
      rec.error = e.what();
    } catch (const WatchdogExpired& e) {
      rec.outcome = AttemptOutcome::kWatchdogExpired;
      rec.error = e.what();
    } catch (const recover::CheckpointError& e) {
      rec.outcome = AttemptOutcome::kCheckpointError;
      rec.error = e.what();
      // The *write* path failed; stop writing checkpoints on later
      // attempts rather than tripping over the same disk again. (A
      // checkpoint that fails to *load* is skipped by adopt_checkpoint,
      // not thrown, so this cannot misfire on read problems.)
      checkpoints_off = true;
    } catch (const std::exception& e) {
      rec.outcome = AttemptOutcome::kError;
      rec.error = e.what();
    }
    rec.moves = budget.moves_charged();
    rec.steps = budget.steps_charged();
    report.attempts.push_back(rec);

    if (usable) {
      report.outcome = ReplicaOutcome::kSucceeded;
      report.checkpoint_off = checkpoints_off;
      report.placement = recover::pack_placement(placement);
      report.fingerprint = result_fingerprint(placement, report.flow);
      report.final_teil = report.flow.final_teil;
      report.final_chip_area = report.flow.final_chip_area;
      return report;
    }

    // An invalid result is fully deterministic: resuming its checkpoint
    // would replay the same bytes to the same invalid end state. Wipe the
    // directory so the retry cold-starts on a rotated seed instead.
    if (rec.outcome == AttemptOutcome::kInvalid &&
        !cfg.checkpoint_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(cfg.checkpoint_dir, ec);
    }
    log_warn("pool replica ", cfg.replica, " attempt ", attempt, " failed (",
             to_string(rec.outcome), "): ", rec.error);

    // A cancelled pool stops retrying: the point of cancellation is to
    // hand back whatever survives, now.
    if (cfg.cancel != nullptr &&
        cfg.cancel->load(std::memory_order_relaxed))
      break;
  }

  report.outcome = ReplicaOutcome::kFailed;
  report.checkpoint_off = checkpoints_off;
  return report;
}

}  // namespace tw::pool
