// One supervised replica of the multi-start annealing pool (src/pool).
//
// A replica is a single TimberWolfMC flow on its own derived seed stream,
// run under supervision: a deterministic work-based watchdog kills it if
// it burns through its move allowance without finishing, injected faults
// (recover::FaultPlan) kill it exactly like a crash would, and every
// failure is retried — resuming from the newest valid checkpoint when one
// survives, cold-restarting on a fresh rotated seed otherwise — up to a
// capped attempt count. The full attempt history is recorded, so a test
// can assert the supervisor walked exactly the transitions its fault plan
// scripted.
//
// Everything here is single-threaded and deterministic; ReplicaPool
// (pool.hpp) fans replicas out over worker threads, which is safe exactly
// because a replica shares no mutable state with its siblings.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "flow/timberwolf.hpp"
#include "recover/checkpoint.hpp"

namespace tw::pool {

/// Deterministic stuck-replica detection: instead of a wall-clock timeout
/// (banned — it would make supervision nondeterministic), an attempt gets
/// a *work* allowance in attempted moves, checked at the flow's existing
/// poll boundaries. Exceeding it kills the attempt with WatchdogExpired;
/// the retry gets a `backoff`-times larger allowance, capped at
/// `max_moves` — the work-budget analog of timeout-with-backoff.
struct WatchdogPolicy {
  static constexpr std::int64_t kUnlimited = -1;

  /// Move allowance of the first attempt (kUnlimited disables the
  /// watchdog entirely).
  std::int64_t initial_moves = kUnlimited;
  /// Allowance growth per retry (>= 1).
  double backoff = 2.0;
  /// Hard cap on any attempt's allowance (kUnlimited: no cap).
  std::int64_t max_moves = kUnlimited;

  /// The allowance attempt `attempt` (zero-based) runs under.
  std::int64_t allowance(int attempt) const;
};

/// Thrown out of the flow (from a poll boundary) when an attempt exceeds
/// its watchdog allowance. Deliberately not caught inside the flow: it
/// unwinds like a crash and the supervisor's retry logic takes over.
class WatchdogExpired : public std::runtime_error {
 public:
  WatchdogExpired(int replica, int attempt, std::int64_t moves,
                  std::int64_t allowance);

  std::int64_t moves() const { return moves_; }
  std::int64_t allowance() const { return allowance_; }

 private:
  std::int64_t moves_;
  std::int64_t allowance_;
};

/// How one attempt of a replica ended.
enum class AttemptOutcome : std::uint8_t {
  kCompleted = 0,     ///< flow finished its schedule; placement validated
  kBudgetExhausted,   ///< per-attempt RunBudget expired; result still usable
  kCancelled,         ///< pool cancellation honored; result still usable
  kFaultKilled,       ///< an injected fault (recover::InjectedFault) fired
  kWatchdogExpired,   ///< work allowance exceeded (stuck replica)
  kCheckpointError,   ///< checkpoint IO/validation failed (recover error)
  kInvalid,           ///< flow returned but validate_placement rejected it
  kError,             ///< any other exception escaped the flow
};

const char* to_string(AttemptOutcome o);

/// True when the attempt produced a usable placement (completed or
/// budget-bounded, and validated).
bool attempt_usable(AttemptOutcome o);

/// One supervised attempt, as recorded in the replica's history.
struct AttemptRecord {
  int attempt = 0;            ///< zero-based attempt index
  std::uint64_t seed = 0;     ///< master seed the flow ran under
  bool resumed = false;       ///< continued from a surviving checkpoint
  /// The attempt ran with checkpoint *writes* disabled: a previous
  /// attempt's checkpoint failure (full disk, quota) degraded the
  /// replica to checkpoint-off mode. Adoption of checkpoints already on
  /// disk still works — only new writes are dropped.
  bool checkpoints_disabled = false;
  AttemptOutcome outcome = AttemptOutcome::kError;
  /// The flow's own outcome, valid when the flow returned (kCompleted /
  /// kBudgetExhausted / kCancelled / kInvalid).
  recover::RunOutcome flow_outcome = recover::RunOutcome::kCompleted;
  std::string error;          ///< exception text for failed attempts
  std::int64_t moves = 0;     ///< moves charged (work heartbeats observed)
  std::int64_t steps = 0;     ///< temperature steps charged
  std::int64_t watchdog_allowance = WatchdogPolicy::kUnlimited;
};

/// Terminal state of one replica.
enum class ReplicaOutcome : std::uint8_t {
  kSucceeded = 0,  ///< some attempt produced a usable, validated placement
  kFailed,         ///< every attempt failed; the pool survives regardless
};

const char* to_string(ReplicaOutcome o);

/// Everything one replica reports back to the pool.
struct ReplicaReport {
  int replica = 0;
  ReplicaOutcome outcome = ReplicaOutcome::kFailed;
  std::vector<AttemptRecord> attempts;
  /// The replica finished in checkpoint-off degraded mode (some attempt
  /// hit a checkpoint write failure / quota and later attempts stopped
  /// writing checkpoints). The result is still fully valid — only crash
  /// resumability was lost — but the caller should surface it.
  bool checkpoint_off = false;

  // Valid when outcome == kSucceeded:
  FlowResult flow;                       ///< the winning attempt's result
  recover::PackedPlacement placement;    ///< its final cell states
  std::uint64_t fingerprint = 0;         ///< result_fingerprint(...)
  double final_teil = 0.0;
  Coord final_chip_area = 0;
};

/// Bit-exact digest of a finished run: FNV-1a over the hexfloat rendering
/// of every cell state plus the headline metrics. Two runs fingerprint
/// equal only when every bit of every value matches — the concurrency
/// tests compare a pool replica against its solo same-seed run with this.
std::uint64_t result_fingerprint(const Placement& placement,
                                 const FlowResult& result);

/// Supervision parameters of one replica (ReplicaPool derives one per
/// replica from its PoolParams).
struct ReplicaConfig {
  int replica = 0;
  std::uint64_t master_seed = 1;
  /// Stage parameters shared by all replicas. `base.seed` and
  /// `base.recover` are ignored: the supervisor derives the per-attempt
  /// seed and owns the run-lifecycle wiring.
  FlowParams base;
  int max_attempts = 3;
  WatchdogPolicy watchdog;
  /// Per-attempt graceful work budget (RunBudget semantics: on expiry the
  /// flow quenches and returns its best feasible state, which *counts as
  /// a usable result* — unlike a watchdog kill).
  std::int64_t budget_moves = recover::RunBudget::kUnlimited;
  std::int64_t budget_steps = recover::RunBudget::kUnlimited;
  /// Checkpoint directory of this replica ("" disables checkpoints and
  /// with them resume-on-retry).
  std::string checkpoint_dir;
  /// Adopt a surviving valid checkpoint on the *first* attempt too (not
  /// just on retries). This is the placement service's crash-recovery
  /// path: a daemon restarted after kill -9 re-runs its in-flight jobs
  /// with adopt_existing set, so each one continues from the newest
  /// checkpoint its killed predecessor wrote — byte-identical to the
  /// uninterrupted run — instead of re-annealing from scratch.
  bool adopt_existing = false;
  int checkpoint_every = 5;
  int checkpoint_keep = 4;
  /// Byte quota for this replica's checkpoint directory (0 = unbounded).
  /// A save that would exceed it fails typed; the supervisor then
  /// degrades the replica to checkpoint-off mode instead of crashing.
  std::uint64_t checkpoint_quota_bytes = 0;
  /// Disk-fault injection seam forwarded to the checkpoint sink
  /// (non-owning; shared across replicas, so implementations are
  /// thread-safe — see recover::DiskFaultInjector).
  recover::DiskFaultInjector* disk_faults = nullptr;
  /// Deterministic fault injection for this replica (non-owning; polled
  /// across all of its attempts, so a plan's Nth-poll arms address the
  /// replica's whole supervised lifetime).
  recover::FaultInjector* faults = nullptr;
  /// Cooperative pool-wide cancellation (non-owning). When it reads true
  /// at a poll boundary, the attempt's budget is cancelled and the flow
  /// winds down gracefully to its best feasible state; no further
  /// attempts start.
  const std::atomic<bool>* cancel = nullptr;
  /// Checkpoint-preemption request (non-owning). When it reads true at a
  /// poll boundary the attempt's budget is flagged and the flow parks at
  /// its next checkpoint-write boundary by throwing recover::Preempted —
  /// which run_replica deliberately does NOT absorb: it unwinds to the
  /// executor, which re-queues the replica to resume later from that
  /// checkpoint (byte-identical, zero work lost). Ignored by replicas
  /// that take no checkpoints, and cancellation wins when both are set.
  const std::atomic<bool>* preempt = nullptr;
  /// Streaming progress observer forwarded into the flow (see
  /// FlowProgress). Called from whatever thread runs the replica; the
  /// receiver owns its own synchronization. Must not throw.
  std::function<void(const FlowProgress&)> on_progress;
};

/// Runs one replica to its terminal state: attempt, classify, retry with
/// resume-or-rotate, give up after max_attempts. Never throws for flow
/// failures — those are recorded in the report — with one deliberate
/// exception: recover::Preempted (see ReplicaConfig::preempt) propagates
/// to the caller, because a preempted replica is parked, not failed.
/// Only programming errors (std::bad_alloc, contract aborts) escape
/// otherwise.
ReplicaReport run_replica(const Netlist& nl, const ReplicaConfig& cfg);

}  // namespace tw::pool
