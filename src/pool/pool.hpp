// ReplicaPool: supervised fault-tolerant multi-start annealing.
//
// TimberWolfMC is a randomized algorithm — independent same-netlist runs
// under different seeds land on a spread of final costs, so production use
// means running N replicas and keeping the best (the parallel multi-start
// structure PARSAC applies to SoC floorplanning). The pool runs N
// independent flows on a fixed-size worker thread pool, each replica on
// its own derive_replica_seed(master, id) stream with its own per-attempt
// RunBudget and checkpoint directory, and supervises them:
//
//   * a deterministic work-based watchdog (move allowances checked at the
//     flow's poll boundaries — never wall-clock) kills stuck replicas;
//   * killed or crashed replicas are retried under a capped, seed-rotating
//     backoff policy, resuming from a surviving valid checkpoint when one
//     exists and cold-restarting on a fresh derived seed otherwise;
//   * replicas that exhaust their retries are recorded, not fatal: any
//     surviving subset still yields the best feasible placement, and only
//     the all-replicas-failed case raises a typed PoolError — never a
//     crash.
//
// Selection is best-feasible: a replica's result must pass
// validate_placement to qualify, then the lowest final TEIL wins (chip
// area, then replica id break ties deterministically). Because replicas
// share no mutable state, the report — per-replica attempt histories,
// fingerprints, spread statistics — is a deterministic function of
// (netlist, params, master seed) regardless of thread interleaving.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "pool/replica.hpp"

namespace tw::pool {

/// Aggregate pool statistics; the TEIL spread quantifies how much the
/// multi-start bought over a single run (best vs mean of the replicas).
struct PoolStats {
  int succeeded = 0;        ///< replicas ending kSucceeded
  int failed = 0;           ///< replicas ending kFailed (retries exhausted)
  int attempts = 0;         ///< attempts across all replicas
  int retries = 0;          ///< attempts beyond each replica's first
  double teil_best = 0.0;   ///< over succeeded replicas (valid when > 0)
  double teil_worst = 0.0;
  double teil_mean = 0.0;
  double teil_stddev = 0.0;
};

struct PoolParams {
  /// N: independent replicas of the flow (>= 1).
  int replicas = 4;
  /// Worker threads; 0 sizes the pool to min(replicas, hardware
  /// concurrency). The thread count never changes any result, only how
  /// many replicas make progress at once.
  int threads = 0;
  std::uint64_t master_seed = 1;
  /// Stage parameters shared by every replica. `base.seed` and
  /// `base.recover` are ignored — the pool derives per-replica seeds and
  /// owns the run-lifecycle wiring (budgets, checkpoints, probes).
  FlowParams base;
  /// Supervision (see replica.hpp for the semantics of each).
  int max_attempts = 3;
  WatchdogPolicy watchdog;
  std::int64_t budget_moves = recover::RunBudget::kUnlimited;
  std::int64_t budget_steps = recover::RunBudget::kUnlimited;
  /// When non-empty, replica `i` checkpoints into
  /// `<checkpoint_root>/replica-<i>` and can resume across retries.
  std::string checkpoint_root;
  int checkpoint_every = 5;
  /// Retention per replica directory (keep newest K; 0 keeps all).
  int checkpoint_keep = 4;
  /// Deterministic fault injection for the supervisor tests: called once
  /// per replica (from that replica's worker thread) before its first
  /// attempt; may return nullptr. The injector is polled across all of
  /// the replica's attempts.
  std::function<recover::FaultInjector*(int replica)> fault_for;
};

/// Thrown by ReplicaPool::run only when *every* replica failed; carries
/// the full per-replica reports so the caller can see each attempt
/// history.
class PoolError : public std::runtime_error {
 public:
  PoolError(const std::string& what, std::vector<ReplicaReport> replicas);

  const std::vector<ReplicaReport>& replicas() const { return replicas_; }

 private:
  std::vector<ReplicaReport> replicas_;
};

struct PoolResult {
  std::vector<ReplicaReport> replicas;  ///< indexed by replica id
  int best = -1;                        ///< index of the winning replica
  PoolStats stats;

  const ReplicaReport& best_report() const {
    return replicas.at(static_cast<std::size_t>(best));
  }
};

class ReplicaPool {
 public:
  ReplicaPool(const Netlist& nl, PoolParams params);

  /// Runs every replica to a terminal state, blocks until done, applies
  /// the best surviving placement to `placement` (which must be built on
  /// the same netlist) and returns the full report. Throws PoolError when
  /// every replica failed; `placement` is untouched in that case.
  PoolResult run(Placement& placement);

  /// Cooperative cancellation from any thread: running attempts wind down
  /// gracefully to their best feasible state (outcome kCancelled, still
  /// eligible for selection), no retries or new attempts start.
  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }

 private:
  const Netlist& nl_;
  PoolParams params_;
  std::atomic<bool> cancel_{false};
};

}  // namespace tw::pool
