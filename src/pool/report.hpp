// Human-readable report of a supervised multi-replica run.
//
// Lives in src/pool (not src/flow): the pool orchestrates flows, so it
// sits above them in the layering, and a flow-layer header must not
// reach up into pool types (see DESIGN.md "Layering (normative)").
#pragma once

#include <string>

#include "pool/pool.hpp"

namespace tw {

/// Text report of a supervised multi-replica run: one row per replica
/// (outcome, attempts, retries/resumes, final TEIL and area), the attempt
/// history of every failed replica, and the aggregate TEIL spread.
std::string pool_report(const pool::PoolResult& result);

}  // namespace tw
