#include "pool/workers.hpp"

#include <algorithm>

#include "check/contracts.hpp"

namespace tw {

WorkerCrew::WorkerCrew(int num_workers)
    : num_workers_(std::max(1, num_workers)) {
  threads_.reserve(static_cast<std::size_t>(num_workers_ - 1));
  for (int w = 1; w < num_workers_; ++w) {
    threads_.emplace_back(&WorkerCrew::worker_main, this, w);
  }
}

WorkerCrew::~WorkerCrew() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerCrew::run(int num_slots, const Job& job) {
  TW_REQUIRE(num_slots >= 0, "num_slots=", num_slots);
  if (num_slots == 0) return;

  if (threads_.empty()) {
    // Serial degenerate form: no handshake, no atomics on the hot path.
    for (int s = 0; s < num_slots; ++s) job(0, s);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    TW_ASSERT(helpers_running_ == 0, "run() is not reentrant");
    job_ = &job;
    num_slots_ = num_slots;
    next_slot_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    helpers_running_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  cv_start_.notify_all();

  claim_loop(0);

  std::unique_lock<std::mutex> lock(mu_);
  while (helpers_running_ != 0) cv_done_.wait(lock);
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void WorkerCrew::claim_loop(int worker) {
  // Slots are claimed by a shared atomic cursor, so an uneven slot (one
  // that re-runs a long cascade) never stalls the rest of the batch.
  for (;;) {
    const int slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= num_slots_) return;
    try {
      (*job_)(worker, slot);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Drain: skip the remaining slots so the batch ends promptly. The
      // caller rethrows; partial batches are only observable on error.
      next_slot_.store(num_slots_, std::memory_order_relaxed);
    }
  }
}

void WorkerCrew::worker_main(int worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!shutdown_ && generation_ == seen_generation) {
        cv_start_.wait(lock);
      }
      if (shutdown_) return;
      seen_generation = generation_;
    }
    claim_loop(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --helpers_running_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace tw
