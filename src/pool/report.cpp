#include "pool/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/tableio.hpp"

namespace tw {

std::string pool_report(const pool::PoolResult& result) {
  std::ostringstream os;
  os << "Replica pool report\n";
  os << "===================\n\n";

  Table replicas({"replica", "outcome", "attempts", "resumed", "TEIL",
                  "chip area", "fingerprint"});
  for (const pool::ReplicaReport& r : result.replicas) {
    int resumed = 0;
    for (const pool::AttemptRecord& a : r.attempts) resumed += a.resumed;
    const bool ok = r.outcome == pool::ReplicaOutcome::kSucceeded;
    std::ostringstream fp;
    fp << std::hex << r.fingerprint;
    replicas.add_row(
        {Table::integer(r.replica) +
             (result.best == r.replica ? " *" : ""),
         pool::to_string(r.outcome),
         Table::integer(static_cast<long long>(r.attempts.size())),
         Table::integer(resumed),
         ok ? Table::num(r.final_teil, 0) : "-",
         ok ? Table::integer(r.final_chip_area) : "-",
         ok ? fp.str() : "-"});
  }
  os << replicas.str() << "\n";
  os << "(* = selected best-feasible replica)\n\n";

  const pool::PoolStats& st = result.stats;
  os << "replicas: " << st.succeeded << " succeeded, " << st.failed
     << " failed; " << st.attempts << " attempt(s), " << st.retries
     << " retr" << (st.retries == 1 ? "y" : "ies") << "\n";
  if (st.succeeded > 0) {
    os << "TEIL spread: best " << Table::num(st.teil_best, 0) << ", mean "
       << Table::num(st.teil_mean, 0) << ", worst "
       << Table::num(st.teil_worst, 0) << ", stddev "
       << Table::num(st.teil_stddev, 1) << "\n";
  }

  for (const pool::ReplicaReport& r : result.replicas) {
    if (r.outcome == pool::ReplicaOutcome::kSucceeded &&
        r.attempts.size() == 1)
      continue;
    os << "\nreplica " << r.replica << " attempt history:\n";
    for (const pool::AttemptRecord& a : r.attempts) {
      os << "  #" << a.attempt << (a.resumed ? " [resumed]" : " [cold]")
         << " seed " << a.seed << ": " << pool::to_string(a.outcome);
      if (!a.error.empty()) os << " — " << a.error;
      os << " (" << a.moves << " moves, " << a.steps << " steps)\n";
    }
  }
  return os.str();
}

}  // namespace tw
