// Uniform-grid binning over the integer layout grid.
//
// The overlap engine's spatial index (src/place/overlap.*) hashes each
// cell's expanded-tile bounding box into the grid bins it covers, so a
// pairwise-overlap query only visits cells sharing a bin. The bin math
// lives here because it is pure integer geometry: coordinates outside the
// grid extent clamp into the boundary bins, which keeps every query
// conservative (a clamped cell is seen by *more* candidates, never
// fewer), so pruning by bins is exact for any cell position.
#pragma once

#include <cstdint>

#include "geom/rect.hpp"

namespace tw {

/// A fixed uniform grid of nx * ny bins tiling `extent`. Bin (0, 0) is the
/// lower-left; all lookups clamp, so any Coord maps to a valid bin.
struct BinGrid {
  Rect extent;       ///< region tiled by the bins
  Coord bin_w = 1;   ///< bin width  (>= 1)
  Coord bin_h = 1;   ///< bin height (>= 1)
  int nx = 1;        ///< bins along x (>= 1)
  int ny = 1;        ///< bins along y (>= 1)

  /// Inclusive bin-index ranges covered by a rectangle (clamped).
  struct Range {
    int x0 = 0;
    int x1 = 0;
    int y0 = 0;
    int y1 = 0;

    friend bool operator==(const Range&, const Range&) = default;
  };

  /// Builds a grid over `extent` with bins of roughly `target_bin` span
  /// per axis, capped at `max_per_axis` bins per axis. Degenerate extents
  /// and non-positive targets yield a single bin.
  static BinGrid make(const Rect& extent, Coord target_bin, int max_per_axis);

  /// Bin column of `x`, clamped to [0, nx).
  int x_of(Coord x) const;

  /// Bin row of `y`, clamped to [0, ny).
  int y_of(Coord y) const;

  /// Bins covered by `r` (clamped). An invalid rectangle maps to the
  /// single bin of its (xlo, ylo) corner.
  Range range(const Rect& r) const;

  int index(int bx, int by) const { return by * nx + bx; }
  int num_bins() const { return nx * ny; }

  /// Bit mask of the bins covered by `r` (bit `index(bx, by)`), for grids
  /// of at most 64 bins. The parallel annealer's region partition uses a
  /// coarse <= 8x8 grid so a move footprint is one word and footprint
  /// intersection is a single AND. Grids with more than 64 bins saturate
  /// to all-ones, which keeps footprint tests conservative.
  std::uint64_t mask(const Rect& r) const;
};

}  // namespace tw
