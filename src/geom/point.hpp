// Integer-grid points and 1-D spans. All layout geometry in this library
// lives on the integer grid inherent in the netlist specification (the
// paper expresses cell geometry, pin locations and the minimum range-
// limiter window in those grid units).
#pragma once

#include <algorithm>
#include <cstdint>

namespace tw {

using Coord = std::int64_t;

struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

/// Manhattan distance between two points.
inline Coord manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Closed 1-D interval [lo, hi] on one axis.
struct Span {
  Coord lo = 0;
  Coord hi = 0;

  friend bool operator==(const Span&, const Span&) = default;

  Coord length() const { return hi - lo; }
  bool valid() const { return hi >= lo; }
  bool contains(Coord v) const { return v >= lo && v <= hi; }

  /// Intersection (may be invalid if the spans are disjoint).
  Span intersect(const Span& o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  /// Length of the overlap with `o` (0 when disjoint or merely touching).
  Coord overlap(const Span& o) const {
    const Coord v = std::min(hi, o.hi) - std::max(lo, o.lo);
    return v > 0 ? v : 0;
  }
};

}  // namespace tw
