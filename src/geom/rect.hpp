// Axis-aligned rectangles on the integer grid. Cells are stored as unions
// of non-overlapping rectangular tiles (Section 3.1.2 of the paper); the
// overlap penalty C2 and the channel-definition step both operate on
// rectangles, so this type carries the bulk of the geometric work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/orientation.hpp"
#include "geom/point.hpp"

namespace tw {

/// Closed axis-aligned rectangle [xlo,xhi] x [ylo,yhi].
/// An "empty" rectangle has xhi < xlo or yhi < ylo; width/height/area of an
/// empty rectangle are 0.
struct Rect {
  Coord xlo = 0;
  Coord ylo = 0;
  Coord xhi = 0;
  Coord yhi = 0;

  friend bool operator==(const Rect&, const Rect&) = default;

  static Rect from_center(Point center, Coord w, Coord h) {
    return {center.x - w / 2, center.y - h / 2, center.x - w / 2 + w,
            center.y - h / 2 + h};
  }

  bool valid() const { return xhi >= xlo && yhi >= ylo; }
  Coord width() const { return xhi > xlo ? xhi - xlo : 0; }
  Coord height() const { return yhi > ylo ? yhi - ylo : 0; }
  Coord area() const { return width() * height(); }
  Coord half_perimeter() const { return width() + height(); }
  Point center() const { return {(xlo + xhi) / 2, (ylo + yhi) / 2}; }
  Span xspan() const { return {xlo, xhi}; }
  Span yspan() const { return {ylo, yhi}; }

  bool contains(Point p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }
  bool contains(const Rect& r) const {
    return r.xlo >= xlo && r.xhi <= xhi && r.ylo >= ylo && r.yhi <= yhi;
  }

  /// Intersection rectangle (possibly invalid when disjoint).
  Rect intersect(const Rect& o) const;

  /// Area of the geometric intersection (0 when disjoint or only touching
  /// along an edge). This is the O_t(t_i, t_j) of Eqn 8.
  Coord overlap_area(const Rect& o) const;

  /// True when interiors intersect (positive-area overlap).
  bool overlaps(const Rect& o) const { return overlap_area(o) > 0; }

  /// Smallest rectangle containing both.
  Rect bounding_union(const Rect& o) const;

  /// Expands each side outward by the given (non-negative) amounts. This is
  /// how interconnect area is appended around cell contours (Section 2.2).
  Rect inflated(Coord left, Coord right, Coord bottom, Coord top) const {
    return {xlo - left, ylo - bottom, xhi + right, yhi + top};
  }
  Rect inflated(Coord all) const { return inflated(all, all, all, all); }

  Rect translated(Point d) const {
    return {xlo + d.x, ylo + d.y, xhi + d.x, yhi + d.y};
  }

  std::string str() const;
};

/// Orients a rectangle given in a cell's local frame with bounding box
/// [0,w] x [0,h] (see apply_orient for the frame convention).
Rect apply_orient(Orient o, const Rect& r, Coord w, Coord h);

/// Bounding box of a non-empty list of rectangles.
Rect bounding_box(const std::vector<Rect>& rects);

/// Total area of a set of *non-overlapping* rectangles.
Coord total_area(const std::vector<Rect>& rects);

}  // namespace tw
