#include "geom/rect.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace tw {

Rect Rect::intersect(const Rect& o) const {
  return {std::max(xlo, o.xlo), std::max(ylo, o.ylo), std::min(xhi, o.xhi),
          std::min(yhi, o.yhi)};
}

Coord Rect::overlap_area(const Rect& o) const {
  const Coord w = std::min(xhi, o.xhi) - std::max(xlo, o.xlo);
  if (w <= 0) return 0;
  const Coord h = std::min(yhi, o.yhi) - std::max(ylo, o.ylo);
  if (h <= 0) return 0;
  return w * h;
}

Rect Rect::bounding_union(const Rect& o) const {
  return {std::min(xlo, o.xlo), std::min(ylo, o.ylo), std::max(xhi, o.xhi),
          std::max(yhi, o.yhi)};
}

std::string Rect::str() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%lld,%lld]x[%lld,%lld]",
                static_cast<long long>(xlo), static_cast<long long>(xhi),
                static_cast<long long>(ylo), static_cast<long long>(yhi));
  return buf;
}

Rect apply_orient(Orient o, const Rect& r, Coord w, Coord h) {
  const Point a = apply_orient(o, Point{r.xlo, r.ylo}, w, h);
  const Point b = apply_orient(o, Point{r.xhi, r.yhi}, w, h);
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
          std::max(a.y, b.y)};
}

Rect bounding_box(const std::vector<Rect>& rects) {
  if (rects.empty()) throw std::invalid_argument("bounding_box: empty");
  Rect bb = rects.front();
  for (std::size_t i = 1; i < rects.size(); ++i)
    bb = bb.bounding_union(rects[i]);
  return bb;
}

Coord total_area(const std::vector<Rect>& rects) {
  Coord a = 0;
  for (const auto& r : rects) a += r.area();
  return a;
}

}  // namespace tw
