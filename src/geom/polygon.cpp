#include "geom/polygon.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace tw {

const char* to_string(Side s) {
  switch (s) {
    case Side::kLeft: return "left";
    case Side::kRight: return "right";
    case Side::kBottom: return "bottom";
    case Side::kTop: return "top";
  }
  return "?";
}

Side opposite(Side s) {
  switch (s) {
    case Side::kLeft: return Side::kRight;
    case Side::kRight: return Side::kLeft;
    case Side::kBottom: return Side::kTop;
    case Side::kTop: return Side::kBottom;
  }
  throw std::logic_error("bad side");
}

std::vector<Rect> decompose_rectilinear(const std::vector<Point>& vertices) {
  if (vertices.size() < 4)
    throw std::invalid_argument("decompose_rectilinear: need >= 4 vertices");

  // Collect vertical edges; validate rectilinearity along the way.
  struct VEdge {
    Coord x;
    Coord ylo, yhi;
  };
  std::vector<VEdge> vedges;
  std::vector<Coord> ys;
  const std::size_t n = vertices.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices[i];
    const Point& b = vertices[(i + 1) % n];
    if (a.x != b.x && a.y != b.y)
      throw std::invalid_argument(
          "decompose_rectilinear: non-axis-parallel edge");
    if (a.x == b.x && a.y == b.y)
      throw std::invalid_argument("decompose_rectilinear: zero-length edge");
    if (a.x == b.x)
      vedges.push_back({a.x, std::min(a.y, b.y), std::max(a.y, b.y)});
    ys.push_back(a.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // Horizontal slabs between consecutive distinct y values. Within a slab,
  // the vertical edges crossing it, sorted by x, alternate
  // outside->inside->outside... so consecutive pairs bound interior runs.
  std::vector<Rect> tiles;
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const Coord ylo = ys[s];
    const Coord yhi = ys[s + 1];
    std::vector<Coord> xs;
    for (const auto& e : vedges)
      if (e.ylo <= ylo && e.yhi >= yhi) xs.push_back(e.x);
    std::sort(xs.begin(), xs.end());
    if (xs.size() % 2 != 0)
      throw std::invalid_argument(
          "decompose_rectilinear: polygon is self-intersecting or malformed");
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2)
      if (xs[i + 1] > xs[i]) tiles.push_back({xs[i], ylo, xs[i + 1], yhi});
  }

  // Merge vertically stackable tiles (same x-range, touching in y) so simple
  // shapes come out as few tiles (a rectangle decomposes to exactly one).
  std::sort(tiles.begin(), tiles.end(), [](const Rect& a, const Rect& b) {
    if (a.xlo != b.xlo) return a.xlo < b.xlo;
    if (a.xhi != b.xhi) return a.xhi < b.xhi;
    return a.ylo < b.ylo;
  });
  std::vector<Rect> merged;
  for (const auto& t : tiles) {
    if (!merged.empty() && merged.back().xlo == t.xlo &&
        merged.back().xhi == t.xhi && merged.back().yhi == t.ylo) {
      merged.back().yhi = t.yhi;
    } else {
      merged.push_back(t);
    }
  }
  return merged;
}

std::vector<Span> subtract_spans(const Span& base,
                                 const std::vector<Span>& covers) {
  std::vector<Span> sorted;
  for (const auto& c : covers) {
    const Span clipped = c.intersect(base);
    if (clipped.valid() && clipped.length() > 0) sorted.push_back(clipped);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Span& a, const Span& b) { return a.lo < b.lo; });

  std::vector<Span> out;
  Coord cursor = base.lo;
  for (const auto& c : sorted) {
    if (c.lo > cursor) out.push_back({cursor, c.lo});
    cursor = std::max(cursor, c.hi);
  }
  if (cursor < base.hi) out.push_back({cursor, base.hi});
  return out;
}

namespace {

/// Merges sorted, same-(side,pos) collinear segments that touch.
void merge_collinear(std::vector<BoundaryEdge>& edges) {
  std::sort(edges.begin(), edges.end(),
            [](const BoundaryEdge& a, const BoundaryEdge& b) {
              if (a.side != b.side) return a.side < b.side;
              if (a.pos != b.pos) return a.pos < b.pos;
              return a.span.lo < b.span.lo;
            });
  std::vector<BoundaryEdge> merged;
  for (const auto& e : edges) {
    if (!merged.empty() && merged.back().side == e.side &&
        merged.back().pos == e.pos && merged.back().span.hi >= e.span.lo) {
      merged.back().span.hi = std::max(merged.back().span.hi, e.span.hi);
    } else {
      merged.push_back(e);
    }
  }
  edges = std::move(merged);
}

}  // namespace

std::vector<BoundaryEdge> exposed_edges(const std::vector<Rect>& tiles) {
  std::vector<BoundaryEdge> out;
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const Rect& t = tiles[i];

    // For each side of tile i, collect the spans of other tiles that abut
    // it exactly, then keep what remains uncovered.
    std::vector<Span> left, right, bottom, top;
    for (std::size_t j = 0; j < tiles.size(); ++j) {
      if (j == i) continue;
      const Rect& o = tiles[j];
      if (o.xhi == t.xlo) left.push_back(o.yspan());
      if (o.xlo == t.xhi) right.push_back(o.yspan());
      if (o.yhi == t.ylo) bottom.push_back(o.xspan());
      if (o.ylo == t.yhi) top.push_back(o.xspan());
    }
    for (const Span& s : subtract_spans(t.yspan(), left))
      out.push_back({Side::kLeft, t.xlo, s});
    for (const Span& s : subtract_spans(t.yspan(), right))
      out.push_back({Side::kRight, t.xhi, s});
    for (const Span& s : subtract_spans(t.xspan(), bottom))
      out.push_back({Side::kBottom, t.ylo, s});
    for (const Span& s : subtract_spans(t.xspan(), top))
      out.push_back({Side::kTop, t.yhi, s});
  }
  merge_collinear(out);
  return out;
}

Coord exposed_perimeter(const std::vector<Rect>& tiles) {
  Coord p = 0;
  for (const auto& e : exposed_edges(tiles)) p += e.length();
  return p;
}

}  // namespace tw
