#include "geom/orientation.hpp"

#include <stdexcept>

namespace tw {

bool swaps_axes(Orient o) {
  switch (o) {
    case Orient::W:
    case Orient::E:
    case Orient::FW:
    case Orient::FE:
      return true;
    default:
      return false;
  }
}

Point apply_orient(Orient o, Point p, Coord w, Coord h) {
  switch (o) {
    case Orient::N: return p;
    case Orient::W: return {h - p.y, p.x};          // rotate 90 CCW
    case Orient::S: return {w - p.x, h - p.y};      // rotate 180
    case Orient::E: return {p.y, w - p.x};          // rotate 270 CCW
    case Orient::FN: return {w - p.x, p.y};         // mirror about Y
    case Orient::FW: return {h - p.y, w - p.x};     // mirror then 90 CCW
    case Orient::FS: return {p.x, h - p.y};         // mirror then 180
    case Orient::FE: return {p.y, p.x};             // mirror then 270 CCW
  }
  throw std::logic_error("bad orient");
}

Orient inverse_orient(Orient o) {
  switch (o) {
    case Orient::W: return Orient::E;
    case Orient::E: return Orient::W;
    default: return o;  // N, S and all mirrored orients are involutions
  }
}

Orient compose(Orient a, Orient b) {
  // Represent each orientation as (mirror m, rotation r) acting as
  // p -> R(r) * M(m) * p. Composition: (m1,r1)∘(m2,r2) applies (m2,r2)
  // first. R(r1) M(m1) R(r2) M(m2) = R(r1 + s1*r2) M(m1 xor m2) where
  // s1 = -1 if m1 else +1 (mirror conjugates rotation to its inverse).
  auto decompose = [](Orient o, int& m, int& r) {
    const int v = static_cast<int>(o);
    m = v >= 4 ? 1 : 0;
    r = v % 4;
  };
  int m1, r1, m2, r2;
  decompose(a, m1, r1);
  decompose(b, m2, r2);
  const int r = ((m1 ? (r1 - r2) : (r1 + r2)) % 4 + 4) % 4;
  const int m = m1 ^ m2;
  return static_cast<Orient>(m * 4 + r);
}

Orient aspect_inverted(Orient o) { return compose(Orient::W, o); }

Point apply_orient_vec(Orient o, Point v) {
  switch (o) {
    case Orient::N: return v;
    case Orient::W: return {-v.y, v.x};
    case Orient::S: return {-v.x, -v.y};
    case Orient::E: return {v.y, -v.x};
    case Orient::FN: return {-v.x, v.y};
    case Orient::FW: return {-v.y, -v.x};
    case Orient::FS: return {v.x, -v.y};
    case Orient::FE: return {v.y, v.x};
  }
  throw std::logic_error("bad orient");
}

const char* to_string(Orient o) {
  switch (o) {
    case Orient::N: return "N";
    case Orient::W: return "W";
    case Orient::S: return "S";
    case Orient::E: return "E";
    case Orient::FN: return "FN";
    case Orient::FW: return "FW";
    case Orient::FS: return "FS";
    case Orient::FE: return "FE";
  }
  return "?";
}

Orient orient_from_string(const std::string& s) {
  for (Orient o : kAllOrients)
    if (s == to_string(o)) return o;
  throw std::invalid_argument("unknown orientation: " + s);
}

}  // namespace tw
