// The eight orientations of a cell (the dihedral group D4): four rotations
// plus four mirrored rotations. TimberWolfMC considers all eight for every
// cell because the TEIC is computed from exact pin locations (Section 1).
//
// Naming follows the LEF/DEF convention: N/W/S/E are counter-clockwise
// rotations by 0/90/180/270 degrees; FN/FW/FS/FE are the same preceded by a
// mirror about the Y axis (x -> -x).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "geom/point.hpp"

namespace tw {

enum class Orient : std::uint8_t { N = 0, W, S, E, FN, FW, FS, FE };

inline constexpr std::array<Orient, 8> kAllOrients = {
    Orient::N,  Orient::W,  Orient::S,  Orient::E,
    Orient::FN, Orient::FW, Orient::FS, Orient::FE};

/// True if the orientation swaps the cell's width and height (a 90- or
/// 270-degree rotation, mirrored or not). The paper's "aspect-ratio
/// inversion" move switches between a swapping and a non-swapping orient.
bool swaps_axes(Orient o);

/// Transforms a point given in the cell's local frame (bounding box
/// [0,w] x [0,h], origin at the lower-left corner) into the oriented local
/// frame, re-normalized so the oriented bounding box again has its
/// lower-left corner at the origin.
Point apply_orient(Orient o, Point p, Coord w, Coord h);

/// Bounding-box dimensions after orientation.
inline Coord oriented_width(Orient o, Coord w, Coord h) {
  return swaps_axes(o) ? h : w;
}
inline Coord oriented_height(Orient o, Coord w, Coord h) {
  return swaps_axes(o) ? w : h;
}

/// The orientation whose apply_orient undoes this one.
Orient inverse_orient(Orient o);

/// apply_orient(compose(a, b), ...) == apply first b, then a.
Orient compose(Orient a, Orient b);

/// An orientation that inverts the aspect ratio relative to `o` (composes a
/// 90-degree rotation on top of `o`). Used by the generate function's
/// aspect-ratio-inversion retry.
Orient aspect_inverted(Orient o);

/// Applies only the linear part of the orientation to a direction vector
/// (no bounding-box renormalization). Used to map outward edge normals.
Point apply_orient_vec(Orient o, Point v);

const char* to_string(Orient o);
Orient orient_from_string(const std::string& s);

}  // namespace tw
