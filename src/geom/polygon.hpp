// Rectilinear polygons and tile-set boundary analysis.
//
// TimberWolfMC accepts cells of any rectilinear shape and represents each
// as a union of non-overlapping rectangular tiles. This module provides
//   * the polygon -> tile decomposition used when reading cell geometry,
//   * extraction of the *exposed* boundary edges of a tile set (the cell
//     contour), which both the interconnect-area estimator (pin density per
//     edge, Section 2.2) and the channel-definition algorithm (Section 4.1)
//     operate on.
#pragma once

#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace tw {

/// Which direction the outward normal of a boundary edge points.
enum class Side : std::uint8_t { kLeft, kRight, kBottom, kTop };

inline bool is_vertical(Side s) { return s == Side::kLeft || s == Side::kRight; }
const char* to_string(Side s);
/// The side facing this one (kLeft <-> kRight, kBottom <-> kTop).
Side opposite(Side s);

/// One maximal exposed edge segment of a tile set.
/// For a vertical edge (kLeft/kRight) `pos` is the x coordinate and `span`
/// the y extent; for a horizontal edge (kBottom/kTop) `pos` is the y
/// coordinate and `span` the x extent.
struct BoundaryEdge {
  Side side;
  Coord pos;
  Span span;

  friend bool operator==(const BoundaryEdge&, const BoundaryEdge&) = default;

  Coord length() const { return span.length(); }
  /// Midpoint of the edge segment.
  Point midpoint() const {
    const Coord m = (span.lo + span.hi) / 2;
    return is_vertical(side) ? Point{pos, m} : Point{m, pos};
  }
};

/// Decomposes a simple rectilinear polygon (vertex list, either winding
/// direction, no self-intersections, axis-parallel edges only) into
/// non-overlapping tiles using horizontal slab decomposition, then merges
/// vertically stackable tiles. Throws std::invalid_argument on degenerate
/// input (fewer than 4 vertices or a non-rectilinear edge).
std::vector<Rect> decompose_rectilinear(const std::vector<Point>& vertices);

/// Subtracts `covers` from `base`, returning the uncovered sub-spans in
/// ascending order. Zero-length results are dropped.
std::vector<Span> subtract_spans(const Span& base,
                                 const std::vector<Span>& covers);

/// Computes the exposed boundary edges of a set of non-overlapping tiles:
/// each tile side is reported minus the portions where another tile of the
/// same set abuts it. Adjacent collinear segments are merged.
std::vector<BoundaryEdge> exposed_edges(const std::vector<Rect>& tiles);

/// Total exposed boundary length (the cell perimeter used to compute the
/// average pin density D_p in Section 2.2).
Coord exposed_perimeter(const std::vector<Rect>& tiles);

}  // namespace tw
