#include "geom/bins.hpp"

#include <algorithm>

namespace tw {

BinGrid BinGrid::make(const Rect& extent, Coord target_bin, int max_per_axis) {
  BinGrid g;
  g.extent = extent;
  max_per_axis = std::max(1, max_per_axis);
  target_bin = std::max<Coord>(1, target_bin);

  const Coord w = extent.width();
  const Coord h = extent.height();
  g.nx = static_cast<int>(
      std::clamp<Coord>(w / target_bin, 1, static_cast<Coord>(max_per_axis)));
  g.ny = static_cast<int>(
      std::clamp<Coord>(h / target_bin, 1, static_cast<Coord>(max_per_axis)));
  // ceil(span / n), floored at 1 so index math never divides by zero.
  g.bin_w = std::max<Coord>(1, (w + g.nx - 1) / g.nx);
  g.bin_h = std::max<Coord>(1, (h + g.ny - 1) / g.ny);
  return g;
}

int BinGrid::x_of(Coord x) const {
  if (x <= extent.xlo) return 0;
  const Coord k = (x - extent.xlo) / bin_w;
  return static_cast<int>(std::min<Coord>(k, nx - 1));
}

int BinGrid::y_of(Coord y) const {
  if (y <= extent.ylo) return 0;
  const Coord k = (y - extent.ylo) / bin_h;
  return static_cast<int>(std::min<Coord>(k, ny - 1));
}

std::uint64_t BinGrid::mask(const Rect& r) const {
  // Oversized grids saturate to all-ones: every footprint then intersects
  // every other, which is conservative (more conflicts, never fewer).
  if (num_bins() > 64) return ~std::uint64_t{0};
  const Range rg = range(r);
  std::uint64_t m = 0;
  for (int by = rg.y0; by <= rg.y1; ++by) {
    for (int bx = rg.x0; bx <= rg.x1; ++bx) {
      m |= std::uint64_t{1} << static_cast<unsigned>(index(bx, by));
    }
  }
  return m;
}

BinGrid::Range BinGrid::range(const Rect& r) const {
  Range out;
  out.x0 = x_of(r.xlo);
  out.y0 = y_of(r.ylo);
  if (!r.valid()) {
    out.x1 = out.x0;
    out.y1 = out.y0;
    return out;
  }
  out.x1 = x_of(r.xhi);
  out.y1 = y_of(r.yhi);
  return out;
}

}  // namespace tw
