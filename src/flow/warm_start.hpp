// Warm-start sources for the refinement anneal (DESIGN.md "Multilevel
// placement"). A WarmStart fills a flat placement with an initial
// configuration worth refining; MultilevelFlow then runs a stage-1 anneal
// from it at a reduced starting temperature
// (Stage1Params::warm_start_t_factor).
//
// Three sources share the interface:
//   * ClusterWarmStart   — the multilevel path: cluster the netlist, run
//     stage 1 on the coarse netlist, project cluster placements onto the
//     member cells (the uncluster step), legalize;
//   * QuadraticWarmStart — the resistive-network baseline
//     (src/baseline/quadratic): analytic minimizer + row legalization;
//   * RandomWarmStart    — a uniform random configuration, the control
//     arm (equivalent to a cold start at the same reduced temperature).
//
// Every source is a deterministic function of (netlist, params, seed);
// MultilevelFlow threads its master seed through derive_seed so a flow
// run stays byte-identical for a given seed.
#pragma once

#include <cstdint>

#include "baseline/quadratic.hpp"
#include "cluster/cluster.hpp"
#include "place/stage1.hpp"

namespace tw {

/// What a warm start produced (reported through MultilevelResult, and
/// carried in multilevel checkpoints so a resumed flow reports the same
/// numbers as an uninterrupted one).
struct WarmStartInfo {
  double teil = 0.0;     ///< TEIL of the prepared flat placement
  int clusters = 0;      ///< coarse cells (cluster source; 0 otherwise)
  int dropped_nets = 0;  ///< intra-cluster nets (cluster source; 0 otherwise)
  Stage1Result coarse;   ///< the coarse-level anneal (cluster source only)
};

class WarmStart {
 public:
  virtual ~WarmStart() = default;

  virtual const char* name() const = 0;

  /// Overwrites `placement` (every cell) with an initial configuration
  /// aimed at `core`. Deterministic in `seed`. `budget`, when non-null,
  /// bounds any annealing work the source performs (the cluster source's
  /// coarse anneal charges moves and steps against it and winds down
  /// gracefully on expiry).
  virtual WarmStartInfo prepare(Placement& placement, const Rect& core,
                                std::uint64_t seed,
                                recover::RunBudget* budget) = 0;
};

/// Uniform random configuration inside the core — the control arm.
class RandomWarmStart final : public WarmStart {
 public:
  const char* name() const override { return "random"; }
  WarmStartInfo prepare(Placement& placement, const Rect& core,
                        std::uint64_t seed,
                        recover::RunBudget* budget) override;
};

/// The quadratic (resistive-network) baseline as a warm start.
class QuadraticWarmStart final : public WarmStart {
 public:
  explicit QuadraticWarmStart(QuadraticParams params = {})
      : params_(params) {}

  const char* name() const override { return "quadratic"; }
  WarmStartInfo prepare(Placement& placement, const Rect& core,
                        std::uint64_t seed,
                        recover::RunBudget* budget) override;

 private:
  QuadraticParams params_;
};

/// Aggregated-degree cap the cluster warm start applies when the caller
/// leaves ClusterParams::max_aggregated_degree at its library default of
/// 0 (see that field's comment for why hub nets need one at SoC scale).
/// Pass a negative value to run genuinely uncapped.
inline constexpr int kDefaultAggregatedDegreeCap = 32;

/// The multilevel path: cluster, anneal the coarse netlist, uncluster.
class ClusterWarmStart final : public WarmStart {
 public:
  /// `coarse_stage1` parameterizes the cluster-level anneal (its
  /// warm_start_t_factor is forced back to the cold-start 1.0: the coarse
  /// placement has no meaningful initial state; a zero
  /// max_aggregated_degree in `cluster` is promoted to
  /// kDefaultAggregatedDegreeCap, negative disables the cap).
  ClusterWarmStart(ClusterParams cluster, Stage1Params coarse_stage1)
      : cluster_(cluster), coarse_stage1_(coarse_stage1) {}

  const char* name() const override { return "cluster"; }
  WarmStartInfo prepare(Placement& placement, const Rect& core,
                        std::uint64_t seed,
                        recover::RunBudget* budget) override;

 private:
  ClusterParams cluster_;
  Stage1Params coarse_stage1_;
};

}  // namespace tw
