#include "flow/warm_start.hpp"

#include <cmath>

#include "baseline/shelf.hpp"
#include "check/contracts.hpp"
#include "util/rng.hpp"

namespace tw {

namespace {

/// Translates every cell so the placement's chip bbox is centered on
/// `core` (the baselines pack from the origin upward; the refinement
/// anneal's core is origin-centered).
void recenter(Placement& placement, const Rect& core) {
  const BaselineResult m = measure_placement(placement);
  const Point cc = core.center();
  const Point bc = m.chip_bbox.center();
  const Point d{cc.x - bc.x, cc.y - bc.y};
  if (d.x == 0 && d.y == 0) return;
  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    const Point p = placement.state(c).center;
    placement.set_center(c, {p.x + d.x, p.y + d.y});
  }
}

}  // namespace

WarmStartInfo RandomWarmStart::prepare(Placement& placement, const Rect& core,
                                       std::uint64_t seed,
                                       recover::RunBudget* /*budget*/) {
  Rng rng(seed);
  placement.randomize(rng, core);
  WarmStartInfo info;
  info.teil = placement.teil();
  return info;
}

WarmStartInfo QuadraticWarmStart::prepare(Placement& placement,
                                          const Rect& core,
                                          std::uint64_t seed,
                                          recover::RunBudget* /*budget*/) {
  QuadraticParams qp = params_;
  qp.seed = seed;
  place_quadratic(placement, qp);
  recenter(placement, core);
  WarmStartInfo info;
  info.teil = placement.teil();
  return info;
}

WarmStartInfo ClusterWarmStart::prepare(Placement& placement, const Rect& core,
                                        std::uint64_t seed,
                                        recover::RunBudget* budget) {
  const Netlist& flat = placement.netlist();
  const ClusterParams cp = [&] {
    ClusterParams p = cluster_;
    p.seed = derive_seed(seed, "cluster");
    // The flow promotes the library's "no cap" default to a real cap:
    // at SoC scale a hub net (clock/reset) aggregates into one coarse
    // net touching thousands of clusters, and every coarse move of any
    // incident cluster rescans all of them — the 10k tier spent most of
    // its coarse anneal inside those rescans. A negative value opts out.
    if (p.max_aggregated_degree == 0)
      p.max_aggregated_degree = kDefaultAggregatedDegreeCap;
    return p;
  }();
  Clustering clustering = cluster_netlist(flat, cp);

  // Stage 1 on the coarse netlist. Faults are deliberately not wired in
  // here — kill points target the refinement anneal, whose cursor the
  // multilevel checkpoint carries — but the budget is: the coarse anneal
  // charges the same move/step meters as the refinement that follows.
  Stage1Params sp = coarse_stage1_;
  sp.warm_start_t_factor = 1.0;
  Stage1Placer coarse_placer(clustering.coarse, sp,
                             derive_seed(seed, "coarse"));
  if (budget != nullptr) {
    Stage1Hooks hooks;
    hooks.budget = budget;
    coarse_placer.set_hooks(hooks);
  }
  Placement coarse_placement(clustering.coarse);
  WarmStartInfo info;
  info.coarse = coarse_placer.run(coarse_placement);
  info.clusters = static_cast<int>(clustering.coarse.num_cells());
  info.dropped_nets = clustering.map.dropped_nets;

  // Uncluster: project every cluster's placement onto its members. The
  // coarse core and the flat core are both sized by the area estimator
  // but from different netlists, so cluster centers are mapped affinely
  // from one core to the other; member offsets stay unscaled (they encode
  // real member geometry). Residual inter-cluster overlap is exactly what
  // the warm-started refinement anneal is for.
  const Rect ccore = info.coarse.core;
  TW_REQUIRE(ccore.width() > 0 && ccore.height() > 0,
             "coarse anneal produced a degenerate core");
  const double sx =
      static_cast<double>(core.width()) / static_cast<double>(ccore.width());
  const double sy =
      static_cast<double>(core.height()) / static_cast<double>(ccore.height());
  const auto num_clusters = static_cast<CellId>(clustering.coarse.num_cells());
  for (CellId k = 0; k < num_clusters; ++k) {
    const CellState& st = coarse_placement.state(k);
    const Point mapped{
        core.xlo + static_cast<Coord>(std::llround(
                       static_cast<double>(st.center.x - ccore.xlo) * sx)),
        core.ylo + static_cast<Coord>(std::llround(
                       static_cast<double>(st.center.y - ccore.ylo) * sy))};
    for (const ClusterMember& m :
         clustering.map.members[static_cast<std::size_t>(k)]) {
      placement.set_center(m.cell, member_center(mapped, st.orient, m));
      placement.set_orient(m.cell, st.orient);
    }
  }
  info.teil = placement.teil();
  return info;
}

}  // namespace tw
