#include "flow/multilevel.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "baseline/shelf.hpp"
#include "estimator/area_estimator.hpp"
#include "util/log.hpp"

namespace tw {

MultilevelFlow::MultilevelFlow(const Netlist& nl, WarmStart& warm,
                               MultilevelParams params)
    : nl_(nl), warm_(&warm), params_(std::move(params)) {
  // API-boundary validation, unconditional: at 1.0 the cold-start p2
  // calibration would discard the warm placement — a silently wasted warm
  // start, not a degraded one.
  if (!(params_.refine_t_factor > 0.0 && params_.refine_t_factor < 1.0))
    throw std::invalid_argument(
        "MultilevelParams::refine_t_factor must be in (0, 1), got " +
        std::to_string(params_.refine_t_factor));
}

MultilevelResult MultilevelFlow::run(Placement& placement) {
  return run_impl(placement, nullptr);
}

MultilevelResult MultilevelFlow::resume(
    Placement& placement, const recover::FlowCheckpoint& checkpoint) {
  const std::uint64_t want = recover::netlist_digest(nl_);
  if (checkpoint.digest != want)
    throw recover::CheckpointError(
        recover::CheckpointErrc::kNetlistMismatch,
        "checkpoint digest " + std::to_string(checkpoint.digest) +
            " != netlist digest " + std::to_string(want));
  if (checkpoint.master_seed != params_.seed)
    throw recover::CheckpointError(
        recover::CheckpointErrc::kSeedMismatch,
        "checkpoint seed " + std::to_string(checkpoint.master_seed) +
            " != flow seed " + std::to_string(params_.seed));
  if (checkpoint.phase != recover::FlowPhase::kMultilevelRefine)
    throw recover::CheckpointError(
        recover::CheckpointErrc::kCorrupt,
        std::string("checkpoint phase ") + to_string(checkpoint.phase) +
            " is not multilevel-refine");
  recover::apply_placement(placement, checkpoint.placement);
  return run_impl(placement, &checkpoint);
}

MultilevelResult MultilevelFlow::run_impl(
    Placement& placement, const recover::FlowCheckpoint* checkpoint) {
  MultilevelResult r;
  r.warm_source = warm_->name();
  const bool resumed = checkpoint != nullptr;

  std::optional<recover::FileCheckpointSink> sink;
  std::uint64_t digest = 0;
  if (!params_.recover.checkpoint_dir.empty()) {
    sink.emplace(params_.recover.checkpoint_dir,
                 params_.recover.checkpoint_keep,
                 params_.recover.checkpoint_quota_bytes,
                 params_.recover.disk_faults);
    digest = recover::netlist_digest(nl_);
  }

  const auto preempt_point = [this](const char* where) {
    // Cancellation wins over preemption, as in TimberWolfMC::run_impl.
    if (params_.recover.budget != nullptr &&
        params_.recover.budget->preempt_requested() &&
        !params_.recover.budget->cancelled())
      throw recover::Preempted(where);
  };

  // --- warm start ------------------------------------------------------------
  if (resumed) {
    // The checkpoint postdates the warm start; its outputs ride along.
    r.warm.coarse = checkpoint->ml_coarse;
    r.warm.teil = checkpoint->ml_warm_teil;
    r.warm.clusters = checkpoint->ml_clusters;
    r.warm.dropped_nets = checkpoint->ml_dropped_nets;
  } else {
    // The refinement anneal will size the same core from the same netlist
    // and estimator parameters; computing it here hands the warm-start
    // source the exact region the refinement expects cells in.
    DynamicAreaEstimator estimator(nl_, params_.refine.wire);
    const Rect core =
        estimator.compute_initial_core(params_.refine.core_aspect);
    r.warm = warm_->prepare(placement, core,
                            derive_seed(params_.seed, "warm"),
                            params_.recover.budget);
    log_info("warm start (", r.warm_source, ") done: teil=", r.warm.teil,
             " clusters=", r.warm.clusters,
             " dropped_nets=", r.warm.dropped_nets);
  }

  // --- warm-started refinement ----------------------------------------------
  Stage1Params rp = params_.refine;
  rp.warm_start_t_factor = params_.refine_t_factor;
  Stage1Placer refine(nl_, rp, derive_seed(params_.seed, "ml-refine"));
  Stage1Hooks hooks;
  hooks.budget = params_.recover.budget;
  hooks.faults = params_.recover.faults;
  hooks.checkpoint_every = params_.recover.checkpoint_every;
  if (sink || params_.recover.on_progress) {
    hooks.on_checkpoint = [&](const Stage1Cursor& cur) {
      if (sink) {
        recover::FlowCheckpoint fc;
        fc.master_seed = params_.seed;
        fc.digest = digest;
        fc.phase = recover::FlowPhase::kMultilevelRefine;
        fc.ml_coarse = r.warm.coarse;
        fc.ml_warm_teil = r.warm.teil;
        fc.ml_clusters = r.warm.clusters;
        fc.ml_dropped_nets = r.warm.dropped_nets;
        fc.s1 = cur;
        fc.placement = recover::pack_placement(placement);
        sink->save(fc);
        preempt_point("multilevel refine step boundary");
      }
      if (params_.recover.on_progress) {
        FlowProgress pg;
        pg.phase = recover::FlowPhase::kMultilevelRefine;
        pg.step = cur.next_step;
        pg.pass = 0;
        pg.t = cur.t;
        if (!cur.partial.trace.empty())
          pg.cost = cur.partial.trace.back().avg_cost;
        params_.recover.on_progress(pg);
      }
    };
  }
  refine.set_hooks(std::move(hooks));
  r.refine = resumed ? refine.resume(placement, checkpoint->s1)
                     : refine.run(placement);

  const BaselineResult m = measure_placement(placement);
  r.final_teil = m.teil;
  r.final_chip_area = m.chip_area;
  r.final_chip_bbox = m.chip_bbox;
  log_info("multilevel refine done: teil=", r.final_teil,
           " area=", r.final_chip_area,
           " overlap=", r.refine.residual_overlap);

  if (r.refine.outcome != recover::RunOutcome::kCompleted)
    r.outcome = r.refine.outcome;  // budget outcomes win over kResumed
  else
    r.outcome = resumed ? recover::RunOutcome::kResumed
                        : recover::RunOutcome::kCompleted;
  return r;
}

}  // namespace tw
