#include "flow/multilevel.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "anneal/range_limiter.hpp"
#include "anneal/schedule.hpp"
#include "baseline/shelf.hpp"
#include "estimator/area_estimator.hpp"
#include "util/log.hpp"

namespace tw {
namespace {

/// Acceptance probe for the refinement's starting temperature (fresh runs
/// only — a resume continues at its checkpoint temperature and never
/// calls this). Samples single-cell displacements on the warm placement,
/// sized to the move window the fallback temperature would allow, and
/// solves exp(-mean_uphill / t) = chi for the temperature whose uphill
/// acceptance would be the target chi. Wire cost only: the overlap
/// penalty weight is calibrated later by the refinement itself, and at
/// polish temperatures the wire term dominates the acceptance decision.
/// Every touched cell is restored, and the RNG is a dedicated stream
/// (derive_seed(seed, "ml-probe")), so the probe perturbs neither the
/// placement nor the refinement's own draws. Returns `fallback` when the
/// warm placement yields too few uphill samples to measure (e.g. a
/// near-degenerate placement where most displacements go downhill).
double probe_warm_t_factor(const Netlist& nl, Placement& placement,
                           const DynamicAreaEstimator& estimator,
                           const Rect& core, double rho, double fallback,
                           std::uint64_t seed) {
  constexpr int kSamples = 128;
  constexpr int kMinUphill = 8;
  constexpr double kTargetAcceptance = 0.25;
  constexpr double kMinFactor = 0.005;
  constexpr double kMaxFactor = 0.2;

  // T_infinity exactly as the refinement's Stage1Placer computes it
  // (Eqns 19-21 over expanded cell areas), so the returned factor lands
  // on the same temperature scale.
  const double e0 = estimator.nominal_expansion();
  double eff_area = 0.0;
  for (const auto& c : nl.cells()) {
    const CellInstance& inst = c.instances.front();
    eff_area += (static_cast<double>(inst.width) + 2.0 * e0) *
                (static_cast<double>(inst.height) + 2.0 * e0);
  }
  const double t_inf = t_infinity(
      temperature_scale(eff_area / static_cast<double>(nl.num_cells())));

  RangeLimiter limiter(core.width(), core.height(), t_inf, rho);
  const Coord wx = limiter.window_x(fallback * t_inf);
  const Coord wy = limiter.window_y(fallback * t_inf);

  Rng rng(derive_seed(seed, "ml-probe"));
  double sum_uphill = 0.0;
  int uphill = 0;
  const auto n = static_cast<CellId>(nl.num_cells());
  for (int s = 0; s < kSamples; ++s) {
    const CellId c = static_cast<CellId>(rng.uniform_int(0, n - 1));
    const auto& nets = placement.nets_of_cell(c);
    if (nets.empty()) continue;
    double before = 0.0;
    for (const NetId net : nets) before += placement.net_cost(net);
    const CellState saved = placement.snapshot(c);
    const Point p = saved.center;
    // Direct mutation is safe here: the probe runs strictly before the
    // refinement placer constructs its overlap/net-bound engines, so
    // there is no index to desync — the same reason the warm-start
    // sources sit in the txn layer.
    placement.set_center(  // lint: allow(txn-reach)
        c, {p.x + static_cast<Coord>(rng.uniform_int(-wx / 2, wx / 2)),
            p.y + static_cast<Coord>(rng.uniform_int(-wy / 2, wy / 2))});
    double after = 0.0;
    for (const NetId net : nets) after += placement.net_cost(net);
    placement.restore(c, saved);  // lint: allow(txn-reach)
    const double delta = after - before;
    if (delta > 0.0) {
      sum_uphill += delta;
      ++uphill;
    }
  }
  if (uphill < kMinUphill) return fallback;
  const double t =
      (sum_uphill / uphill) / std::log(1.0 / kTargetAcceptance);
  return std::clamp(t / t_inf, kMinFactor, kMaxFactor);
}

}  // namespace

MultilevelFlow::MultilevelFlow(const Netlist& nl, WarmStart& warm,
                               MultilevelParams params)
    : nl_(nl), warm_(&warm), params_(std::move(params)) {
  // API-boundary validation, unconditional: at 1.0 the cold-start p2
  // calibration would discard the warm placement — a silently wasted warm
  // start, not a degraded one.
  if (!(params_.refine_t_factor > 0.0 && params_.refine_t_factor < 1.0))
    throw std::invalid_argument(
        "MultilevelParams::refine_t_factor must be in (0, 1), got " +
        std::to_string(params_.refine_t_factor));
}

MultilevelResult MultilevelFlow::run(Placement& placement) {
  return run_impl(placement, nullptr);
}

MultilevelResult MultilevelFlow::resume(
    Placement& placement, const recover::FlowCheckpoint& checkpoint) {
  const std::uint64_t want = recover::netlist_digest(nl_);
  if (checkpoint.digest != want)
    throw recover::CheckpointError(
        recover::CheckpointErrc::kNetlistMismatch,
        "checkpoint digest " + std::to_string(checkpoint.digest) +
            " != netlist digest " + std::to_string(want));
  if (checkpoint.master_seed != params_.seed)
    throw recover::CheckpointError(
        recover::CheckpointErrc::kSeedMismatch,
        "checkpoint seed " + std::to_string(checkpoint.master_seed) +
            " != flow seed " + std::to_string(params_.seed));
  if (checkpoint.phase != recover::FlowPhase::kMultilevelRefine)
    throw recover::CheckpointError(
        recover::CheckpointErrc::kCorrupt,
        std::string("checkpoint phase ") + to_string(checkpoint.phase) +
            " is not multilevel-refine");
  recover::apply_placement(placement, checkpoint.placement);
  return run_impl(placement, &checkpoint);
}

MultilevelResult MultilevelFlow::run_impl(
    Placement& placement, const recover::FlowCheckpoint* checkpoint) {
  MultilevelResult r;
  r.warm_source = warm_->name();
  const bool resumed = checkpoint != nullptr;

  std::optional<recover::FileCheckpointSink> sink;
  std::uint64_t digest = 0;
  if (!params_.recover.checkpoint_dir.empty()) {
    sink.emplace(params_.recover.checkpoint_dir,
                 params_.recover.checkpoint_keep,
                 params_.recover.checkpoint_quota_bytes,
                 params_.recover.disk_faults);
    digest = recover::netlist_digest(nl_);
  }

  const auto preempt_point = [this](const char* where) {
    // Cancellation wins over preemption, as in TimberWolfMC::run_impl.
    if (params_.recover.budget != nullptr &&
        params_.recover.budget->preempt_requested() &&
        !params_.recover.budget->cancelled())
      throw recover::Preempted(where);
  };

  // --- warm start ------------------------------------------------------------
  // The probed factor only matters on the fresh path: a resumed
  // refinement restarts at its checkpoint cursor's temperature and never
  // reads warm_start_t_factor.
  double refine_factor = params_.refine_t_factor;
  if (resumed) {
    // The checkpoint postdates the warm start; its outputs ride along.
    r.warm.coarse = checkpoint->ml_coarse;
    r.warm.teil = checkpoint->ml_warm_teil;
    r.warm.clusters = checkpoint->ml_clusters;
    r.warm.dropped_nets = checkpoint->ml_dropped_nets;
  } else {
    // The refinement anneal will size the same core from the same netlist
    // and estimator parameters; computing it here hands the warm-start
    // source the exact region the refinement expects cells in.
    DynamicAreaEstimator estimator(nl_, params_.refine.wire);
    const Rect core =
        estimator.compute_initial_core(params_.refine.core_aspect);
    r.warm = warm_->prepare(placement, core,
                            derive_seed(params_.seed, "warm"),
                            params_.recover.budget);
    if (params_.probe_refine_t)
      refine_factor = probe_warm_t_factor(
          nl_, placement, estimator, core, params_.refine.rho,
          params_.refine_t_factor, params_.seed);
    log_info("warm start (", r.warm_source, ") done: teil=", r.warm.teil,
             " clusters=", r.warm.clusters,
             " dropped_nets=", r.warm.dropped_nets,
             " refine_t_factor=", refine_factor);
  }

  // --- warm-started refinement ----------------------------------------------
  Stage1Params rp = params_.refine;
  rp.warm_start_t_factor = refine_factor;
  Stage1Placer refine(nl_, rp, derive_seed(params_.seed, "ml-refine"));
  Stage1Hooks hooks;
  hooks.budget = params_.recover.budget;
  hooks.faults = params_.recover.faults;
  hooks.checkpoint_every = params_.recover.checkpoint_every;
  if (sink || params_.recover.on_progress) {
    hooks.on_checkpoint = [&](const Stage1Cursor& cur) {
      if (sink) {
        recover::FlowCheckpoint fc;
        fc.master_seed = params_.seed;
        fc.digest = digest;
        fc.phase = recover::FlowPhase::kMultilevelRefine;
        fc.ml_coarse = r.warm.coarse;
        fc.ml_warm_teil = r.warm.teil;
        fc.ml_clusters = r.warm.clusters;
        fc.ml_dropped_nets = r.warm.dropped_nets;
        fc.s1 = cur;
        fc.placement = recover::pack_placement(placement);
        sink->save(fc);
        preempt_point("multilevel refine step boundary");
      }
      if (params_.recover.on_progress) {
        FlowProgress pg;
        pg.phase = recover::FlowPhase::kMultilevelRefine;
        pg.step = cur.next_step;
        pg.pass = 0;
        pg.t = cur.t;
        if (!cur.partial.trace.empty())
          pg.cost = cur.partial.trace.back().avg_cost;
        params_.recover.on_progress(pg);
      }
    };
  }
  refine.set_hooks(std::move(hooks));
  r.refine = resumed ? refine.resume(placement, checkpoint->s1)
                     : refine.run(placement);

  const BaselineResult m = measure_placement(placement);
  r.final_teil = m.teil;
  r.final_chip_area = m.chip_area;
  r.final_chip_bbox = m.chip_bbox;
  log_info("multilevel refine done: teil=", r.final_teil,
           " area=", r.final_chip_area,
           " overlap=", r.refine.residual_overlap);

  if (r.refine.outcome != recover::RunOutcome::kCompleted)
    r.outcome = r.refine.outcome;  // budget outcomes win over kResumed
  else
    r.outcome = resumed ? recover::RunOutcome::kResumed
                        : recover::RunOutcome::kCompleted;
  return r;
}

}  // namespace tw
