#include "flow/visualize.hpp"

#include <algorithm>

#include "util/svg_writer.hpp"

namespace tw {
namespace {

/// A readable qualitative palette, cycled per cell.
const char* cell_color(CellId c, bool custom) {
  static const char* macro_colors[] = {"#4e79a7", "#59a1cf", "#2c5f8a",
                                       "#6b8fb3", "#3d6f9e"};
  static const char* custom_colors[] = {"#59a14f", "#7ab871", "#3e7d38"};
  if (custom) return custom_colors[static_cast<std::size_t>(c) % 3];
  return macro_colors[static_cast<std::size_t>(c) % 5];
}

void draw_cells(SvgWriter& svg, const Placement& placement,
                const VisualizeOptions& opts) {
  const Netlist& nl = placement.netlist();
  for (const auto& cell : nl.cells()) {
    const char* color = cell_color(cell.id, cell.is_custom());
    for (const Rect& t : placement.absolute_tiles(cell.id))
      svg.rect(t, color, "#222", 1.0, 0.85);
    if (opts.show_names) {
      const Rect bb = placement.bbox(cell.id);
      svg.text(bb.center(), cell.name,
               std::max(8.0, static_cast<double>(bb.height()) / 6.0), "#fff");
    }
  }
  if (opts.show_pins) {
    for (const auto& pin : nl.pins())
      svg.circle(placement.pin_position(pin.id), 1.5,
                 pin.equiv_class != 0 ? "#e15759" : "#f1ce63");
  }
}

}  // namespace

std::string placement_svg(const Placement& placement, const Rect& core,
                          const VisualizeOptions& opts) {
  SvgWriter svg(core, core.width() / 20);
  if (opts.show_core) svg.rect(core, "#f7f7f7", "#999", 2.0);
  draw_cells(svg, placement, opts);
  return svg.str();
}

std::string routing_svg(const Placement& placement, const Rect& core,
                        const ChannelGraph& cg, const GlobalRouteResult& routed,
                        const VisualizeOptions& opts) {
  SvgWriter svg(core, core.width() / 20);
  if (opts.show_core) svg.rect(core, "#f7f7f7", "#999", 2.0);

  if (opts.show_channels) {
    // Channel regions shaded by routed density.
    std::vector<std::vector<EdgeId>> route_edges(routed.choice.size());
    for (std::size_t n = 0; n < routed.choice.size(); ++n)
      if (const Route* r = routed.route_of(n)) route_edges[n] = r->edges;
    const auto densities = region_densities(cg, route_edges);
    const int dmax = std::max(
        1, *std::max_element(densities.begin(), densities.end()));
    for (std::size_t r = 0; r < cg.regions.size(); ++r) {
      const double load =
          static_cast<double>(densities[r]) / static_cast<double>(dmax);
      if (load <= 0.0) continue;
      svg.rect(cg.regions[r].rect, "#e15759", "none", 0.0, 0.15 + 0.45 * load);
    }
  }

  draw_cells(svg, placement, opts);

  // Selected routes, as polylines through the graph nodes.
  for (std::size_t n = 0; n < routed.choice.size(); ++n) {
    const Route* route = routed.route_of(n);
    if (!route) continue;
    for (EdgeId e : route->edges) {
      const GraphEdge& ge = cg.graph.edge(e);
      svg.line(cg.graph.node_pos(ge.a), cg.graph.node_pos(ge.b), "#555", 1.0,
               0.5);
    }
  }
  return svg.str();
}

}  // namespace tw
