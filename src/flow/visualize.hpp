// SVG visualization of placements, channel structures and global
// routings — the fastest way to inspect what the annealer and router
// actually produced.
#pragma once

#include <string>

#include "channel/channel_graph.hpp"
#include "place/placement.hpp"
#include "route/interchange.hpp"

namespace tw {

struct VisualizeOptions {
  bool show_pins = true;
  bool show_names = true;
  bool show_core = true;
  /// Draw critical regions (channel structure) shaded by density when a
  /// routing result is supplied.
  bool show_channels = true;
};

/// The placed cells (macros blue, custom cells green, with pins and
/// names) inside the core.
std::string placement_svg(const Placement& placement, const Rect& core,
                          const VisualizeOptions& opts = {});

/// Placement plus channel structure and the selected global routes (drawn
/// through the slab centers).
std::string routing_svg(const Placement& placement, const Rect& core,
                        const ChannelGraph& cg, const GlobalRouteResult& routed,
                        const VisualizeOptions& opts = {});

}  // namespace tw
