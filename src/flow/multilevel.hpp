// The multilevel placement flow (DESIGN.md "Multilevel placement"):
//
//   1. warm start — a WarmStart source fills the flat placement (the
//      cluster source clusters the netlist, anneals the coarse netlist,
//      and projects cluster placements onto the members);
//   2. refinement — a stage-1 anneal started at refine_t_factor *
//      T_infinity (Stage1Params::warm_start_t_factor), so the range
//      limiter opens with proportionally contracted move windows and the
//      anneal polishes instead of re-scrambling.
//
// Flat stage 1 spends most of its moves at high temperature rediscovering
// global structure the netlist's connectivity already implies; at SoC
// scale (1k-10k macros) the coarse anneal finds that structure over
// num_cells / max_cluster_size objects and the refinement inherits it.
//
//   Netlist nl = ...;
//   ClusterWarmStart warm({}, {});
//   MultilevelFlow flow(nl, warm, {});
//   Placement placement(nl);
//   MultilevelResult r = flow.run(placement);
//
// Determinism: every stochastic component threads from MultilevelParams::
// seed via derive_seed ("warm" for the source, "ml-refine" for the
// refinement), so a run is byte-identical for a given (netlist, params,
// seed, source). Checkpoints cover the refinement anneal (phase
// kMultilevelRefine, carrying the warm-start outputs); a resumed run is
// byte-identical to an uninterrupted one.
#pragma once

#include "flow/timberwolf.hpp"
#include "flow/warm_start.hpp"

namespace tw {

struct MultilevelParams {
  /// Parameters of the flat refinement anneal. The coarse anneal (cluster
  /// source) is parameterized separately through ClusterWarmStart.
  Stage1Params refine;

  /// Starting temperature of the refinement as a fraction of T_infinity
  /// (becomes refine.warm_start_t_factor). Must be in (0, 1): at 1.0 the
  /// paper's cold-start calibration discards the warm placement, which
  /// defeats the flow. The default is deliberately deep into the schedule:
  /// T_infinity is sized for near-unit acceptance, so even 0.15 * T_inf
  /// still accepts most uphill moves and re-scrambles the warm placement
  /// (measured on the 1k known-optimum instance: 0.15 ends 2.9x worse
  /// than 0.02). 0.02 keeps the acceptance low enough to polish. With
  /// probe_refine_t on (the default) this constant is the fallback; with
  /// it off, the constant is used directly.
  double refine_t_factor = 0.02;

  /// Derive the refinement's starting temperature from the warm placement
  /// itself instead of the fixed constant: sample single-cell
  /// displacements, measure the mean uphill wire-cost delta, and start at
  /// the temperature whose uphill acceptance would be ~25%, clamped to
  /// [0.005, 0.2] of T_infinity (refine_t_factor is the fallback when the
  /// probe cannot measure). A cheap warm start (random) probes hot and
  /// gets room to fix it; a good one (cluster) probes cool and is only
  /// polished. The probe restores every cell it touches and draws from
  /// its own derived stream, so it shifts no other decision; resumed runs
  /// skip it entirely (they continue at the checkpoint temperature).
  bool probe_refine_t = true;

  std::uint64_t seed = 1;

  /// Checkpointing / budget / fault instrumentation, exactly as for
  /// TimberWolfMC. Checkpoints are written at refinement temperature-step
  /// boundaries; the budget also meters the warm start's coarse anneal.
  FlowRecoverOptions recover;
};

struct MultilevelResult {
  WarmStartInfo warm;       ///< what the warm start produced
  std::string warm_source;  ///< WarmStart::name() of the source used

  Stage1Result refine;      ///< the refinement anneal

  double final_teil = 0.0;
  Coord final_chip_area = 0;
  Rect final_chip_bbox;

  /// kCompleted / kBudgetExhausted / kCancelled / kResumed, with the same
  /// semantics as FlowResult::outcome.
  recover::RunOutcome outcome = recover::RunOutcome::kCompleted;

  /// Refinement improvement over the warm start (positive = reduction).
  double teil_change_pct() const {
    return warm.teil > 0.0 ? 100.0 * (warm.teil - final_teil) / warm.teil
                           : 0.0;
  }
};

class MultilevelFlow {
public:
  /// `warm` is borrowed for the flow's lifetime.
  MultilevelFlow(const Netlist& nl, WarmStart& warm,
                 MultilevelParams params = {});

  /// Runs warm start + refinement, leaving the final configuration in
  /// `placement`.
  MultilevelResult run(Placement& placement);

  /// Continues an interrupted refinement from a checkpoint (phase must be
  /// kMultilevelRefine; kNetlistMismatch / kSeedMismatch / kCorrupt are
  /// typed errors). The warm start is not re-run: its outputs ride in the
  /// checkpoint. The continuation is byte-identical to the uninterrupted
  /// run under the same parameters and source.
  MultilevelResult resume(Placement& placement,
                          const recover::FlowCheckpoint& checkpoint);

private:
  MultilevelResult run_impl(Placement& placement,
                            const recover::FlowCheckpoint* checkpoint);

  const Netlist& nl_;
  WarmStart* warm_;
  MultilevelParams params_;
};

}  // namespace tw
