// The TimberWolfMC flow: the package's public entry point.
//
//   Netlist nl = ...;                       // or parse_netlist_file(...)
//   TimberWolfMC tw(nl, {});                // default parameters
//   Placement placement(nl);
//   FlowResult r = tw.run(placement);       // stage 1 + 3 refinements
//
// The result carries the per-stage metrics the paper reports: the TEIL and
// chip area at the end of stage 1 and stage 2 (whose relative change is
// the estimator-accuracy experiment of Table 3) and the final values used
// for the comparisons of Table 4.
#pragma once

#include "place/stage1.hpp"
#include "refine/stage2.hpp"

namespace tw {

struct FlowParams {
  Stage1Params stage1;
  Stage2Params stage2;
  std::uint64_t seed = 1;
};

struct FlowResult {
  Stage1Result stage1;
  Stage2Result stage2;

  double stage1_teil = 0.0;
  Coord stage1_chip_area = 0;
  double final_teil = 0.0;
  Coord final_chip_area = 0;
  Rect final_chip_bbox;

  /// Table 3 metrics: percentage change from the end of stage 1 to the end
  /// of stage 2 (positive = reduction, matching the paper's sign).
  double teil_change_pct() const {
    return stage1_teil > 0.0
               ? 100.0 * (stage1_teil - final_teil) / stage1_teil
               : 0.0;
  }
  double area_change_pct() const {
    return stage1_chip_area > 0
               ? 100.0 *
                     static_cast<double>(stage1_chip_area - final_chip_area) /
                     static_cast<double>(stage1_chip_area)
               : 0.0;
  }
};

class TimberWolfMC {
public:
  TimberWolfMC(const Netlist& nl, FlowParams params = {});

  /// Runs the full flow, leaving the final configuration in `placement`.
  FlowResult run(Placement& placement);

  /// Runs only stage 1 (useful for experiments that refine separately).
  Stage1Result run_stage1(Placement& placement);

private:
  const Netlist& nl_;
  FlowParams params_;
};

}  // namespace tw
