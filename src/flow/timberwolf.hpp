// The TimberWolfMC flow: the package's public entry point.
//
//   Netlist nl = ...;                       // or parse_netlist_file(...)
//   TimberWolfMC tw(nl, {});                // default parameters
//   Placement placement(nl);
//   FlowResult r = tw.run(placement);       // stage 1 + 3 refinements
//
// The result carries the per-stage metrics the paper reports: the TEIL and
// chip area at the end of stage 1 and stage 2 (whose relative change is
// the estimator-accuracy experiment of Table 3) and the final values used
// for the comparisons of Table 4.
#pragma once

#include <functional>

#include "place/stage1.hpp"
#include "place/stage1_parallel.hpp"
#include "recover/checkpoint.hpp"
#include "refine/stage2.hpp"

namespace tw {

/// One progress sample of a running flow, emitted at the same temperature-
/// step boundaries checkpoints are written at (every `checkpoint_every`
/// steps), whether or not a checkpoint sink is configured. This is the
/// placement service's streaming-progress source: the samples are pure
/// observations — emitting them never consumes RNG state or otherwise
/// perturbs the run, so an observed flow stays byte-identical to a bare
/// one.
struct FlowProgress {
  recover::FlowPhase phase = recover::FlowPhase::kStage1;
  int step = 0;       ///< temperature steps completed in the current anneal
  int pass = 0;       ///< stage-2 refinement pass in flight (0 in stage 1)
  double t = 0.0;     ///< current annealing temperature
  /// Best available cost estimate at this boundary: the last completed
  /// temperature step's average cost in stage 1, the in-flight pass's
  /// post-routing TEIL in stage 2 (0.0 while nothing is measured yet).
  double cost = 0.0;
};

/// Run-lifecycle options (see docs/ROBUSTNESS.md). All pointers are
/// non-owning and optional; with everything defaulted the flow behaves —
/// byte for byte — exactly as an uninstrumented run.
struct FlowRecoverOptions {
  /// When non-empty, periodic checkpoints are written here (numbered
  /// ckpt-NNNNNN.twcp files, atomic temp+rename writes).
  std::string checkpoint_dir;
  /// Temperature steps between checkpoints.
  int checkpoint_every = 5;
  /// Retention: keep only the newest `checkpoint_keep` files in the
  /// directory, pruning older ones atomically after each write. 0 keeps
  /// everything (the pre-pool behavior).
  int checkpoint_keep = 0;
  /// Byte quota for the checkpoint directory; a save that would exceed it
  /// is refused with CheckpointError(kQuotaExceeded) after pruning what
  /// retention allows. 0 means unbounded.
  std::uint64_t checkpoint_quota_bytes = 0;
  /// Disk-fault injection seam for the checkpoint sink (tests script
  /// ENOSPC / short writes through it; see recover::DiskFaultPlan).
  recover::DiskFaultInjector* disk_faults = nullptr;
  /// Work budget and cooperative cancellation, honored by both stages and
  /// the global router. On expiry the flow degrades gracefully: the
  /// annealer quenches (improvements only), keeps the best feasible state
  /// seen, and returns with outcome kBudgetExhausted / kCancelled.
  recover::RunBudget* budget = nullptr;
  /// Deterministic kill points: FaultPlan for the recovery tests, the
  /// replica pool's watchdog probe for supervised runs.
  recover::FaultInjector* faults = nullptr;
  /// Streaming progress observer, called at every `checkpoint_every`-th
  /// temperature-step boundary of both stages (see FlowProgress). May be
  /// set without a checkpoint_dir. Must not throw.
  std::function<void(const FlowProgress&)> on_progress;
};

struct FlowParams {
  Stage1Params stage1;
  Stage2Params stage2;
  std::uint64_t seed = 1;
  FlowRecoverOptions recover;

  /// > 0 runs stage 1 on the parallel engine (ParallelStage1Placer) with
  /// that many workers; 0 keeps the serial Stage1Placer. The two engines
  /// follow different same-seed trajectories (the parallel one draws from
  /// per-slot RNG streams), but the parallel result itself is
  /// byte-identical across worker counts — 1, 4 and 8 workers all
  /// produce the 1-worker placement. Checkpoints record which engine was
  /// annealing (FlowPhase::kParallelStage1), and resume re-selects it
  /// from the checkpoint phase, so a resume under a different
  /// stage1_workers value continues the original trajectory.
  int stage1_workers = 0;

  /// Proposal slots per speculation batch (0 = sized from the circuit).
  /// Part of the parallel trajectory: changing it changes results, so a
  /// resumed run must use the value the checkpointed run used.
  int stage1_batch_slots = 0;
};

struct FlowResult {
  Stage1Result stage1;
  Stage2Result stage2;

  double stage1_teil = 0.0;
  Coord stage1_chip_area = 0;
  double final_teil = 0.0;
  Coord final_chip_area = 0;
  Rect final_chip_bbox;

  /// How the flow ended:
  ///   kCompleted       — ran the full schedule to the stopping criterion;
  ///   kBudgetExhausted — the RunBudget expired; the placement is the
  ///                      quenched best-feasible state reached by then;
  ///   kCancelled       — RunBudget::request_cancel() was honored (same
  ///                      graceful wind-down as exhaustion);
  ///   kResumed         — a run() continued from a checkpoint completed
  ///                      (metrics are identical to the uninterrupted run).
  recover::RunOutcome outcome = recover::RunOutcome::kCompleted;

  /// Table 3 metrics: percentage change from the end of stage 1 to the end
  /// of stage 2 (positive = reduction, matching the paper's sign).
  double teil_change_pct() const {
    return stage1_teil > 0.0
               ? 100.0 * (stage1_teil - final_teil) / stage1_teil
               : 0.0;
  }
  double area_change_pct() const {
    return stage1_chip_area > 0
               ? 100.0 *
                     static_cast<double>(stage1_chip_area - final_chip_area) /
                     static_cast<double>(stage1_chip_area)
               : 0.0;
  }
};

class TimberWolfMC {
public:
  TimberWolfMC(const Netlist& nl, FlowParams params = {});

  /// Runs the full flow, leaving the final configuration in `placement`.
  FlowResult run(Placement& placement);

  /// Continues an interrupted flow from a checkpoint (see
  /// recover::load_checkpoint). `placement` is overwritten with the
  /// checkpointed state; the continuation is byte-identical to the
  /// uninterrupted run under the same FlowParams. Throws CheckpointError
  /// (kNetlistMismatch / kSeedMismatch) when the checkpoint was taken on a
  /// different netlist or master seed. The returned outcome is kResumed
  /// when the continuation completed normally; budget outcomes win.
  FlowResult resume(Placement& placement,
                    const recover::FlowCheckpoint& checkpoint);

  /// Runs only stage 1 (useful for experiments that refine separately).
  Stage1Result run_stage1(Placement& placement);

private:
  FlowResult run_impl(Placement& placement,
                      const recover::FlowCheckpoint* checkpoint);
  ParallelStage1Params parallel_stage1_params() const;

  const Netlist& nl_;
  FlowParams params_;
};

}  // namespace tw
