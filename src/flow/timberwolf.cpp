#include "flow/timberwolf.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/log.hpp"

namespace tw {
namespace {

/// Chip bbox area of the bare placed cells (no expansions): the common
/// measure applied to both stages and to the baseline placers.
Rect chip_bbox(const Placement& placement) {
  Rect bb;
  bool first = true;
  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    for (const Rect& t : placement.absolute_tiles(c)) {
      bb = first ? t : bb.bounding_union(t);
      first = false;
    }
  }
  return bb;
}

/// Stage-1 chip area: the cells plus the space the estimator reserved.
Coord stage1_area(const Placement& placement, const Netlist& nl,
                  const DynamicAreaEstimator& estimator) {
  OverlapEngine ov(placement, estimator);
  Rect bb;
  bool first = true;
  const auto n = static_cast<CellId>(nl.num_cells());
  for (CellId c = 0; c < n; ++c)
    for (const Rect& t : ov.expanded_tiles(c)) {
      bb = first ? t : bb.bounding_union(t);
      first = false;
    }
  return bb.area();
}

}  // namespace

TimberWolfMC::TimberWolfMC(const Netlist& nl, FlowParams params)
    : nl_(nl), params_(std::move(params)) {}

Stage1Result TimberWolfMC::run_stage1(Placement& placement) {
  if (params_.stage1_workers > 0) {
    ParallelStage1Placer stage1(nl_, parallel_stage1_params(),
                                derive_seed(params_.seed, "stage1"));
    return stage1.run(placement);
  }
  Stage1Placer stage1(nl_, params_.stage1,
                      derive_seed(params_.seed, "stage1"));
  return stage1.run(placement);
}

ParallelStage1Params TimberWolfMC::parallel_stage1_params() const {
  ParallelStage1Params pp;
  pp.base = params_.stage1;
  pp.num_workers = std::max(1, params_.stage1_workers);
  pp.batch_slots = params_.stage1_batch_slots;
  return pp;
}

FlowResult TimberWolfMC::run(Placement& placement) {
  return run_impl(placement, nullptr);
}

FlowResult TimberWolfMC::resume(Placement& placement,
                                const recover::FlowCheckpoint& checkpoint) {
  const std::uint64_t want = recover::netlist_digest(nl_);
  if (checkpoint.digest != want)
    throw recover::CheckpointError(
        recover::CheckpointErrc::kNetlistMismatch,
        "checkpoint digest " + std::to_string(checkpoint.digest) +
            " != netlist digest " + std::to_string(want));
  if (checkpoint.master_seed != params_.seed)
    throw recover::CheckpointError(
        recover::CheckpointErrc::kSeedMismatch,
        "checkpoint seed " + std::to_string(checkpoint.master_seed) +
            " != flow seed " + std::to_string(params_.seed));
  recover::apply_placement(placement, checkpoint.placement);
  return run_impl(placement, &checkpoint);
}

FlowResult TimberWolfMC::run_impl(Placement& placement,
                                  const recover::FlowCheckpoint* checkpoint) {
  FlowResult r;
  const bool resumed = checkpoint != nullptr;

  std::optional<recover::FileCheckpointSink> sink;
  std::uint64_t digest = 0;
  if (!params_.recover.checkpoint_dir.empty()) {
    sink.emplace(params_.recover.checkpoint_dir,
                 params_.recover.checkpoint_keep,
                 params_.recover.checkpoint_quota_bytes,
                 params_.recover.disk_faults);
    digest = recover::netlist_digest(nl_);
  }

  // Checkpoint preemption: park the run at the boundary whose checkpoint
  // was just durably saved — the resume replays from exactly here, so
  // nothing is lost and the preempted-then-resumed run stays
  // byte-identical to an uninterrupted one. Only meaningful with a sink:
  // a run that takes no checkpoints has nowhere to park and ignores the
  // flag.
  const auto preempt_point = [this](const char* where) {
    // Cancellation wins over preemption: a cancelled run must wind down
    // to a result now, not park for later.
    if (params_.recover.budget != nullptr &&
        params_.recover.budget->preempt_requested() &&
        !params_.recover.budget->cancelled())
      throw recover::Preempted(where);
  };

  // --- stage 1 ---------------------------------------------------------------
  const bool skip_stage1 =
      resumed && checkpoint->phase == recover::FlowPhase::kStage2;
  if (skip_stage1) {
    // The checkpoint postdates stage 1; its outputs ride in the checkpoint.
    r.stage1 = checkpoint->s1_done;
    r.stage1_teil = checkpoint->stage1_teil;
    r.stage1_chip_area = checkpoint->stage1_chip_area;
  } else {
    // Engine selection: a fresh run honors stage1_workers; a resume honors
    // the checkpoint's phase tag — the engine that was annealing must
    // finish the trajectory, whatever the current params say (the worker
    // count itself is free: the parallel result is worker-count
    // invariant).
    const bool parallel =
        resumed ? checkpoint->phase == recover::FlowPhase::kParallelStage1
                : params_.stage1_workers > 0;
    const recover::FlowPhase phase = parallel
                                         ? recover::FlowPhase::kParallelStage1
                                         : recover::FlowPhase::kStage1;
    // Identical driver for either engine (same hooks / run / resume /
    // estimator surface); only the checkpoint phase tag differs.
    const auto drive = [&](auto& stage1) {
      Stage1Hooks hooks;
      hooks.budget = params_.recover.budget;
      hooks.faults = params_.recover.faults;
      hooks.checkpoint_every = params_.recover.checkpoint_every;
      if (sink || params_.recover.on_progress) {
        hooks.on_checkpoint = [&, phase](const Stage1Cursor& cur) {
          if (sink) {
            recover::FlowCheckpoint fc;
            fc.master_seed = params_.seed;
            fc.digest = digest;
            fc.phase = phase;
            fc.s1 = cur;
            fc.placement = recover::pack_placement(placement);
            sink->save(fc);
            preempt_point("stage1 step boundary");
          }
          if (params_.recover.on_progress) {
            FlowProgress pg;
            pg.phase = phase;
            pg.step = cur.next_step;
            pg.pass = 0;
            pg.t = cur.t;
            if (!cur.partial.trace.empty())
              pg.cost = cur.partial.trace.back().avg_cost;
            params_.recover.on_progress(pg);
          }
        };
      }
      stage1.set_hooks(std::move(hooks));
      r.stage1 = resumed ? stage1.resume(placement, checkpoint->s1)
                         : stage1.run(placement);
      r.stage1_teil = r.stage1.final_teil;
      r.stage1_chip_area = stage1_area(placement, nl_, stage1.estimator());
    };
    if (parallel) {
      ParallelStage1Placer stage1(nl_, parallel_stage1_params(),
                                  derive_seed(params_.seed, "stage1"));
      drive(stage1);
    } else {
      Stage1Placer stage1(nl_, params_.stage1,
                          derive_seed(params_.seed, "stage1"));
      drive(stage1);
    }
    log_info("stage1 done: teil=", r.stage1_teil,
             " area=", r.stage1_chip_area,
             " overlap=", r.stage1.residual_overlap);

    if (r.stage1.outcome != recover::RunOutcome::kCompleted) {
      // Budget expired or cancelled mid-stage-1: hand back the quenched
      // best-feasible placement without starting stage 2.
      r.final_teil = placement.teil();
      r.final_chip_bbox = chip_bbox(placement);
      r.final_chip_area = r.final_chip_bbox.area();
      r.outcome = r.stage1.outcome;
      return r;
    }
  }

  // --- stage 2 ---------------------------------------------------------------
  Stage2Refiner stage2(nl_, params_.stage2,
                       derive_seed(params_.seed, "stage2"));
  Stage2Hooks hooks;
  hooks.budget = params_.recover.budget;
  hooks.faults = params_.recover.faults;
  hooks.checkpoint_every = params_.recover.checkpoint_every;
  if (sink || params_.recover.on_progress) {
    hooks.on_checkpoint = [&](const Stage2Cursor& cur) {
      if (sink) {
        recover::FlowCheckpoint fc;
        fc.master_seed = params_.seed;
        fc.digest = digest;
        fc.phase = recover::FlowPhase::kStage2;
        fc.s1_done = r.stage1;
        fc.stage1_teil = r.stage1_teil;
        fc.stage1_chip_area = r.stage1_chip_area;
        fc.s2 = cur;
        fc.placement = recover::pack_placement(placement);
        sink->save(fc);
        preempt_point("stage2 step boundary");
      }
      if (params_.recover.on_progress) {
        FlowProgress pg;
        pg.phase = recover::FlowPhase::kStage2;
        pg.step = cur.anneal.steps;
        pg.pass = cur.pass;
        pg.t = cur.anneal.t;
        pg.cost = cur.rp.teil;
        params_.recover.on_progress(pg);
      }
    };
  }
  stage2.set_hooks(std::move(hooks));
  r.stage2 = skip_stage1
                 ? stage2.resume(placement, r.stage1.core,
                                 r.stage1.t_infinity,
                                 r.stage1.temperature_scale, checkpoint->s2)
                 : stage2.run(placement, r.stage1.core, r.stage1.t_infinity,
                              r.stage1.temperature_scale);
  r.final_teil = r.stage2.final_teil;
  r.final_chip_area = r.stage2.final_chip_area;
  r.final_chip_bbox = chip_bbox(placement);

  if (r.stage2.outcome != recover::RunOutcome::kCompleted)
    r.outcome = r.stage2.outcome;  // budget outcomes win over kResumed
  else
    r.outcome = resumed ? recover::RunOutcome::kResumed
                        : recover::RunOutcome::kCompleted;
  return r;
}

}  // namespace tw
