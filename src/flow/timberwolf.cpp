#include "flow/timberwolf.hpp"

#include "util/log.hpp"

namespace tw {
namespace {

/// Chip bbox area of the bare placed cells (no expansions): the common
/// measure applied to both stages and to the baseline placers.
Rect chip_bbox(const Placement& placement) {
  Rect bb;
  bool first = true;
  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    for (const Rect& t : placement.absolute_tiles(c)) {
      bb = first ? t : bb.bounding_union(t);
      first = false;
    }
  }
  return bb;
}

}  // namespace

TimberWolfMC::TimberWolfMC(const Netlist& nl, FlowParams params)
    : nl_(nl), params_(params) {}

Stage1Result TimberWolfMC::run_stage1(Placement& placement) {
  Stage1Placer stage1(nl_, params_.stage1,
                      derive_seed(params_.seed, "stage1"));
  return stage1.run(placement);
}

FlowResult TimberWolfMC::run(Placement& placement) {
  FlowResult r;

  Stage1Placer stage1(nl_, params_.stage1,
                      derive_seed(params_.seed, "stage1"));
  r.stage1 = stage1.run(placement);
  r.stage1_teil = r.stage1.final_teil;

  // Stage-1 chip area: the cells plus the space the estimator reserved.
  {
    OverlapEngine ov(placement, stage1.estimator());
    Rect bb;
    bool first = true;
    const auto n = static_cast<CellId>(nl_.num_cells());
    for (CellId c = 0; c < n; ++c)
      for (const Rect& t : ov.expanded_tiles(c)) {
        bb = first ? t : bb.bounding_union(t);
        first = false;
      }
    r.stage1_chip_area = bb.area();
  }
  log_info("stage1 done: teil=", r.stage1_teil,
           " area=", r.stage1_chip_area,
           " overlap=", r.stage1.residual_overlap);

  Stage2Refiner stage2(nl_, params_.stage2,
                       derive_seed(params_.seed, "stage2"));
  r.stage2 = stage2.run(placement, r.stage1.core, r.stage1.t_infinity,
                        r.stage1.temperature_scale);
  r.final_teil = r.stage2.final_teil;
  r.final_chip_area = r.stage2.final_chip_area;
  r.final_chip_bbox = chip_bbox(placement);
  return r;
}

}  // namespace tw
