// Human-readable run reports: a structured text summary of a FlowResult
// (per-stage metrics, cooling profile, refinement passes, final layout
// statistics) suitable for logs or regression archiving.
#pragma once

#include <string>

#include "flow/timberwolf.hpp"

namespace tw {

/// Summary statistics of a finished placement.
struct PlacementSummary {
  double teil = 0.0;
  double teic = 0.0;
  Coord chip_area = 0;
  Rect chip_bbox;
  Coord cell_area = 0;
  double utilization = 0.0;  ///< cell area / chip bbox area
  Coord bare_overlap = 0;
  int overloaded_sites = 0;
  std::size_t cells = 0;
  std::size_t nets = 0;
  std::size_t pins = 0;
};

PlacementSummary summarize_placement(const Placement& placement);

/// Multi-section text report of a full flow run.
std::string flow_report(const Netlist& nl, const Placement& placement,
                        const FlowResult& result);

}  // namespace tw
