#include "flow/report.hpp"

#include <algorithm>
#include <sstream>

#include "place/legalize.hpp"
#include "util/tableio.hpp"

namespace tw {

PlacementSummary summarize_placement(const Placement& placement) {
  const Netlist& nl = placement.netlist();
  PlacementSummary s;
  s.teil = placement.teil();
  s.teic = placement.teic();

  Rect bb;
  bool first = true;
  Coord cell_area = 0;
  for (const auto& cell : nl.cells()) {
    for (const Rect& t : placement.absolute_tiles(cell.id)) {
      bb = first ? t : bb.bounding_union(t);
      first = false;
      cell_area += t.area();
    }
  }
  s.chip_bbox = bb;
  s.chip_area = bb.area();
  s.cell_area = cell_area;
  s.utilization = s.chip_area > 0 ? static_cast<double>(cell_area) /
                                        static_cast<double>(s.chip_area)
                                  : 0.0;
  s.bare_overlap = bare_overlap(placement);
  s.overloaded_sites = placement.overloaded_sites();
  s.cells = nl.num_cells();
  s.nets = nl.num_nets();
  s.pins = nl.num_pins();
  return s;
}

std::string flow_report(const Netlist& nl, const Placement& placement,
                        const FlowResult& result) {
  std::ostringstream os;
  const PlacementSummary s = summarize_placement(placement);

  os << "TimberWolfMC run report\n";
  os << "=======================\n\n";
  os << "circuit: " << s.cells << " cells, " << s.nets << " nets, " << s.pins
     << " pins (total cell area " << s.cell_area << ")\n\n";

  os << "stage 1 (annealing placement)\n";
  os << "  T_infinity " << result.stage1.t_infinity << "  (S_T "
     << result.stage1.temperature_scale << ",  p2 " << result.stage1.p2
     << ")\n";
  os << "  temperature steps " << result.stage1.temperature_steps
     << ", attempts " << result.stage1.attempts << ", accepted "
     << result.stage1.accepts << "\n";
  os << "  core " << result.stage1.core.str() << "\n";
  os << "  TEIL " << result.stage1_teil << ", chip area "
     << result.stage1_chip_area << ", residual overlap "
     << result.stage1.residual_overlap << "\n\n";

  os << "stage 2 (channel definition / global routing / refinement)\n";
  Table passes({"pass", "TEIL", "chip area", "route len", "overflow",
                "regions", "T steps"});
  for (std::size_t i = 0; i < result.stage2.passes.size(); ++i) {
    const RefinementPass& p = result.stage2.passes[i];
    passes.add_row({Table::integer(static_cast<long long>(i) + 1),
                    Table::num(p.teil, 0),
                    Table::integer(p.chip_area),
                    Table::num(p.route_length, 0),
                    Table::integer(p.route_overflow),
                    Table::integer(static_cast<long long>(p.regions)),
                    Table::integer(p.temperature_steps)});
  }
  os << passes.str() << "\n";

  // Router work per pass (workspace counter deltas; see
  // route/search_workspace.hpp).
  Table router({"pass", "searches", "popped", "pushed", "interchanges"});
  for (std::size_t i = 0; i < result.stage2.passes.size(); ++i) {
    const RouteCounters& c = result.stage2.passes[i].router_counters;
    router.add_row({Table::integer(static_cast<long long>(i) + 1),
                    Table::integer(c.dijkstra_runs),
                    Table::integer(c.nodes_popped),
                    Table::integer(c.heap_pushes),
                    Table::integer(c.interchange_trials)});
  }
  os << "router work\n" << router.str() << "\n";

  os << "final\n";
  os << "  TEIL " << s.teil << " (TEIC " << s.teic << ")\n";
  os << "  chip " << s.chip_bbox.width() << " x " << s.chip_bbox.height()
     << " = " << s.chip_area << " (utilization "
     << Table::percent(100.0 * s.utilization, 1) << ")\n";
  os << "  stage1 -> stage2 change: TEIL "
     << Table::num(result.teil_change_pct(), 1) << "%, area "
     << Table::num(result.area_change_pct(), 1) << "%\n";
  os << "  bare overlap " << s.bare_overlap << ", overloaded pin sites "
     << s.overloaded_sites << "\n";

  // Largest nets for quick inspection.
  std::vector<NetId> by_span;
  for (const auto& n : nl.nets()) by_span.push_back(n.id);
  std::sort(by_span.begin(), by_span.end(), [&](NetId a, NetId b) {
    return placement.net_cost(a) > placement.net_cost(b);
  });
  os << "\nlongest nets:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, by_span.size()); ++i) {
    const Net& n = nl.net(by_span[i]);
    const Rect bb = placement.net_bbox(n.id);
    os << "  " << n.name << " (" << n.degree() << " pins): span "
       << bb.width() << " x " << bb.height() << "\n";
  }
  return os.str();
}

}  // namespace tw
