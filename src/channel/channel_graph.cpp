#include "channel/channel_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tw {

std::vector<Rect> free_space_slabs(const Placement& placement,
                                   const Rect& core) {
  // Gather every tile clipped to the core.
  std::vector<Rect> tiles;
  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  for (CellId c = 0; c < n; ++c)
    for (const Rect& t : placement.absolute_tiles(c)) {
      const Rect clipped = t.intersect(core);
      if (clipped.valid() && clipped.area() > 0) tiles.push_back(clipped);
    }

  // Strip boundaries: every distinct tile y plus the core bounds.
  std::vector<Coord> ys{core.ylo, core.yhi};
  for (const Rect& t : tiles) {
    ys.push_back(t.ylo);
    ys.push_back(t.yhi);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<Rect> slabs;
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const Coord ylo = ys[s];
    const Coord yhi = ys[s + 1];
    if (yhi <= ylo) continue;
    // Occupied x-intervals in this strip.
    std::vector<Span> occupied;
    for (const Rect& t : tiles)
      if (t.ylo <= ylo && t.yhi >= yhi) occupied.push_back(t.xspan());
    for (const Span& f : subtract_spans(core.xspan(), occupied))
      slabs.push_back({f.lo, ylo, f.hi, yhi});
  }

  // Merge vertically stackable slabs with identical x-range.
  std::sort(slabs.begin(), slabs.end(), [](const Rect& a, const Rect& b) {
    if (a.xlo != b.xlo) return a.xlo < b.xlo;
    if (a.xhi != b.xhi) return a.xhi < b.xhi;
    return a.ylo < b.ylo;
  });
  std::vector<Rect> merged;
  for (const Rect& r : slabs) {
    if (!merged.empty() && merged.back().xlo == r.xlo &&
        merged.back().xhi == r.xhi && merged.back().yhi == r.ylo) {
      merged.back().yhi = r.yhi;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

ChannelGraph build_channel_graph(const Placement& placement, const Rect& core) {
  ChannelGraph cg;
  cg.edges = collect_edges(placement, core);
  cg.regions = find_critical_regions(cg.edges);
  cg.slabs = free_space_slabs(placement, core);

  const Netlist& nl = placement.netlist();
  const Coord ts = std::max<Coord>(1, nl.tech().track_separation);

  // Slab nodes.
  cg.slab_node.resize(cg.slabs.size());
  for (std::size_t s = 0; s < cg.slabs.size(); ++s)
    cg.slab_node[s] = cg.graph.add_node(cg.slabs[s].center());

  // Slab adjacency: shared boundary of positive length. After the strip
  // decomposition slabs in the same strip never touch, so contact is
  // horizontal (stacked strips) except across merged slabs, where vertical
  // side contact is possible too; handle both.
  for (std::size_t a = 0; a < cg.slabs.size(); ++a) {
    for (std::size_t b = a + 1; b < cg.slabs.size(); ++b) {
      const Rect& ra = cg.slabs[a];
      const Rect& rb = cg.slabs[b];
      Coord contact = 0;
      if (ra.yhi == rb.ylo || rb.yhi == ra.ylo)
        contact = std::max(contact, ra.xspan().overlap(rb.xspan()));
      if (ra.xhi == rb.xlo || rb.xhi == ra.xlo)
        contact = std::max(contact, ra.yspan().overlap(rb.yspan()));
      if (contact <= 0) continue;
      const double len =
          static_cast<double>(manhattan(ra.center(), rb.center()));
      const int cap = static_cast<int>(contact / ts);
      cg.graph.add_edge(cg.slab_node[a], cg.slab_node[b], len, cap);
      cg.edge_slabs.push_back({static_cast<std::int32_t>(a),
                               static_cast<std::int32_t>(b)});
    }
  }

  // Pin projection: each pin becomes a node attached to the nearest slab
  // (pins sit on a cell edge, whose outside borders a slab).
  cg.pin_node.assign(nl.num_pins(), kInvalidNode);
  cg.pin_slab.assign(nl.num_pins(), -1);
  for (const auto& pin : nl.pins()) {
    const Point pos = placement.pin_position(pin.id);
    std::int32_t best = -1;
    Coord best_dist = std::numeric_limits<Coord>::max();
    for (std::size_t s = 0; s < cg.slabs.size(); ++s) {
      const Rect& r = cg.slabs[s];
      const Coord dx = std::max<Coord>({r.xlo - pos.x, pos.x - r.xhi, 0});
      const Coord dy = std::max<Coord>({r.ylo - pos.y, pos.y - r.yhi, 0});
      const Coord d = dx + dy;
      if (d < best_dist) {
        best_dist = d;
        best = static_cast<std::int32_t>(s);
      }
    }
    if (best < 0) continue;  // no free space at all
    const Rect& r = cg.slabs[static_cast<std::size_t>(best)];
    const Point proj{std::clamp(pos.x, r.xlo, r.xhi),
                     std::clamp(pos.y, r.ylo, r.yhi)};
    const NodeId pn = cg.graph.add_node(proj);
    const double stub_len = static_cast<double>(manhattan(proj, r.center()));
    const int cap =
        std::max(1, static_cast<int>(std::min(r.width(), r.height()) / ts));
    cg.graph.add_edge(pn, cg.slab_node[static_cast<std::size_t>(best)],
                      stub_len, cap);
    cg.edge_slabs.push_back({best, best});
    cg.pin_node[static_cast<std::size_t>(pin.id)] = pn;
    cg.pin_slab[static_cast<std::size_t>(pin.id)] = best;
  }

  return cg;
}

std::vector<NetTargets> build_net_targets(const Netlist& nl,
                                          const ChannelGraph& cg) {
  std::vector<NetTargets> out(nl.num_nets());
  for (const auto& net : nl.nets()) {
    NetTargets& t = out[static_cast<std::size_t>(net.id)];
    // Group this net's pins by equivalence class; class 0 pins stand alone.
    std::vector<std::pair<std::int32_t, NodeId>> classed;
    for (PinId pid : net.pins) {
      const NodeId node = cg.pin_node[static_cast<std::size_t>(pid)];
      if (node == kInvalidNode) continue;
      const std::int32_t cls = nl.pin(pid).equiv_class;
      if (cls == 0) {
        t.pins.push_back({node});
      } else {
        classed.push_back({cls, node});
      }
    }
    std::sort(classed.begin(), classed.end());
    for (std::size_t i = 0; i < classed.size();) {
      std::vector<NodeId> alts;
      const std::int32_t cls = classed[i].first;
      while (i < classed.size() && classed[i].first == cls)
        alts.push_back(classed[i++].second);
      t.pins.push_back(std::move(alts));
    }
  }
  return out;
}

std::vector<int> region_densities(
    const ChannelGraph& cg,
    const std::vector<std::vector<EdgeId>>& net_route_edges) {
  // A net contributes one track to a channel when its route *crosses* the
  // channel, i.e. when it passes from one slab to an adjacent one through a
  // boundary point inside the region. Counting every region a route merely
  // touches would overstate the density several-fold (routes sweep through
  // large slabs) and balloon the derived channel widths.
  //
  // Precompute, per slab-adjacency graph edge, the crossing point (the
  // midpoint of the shared boundary segment) and the regions containing it.
  std::vector<std::vector<std::int32_t>> edge_regions(cg.edge_slabs.size());
  for (std::size_t e = 0; e < cg.edge_slabs.size(); ++e) {
    const auto& [sa, sb] = cg.edge_slabs[e];
    if (sa < 0 || sa == sb) continue;  // pin stub: no crossing
    const Rect& ra = cg.slabs[static_cast<std::size_t>(sa)];
    const Rect& rb = cg.slabs[static_cast<std::size_t>(sb)];
    // Shared boundary segment between the two slab rectangles.
    Point crossing;
    if (ra.yhi == rb.ylo || rb.yhi == ra.ylo) {
      const Span ov = ra.xspan().intersect(rb.xspan());
      crossing = {(ov.lo + ov.hi) / 2, ra.yhi == rb.ylo ? ra.yhi : rb.yhi};
    } else {
      const Span ov = ra.yspan().intersect(rb.yspan());
      crossing = {ra.xhi == rb.xlo ? ra.xhi : rb.xhi, (ov.lo + ov.hi) / 2};
    }
    for (std::size_t r = 0; r < cg.regions.size(); ++r)
      if (cg.regions[r].rect.contains(crossing))
        edge_regions[e].push_back(static_cast<std::int32_t>(r));
  }

  std::vector<int> density(cg.regions.size(), 0);
  std::vector<int> last_net(cg.regions.size(), -1);
  for (std::size_t n = 0; n < net_route_edges.size(); ++n) {
    for (EdgeId e : net_route_edges[n]) {
      for (std::int32_t r : edge_regions[static_cast<std::size_t>(e)]) {
        if (last_net[static_cast<std::size_t>(r)] == static_cast<int>(n))
          continue;  // count each net once per region
        last_net[static_cast<std::size_t>(r)] = static_cast<int>(n);
        ++density[static_cast<std::size_t>(r)];
      }
    }
  }
  return density;
}

}  // namespace tw
