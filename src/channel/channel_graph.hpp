// Channel graph construction (Section 4.1, Figures 8-9).
//
// Two cooperating decompositions of the empty space are built:
//
//  * The *critical regions* — every empty rectangle bounded by exactly two
//    facing cell (or core) edges, plus crossing junctions. These carry the
//    paper's channel semantics: a single density parameter per channel and
//    the Eqn 22 width rule used by the placement-refinement step.
//
//  * The *free-space slabs* — a horizontal-strip decomposition of
//    (core minus cells) into non-overlapping rectangles. The slabs tile
//    the free space exactly, so their adjacency graph is connected
//    wherever the free space is connected; this is the graph the global
//    router runs on. Slab-to-slab edges carry a capacity equal to the
//    contact length over the track separation (the number of wires that
//    can cross between the two slabs); narrow channels therefore
//    constrain routes exactly where the critical regions say they should.
//
// Every pin is projected onto its cell edge into the adjacent slab and
// becomes its own graph node. Routed slab usage is mapped back onto the
// critical regions to obtain per-channel densities.
#pragma once

#include "channel/critical_region.hpp"
#include "route/graph.hpp"
#include "route/steiner.hpp"

namespace tw {

struct ChannelGraph {
  RoutingGraph graph;
  std::vector<PlacedEdge> edges;         ///< placed-edge universe
  std::vector<CriticalRegion> regions;   ///< channels (for refinement)
  std::vector<Rect> slabs;               ///< free-space decomposition

  /// slab index -> graph node (slabs are added to the graph first, so
  /// slab_node[i] == i; kept explicit for clarity).
  std::vector<NodeId> slab_node;
  std::vector<NodeId> pin_node;          ///< PinId -> node (kInvalidNode if unplaced)
  std::vector<std::int32_t> pin_slab;    ///< PinId -> slab index (-1 if none)

  /// Graph-edge -> the two slab indices it joins (pin stubs map both
  /// entries to the pin's slab).
  std::vector<std::pair<std::int32_t, std::int32_t>> edge_slabs;
};

/// Decomposes core minus the placed cells into non-overlapping rectangles
/// (horizontal strips, vertically merged). Cells are clipped to the core.
std::vector<Rect> free_space_slabs(const Placement& placement,
                                   const Rect& core);

/// Builds the channel graph for the current placement. The placement
/// should be overlap-free (see legalize_spread); overlapping cells shrink
/// the free space and may strand pins.
ChannelGraph build_channel_graph(const Placement& placement, const Rect& core);

/// Net targets for the global router, one NetTargets per net in id order:
/// pins sharing an electrical-equivalence class collapse into one logical
/// pin with several alternative nodes. Pins the channel graph could not
/// place (kInvalidNode) are dropped from their logical pin.
std::vector<NetTargets> build_net_targets(const Netlist& nl,
                                          const ChannelGraph& cg);

/// Per-region routed density: the number of distinct nets whose selected
/// route passes through slabs overlapping each critical region (input to
/// Eqn 22).
std::vector<int> region_densities(
    const ChannelGraph& cg,
    const std::vector<std::vector<EdgeId>>& net_route_edges);

}  // namespace tw
