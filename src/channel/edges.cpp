#include "channel/edges.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tw {

std::vector<PlacedEdge> collect_edges(const Placement& placement,
                                      const Rect& core) {
  std::vector<PlacedEdge> out;
  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  for (CellId c = 0; c < n; ++c) {
    for (const auto& e : exposed_edges(placement.absolute_tiles(c)))
      out.push_back({c, e});
  }
  // Core boundary: the solid lies *outside* the core, so the outward
  // normals of these edges point into the core.
  out.push_back({kInvalidCell, {Side::kRight, core.xlo, core.yspan()}});
  out.push_back({kInvalidCell, {Side::kLeft, core.xhi, core.yspan()}});
  out.push_back({kInvalidCell, {Side::kTop, core.ylo, core.xspan()}});
  out.push_back({kInvalidCell, {Side::kBottom, core.yhi, core.xspan()}});
  return out;
}

std::vector<std::size_t> map_pins_to_edges(
    const Placement& placement, const std::vector<PlacedEdge>& edges) {
  const Netlist& nl = placement.netlist();
  std::vector<std::size_t> out(nl.num_pins(),
                               std::numeric_limits<std::size_t>::max());

  for (const auto& pin : nl.pins()) {
    const Point pos = placement.pin_position(pin.id);
    // Find the owning cell's edge nearest to the pin position (distance to
    // the edge line, measured at the clamped span position).
    Coord best = std::numeric_limits<Coord>::max();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].cell != pin.cell) continue;
      const BoundaryEdge& be = edges[e].edge;
      Coord d;
      if (is_vertical(be.side)) {
        const Coord along = std::clamp(pos.y, be.span.lo, be.span.hi);
        d = std::abs(pos.x - be.pos) + std::abs(pos.y - along);
      } else {
        const Coord along = std::clamp(pos.x, be.span.lo, be.span.hi);
        d = std::abs(pos.y - be.pos) + std::abs(pos.x - along);
      }
      if (d < best) {
        best = d;
        out[static_cast<std::size_t>(pin.id)] = e;
      }
    }
  }
  return out;
}

}  // namespace tw
