// Critical regions (Section 4.1).
//
// Traditional channel generators produce channels bounded by many cell
// edges (Figure 7), which makes local congestion impossible to summarize
// with a single density parameter. TimberWolfMC instead defines a channel
// — a *critical region* — between every pair of facing parallel cell edges
// (belonging to different cells, or a cell and the core boundary) such that
//   (1) the spans of the two edges overlap, bounding a rectangular empty
//       region whose extent is the common span, and
//   (2) no other cell edge intersects that region.
// Every critical region therefore has exactly two bounding edges, so its
// expected width after routing is the single parameter w = (d + 2) * t_s
// (Eqn 22) and the spacing requirement between the two edges is immediate.
//
// Unlike Chen's bottlenecks, *overlapping* critical regions (one from a
// vertical edge pair and one from a horizontal pair) are all kept.
#pragma once

#include "channel/edges.hpp"

namespace tw {

inline constexpr std::size_t kNoEdge = static_cast<std::size_t>(-1);

struct CriticalRegion {
  Rect rect;           ///< the empty rectangular region
  std::size_t edge_a;  ///< index into the PlacedEdge list (lower coordinate);
                       ///< kNoEdge for junction regions
  std::size_t edge_b;  ///< index of the facing edge (higher coordinate)
  bool vertical;       ///< true when bounded by vertical edges (left/right)

  /// True for a channel-crossing (junction) region: the empty rectangle
  /// where a vertical and a horizontal channel meet. Junctions have no
  /// bounding cell edges of their own; they exist so the channel graph is
  /// connected across crossings.
  bool is_junction() const { return edge_a == kNoEdge; }

  /// Separation between the two bounding edges — the channel's thickness,
  /// i.e. its capacity dimension. For junctions: the smaller rect side.
  Coord thickness() const {
    if (is_junction()) return std::min(rect.width(), rect.height());
    return vertical ? rect.width() : rect.height();
  }

  /// Common span of the two edges — the channel length.
  Coord length() const { return vertical ? rect.height() : rect.width(); }

  Point center() const { return rect.center(); }
};

/// Finds all critical regions among `edges` (as produced by collect_edges),
/// then adds junction regions so that every channel crossing is covered.
/// O(E^2 * E) worst case, fine for the cell counts of macro layouts.
std::vector<CriticalRegion> find_critical_regions(
    const std::vector<PlacedEdge>& edges);

}  // namespace tw
