#include "channel/critical_region.hpp"

namespace tw {
namespace {

/// True when segment-shaped edge `e` intersects the open interior of `r`.
bool edge_cuts_interior(const BoundaryEdge& e, const Rect& r) {
  if (is_vertical(e.side)) {
    if (e.pos <= r.xlo || e.pos >= r.xhi) return false;
    return e.span.overlap(r.yspan()) > 0;
  }
  if (e.pos <= r.ylo || e.pos >= r.yhi) return false;
  return e.span.overlap(r.xspan()) > 0;
}

}  // namespace

std::vector<CriticalRegion> find_critical_regions(
    const std::vector<PlacedEdge>& edges) {
  std::vector<CriticalRegion> regions;

  for (std::size_t a = 0; a < edges.size(); ++a) {
    for (std::size_t b = 0; b < edges.size(); ++b) {
      if (a == b) continue;
      const PlacedEdge& ea = edges[a];
      const PlacedEdge& eb = edges[b];
      // Different owners (two core edges never bound a channel together —
      // that degenerate case only arises for an empty core).
      if (ea.cell == eb.cell) continue;
      if (ea.is_core() && eb.is_core()) continue;

      Rect r;
      bool vertical;
      if (ea.edge.side == Side::kRight && eb.edge.side == Side::kLeft) {
        // `a` faces right, `b` faces left, `a` strictly to the left of `b`.
        if (ea.edge.pos > eb.edge.pos) continue;  // touching edges form a zero-thickness region
        const Span common = ea.edge.span.intersect(eb.edge.span);
        if (!common.valid() || common.length() <= 0) continue;
        r = {ea.edge.pos, common.lo, eb.edge.pos, common.hi};
        vertical = true;
      } else if (ea.edge.side == Side::kTop && eb.edge.side == Side::kBottom) {
        if (ea.edge.pos > eb.edge.pos) continue;  // touching edges form a zero-thickness region
        const Span common = ea.edge.span.intersect(eb.edge.span);
        if (!common.valid() || common.length() <= 0) continue;
        r = {common.lo, ea.edge.pos, common.hi, eb.edge.pos};
        vertical = false;
      } else {
        continue;  // only facing pairs, generated once per pair
      }

      bool clean = true;
      for (std::size_t o = 0; o < edges.size() && clean; ++o) {
        if (o == a || o == b) continue;
        if (edge_cuts_interior(edges[o].edge, r)) clean = false;
      }
      if (clean) regions.push_back({r, a, b, vertical});
    }
  }

  // Junction regions: where a vertical and a horizontal channel meet at a
  // crossing, the empty square between them (V.xspan x H.yspan) may belong
  // to no edge-bounded region (e.g. four cells in a symmetric cross). Add
  // it so routes can turn the corner. Only crossings adjacent to both
  // parent channels with positive contact are kept.
  const std::size_t base = regions.size();
  for (std::size_t v = 0; v < base; ++v) {
    if (!regions[v].vertical) continue;
    for (std::size_t h = 0; h < base; ++h) {
      if (regions[h].vertical) continue;
      const Rect& rv = regions[v].rect;
      const Rect& rh = regions[h].rect;
      const Rect cand{rv.xlo, rh.ylo, rv.xhi, rh.yhi};
      if (!cand.valid() || cand.area() == 0) continue;
      // Skip when the candidate is already covered by a parent region.
      if (rv.contains(cand) || rh.contains(cand)) continue;
      // Must touch both parents with positive-length contact.
      const Rect iv = cand.intersect(rv);
      const Rect ih = cand.intersect(rh);
      if (!iv.valid() || (iv.width() <= 0 && iv.height() <= 0)) continue;
      if (!ih.valid() || (ih.width() <= 0 && ih.height() <= 0)) continue;
      // Must be empty.
      bool clean = true;
      for (std::size_t o = 0; o < edges.size() && clean; ++o)
        if (edge_cuts_interior(edges[o].edge, cand)) clean = false;
      if (!clean) continue;
      // Deduplicate against existing regions (including prior junctions).
      bool dup = false;
      for (const auto& r : regions)
        if (r.rect == cand) {
          dup = true;
          break;
        }
      if (!dup) regions.push_back({cand, kNoEdge, kNoEdge, true});
    }
  }
  return regions;
}

}  // namespace tw
