// Placed-edge extraction: the channel-definition algorithm (Section 4.1)
// operates on the exposed boundary edges of every placed cell, in chip
// coordinates, plus the four core-boundary edges (the core border also
// bounds channels).
#pragma once

#include "geom/polygon.hpp"
#include "place/placement.hpp"

namespace tw {

struct PlacedEdge {
  /// Owning cell, or kInvalidCell for a core-boundary edge.
  CellId cell = kInvalidCell;
  /// Edge in chip coordinates; `side` is the direction of the outward
  /// normal (pointing away from the solid, i.e. into the empty space).
  BoundaryEdge edge;

  bool is_core() const { return cell == kInvalidCell; }
};

/// Collects the exposed edges of all placed cells and the four inward-facing
/// core-boundary edges.
std::vector<PlacedEdge> collect_edges(const Placement& placement,
                                      const Rect& core);

/// Pins of the placement mapped to the placed edge they sit on: for each
/// pin, the index into `edges` of the owning cell's edge whose line contains
/// (or is nearest to) the pin position. Used to project pins into channels.
std::vector<std::size_t> map_pins_to_edges(const Placement& placement,
                                           const std::vector<PlacedEdge>& edges);

}  // namespace tw
