// Constructed placement instances with a known optimal wirelength, in the
// spirit of the PEKO benchmarks (Cong et al., "Optimality and Scalability
// Study of Existing Placement Algorithms"): the suboptimality of a placer
// is measurable exactly, not just relative to another heuristic.
//
// Construction: a k x k grid of identical s x s square macros, with one
// 2-pin net (center-to-center) between every pair of grid neighbors. Any
// placement of two non-overlapping s x s squares has center distance
// |dx| + |dy| >= s, so every net costs at least s and
//
//   TEIL >= num_nets * s = 2 k (k-1) s,
//
// with equality exactly when the macros tile a k x k grid — the
// construction's own layout, so the bound is achieved and tight. The chip
// bbox area is likewise bounded below by the total cell area (k s)^2,
// achieved by the same tiling. EXPERIMENTS.md reports placer results as
// ratios to these optima.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace tw {

struct KnownOptimumSpec {
  int grid = 8;            ///< k: grid side, k*k macros
  Coord cell_size = 40;    ///< s: macro side length
  /// Permutes the creation order of cells and nets, so cell ids carry no
  /// information about the optimal layout (a placer cannot win by placing
  /// ids in order).
  std::uint64_t seed = 1;
};

struct KnownOptimumCircuit {
  Netlist netlist;
  double optimal_teil = 0.0;  ///< 2 k (k-1) s, achieved by the grid tiling
  Coord optimal_area = 0;     ///< (k s)^2, achieved by the same tiling
  int grid = 0;
  Coord cell_size = 0;
};

/// Builds the instance; the returned netlist passes Netlist::validate().
KnownOptimumCircuit known_optimum_circuit(const KnownOptimumSpec& spec = {});

}  // namespace tw
