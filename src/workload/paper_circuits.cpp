#include "workload/paper_circuits.hpp"

#include <stdexcept>

namespace tw {
namespace {

PaperCircuit make(const char* name, int cells, int nets, int pins,
                  double mean_dim, int trials, double custom_fraction) {
  PaperCircuit pc;
  pc.spec.name = name;
  pc.spec.num_cells = cells;
  pc.spec.num_nets = nets;
  pc.spec.num_pins = pins;
  pc.spec.mean_cell_dim = mean_dim;
  pc.spec.custom_fraction = custom_fraction;
  // Per-circuit deterministic seed derived from the name.
  std::uint64_t h = 1469598103934665603ull;
  for (const char* p = name; *p; ++p) h = (h ^ static_cast<std::uint64_t>(*p)) * 1099511628211ull;
  pc.spec.seed = h;
  pc.trials = trials;
  return pc;
}

}  // namespace

std::vector<PaperCircuit> paper_circuits() {
  // Columns: cells, nets, pins (Tables 3-4); mean cell dim from Table 4's
  // chip dimensions; trials from Table 3. Circuits compared against manual
  // layouts (p1, l1, d1-d3) get a custom-cell fraction to exercise chip
  // planning; the others are pure macro circuits.
  return {
      make("i1", 33, 121, 452, 30, 5, 0.0),
      make("p1", 11, 83, 309, 60, 6, 0.3),
      make("x1", 10, 267, 762, 180, 4, 0.0),
      make("i2", 23, 127, 577, 400, 5, 0.0),
      make("i3", 18, 38, 102, 110, 2, 0.0),
      make("l1", 62, 570, 4309, 90, 4, 0.2),
      make("d2", 20, 656, 1776, 210, 4, 0.2),
      make("d1", 17, 288, 837, 45, 4, 0.2),
      make("d3", 17, 136, 665, 560, 2, 0.2),
  };
}

PaperCircuit paper_circuit(const std::string& name) {
  for (const auto& pc : paper_circuits())
    if (pc.spec.name == name) return pc;
  throw std::invalid_argument("unknown paper circuit: " + name);
}

CircuitSpec tiny_circuit(std::uint64_t seed) {
  CircuitSpec s;
  s.name = "tiny";
  s.num_cells = 12;
  s.num_nets = 30;
  s.num_pins = 96;
  // Cell dimensions in grid units stay realistic (the paper's chips are
  // hundreds to thousands of units across): channel widths are a few t_s,
  // so routing space must be small *relative* to the cells, or area
  // metrics drown in routing overhead. Fine grids cost no extra runtime —
  // the annealing move count is size-independent.
  s.mean_cell_dim = 80;
  s.custom_fraction = 0.25;
  s.seed = seed;
  return s;
}

CircuitSpec medium_circuit(std::uint64_t seed) {
  CircuitSpec s;
  s.name = "medium";
  s.num_cells = 25;
  s.num_nets = 110;
  s.num_pins = 420;
  s.mean_cell_dim = 100;
  s.custom_fraction = 0.2;
  s.seed = seed;
  return s;
}

}  // namespace tw
