#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"

namespace tw {
namespace {

struct CellPlan {
  CellId id = kInvalidCell;
  bool custom = false;
  bool multi_instance = false;  ///< has a transposed second instance
  double cluster_x = 0.0;  ///< latent position driving net locality
  double cluster_y = 0.0;
  std::vector<GroupId> groups;     ///< open pin groups (custom cells)
  int pins_added = 0;
};

Coord draw_dim(Rng& rng, const CircuitSpec& spec) {
  const double mu = std::log(spec.mean_cell_dim);
  const double d = rng.lognormal(mu, spec.dim_sigma);
  return std::max<Coord>(6, static_cast<Coord>(std::llround(d)));
}

/// An L-shaped outline inside a w x h bounding box (a quadrant removed).
std::vector<Point> l_shape(Rng& rng, Coord w, Coord h) {
  const Coord cw = std::max<Coord>(2, w * static_cast<Coord>(rng.uniform_int(30, 60)) / 100);
  const Coord ch = std::max<Coord>(2, h * static_cast<Coord>(rng.uniform_int(30, 60)) / 100);
  // Remove the upper-right quadrant of size cw x ch.
  return {{0, 0}, {w, 0}, {w, h - ch}, {w - cw, h - ch}, {w - cw, h}, {0, h}};
}

/// Random point on a random exposed edge of the tiles, weighted by length.
Point random_boundary_point(Rng& rng, const std::vector<Rect>& tiles) {
  const auto edges = exposed_edges(tiles);
  Coord total = 0;
  for (const auto& e : edges) total += e.length();
  Coord pick = rng.uniform_int(0, std::max<Coord>(0, total - 1));
  for (const auto& e : edges) {
    if (pick >= e.length()) {
      pick -= e.length();
      continue;
    }
    const Coord along = e.span.lo + pick;
    return is_vertical(e.side) ? Point{e.pos, along} : Point{along, e.pos};
  }
  const auto& e = edges.back();
  return is_vertical(e.side) ? Point{e.pos, e.span.lo} : Point{e.span.lo, e.pos};
}

}  // namespace

Netlist generate_circuit(const CircuitSpec& spec) {
  if (spec.num_cells < 2)
    throw std::invalid_argument("generate_circuit: need >= 2 cells");
  const int equiv_extra = static_cast<int>(
      std::lround(spec.equiv_fraction * spec.num_pins));
  const int net_pins = spec.num_pins - equiv_extra;
  if (net_pins < 2 * spec.num_nets)
    throw std::invalid_argument(
        "generate_circuit: pin budget below 2 pins per net");

  Rng rng(spec.seed);
  Netlist nl;
  nl.tech().track_separation = 1;

  // --- cells -----------------------------------------------------------------
  std::vector<CellPlan> plans(static_cast<std::size_t>(spec.num_cells));
  for (int c = 0; c < spec.num_cells; ++c) {
    CellPlan& plan = plans[static_cast<std::size_t>(c)];
    plan.custom = rng.bernoulli(spec.custom_fraction);
    plan.cluster_x = rng.uniform01();
    plan.cluster_y = rng.uniform01();
    const std::string name = spec.name + "_c" + std::to_string(c);
    const Coord w = draw_dim(rng, spec);
    const Coord h = draw_dim(rng, spec);
    if (plan.custom) {
      const double lo = rng.uniform_real(0.4, 0.9);
      const double hi = rng.uniform_real(1.1, 2.5);
      plan.id = nl.add_custom(name, w * h, lo, hi, 8);
    } else if (rng.bernoulli(spec.rectilinear_fraction) && w >= 8 && h >= 8) {
      plan.id = nl.add_macro_polygon(name, l_shape(rng, w, h));
    } else {
      plan.id = nl.add_macro(name, {Rect{0, 0, w, h}});
      if (rng.bernoulli(spec.multi_instance_fraction)) {
        // Alternative transposed layout, pins mapped as they are added.
        nl.add_instance(plan.id, {Rect{0, 0, h, w}}, {});
        plan.multi_instance = true;
      }
    }
  }

  // --- net degrees: everyone gets 2, the remainder goes long-tail -------------
  std::vector<int> degree(static_cast<std::size_t>(spec.num_nets), 2);
  {
    int remaining = net_pins - 2 * spec.num_nets;
    // Hub nets first: each takes its fanout off the top of the extra-pin
    // pool (so the requested total pin count still holds exactly), the
    // long tail below shares what is left.
    const int hubs = std::min(spec.hub_nets, spec.num_nets);
    for (int h = 0; h < hubs && remaining > 0; ++h) {
      const int want = std::max(
          0, static_cast<int>(spec.hub_fanout *
                              static_cast<double>(spec.num_cells)) - 2);
      const int take = std::min(want, remaining);
      degree[static_cast<std::size_t>(h)] += take;
      remaining -= take;
    }
    // 10 percent of nets are "fat" and soak up most of the extra pins, so
    // the majority of nets keep the realistic 2-3 pin degrees.
    const int fat = std::max(1, spec.num_nets / 10);
    while (remaining > 0) {
      const bool to_fat = rng.bernoulli(0.7);
      const int idx = static_cast<int>(
          to_fat ? rng.uniform_int(0, fat - 1)
                 : rng.uniform_int(0, spec.num_nets - 1));
      ++degree[static_cast<std::size_t>(idx)];
      --remaining;
    }
  }

  // --- nets & pins with cluster locality --------------------------------------
  auto add_pin_to_cell = [&](CellPlan& plan, NetId net) -> PinId {
    const Cell& cell = nl.cell(plan.id);
    const std::string pname = "p" + std::to_string(plan.pins_added++);
    if (!plan.custom) {
      const Point at =
          random_boundary_point(rng, cell.instances.front().tiles);
      if (plan.multi_instance) {
        // Transposed instance gets the transposed offset (still on the
        // boundary of the swapped rectangle).
        return nl.add_fixed_pin(plan.id, pname, net,
                                std::vector<Point>{at, Point{at.y, at.x}});
      }
      return nl.add_fixed_pin(plan.id, pname, net, at);
    }
    // Custom cell: grouped or loose uncommitted pin.
    if (rng.bernoulli(spec.group_fraction)) {
      if (plan.groups.size() < 2 && rng.bernoulli(0.5)) {
        static const std::uint8_t masks[] = {
            kSideLeft | kSideRight, kSideBottom | kSideTop, kSideAny};
        const std::uint8_t mask =
            masks[static_cast<std::size_t>(rng.uniform_int(0, 2))];
        plan.groups.push_back(nl.add_group(
            plan.id, "g" + std::to_string(plan.groups.size()), mask,
            rng.bernoulli(0.5)));
      }
      if (!plan.groups.empty()) {
        const GroupId g = plan.groups[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(plan.groups.size()) - 1))];
        return nl.add_group_pin(plan.id, g, pname, net);
      }
    }
    static const std::uint8_t pin_masks[] = {kSideLeft, kSideRight,
                                             kSideBottom, kSideTop, kSideAny};
    const std::uint8_t mask =
        pin_masks[static_cast<std::size_t>(rng.uniform_int(0, 4))];
    return nl.add_edge_pin(plan.id, pname, net, mask);
  };

  // For equivalence partners we remember one (cell, pin) per net.
  std::vector<std::pair<CellId, PinId>> net_anchor(
      static_cast<std::size_t>(spec.num_nets), {kInvalidCell, -1});

  for (int n = 0; n < spec.num_nets; ++n) {
    const NetId net = nl.add_net(spec.name + "_n" + std::to_string(n));
    // Seed cell, then degree-1 partners biased toward the seed's cluster
    // neighborhood.
    const auto seed_idx = static_cast<std::size_t>(
        rng.uniform_int(0, spec.num_cells - 1));
    CellPlan& seed_plan = plans[seed_idx];
    net_anchor[static_cast<std::size_t>(n)] = {
        seed_plan.id, add_pin_to_cell(seed_plan, net)};

    std::vector<char> used(plans.size(), 0);
    used[seed_idx] = 1;
    int placed = 1;
    int guard = 0;
    while (placed < degree[static_cast<std::size_t>(n)]) {
      const auto cand = static_cast<std::size_t>(
          rng.uniform_int(0, spec.num_cells - 1));
      // Locality: accept with probability falling off with cluster distance.
      const double dx = plans[cand].cluster_x - seed_plan.cluster_x;
      const double dy = plans[cand].cluster_y - seed_plan.cluster_y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      const bool accept = rng.bernoulli(std::exp(-dist / spec.locality));
      // Nets wider than the cell count must reuse cells; otherwise prefer
      // distinct cells for the first pass.
      const bool reuse_ok =
          degree[static_cast<std::size_t>(n)] > spec.num_cells || guard > 200;
      if ((accept || guard > 400) && (reuse_ok || !used[cand])) {
        used[cand] = 1;
        add_pin_to_cell(plans[cand], net);
        ++placed;
      }
      ++guard;
    }
  }

  // --- electrically-equivalent partners ---------------------------------------
  // Twin pins are added on macro-cell net anchors (feed-through style). If
  // the circuit happens to have no macro anchors, the budget is spent on
  // ordinary extra pins so the total pin count still matches the spec.
  std::vector<std::size_t> macro_anchors;
  for (std::size_t n = 0; n < net_anchor.size(); ++n)
    if (net_anchor[n].first != kInvalidCell &&
        !nl.cell(net_anchor[n].first).is_custom())
      macro_anchors.push_back(n);
  for (int e = 0; e < equiv_extra; ++e) {
    if (!macro_anchors.empty()) {
      const std::size_t n = macro_anchors[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(macro_anchors.size()) - 1))];
      const auto [cell, pin] = net_anchor[n];
      CellPlan& plan = plans[static_cast<std::size_t>(cell)];
      const PinId twin =
          add_pin_to_cell(plan, static_cast<NetId>(nl.pin(pin).net));
      nl.set_equivalent(pin, twin);
    } else {
      const auto n = static_cast<std::size_t>(
          rng.uniform_int(0, spec.num_nets - 1));
      const auto cand = static_cast<std::size_t>(
          rng.uniform_int(0, spec.num_cells - 1));
      add_pin_to_cell(plans[cand], static_cast<NetId>(n));
    }
  }

  nl.validate();
  return nl;
}

CircuitSpec soc_circuit(SocTier tier, std::uint64_t seed) {
  int cells = 0;
  const char* name = "";
  switch (tier) {
    case SocTier::k1k: cells = 1000; name = "soc-1k"; break;
    case SocTier::k4k: cells = 4000; name = "soc-4k"; break;
    case SocTier::k10k: cells = 10000; name = "soc-10k"; break;
  }
  CircuitSpec spec;
  spec.name = name;
  spec.num_cells = cells;
  spec.num_nets = cells * 7 / 2;
  spec.num_pins = cells * 14;
  // Soft custom cells carry pin sites and per-move site bookkeeping the
  // macro-level SoC abstraction doesn't need; keep the tiers macro-only so
  // the 10k tier stays placeable in CI time.
  spec.custom_fraction = 0.0;
  spec.group_fraction = 0.0;
  // Two chip-spanning hub nets (a clock and a reset): every real SoC has
  // them, and they are the reason the clustering layer caps aggregated
  // coarse-net degree (uncapped, each would become one coarse net touching
  // most clusters and turn every coarse move into a full-net rescan).
  spec.hub_nets = 2;
  spec.seed = seed;
  return spec;
}

}  // namespace tw
