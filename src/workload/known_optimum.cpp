#include "workload/known_optimum.hpp"

#include <string>
#include <utility>
#include <vector>

#include "check/contracts.hpp"
#include "util/rng.hpp"

namespace tw {

KnownOptimumCircuit known_optimum_circuit(const KnownOptimumSpec& spec) {
  TW_REQUIRE(spec.grid >= 2, "known-optimum grid must be >= 2, got ",
             spec.grid);
  TW_REQUIRE(spec.cell_size >= 2, "known-optimum cell size must be >= 2, got ",
             spec.cell_size);
  const int k = spec.grid;
  const Coord s = spec.cell_size;
  Rng rng(derive_seed(spec.seed, "known-optimum"));

  // Seeded Fisher-Yates over grid sites: creation order (= cell id order)
  // is a random permutation of the grid, so ids encode nothing about the
  // optimal layout.
  std::vector<int> order(static_cast<std::size_t>(k) *
                         static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<int>(i);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);

  KnownOptimumCircuit out;
  out.grid = k;
  out.cell_size = s;
  Netlist& nl = out.netlist;

  std::vector<CellId> cell_at(order.size());
  for (const int site : order) {
    const int gx = site % k;
    const int gy = site / k;
    const CellId c = nl.add_macro(
        "ko_" + std::to_string(gx) + "_" + std::to_string(gy),
        {Rect{0, 0, s, s}});
    cell_at[static_cast<std::size_t>(site)] = c;
  }

  // One 2-pin net per grid adjacency, pins at the cell centers. Net
  // creation order is randomized the same way.
  std::vector<std::pair<int, int>> adj;
  adj.reserve(2 * static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  for (int gy = 0; gy < k; ++gy)
    for (int gx = 0; gx < k; ++gx) {
      const int site = gy * k + gx;
      if (gx + 1 < k) adj.emplace_back(site, site + 1);
      if (gy + 1 < k) adj.emplace_back(site, site + k);
    }
  for (std::size_t i = adj.size(); i > 1; --i)
    std::swap(adj[i - 1],
              adj[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);

  const Point center{s / 2, s / 2};
  for (const auto& [a, b] : adj) {
    const NetId n = nl.add_net("n" + std::to_string(a) + "_" +
                               std::to_string(b));
    nl.add_fixed_pin(cell_at[static_cast<std::size_t>(a)], "p", n, center);
    nl.add_fixed_pin(cell_at[static_cast<std::size_t>(b)], "p", n, center);
  }

  out.optimal_teil =
      static_cast<double>(adj.size()) * static_cast<double>(s);
  out.optimal_area = static_cast<Coord>(k) * s * static_cast<Coord>(k) * s;
  nl.validate();
  return out;
}

}  // namespace tw
