// Synthetic circuit generation.
//
// The nine industrial circuits of the paper's evaluation (Gould-AMI, Intel,
// HP and AMD test cases) were never published; this generator produces
// circuits with the same published statistics — cell, net and pin counts —
// and with the structural properties of macro-cell chips of that era:
// log-normal cell dimensions, a fraction of rectilinear (L-shaped) macros,
// a fraction of soft custom cells with uncommitted/grouped pins, a long-tail
// net-degree distribution (mostly 2-3 pin nets plus a few wide nets), and
// Rent-style connection locality (nets preferentially connect cells that
// are close in a latent cluster space, so a good placer has real structure
// to exploit). A small fraction of pins get electrically-equivalent
// partners (feed-through pairs) to exercise the router's equivalence
// handling.
//
// All randomness flows from CircuitSpec::seed, so every experiment is
// reproducible.
#pragma once

#include "netlist/netlist.hpp"

namespace tw {

struct CircuitSpec {
  std::string name = "synthetic";
  int num_cells = 20;
  int num_nets = 100;
  int num_pins = 400;          ///< total pin count, matched exactly

  double mean_cell_dim = 60.0; ///< mean cell side length (grid units)
  double dim_sigma = 0.45;     ///< log-normal sigma of cell dimensions
  double rectilinear_fraction = 0.25;  ///< macros that are L-shaped
  double custom_fraction = 0.2;        ///< soft (custom) cells
  /// Rectangular macros offered in two alternative instances (the original
  /// and a transposed layout) for the annealer's instance selection.
  double multi_instance_fraction = 0.15;
  double group_fraction = 0.3;  ///< custom pins assigned to pin groups
  double equiv_fraction = 0.03; ///< pins that get an equivalent partner
  double locality = 0.35;       ///< cluster radius for net locality (0..1]

  /// Deliberate hub nets (clock / reset): the first `hub_nets` nets each
  /// fan out to ~hub_fanout * num_cells pins, drawn from the same
  /// extra-pin pool as the long tail, so the exact total pin count is
  /// preserved. Off by default; the SoC tiers enable them — a macro-level
  /// SoC netlist always has a few chip-spanning nets, and they are what
  /// ClusterParams::max_aggregated_degree exists for.
  int hub_nets = 0;
  double hub_fanout = 0.2;

  std::uint64_t seed = 1;
};

/// Generates a circuit with exactly the requested cell/net/pin counts.
/// The returned netlist passes Netlist::validate().
Netlist generate_circuit(const CircuitSpec& spec);

/// SoC-scale workload tiers (the multilevel flow's target sizes). The
/// paper's largest circuit has 33 macros; an SoC-era macro-level netlist
/// has thousands. Statistics follow the generator's defaults with net and
/// pin counts scaled to the published macro-chip ratios (~3.5 nets and
/// ~14 pins per cell).
enum class SocTier { k1k, k4k, k10k };

/// The CircuitSpec of one SoC tier (1000 / 4000 / 10000 cells); pass it to
/// generate_circuit, tweaking fields first if desired.
CircuitSpec soc_circuit(SocTier tier, std::uint64_t seed = 1);

}  // namespace tw
