// The nine industrial circuits of the paper's evaluation (Tables 3-4),
// reproduced synthetically with the published cell, net and pin counts.
// Mean cell dimensions are back-solved from Table 4's chip dimensions
// (area / cell count), so the generated circuits also land in the paper's
// coordinate ranges.
#pragma once

#include <vector>

#include "workload/generator.hpp"

namespace tw {

struct PaperCircuit {
  CircuitSpec spec;
  int trials = 1;  ///< the per-circuit trial count of Table 3
};

/// All nine circuits: i1, p1, x1, i2, i3, l1, d2, d1, d3.
std::vector<PaperCircuit> paper_circuits();

/// A single circuit by name (throws std::invalid_argument on unknown name).
PaperCircuit paper_circuit(const std::string& name);

/// A small, fast circuit for unit tests and the quickstart example
/// (~12 cells). `seed` varies the instance.
CircuitSpec tiny_circuit(std::uint64_t seed = 1);

/// A mid-size circuit (~25 cells, the size of the Figure 3 experiments).
CircuitSpec medium_circuit(std::uint64_t seed = 1);

}  // namespace tw
