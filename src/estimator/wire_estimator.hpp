// A-priori interconnect statistics (Section 2.2, factor (1)).
//
// The expected average channel width (Eqn 1)
//
//     C_W = (N_L / C_L) * t_s
//
// requires an estimate N_L of the final total interconnect length and an
// estimate C_L of the total channel length before any placement exists.
//
//  * N_L follows Sechen's average-interconnection-length model for
//    *optimized* placements (ICCAD'87 / dissertation ch. 5): the expected
//    bounding-box length of a net grows with the core dimension and, for
//    multi-pin nets, sub-linearly with the net degree. We use
//        l(n) = kappa * sqrt(A_core / N_c) * (d(n) - 1)^p
//    with kappa ~ 1.0 and p ~ 0.75; both are exposed as parameters. The
//    exact constants only scale C_W, and the dynamic estimator's accuracy
//    is measured end-to-end by the Table 3 experiment.
//  * C_L: every routing channel is bordered by exactly two cell edges (or
//    one cell edge and the core boundary), so the total channel length is
//    approximately half the total exposed cell perimeter plus half the
//    core perimeter.
#pragma once

#include "netlist/netlist.hpp"

namespace tw {

struct WireEstimateParams {
  /// Length-model prefactor. Calibrated against the full flow: C_W must
  /// anticipate the *routed* net length (global-route detours included),
  /// which runs about twice the bounding-box lower bound; kappa = 2 makes
  /// the end-of-stage-1 chip area match the post-refinement area across
  /// the nine reproduction circuits (the Table 3 criterion).
  double kappa = 2.0;
  double degree_exp = 0.75;  ///< p in (d-1)^p
};

class WireEstimator {
public:
  WireEstimator(const Netlist& nl, WireEstimateParams params = {});

  /// Expected final total interconnect length N_L for a core of the given
  /// area.
  double total_length(double core_area) const;

  /// Expected total channel length C_L for a core of the given dimensions.
  double total_channel_length(Coord core_w, Coord core_h) const;

  /// Expected average channel width C_W (Eqn 1).
  double channel_width(Coord core_w, Coord core_h) const;

private:
  const Netlist& nl_;
  WireEstimateParams params_;
  double degree_sum_ = 0.0;    ///< sum over nets of (d-1)^p
  Coord cell_perimeter_ = 0;   ///< total exposed cell perimeter
};

}  // namespace tw
