// The dynamic interconnect-area estimator (Section 2.2).
//
// TimberWolfMC maintains sufficient interconnect space between cells by
// appending a border around each cell's contour whose thickness is the
// product of three factors:
//   (1) the expected average channel width C_W (Eqn 1, see WireEstimator);
//   (2) a position modulation f_x(x) * f_y(y) — channels near the core
//       center are wider than channels near the corners (Figure 1);
//   (3) the relative pin density f_rp(i) of the cell edge.
//
// The per-edge expansion is (Eqn 2)
//
//     e_w^i = 0.5 * (C_W / alpha) * f_x(x_i) * f_y(y_i) * f_rp(i)
//
// where alpha is the mean of f_x * f_y over the core (Eqn 3; closed form
// ((M+B)/2)^2 in the symmetric case, Eqn 4) so that the *expected*
// expansion is 0.5 C_W.  (The paper's Eqn 2 prints the normalization as a
// multiplication; dividing is the only reading consistent with the stated
// requirement E[e_w] = 0.5 C_W, and is what we implement.)
//
// The expansion is *dynamic*: it depends on where the edge currently sits,
// so cells effectively grow when moved toward the core center and shrink
// when moved toward a corner.
#pragma once

#include <array>

#include "estimator/wire_estimator.hpp"
#include "geom/polygon.hpp"
#include "netlist/netlist.hpp"

namespace tw {

/// Position-dependent channel-width modulation (Section 2.2, factor (2)).
struct Modulation {
  double mx = 2.0;  ///< M_x: factor at the core's vertical centerline
  double bx = 1.0;  ///< B_x: factor at the left/right core edges
  double my = 2.0;
  double by = 1.0;
  Rect core;        ///< current core region (chip coordinates)

  /// f_x evaluated at chip coordinate x (clamped to the core span).
  double fx(Coord x) const;
  /// f_y evaluated at chip coordinate y.
  double fy(Coord y) const;
  /// Mean of f_x * f_y over the core area (Eqns 3-4).
  double alpha() const { return 0.25 * (mx + bx) * (my + by); }
};

class DynamicAreaEstimator {
public:
  explicit DynamicAreaEstimator(const Netlist& nl,
                                WireEstimateParams wire_params = {});

  /// Determines the target core region (Section 2.2, "Determining the Core
  /// Area"): iterates Eqn 5 — cell areas inflated by the maximum-modulation
  /// expansion — until the total effective area is self-consistent with the
  /// channel-width estimate, then divides by `packing_efficiency`
  /// (heterogeneous rectangles never pack perfectly; without this slack the
  /// target core cannot hold an overlap-free placement at all). The core is
  /// centered at the origin with height/width ratio `aspect`. Also installs
  /// the result via set_core().
  Rect compute_initial_core(double aspect = 1.0,
                            double packing_efficiency = 0.85);

  /// Installs a core region: updates the modulation extents and C_W.
  void set_core(const Rect& core);
  const Rect& core() const { return mod_.core; }
  const Modulation& modulation() const { return mod_; }
  double channel_width() const { return cw_; }

  /// f_rp (factor (3)) for a local side of a cell instance.
  double pin_density_factor(CellId c, InstanceId k, Side local_side) const;

  /// Expansion e_w for the given *oriented* side of a cell whose side
  /// midpoint currently sits at `mid` (chip coordinates). Rounded up to the
  /// integer grid so the allotted space is never under-counted.
  Coord edge_expansion(CellId c, InstanceId k, Orient o, Side oriented_side,
                       Point mid) const;

  /// Per-side expansions (kLeft, kRight, kBottom, kTop order) for the
  /// oriented bounding box of cell `c` centered at `center`.
  std::array<Coord, 4> side_expansions(CellId c, InstanceId k, Orient o,
                                       Point center) const;

  /// The maximum-modulation expansion of Eqn 5 (used for initial core
  /// sizing, where edge positions are not yet known).
  double nominal_expansion() const;

private:
  /// Fraction of the cell's pins attributed to each local side, divided by
  /// the side length: the edge pin density d_p^i.
  double local_pin_density(CellId c, InstanceId k, Side side) const;

  const Netlist& nl_;
  WireEstimator wire_;
  Modulation mod_;
  double cw_ = 0.0;
  double avg_pin_density_ = 0.0;  ///< D_p
  /// pin-count attributed to each local side, per cell (instance-independent:
  /// computed from the initial instance's geometry and side masks).
  std::vector<std::array<double, 4>> side_pin_count_;
};

}  // namespace tw
