#include "estimator/area_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tw {
namespace {

int side_idx(Side s) {
  switch (s) {
    case Side::kLeft: return 0;
    case Side::kRight: return 1;
    case Side::kBottom: return 2;
    case Side::kTop: return 3;
  }
  throw std::logic_error("bad side");
}

Point outward_normal(Side s) {
  switch (s) {
    case Side::kLeft: return {-1, 0};
    case Side::kRight: return {1, 0};
    case Side::kBottom: return {0, -1};
    case Side::kTop: return {0, 1};
  }
  throw std::logic_error("bad side");
}

Side side_from_normal(Point n) {
  if (n.x < 0) return Side::kLeft;
  if (n.x > 0) return Side::kRight;
  if (n.y < 0) return Side::kBottom;
  return Side::kTop;
}

/// The local side that faces in direction `oriented_side` once the cell is
/// placed with orientation `o`.
Side local_side_of(Orient o, Side oriented_side) {
  const Point n = apply_orient_vec(inverse_orient(o), outward_normal(oriented_side));
  return side_from_normal(n);
}

}  // namespace

double Modulation::fx(Coord x) const {
  const double w = static_cast<double>(core.width());
  if (w <= 0.0) return mx;
  const double cx = 0.5 * static_cast<double>(core.xlo + core.xhi);
  const double rel = std::min(std::abs(static_cast<double>(x) - cx), 0.5 * w);
  return mx - rel * (mx - bx) / (0.5 * w);
}

double Modulation::fy(Coord y) const {
  const double h = static_cast<double>(core.height());
  if (h <= 0.0) return my;
  const double cy = 0.5 * static_cast<double>(core.ylo + core.yhi);
  const double rel = std::min(std::abs(static_cast<double>(y) - cy), 0.5 * h);
  return my - rel * (my - by) / (0.5 * h);
}

DynamicAreaEstimator::DynamicAreaEstimator(const Netlist& nl,
                                           WireEstimateParams wire_params)
    : nl_(nl), wire_(nl, wire_params) {
  mod_.mx = mod_.my = nl.tech().modulation_max;
  mod_.bx = mod_.by = nl.tech().modulation_min;
  avg_pin_density_ = nl.average_pin_density();

  // Attribute each cell's pins to local bbox sides.
  side_pin_count_.assign(nl.num_cells(), {0.0, 0.0, 0.0, 0.0});
  for (const auto& c : nl.cells()) {
    auto& counts = side_pin_count_[static_cast<std::size_t>(c.id)];
    const CellInstance& inst = c.instances.front();
    for (std::size_t k = 0; k < c.pins.size(); ++k) {
      const Pin& p = nl.pin(c.pins[k]);
      if (p.commit == PinCommit::kFixed) {
        // Nearest bbox side.
        const Point off = inst.pin_offsets[k];
        const Coord dl = off.x;
        const Coord dr = inst.width - off.x;
        const Coord db = off.y;
        const Coord dt = inst.height - off.y;
        const Coord dmin = std::min({dl, dr, db, dt});
        if (dmin == dl) counts[0] += 1.0;
        else if (dmin == dr) counts[1] += 1.0;
        else if (dmin == db) counts[2] += 1.0;
        else counts[3] += 1.0;
      } else {
        // Uncommitted: spread over the allowed sides (locations only
        // approximately known, Section 2.4).
        const auto sides = sides_in_mask(p.side_mask);
        const double share = 1.0 / static_cast<double>(sides.size());
        for (Side s : sides) counts[static_cast<std::size_t>(side_idx(s))] += share;
      }
    }
  }
}

Rect DynamicAreaEstimator::compute_initial_core(double aspect,
                                                double packing_efficiency) {
  if (aspect <= 0.0)
    throw std::invalid_argument("compute_initial_core: bad aspect");
  if (packing_efficiency <= 0.0 || packing_efficiency > 1.0)
    throw std::invalid_argument("compute_initial_core: bad packing efficiency");
  const double cell_area = static_cast<double>(nl_.total_cell_area());
  double area = cell_area * 1.5;  // starting guess; iteration refines it

  Coord w = 1, h = 1;
  for (int iter = 0; iter < 12; ++iter) {
    w = std::max<Coord>(1, static_cast<Coord>(std::llround(std::sqrt(area / aspect))));
    h = std::max<Coord>(1, static_cast<Coord>(std::llround(area / static_cast<double>(w))));
    const double cw = wire_.channel_width(w, h);
    // Eqn 5: maximum modulation, unity pin-density factor.
    const double e0 = 0.5 * cw / mod_.alpha() * mod_.mx * mod_.my;
    double eff = 0.0;
    for (const auto& c : nl_.cells()) {
      const CellInstance& inst = c.instances.front();
      eff += (static_cast<double>(inst.width) + 2.0 * e0) *
             (static_cast<double>(inst.height) + 2.0 * e0);
    }
    eff /= packing_efficiency;
    if (std::abs(eff - area) < 0.001 * area) {
      area = eff;
      break;
    }
    area = eff;
  }
  w = std::max<Coord>(1, static_cast<Coord>(std::llround(std::sqrt(area / aspect))));
  h = std::max<Coord>(1, static_cast<Coord>(std::llround(area / static_cast<double>(w))));

  const Rect core{-w / 2, -h / 2, -w / 2 + w, -h / 2 + h};
  set_core(core);
  return core;
}

void DynamicAreaEstimator::set_core(const Rect& core) {
  if (!core.valid() || core.area() == 0)
    throw std::invalid_argument("set_core: degenerate core");
  mod_.core = core;
  cw_ = wire_.channel_width(core.width(), core.height());
}

double DynamicAreaEstimator::pin_density_factor(CellId c, InstanceId k,
                                                Side local_side) const {
  if (avg_pin_density_ <= 0.0) return 1.0;
  const double d_rp = local_pin_density(c, k, local_side) / avg_pin_density_;
  return std::max(1.0, d_rp);  // f_rp >= 1: every edge gets some space
}

double DynamicAreaEstimator::local_pin_density(CellId c, InstanceId k,
                                               Side side) const {
  const Cell& cell = nl_.cell(c);
  const CellInstance& inst = cell.instances.at(static_cast<std::size_t>(k));
  const Coord len = is_vertical(side) ? inst.height : inst.width;
  if (len <= 0) return 0.0;
  const double count =
      side_pin_count_[static_cast<std::size_t>(c)][static_cast<std::size_t>(side_idx(side))];
  return count / static_cast<double>(len);
}

Coord DynamicAreaEstimator::edge_expansion(CellId c, InstanceId k, Orient o,
                                           Side oriented_side,
                                           Point mid) const {
  const Side local = local_side_of(o, oriented_side);
  const double frp = pin_density_factor(c, k, local);
  const double e = 0.5 * cw_ / mod_.alpha() * mod_.fx(mid.x) * mod_.fy(mid.y) * frp;
  return static_cast<Coord>(std::ceil(std::max(0.0, e)));
}

std::array<Coord, 4> DynamicAreaEstimator::side_expansions(CellId c,
                                                           InstanceId k,
                                                           Orient o,
                                                           Point center) const {
  const Cell& cell = nl_.cell(c);
  const CellInstance& inst = cell.instances.at(static_cast<std::size_t>(k));
  const Coord ow = oriented_width(o, inst.width, inst.height);
  const Coord oh = oriented_height(o, inst.width, inst.height);
  const Coord xlo = center.x - ow / 2;
  const Coord ylo = center.y - oh / 2;
  const Point mid_l{xlo, ylo + oh / 2};
  const Point mid_r{xlo + ow, ylo + oh / 2};
  const Point mid_b{xlo + ow / 2, ylo};
  const Point mid_t{xlo + ow / 2, ylo + oh};
  return {edge_expansion(c, k, o, Side::kLeft, mid_l),
          edge_expansion(c, k, o, Side::kRight, mid_r),
          edge_expansion(c, k, o, Side::kBottom, mid_b),
          edge_expansion(c, k, o, Side::kTop, mid_t)};
}

double DynamicAreaEstimator::nominal_expansion() const {
  return 0.5 * cw_ / mod_.alpha() * mod_.mx * mod_.my;
}

}  // namespace tw
