#include "estimator/wire_estimator.hpp"

#include <cmath>

namespace tw {

WireEstimator::WireEstimator(const Netlist& nl, WireEstimateParams params)
    : nl_(nl), params_(params) {
  for (const auto& n : nl.nets()) {
    const double d = static_cast<double>(n.degree());
    if (d >= 2.0) degree_sum_ += std::pow(d - 1.0, params_.degree_exp);
  }
  cell_perimeter_ = nl.total_cell_perimeter();
}

double WireEstimator::total_length(double core_area) const {
  const double nc = static_cast<double>(nl_.num_cells());
  if (nc == 0.0) return 0.0;
  const double pitch_len = std::sqrt(core_area / nc);
  return params_.kappa * pitch_len * degree_sum_;
}

double WireEstimator::total_channel_length(Coord core_w, Coord core_h) const {
  const double cell_part = 0.5 * static_cast<double>(cell_perimeter_);
  const double core_part = static_cast<double>(core_w + core_h);
  return cell_part + core_part;
}

double WireEstimator::channel_width(Coord core_w, Coord core_h) const {
  const double cl = total_channel_length(core_w, core_h);
  if (cl <= 0.0) return 0.0;
  const double nl = total_length(static_cast<double>(core_w) *
                                 static_cast<double>(core_h));
  return nl / cl * static_cast<double>(nl_.tech().track_separation);
}

}  // namespace tw
