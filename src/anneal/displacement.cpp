#include "anneal/displacement.hpp"

#include <algorithm>

namespace tw {

Point select_displacement(Rng& rng, Coord wx, Coord wy, PointSelect mode) {
  if (mode == PointSelect::kStructured) {
    const Coord sx = std::max<Coord>(1, wx / (2 * kStepLevels));
    const Coord sy = std::max<Coord>(1, wy / (2 * kStepLevels));
    Coord ix = 0, iy = 0;
    while (ix == 0 && iy == 0) {
      ix = rng.uniform_int(-kStepLevels, kStepLevels);
      iy = rng.uniform_int(-kStepLevels, kStepLevels);
    }
    return {ix * sx, iy * sy};
  }
  const Coord hx = std::max<Coord>(1, wx / 2);
  const Coord hy = std::max<Coord>(1, wy / 2);
  Coord dx = 0, dy = 0;
  while (dx == 0 && dy == 0) {
    dx = rng.uniform_int(-hx, hx);
    dy = rng.uniform_int(-hy, hy);
  }
  return {dx, dy};
}

}  // namespace tw
