// The range limiter (Section 3.2.2).
//
// At low temperatures only short moves have a reasonable acceptance
// probability, so the window from which displacement targets are drawn
// shrinks with log10(T) (Eqns 12-14):
//
//     W_x(T) = W_x_inf * rho^log10(T) / lambda,   lambda = rho^log10(T_inf)
//
// rho = 4 gave both the lowest final TEIL and the lowest residual cell
// overlap in the paper's sweep (1 <= rho <= 10); the sweep itself is
// reproduced by bench_rho. Stage 1 ends when the window has contracted to
// its minimum span (6 grid units).
#pragma once

#include "geom/rect.hpp"

namespace tw {

class RangeLimiter {
public:
  /// `wx_inf`, `wy_inf`: window spans at T = T_inf (normally the full core
  /// span, so initial moves can cross the whole chip).
  RangeLimiter(Coord wx_inf, Coord wy_inf, double t_inf, double rho = 4.0,
               Coord min_span = 6);

  /// Window span in x at temperature `t`, clamped to [min_span, wx_inf].
  Coord window_x(double t) const;
  Coord window_y(double t) const;

  /// True once both spans have contracted to the minimum — the stage-1
  /// stopping criterion.
  bool at_minimum(double t) const;

  /// The window rectangle centered on `center` at temperature `t`.
  Rect window(Point center, double t) const;

  double rho() const { return rho_; }
  Coord min_span() const { return min_span_; }

private:
  double raw_span(Coord w_inf, double t) const;

  Coord wx_inf_;
  Coord wy_inf_;
  double rho_;
  double lambda_;  ///< rho^log10(T_inf), Eqn 14
  Coord min_span_;
};

}  // namespace tw
