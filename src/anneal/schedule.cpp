#include "anneal/schedule.hpp"

#include <stdexcept>

namespace tw {

CoolingSchedule::CoolingSchedule(std::vector<Step> steps)
    : steps_(std::move(steps)) {
  if (steps_.empty())
    throw std::invalid_argument("CoolingSchedule: empty step list");
  for (std::size_t i = 1; i < steps_.size(); ++i)
    if (steps_[i].threshold >= steps_[i - 1].threshold)
      throw std::invalid_argument(
          "CoolingSchedule: thresholds must strictly descend");
  if (steps_.back().threshold != 0.0)
    throw std::invalid_argument(
        "CoolingSchedule: last step must have threshold 0");
  for (const auto& s : steps_)
    if (s.alpha <= 0.0 || s.alpha >= 1.0)
      throw std::invalid_argument("CoolingSchedule: alpha must be in (0,1)");
}

CoolingSchedule CoolingSchedule::stage1() {
  return CoolingSchedule({{7000.0, 0.85}, {200.0, 0.92}, {10.0, 0.85}, {0.0, 0.80}});
}

CoolingSchedule CoolingSchedule::stage2() {
  return CoolingSchedule({{10.0, 0.82}, {0.0, 0.70}});
}

double CoolingSchedule::alpha_at(double t, double scale) const {
  for (const auto& s : steps_)
    if (t >= s.threshold * scale) return s.alpha;
  return steps_.back().alpha;
}

}  // namespace tw
