// Cooling schedules and temperature scaling (Section 3.3, Tables 1-2).
//
// TimberWolfMC cools with T_new = alpha(T_old) * T_old where alpha is a
// piecewise-constant function of T_old: fast cooling at very high T (where
// nearly everything is accepted), slow cooling through the critical range,
// and fast cooling again at the end so the cost firmly converges.
//
// Temperatures are scaled by S_T = c_a / c_a* (Eqns 19-21) where c_a is the
// circuit's average effective cell area, so the same schedule thresholds
// apply to circuits of any size or grid resolution. The reference values
// are c_a* = 1e4 and T_inf* = 1e5 (from 25-cell industrial circuits).
#pragma once

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace tw {

inline constexpr double kRefCellArea = 1e4;   ///< c_a* in Eqn 19
inline constexpr double kRefTInfinity = 1e5;  ///< T_inf* in Eqn 19

/// S_T = avg_cell_area / c_a* (Eqn 20).
inline double temperature_scale(double avg_cell_area) {
  return avg_cell_area / kRefCellArea;
}

/// T_infinity = S_T * T_inf* (Eqn 21).
inline double t_infinity(double scale) { return scale * kRefTInfinity; }

/// Piecewise-constant alpha(T) lookup. Thresholds are expressed in
/// *unscaled* units and multiplied by S_T at query time, exactly as the
/// paper's tables list them ("For T_old >= S_T * 7000: 0.85").
class CoolingSchedule {
public:
  struct Step {
    double threshold;  ///< smallest unscaled T_old this alpha applies to
    double alpha;
  };

  /// `steps` must be sorted by descending threshold and end with a
  /// threshold-0 fallback entry.
  explicit CoolingSchedule(std::vector<Step> steps);

  /// Table 1 (stage 1): 0.85 above 7000, 0.92 above 200, 0.85 above 10,
  /// 0.80 below.
  static CoolingSchedule stage1();

  /// Table 2 (stage 2): 0.82 above 10, 0.70 below.
  static CoolingSchedule stage2();

  /// alpha(T_old) for temperature scale S_T.
  double alpha_at(double t, double scale) const;

  /// One update step (Eqn 18).
  double next(double t, double scale) const { return t * alpha_at(t, scale); }

  const std::vector<Step>& steps() const { return steps_; }

private:
  std::vector<Step> steps_;
};

/// The Metropolis acceptance rule used by every annealer in the package:
/// downhill moves always accepted, uphill with probability exp(-dC/T).
inline bool metropolis_accept(double delta_cost, double t, Rng& rng) {
  if (delta_cost <= 0.0) return true;
  if (t <= 0.0) return false;
  return rng.uniform01() < std::exp(-delta_cost / t);
}

}  // namespace tw
