// Single-cell displacement-point selection (Section 3.2.3).
//
// The structured selector D_s draws the new cell center from a small set of
// evenly-dispersed points within the range-limiter window: the step in each
// axis is an integer in {-3..3} (not both zero, 48 points total) times a
// step size s = W(T)/6, so at high T the moves are large and at low T they
// are fine refinements. The alternative D_r draws uniformly from all points
// in the window; the paper found D_s gives a slightly better TEIL and 22 %
// less residual overlap (reproduced by bench_displacement).
//
// Note on Eqn 16: the paper prints s_y = W_y(T)/4 while stating that the
// multiplier set is {-3..3} for both axes and that the minimum window span
// of 6 corresponds to unit steps; /4 is inconsistent with both statements
// (a +/-3 step of W/4 would leave the window), so we use W/6 on both axes.
#pragma once

#include "geom/point.hpp"
#include "util/rng.hpp"

namespace tw {

enum class PointSelect {
  kStructured,  ///< D_s: the 48-point lattice
  kRandom,      ///< D_r: any point in the window
};

/// Number of step multiples on each side of zero for D_s (3 -> 48 points).
inline constexpr int kStepLevels = 3;

/// Draws a displacement (dx, dy) != (0, 0) within a window of span
/// `wx` x `wy` centered on the cell's current position.
Point select_displacement(Rng& rng, Coord wx, Coord wy, PointSelect mode);

}  // namespace tw
