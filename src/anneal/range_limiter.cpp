#include "anneal/range_limiter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tw {

RangeLimiter::RangeLimiter(Coord wx_inf, Coord wy_inf, double t_inf,
                           double rho, Coord min_span)
    : wx_inf_(wx_inf), wy_inf_(wy_inf), rho_(rho), min_span_(min_span) {
  if (wx_inf < min_span || wy_inf < min_span)
    throw std::invalid_argument("RangeLimiter: initial window below minimum");
  if (t_inf <= 0.0) throw std::invalid_argument("RangeLimiter: t_inf <= 0");
  if (rho < 1.0 || rho > 10.0)
    throw std::invalid_argument("RangeLimiter: rho out of [1,10]");
  lambda_ = std::pow(rho_, std::log10(t_inf));
}

double RangeLimiter::raw_span(Coord w_inf, double t) const {
  if (t <= 0.0) return 0.0;
  // rho = 1 degenerates to a constant window (lambda = 1 as well).
  const double factor = std::pow(rho_, std::log10(t)) / lambda_;
  return static_cast<double>(w_inf) * factor;
}

Coord RangeLimiter::window_x(double t) const {
  const Coord w = static_cast<Coord>(std::llround(raw_span(wx_inf_, t)));
  return std::clamp(w, min_span_, wx_inf_);
}

Coord RangeLimiter::window_y(double t) const {
  const Coord w = static_cast<Coord>(std::llround(raw_span(wy_inf_, t)));
  return std::clamp(w, min_span_, wy_inf_);
}

bool RangeLimiter::at_minimum(double t) const {
  // With rho = 1 the window never shrinks; report minimum when the raw
  // span has reached (or numerically crossed) the clamp on both axes.
  return window_x(t) <= min_span_ && window_y(t) <= min_span_;
}

Rect RangeLimiter::window(Point center, double t) const {
  const Coord hx = window_x(t) / 2;
  const Coord hy = window_y(t) / 2;
  return {center.x - hx, center.y - hy, center.x + hx, center.y + hy};
}

}  // namespace tw
