#include "route/interchange.hpp"

#include <algorithm>

#include "check/contracts.hpp"
#include "route/validate.hpp"
#include "util/log.hpp"

namespace tw {

int total_overflow(const RoutingGraph& g, const std::vector<int>& usage) {
  int x = 0;
  for (std::size_t e = 0; e < usage.size(); ++e) {
    const int over = usage[e] - g.edge(static_cast<EdgeId>(e)).capacity;
    if (over > 0) x += over;
  }
  return x;
}

GlobalRouter::GlobalRouter(const RoutingGraph& g, GlobalRouterParams params)
    : g_(g), params_(params) {}

GlobalRouteResult GlobalRouter::route(const std::vector<NetTargets>& nets) {
  GlobalRouteResult r;
  r.alternatives.resize(nets.size());
  r.choice.assign(nets.size(), -1);
  r.edge_usage.assign(g_.num_edges(), 0);
  const RouteCounters counters_before = ws_.counters;
  // Every return path calls this first so r.counters always reports the
  // work of exactly this call.
  auto finish = [&]() { r.counters = ws_.counters - counters_before; };

  // --- phase one: enumerate alternatives, seed with the shortest ----------
  bool stopped_early = false;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (params_.faults != nullptr)
      params_.faults->poll(recover::FaultSite::kRouteNet);
    if (params_.budget != nullptr) {
      if (params_.budget->stop_requested()) {
        // Remaining nets stay unrouted; the partial result is consistent.
        r.unrouted_nets += static_cast<int>(nets.size() - i);
        stopped_early = true;
        break;
      }
      params_.budget->charge_move();
    }
    r.alternatives[i] = m_best_routes(g_, nets[i], params_.steiner, ws_);
    if (r.alternatives[i].empty()) {
      ++r.unrouted_nets;
      continue;
    }
    r.choice[i] = 0;
    for (EdgeId e : r.alternatives[i][0].edges)
      ++r.edge_usage[static_cast<std::size_t>(e)];
    r.total_length += r.alternatives[i][0].length;
  }
  r.total_overflow = total_overflow(g_, r.edge_usage);
  // The interchange below maintains edge_usage, total_length and
  // total_overflow incrementally; this checker recomputes all three.
  auto ensure_consistent = [&](const GlobalRouteResult& result) {
    if constexpr (check::kLevel >= check::kLevelFull) {
      const ValidationReport vr = validate_routing(g_, nets, result);
      TW_ENSURE_FULL(vr.ok(), vr.str());
    } else {
      (void)result;
    }
  };
  if (stopped_early || r.total_overflow == 0) {
    // Stopping criterion (1), or the budget expired during phase one — the
    // interchange loop would stop before its first attempt anyway, so skip
    // its setup and return the (validated) partial selection directly.
    ensure_consistent(r);
    finish();
    return r;
  }

  // --- phase two: random interchange ---------------------------------------
  Rng rng(params_.seed);

  // Nets using each edge, maintained incrementally.
  std::vector<std::vector<std::int32_t>> nets_on_edge(g_.num_edges());
  for (std::size_t i = 0; i < nets.size(); ++i)
    if (const Route* rt = r.route_of(i))
      for (EdgeId e : rt->edges)
        nets_on_edge[static_cast<std::size_t>(e)].push_back(
            static_cast<std::int32_t>(i));

  auto remove_net_from_edge = [&](EdgeId e, std::int32_t net) {
    auto& v = nets_on_edge[static_cast<std::size_t>(e)];
    v.erase(std::find(v.begin(), v.end(), net));
  };

  // Overflow worklist: the overloaded edges, kept sorted ascending so its
  // content is always identical to what a fresh O(E) scan would produce —
  // attempts only ever examine nets incident to an overloaded edge, and
  // the random draws match the previous full-scan implementation exactly.
  std::vector<EdgeId> over;
  for (std::size_t e = 0; e < r.edge_usage.size(); ++e)
    if (r.edge_usage[e] > g_.edge(static_cast<EdgeId>(e)).capacity)
      over.push_back(static_cast<EdgeId>(e));

  // The single mutation point for edge usage: adjusts the count and keeps
  // the worklist in sync when the edge crosses its capacity either way.
  auto apply_usage_delta = [&](EdgeId e, int delta) {
    const int cap = g_.edge(e).capacity;
    int& usage = r.edge_usage[static_cast<std::size_t>(e)];
    const bool was_over = usage > cap;
    usage += delta;
    const bool is_over = usage > cap;
    if (was_over == is_over) return;
    const auto it = std::lower_bound(over.begin(), over.end(), e);
    if (is_over) {
      over.insert(it, e);
    } else {
      TW_ASSERT(it != over.end() && *it == e,
                "overflow worklist lost edge ", e);
      over.erase(it);
    }
  };

  const long long patience =
      static_cast<long long>(std::max(1, params_.steiner.m)) *
      static_cast<long long>(std::max<std::size_t>(1, nets.size()));
  long long unchanged = 0;

  // Rip-up augmentation: when the interchange stalls with overflow left,
  // nets crossing overloaded channels get an extra congestion-aware
  // alternative (a greedy route that pays a penalty on overloaded edges),
  // and the interchange resumes. This keeps the phase-two guarantee —
  // order-free selection — while reaching detours phase one's M shortest
  // routes missed.
  int augment_rounds_left = 3;
  auto augment = [&]() {
    if (augment_rounds_left-- <= 0) return false;
    // Penalty scale: several average route lengths per unit of overflow.
    double avg_len = 0.0;
    int routed_count = 0;
    for (std::size_t i = 0; i < nets.size(); ++i)
      if (const Route* rt = r.route_of(i)) {
        avg_len += rt->length;
        ++routed_count;
      }
    const double penalty =
        4.0 * (routed_count ? avg_len / routed_count : 1.0) + 1.0;
    std::vector<double> extra(g_.num_edges(), 0.0);
    for (std::size_t e = 0; e < r.edge_usage.size(); ++e) {
      const int over =
          r.edge_usage[e] - g_.edge(static_cast<EdgeId>(e)).capacity;
      if (over > 0) extra[e] = penalty * static_cast<double>(over);
    }
    bool added = false;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const Route* cur = r.route_of(i);
      if (!cur) continue;
      bool uses_overflow = false;
      for (EdgeId e : cur->edges)
        if (r.edge_usage[static_cast<std::size_t>(e)] >
            g_.edge(e).capacity) {
          uses_overflow = true;
          break;
        }
      if (!uses_overflow) continue;
      auto alt = greedy_route(g_, nets[i], &extra, ws_);
      if (!alt) continue;
      std::sort(alt->edges.begin(), alt->edges.end());
      alt->length = 0.0;
      for (EdgeId e : alt->edges) alt->length += g_.edge(e).length;
      bool duplicate = false;
      for (const Route& have : r.alternatives[i])
        if (have.edges == alt->edges) {
          duplicate = true;
          break;
        }
      if (duplicate) continue;
      r.alternatives[i].push_back(std::move(*alt));
      added = true;
    }
    return added;
  };

  while (r.total_overflow > 0) {
    if (params_.budget != nullptr) {
      if (params_.budget->stop_requested()) break;
      params_.budget->charge_move();
    }
    if (unchanged >= patience) {
      // Stopping criterion (2) hit with overflow left: widen the pool or
      // give up.
      if (!augment()) break;
      unchanged = 0;
    }
    ++r.interchange_attempts;
    ++ws_.counters.interchange_trials;
    ++unchanged;

    // Random overflowed edge, drawn from the maintained worklist.
    if (over.empty()) break;
    const EdgeId ej = over[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(over.size()) - 1))];

    const auto& users = nets_on_edge[static_cast<std::size_t>(ej)];
    if (users.empty()) break;  // capacity < 0 edge with no user: stuck
    const std::int32_t net = users[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(users.size()) - 1))];

    const auto ni = static_cast<std::size_t>(net);
    const Route& cur = r.alternatives[ni][static_cast<std::size_t>(r.choice[ni])];

    // Evaluate every alternative's (dX, dL); keep those with dX <= 0.
    struct Candidate {
      int k;
      int dx;
      double dl;
    };
    std::vector<Candidate> ok;
    for (int k = 0; k < static_cast<int>(r.alternatives[ni].size()); ++k) {
      if (k == r.choice[ni]) continue;
      const Route& alt = r.alternatives[ni][static_cast<std::size_t>(k)];
      int dx = 0;
      // Edges leaving the selection (cur \ alt) and entering (alt \ cur);
      // both edge lists are sorted.
      std::size_t a = 0, b = 0;
      auto over_delta = [&](EdgeId e, int delta) {
        const int cap = g_.edge(e).capacity;
        const int before = std::max(0, r.edge_usage[static_cast<std::size_t>(e)] - cap);
        const int after =
            std::max(0, r.edge_usage[static_cast<std::size_t>(e)] + delta - cap);
        dx += after - before;
      };
      while (a < cur.edges.size() || b < alt.edges.size()) {
        if (b >= alt.edges.size() ||
            (a < cur.edges.size() && cur.edges[a] < alt.edges[b])) {
          over_delta(cur.edges[a], -1);
          ++a;
        } else if (a >= cur.edges.size() || alt.edges[b] < cur.edges[a]) {
          over_delta(alt.edges[b], +1);
          ++b;
        } else {
          ++a;
          ++b;
        }
      }
      if (dx <= 0) ok.push_back({k, dx, alt.length - cur.length});
    }
    if (ok.empty()) continue;

    const Candidate cand = ok[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ok.size()) - 1))];
    // Acceptance rule: dX < 0, or dX == 0 and dL <= 0.
    if (!(cand.dx < 0 || (cand.dx == 0 && cand.dl <= 0.0))) continue;

    // Apply the interchange.
    const Route& alt = r.alternatives[ni][static_cast<std::size_t>(cand.k)];
    for (EdgeId e : cur.edges) {
      apply_usage_delta(e, -1);
      remove_net_from_edge(e, net);
    }
    for (EdgeId e : alt.edges) {
      apply_usage_delta(e, +1);
      nets_on_edge[static_cast<std::size_t>(e)].push_back(net);
    }
    r.choice[ni] = cand.k;
    r.total_length += cand.dl;
    r.total_overflow += cand.dx;
    TW_ASSERT(r.total_overflow >= 0, "X=", r.total_overflow,
              " after interchange of net ", net);
    if (cand.dx != 0 || cand.dl != 0.0) unchanged = 0;
  }

  // Fixed-point certificate: one full scan confirms the incrementally
  // maintained worklist and overflow total against ground truth.
  {
    int x = 0;
    std::size_t wl = 0;
    for (std::size_t e = 0; e < r.edge_usage.size(); ++e) {
      const int cap = g_.edge(static_cast<EdgeId>(e)).capacity;
      if (r.edge_usage[e] > cap) {
        x += r.edge_usage[e] - cap;
        TW_ASSERT(wl < over.size() && over[wl] == static_cast<EdgeId>(e),
                  "overflow worklist out of sync at edge ", e);
        ++wl;
      }
    }
    TW_ASSERT(wl == over.size(), "overflow worklist has ",
              over.size() - wl, " stale entries");
    TW_ASSERT(x == r.total_overflow, "incremental X=", r.total_overflow,
              " but recomputed X=", x);
  }

  ensure_consistent(r);
  finish();
  return r;
}

}  // namespace tw
