// Routing-result validator.
//
// Lives in src/route (not src/check): its whole vocabulary — RoutingGraph,
// NetTargets, GlobalRouteResult — is route-layer, and the interchange
// engine self-audits with it, so placing it in src/check would force a
// route -> check-domain edge upward through the layering (see DESIGN.md
// "Layering (normative)"). check/validate.hpp re-exports it next to the
// other domain validators.
#pragma once

#include <vector>

#include "check/validation_report.hpp"
#include "route/interchange.hpp"

namespace tw {

/// Global-routing invariants: every selected route connects its net (one
/// alternative of every logical pin in one connected component), edge
/// usage equals the recount over selected routes, the total overflow
/// matches the per-edge excess over capacities, and the reported length
/// and unrouted count match the selections.
ValidationReport validate_routing(const RoutingGraph& g,
                                  const std::vector<NetTargets>& nets,
                                  const GlobalRouteResult& result);

}  // namespace tw
