// M-shortest loopless paths (Section 4.2.1), via Lawler's refinement of
// the deviation scheme.
//
// The paper generates the M shortest routes for two-pin nets with
// Lawler's algorithm. The best path is found by Dijkstra/A*; each
// subsequent path is the cheapest "deviation" from an already-found path,
// obtained by blocking the deviating edges and the root prefix's nodes
// and re-running the search from the spur node. Lawler's refinement over
// Yen's original scheme: every found path remembers the position it
// deviated from its parent at, and is only re-expanded from that position
// onward — deviations at earlier positions were already enumerated when
// the parent (or an older ancestor sharing the prefix) was expanded, so
// re-running them can only produce duplicates. This cuts the number of
// Dijkstra runs per accepted path from O(path length) to O(suffix
// length) without changing the returned path set.
//
// k_shortest_between_sets generalizes to node *sets* on both ends (the
// grown Steiner tree on one side, a pin's electrically-equivalent
// alternatives on the other) natively: the searches are multi-source /
// multi-target (no augmented graph copy), and the "source choice" and
// "target choice" become deviation positions of their own — position 0
// deviates the source (search from every source no found path uses), and
// a found path ending at the spur node removes its target from the spur
// search's target set.
#pragma once

#include <span>

#include "route/shortest_path.hpp"

namespace tw {

/// Up to `k` shortest simple paths from `s` to `t`, ascending by length.
std::vector<PathResult> k_shortest_paths(const RoutingGraph& g, NodeId s,
                                         NodeId t, int k);
std::vector<PathResult> k_shortest_paths(const RoutingGraph& g, NodeId s,
                                         NodeId t, int k, SearchWorkspace& ws);

/// Up to `k` shortest simple paths from any source to any target node.
/// Sources and targets must be disjoint (a target in the source set short-
/// circuits to a single zero-length path) and duplicate-free.
std::vector<PathResult> k_shortest_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, int k);
std::vector<PathResult> k_shortest_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, int k, SearchWorkspace& ws);

}  // namespace tw
