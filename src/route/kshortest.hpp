// M-shortest loopless paths (Section 4.2.1).
//
// The paper generates the M shortest routes for two-pin nets with Lawler's
// algorithm; we implement the classical deviation scheme (Yen's algorithm,
// of which Lawler's is the standard refinement): the best path is found by
// Dijkstra, and each subsequent path is the cheapest "deviation" from an
// already-found path, obtained by blocking the deviating edge and the root
// prefix's nodes and re-running Dijkstra from the spur node.
//
// k_shortest_between_sets generalizes to node *sets* on both ends (the
// grown Steiner tree on one side, a pin's electrically-equivalent
// alternatives on the other) by augmenting the graph with zero-length
// virtual terminals.
#pragma once

#include <span>

#include "route/shortest_path.hpp"

namespace tw {

/// Up to `k` shortest simple paths from `s` to `t`, ascending by length.
std::vector<PathResult> k_shortest_paths(const RoutingGraph& g, NodeId s,
                                         NodeId t, int k);

/// Up to `k` shortest simple paths from any source to any target node.
/// Sources and targets must be disjoint; paths are reported in the original
/// graph (virtual terminals stripped).
std::vector<PathResult> k_shortest_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, int k);

}  // namespace tw
