#include "route/channel_router.hpp"

#include <algorithm>
#include <map>

namespace tw {

int channel_density(const std::vector<ChannelSegment>& segments) {
  // Sweep: +1 at each segment start, -1 past each end. Touching intervals
  // of different nets do not stack (the via sits between them), matching
  // the left-edge sharing rule; same-net overlap counts once.
  //
  // Count per coordinate the number of distinct nets whose interval
  // strictly contains the unit [x, x+1).
  std::vector<std::pair<Coord, int>> events;
  // Merge same-net intervals first.
  std::map<std::int32_t, std::vector<Span>> by_net;
  for (const auto& s : segments) by_net[s.net].push_back(s.extent);
  for (auto& [net, spans] : by_net) {
    (void)net;
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.lo < b.lo; });
    Span cur = spans.front();
    for (std::size_t i = 1; i <= spans.size(); ++i) {
      if (i < spans.size() && spans[i].lo <= cur.hi) {
        cur.hi = std::max(cur.hi, spans[i].hi);
        continue;
      }
      if (cur.hi > cur.lo) {
        events.push_back({cur.lo, +1});
        events.push_back({cur.hi, -1});
      }
      if (i < spans.size()) cur = spans[i];
    }
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // process -1 before +1 at a point
            });
  int density = 0, current = 0;
  for (const auto& [x, delta] : events) {
    (void)x;
    current += delta;
    density = std::max(density, current);
  }
  return density;
}

ChannelRouteResult route_channel(const std::vector<ChannelSegment>& segments) {
  ChannelRouteResult r;
  r.track.assign(segments.size(), -1);
  r.density = channel_density(segments);

  // Merge each net's touching/overlapping segments into "wires" first —
  // they are the same piece of metal and must share one track, which is
  // also what makes plain left-edge optimal afterwards.
  struct Wire {
    Span extent;
    std::vector<std::size_t> members;  ///< indices into `segments`
  };
  std::map<std::int32_t, std::vector<std::size_t>> by_net;
  for (std::size_t i = 0; i < segments.size(); ++i)
    by_net[segments[i].net].push_back(i);
  std::vector<Wire> wires;
  for (auto& [net, idxs] : by_net) {
    (void)net;
    std::sort(idxs.begin(), idxs.end(), [&](std::size_t a, std::size_t b) {
      return segments[a].extent.lo < segments[b].extent.lo;
    });
    Wire cur{segments[idxs[0]].extent, {idxs[0]}};
    for (std::size_t k = 1; k <= idxs.size(); ++k) {
      if (k < idxs.size() && segments[idxs[k]].extent.lo <= cur.extent.hi) {
        cur.extent.hi = std::max(cur.extent.hi, segments[idxs[k]].extent.hi);
        cur.members.push_back(idxs[k]);
        continue;
      }
      wires.push_back(cur);
      if (k < idxs.size()) cur = Wire{segments[idxs[k]].extent, {idxs[k]}};
    }
  }

  // Left-edge over the wires: sort by left endpoint, pack each into the
  // lowest track whose rightmost occupied coordinate is at or before its
  // start (distinct nets may abut — the via sits between them).
  std::sort(wires.begin(), wires.end(), [](const Wire& a, const Wire& b) {
    if (a.extent.lo != b.extent.lo) return a.extent.lo < b.extent.lo;
    return a.extent.hi < b.extent.hi;
  });
  std::vector<Coord> track_right;
  for (const Wire& w : wires) {
    int assigned = -1;
    for (std::size_t t = 0; t < track_right.size(); ++t) {
      if (w.extent.lo >= track_right[t]) {
        assigned = static_cast<int>(t);
        break;
      }
    }
    if (assigned < 0) {
      track_right.push_back(w.extent.hi);
      assigned = static_cast<int>(track_right.size()) - 1;
    } else {
      track_right[static_cast<std::size_t>(assigned)] = w.extent.hi;
    }
    for (std::size_t idx : w.members) r.track[idx] = assigned;
  }
  r.tracks_used = static_cast<int>(track_right.size());
  return r;
}

int validate_channel_widths(
    const ChannelGraph& cg,
    const std::vector<std::vector<EdgeId>>& net_routes) {
  // Crossing intervals per region: a net that crosses a region occupies it
  // over the interval between its entry and exit points (projected on the
  // channel's length axis); approximate each crossing with the span
  // between the crossing points of consecutive route edges inside the
  // region, falling back to the single crossing point.
  std::vector<std::vector<ChannelSegment>> per_region(cg.regions.size());

  for (std::size_t n = 0; n < net_routes.size(); ++n) {
    // Collect this net's crossing coordinates per region.
    std::map<std::size_t, std::vector<Point>> touches;
    for (EdgeId e : net_routes[n]) {
      const auto& [sa, sb] = cg.edge_slabs[static_cast<std::size_t>(e)];
      if (sa < 0 || sa == sb) continue;
      const Rect& ra = cg.slabs[static_cast<std::size_t>(sa)];
      const Rect& rb = cg.slabs[static_cast<std::size_t>(sb)];
      Point crossing;
      if (ra.yhi == rb.ylo || rb.yhi == ra.ylo) {
        const Span ov = ra.xspan().intersect(rb.xspan());
        crossing = {(ov.lo + ov.hi) / 2, ra.yhi == rb.ylo ? ra.yhi : rb.yhi};
      } else {
        const Span ov = ra.yspan().intersect(rb.yspan());
        crossing = {ra.xhi == rb.xlo ? ra.xhi : rb.xhi, (ov.lo + ov.hi) / 2};
      }
      for (std::size_t r = 0; r < cg.regions.size(); ++r)
        if (cg.regions[r].rect.contains(crossing))
          touches[r].push_back(crossing);
    }
    for (const auto& [r, pts] : touches) {
      const CriticalRegion& region = cg.regions[r];
      Coord lo = region.vertical ? pts[0].y : pts[0].x;
      Coord hi = lo;
      for (const Point& p : pts) {
        const Coord c = region.vertical ? p.y : p.x;
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
      // A pass-through crossing occupies at least one track pitch.
      if (hi == lo) ++hi;
      per_region[r].push_back(
          {static_cast<std::int32_t>(n), Span{lo, hi}});
    }
  }

  int violations = 0;
  for (const auto& segments : per_region) {
    if (segments.empty()) continue;
    const ChannelRouteResult r = route_channel(segments);
    if (r.tracks_used > r.density + 1) ++violations;
  }
  return violations;
}

}  // namespace tw
