#include "route/graph.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace tw {
namespace {

std::uint64_t next_graph_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

RoutingGraph::RoutingGraph() : uid_(next_graph_uid()) {}

RoutingGraph::RoutingGraph(const RoutingGraph& o)
    : uid_(next_graph_uid()), pos_(o.pos_), edges_(o.edges_), adj_(o.adj_) {}

RoutingGraph& RoutingGraph::operator=(const RoutingGraph& o) {
  if (this != &o) {
    uid_ = next_graph_uid();
    pos_ = o.pos_;
    edges_ = o.edges_;
    adj_ = o.adj_;
  }
  return *this;
}

RoutingGraph::RoutingGraph(RoutingGraph&& o) noexcept
    : uid_(std::exchange(o.uid_, next_graph_uid())),
      pos_(std::move(o.pos_)),
      edges_(std::move(o.edges_)),
      adj_(std::move(o.adj_)) {
  o.pos_.clear();
  o.edges_.clear();
  o.adj_.clear();
}

RoutingGraph& RoutingGraph::operator=(RoutingGraph&& o) noexcept {
  if (this != &o) {
    uid_ = std::exchange(o.uid_, next_graph_uid());
    pos_ = std::move(o.pos_);
    edges_ = std::move(o.edges_);
    adj_ = std::move(o.adj_);
    o.pos_.clear();
    o.edges_.clear();
    o.adj_.clear();
  }
  return *this;
}

NodeId RoutingGraph::add_node(Point pos) {
  pos_.push_back(pos);
  adj_.emplace_back();
  return static_cast<NodeId>(pos_.size() - 1);
}

EdgeId RoutingGraph::add_edge(NodeId a, NodeId b, double length, int capacity) {
  if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= pos_.size() ||
      static_cast<std::size_t>(b) >= pos_.size())
    throw std::invalid_argument("add_edge: unknown node");
  if (a == b) throw std::invalid_argument("add_edge: self loop");
  if (length < 0.0) throw std::invalid_argument("add_edge: negative length");
  GraphEdge e{a, b, length, capacity};
  edges_.push_back(e);
  const EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
  adj_[static_cast<std::size_t>(a)].push_back(id);
  adj_[static_cast<std::size_t>(b)].push_back(id);
  return id;
}

double RoutingGraph::path_length(const std::vector<EdgeId>& path) const {
  double sum = 0.0;
  for (EdgeId e : path) sum += edge(e).length;
  return sum;
}

std::vector<NodeId> RoutingGraph::walk_nodes(
    NodeId from, const std::vector<EdgeId>& path) const {
  std::vector<NodeId> nodes{from};
  NodeId cur = from;
  for (EdgeId eid : path) {
    const GraphEdge& e = edge(eid);
    if (e.a != cur && e.b != cur) return {};
    cur = e.other(cur);
    nodes.push_back(cur);
  }
  return nodes;
}

}  // namespace tw
