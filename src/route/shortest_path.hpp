// Goal-directed shortest paths on the routing graph, with optional
// blocked edges/nodes (needed by the Lawler deviation scheme) and
// optional per-edge extra costs (used by the congestion-aware routers).
//
// Every query runs on a SearchWorkspace (epoch-stamped state, reusable
// heap — see search_workspace.hpp) and, when the workspace's geometric
// scale allows it, as A* toward the bounding box of the target positions.
// A* changes which nodes are explored but never the returned path
// lengths; ties are broken deterministically by (priority, node id).
// The legacy overloads without a workspace remain for convenience and
// build a fresh workspace per call — hot paths should thread one through.
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "route/graph.hpp"
#include "route/search_workspace.hpp"

namespace tw {

struct PathResult {
  std::vector<EdgeId> edges;  ///< in walk order from `src`
  double length = 0.0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;

  friend bool operator==(const PathResult&, const PathResult&) = default;
};

struct PathQuery {
  /// Edges that may not be used (size num_edges, or empty for none).
  const std::vector<char>* blocked_edges = nullptr;
  /// Nodes that may not be visited (size num_nodes, or empty for none).
  /// Source/target nodes themselves must not be blocked.
  const std::vector<char>* blocked_nodes = nullptr;
  /// Additive per-edge cost on top of the edge length (congestion
  /// models). Must be non-negative — A* admissibility relies on edge
  /// weights never dropping below the geometric edge length.
  const std::vector<double>* extra_cost = nullptr;
  /// Paths costing strictly more than this are not wanted: the search
  /// never pushes a node whose lower bound d + h exceeds the cap
  /// (equal-cost paths are kept). The deviation algorithm caps spur
  /// searches at the candidate length that would be the last one emitted.
  double cost_cap = std::numeric_limits<double>::infinity();
};

/// When the low-level search may stop.
enum class SearchStop {
  kFirstTarget,   ///< at the first (nearest) settled target
  kAllTargets,    ///< once every reachable target is settled
  kAllReachable,  ///< never early — settle everything reachable
};

/// Low-level search core. Runs Dijkstra/A* from `sources` over `g`,
/// honoring both the query's blocked vectors and the workspace's
/// persistent block marks (callers that don't manage ws blocks should use
/// the wrappers below, which clear them). Results are read back through
/// `ws.dist()` / `ws.via_edge()` / `extract_path`; with kFirstTarget the
/// settled target is returned (kInvalidNode when no target is
/// reachable). Under kFirstTarget/kAllTargets only target distances are
/// guaranteed final; other settled nodes may carry non-final labels when
/// A* terminated early.
NodeId search(const RoutingGraph& g, std::span<const NodeId> sources,
              std::span<const NodeId> targets, const PathQuery& q,
              SearchWorkspace& ws,
              SearchStop stop = SearchStop::kFirstTarget);

/// Reads the path to `target` out of the workspace after a search(),
/// reusing `out.edges`' capacity. False when `target` was not reached.
bool extract_path(const RoutingGraph& g, const SearchWorkspace& ws,
                  NodeId target, PathResult& out);

/// Shortest path between two nodes. nullopt when unreachable.
std::optional<PathResult> shortest_path(const RoutingGraph& g, NodeId s,
                                        NodeId t, const PathQuery& q = {});
std::optional<PathResult> shortest_path(const RoutingGraph& g, NodeId s,
                                        NodeId t, const PathQuery& q,
                                        SearchWorkspace& ws);

/// Shortest path from any node in `sources` to any node in `targets`
/// (multi-source, multi-target). The returned PathResult records which
/// source and target were used; ties among equally-near targets resolve
/// deterministically through the heap order (under plain Dijkstra that is
/// the smallest node id; goal direction may prefer a different — equally
/// near — target, but is itself a pure function of the query).
std::optional<PathResult> shortest_path_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, const PathQuery& q = {});
std::optional<PathResult> shortest_path_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, const PathQuery& q, SearchWorkspace& ws);

/// Distances from the source set to every node (infinity when
/// unreachable). One Dijkstra answers "which pin is nearest to the tree"
/// for all pins at once — the Prim-ordering hot path.
std::vector<double> shortest_distances(const RoutingGraph& g,
                                       std::span<const NodeId> sources,
                                       const PathQuery& q = {});
void shortest_distances(const RoutingGraph& g,
                        std::span<const NodeId> sources, const PathQuery& q,
                        SearchWorkspace& ws, std::vector<double>& out);

}  // namespace tw
