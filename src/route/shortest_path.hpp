// Dijkstra shortest paths on the routing graph, with optional blocked
// edges/nodes (needed by the Lawler/Yen deviation scheme) and optional
// per-edge extra costs (used by the sequential baseline router to model
// congestion).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "route/graph.hpp"

namespace tw {

struct PathResult {
  std::vector<EdgeId> edges;  ///< in walk order from `src`
  double length = 0.0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;

  friend bool operator==(const PathResult&, const PathResult&) = default;
};

struct PathQuery {
  /// Edges that may not be used (size num_edges, or empty for none).
  const std::vector<char>* blocked_edges = nullptr;
  /// Nodes that may not be visited (size num_nodes, or empty for none).
  /// Source/target nodes themselves must not be blocked.
  const std::vector<char>* blocked_nodes = nullptr;
  /// Additive per-edge cost on top of the edge length (congestion models).
  const std::vector<double>* extra_cost = nullptr;
};

/// Shortest path between two nodes. nullopt when unreachable.
std::optional<PathResult> shortest_path(const RoutingGraph& g, NodeId s,
                                        NodeId t, const PathQuery& q = {});

/// Shortest path from any node in `sources` to any node in `targets`
/// (multi-source, multi-target). The returned PathResult records which
/// source and target were used.
std::optional<PathResult> shortest_path_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, const PathQuery& q = {});

/// Distances from the source set to every node (infinity when
/// unreachable). One Dijkstra answers "which pin is nearest to the tree"
/// for all pins at once — the Prim-ordering hot path.
std::vector<double> shortest_distances(const RoutingGraph& g,
                                       std::span<const NodeId> sources,
                                       const PathQuery& q = {});

}  // namespace tw
