#include "route/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "route/steiner.hpp"

namespace tw {
namespace {

using check_detail::add_issue;

bool near(double a, double b, double eps = 1e-9) {
  return std::abs(a - b) <= eps * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

}  // namespace

ValidationReport validate_routing(const RoutingGraph& g,
                                  const std::vector<NetTargets>& nets,
                                  const GlobalRouteResult& result) {
  ValidationReport r;
  if (result.choice.size() != nets.size() ||
      result.alternatives.size() != nets.size()) {
    add_issue(r, "result", "sizes (choice=", result.choice.size(),
              ", alternatives=", result.alternatives.size(), ") != net count ",
              nets.size());
    return r;
  }
  if (result.edge_usage.size() != g.num_edges()) {
    add_issue(r, "result", "edge_usage size ", result.edge_usage.size(),
              " != edge count ", g.num_edges());
    return r;
  }

  std::vector<int> usage(g.num_edges(), 0);
  double length = 0.0;
  int unrouted = 0;
  for (std::size_t n = 0; n < nets.size(); ++n) {
    std::ostringstream where;
    where << "net " << n;
    const int choice = result.choice[n];
    if (choice < 0) {
      ++unrouted;
      continue;
    }
    if (static_cast<std::size_t>(choice) >= result.alternatives[n].size()) {
      add_issue(r, where.str(), "choice ", choice, " of ",
                result.alternatives[n].size(), " alternatives");
      continue;
    }
    const Route& route = result.alternatives[n][static_cast<std::size_t>(choice)];
    for (EdgeId e : route.edges) {
      if (e < 0 || static_cast<std::size_t>(e) >= g.num_edges()) {
        add_issue(r, where.str(), "edge ", e, " out of range");
        continue;
      }
      ++usage[static_cast<std::size_t>(e)];
    }
    if (!std::is_sorted(route.edges.begin(), route.edges.end()) ||
        std::adjacent_find(route.edges.begin(), route.edges.end()) !=
            route.edges.end())
      add_issue(r, where.str(), "route edges not sorted/deduplicated");
    if (!route_connects(g, nets[n], route))
      add_issue(r, where.str(), "selected route does not connect the net");
    if (!near(route.length, g.path_length(route.edges)))
      add_issue(r, where.str(), "route length ", route.length,
                " != edge-length sum ", g.path_length(route.edges));
    length += route.length;
  }

  for (std::size_t e = 0; e < usage.size(); ++e)
    if (usage[e] != result.edge_usage[e])
      add_issue(r, "edge " + std::to_string(e), "usage counter ",
                result.edge_usage[e], " != recount ", usage[e]);
  const int overflow = total_overflow(g, usage);
  if (overflow != result.total_overflow)
    add_issue(r, "result", "total_overflow ", result.total_overflow,
              " != recomputed ", overflow);
  if (unrouted != result.unrouted_nets)
    add_issue(r, "result", "unrouted_nets ", result.unrouted_nets,
              " != recount ", unrouted);
  if (!near(length, result.total_length))
    add_issue(r, "result", "total_length ", result.total_length,
              " != recomputed ", length);
  return r;
}

}  // namespace tw
