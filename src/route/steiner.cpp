#include "route/steiner.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace tw {
namespace {

/// A partially-built tree in the beam.
struct PartialTree {
  std::vector<EdgeId> edges;   ///< sorted unique
  std::vector<NodeId> nodes;   ///< sorted unique (the target set)
  std::vector<char> connected; ///< per logical pin
  double length = 0.0;
};

void insert_sorted_unique(std::vector<NodeId>& v, NodeId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

/// Merges a path into the tree, skipping edges already present; returns the
/// added length.
double merge_path(const RoutingGraph& g, PartialTree& t,
                  const PathResult& path) {
  double added = 0.0;
  for (EdgeId e : path.edges) {
    auto it = std::lower_bound(t.edges.begin(), t.edges.end(), e);
    if (it != t.edges.end() && *it == e) continue;
    t.edges.insert(it, e);
    added += g.edge(e).length;
    insert_sorted_unique(t.nodes, g.edge(e).a);
    insert_sorted_unique(t.nodes, g.edge(e).b);
  }
  // Zero-length paths (target already in tree) still mark the endpoint.
  insert_sorted_unique(t.nodes, path.dst);
  return added;
}

/// Marks every logical pin that the tree now reaches (a later path may
/// incidentally pass through another pin's node).
void mark_connected(const NetTargets& net, PartialTree& t) {
  for (std::size_t p = 0; p < net.pins.size(); ++p) {
    if (t.connected[p]) continue;
    for (NodeId alt : net.pins[p]) {
      if (std::binary_search(t.nodes.begin(), t.nodes.end(), alt)) {
        t.connected[p] = 1;
        break;
      }
    }
  }
}

/// One goal-directed sweep from `sources` that settles every alternative
/// of every unconnected pin; per-pin distances are then read straight off
/// the workspace (no dense distance vector).
void sweep_to_unconnected(const RoutingGraph& g, const NetTargets& net,
                          const std::vector<char>& connected,
                          std::span<const NodeId> sources, const PathQuery& q,
                          SearchWorkspace& ws,
                          std::vector<NodeId>& alt_scratch) {
  alt_scratch.clear();
  for (std::size_t p = 0; p < net.pins.size(); ++p) {
    if (connected[p]) continue;
    for (NodeId alt : net.pins[p]) alt_scratch.push_back(alt);
  }
  ws.clear_blocks();
  search(g, sources, alt_scratch, q, ws, SearchStop::kAllTargets);
}

/// The logical pin owning node `alt` among the unconnected pins (-1 when
/// none does).
int pin_of_alternative(const NetTargets& net, const std::vector<char>& connected,
                       NodeId alt) {
  for (std::size_t p = 0; p < net.pins.size(); ++p) {
    if (connected[p]) continue;
    for (NodeId a : net.pins[p])
      if (a == alt) return static_cast<int>(p);
  }
  return -1;
}

/// The unconnected logical pins ordered by shortest-path distance from the
/// tree (Prim order). Empty when all pins are connected; {-2} when no
/// unconnected pin is reachable. `full_order` asks for every reachable pin
/// sorted (one exhaustive-over-targets sweep); without it only the nearest
/// pin is found, via a first-target search that stops at the closest
/// alternative instead of settling them all — the common (prim_k == 0)
/// case pays a fraction of the sweep.
std::vector<int> nearest_unconnected(const RoutingGraph& g,
                                     const NetTargets& net,
                                     const PartialTree& t, bool full_order,
                                     SearchWorkspace& ws,
                                     std::vector<NodeId>& alt_scratch) {
  bool any_unconnected = false;
  for (std::size_t p = 0; p < net.pins.size(); ++p)
    if (!t.connected[p]) any_unconnected = true;
  if (!any_unconnected) return {};

  if (!full_order) {
    alt_scratch.clear();
    for (std::size_t p = 0; p < net.pins.size(); ++p) {
      if (t.connected[p]) continue;
      for (NodeId alt : net.pins[p]) alt_scratch.push_back(alt);
    }
    ws.clear_blocks();
    const NodeId hit = search(g, t.nodes, alt_scratch, {}, ws);
    if (hit == kInvalidNode) return {-2};
    return {pin_of_alternative(net, t.connected, hit)};
  }

  sweep_to_unconnected(g, net, t.connected, t.nodes, {}, ws, alt_scratch);
  std::vector<std::pair<double, int>> order;
  for (std::size_t p = 0; p < net.pins.size(); ++p) {
    if (t.connected[p]) continue;
    double d = std::numeric_limits<double>::infinity();
    for (NodeId alt : net.pins[p]) d = std::min(d, ws.dist(alt));
    if (d == std::numeric_limits<double>::infinity()) continue;
    order.push_back({d, static_cast<int>(p)});
  }
  if (order.empty()) return {-2};
  std::sort(order.begin(), order.end());
  std::vector<int> pins;
  pins.reserve(order.size());
  for (const auto& [d, p] : order) pins.push_back(p);
  return pins;
}

}  // namespace

std::vector<Route> m_best_routes(const RoutingGraph& g, const NetTargets& net,
                                 const SteinerParams& params) {
  SearchWorkspace ws;
  return m_best_routes(g, net, params, ws);
}

std::vector<Route> m_best_routes(const RoutingGraph& g, const NetTargets& net,
                                 const SteinerParams& params,
                                 SearchWorkspace& ws) {
  std::vector<Route> out;
  if (net.pins.size() <= 1) {
    out.push_back({});
    return out;
  }
  for (const auto& alts : net.pins)
    if (alts.empty()) return {};  // a pin with no node cannot be connected

  const int m = std::max(1, params.m);
  const int beam_width =
      static_cast<int>(net.pins.size()) > params.wide_net_threshold ? 1 : m;

  // Start from the first logical pin (the paper picks an arbitrary start).
  std::vector<PartialTree> beam;
  {
    PartialTree t;
    t.connected.assign(net.pins.size(), 0);
    t.nodes.assign(net.pins[0].begin(), net.pins[0].end());
    std::sort(t.nodes.begin(), t.nodes.end());
    t.nodes.erase(std::unique(t.nodes.begin(), t.nodes.end()), t.nodes.end());
    t.connected[0] = 1;
    mark_connected(net, t);
    beam.push_back(std::move(t));
  }

  // The full Prim order is only consumed when footnote 27's multi-pin
  // branching is on; the default branches on the nearest pin alone.
  const bool full_order = params.prim_k > 0;
  std::vector<NodeId> alt_scratch;
  for (std::size_t level = 1; level < net.pins.size(); ++level) {
    std::vector<PartialTree> next;
    for (const PartialTree& t : beam) {
      const std::vector<int> pins =
          nearest_unconnected(g, net, t, full_order, ws, alt_scratch);
      if (pins.empty()) {
        next.push_back(t);  // already complete
        continue;
      }
      if (pins[0] == -2) continue;  // unreachable from this tree

      // Footnote 27: branch over the nearest pin plus up to prim_k more.
      const std::size_t branch =
          std::min(pins.size(),
                   static_cast<std::size_t>(1 + std::max(0, params.prim_k)));
      for (std::size_t b = 0; b < branch; ++b) {
        const int pin = pins[b];
        const auto paths = k_shortest_between_sets(
            g, t.nodes, net.pins[static_cast<std::size_t>(pin)], beam_width,
            ws);
        for (const auto& path : paths) {
          PartialTree nt = t;
          nt.length += merge_path(g, nt, path);
          nt.connected[static_cast<std::size_t>(pin)] = 1;
          mark_connected(net, nt);
          next.push_back(std::move(nt));
        }
      }
    }
    if (next.empty()) return {};

    // Keep the best `beam_width` distinct trees.
    std::sort(next.begin(), next.end(),
              [](const PartialTree& a, const PartialTree& b) {
                if (a.length != b.length) return a.length < b.length;
                return a.edges < b.edges;
              });
    next.erase(std::unique(next.begin(), next.end(),
                           [](const PartialTree& a, const PartialTree& b) {
                             return a.edges == b.edges;
                           }),
               next.end());
    if (static_cast<int>(next.size()) > beam_width)
      next.resize(static_cast<std::size_t>(beam_width));
    beam = std::move(next);
  }

  std::set<std::vector<EdgeId>> seen;
  for (const PartialTree& t : beam) {
    const bool complete =
        std::all_of(t.connected.begin(), t.connected.end(),
                    [](char c) { return c != 0; });
    if (!complete) continue;
    if (!seen.insert(t.edges).second) continue;
    out.push_back({t.edges, t.length});
    if (static_cast<int>(out.size()) >= m) break;
  }
  return out;
}

std::optional<Route> greedy_route(const RoutingGraph& g, const NetTargets& net,
                                  const std::vector<double>* extra_cost) {
  SearchWorkspace ws;
  return greedy_route(g, net, extra_cost, ws);
}

std::optional<Route> greedy_route(const RoutingGraph& g, const NetTargets& net,
                                  const std::vector<double>* extra_cost,
                                  SearchWorkspace& ws) {
  Route route;
  if (net.pins.size() <= 1) return route;

  PathQuery q;
  q.extra_cost = extra_cost;

  std::vector<NodeId> tree(net.pins[0].begin(), net.pins[0].end());
  std::sort(tree.begin(), tree.end());
  tree.erase(std::unique(tree.begin(), tree.end()), tree.end());
  std::vector<char> connected(net.pins.size(), 0);
  connected[0] = 1;

  std::vector<NodeId> alt_scratch;
  PathResult pr;
  for (std::size_t step = 1; step < net.pins.size(); ++step) {
    // Nearest unconnected pin under congested costs: one first-target
    // search finds the closest alternative of any unconnected pin; its
    // path comes straight off the same search's parent edges.
    alt_scratch.clear();
    for (std::size_t p = 0; p < net.pins.size(); ++p) {
      if (connected[p]) continue;
      for (NodeId alt : net.pins[p]) alt_scratch.push_back(alt);
    }
    ws.clear_blocks();
    const NodeId hit = search(g, tree, alt_scratch, q, ws);
    int best = -1;
    const PathResult* best_path = nullptr;
    if (hit != kInvalidNode) {
      best = pin_of_alternative(net, connected, hit);
      extract_path(g, ws, hit, pr);
      best_path = &pr;
    }
    if (best < 0) {
      // Some pin may already be covered by the grown tree.
      bool all = true;
      for (std::size_t p = 0; p < net.pins.size(); ++p)
        if (!connected[p]) all = false;
      if (all) break;
      return std::nullopt;
    }

    for (EdgeId e : best_path->edges) {
      auto it = std::lower_bound(route.edges.begin(), route.edges.end(), e);
      if (it != route.edges.end() && *it == e) continue;
      route.edges.insert(it, e);
      route.length += g.edge(e).length;
      for (NodeId n : {g.edge(e).a, g.edge(e).b}) {
        auto nit = std::lower_bound(tree.begin(), tree.end(), n);
        if (nit == tree.end() || *nit != n) tree.insert(nit, n);
      }
    }
    {
      auto nit = std::lower_bound(tree.begin(), tree.end(), best_path->dst);
      if (nit == tree.end() || *nit != best_path->dst)
        tree.insert(nit, best_path->dst);
    }
    connected[static_cast<std::size_t>(best)] = 1;
    // Equivalent alternatives of the connected pin become targets too.
    for (NodeId alt : net.pins[static_cast<std::size_t>(best)]) {
      auto nit = std::lower_bound(tree.begin(), tree.end(), alt);
      if (nit == tree.end() || *nit != alt) tree.insert(nit, alt);
    }
    // A path may have run through other pins' nodes.
    for (std::size_t p = 0; p < net.pins.size(); ++p) {
      if (connected[p]) continue;
      for (NodeId alt : net.pins[p])
        if (std::binary_search(tree.begin(), tree.end(), alt)) {
          connected[p] = 1;
          break;
        }
    }
  }
  return route;
}


bool route_connects(const RoutingGraph& g, const NetTargets& net,
                    const Route& route) {
  if (net.pins.size() <= 1) return true;

  // Union-find over graph nodes. Route edges connect their endpoints, and
  // the alternatives of one logical pin are connected *through the cell*
  // (electrical equivalence, e.g. the two ends of a feed-through), so a
  // valid route may be a forest whose components are bridged by
  // equivalent-pin pairs.
  // Union-find scratch, not shortest-path state.
  std::vector<NodeId> parent(g.num_nodes());  // lint: allow(route-workspace)
  for (std::size_t i = 0; i < parent.size(); ++i)
    parent[i] = static_cast<NodeId>(i);
  auto find = [&](NodeId x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  auto unite = [&](NodeId a, NodeId b) {
    const NodeId ra = find(a);
    const NodeId rb = find(b);
    if (ra != rb) parent[static_cast<std::size_t>(ra)] = rb;
  };
  for (EdgeId e : route.edges) unite(g.edge(e).a, g.edge(e).b);
  for (const auto& alts : net.pins)
    for (std::size_t i = 1; i < alts.size(); ++i) unite(alts[0], alts[i]);

  // A pin participates in the route through an alternative that either lies
  // on a route edge or coincides with another pin's alternative; after the
  // unions above, it suffices that all pins share one component and that
  // each pin's class touches the route (or the route is empty and all pins
  // already coincide).
  std::vector<char> on_route(g.num_nodes(), 0);
  for (EdgeId e : route.edges) {
    on_route[static_cast<std::size_t>(g.edge(e).a)] = 1;
    on_route[static_cast<std::size_t>(g.edge(e).b)] = 1;
  }

  const NodeId root = find(net.pins[0][0]);
  for (const auto& alts : net.pins) {
    if (find(alts[0]) != root) return false;
    if (route.edges.empty()) continue;  // coincidence check handled above
    bool touches = false;
    for (NodeId alt : alts)
      if (on_route[static_cast<std::size_t>(alt)]) {
        touches = true;
        break;
      }
    // A pin may also legitimately coincide with another pin's node without
    // touching a route edge; detect via shared components of zero size.
    if (!touches) {
      for (const auto& other : net.pins) {
        if (&other == &alts) continue;
        for (NodeId a : alts)
          for (NodeId b : other)
            if (a == b) {
              touches = true;
              break;
            }
      }
    }
    if (!touches) return false;
  }
  return true;
}

}  // namespace tw
