// The routing graph: the only input the global router needs besides the
// net list (Section 4.2 — "the global router is independent of the layout
// style since the only inputs to the algorithm are a net list and a
// channel graph"). Nodes carry positions (for path lengths and for
// nearest-pin ordering); edges carry a length and a capacity (the number
// of tracks the channel edge can accommodate).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.hpp"

namespace tw {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

struct GraphEdge {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double length = 0.0;
  int capacity = 0;

  NodeId other(NodeId n) const { return n == a ? b : a; }
};

class RoutingGraph {
public:
  RoutingGraph();
  // Copies and moves (and moved-from graphs) receive a fresh uid, so a
  // uid never refers to two graphs with different edges (see uid()).
  RoutingGraph(const RoutingGraph& o);
  RoutingGraph& operator=(const RoutingGraph& o);
  RoutingGraph(RoutingGraph&& o) noexcept;
  RoutingGraph& operator=(RoutingGraph&& o) noexcept;

  NodeId add_node(Point pos);
  EdgeId add_edge(NodeId a, NodeId b, double length, int capacity);

  std::size_t num_nodes() const { return pos_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  Point node_pos(NodeId n) const { return pos_[static_cast<std::size_t>(n)]; }
  const GraphEdge& edge(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }
  const std::vector<GraphEdge>& edges() const { return edges_; }

  /// Edge ids incident to node `n`.
  const std::vector<EdgeId>& incident(NodeId n) const {
    return adj_[static_cast<std::size_t>(n)];
  }

  /// Total length of a path given as a list of edge ids.
  double path_length(const std::vector<EdgeId>& path) const;

  /// Checks that `path` is a connected walk from `from` to `to`; returns
  /// the node sequence (empty when invalid).
  std::vector<NodeId> walk_nodes(NodeId from,
                                 const std::vector<EdgeId>& path) const;

  /// Process-unique identity of this graph object's edge history. Graphs
  /// are append-only and every construction/assignment (including the
  /// moved-from side of a move) draws a fresh uid, so a (uid, num_edges)
  /// pair identifies an immutable edge prefix — what SearchWorkspace keys
  /// its incremental A* scale cache on.
  std::uint64_t uid() const { return uid_; }

private:
  std::uint64_t uid_;
  std::vector<Point> pos_;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<EdgeId>> adj_;
};

}  // namespace tw
