// The classical sequential (net-at-a-time) global router used as the
// baseline for the order-dependence comparison (Section 4.2.2): nets are
// routed one after another in a caller-supplied order; each net takes the
// cheapest route on a graph whose congested edges carry an additive
// penalty. Early nets grab the short channels and later nets detour — so
// the result depends on the order, which bench_router_order demonstrates
// by shuffling.
#pragma once

#include <span>

#include "recover/budget.hpp"
#include "route/steiner.hpp"

namespace tw {

/// Reusable scratch for route_sequential: the search workspace plus the
/// per-edge penalty vector. Callers that route many instances on graphs of
/// similar size pass one scratch to every call and pay the O(V + E) vector
/// growth only once; the penalty vector is reset (values, not capacity) at
/// the start of each call.
struct SequentialScratch {
  SearchWorkspace ws;
  std::vector<double> extra;  ///< per-edge additive penalty, >= 0 throughout
};

struct SequentialParams {
  /// Additive cost per unit of existing overflow on an edge (soft
  /// congestion avoidance; a saturated edge costs length + penalty*excess).
  /// Must be >= 0: penalties only ever grow during a run (monotone in the
  /// number of nets routed), and non-negative extra costs are what keeps
  /// the workspace's A* heuristic admissible (see search_workspace.hpp).
  double congestion_penalty = 1e4;
  /// Optional work budget (non-owning): one move per routed net; on expiry
  /// the remaining nets are left unrouted.
  recover::RunBudget* budget = nullptr;
  /// Optional reusable scratch (non-owning). nullptr uses a private one.
  SequentialScratch* scratch = nullptr;
};

struct SequentialResult {
  std::vector<Route> routes;  ///< per net (empty edges+length 0 if unroutable)
  std::vector<int> edge_usage;
  double total_length = 0.0;
  int total_overflow = 0;
  int unrouted_nets = 0;
};

/// Routes `nets` in the order given by `order` (a permutation of net
/// indices; empty means natural order).
SequentialResult route_sequential(const RoutingGraph& g,
                                  const std::vector<NetTargets>& nets,
                                  std::span<const int> order = {},
                                  const SequentialParams& params = {});

}  // namespace tw
