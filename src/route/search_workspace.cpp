#include "route/search_workspace.hpp"

#include <algorithm>

namespace tw {

void SearchWorkspace::bind(const RoutingGraph& g) {
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  if (dist_gen_.size() < n) {
    dist_gen_.resize(n, 0);
    target_gen_.resize(n, 0);
    label_gen_.resize(n, 0);
    nblock_gen_.resize(n, 0);
    dist_.resize(n, kInf);
    via_.resize(n, kNoEdge);
    label_.resize(n, -1);
    hdist_gen_.resize(n, 0);
    hdist_.resize(n, kInf);
    hvia_.resize(n, kNoEdge);
  }
  if (eblock_gen_.size() < m) eblock_gen_.resize(m, 0);

  // Derive (incrementally — graphs are append-only) the largest scale
  // `alpha` with alpha * manhattan(pos(a), pos(b)) <= length for every
  // edge. When every edge is at least its endpoint manhattan distance the
  // scale is exactly 1 (the channel-graph case: lengths are exact
  // manhattans, so h is tight); otherwise the minimum length/manhattan
  // ratio is shaved by a relative 1e-12 so that float rounding in
  // `h = alpha * manhattan` can never tip the heuristic above a true
  // remaining distance. A fresh uid or a shrunken edge count (the graph
  // was moved-from and refilled) restarts the scan.
  if (g.uid() != bound_uid_ || m < scanned_edges_) {
    bound_uid_ = g.uid();
    scanned_edges_ = 0;
    all_at_least_manhattan_ = true;
    min_ratio_ = kInf;
  }
  const auto& edges = g.edges();
  for (std::size_t i = scanned_edges_; i < m; ++i) {
    const GraphEdge& e = edges[i];
    const double md =
        static_cast<double>(manhattan(g.node_pos(e.a), g.node_pos(e.b)));
    if (md <= 0.0) continue;  // coincident endpoints constrain nothing
    if (e.length < md) all_at_least_manhattan_ = false;
    min_ratio_ = std::min(min_ratio_, e.length / md);
  }
  scanned_edges_ = m;
  if (all_at_least_manhattan_)
    alpha_ = 1.0;
  else
    alpha_ = std::max(0.0, min_ratio_ * (1.0 - 1e-12));
}

void SearchWorkspace::heap_push(double f, double d, NodeId node) {
  ++counters.heap_pushes;
  heap_.push_back({f, d, node});
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t p = (i - 1) / 2;
    if (!heap_before(heap_[i], heap_[p])) break;
    std::swap(heap_[i], heap_[p]);
    i = p;
  }
}

bool SearchWorkspace::heap_pop(HeapEntry& out) {
  if (heap_.empty()) return false;
  out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t best = i;
    if (l < n && heap_before(heap_[l], heap_[best])) best = l;
    if (r < n && heap_before(heap_[r], heap_[best])) best = r;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return true;
}

}  // namespace tw
