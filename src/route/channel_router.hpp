// A classical channel router (left-edge algorithm) — the detailed-routing
// substrate behind Eqn 22.
//
// The paper sizes every channel as w = (d + 2) * t_s because "channel
// routers are currently available which routinely route a channel in a
// number of tracks t such that t <= (d + 1)" (it cites YACR2). This module
// provides that substrate: given the net segments crossing a channel as
// intervals along its length, the left-edge algorithm assigns each segment
// to a track such that segments on one track never overlap; without
// vertical constraints the algorithm is optimal, using exactly d tracks
// (d = channel density). The flow uses it to *validate* the Eqn 22 rule on
// routed channels (see validate_channel_widths and the Eqn 22 tests).
#pragma once

#include <vector>

#include "channel/channel_graph.hpp"

namespace tw {

/// One horizontal (along-channel) wiring segment of a net.
struct ChannelSegment {
  std::int32_t net = -1;
  Span extent;  ///< interval along the channel length
};

struct ChannelRouteResult {
  /// Track index per input segment (0-based, bottom track first).
  std::vector<int> track;
  int tracks_used = 0;
  int density = 0;  ///< max number of segments crossing any coordinate
};

/// Left-edge track assignment. Segments of the *same net* may share a
/// track even when they touch; distinct nets on one track must be
/// disjoint (touching endpoints are allowed — a router inserts the via
/// between them). Optimal: tracks_used == density.
ChannelRouteResult route_channel(const std::vector<ChannelSegment>& segments);

/// Density of a segment set: the classical lower bound on track count.
int channel_density(const std::vector<ChannelSegment>& segments);

/// Extracts, for every critical region of `cg`, the along-channel segments
/// implied by the selected global routes (each net crossing the region
/// contributes its crossing interval), runs the left-edge router on each,
/// and checks the Eqn 22 premise t <= d + 1. Returns the number of
/// channels whose track need exceeded d + 1 (0 in a correct build).
int validate_channel_widths(const ChannelGraph& cg,
                            const std::vector<std::vector<EdgeId>>& net_routes);

}  // namespace tw
