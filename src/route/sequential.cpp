#include "route/sequential.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "check/contracts.hpp"
#include "route/interchange.hpp"

namespace tw {

SequentialResult route_sequential(const RoutingGraph& g,
                                  const std::vector<NetTargets>& nets,
                                  std::span<const int> order,
                                  const SequentialParams& params) {
  SequentialResult r;
  r.routes.resize(nets.size());
  r.edge_usage.assign(g.num_edges(), 0);

  std::vector<int> natural;
  if (order.empty()) {
    natural.resize(nets.size());
    std::iota(natural.begin(), natural.end(), 0);
    order = natural;
  }

  SequentialScratch local;
  SequentialScratch& scratch =
      params.scratch != nullptr ? *params.scratch : local;
  std::vector<double>& extra = scratch.extra;
  extra.assign(g.num_edges(), 0.0);  // reuses capacity on a warm scratch
  TW_REQUIRE(params.congestion_penalty >= 0.0,
             "congestion_penalty must be non-negative (penalties are "
             "monotone and must keep A* admissible)");
  for (int idx : order) {
    const auto i = static_cast<std::size_t>(idx);
    if (params.budget != nullptr) {
      if (params.budget->stop_requested()) {
        ++r.unrouted_nets;
        continue;  // count every remaining net as unrouted
      }
      params.budget->charge_move();
    }
    auto route = greedy_route(g, nets[i], &extra, scratch.ws);
    if (!route) {
      ++r.unrouted_nets;
      continue;
    }
    r.routes[i] = std::move(*route);
    TW_ENSURE_FULL(route_connects(g, nets[i], r.routes[i]),
                   "sequential route of net ", i, " does not connect it");
    r.total_length += r.routes[i].length;
    for (EdgeId e : r.routes[i].edges) {
      const auto ei = static_cast<std::size_t>(e);
      ++r.edge_usage[ei];
      // Penalize edges at or beyond capacity for subsequent nets.
      const int cap = g.edge(e).capacity;
      if (r.edge_usage[ei] >= cap)
        extra[ei] = params.congestion_penalty *
                    static_cast<double>(r.edge_usage[ei] - cap + 1);
    }
  }
  r.total_overflow = total_overflow(g, r.edge_usage);
  return r;
}

}  // namespace tw
