// Phase one of the global router (Section 4.2.1): generating the
// (approximately) M shortest Steiner routes for an n-pin net.
//
// The algorithm generalizes Lawler's M-shortest-paths idea to trees: pins
// are connected in Prim order (nearest unconnected pin first), but instead
// of keeping only the single shortest tree, every step generates the M
// shortest paths from the *whole* partially-built tree (all of its nodes
// are targets, exactly as in Figure 11) to the next pin — where a pin with
// electrically-equivalent alternatives may be reached at any alternative.
// The recursion over stored partial paths is realized as a beam search of
// width M: it keeps the M best partial trees per level, which bounds the
// work at M^2 path enumerations per pin while retaining the paper's
// "approximately M-shortest" guarantee. For two-pin nets this reduces
// exactly to Lawler's M shortest paths.
#pragma once

#include "route/kshortest.hpp"

namespace tw {

/// A net presented to the router: each logical pin is a set of alternative
/// graph nodes (electrically-equivalent pins map to one logical pin with
/// several alternatives).
struct NetTargets {
  std::vector<std::vector<NodeId>> pins;
};

/// One complete candidate route: a set of graph edges forming a connected
/// subgraph that touches at least one alternative of every logical pin.
struct Route {
  std::vector<EdgeId> edges;  ///< sorted, deduplicated
  double length = 0.0;

  friend bool operator==(const Route&, const Route&) = default;
};

struct SteinerParams {
  int m = 8;  ///< M: alternatives kept per net (paper uses ~20)
  /// Nets with more logical pins than this are routed with beam width 1
  /// (plain Prim/Dijkstra Steiner) to bound the cost on huge nets.
  int wide_net_threshold = 12;
  /// Footnote 27's generalization: each step also branches on up to
  /// `prim_k` pins beyond the nearest one, exploring alternative
  /// connection orders. 0 reproduces the base algorithm.
  int prim_k = 0;
};

/// Generates up to M candidate routes for the net, ascending by length.
/// Returns an empty vector when the net cannot be connected (disconnected
/// graph). Single-pin (or empty) nets yield one empty route. The
/// workspace-taking overload reuses `ws` across every internal search
/// (allocation-free once warm); the other builds a fresh one per call.
std::vector<Route> m_best_routes(const RoutingGraph& g, const NetTargets& net,
                                 const SteinerParams& params = {});
std::vector<Route> m_best_routes(const RoutingGraph& g, const NetTargets& net,
                                 const SteinerParams& params,
                                 SearchWorkspace& ws);

/// Single greedy Prim/Dijkstra Steiner route, optionally under additive
/// per-edge costs (congestion penalties). Used by the sequential baseline
/// and by the global router's rip-up augmentation. nullopt when the net
/// cannot be connected.
std::optional<Route> greedy_route(const RoutingGraph& g, const NetTargets& net,
                                  const std::vector<double>* extra_cost = nullptr);
std::optional<Route> greedy_route(const RoutingGraph& g, const NetTargets& net,
                                  const std::vector<double>* extra_cost,
                                  SearchWorkspace& ws);

/// Validates that `route` connects the net on `g` (one alternative of every
/// logical pin in a single connected component of the route's edges).
bool route_connects(const RoutingGraph& g, const NetTargets& net,
                    const Route& route);

}  // namespace tw
