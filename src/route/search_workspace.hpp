// The reusable search state behind every router shortest-path query.
//
// All Dijkstra/A* state (tentative distances, parent edges, target marks,
// the priority heap) and the deviation algorithm's blocked marks live in
// one SearchWorkspace that is bound to a graph once and reused across
// queries. Resets are O(touched): every per-query array is epoch-stamped
// (an entry is valid only when its stamp equals the current generation),
// so starting a new query is a counter increment, not an O(V) refill, and
// a warm workspace performs no heap allocation at all (asserted by
// tests/test_route_perf.cpp with a global allocation counter).
//
// The workspace also owns the goal-directed (A*) machinery: binding scans
// the graph's edges once (incrementally on regrowth) and derives the
// largest scale `alpha` such that `alpha * manhattan(pos(a), pos(b)) <=
// length(a, b)` for every edge. The heuristic used by the search is then
// `h(u) = alpha * manhattan-distance from pos(u) to the bounding box of
// the target positions`, which is admissible and consistent (see
// docs/PERF.md "Global router" for the argument). Channel graphs have
// exactly manhattan edge lengths, so alpha is exactly 1 there; graphs
// with shorter-than-manhattan edges degrade alpha (to 0 in the worst
// case, turning A* back into plain Dijkstra) but never break optimality.
//
// tools/lint.py rule `route-workspace` bans std::priority_queue and
// ad-hoc dist/visited vectors in src/route outside this file, so every
// search in the router goes through here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "route/graph.hpp"

namespace tw {

/// Router work counters, accumulated across every query a workspace runs.
/// Deltas are meaningful: GlobalRouter reports `after - before` per call.
struct RouteCounters {
  long long dijkstra_runs = 0;    ///< searches started (A* or plain)
  long long nodes_popped = 0;     ///< nodes settled off the heap
  long long heap_pushes = 0;      ///< heap insertions (incl. decrease-key)
  long long interchange_trials = 0;  ///< phase-two interchange attempts

  RouteCounters& operator+=(const RouteCounters& o) {
    dijkstra_runs += o.dijkstra_runs;
    nodes_popped += o.nodes_popped;
    heap_pushes += o.heap_pushes;
    interchange_trials += o.interchange_trials;
    return *this;
  }
  friend RouteCounters operator-(RouteCounters a, const RouteCounters& b) {
    a.dijkstra_runs -= b.dijkstra_runs;
    a.nodes_popped -= b.nodes_popped;
    a.heap_pushes -= b.heap_pushes;
    a.interchange_trials -= b.interchange_trials;
    return a;
  }
  friend bool operator==(const RouteCounters&, const RouteCounters&) = default;
};

class SearchWorkspace {
public:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Binds the workspace to `g`: grows the stamped arrays to the graph's
  /// size and (re)derives the A* scale. Binding to the same graph again
  /// only scans edges appended since the last bind; binding to a
  /// different graph resets the scan. Cheap enough to call per query.
  void bind(const RoutingGraph& g);

  /// Disables the geometric heuristic (every query runs plain Dijkstra).
  /// Used by the equivalence fuzz to compare A* against the reference.
  void set_astar(bool on) { astar_on_ = on; }
  bool astar() const { return astar_on_; }

  /// The admissible heuristic scale derived for the bound graph: 0 when
  /// A* is disabled or no positive scale is admissible.
  double heuristic_scale() const { return astar_on_ ? alpha_ : 0.0; }

  // --- exact heuristic (deviation searches) --------------------------------
  // The deviation algorithm runs many spur searches against one fixed
  // target set, each on the same graph minus some blocked prefix. One
  // unblocked all-reachable sweep *from* the targets gives the exact
  // distance-to-nearest-target of every node; promoting that query turns
  // it into the spur searches' heuristic. It is admissible and consistent
  // there because blocking only removes edges — the unblocked distance
  // can only undershoot the blocked one — and it dominates the geometric
  // bound, so spur searches explore little beyond their final corridor.
  // Nodes it proves unable to reach any target are never entered at all.

  /// Repurposes the just-finished query's distances as the heuristic for
  /// subsequent queries (O(1): buffers are swapped). `targets` is the
  /// target set the sweep ran from — recorded, with the graph's (uid,
  /// num_edges), so reuse_exact_heuristic can recognize an equivalent
  /// request and skip the sweep. Stays in effect until
  /// clear_exact_heuristic(); ignored while A* is off.
  void promote_query_to_heuristic(const RoutingGraph& g,
                                  std::span<const NodeId> targets) {
    dist_.swap(hdist_);
    via_.swap(hvia_);
    dist_gen_.swap(hdist_gen_);
    hquery_gen_ = query_gen_;
    huid_ = g.uid();
    hnum_edges_ = g.num_edges();
    htargets_.assign(targets.begin(), targets.end());
    std::sort(htargets_.begin(), htargets_.end());
    htargets_.erase(std::unique(htargets_.begin(), htargets_.end()),
                    htargets_.end());
    exact_h_on_ = true;
  }
  /// Re-arms the promoted heuristic when it was computed for exactly this
  /// graph state (appended edges could shorten distances, so the edge
  /// count must match too) and this target set; returns false otherwise.
  /// The deduplicated sort is cheap next to the sweep it saves — the beam
  /// search requests the same pin's alternatives once per beam tree.
  bool reuse_exact_heuristic(const RoutingGraph& g,
                             std::span<const NodeId> targets) {
    if (htargets_.empty() || g.uid() != huid_ || g.num_edges() != hnum_edges_)
      return false;
    key_scratch_.assign(targets.begin(), targets.end());
    std::sort(key_scratch_.begin(), key_scratch_.end());
    key_scratch_.erase(std::unique(key_scratch_.begin(), key_scratch_.end()),
                       key_scratch_.end());
    if (key_scratch_ != htargets_) return false;
    exact_h_on_ = true;
    return true;
  }
  void clear_exact_heuristic() { exact_h_on_ = false; }
  bool exact_heuristic() const { return astar_on_ && exact_h_on_; }
  /// Distance from `n` to the promoted query's sources (kInf: unreached).
  double exact_h(NodeId n) const {
    const auto i = static_cast<std::size_t>(n);
    return hdist_gen_[i] == hquery_gen_ ? hdist_[i] : kInf;
  }

  // --- per-query state (begin_query invalidates in O(1)) ------------------
  void begin_query() {
    query_gen_ = ++gen_;
    heap_.clear();
  }
  double dist(NodeId n) const {
    const auto i = static_cast<std::size_t>(n);
    return dist_gen_[i] == query_gen_ ? dist_[i] : kInf;
  }
  EdgeId via_edge(NodeId n) const {
    const auto i = static_cast<std::size_t>(n);
    return dist_gen_[i] == query_gen_ ? via_[i] : kNoEdge;
  }
  void set_dist(NodeId n, double d, EdgeId via) {
    const auto i = static_cast<std::size_t>(n);
    dist_gen_[i] = query_gen_;
    dist_[i] = d;
    via_[i] = via;
  }
  void mark_target(NodeId n) {
    target_gen_[static_cast<std::size_t>(n)] = query_gen_;
  }
  bool is_target(NodeId n) const {
    return target_gen_[static_cast<std::size_t>(n)] == query_gen_;
  }
  void unmark_target(NodeId n) {
    target_gen_[static_cast<std::size_t>(n)] = 0;
  }

  // --- node labels (survive queries until the next begin_labels) ----------
  // Used by the deviation algorithm to map endpoint nodes to their rank in
  // the source/target spans without a per-call O(V) table.
  void begin_labels() { label_gen_cur_ = ++gen_; }
  void set_label(NodeId n, std::int32_t v) {
    const auto i = static_cast<std::size_t>(n);
    label_gen_[i] = label_gen_cur_;
    label_[i] = v;
  }
  /// -1 when unlabelled.
  std::int32_t label(NodeId n) const {
    const auto i = static_cast<std::size_t>(n);
    return label_gen_[i] == label_gen_cur_ ? label_[i] : -1;
  }

  // --- blocked marks (survive queries until the next clear_blocks) --------
  void clear_blocks() { block_gen_cur_ = ++gen_; }
  void block_node(NodeId n) {
    nblock_gen_[static_cast<std::size_t>(n)] = block_gen_cur_;
  }
  void block_edge(EdgeId e) {
    eblock_gen_[static_cast<std::size_t>(e)] = block_gen_cur_;
  }
  bool node_blocked(NodeId n) const {
    return nblock_gen_[static_cast<std::size_t>(n)] == block_gen_cur_;
  }
  bool edge_blocked(EdgeId e) const {
    return eblock_gen_[static_cast<std::size_t>(e)] == block_gen_cur_;
  }

  // --- deterministic binary min-heap --------------------------------------
  // Ordered by (f, -d, node): strictly smaller f first; among equal f the
  // *larger* tentative distance pops first (the node closer to the goal —
  // with a tight heuristic, equal-f plateaus are huge on channel grids and
  // deeper-first reduces them to the optimal corridor; targets have h = 0,
  // hence maximal d among their f-ties, and settle earliest of all); final
  // ties by smaller node id. The pop sequence — and therefore every
  // tie-break in the search — is a pure function of the query. Under plain
  // Dijkstra f == d, the d rule never fires, and equal-distance targets
  // still settle in node-id order.
  struct HeapEntry {
    double f = 0.0;   ///< priority: g + h (== g for plain Dijkstra)
    double d = 0.0;   ///< tentative distance when pushed
    NodeId node = kInvalidNode;
  };
  void heap_push(double f, double d, NodeId node);
  /// False when the heap is empty.
  bool heap_pop(HeapEntry& out);

  static constexpr EdgeId kNoEdge = -1;

  RouteCounters counters;

private:
  static bool heap_before(const HeapEntry& x, const HeapEntry& y) {
    if (x.f != y.f) return x.f < y.f;
    if (x.d != y.d) return x.d > y.d;
    return x.node < y.node;
  }

  // A* scale derivation state (see bind()).
  std::uint64_t bound_uid_ = 0;
  std::size_t scanned_edges_ = 0;
  bool all_at_least_manhattan_ = true;
  double min_ratio_ = kInf;
  double alpha_ = 0.0;
  bool astar_on_ = true;
  bool exact_h_on_ = false;
  std::uint64_t hquery_gen_ = 0;
  std::uint64_t huid_ = 0;
  std::size_t hnum_edges_ = 0;
  std::vector<NodeId> htargets_;    ///< promoted sweep's target key (sorted)
  std::vector<NodeId> key_scratch_;

  // Shared monotone generation counter; the array entries default to 0,
  // so every current generation starts at 1 ("nothing stamped yet").
  std::uint64_t gen_ = 1;
  std::uint64_t query_gen_ = 1;
  std::uint64_t label_gen_cur_ = 1;
  std::uint64_t block_gen_cur_ = 1;

  std::vector<std::uint64_t> dist_gen_, target_gen_, label_gen_;
  std::vector<std::uint64_t> nblock_gen_, eblock_gen_;
  std::vector<double> dist_;
  std::vector<EdgeId> via_;
  std::vector<std::uint64_t> hdist_gen_;  ///< promoted-query buffers
  std::vector<double> hdist_;
  std::vector<EdgeId> hvia_;
  std::vector<std::int32_t> label_;
  std::vector<HeapEntry> heap_;
};

}  // namespace tw
