#include "route/shortest_path.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace tw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

/// Dijkstra from a set of sources; fills dist[] and the (edge, parent)
/// arrays. Stops early once every target has been settled (when targets is
/// non-empty).
void run_dijkstra(const RoutingGraph& g, std::span<const NodeId> sources,
                  std::span<const NodeId> targets, const PathQuery& q,
                  std::vector<double>& dist, std::vector<EdgeId>& via_edge) {
  const std::size_t n = g.num_nodes();
  dist.assign(n, kInf);
  via_edge.assign(n, -1);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  for (NodeId s : sources) {
    if (q.blocked_nodes && (*q.blocked_nodes)[static_cast<std::size_t>(s)])
      continue;
    dist[static_cast<std::size_t>(s)] = 0.0;
    pq.push({0.0, s});
  }

  std::size_t targets_left = targets.size();
  std::vector<char> is_target(n, 0);
  for (NodeId t : targets) is_target[static_cast<std::size_t>(t)] = 1;

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (!targets.empty() && is_target[static_cast<std::size_t>(u)]) {
      is_target[static_cast<std::size_t>(u)] = 0;
      if (--targets_left == 0) break;
    }
    for (EdgeId eid : g.incident(u)) {
      if (q.blocked_edges && (*q.blocked_edges)[static_cast<std::size_t>(eid)])
        continue;
      const GraphEdge& e = g.edge(eid);
      const NodeId v = e.other(u);
      if (q.blocked_nodes && (*q.blocked_nodes)[static_cast<std::size_t>(v)])
        continue;
      double w = e.length;
      if (q.extra_cost) w += (*q.extra_cost)[static_cast<std::size_t>(eid)];
      const double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        via_edge[static_cast<std::size_t>(v)] = eid;
        pq.push({nd, v});
      }
    }
  }
}

PathResult extract_path(const RoutingGraph& g,
                        const std::vector<double>& dist,
                        const std::vector<EdgeId>& via_edge, NodeId target) {
  PathResult r;
  r.dst = target;
  r.length = dist[static_cast<std::size_t>(target)];
  NodeId cur = target;
  while (via_edge[static_cast<std::size_t>(cur)] >= 0) {
    const EdgeId eid = via_edge[static_cast<std::size_t>(cur)];
    r.edges.push_back(eid);
    cur = g.edge(eid).other(cur);
  }
  r.src = cur;
  std::reverse(r.edges.begin(), r.edges.end());
  return r;
}

}  // namespace

std::optional<PathResult> shortest_path(const RoutingGraph& g, NodeId s,
                                        NodeId t, const PathQuery& q) {
  const NodeId sources[] = {s};
  const NodeId targets[] = {t};
  return shortest_path_between_sets(g, sources, targets, q);
}

std::vector<double> shortest_distances(const RoutingGraph& g,
                                       std::span<const NodeId> sources,
                                       const PathQuery& q) {
  std::vector<double> dist;
  std::vector<EdgeId> via_edge;
  run_dijkstra(g, sources, {}, q, dist, via_edge);
  return dist;
}

std::optional<PathResult> shortest_path_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, const PathQuery& q) {
  std::vector<double> dist;
  std::vector<EdgeId> via_edge;
  run_dijkstra(g, sources, targets, q, dist, via_edge);

  NodeId best = kInvalidNode;
  for (NodeId t : targets) {
    if (dist[static_cast<std::size_t>(t)] == kInf) continue;
    if (best == kInvalidNode ||
        dist[static_cast<std::size_t>(t)] < dist[static_cast<std::size_t>(best)])
      best = t;
  }
  if (best == kInvalidNode) return std::nullopt;
  return extract_path(g, dist, via_edge, best);
}

}  // namespace tw
