#include "route/shortest_path.hpp"

#include <algorithm>

#include "check/contracts.hpp"

namespace tw {
namespace {

constexpr double kInf = SearchWorkspace::kInf;

/// Bounding box of the target positions — the goal region of the A*
/// heuristic. Manhattan distance to a box is 1-Lipschitz in the manhattan
/// metric and zero at every target, which makes `alpha * box_manhattan`
/// consistent whenever every edge satisfies length >= alpha * manhattan
/// (see SearchWorkspace::bind).
struct TargetBox {
  Coord xlo = 0, ylo = 0, xhi = -1, yhi = -1;

  bool valid() const { return xhi >= xlo; }
  void add(Point p) {
    if (!valid()) {
      xlo = xhi = p.x;
      ylo = yhi = p.y;
      return;
    }
    xlo = std::min(xlo, p.x);
    xhi = std::max(xhi, p.x);
    ylo = std::min(ylo, p.y);
    yhi = std::max(yhi, p.y);
  }
};

double box_manhattan(Point p, const TargetBox& b) {
  Coord dx = 0;
  if (p.x < b.xlo)
    dx = b.xlo - p.x;
  else if (p.x > b.xhi)
    dx = p.x - b.xhi;
  Coord dy = 0;
  if (p.y < b.ylo)
    dy = b.ylo - p.y;
  else if (p.y > b.yhi)
    dy = p.y - b.yhi;
  return static_cast<double>(dx + dy);
}

}  // namespace

NodeId search(const RoutingGraph& g, std::span<const NodeId> sources,
              std::span<const NodeId> targets, const PathQuery& q,
              SearchWorkspace& ws, SearchStop stop) {
  ws.bind(g);
  ws.begin_query();
  ++ws.counters.dijkstra_runs;
  if constexpr (check::kLevel >= check::kLevelFull) {
    if (q.extra_cost != nullptr)
      for (std::size_t e = 0; e < q.extra_cost->size(); ++e)
        TW_ENSURE_FULL((*q.extra_cost)[e] >= 0.0, "negative extra_cost ",
                       (*q.extra_cost)[e], " on edge ", e,
                       " breaks A* admissibility");
  }

  auto node_blocked = [&](NodeId v) {
    return (q.blocked_nodes != nullptr &&
            (*q.blocked_nodes)[static_cast<std::size_t>(v)] != 0) ||
           ws.node_blocked(v);
  };
  auto edge_blocked = [&](EdgeId e) {
    return (q.blocked_edges != nullptr &&
            (*q.blocked_edges)[static_cast<std::size_t>(e)] != 0) ||
           ws.edge_blocked(e);
  };

  TargetBox box;
  std::size_t targets_left = 0;
  for (NodeId t : targets) {
    box.add(g.node_pos(t));
    if (ws.is_target(t)) continue;  // duplicate target entries count once
    ws.mark_target(t);
    ++targets_left;
  }
  // Target-seeking stop modes are trivially complete with no targets; only
  // kAllReachable wants the exhaustive sweep then.
  if (targets_left == 0 && stop != SearchStop::kAllReachable)
    return kInvalidNode;

  // An exact (promoted-query) heuristic dominates the geometric bound and
  // returns kInf for nodes that cannot reach any target at all — those are
  // never entered.
  const bool exact = targets_left > 0 && ws.exact_heuristic();
  const double alpha = targets_left > 0 ? ws.heuristic_scale() : 0.0;
  auto h = [&](NodeId v) {
    if (exact) return ws.exact_h(v);
    return alpha > 0.0 ? alpha * box_manhattan(g.node_pos(v), box) : 0.0;
  };

  for (NodeId s : sources) {
    if (node_blocked(s)) continue;
    if (ws.dist(s) < kInf) continue;  // duplicate source entries
    const double hs = h(s);
    if (hs > q.cost_cap) continue;  // no wanted path through here (or kInf)
    ws.set_dist(s, 0.0, SearchWorkspace::kNoEdge);
    ws.heap_push(hs, 0.0, s);
  }

  SearchWorkspace::HeapEntry e;
  while (ws.heap_pop(e)) {
    const NodeId u = e.node;
    if (e.d > ws.dist(u)) continue;  // stale heap entry
    ++ws.counters.nodes_popped;
    if (targets_left > 0 && ws.is_target(u)) {
      if (stop == SearchStop::kFirstTarget) return u;
      ws.unmark_target(u);
      if (--targets_left == 0 && stop == SearchStop::kAllTargets)
        return kInvalidNode;
    }
    for (EdgeId eid : g.incident(u)) {
      if (edge_blocked(eid)) continue;
      const GraphEdge& ge = g.edge(eid);
      const NodeId v = ge.other(u);
      if (node_blocked(v)) continue;
      double w = ge.length;
      if (q.extra_cost != nullptr)
        w += (*q.extra_cost)[static_cast<std::size_t>(eid)];
      const double nd = e.d + w;
      if (nd < ws.dist(v)) {
        const double hv = h(v);
        if (nd + hv > q.cost_cap) continue;  // no wanted path (or hv kInf)
        ws.set_dist(v, nd, eid);
        ws.heap_push(nd + hv, nd, v);
      }
    }
  }
  return kInvalidNode;
}

bool extract_path(const RoutingGraph& g, const SearchWorkspace& ws,
                  NodeId target, PathResult& out) {
  out.edges.clear();
  const double d = ws.dist(target);
  if (d == kInf) return false;
  out.dst = target;
  out.length = d;
  NodeId cur = target;
  while (ws.via_edge(cur) != SearchWorkspace::kNoEdge) {
    const EdgeId eid = ws.via_edge(cur);
    out.edges.push_back(eid);
    cur = g.edge(eid).other(cur);
  }
  out.src = cur;
  std::reverse(out.edges.begin(), out.edges.end());
  return true;
}

std::optional<PathResult> shortest_path(const RoutingGraph& g, NodeId s,
                                        NodeId t, const PathQuery& q) {
  SearchWorkspace ws;
  return shortest_path(g, s, t, q, ws);
}

std::optional<PathResult> shortest_path(const RoutingGraph& g, NodeId s,
                                        NodeId t, const PathQuery& q,
                                        SearchWorkspace& ws) {
  const NodeId sources[] = {s};
  const NodeId targets[] = {t};
  return shortest_path_between_sets(g, sources, targets, q, ws);
}

std::optional<PathResult> shortest_path_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, const PathQuery& q) {
  SearchWorkspace ws;
  return shortest_path_between_sets(g, sources, targets, q, ws);
}

std::optional<PathResult> shortest_path_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, const PathQuery& q, SearchWorkspace& ws) {
  ws.clear_blocks();
  const NodeId hit = search(g, sources, targets, q, ws);
  if (hit == kInvalidNode) return std::nullopt;
  PathResult r;
  extract_path(g, ws, hit, r);
  return r;
}

std::vector<double> shortest_distances(const RoutingGraph& g,
                                       std::span<const NodeId> sources,
                                       const PathQuery& q) {
  SearchWorkspace ws;
  std::vector<double> out;
  shortest_distances(g, sources, q, ws, out);
  return out;
}

void shortest_distances(const RoutingGraph& g,
                        std::span<const NodeId> sources, const PathQuery& q,
                        SearchWorkspace& ws, std::vector<double>& out) {
  ws.clear_blocks();
  search(g, sources, {}, q, ws, SearchStop::kAllReachable);
  const std::size_t n = g.num_nodes();
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = ws.dist(static_cast<NodeId>(i));
}

}  // namespace tw
