// The full global router (Section 4.2): phase one enumerates up to M
// alternative routes per net (see steiner.hpp); phase two selects one
// alternative per net with a random-interchange algorithm that minimizes
// the total routing length L (Eqn 23) subject to the channel-edge capacity
// constraints, using the total excess X (Eqn 24) as the feasibility
// measure. Because all alternatives exist up front and the interchange
// visits nets in random order driven by the current congestion, the
// classical net-routing-order dependence problem is avoided (bench_router_order
// demonstrates this against the sequential baseline).
#pragma once

#include "recover/budget.hpp"
#include "recover/fault.hpp"
#include "route/steiner.hpp"
#include "util/rng.hpp"

namespace tw {

struct GlobalRouterParams {
  SteinerParams steiner;
  std::uint64_t seed = 1;
  /// Optional work budget (non-owning): each routed net and each
  /// interchange attempt charges one move; on expiry or cancellation the
  /// router stops where it stands — the selection so far is always a
  /// consistent (if overflowed) routing.
  recover::RunBudget* budget = nullptr;
  /// Optional kill points (non-owning): kRouteNet is polled before each
  /// net of phase one, so a crash mid-routing (after the stage-2 pass
  /// boundary, before the pass's anneal writes its first checkpoint) is
  /// reproducible in the resume tests. Polls never consume RNG state.
  recover::FaultInjector* faults = nullptr;
};

struct GlobalRouteResult {
  /// Alternatives per net, ascending by length (k = 0 is the shortest).
  std::vector<std::vector<Route>> alternatives;
  /// Selected alternative per net (-1 when the net could not be routed).
  std::vector<int> choice;
  /// D_j: number of nets whose selected route uses each graph edge.
  std::vector<int> edge_usage;
  double total_length = 0.0;  ///< L over routed nets
  int total_overflow = 0;     ///< X
  int unrouted_nets = 0;
  long long interchange_attempts = 0;
  /// Search work this route() call performed (delta of the router's
  /// workspace counters; see search_workspace.hpp).
  RouteCounters counters;

  /// The selected route of a net (nullptr when unrouted).
  const Route* route_of(std::size_t net) const {
    if (choice[net] < 0) return nullptr;
    return &alternatives[net][static_cast<std::size_t>(choice[net])];
  }
};

class GlobalRouter {
public:
  GlobalRouter(const RoutingGraph& g, GlobalRouterParams params = {});

  GlobalRouteResult route(const std::vector<NetTargets>& nets);

private:
  const RoutingGraph& g_;
  GlobalRouterParams params_;
  /// One workspace serves every search the router runs (phase one and the
  /// rip-up augmentation); repeated route() calls reuse its warm arrays.
  SearchWorkspace ws_;
};

/// X (Eqn 24) from per-edge usage and capacities.
int total_overflow(const RoutingGraph& g, const std::vector<int>& usage);

}  // namespace tw
