#include "route/kshortest.hpp"

#include <algorithm>
#include <set>

namespace tw {
namespace {

/// Candidate ordering for the deviation heap: by length, ties broken by the
/// edge sequence so the algorithm is fully deterministic.
struct CandidateLess {
  bool operator()(const PathResult& a, const PathResult& b) const {
    if (a.length != b.length) return a.length < b.length;
    return a.edges < b.edges;
  }
};

}  // namespace

std::vector<PathResult> k_shortest_paths(const RoutingGraph& g, NodeId s,
                                         NodeId t, int k) {
  std::vector<PathResult> found;
  if (k <= 0) return found;
  if (s == t) return found;

  auto first = shortest_path(g, s, t);
  if (!first) return found;
  found.push_back(std::move(*first));

  std::set<PathResult, CandidateLess> candidates;
  std::set<std::vector<EdgeId>> seen;
  seen.insert(found[0].edges);

  std::vector<char> blocked_edges(g.num_edges(), 0);
  std::vector<char> blocked_nodes(g.num_nodes(), 0);

  while (static_cast<int>(found.size()) < k) {
    const PathResult& prev = found.back();
    const std::vector<NodeId> prev_nodes = g.walk_nodes(s, prev.edges);

    for (std::size_t i = 0; i < prev.edges.size(); ++i) {
      const NodeId spur = prev_nodes[i];

      std::fill(blocked_edges.begin(), blocked_edges.end(), 0);
      std::fill(blocked_nodes.begin(), blocked_nodes.end(), 0);

      // Block the next edge of every found path sharing this root prefix.
      for (const PathResult& p : found) {
        if (p.edges.size() <= i) continue;
        if (!std::equal(p.edges.begin(), p.edges.begin() + static_cast<std::ptrdiff_t>(i),
                        prev.edges.begin()))
          continue;
        blocked_edges[static_cast<std::size_t>(p.edges[i])] = 1;
      }
      // Block the root path's nodes (loopless requirement).
      for (std::size_t j = 0; j < i; ++j)
        blocked_nodes[static_cast<std::size_t>(prev_nodes[j])] = 1;

      PathQuery q;
      q.blocked_edges = &blocked_edges;
      q.blocked_nodes = &blocked_nodes;
      auto spur_path = shortest_path(g, spur, t, q);
      if (!spur_path) continue;

      PathResult cand;
      cand.src = s;
      cand.dst = t;
      cand.edges.assign(prev.edges.begin(),
                        prev.edges.begin() + static_cast<std::ptrdiff_t>(i));
      cand.edges.insert(cand.edges.end(), spur_path->edges.begin(),
                        spur_path->edges.end());
      cand.length = g.path_length(cand.edges);
      if (seen.insert(cand.edges).second) candidates.insert(std::move(cand));
    }

    if (candidates.empty()) break;
    found.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return found;
}

std::vector<PathResult> k_shortest_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, int k) {
  if (sources.empty() || targets.empty() || k <= 0) return {};

  // Degenerate case: a target already in the source set -> zero-length path.
  std::vector<char> is_source(g.num_nodes(), 0);
  for (NodeId s : sources) is_source[static_cast<std::size_t>(s)] = 1;
  for (NodeId t : targets)
    if (is_source[static_cast<std::size_t>(t)]) {
      PathResult r;
      r.src = r.dst = t;
      return {r};
    }

  // Single endpoints need no augmented graph — the common case (a two-pin
  // net's first connection) goes straight to the deviation algorithm.
  if (sources.size() == 1 && targets.size() == 1)
    return k_shortest_paths(g, sources[0], targets[0], k);

  // Augment a copy of the graph with virtual terminals.
  RoutingGraph aug;
  for (std::size_t n = 0; n < g.num_nodes(); ++n)
    aug.add_node(g.node_pos(static_cast<NodeId>(n)));
  for (const auto& e : g.edges()) aug.add_edge(e.a, e.b, e.length, e.capacity);
  const NodeId super_s = aug.add_node(Point{0, 0});
  const NodeId super_t = aug.add_node(Point{0, 0});
  for (NodeId s : sources) aug.add_edge(super_s, s, 0.0, 1 << 20);
  for (NodeId t : targets) aug.add_edge(super_t, t, 0.0, 1 << 20);

  auto paths = k_shortest_paths(aug, super_s, super_t, k);

  // Strip the virtual first/last edges and recover real endpoints.
  std::vector<PathResult> out;
  std::set<std::vector<EdgeId>> seen;
  for (auto& p : paths) {
    if (p.edges.size() < 2) continue;
    PathResult r;
    r.src = aug.edge(p.edges.front()).other(super_s);
    r.dst = aug.edge(p.edges.back()).other(super_t);
    r.edges.assign(p.edges.begin() + 1, p.edges.end() - 1);
    r.length = g.path_length(r.edges);
    // Distinct augmented paths can collapse to the same real path (e.g.
    // when they differ only in the virtual terminals); keep one.
    if (seen.insert(r.edges).second) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace tw
