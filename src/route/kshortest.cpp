#include "route/kshortest.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <set>
#include <tuple>

namespace tw {
namespace {

/// A found path or deviation candidate. Endpoint ranks (indices into the
/// source/target spans) pin down the path completely even when several
/// endpoint nodes could produce the same edge sequence; `dev` is the
/// deviation position this path branched from its parent at — Lawler's
/// refinement re-expands a path from `dev` onward only. Position 0 is the
/// source choice, position q >= 1 is a spur at the q-th node of the path,
/// and position len+1 deviates the target choice from the final node.
struct DevPath {
  std::vector<EdgeId> edges;  ///< real edges, in walk order from src
  double length = 0.0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int32_t src_rank = 0;
  std::int32_t dst_rank = 0;
  std::size_t dev = 0;
};

/// Candidate ordering: ascending by length, ties broken by source rank,
/// then the edge sequence, then the target rank — fully deterministic. A
/// path that is a strict edge-prefix of another (it stops at an earlier
/// target) orders *after* it, matching the lexicographic order the edge
/// sequences would have with a per-target sentinel edge appended.
struct CandLess {
  bool operator()(const DevPath& a, const DevPath& b) const {
    if (a.length != b.length) return a.length < b.length;
    if (a.src_rank != b.src_rank) return a.src_rank < b.src_rank;
    const std::size_t n = std::min(a.edges.size(), b.edges.size());
    for (std::size_t i = 0; i < n; ++i)
      if (a.edges[i] != b.edges[i]) return a.edges[i] < b.edges[i];
    if (a.edges.size() != b.edges.size()) return a.edges.size() > b.edges.size();
    return a.dst_rank < b.dst_rank;
  }
};

using SeenKey = std::tuple<std::int32_t, std::vector<EdgeId>, std::int32_t>;

/// The deviation algorithm proper. Sources and targets must be disjoint;
/// duplicate entries within a span are collapsed onto their first rank.
std::vector<DevPath> lawler(const RoutingGraph& g,
                            std::span<const NodeId> sources,
                            std::span<const NodeId> targets, int k,
                            SearchWorkspace& ws) {
  std::vector<DevPath> found;
  if (k <= 0 || sources.empty() || targets.empty()) return found;

  ws.bind(g);
  // Rank labels: endpoint node -> index in its span (first occurrence
  // wins). Sources and targets are disjoint, so one label space serves
  // both. Labels survive the searches below (separate generation).
  ws.begin_labels();
  for (std::size_t i = 0; i < sources.size(); ++i)
    if (ws.label(sources[i]) < 0)
      ws.set_label(sources[i], static_cast<std::int32_t>(i));
  for (std::size_t i = 0; i < targets.size(); ++i)
    if (ws.label(targets[i]) < 0)
      ws.set_label(targets[i], static_cast<std::int32_t>(i));

  const PathQuery q;  // blocking happens via workspace marks

  // One unblocked sweep from the targets exposes every node's exact
  // distance-to-nearest-target; promoted, it serves as the (perfect on the
  // unblocked graph, admissible under blocking) heuristic of the first
  // search and of every spur search below. A workspace that still holds
  // the sweep for this same graph + target set reuses it — the beam
  // search asks about one pin's alternatives once per beam tree. See
  // search_workspace.hpp.
  if (ws.astar() && !ws.reuse_exact_heuristic(g, targets)) {
    ws.clear_blocks();
    search(g, targets, {}, q, ws, SearchStop::kAllReachable);
    ws.promote_query_to_heuristic(g, targets);
  }

  PathResult pr;
  auto make_path = [&](std::size_t dev) {
    DevPath p;
    p.edges = pr.edges;
    p.length = pr.length;
    p.src = pr.src;
    p.dst = pr.dst;
    p.src_rank = ws.label(pr.src);
    p.dst_rank = ws.label(pr.dst);
    p.dev = dev;
    return p;
  };

  ws.clear_blocks();
  const NodeId first_hit = search(g, sources, targets, q, ws);
  if (first_hit == kInvalidNode) {
    ws.clear_exact_heuristic();
    return found;
  }
  extract_path(g, ws, first_hit, pr);
  found.push_back(make_path(0));

  std::set<DevPath, CandLess> candidates;
  std::set<SeenKey> seen;
  seen.insert({found[0].src_rank, found[0].edges, found[0].dst_rank});

  std::vector<NodeId> prev_nodes;
  std::vector<NodeId> seeds;       // spur / source-deviation seed nodes
  std::vector<NodeId> spur_targets;
  std::vector<char> used_src;      // per source rank
  std::vector<char> excluded_dst;  // per target rank

  while (static_cast<int>(found.size()) < k) {
    const DevPath& prev = found.back();
    prev_nodes = g.walk_nodes(prev.src, prev.edges);
    const std::size_t len = prev.edges.size();

    // Once the candidate set already holds the r remaining paths needed,
    // the r-th best candidate's length caps every useful spur result (the
    // future pops are nondecreasing and each is at most the r-th smallest
    // candidate available now), so the spur searches prune anything
    // provably longer. `prefix_len` tracks the kept prefix's edge lengths
    // as the deviation position advances.
    const std::size_t r_need = static_cast<std::size_t>(k) - found.size();
    double prefix_len = 0.0;
    for (std::size_t j = 1; j < prev.dev; ++j)
      prefix_len += g.edge(prev.edges[j - 1]).length;

    for (std::size_t qpos = prev.dev; qpos <= len + 1;
         prefix_len += qpos >= 1 && qpos <= len
                           ? g.edge(prev.edges[qpos - 1]).length
                           : 0.0,
                     ++qpos) {
      ws.clear_blocks();
      std::size_t prefix = 0;  // real edges shared with prev
      if (qpos == 0) {
        // Deviate the source choice: search from every source no found
        // path starts at (all found paths share the empty prefix).
        used_src.assign(sources.size(), 0);
        for (const DevPath& p : found)
          used_src[static_cast<std::size_t>(p.src_rank)] = 1;
        seeds.clear();
        for (std::size_t i = 0; i < sources.size(); ++i) {
          if (ws.label(sources[i]) != static_cast<std::int32_t>(i))
            continue;  // duplicate occurrence of an earlier rank
          if (!used_src[i]) seeds.push_back(sources[i]);
        }
        spur_targets.assign(targets.begin(), targets.end());
      } else {
        prefix = qpos - 1;
        const NodeId spur = prev_nodes[prefix];
        // Loopless requirement: the prefix nodes may not be revisited.
        for (std::size_t j = 0; j < prefix; ++j) ws.block_node(prev_nodes[j]);
        // Every found path sharing this source + prefix either continues
        // with a (now blocked) edge, or ends at the spur node — then its
        // target choice is removed from the spur search instead.
        excluded_dst.assign(targets.size(), 0);
        for (const DevPath& p : found) {
          if (p.src_rank != prev.src_rank) continue;
          if (p.edges.size() < prefix) continue;
          if (!std::equal(p.edges.begin(),
                          p.edges.begin() + static_cast<std::ptrdiff_t>(prefix),
                          prev.edges.begin()))
            continue;
          if (p.edges.size() == prefix)
            excluded_dst[static_cast<std::size_t>(p.dst_rank)] = 1;
          else
            ws.block_edge(p.edges[prefix]);
        }
        seeds.assign(1, spur);
        spur_targets.clear();
        for (std::size_t i = 0; i < targets.size(); ++i) {
          if (ws.label(targets[i]) != static_cast<std::int32_t>(i)) continue;
          if (!excluded_dst[i]) spur_targets.push_back(targets[i]);
        }
      }
      if (seeds.empty() || spur_targets.empty()) continue;

      PathQuery sq = q;
      if (candidates.size() >= r_need) {
        auto cap_it = candidates.begin();
        std::advance(cap_it, static_cast<std::ptrdiff_t>(r_need - 1));
        // Inclusive cap with a relative slack so float drift can never
        // drop a candidate of genuinely equal length.
        sq.cost_cap = cap_it->length - prefix_len +
                      1e-9 * (1.0 + std::abs(cap_it->length));
      }
      const NodeId hit = search(g, seeds, spur_targets, sq, ws);
      if (hit == kInvalidNode) continue;
      extract_path(g, ws, hit, pr);

      DevPath cand;
      cand.edges.assign(prev.edges.begin(),
                        prev.edges.begin() + static_cast<std::ptrdiff_t>(prefix));
      cand.edges.insert(cand.edges.end(), pr.edges.begin(), pr.edges.end());
      cand.length = g.path_length(cand.edges);
      cand.src = qpos == 0 ? pr.src : prev.src;
      cand.src_rank = qpos == 0 ? ws.label(pr.src) : prev.src_rank;
      cand.dst = pr.dst;
      cand.dst_rank = ws.label(pr.dst);
      cand.dev = qpos;
      if (seen.insert({cand.src_rank, cand.edges, cand.dst_rank}).second)
        candidates.insert(std::move(cand));
    }

    if (candidates.empty()) break;
    found.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  ws.clear_exact_heuristic();
  return found;
}

std::vector<PathResult> strip(std::vector<DevPath> found) {
  std::vector<PathResult> out;
  std::set<std::vector<EdgeId>> seen;
  for (DevPath& p : found) {
    if (!seen.insert(p.edges).second) continue;  // defensive; see header
    PathResult r;
    r.edges = std::move(p.edges);
    r.length = p.length;
    r.src = p.src;
    r.dst = p.dst;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

std::vector<PathResult> k_shortest_paths(const RoutingGraph& g, NodeId s,
                                         NodeId t, int k) {
  SearchWorkspace ws;
  return k_shortest_paths(g, s, t, k, ws);
}

std::vector<PathResult> k_shortest_paths(const RoutingGraph& g, NodeId s,
                                         NodeId t, int k, SearchWorkspace& ws) {
  if (s == t) return {};
  const NodeId sources[] = {s};
  const NodeId targets[] = {t};
  return strip(lawler(g, sources, targets, k, ws));
}

std::vector<PathResult> k_shortest_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, int k) {
  SearchWorkspace ws;
  return k_shortest_between_sets(g, sources, targets, k, ws);
}

std::vector<PathResult> k_shortest_between_sets(
    const RoutingGraph& g, std::span<const NodeId> sources,
    std::span<const NodeId> targets, int k, SearchWorkspace& ws) {
  if (sources.empty() || targets.empty() || k <= 0) return {};

  // Degenerate case: a target already in the source set -> zero-length path.
  ws.bind(g);
  ws.begin_labels();
  for (NodeId s : sources)
    if (ws.label(s) < 0) ws.set_label(s, 0);
  for (NodeId t : targets)
    if (ws.label(t) >= 0) {
      PathResult r;
      r.src = r.dst = t;
      return {r};
    }

  return strip(lawler(g, sources, targets, k, ws));
}

}  // namespace tw
