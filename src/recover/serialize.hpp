// Bounds-checked binary serialization for checkpoint payloads.
//
// Everything the recover subsystem persists goes through ByteWriter /
// ByteReader: fixed-width little-endian integers, bit-exact doubles
// (IEEE-754 via bit_cast, so a restored annealer state reproduces the
// interrupted run byte for byte), and length-prefixed vectors. The reader
// never trusts the input: every read is bounds-checked and every length
// prefix is validated against the bytes actually remaining, so a
// truncated or corrupted payload yields a typed CheckpointError — never
// undefined behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace tw::recover {

/// Why a checkpoint could not be read (see CheckpointError).
enum class CheckpointErrc {
  kIo,              ///< file could not be opened / read / written
  kBadMagic,        ///< not a checkpoint file
  kBadVersion,      ///< produced by an incompatible format version
  kBadCrc,          ///< payload CRC mismatch (bit rot / partial write)
  kTruncated,       ///< fewer bytes than the format requires
  kCorrupt,         ///< structurally invalid payload (bad enum, size, ...)
  kNetlistMismatch, ///< checkpoint was taken on a different netlist
  kSeedMismatch,    ///< checkpoint was taken under a different master seed
  kQuotaExceeded,   ///< write refused: the directory's byte quota is full
};

/// Human-readable name of an error code ("bad_crc", "truncated", ...).
const char* to_string(CheckpointErrc code);

/// The one exception type of the recover subsystem. Carries a typed code
/// so callers can distinguish "no such file" from "corrupt data".
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrc code, const std::string& detail);

  CheckpointErrc code() const { return code_; }

 private:
  CheckpointErrc code_;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Appends fixed-width little-endian values to a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);

  /// Length-prefixed (u32) vector of i32.
  void vec_i32(const std::vector<std::int32_t>& v);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads the ByteWriter encoding back. Every accessor throws
/// CheckpointError(kTruncated) when fewer bytes remain than requested, so
/// a short file can never cause an out-of-bounds read.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();

  /// Reads a u32 length prefix and validates it against the bytes left
  /// (`min_elem_size` bytes per element) before allocating, so a corrupt
  /// length cannot trigger a giant allocation.
  std::size_t length_prefix(std::size_t min_elem_size);

  std::vector<std::int32_t> vec_i32();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }

  /// Fails with kCorrupt unless the whole payload was consumed.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace tw::recover
