// Deterministic fault injection for crash-recovery testing.
//
// A FaultPlan arms "kill the flow at the Nth poll of site S" triggers.
// The annealers poll at their accept and temperature-step boundaries — the
// exact boundaries checkpoints are written at — so a test can reproduce a
// crash at any point of the schedule, then prove that resuming from the
// latest checkpoint yields a byte-identical fingerprint to the
// uninterrupted run. Polls are counted, not timed, so a given plan kills
// the same (netlist, params, seed) run at the same state every time.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace tw::recover {

/// Poll sites instrumented in the flow.
enum class FaultSite : std::uint8_t {
  kStage1Step = 0,   ///< top of a stage-1 temperature step
  kStage1Accept,     ///< after an accepted stage-1 move
  kStage2Step,       ///< top of a stage-2 refinement-anneal temperature step
  kStage2Accept,     ///< after an accepted stage-2 move
  kStage2Pass,       ///< start of a stage-2 refinement pass
  kRouteNet,         ///< before each net the global router (stage 3) routes
};

inline constexpr std::size_t kNumFaultSites = 6;

const char* to_string(FaultSite site);

/// Thrown by FaultPlan::poll when an armed trigger fires. Models the
/// process dying at that boundary: the flow makes no attempt to catch it,
/// so it unwinds out of TimberWolfMC::run just like a crash would end the
/// process — except the test harness survives to resume.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, std::int64_t count);

  FaultSite site() const { return site_; }
  /// Zero-based index of the poll that fired.
  std::int64_t count() const { return count_; }

 private:
  FaultSite site_;
  std::int64_t count_;
};

/// The poll interface the flow is instrumented against. The annealers call
/// `poll(site)` at their step/accept/pass boundaries whenever an injector
/// is installed; an implementation may throw to model the run dying at
/// that exact boundary (FaultPlan for scripted crash tests, the replica
/// pool's watchdog probe for in-process kills of stuck workers). Polls
/// never consume RNG state, so an instrumented run is byte-identical to a
/// bare one up to the kill point.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Counts one poll of `site`; may throw to kill the run at this
  /// boundary. Must be deterministic in the poll sequence alone (no
  /// wall-clock, no randomness) so a given run dies at the same state
  /// every time.
  virtual void poll(FaultSite site) = 0;
};

class FaultPlan : public FaultInjector {
 public:
  /// Arms a kill at the `nth` (zero-based) poll of `site`. Multiple arms
  /// may be registered; each fires at most once.
  void kill_at(FaultSite site, std::int64_t nth);

  /// Counts one poll of `site`; throws InjectedFault when an armed
  /// trigger matches. No-op (beyond counting) otherwise.
  void poll(FaultSite site) override;

  /// Polls seen so far at `site` (useful for sizing test plans).
  std::int64_t count(FaultSite site) const {
    return counts_[static_cast<std::size_t>(site)];
  }

 private:
  struct Arm {
    FaultSite site;
    std::int64_t nth;
    bool fired = false;
  };

  std::vector<Arm> arms_;
  std::array<std::int64_t, kNumFaultSites> counts_{};
};

// --- disk-fault injection ---------------------------------------------------
//
// The durability layers (checkpoint sink, job journal, result cache) all
// end in "write bytes to disk" operations whose failure modes — ENOSPC,
// short writes from a dying device — are what their degraded modes exist
// for, yet are nearly impossible to provoke in a test without root
// tricks. The seam below lets a test script those failures at exact
// write indices: each durable-write site polls `write_fault(site)`
// before touching the filesystem and translates a non-kNone answer into
// the same typed error a real failure would produce (for kShortWrite,
// after leaving a genuinely truncated temp/tail behind, so torn-state
// handling is exercised too). Polls are counted, never timed.

/// Instrumented durable-write sites.
enum class DiskSite : std::uint8_t {
  kCheckpointWrite = 0,  ///< FileCheckpointSink::save
  kJournalAppend,        ///< job-journal record append
  kJournalRotate,        ///< journal segment rotation / compaction rewrite
  kCacheWrite,           ///< result-cache entry write
};

inline constexpr std::size_t kNumDiskSites = 4;

const char* to_string(DiskSite site);

/// What a polled write should pretend happened.
enum class DiskFault : std::uint8_t {
  kNone = 0,    ///< write proceeds normally
  kEnospc,      ///< fail before writing anything (disk full)
  kShortWrite,  ///< write a truncated prefix, then fail (torn record)
};

const char* to_string(DiskFault fault);

/// The poll interface the durable-write sites are instrumented against.
/// Unlike FaultInjector this is polled from several threads at once (the
/// daemon thread journals while pool workers checkpoint), so
/// implementations must be thread-safe.
class DiskFaultInjector {
 public:
  virtual ~DiskFaultInjector() = default;

  /// Counts one write at `site`; returns the fault the writer must
  /// simulate. Deterministic in the per-site poll sequence alone.
  virtual DiskFault write_fault(DiskSite site) = 0;
};

class DiskFaultPlan : public DiskFaultInjector {
 public:
  /// Arms a one-shot fault at the `nth` (zero-based) write to `site`.
  void fail_at(DiskSite site, std::int64_t nth,
               DiskFault kind = DiskFault::kEnospc);

  /// Arms a persistent fault: every write to `site` from the `nth` on
  /// fails — the "disk stays full" model the degraded modes exist for.
  void fail_from(DiskSite site, std::int64_t nth,
                 DiskFault kind = DiskFault::kEnospc);

  DiskFault write_fault(DiskSite site) override;

  /// Writes polled so far at `site`.
  std::int64_t count(DiskSite site) const;

 private:
  struct Arm {
    DiskSite site;
    std::int64_t nth;
    DiskFault kind;
    bool persistent;
    bool fired = false;
  };

  mutable std::mutex mu_;
  std::vector<Arm> arms_;
  std::array<std::int64_t, kNumDiskSites> counts_{};
};

}  // namespace tw::recover
