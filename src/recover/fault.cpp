#include "recover/fault.hpp"

namespace tw::recover {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kStage1Step: return "stage1.step";
    case FaultSite::kStage1Accept: return "stage1.accept";
    case FaultSite::kStage2Step: return "stage2.step";
    case FaultSite::kStage2Accept: return "stage2.accept";
    case FaultSite::kStage2Pass: return "stage2.pass";
    case FaultSite::kRouteNet: return "route.net";
  }
  return "unknown";
}

InjectedFault::InjectedFault(FaultSite site, std::int64_t count)
    : std::runtime_error(std::string("injected fault at ") + to_string(site) +
                         " #" + std::to_string(count)),
      site_(site),
      count_(count) {}

void FaultPlan::kill_at(FaultSite site, std::int64_t nth) {
  arms_.push_back({site, nth, false});
}

void FaultPlan::poll(FaultSite site) {
  const std::int64_t n = counts_[static_cast<std::size_t>(site)]++;
  for (Arm& arm : arms_) {
    if (arm.fired || arm.site != site || arm.nth != n) continue;
    arm.fired = true;
    throw InjectedFault(site, n);
  }
}

const char* to_string(DiskSite site) {
  switch (site) {
    case DiskSite::kCheckpointWrite: return "checkpoint.write";
    case DiskSite::kJournalAppend: return "journal.append";
    case DiskSite::kJournalRotate: return "journal.rotate";
    case DiskSite::kCacheWrite: return "cache.write";
  }
  return "unknown";
}

const char* to_string(DiskFault fault) {
  switch (fault) {
    case DiskFault::kNone: return "none";
    case DiskFault::kEnospc: return "enospc";
    case DiskFault::kShortWrite: return "short_write";
  }
  return "unknown";
}

void DiskFaultPlan::fail_at(DiskSite site, std::int64_t nth, DiskFault kind) {
  const std::lock_guard<std::mutex> lock(mu_);
  arms_.push_back({site, nth, kind, /*persistent=*/false, /*fired=*/false});
}

void DiskFaultPlan::fail_from(DiskSite site, std::int64_t nth,
                              DiskFault kind) {
  const std::lock_guard<std::mutex> lock(mu_);
  arms_.push_back({site, nth, kind, /*persistent=*/true, /*fired=*/false});
}

DiskFault DiskFaultPlan::write_fault(DiskSite site) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t n = counts_[static_cast<std::size_t>(site)]++;
  for (Arm& arm : arms_) {
    if (arm.site != site) continue;
    if (arm.persistent ? n < arm.nth : (arm.fired || arm.nth != n)) continue;
    arm.fired = true;
    return arm.kind;
  }
  return DiskFault::kNone;
}

std::int64_t DiskFaultPlan::count(DiskSite site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<std::size_t>(site)];
}

}  // namespace tw::recover
