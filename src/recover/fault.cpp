#include "recover/fault.hpp"

namespace tw::recover {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kStage1Step: return "stage1.step";
    case FaultSite::kStage1Accept: return "stage1.accept";
    case FaultSite::kStage2Step: return "stage2.step";
    case FaultSite::kStage2Accept: return "stage2.accept";
    case FaultSite::kStage2Pass: return "stage2.pass";
    case FaultSite::kRouteNet: return "route.net";
  }
  return "unknown";
}

InjectedFault::InjectedFault(FaultSite site, std::int64_t count)
    : std::runtime_error(std::string("injected fault at ") + to_string(site) +
                         " #" + std::to_string(count)),
      site_(site),
      count_(count) {}

void FaultPlan::kill_at(FaultSite site, std::int64_t nth) {
  arms_.push_back({site, nth, false});
}

void FaultPlan::poll(FaultSite site) {
  const std::int64_t n = counts_[static_cast<std::size_t>(site)]++;
  for (Arm& arm : arms_) {
    if (arm.fired || arm.site != site || arm.nth != n) continue;
    arm.fired = true;
    throw InjectedFault(site, n);
  }
}

}  // namespace tw::recover
