// Run budgets and cooperative cancellation.
//
// The annealing stages and the routers are the long-lived hot paths of
// the flow; a RunBudget bounds them by *work*, not wall-clock time (the
// library bans wall-clock reads — see tools/lint.py), so a budgeted run
// is still a deterministic function of its inputs. When a budget expires
// (or an external thread requests cancellation) the stages degrade
// gracefully instead of aborting: they quench — one final
// improvements-only sweep — keep the best feasible configuration seen,
// and return it with an outcome of kBudgetExhausted / kCancelled so the
// caller can tell a partial result from a converged one.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace tw::recover {

/// Thrown by the flow at a checkpoint-write boundary when the budget's
/// preempt flag is set (see RunBudget::request_preempt). The checkpoint
/// for the current step was already durably saved when this unwinds, so
/// a later resume via adopt_checkpoint replays from exactly here —
/// byte-identical to the uninterrupted run, with zero work lost. The
/// flow does not catch it; the supervising executor does, and re-queues
/// the run instead of counting it as a failure.
class Preempted : public std::runtime_error {
 public:
  explicit Preempted(const std::string& where)
      : std::runtime_error("preempted at " + where) {}
};

/// How a flow / stage run ended (FlowResult::outcome and friends).
enum class RunOutcome : std::uint8_t {
  kCompleted = 0,        ///< ran the full schedule to convergence
  kBudgetExhausted = 1,  ///< RunBudget expired; result is best-so-far
  kCancelled = 2,        ///< cancellation was requested; best-so-far
  kResumed = 3,          ///< restarted from a checkpoint, then completed
};

const char* to_string(RunOutcome outcome);

/// Work budget shared by every component of one flow run. Move and step
/// charges are cheap relaxed atomics so a controlling thread may observe
/// progress and request cancellation concurrently; the flow itself only
/// ever charges from its single run thread.
class RunBudget {
 public:
  static constexpr std::int64_t kUnlimited = -1;

  RunBudget() = default;
  RunBudget(std::int64_t max_moves, std::int64_t max_steps)
      : max_moves_(max_moves), max_steps_(max_steps) {}

  /// Charges one attempted move (an inner-loop iteration of an annealer
  /// or one interchange attempt of the global router).
  void charge_move() { moves_.fetch_add(1, std::memory_order_relaxed); }

  /// Charges one temperature step.
  void charge_step() { steps_.fetch_add(1, std::memory_order_relaxed); }

  /// Requests cooperative cancellation; honored at the next move boundary.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Requests checkpoint preemption: the run parks at its next
  /// checkpoint-write boundary by throwing Preempted *after* the
  /// checkpoint is durably saved. Unlike cancellation this is not a
  /// wind-down — no quench runs, no partial result is produced — the run
  /// is expected to be resumed later from that checkpoint and finish
  /// byte-identically. Ignored by runs that take no checkpoints (there
  /// is nowhere to park them).
  void request_preempt() { preempt_.store(true, std::memory_order_relaxed); }

  bool preempt_requested() const {
    return preempt_.load(std::memory_order_relaxed);
  }

  /// Re-arms a budget for the resumed run after a preemption.
  void clear_preempt() { preempt_.store(false, std::memory_order_relaxed); }

  bool exhausted() const {
    const std::int64_t mm = max_moves_;
    const std::int64_t ms = max_steps_;
    return (mm != kUnlimited &&
            moves_.load(std::memory_order_relaxed) >= mm) ||
           (ms != kUnlimited && steps_.load(std::memory_order_relaxed) >= ms);
  }

  /// True when the run should wind down (either reason).
  bool stop_requested() const { return cancelled() || exhausted(); }

  /// The outcome a stage should report when stop_requested() fired
  /// (cancellation wins over exhaustion: it is the stronger request).
  RunOutcome stop_outcome() const {
    return cancelled() ? RunOutcome::kCancelled : RunOutcome::kBudgetExhausted;
  }

  std::int64_t moves_charged() const {
    return moves_.load(std::memory_order_relaxed);
  }
  std::int64_t steps_charged() const {
    return steps_.load(std::memory_order_relaxed);
  }

 private:
  std::int64_t max_moves_ = kUnlimited;
  std::int64_t max_steps_ = kUnlimited;
  std::atomic<std::int64_t> moves_{0};
  std::atomic<std::int64_t> steps_{0};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> preempt_{false};
};

}  // namespace tw::recover
