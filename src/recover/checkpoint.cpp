#include "recover/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "netlist/parser.hpp"
#include "place/placement.hpp"
#include "util/log.hpp"

namespace tw::recover {
namespace {

constexpr char kMagic[4] = {'T', 'W', 'C', 'P'};

// --- field-group encoders (kept strictly in sync with the decoders; any
// --- incompatible change must bump kCheckpointVersion) ----------------------

void put_rect(ByteWriter& w, const Rect& r) {
  w.i64(r.xlo);
  w.i64(r.ylo);
  w.i64(r.xhi);
  w.i64(r.yhi);
}

Rect get_rect(ByteReader& r) {
  Rect out;
  out.xlo = r.i64();
  out.ylo = r.i64();
  out.xhi = r.i64();
  out.yhi = r.i64();
  return out;
}

void put_rng(ByteWriter& w, const std::array<std::uint64_t, 4>& s) {
  for (const std::uint64_t word : s) w.u64(word);
}

std::array<std::uint64_t, 4> get_rng(ByteReader& r) {
  std::array<std::uint64_t, 4> s{};
  for (auto& word : s) word = r.u64();
  return s;
}

void put_outcome(ByteWriter& w, RunOutcome o) {
  w.u8(static_cast<std::uint8_t>(o));
}

RunOutcome get_outcome(ByteReader& r) {
  const std::uint8_t v = r.u8();
  if (v > static_cast<std::uint8_t>(RunOutcome::kResumed))
    throw CheckpointError(CheckpointErrc::kCorrupt,
                          "bad run outcome " + std::to_string(v));
  return static_cast<RunOutcome>(v);
}

void put_stage1_result(ByteWriter& w, const Stage1Result& s) {
  w.f64(s.final_teic);
  w.f64(s.final_teil);
  w.i64(s.residual_overlap);
  w.i32(s.overloaded_sites);
  put_rect(w, s.core);
  w.f64(s.t_infinity);
  w.f64(s.temperature_scale);
  w.f64(s.p2);
  w.i32(s.temperature_steps);
  w.i64(s.attempts);
  w.i64(s.accepts);
  w.u32(static_cast<std::uint32_t>(s.trace.size()));
  for (const TemperaturePoint& p : s.trace) {
    w.f64(p.t);
    w.f64(p.avg_cost);
    w.f64(p.acceptance_rate);
    w.i64(p.window_x);
  }
  put_outcome(w, s.outcome);
}

Stage1Result get_stage1_result(ByteReader& r) {
  Stage1Result s;
  s.final_teic = r.f64();
  s.final_teil = r.f64();
  s.residual_overlap = r.i64();
  s.overloaded_sites = r.i32();
  s.core = get_rect(r);
  s.t_infinity = r.f64();
  s.temperature_scale = r.f64();
  s.p2 = r.f64();
  s.temperature_steps = r.i32();
  s.attempts = r.i64();
  s.accepts = r.i64();
  const std::size_t n = r.length_prefix(4 * 8);
  s.trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TemperaturePoint p;
    p.t = r.f64();
    p.avg_cost = r.f64();
    p.acceptance_rate = r.f64();
    p.window_x = r.i64();
    s.trace.push_back(p);
  }
  s.outcome = get_outcome(r);
  return s;
}

void put_stage1_cursor(ByteWriter& w, const Stage1Cursor& c) {
  w.i32(c.next_step);
  w.f64(c.t);
  w.f64(c.p2_base);
  put_stage1_result(w, c.partial);
  put_rng(w, c.rng);
}

Stage1Cursor get_stage1_cursor(ByteReader& r) {
  Stage1Cursor c;
  c.next_step = r.i32();
  c.t = r.f64();
  c.p2_base = r.f64();
  c.partial = get_stage1_result(r);
  c.rng = get_rng(r);
  return c;
}

void put_pass(ByteWriter& w, const RefinementPass& p) {
  w.f64(p.teic);
  w.f64(p.teil);
  w.i64(p.chip_area);
  w.f64(p.route_length);
  w.i32(p.route_overflow);
  w.i32(p.unrouted_nets);
  w.u64(static_cast<std::uint64_t>(p.regions));
  w.i32(p.temperature_steps);
  w.i32(p.width_rule_violations);
  w.i64(p.router_counters.dijkstra_runs);
  w.i64(p.router_counters.nodes_popped);
  w.i64(p.router_counters.heap_pushes);
  w.i64(p.router_counters.interchange_trials);
}

RefinementPass get_pass(ByteReader& r) {
  RefinementPass p;
  p.teic = r.f64();
  p.teil = r.f64();
  p.chip_area = r.i64();
  p.route_length = r.f64();
  p.route_overflow = r.i32();
  p.unrouted_nets = r.i32();
  p.regions = static_cast<std::size_t>(r.u64());
  p.temperature_steps = r.i32();
  p.width_rule_violations = r.i32();
  p.router_counters.dijkstra_runs = r.i64();
  p.router_counters.nodes_popped = r.i64();
  p.router_counters.heap_pushes = r.i64();
  p.router_counters.interchange_trials = r.i64();
  return p;
}

void put_stage2_cursor(ByteWriter& w, const Stage2Cursor& c) {
  w.i32(c.pass);
  w.f64(c.anneal.t);
  w.i32(c.anneal.steps);
  w.i32(c.anneal.stall);
  w.f64(c.anneal.last_cost);
  w.f64(c.p2);
  put_rect(w, c.working_core);
  w.u32(static_cast<std::uint32_t>(c.expansions.size()));
  for (const auto& e : c.expansions)
    for (const Coord v : e) w.i64(v);
  put_pass(w, c.rp);
  w.u32(static_cast<std::uint32_t>(c.done.size()));
  for (const RefinementPass& p : c.done) put_pass(w, p);
  put_rng(w, c.rng);
}

Stage2Cursor get_stage2_cursor(ByteReader& r) {
  Stage2Cursor c;
  c.pass = r.i32();
  c.anneal.t = r.f64();
  c.anneal.steps = r.i32();
  c.anneal.stall = r.i32();
  c.anneal.last_cost = r.f64();
  c.p2 = r.f64();
  c.working_core = get_rect(r);
  const std::size_t ne = r.length_prefix(4 * 8);
  c.expansions.reserve(ne);
  for (std::size_t i = 0; i < ne; ++i) {
    std::array<Coord, 4> e{};
    for (auto& v : e) v = r.i64();
    c.expansions.push_back(e);
  }
  c.rp = get_pass(r);
  const std::size_t np = r.length_prefix(8);
  c.done.reserve(np);
  for (std::size_t i = 0; i < np; ++i) c.done.push_back(get_pass(r));
  c.rng = get_rng(r);
  return c;
}

void put_placement(ByteWriter& w, const PackedPlacement& p) {
  w.u32(static_cast<std::uint32_t>(p.cells.size()));
  for (const PackedCell& c : p.cells) {
    w.i64(c.center.x);
    w.i64(c.center.y);
    w.u8(static_cast<std::uint8_t>(c.orient));
    w.i32(c.instance);
    w.f64(c.aspect);
    std::vector<std::int32_t> sites(c.pin_site.begin(), c.pin_site.end());
    w.vec_i32(sites);
  }
}

PackedPlacement get_placement(ByteReader& r) {
  PackedPlacement p;
  const std::size_t n = r.length_prefix(2 * 8 + 1 + 4 + 8 + 4);
  p.cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PackedCell c;
    c.center.x = r.i64();
    c.center.y = r.i64();
    const std::uint8_t o = r.u8();
    if (o >= kAllOrients.size())
      throw CheckpointError(CheckpointErrc::kCorrupt,
                            "bad orient " + std::to_string(o) + " for cell " +
                                std::to_string(i));
    c.orient = static_cast<Orient>(o);
    c.instance = r.i32();
    c.aspect = r.f64();
    const std::vector<std::int32_t> sites = r.vec_i32();
    c.pin_site.assign(sites.begin(), sites.end());
    p.cells.push_back(std::move(c));
  }
  return p;
}

}  // namespace

const char* to_string(FlowPhase p) {
  switch (p) {
    case FlowPhase::kStage1: return "stage1";
    case FlowPhase::kStage2: return "stage2";
    case FlowPhase::kMultilevelRefine: return "multilevel-refine";
    case FlowPhase::kParallelStage1: return "parallel-stage1";
  }
  return "unknown";
}

PackedPlacement pack_placement(const Placement& p) {
  PackedPlacement out;
  const auto n = static_cast<CellId>(p.netlist().num_cells());
  out.cells.reserve(static_cast<std::size_t>(n));
  for (CellId i = 0; i < n; ++i) {
    const CellState& st = p.state(i);
    PackedCell c;
    c.center = st.center;
    c.orient = st.orient;
    c.instance = st.instance;
    c.aspect = st.aspect;
    c.pin_site = st.pin_site;
    out.cells.push_back(std::move(c));
  }
  return out;
}

void apply_placement(Placement& p, const PackedPlacement& packed) {
  if (packed.cells.size() != p.netlist().num_cells())
    throw CheckpointError(
        CheckpointErrc::kCorrupt,
        "placement has " + std::to_string(packed.cells.size()) +
            " cells, netlist has " + std::to_string(p.netlist().num_cells()));
  for (std::size_t i = 0; i < packed.cells.size(); ++i) {
    const PackedCell& c = packed.cells[i];
    try {
      // Bulk checkpoint restore, not a per-move transaction: callers
      // rebuild the overlap/cost engines from scratch after applying.
      p.restore_cell(static_cast<CellId>(i), c.center, c.orient,  // lint: allow(txn-reach)
                     c.instance, c.aspect, c.pin_site);
    } catch (const std::invalid_argument& e) {
      throw CheckpointError(CheckpointErrc::kCorrupt,
                            "cell " + std::to_string(i) + ": " + e.what());
    }
  }
}

std::uint64_t netlist_digest(const Netlist& nl) {
  const std::string text = write_netlist(nl);
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::vector<std::uint8_t> encode_checkpoint(const FlowCheckpoint& cp) {
  ByteWriter w;
  w.u64(cp.master_seed);
  w.u64(cp.digest);
  w.u8(static_cast<std::uint8_t>(cp.phase));
  if (cp.phase == FlowPhase::kStage1 ||
      cp.phase == FlowPhase::kParallelStage1) {
    put_stage1_cursor(w, cp.s1);
  } else if (cp.phase == FlowPhase::kMultilevelRefine) {
    put_stage1_result(w, cp.ml_coarse);
    w.f64(cp.ml_warm_teil);
    w.i32(cp.ml_clusters);
    w.i32(cp.ml_dropped_nets);
    put_stage1_cursor(w, cp.s1);
  } else {
    put_stage1_result(w, cp.s1_done);
    w.f64(cp.stage1_teil);
    w.i64(cp.stage1_chip_area);
    put_stage2_cursor(w, cp.s2);
  }
  put_placement(w, cp.placement);
  return w.take();
}

FlowCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  FlowCheckpoint cp;
  cp.master_seed = r.u64();
  cp.digest = r.u64();
  const std::uint8_t phase = r.u8();
  if (phase > static_cast<std::uint8_t>(FlowPhase::kParallelStage1))
    throw CheckpointError(CheckpointErrc::kCorrupt,
                          "bad phase " + std::to_string(phase));
  cp.phase = static_cast<FlowPhase>(phase);
  if (cp.phase == FlowPhase::kStage1 ||
      cp.phase == FlowPhase::kParallelStage1) {
    cp.s1 = get_stage1_cursor(r);
  } else if (cp.phase == FlowPhase::kMultilevelRefine) {
    cp.ml_coarse = get_stage1_result(r);
    cp.ml_warm_teil = r.f64();
    cp.ml_clusters = r.i32();
    cp.ml_dropped_nets = r.i32();
    cp.s1 = get_stage1_cursor(r);
  } else {
    cp.s1_done = get_stage1_result(r);
    cp.stage1_teil = r.f64();
    cp.stage1_chip_area = r.i64();
    cp.s2 = get_stage2_cursor(r);
  }
  cp.placement = get_placement(r);
  r.expect_end();
  return cp;
}

namespace {

/// Frames `payload` and writes it atomically to `path` (temp + rename).
void write_framed_payload(const std::string& path,
                          std::span<const std::uint8_t> payload) {
  ByteWriter header;
  for (const char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kCheckpointVersion);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(crc32(payload));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw CheckpointError(CheckpointErrc::kIo, "cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out)
      throw CheckpointError(CheckpointErrc::kIo, "short write to " + tmp);
    // Close before the rename and check it: a close-time flush failure
    // (full disk, dying device) would otherwise be swallowed by the
    // destructor and the truncated temp file renamed into place.
    out.close();
    if (out.fail())
      throw CheckpointError(CheckpointErrc::kIo, "close failed on " + tmp);
  }
  // The rename is the commit point: readers only ever see the final name
  // with complete contents (or the previous checkpoint, or nothing).
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw CheckpointError(CheckpointErrc::kIo,
                          "rename " + tmp + " -> " + path + ": " + ec.message());
}

}  // namespace

void write_checkpoint_file(const std::string& path, const FlowCheckpoint& cp) {
  write_framed_payload(path, encode_checkpoint(cp));
}

FlowCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw CheckpointError(CheckpointErrc::kIo, "cannot open " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad())
    throw CheckpointError(CheckpointErrc::kIo, "read error on " + path);

  ByteReader r(bytes);
  if (r.remaining() < 16)
    throw CheckpointError(CheckpointErrc::kTruncated,
                          "file holds " + std::to_string(bytes.size()) +
                              " byte(s), header needs 16");
  for (const char c : kMagic)
    if (r.u8() != static_cast<std::uint8_t>(c))
      throw CheckpointError(CheckpointErrc::kBadMagic,
                            path + " is not a checkpoint file");
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion)
    throw CheckpointError(CheckpointErrc::kBadVersion,
                          "version " + std::to_string(version) +
                              ", expected " +
                              std::to_string(kCheckpointVersion));
  const std::uint32_t size = r.u32();
  const std::uint32_t crc = r.u32();
  if (r.remaining() != size)
    throw CheckpointError(CheckpointErrc::kTruncated,
                          "payload holds " + std::to_string(r.remaining()) +
                              " byte(s), header promises " +
                              std::to_string(size));
  const std::span<const std::uint8_t> payload(bytes.data() + 16, size);
  if (crc32(payload) != crc)
    throw CheckpointError(CheckpointErrc::kBadCrc,
                          "CRC mismatch in " + path);
  return decode_checkpoint(payload);
}

namespace {

/// Parses "ckpt-NNNNNN.twcp" into NNNNNN; -1 for any other name.
int checkpoint_number(const std::string& name) {
  if (name.size() != std::string("ckpt-000000.twcp").size() ||
      name.rfind("ckpt-", 0) != 0 ||
      name.compare(name.size() - 5, 5, ".twcp") != 0)
    return -1;
  int n = 0;
  for (std::size_t i = 5; i < name.size() - 5; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return -1;
    n = n * 10 + (c - '0');
  }
  return n;
}

/// All checkpoint files in `dir` as (number, path), unsorted. A missing
/// or unreadable directory yields an empty list.
std::vector<std::pair<int, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<int, std::string>> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const int n = checkpoint_number(entry.path().filename().string());
    if (n >= 0) out.emplace_back(n, entry.path().string());
  }
  return out;
}

}  // namespace

FileCheckpointSink::FileCheckpointSink(std::string dir, int keep,
                                       std::uint64_t quota_bytes,
                                       DiskFaultInjector* disk_faults)
    : dir_(std::move(dir)),
      keep_(keep),
      quota_bytes_(quota_bytes),
      disk_faults_(disk_faults) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw CheckpointError(CheckpointErrc::kIo,
                          "cannot create " + dir_ + ": " + ec.message());
  // Continue numbering after whatever an earlier attempt left behind, and
  // start the byte ledger from what is already on disk so the quota
  // covers a predecessor's files too.
  for (const auto& [n, path] : list_checkpoints(dir_)) {
    counter_ = std::max(counter_, n);
    std::uintmax_t sz = std::filesystem::file_size(path, ec);
    if (!ec) bytes_ += static_cast<std::uint64_t>(sz);
  }
}

void FileCheckpointSink::prune_upto(int upto) {
  for (const auto& [n, old] : list_checkpoints(dir_)) {
    if (n > upto) continue;
    std::error_code ec;
    const std::uintmax_t sz = std::filesystem::file_size(old, ec);
    std::error_code rmec;
    std::filesystem::remove(old, rmec);
    if (rmec) {
      ++prune_failures_;
      log_warn("checkpoint prune failed: ", old, ": ", rmec.message(),
               " (errno ", rmec.value(), ")");
    } else if (!ec) {
      bytes_ -= std::min(bytes_, static_cast<std::uint64_t>(sz));
    }
  }
}

std::string FileCheckpointSink::save(const FlowCheckpoint& cp) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06d.twcp", counter_ + 1);
  const std::string path = dir_ + "/" + name;

  const std::vector<std::uint8_t> payload = encode_checkpoint(cp);
  const auto frame = static_cast<std::uint64_t>(payload.size()) + 16;

  if (quota_bytes_ > 0 && bytes_ + frame > quota_bytes_) {
    // Make room the retention policy allows before giving up: the save
    // that would exceed the quota may only do so because older files it
    // would prune anyway are still on disk.
    if (keep_ > 0) prune_upto(counter_ - keep_ + 1);
    if (bytes_ + frame > quota_bytes_)
      throw CheckpointError(
          CheckpointErrc::kQuotaExceeded,
          dir_ + " holds " + std::to_string(bytes_) + " byte(s), frame of " +
              std::to_string(frame) + " would exceed the quota of " +
              std::to_string(quota_bytes_));
  }

  if (disk_faults_ != nullptr) {
    const DiskFault f = disk_faults_->write_fault(DiskSite::kCheckpointWrite);
    if (f == DiskFault::kShortWrite) {
      // Leave a genuinely truncated temp file behind — exactly what a
      // dying disk leaves — then fail like the real short-write path.
      std::ofstream out(path + ".tmp", std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(std::min<std::size_t>(
                    payload.size(), 7)));
    }
    if (f != DiskFault::kNone)
      throw CheckpointError(CheckpointErrc::kIo,
                            std::string("injected ") + to_string(f) +
                                " writing " + path);
  }

  write_framed_payload(path, payload);
  ++counter_;
  ++saved_;
  bytes_ += frame;
  if (keep_ > 0) {
    // Prune only after the new file is durably in place, so the newest
    // `keep_` files always exist on disk. Each removal is an atomic
    // unlink; a failure to remove is not a lost checkpoint, so it only
    // degrades retention, never the save — but it is an early sign of a
    // disk going bad (read-only remount, permission rot), so every
    // failure is surfaced through the log before it escalates into a
    // kIo write failure on the next save.
    prune_upto(counter_ - keep_);
  }
  return path;
}

std::optional<std::string> find_latest_checkpoint(const std::string& dir) {
  std::vector<std::pair<int, std::string>> files = list_checkpoints(dir);
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [n, path] : files) {
    try {
      (void)load_checkpoint(path);
      return path;
    } catch (const CheckpointError&) {
      // Torn, bit-rotted or foreign file under a checkpoint name: fall
      // back to the next older candidate instead of poisoning the resume.
      continue;
    }
  }
  return std::nullopt;
}

std::optional<FlowCheckpoint> adopt_checkpoint(
    const std::string& dir, std::uint64_t digest,
    std::optional<std::uint64_t> seed) {
  std::vector<std::pair<int, std::string>> files = list_checkpoints(dir);
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [n, path] : files) {
    FlowCheckpoint cp;
    try {
      cp = load_checkpoint(path);
    } catch (const CheckpointError&) {
      continue;  // torn / bit-rotted / foreign file: try the next older one
    }
    if (cp.digest != digest) continue;      // stale directory
    if (seed && cp.master_seed != *seed) continue;
    return cp;
  }
  return std::nullopt;
}

}  // namespace tw::recover
