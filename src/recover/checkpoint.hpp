// Versioned, CRC-validated checkpoints of the full flow state.
//
// A FlowCheckpoint holds everything needed to restart an interrupted run
// such that the continuation is byte-identical to the uninterrupted one:
// the master seed, a digest of the netlist it was taken on, the phase
// (stage 1 or stage 2), the phase cursor (schedule position, calibrations,
// accumulated metrics, RNG stream state — see Stage1Cursor/Stage2Cursor),
// and the placement essentials. Derived placement state (realized custom
// geometry, pin sites, occupancy) is *recomputed* on load through pure
// functions of the netlist, so it comes back bit-identical without being
// stored.
//
// File format (docs/ROBUSTNESS.md):
//   magic "TWCP" | u32 version | u32 payload size | u32 CRC-32 | payload
// all little-endian. Files are written atomically (temp + rename), so a
// crash mid-write never leaves a half-written file under the final name;
// a torn or bit-flipped file fails the size or CRC check with a typed
// CheckpointError instead of producing garbage state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "place/stage1.hpp"
#include "recover/fault.hpp"
#include "recover/serialize.hpp"
#include "refine/stage2.hpp"

namespace tw::recover {

/// Bumped on any incompatible change to the payload encoding. Readers
/// reject other versions with kBadVersion (no silent migration).
/// Version history: 2 added stage-2 cursors; 3 added the multilevel
/// refinement phase (kMultilevelRefine + its warm-start fields); 4 added
/// the parallel stage-1 phase (kParallelStage1 — same cursor payload as
/// kStage1, since per-slot RNG streams are re-derived from the master
/// seed, but the phase tag selects the parallel engine on resume).
inline constexpr std::uint32_t kCheckpointVersion = 4;

/// The annealer-owned essentials of one cell; everything else in CellState
/// is a pure function of (netlist, these) and is rebuilt on restore.
struct PackedCell {
  Point center;
  Orient orient = Orient::N;
  InstanceId instance = 0;
  double aspect = 1.0;
  std::vector<int> pin_site;
};

struct PackedPlacement {
  std::vector<PackedCell> cells;
};

PackedPlacement pack_placement(const Placement& p);

/// Restores packed cell states onto a placement of the same netlist.
/// Throws CheckpointError(kCorrupt) when the packed state is inconsistent
/// with the netlist (wrong cell count, illegal orient/aspect/site, ...).
void apply_placement(Placement& p, const PackedPlacement& packed);

enum class FlowPhase : std::uint8_t {
  kStage1 = 0,            ///< TimberWolfMC flow, stage-1 anneal in flight
  kStage2 = 1,            ///< TimberWolfMC flow, stage-2 refinement in flight
  kMultilevelRefine = 2,  ///< MultilevelFlow, refinement anneal in flight
  kParallelStage1 = 3     ///< stage-1 anneal on the parallel engine
};
const char* to_string(FlowPhase p);

/// Stable digest of the netlist (FNV-1a over its canonical text form):
/// resuming against a different netlist is a typed error, never UB.
std::uint64_t netlist_digest(const Netlist& nl);

struct FlowCheckpoint {
  std::uint64_t master_seed = 0;
  std::uint64_t digest = 0;  ///< netlist_digest of the source netlist
  FlowPhase phase = FlowPhase::kStage1;

  /// Valid when phase == kStage1, kParallelStage1 or kMultilevelRefine
  /// (the multilevel refinement is a stage-1 anneal; its cursor rides
  /// here — the parallel engine re-derives slot streams from the master
  /// seed, so the serial cursor carries everything it needs).
  Stage1Cursor s1;

  /// Valid when phase == kMultilevelRefine: the warm start is complete and
  /// these carry its outputs (MultilevelResult's warm-start metrics are
  /// reported from here on resume — the warm start is never re-run).
  Stage1Result ml_coarse;      ///< coarse-level anneal (cluster source)
  double ml_warm_teil = 0.0;   ///< TEIL of the projected warm placement
  std::int32_t ml_clusters = 0;
  std::int32_t ml_dropped_nets = 0;

  /// Valid when phase == kStage2: stage 1 is complete and these carry its
  /// outputs (the flow result's stage-1 metrics are reported from here,
  /// and the stage-2 cursor interprets core/t_infinity/scale from s1_done).
  Stage1Result s1_done;
  double stage1_teil = 0.0;
  Coord stage1_chip_area = 0;
  Stage2Cursor s2;

  PackedPlacement placement;
};

std::vector<std::uint8_t> encode_checkpoint(const FlowCheckpoint& cp);
FlowCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

/// Frames and writes a checkpoint atomically: encode, then write magic /
/// version / size / CRC / payload to `path + ".tmp"`, then rename onto
/// `path`. Throws CheckpointError(kIo) on filesystem failure.
void write_checkpoint_file(const std::string& path, const FlowCheckpoint& cp);

/// Reads a checkpoint file back, validating frame, size and CRC before
/// decoding. Throws CheckpointError with the matching code on any defect.
FlowCheckpoint load_checkpoint(const std::string& path);

/// Writes numbered checkpoint files (<dir>/ckpt-000042.twcp) with a
/// monotonic in-process counter — no wall clock, no randomness, so runs
/// stay reproducible. Creates `dir` if needed; numbering continues after
/// the largest file already present, so a retried run never writes below
/// an earlier attempt's files (find_latest_checkpoint would otherwise keep
/// returning the stale, higher-numbered one).
///
/// Every failure — unwritable directory, failed open, short write, failed
/// close or rename — surfaces as CheckpointError(kIo); a checkpoint is
/// never silently dropped.
class FileCheckpointSink {
 public:
  /// `keep` > 0 bounds the directory: after each save, all but the newest
  /// `keep` checkpoint files are pruned (each removal is an atomic unlink,
  /// and pruning runs only after the new file is durably renamed in, so
  /// the newest `keep` files always exist). `keep` == 0 keeps everything.
  ///
  /// `quota_bytes` > 0 bounds the directory by *size*: a save whose frame
  /// would push the checkpoint bytes on disk past the quota first prunes
  /// what retention allows, then — if still over — refuses with a typed
  /// CheckpointError(kQuotaExceeded) *before* writing anything. The
  /// caller (the replica supervisor) treats that like any other
  /// checkpoint failure and degrades to checkpoint-off; the quota is
  /// never exceeded and never silently "fixed" by dropping the newest
  /// state.
  ///
  /// `disk_faults`, when set, is polled (DiskSite::kCheckpointWrite)
  /// before each write so tests can script ENOSPC / short-write failures
  /// (docs/ROBUSTNESS.md "Disk-fault injection").
  explicit FileCheckpointSink(std::string dir, int keep = 0,
                              std::uint64_t quota_bytes = 0,
                              DiskFaultInjector* disk_faults = nullptr);

  /// Writes the next numbered file; returns the path written.
  std::string save(const FlowCheckpoint& cp);

  int saved() const { return saved_; }
  const std::string& dir() const { return dir_; }
  int keep() const { return keep_; }

  /// Checkpoint bytes currently on disk in `dir` (frame + payload, as
  /// maintained across saves and prunes by this sink instance).
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t quota_bytes() const { return quota_bytes_; }

  /// Retention-prune removals that failed since construction. Each failure
  /// is also logged (path + errno) the moment it happens: pruning trouble
  /// is an early symptom of the disk problems that later surface as kIo
  /// write failures, so it must never be silent.
  int prune_failures() const { return prune_failures_; }

 private:
  /// Removes checkpoint files numbered <= `upto`, keeping `bytes_` true.
  void prune_upto(int upto);

  std::string dir_;
  int keep_ = 0;
  std::uint64_t quota_bytes_ = 0;
  DiskFaultInjector* disk_faults_ = nullptr;
  int counter_ = 0;  ///< number of the last file written (resumes from dir)
  int saved_ = 0;    ///< files written by *this* sink instance
  std::uint64_t bytes_ = 0;  ///< checkpoint bytes on disk in dir_
  int prune_failures_ = 0;
};

/// Path of the newest *valid* checkpoint in `dir`: candidates (ckpt-NNNNNN
/// names) are probed newest-first with load_checkpoint, and files that
/// fail the frame/CRC/decode checks are skipped — a torn or bit-rotted
/// newest file falls back to the next older one instead of poisoning the
/// resume. Returns nullopt when the directory holds no valid checkpoint.
std::optional<std::string> find_latest_checkpoint(const std::string& dir);

/// Checkpoint adoption: the newest valid checkpoint in `dir` that belongs
/// to (`digest`, optionally `seed`) — the supervised-retry and crash-
/// recovery entry point shared by the replica pool and the placement
/// service. Candidates are probed newest-first; files that fail the
/// frame/CRC/decode checks, or that were taken on a different netlist (a
/// stale directory), or — when `seed` is given — under a different master
/// seed, are skipped. Returns nullopt when nothing adoptable survives.
std::optional<FlowCheckpoint> adopt_checkpoint(
    const std::string& dir, std::uint64_t digest,
    std::optional<std::uint64_t> seed = std::nullopt);

}  // namespace tw::recover
