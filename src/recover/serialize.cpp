#include "recover/serialize.hpp"

#include <array>
#include <bit>

namespace tw::recover {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

const char* to_string(CheckpointErrc code) {
  switch (code) {
    case CheckpointErrc::kIo: return "io";
    case CheckpointErrc::kBadMagic: return "bad_magic";
    case CheckpointErrc::kBadVersion: return "bad_version";
    case CheckpointErrc::kBadCrc: return "bad_crc";
    case CheckpointErrc::kTruncated: return "truncated";
    case CheckpointErrc::kCorrupt: return "corrupt";
    case CheckpointErrc::kNetlistMismatch: return "netlist_mismatch";
    case CheckpointErrc::kSeedMismatch: return "seed_mismatch";
    case CheckpointErrc::kQuotaExceeded: return "quota_exceeded";
  }
  return "unknown";
}

CheckpointError::CheckpointError(CheckpointErrc code, const std::string& detail)
    : std::runtime_error(std::string("checkpoint error [") + to_string(code) +
                         "]: " + detail),
      code_(code) {}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::vec_i32(const std::vector<std::int32_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const std::int32_t x : v) i32(x);
}

void ByteReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n)
    throw CheckpointError(
        CheckpointErrc::kTruncated,
        "need " + std::to_string(n) + " byte(s) at offset " +
            std::to_string(pos_) + ", only " +
            std::to_string(bytes_.size() - pos_) + " remain");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::size_t ByteReader::length_prefix(std::size_t min_elem_size) {
  const std::size_t n = u32();
  if (min_elem_size > 0 && n > remaining() / min_elem_size)
    throw CheckpointError(CheckpointErrc::kCorrupt,
                          "length prefix " + std::to_string(n) +
                              " exceeds the " + std::to_string(remaining()) +
                              " payload byte(s) remaining");
  return n;
}

std::vector<std::int32_t> ByteReader::vec_i32() {
  const std::size_t n = length_prefix(4);
  std::vector<std::int32_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(i32());
  return v;
}

void ByteReader::expect_end() const {
  if (!at_end())
    throw CheckpointError(CheckpointErrc::kCorrupt,
                          std::to_string(remaining()) +
                              " trailing byte(s) after payload");
}

}  // namespace tw::recover
