#include "recover/budget.hpp"

namespace tw::recover {

const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted: return "completed";
    case RunOutcome::kBudgetExhausted: return "budget_exhausted";
    case RunOutcome::kCancelled: return "cancelled";
    case RunOutcome::kResumed: return "resumed";
  }
  return "unknown";
}

}  // namespace tw::recover
