// Bottom-up connectivity clustering: the coarsening half of the
// multilevel placement flow (DESIGN.md "Multilevel placement").
//
// cluster_netlist() groups strongly-connected cells into size-capped
// clusters, packs each cluster's members into a rectangle, and emits a
// coarse Netlist with one macro cell per cluster plus an invertible
// ClusterMap. Nets that leave a cluster survive as coarse nets with one
// aggregated pin per (cluster, net) incidence, projected onto the cluster
// boundary; nets entirely inside one cluster are dropped (they cost the
// same wherever the cluster goes) and counted in the map.
//
// Everything is a deterministic function of (netlist, params): the seed
// only drives the cluster-seed visit order, scoring ties break on cell
// ids, and no container iteration order depends on pointers or hashing —
// so same-seed multilevel runs stay byte-identical (see test_cluster's
// thread-determinism case).
#pragma once

#include <cstdint>
#include <vector>

#include "check/validation_report.hpp"
#include "geom/orientation.hpp"
#include "netlist/netlist.hpp"

namespace tw {

struct ClusterParams {
  /// Hard cap on cells per cluster (>= 1; 1 degenerates to the identity
  /// clustering). ~8 keeps the coarse netlist an order of magnitude
  /// smaller while clusters stay small enough to pack compactly.
  int max_cluster_size = 8;

  /// Seeds the cluster-seed visit order. Different seeds produce
  /// different (equally valid) clusterings; the same seed always
  /// reproduces the same one.
  std::uint64_t seed = 1;

  /// Nets wider than this contribute no connectivity affinity: hub nets
  /// (clock, reset) touch everything and would glue unrelated cells into
  /// one blob. They still survive as coarse nets.
  int max_scoring_degree = 16;

  /// Uniform spacing inserted around every member when packing a
  /// cluster's interior (a routing allowance, in grid units). The flow
  /// passes the technology-consistent nominal_spacing(nl).
  Coord member_spacing = 0;

  /// Cap on the degree of an aggregated coarse net (>= 2 to take effect;
  /// anything below, including the 0 default, means no cap). A
  /// hub net incident on k clusters normally becomes one coarse net with
  /// k pins, so every coarse move of any incident cluster rescans all k
  /// bound pins — at SoC scale a clock touching thousands of clusters
  /// turns each move into a full sweep. With a cap, such a net is split
  /// into a chain of segments of at most this degree, consecutive
  /// segments sharing one cluster (so the pieces still pull each other
  /// together); coarse_net_of names the first segment, and every segment's
  /// flat_net_of points back at the source net.
  int max_aggregated_degree = 0;
};

/// One member of a cluster: a flat cell and the offset of its center from
/// the cluster cell's center, in the cluster's unoriented (N) local frame.
struct ClusterMember {
  CellId cell = kInvalidCell;
  Point offset;
};

/// The invertible record of one clustering. `cluster_of` and `members`
/// are mutually redundant views of the same partition (validate_clustering
/// cross-checks them); `coarse_net_of` / `flat_net_of` link the two net
/// spaces, with kInvalidNet marking flat nets dropped as intra-cluster.
/// Under a max_aggregated_degree cap a flat net may own several coarse
/// nets (a segment chain): coarse_net_of names the first segment, and
/// flat_net_of maps every segment back to the source net.
struct ClusterMap {
  std::vector<CellId> cluster_of;                  ///< flat cell -> coarse cell
  std::vector<std::vector<ClusterMember>> members; ///< coarse cell -> members
  std::vector<NetId> coarse_net_of;  ///< flat net -> first coarse segment
  std::vector<NetId> flat_net_of;    ///< coarse net -> source flat net
  int dropped_nets = 0;              ///< flat nets entirely inside one cluster
};

struct Clustering {
  Netlist coarse;
  ClusterMap map;
};

/// Clusters `nl` bottom-up by connectivity: seed cells are visited in a
/// seeded random order; each unassigned seed greedily absorbs the
/// unassigned neighbor with the highest accumulated net affinity
/// (1/(degree-1) per shared net, ties to the lower cell id) until the
/// size cap or the neighborhood is exhausted. The returned coarse netlist
/// passes Netlist::validate() and the map passes validate_clustering().
Clustering cluster_netlist(const Netlist& nl, const ClusterParams& params = {});

/// Where a member's center lands when its cluster cell sits at `center`
/// with orientation `orient` (the uncluster projection, one member at a
/// time — the flow applies it to every member of every cluster).
inline Point member_center(Point center, Orient orient,
                           const ClusterMember& m) {
  const Point d = apply_orient_vec(orient, m.offset);
  return {center.x + d.x, center.y + d.y};
}

/// Whole-structure validator in the check/validation_report.hpp style:
/// partition consistency (each flat cell in exactly one cluster, both
/// views agreeing), member offsets inside their cluster rectangle, area
/// conservation, net-mapping completeness (every flat net either dropped
/// as intra-cluster or mapped to one or more coarse segments that
/// together span exactly its incident clusters — a connected chain when
/// the degree cap split it — weights preserved on every segment), and
/// structural validity of the coarse netlist itself.
ValidationReport validate_clustering(const Netlist& flat,
                                     const Netlist& coarse,
                                     const ClusterMap& map);

}  // namespace tw
