#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "check/contracts.hpp"
#include "util/rng.hpp"

namespace tw {
namespace {

/// One undirected affinity edge (kept a < b).
struct AffinityEdge {
  CellId a = kInvalidCell;
  CellId b = kInvalidCell;
  double w = 0.0;
};

/// Per-cell adjacency with accumulated net affinities, neighbor lists
/// sorted by id. Affinity of a shared net of degree d is 1/(d-1) — the
/// standard edge-coarsening weight: a 2-pin net binds its cells with
/// weight 1, a wide net spreads the same total pull over its members.
std::vector<std::vector<std::pair<CellId, double>>> build_affinity(
    const Netlist& nl, int max_scoring_degree) {
  std::vector<AffinityEdge> edges;
  std::vector<CellId> on_net;
  for (const Net& net : nl.nets()) {
    on_net.clear();
    for (const PinId p : net.pins) on_net.push_back(nl.pin(p).cell);
    std::sort(on_net.begin(), on_net.end());
    on_net.erase(std::unique(on_net.begin(), on_net.end()), on_net.end());
    const auto d = static_cast<int>(on_net.size());
    if (d < 2 || d > max_scoring_degree) continue;
    const double w = 1.0 / static_cast<double>(d - 1);
    for (std::size_t i = 0; i < on_net.size(); ++i)
      for (std::size_t j = i + 1; j < on_net.size(); ++j)
        edges.push_back({on_net[i], on_net[j], w});
  }
  // Merge parallel edges; accumulation order is the sorted order, so the
  // summed doubles are identical on every run.
  std::sort(edges.begin(), edges.end(),
            [](const AffinityEdge& x, const AffinityEdge& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  std::vector<std::vector<std::pair<CellId, double>>> adj(nl.num_cells());
  for (std::size_t i = 0; i < edges.size();) {
    std::size_t j = i;
    double w = 0.0;
    while (j < edges.size() && edges[j].a == edges[i].a &&
           edges[j].b == edges[i].b) {
      w += edges[j].w;
      ++j;
    }
    adj[static_cast<std::size_t>(edges[i].a)].emplace_back(edges[i].b, w);
    adj[static_cast<std::size_t>(edges[i].b)].emplace_back(edges[i].a, w);
    i = j;
  }
  for (auto& nbrs : adj)
    std::sort(nbrs.begin(), nbrs.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
  return adj;
}

/// The partition: greedy seeded growth, ties to the lower cell id.
std::vector<std::vector<CellId>> grow_clusters(const Netlist& nl,
                                               const ClusterParams& params) {
  const auto n = static_cast<CellId>(nl.num_cells());
  const auto adj = build_affinity(nl, params.max_scoring_degree);

  // Seed visit order: a seeded Fisher-Yates shuffle of the cell ids.
  std::vector<CellId> order(static_cast<std::size_t>(n));
  for (CellId c = 0; c < n; ++c) order[static_cast<std::size_t>(c)] = c;
  Rng rng(params.seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }

  std::vector<CellId> assigned(static_cast<std::size_t>(n), kInvalidCell);
  std::vector<double> score(static_cast<std::size_t>(n), 0.0);
  std::vector<CellId> touched;
  std::vector<std::vector<CellId>> clusters;

  for (const CellId seed_cell : order) {
    if (assigned[static_cast<std::size_t>(seed_cell)] != kInvalidCell)
      continue;
    const auto cluster_id = static_cast<CellId>(clusters.size());
    std::vector<CellId> members{seed_cell};
    assigned[static_cast<std::size_t>(seed_cell)] = cluster_id;

    // Candidate scores: accumulated affinity of unassigned neighbors to
    // the growing cluster, maintained sparsely via the touched list.
    touched.clear();
    auto absorb_edges = [&](CellId c) {
      for (const auto& [nbr, w] : adj[static_cast<std::size_t>(c)]) {
        if (assigned[static_cast<std::size_t>(nbr)] != kInvalidCell) continue;
        if (score[static_cast<std::size_t>(nbr)] == 0.0) touched.push_back(nbr);
        score[static_cast<std::size_t>(nbr)] += w;
      }
    };
    absorb_edges(seed_cell);

    while (static_cast<int>(members.size()) < params.max_cluster_size) {
      CellId best = kInvalidCell;
      double best_score = 0.0;
      for (const CellId cand : touched) {
        if (assigned[static_cast<std::size_t>(cand)] != kInvalidCell) continue;
        const double s = score[static_cast<std::size_t>(cand)];
        if (s > best_score || (s == best_score && best != kInvalidCell &&
                               cand < best)) {
          best = cand;
          best_score = s;
        }
      }
      if (best == kInvalidCell) break;
      assigned[static_cast<std::size_t>(best)] = cluster_id;
      members.push_back(best);
      absorb_edges(best);
    }

    for (const CellId c : touched) score[static_cast<std::size_t>(c)] = 0.0;
    std::sort(members.begin(), members.end());
    clusters.push_back(std::move(members));
  }
  return clusters;
}

/// Result of shelf-packing one cluster's members: the cluster rectangle
/// and each member's center in the cluster's local frame (origin at the
/// rectangle's lower-left corner), in `cells` order.
struct PackedCluster {
  Coord w = 0;
  Coord h = 0;
  std::vector<Point> centers;
};

/// Deterministic shelf pack of the members' initial-instance bounding
/// boxes, each padded by `spacing` on every side: tallest-first rows up
/// to a width near the square root of the padded area.
PackedCluster pack_members(const Netlist& nl, const std::vector<CellId>& cells,
                           Coord spacing) {
  struct Item {
    CellId cell;
    Coord w, h;
    std::size_t slot;  ///< index into `cells`
  };
  std::vector<Item> items;
  Coord total_area = 0;
  Coord widest = 0;
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const CellInstance& inst =
        nl.cell(cells[k]).instances.front();
    const Coord w = inst.width + 2 * spacing;
    const Coord h = inst.height + 2 * spacing;
    items.push_back({cells[k], w, h, k});
    total_area += w * h;
    widest = std::max(widest, w);
  }
  std::sort(items.begin(), items.end(), [](const Item& x, const Item& y) {
    return x.h != y.h ? x.h > y.h : x.cell < y.cell;
  });
  const Coord target_width = std::max(
      widest, static_cast<Coord>(
                  std::ceil(std::sqrt(static_cast<double>(total_area)))));

  PackedCluster out;
  out.centers.resize(cells.size());
  Coord x = 0;
  Coord y = 0;
  Coord row_h = 0;
  for (const Item& it : items) {
    if (x > 0 && x + it.w > target_width) {
      x = 0;
      y += row_h;
      row_h = 0;
    }
    out.centers[it.slot] = {x + it.w / 2, y + it.h / 2};
    x += it.w;
    row_h = std::max(row_h, it.h);
    out.w = std::max(out.w, x);
  }
  out.h = y + row_h;
  return out;
}

/// Projects an interior point of the [0,w] x [0,h] rectangle onto its
/// nearest boundary point (pin aggregation lands on cluster boundaries,
/// like any macro pin).
Point to_boundary(Point p, Coord w, Coord h) {
  p.x = std::clamp<Coord>(p.x, 0, w);
  p.y = std::clamp<Coord>(p.y, 0, h);
  const Coord d_left = p.x;
  const Coord d_right = w - p.x;
  const Coord d_bottom = p.y;
  const Coord d_top = h - p.y;
  const Coord d = std::min({d_left, d_right, d_bottom, d_top});
  if (d == d_left) return {0, p.y};
  if (d == d_right) return {w, p.y};
  if (d == d_bottom) return {p.x, 0};
  return {p.x, h};
}

}  // namespace

Clustering cluster_netlist(const Netlist& nl, const ClusterParams& params) {
  TW_REQUIRE(params.max_cluster_size >= 1,
             "max_cluster_size=", params.max_cluster_size);
  TW_REQUIRE(params.max_scoring_degree >= 2,
             "max_scoring_degree=", params.max_scoring_degree);
  TW_REQUIRE(params.member_spacing >= 0,
             "member_spacing=", params.member_spacing);
  TW_REQUIRE(nl.num_cells() > 0, "clustering needs at least one cell");

  const auto clusters = grow_clusters(nl, params);

  Clustering out;
  out.map.cluster_of.assign(nl.num_cells(), kInvalidCell);
  out.map.members.resize(clusters.size());

  // Pin index within the owning cell (CellInstance::pin_offsets order).
  std::vector<int> local_index(nl.num_pins(), -1);
  for (const Cell& cell : nl.cells())
    for (std::size_t k = 0; k < cell.pins.size(); ++k)
      local_index[static_cast<std::size_t>(cell.pins[k])] =
          static_cast<int>(k);

  // --- coarse cells: one macro per cluster, members packed inside -----------
  // `local` keeps each member's packed center in the cluster local frame
  // for the pin aggregation below; the map stores center-relative offsets.
  std::vector<std::vector<Point>> local(clusters.size());
  std::vector<Coord> rect_w(clusters.size());
  std::vector<Coord> rect_h(clusters.size());
  for (std::size_t k = 0; k < clusters.size(); ++k) {
    const PackedCluster packed =
        pack_members(nl, clusters[k], params.member_spacing);
    rect_w[k] = packed.w;
    rect_h[k] = packed.h;
    const CellId coarse_id = out.coarse.add_macro(
        "cl" + std::to_string(k), {Rect{0, 0, packed.w, packed.h}});
    TW_ASSERT(coarse_id == static_cast<CellId>(k), "coarse id=", coarse_id,
              " cluster=", k);
    local[k] = packed.centers;
    const Point rect_center{packed.w / 2, packed.h / 2};
    for (std::size_t m = 0; m < clusters[k].size(); ++m) {
      const CellId cell = clusters[k][m];
      out.map.cluster_of[static_cast<std::size_t>(cell)] =
          static_cast<CellId>(k);
      out.map.members[k].push_back(
          {cell, {packed.centers[m].x - rect_center.x,
                  packed.centers[m].y - rect_center.y}});
    }
  }

  // --- coarse nets: one aggregated boundary pin per (cluster, net) ----------
  out.map.coarse_net_of.assign(nl.num_nets(), kInvalidNet);
  std::vector<CellId> incident;
  std::vector<Coord> sum_x(clusters.size(), 0);
  std::vector<Coord> sum_y(clusters.size(), 0);
  std::vector<int> cnt(clusters.size(), 0);
  for (const Net& net : nl.nets()) {
    incident.clear();
    for (const PinId pid : net.pins) {
      const Pin& pin = nl.pin(pid);
      const CellId cl = out.map.cluster_of[static_cast<std::size_t>(pin.cell)];
      incident.push_back(cl);

      // Accumulate the pin's position in the cluster local frame: the
      // member's packed lower-left corner plus the pin offset (fixed
      // pins) or the member center (uncommitted pins, whose location the
      // annealer still chooses).
      const Cell& cell = nl.cell(pin.cell);
      const CellInstance& inst = cell.instances.front();
      std::size_t slot = 0;
      const auto& members = clusters[static_cast<std::size_t>(cl)];
      slot = static_cast<std::size_t>(
          std::lower_bound(members.begin(), members.end(), pin.cell) -
          members.begin());
      const Point center = local[static_cast<std::size_t>(cl)][slot];
      Point pos = center;
      if (pin.committed()) {
        const Point ll{center.x - inst.width / 2, center.y - inst.height / 2};
        const Point off =
            inst.pin_offsets[static_cast<std::size_t>(
                local_index[static_cast<std::size_t>(pid)])];
        pos = {ll.x + off.x, ll.y + off.y};
      }
      sum_x[static_cast<std::size_t>(cl)] += pos.x;
      sum_y[static_cast<std::size_t>(cl)] += pos.y;
      cnt[static_cast<std::size_t>(cl)] += 1;
    }
    std::sort(incident.begin(), incident.end());
    incident.erase(std::unique(incident.begin(), incident.end()),
                   incident.end());

    if (incident.size() < 2) {
      // Intra-cluster net: its length is invariant under cluster moves.
      ++out.map.dropped_nets;
    } else {
      // Hub-net segmentation: with a degree cap, the sorted incidence list
      // is emitted as a chain of coarse nets of at most `cap` pins,
      // consecutive segments overlapping in one cluster so the chain still
      // pulls its ends together. The stride is cap-1, so every segment
      // (including the last) has between 2 and cap pins. Without a cap
      // (or when the net fits under it) the loop runs exactly once and
      // reproduces the one-net-per-flat-net emission.
      const auto cap = static_cast<std::size_t>(
          params.max_aggregated_degree >= 2 ? params.max_aggregated_degree
                                            : 0);
      const std::size_t seg_size =
          (cap >= 2 && incident.size() > cap) ? cap : incident.size();
      std::size_t begin = 0;
      int seg = 0;
      while (true) {
        const std::size_t end = std::min(begin + seg_size, incident.size());
        const std::string suffix =
            seg == 0 ? std::string() : "#s" + std::to_string(seg);
        const NetId coarse_net =
            out.coarse.add_net(net.name + suffix, net.weight_h, net.weight_v);
        if (seg == 0)
          out.map.coarse_net_of[static_cast<std::size_t>(net.id)] = coarse_net;
        out.map.flat_net_of.push_back(net.id);
        for (std::size_t i = begin; i < end; ++i) {
          const auto k = static_cast<std::size_t>(incident[i]);
          const Point avg{sum_x[k] / cnt[k], sum_y[k] / cnt[k]};
          out.coarse.add_fixed_pin(
              incident[i],
              "n" + std::to_string(net.id) + suffix + "@cl" + std::to_string(k),
              coarse_net, to_boundary(avg, rect_w[k], rect_h[k]));
        }
        if (end == incident.size()) break;
        begin = end - 1;  // overlap one cluster with the next segment
        ++seg;
      }
    }
    for (const CellId cl : incident) {
      const auto k = static_cast<std::size_t>(cl);
      sum_x[k] = 0;
      sum_y[k] = 0;
      cnt[k] = 0;
    }
  }

  out.coarse.tech() = nl.tech();
  if constexpr (check::kLevel >= check::kLevelFull) {
    const ValidationReport r = validate_clustering(nl, out.coarse, out.map);
    TW_ENSURE_FULL(r.ok(), r.str());
  }
  return out;
}

}  // namespace tw
