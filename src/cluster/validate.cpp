// validate_clustering: the whole-structure validator of a (flat, coarse,
// map) triple. Like validate_netlist / validate_placement it reports
// every violation it can find instead of stopping at the first, so a
// defective clustering is diagnosable in one pass.
#include <algorithm>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace tw {

using check_detail::add_issue;

ValidationReport validate_clustering(const Netlist& flat,
                                     const Netlist& coarse,
                                     const ClusterMap& map) {
  ValidationReport r;

  // --- shape -----------------------------------------------------------------
  if (map.cluster_of.size() != flat.num_cells()) {
    add_issue(r, "cluster_of", "covers ", map.cluster_of.size(),
              " cell(s), flat netlist has ", flat.num_cells());
    return r;  // nothing below is indexable
  }
  if (map.members.size() != coarse.num_cells()) {
    add_issue(r, "members", "covers ", map.members.size(),
              " cluster(s), coarse netlist has ", coarse.num_cells());
    return r;
  }
  if (map.coarse_net_of.size() != flat.num_nets()) {
    add_issue(r, "coarse_net_of", "covers ", map.coarse_net_of.size(),
              " net(s), flat netlist has ", flat.num_nets());
    return r;
  }
  if (map.flat_net_of.size() != coarse.num_nets()) {
    add_issue(r, "flat_net_of", "covers ", map.flat_net_of.size(),
              " net(s), coarse netlist has ", coarse.num_nets());
    return r;
  }

  // --- the partition, from both directions -----------------------------------
  const auto num_flat = static_cast<CellId>(flat.num_cells());
  const auto num_coarse = static_cast<CellId>(coarse.num_cells());
  std::vector<int> seen(flat.num_cells(), 0);
  for (CellId k = 0; k < num_coarse; ++k) {
    const auto& members = map.members[static_cast<std::size_t>(k)];
    if (members.empty())
      add_issue(r, "cluster " + std::to_string(k), "has no members");
    const CellInstance& inst =
        coarse.cell(k).instances.front();
    Coord member_area = 0;
    for (const ClusterMember& m : members) {
      if (m.cell < 0 || m.cell >= num_flat) {
        add_issue(r, "cluster " + std::to_string(k), "member cell ", m.cell,
                  " out of range");
        continue;
      }
      seen[static_cast<std::size_t>(m.cell)] += 1;
      if (map.cluster_of[static_cast<std::size_t>(m.cell)] != k)
        add_issue(r, "cell " + std::to_string(m.cell), "listed in cluster ", k,
                  " but cluster_of says ",
                  map.cluster_of[static_cast<std::size_t>(m.cell)]);
      const CellInstance& mi = flat.cell(m.cell).instances.front();
      member_area += mi.area();
      // The member's bbox, centered at its offset, must sit inside the
      // cluster rectangle (±1 for the integer halving of odd extents).
      const Coord hw = inst.width / 2;
      const Coord hh = inst.height / 2;
      if (m.offset.x - mi.width / 2 < -hw - 1 ||
          m.offset.x + mi.width / 2 > hw + 1 ||
          m.offset.y - mi.height / 2 < -hh - 1 ||
          m.offset.y + mi.height / 2 > hh + 1)
        add_issue(r, "cluster " + std::to_string(k), "member cell ", m.cell,
                  " at offset (", m.offset.x, ", ", m.offset.y,
                  ") leaves the ", inst.width, "x", inst.height,
                  " cluster rectangle");
    }
    if (member_area > inst.area())
      add_issue(r, "cluster " + std::to_string(k), "member area ", member_area,
                " exceeds cluster area ", inst.area());
  }
  for (CellId c = 0; c < num_flat; ++c) {
    const CellId k = map.cluster_of[static_cast<std::size_t>(c)];
    if (k < 0 || k >= num_coarse)
      add_issue(r, "cell " + std::to_string(c), "cluster_of ", k,
                " out of range");
    if (seen[static_cast<std::size_t>(c)] != 1)
      add_issue(r, "cell " + std::to_string(c), "appears in ",
                seen[static_cast<std::size_t>(c)],
                " member list(s), expected exactly 1");
  }

  // --- net mapping -----------------------------------------------------------
  int dropped = 0;
  std::vector<int> mapped_from(coarse.num_nets(), 0);
  std::vector<CellId> incident;
  for (const Net& net : flat.nets()) {
    incident.clear();
    for (const PinId pid : net.pins) {
      const CellId cell = flat.pin(pid).cell;
      if (cell >= 0 && cell < num_flat)
        incident.push_back(map.cluster_of[static_cast<std::size_t>(cell)]);
    }
    std::sort(incident.begin(), incident.end());
    incident.erase(std::unique(incident.begin(), incident.end()),
                   incident.end());
    const NetId cn = map.coarse_net_of[static_cast<std::size_t>(net.id)];

    if (incident.size() < 2) {
      ++dropped;
      if (cn != kInvalidNet)
        add_issue(r, "net " + std::to_string(net.id),
                  "is intra-cluster but maps to coarse net ", cn);
      continue;
    }
    if (cn < 0 || cn >= static_cast<NetId>(coarse.num_nets())) {
      add_issue(r, "net " + std::to_string(net.id),
                "spans ", incident.size(),
                " cluster(s) but has no valid coarse net (", cn, ")");
      continue;
    }
    mapped_from[static_cast<std::size_t>(cn)] += 1;
    if (map.flat_net_of[static_cast<std::size_t>(cn)] != net.id)
      add_issue(r, "net " + std::to_string(net.id), "maps to coarse net ", cn,
                " whose flat_net_of is ",
                map.flat_net_of[static_cast<std::size_t>(cn)]);
    const Net& cnet = coarse.net(cn);
    if (cnet.weight_h != net.weight_h || cnet.weight_v != net.weight_v)
      add_issue(r, "net " + std::to_string(net.id), "weights (", net.weight_h,
                ", ", net.weight_v, ") not preserved on coarse net (",
                cnet.weight_h, ", ", cnet.weight_v, ")");
    // Pin aggregation: exactly one coarse pin per incident cluster.
    std::vector<CellId> coarse_cells;
    for (const PinId pid : cnet.pins)
      coarse_cells.push_back(coarse.pin(pid).cell);
    std::sort(coarse_cells.begin(), coarse_cells.end());
    if (coarse_cells != incident)
      add_issue(r, "net " + std::to_string(net.id), "touches ",
                incident.size(), " cluster(s) but its coarse net has ",
                coarse_cells.size(), " pin(s) or the wrong clusters");
  }
  if (dropped != map.dropped_nets)
    add_issue(r, "dropped_nets", "records ", map.dropped_nets,
              " intra-cluster net(s), recount finds ", dropped);
  for (NetId cn = 0; cn < static_cast<NetId>(coarse.num_nets()); ++cn)
    if (mapped_from[static_cast<std::size_t>(cn)] != 1)
      add_issue(r, "coarse net " + std::to_string(cn), "mapped from ",
                mapped_from[static_cast<std::size_t>(cn)],
                " flat net(s), expected exactly 1");

  // --- the coarse netlist itself ---------------------------------------------
  try {
    coarse.validate();
  } catch (const std::exception& e) {
    add_issue(r, "coarse netlist", e.what());
  }
  return r;
}

}  // namespace tw
