// validate_clustering: the whole-structure validator of a (flat, coarse,
// map) triple. Like validate_netlist / validate_placement it reports
// every violation it can find instead of stopping at the first, so a
// defective clustering is diagnosable in one pass.
#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace tw {

using check_detail::add_issue;

ValidationReport validate_clustering(const Netlist& flat,
                                     const Netlist& coarse,
                                     const ClusterMap& map) {
  ValidationReport r;

  // --- shape -----------------------------------------------------------------
  if (map.cluster_of.size() != flat.num_cells()) {
    add_issue(r, "cluster_of", "covers ", map.cluster_of.size(),
              " cell(s), flat netlist has ", flat.num_cells());
    return r;  // nothing below is indexable
  }
  if (map.members.size() != coarse.num_cells()) {
    add_issue(r, "members", "covers ", map.members.size(),
              " cluster(s), coarse netlist has ", coarse.num_cells());
    return r;
  }
  if (map.coarse_net_of.size() != flat.num_nets()) {
    add_issue(r, "coarse_net_of", "covers ", map.coarse_net_of.size(),
              " net(s), flat netlist has ", flat.num_nets());
    return r;
  }
  if (map.flat_net_of.size() != coarse.num_nets()) {
    add_issue(r, "flat_net_of", "covers ", map.flat_net_of.size(),
              " net(s), coarse netlist has ", coarse.num_nets());
    return r;
  }

  // --- the partition, from both directions -----------------------------------
  const auto num_flat = static_cast<CellId>(flat.num_cells());
  const auto num_coarse = static_cast<CellId>(coarse.num_cells());
  std::vector<int> seen(flat.num_cells(), 0);
  for (CellId k = 0; k < num_coarse; ++k) {
    const auto& members = map.members[static_cast<std::size_t>(k)];
    if (members.empty())
      add_issue(r, "cluster " + std::to_string(k), "has no members");
    const CellInstance& inst =
        coarse.cell(k).instances.front();
    Coord member_area = 0;
    for (const ClusterMember& m : members) {
      if (m.cell < 0 || m.cell >= num_flat) {
        add_issue(r, "cluster " + std::to_string(k), "member cell ", m.cell,
                  " out of range");
        continue;
      }
      seen[static_cast<std::size_t>(m.cell)] += 1;
      if (map.cluster_of[static_cast<std::size_t>(m.cell)] != k)
        add_issue(r, "cell " + std::to_string(m.cell), "listed in cluster ", k,
                  " but cluster_of says ",
                  map.cluster_of[static_cast<std::size_t>(m.cell)]);
      const CellInstance& mi = flat.cell(m.cell).instances.front();
      member_area += mi.area();
      // The member's bbox, centered at its offset, must sit inside the
      // cluster rectangle (±1 for the integer halving of odd extents).
      const Coord hw = inst.width / 2;
      const Coord hh = inst.height / 2;
      if (m.offset.x - mi.width / 2 < -hw - 1 ||
          m.offset.x + mi.width / 2 > hw + 1 ||
          m.offset.y - mi.height / 2 < -hh - 1 ||
          m.offset.y + mi.height / 2 > hh + 1)
        add_issue(r, "cluster " + std::to_string(k), "member cell ", m.cell,
                  " at offset (", m.offset.x, ", ", m.offset.y,
                  ") leaves the ", inst.width, "x", inst.height,
                  " cluster rectangle");
    }
    if (member_area > inst.area())
      add_issue(r, "cluster " + std::to_string(k), "member area ", member_area,
                " exceeds cluster area ", inst.area());
  }
  for (CellId c = 0; c < num_flat; ++c) {
    const CellId k = map.cluster_of[static_cast<std::size_t>(c)];
    if (k < 0 || k >= num_coarse)
      add_issue(r, "cell " + std::to_string(c), "cluster_of ", k,
                " out of range");
    if (seen[static_cast<std::size_t>(c)] != 1)
      add_issue(r, "cell " + std::to_string(c), "appears in ",
                seen[static_cast<std::size_t>(c)],
                " member list(s), expected exactly 1");
  }

  // --- net mapping -----------------------------------------------------------
  // A surviving flat net owns one or more coarse nets ("segments"): one in
  // the common case, a chain of them when the ClusterParams degree cap
  // split a hub net. flat_net_of inverts the relation, so group the coarse
  // nets by source first; segments of one net are emitted consecutively,
  // ascending, starting at coarse_net_of.
  std::vector<std::vector<NetId>> segments_of(flat.num_nets());
  for (NetId cn = 0; cn < static_cast<NetId>(coarse.num_nets()); ++cn) {
    const NetId fn = map.flat_net_of[static_cast<std::size_t>(cn)];
    if (fn < 0 || fn >= static_cast<NetId>(flat.num_nets()))
      add_issue(r, "coarse net " + std::to_string(cn), "flat_net_of ", fn,
                " out of range");
    else
      segments_of[static_cast<std::size_t>(fn)].push_back(cn);
  }

  int dropped = 0;
  std::vector<CellId> incident;
  std::vector<CellId> covered;
  for (const Net& net : flat.nets()) {
    incident.clear();
    for (const PinId pid : net.pins) {
      const CellId cell = flat.pin(pid).cell;
      if (cell >= 0 && cell < num_flat)
        incident.push_back(map.cluster_of[static_cast<std::size_t>(cell)]);
    }
    std::sort(incident.begin(), incident.end());
    incident.erase(std::unique(incident.begin(), incident.end()),
                   incident.end());
    const NetId cn = map.coarse_net_of[static_cast<std::size_t>(net.id)];
    const auto& segs = segments_of[static_cast<std::size_t>(net.id)];

    if (incident.size() < 2) {
      ++dropped;
      if (cn != kInvalidNet)
        add_issue(r, "net " + std::to_string(net.id),
                  "is intra-cluster but maps to coarse net ", cn);
      if (!segs.empty())
        add_issue(r, "net " + std::to_string(net.id),
                  "is intra-cluster but ", segs.size(),
                  " coarse net(s) claim it as their source");
      continue;
    }
    if (cn < 0 || cn >= static_cast<NetId>(coarse.num_nets())) {
      add_issue(r, "net " + std::to_string(net.id),
                "spans ", incident.size(),
                " cluster(s) but has no valid coarse net (", cn, ")");
      continue;
    }
    if (segs.empty() || segs.front() != cn) {
      add_issue(r, "net " + std::to_string(net.id), "maps to coarse net ", cn,
                " which is not the first of its ", segs.size(), " segment(s)");
      continue;
    }
    // Per segment: weights preserved, >= 2 pins on distinct incident
    // clusters; across segments: consecutive ones overlap (the chain is
    // connected) and together they cover exactly the incident clusters.
    covered.clear();
    std::vector<CellId> prev_cells;
    for (const NetId seg : segs) {
      const Net& cnet = coarse.net(seg);
      if (cnet.weight_h != net.weight_h || cnet.weight_v != net.weight_v)
        add_issue(r, "net " + std::to_string(net.id), "weights (",
                  net.weight_h, ", ", net.weight_v,
                  ") not preserved on coarse net (", cnet.weight_h, ", ",
                  cnet.weight_v, ")");
      std::vector<CellId> seg_cells;
      for (const PinId pid : cnet.pins)
        seg_cells.push_back(coarse.pin(pid).cell);
      std::sort(seg_cells.begin(), seg_cells.end());
      if (seg_cells.size() < 2 ||
          std::adjacent_find(seg_cells.begin(), seg_cells.end()) !=
              seg_cells.end())
        add_issue(r, "coarse net " + std::to_string(seg), "segment of net ",
                  net.id, " has ", seg_cells.size(),
                  " pin(s), expected >= 2 on distinct clusters");
      if (!prev_cells.empty()) {
        std::vector<CellId> shared;
        std::set_intersection(prev_cells.begin(), prev_cells.end(),
                              seg_cells.begin(), seg_cells.end(),
                              std::back_inserter(shared));
        if (shared.empty())
          add_issue(r, "coarse net " + std::to_string(seg), "segment of net ",
                    net.id, " shares no cluster with the previous segment");
      }
      covered.insert(covered.end(), seg_cells.begin(), seg_cells.end());
      prev_cells = std::move(seg_cells);
    }
    std::sort(covered.begin(), covered.end());
    covered.erase(std::unique(covered.begin(), covered.end()), covered.end());
    if (covered != incident)
      add_issue(r, "net " + std::to_string(net.id), "touches ",
                incident.size(), " cluster(s) but its ", segs.size(),
                " segment(s) cover ", covered.size(),
                " or the wrong clusters");
  }
  if (dropped != map.dropped_nets)
    add_issue(r, "dropped_nets", "records ", map.dropped_nets,
              " intra-cluster net(s), recount finds ", dropped);

  // --- the coarse netlist itself ---------------------------------------------
  try {
    coarse.validate();
  } catch (const std::exception& e) {
    add_issue(r, "coarse netlist", e.what());
  }
  return r;
}

}  // namespace tw
