#include "place/legalize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tw {

Coord bare_overlap(const Placement& placement) {
  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  Coord sum = 0;
  for (CellId i = 0; i < n; ++i) {
    const auto ti = placement.absolute_tiles(i);
    for (CellId j = i + 1; j < n; ++j)
      for (const Rect& a : ti)
        for (const Rect& b : placement.absolute_tiles(j))
          sum += a.overlap_area(b);
  }
  return sum;
}

LegalizeResult legalize_spread(Placement& placement, const Rect& core,
                               Coord margin, int max_iterations,
                               bool allow_repack) {
  LegalizeResult result;
  result.initial_overlap = bare_overlap(placement);

  const auto n = static_cast<CellId>(placement.netlist().num_cells());
  const Coord m2 = (margin + 1) / 2;  // per-cell share of the margin

  // Progress is measured on the quantity the sweeps actually optimize:
  // overlap of the margin-inflated tiles.
  const auto margin_overlap = [&]() {
    const auto nn = static_cast<CellId>(placement.netlist().num_cells());
    const Coord mm = (margin + 1) / 2;
    Coord sum = 0;
    for (CellId i = 0; i < nn; ++i) {
      const auto ti = placement.absolute_tiles(i);
      for (CellId j = static_cast<CellId>(i + 1); j < nn; ++j)
        for (const Rect& a : ti)
          for (const Rect& b : placement.absolute_tiles(j))
            sum += a.inflated(mm).overlap_area(b.inflated(mm));
    }
    return sum;
  };

  Coord best_seen = margin_overlap();
  int stalled = 0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Stop early when the sweeps cycle without progress — continuing only
    // random-walks the cells and degrades the wirelength.
    if (iter % 5 == 4) {
      const Coord now = margin_overlap();
      if (now == 0) break;
      if (now < best_seen) {
        best_seen = now;
        stalled = 0;
      } else if (++stalled >= 3) {
        break;
      }
    }
    bool moved = false;

    // Clamp into the (margin-shrunk) core first so separations push
    // against a fixed wall.
    const Rect wall = core.inflated(-m2);
    for (CellId c = 0; c < n; ++c) {
      const Rect bb = placement.bbox(c);
      Coord dx = 0, dy = 0;
      if (bb.xlo < wall.xlo) dx = wall.xlo - bb.xlo;
      if (bb.xhi > wall.xhi) dx = wall.xhi - bb.xhi;
      if (bb.ylo < wall.ylo) dy = wall.ylo - bb.ylo;
      if (bb.yhi > wall.yhi) dy = wall.yhi - bb.yhi;
      if (dx != 0 || dy != 0) {
        placement.set_center(c, placement.state(c).center + Point{dx, dy});
        moved = true;
      }
    }

    for (CellId i = 0; i < n; ++i) {
      for (CellId j = static_cast<CellId>(i + 1); j < n; ++j) {
        // Deepest colliding tile pair (with the margin applied), measured
        // by the smaller of its two axis penetrations. Tile-level
        // penetration keeps moves small for rectilinear cells, whose
        // bounding boxes can overlap legally.
        Coord sep_x = 0, sep_y = 0;
        for (const Rect& ta : placement.absolute_tiles(i)) {
          const Rect am = ta.inflated(m2);
          for (const Rect& tb : placement.absolute_tiles(j)) {
            const Rect bm = tb.inflated(m2);
            const Coord px = std::min(am.xhi, bm.xhi) - std::max(am.xlo, bm.xlo);
            const Coord py = std::min(am.yhi, bm.yhi) - std::max(am.ylo, bm.ylo);
            if (px <= 0 || py <= 0) continue;
            if (px <= py) {
              sep_x = std::max(sep_x, px);
            } else {
              sep_y = std::max(sep_y, py);
            }
          }
        }
        if (sep_x == 0 && sep_y == 0) continue;

        moved = true;
        const Rect a = placement.bbox(i);
        const Rect b = placement.bbox(j);
        // Separate along the axis needing the smaller nonzero move.
        if (sep_x != 0 && (sep_y == 0 || sep_x <= sep_y)) {
          const Coord half = (sep_x + 1) / 2;
          const Coord dir = a.center().x <= b.center().x ? 1 : -1;
          placement.set_center(i, placement.state(i).center + Point{-dir * half, 0});
          placement.set_center(j, placement.state(j).center + Point{dir * (sep_x - half), 0});
        } else {
          const Coord half = (sep_y + 1) / 2;
          const Coord dir = a.center().y <= b.center().y ? 1 : -1;
          placement.set_center(i, placement.state(i).center + Point{0, -dir * half});
          placement.set_center(j, placement.state(j).center + Point{0, dir * (sep_y - half)});
        }
      }
    }

    ++result.iterations;
    if (!moved) break;
  }
  result.final_overlap = bare_overlap(placement);

  if (result.final_overlap > 0) {
    // The spreading pass can cycle in tightly packed clusters (a cell
    // squeezed wall-to-wall between neighbors). Escalate gently: move each
    // still-overlapping cell to the nearest free pocket that fits it.
    relocate_overlapping(placement, core, margin);
    result.final_overlap = bare_overlap(placement);
  }
  // The row repack is destructive (it rebuilds the whole arrangement), so
  // it is reserved for substantial failures; sliver overlaps — well under
  // the area a detailed router absorbs in one channel — are tolerated.
  const Coord tolerance =
      std::max<Coord>(1, placement.netlist().total_cell_area() / 50);
  if (allow_repack && result.final_overlap > tolerance) {
    legalize_repack(placement, core, margin);
    result.repacked = true;
    result.final_overlap = bare_overlap(placement);
  }
  return result;
}

bool relocate_overlapping(Placement& placement, const Rect& core,
                          Coord margin) {
  const auto n = static_cast<CellId>(placement.netlist().num_cells());

  auto cell_overlap = [&](CellId c) {
    Coord sum = 0;
    const auto tc = placement.absolute_tiles(c);
    for (CellId o = 0; o < n; ++o) {
      if (o == c) continue;
      for (const Rect& a : tc)
        for (const Rect& b : placement.absolute_tiles(o))
          sum += a.overlap_area(b);
    }
    return sum;
  };

  /// Would cell `c` centered at `pos` sit margin-clear of every other cell
  /// and inside the core?
  auto fits_at = [&](CellId c, Point pos) {
    const Point cur = placement.state(c).center;
    const Point d = pos - cur;
    for (Rect t : placement.absolute_tiles(c)) {
      t = t.translated(d);
      if (!core.contains(t)) return false;
      const Rect tm = t.inflated(margin);
      for (CellId o = 0; o < n; ++o) {
        if (o == c) continue;
        for (const Rect& ot : placement.absolute_tiles(o))
          if (tm.overlaps(ot)) return false;
      }
    }
    return true;
  };

  bool all_fixed = true;
  for (CellId c = 0; c < n; ++c) {
    if (cell_overlap(c) == 0) continue;
    const Point cur = placement.state(c).center;
    const Rect bb = placement.bbox(c);

    // Candidate scan, nearest fitting position wins. Three passes bound
    // the work on large cores: a fine lattice near the cell (pockets just
    // big enough are pitch-sensitive), then coarse and half-coarse
    // lattices over the whole core.
    const Coord fine = std::max<Coord>(
        {Coord{1}, margin, std::min(bb.width(), bb.height()) / 16});
    const Coord coarse =
        std::max<Coord>(2 * fine, std::min(bb.width(), bb.height()) / 4);
    const Rect local{cur.x - 2 * bb.width(), cur.y - 2 * bb.height(),
                     cur.x + 2 * bb.width(), cur.y + 2 * bb.height()};
    struct Scan {
      Rect area;
      Coord step;
    };
    const Scan scans[] = {{local.intersect(core), fine},
                          {core, coarse},
                          {core, std::max<Coord>(fine, coarse / 2)}};

    bool placed = false;
    for (const Scan& scan : scans) {
      if (!scan.area.valid()) continue;
      Point best = cur;
      Coord best_dist = -1;
      for (Coord cx = scan.area.xlo; cx <= scan.area.xhi; cx += scan.step) {
        for (Coord cy = scan.area.ylo; cy <= scan.area.yhi; cy += scan.step) {
          const Point cand{cx, cy};
          const Coord d = manhattan(cur, cand);
          if (best_dist >= 0 && d >= best_dist) continue;
          if (fits_at(c, cand)) {
            best = cand;
            best_dist = d;
          }
        }
      }
      if (best_dist >= 0) {
        placement.set_center(c, best);
        placed = true;
        break;
      }
    }
    if (!placed) all_fixed = false;
  }
  return all_fixed && bare_overlap(placement) == 0;
}

void legalize_repack(Placement& placement, const Rect& core, Coord margin) {
  const auto n = placement.netlist().num_cells();
  if (n == 0) return;

  std::vector<CellId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    const Point ca = placement.state(a).center;
    const Point cb = placement.state(b).center;
    if (ca.y != cb.y) return ca.y < cb.y;
    return ca.x < cb.x;
  });
  const auto rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(n)))));
  const std::size_t per_row = (n + rows - 1) / rows;

  Coord y = core.ylo + margin;
  for (std::size_t r = 0; r * per_row < n; ++r) {
    const std::size_t lo = r * per_row;
    const std::size_t hi = std::min(n, (r + 1) * per_row);
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(lo),
              order.begin() + static_cast<std::ptrdiff_t>(hi),
              [&](CellId a, CellId b) {
                return placement.state(a).center.x < placement.state(b).center.x;
              });
    Coord x = core.xlo + margin;
    Coord row_h = 0;
    for (std::size_t k = lo; k < hi; ++k) {
      const CellId c = order[k];
      const CellInstance& g = placement.geometry(c);
      const CellState& st = placement.state(c);
      const Coord w = oriented_width(st.orient, g.width, g.height);
      const Coord h = oriented_height(st.orient, g.width, g.height);
      placement.set_center(c, Point{x + w / 2, y + h / 2});
      x += w + margin;
      row_h = std::max(row_h, h);
    }
    y += row_h + margin;
  }
}

}  // namespace tw
