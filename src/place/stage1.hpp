// Stage 1 of TimberWolfMC (Section 3): simulated-annealing placement with
// the dynamic interconnect-area estimator.
//
// The generate function follows the paper's pseudocode:
//   * with probability p (r = p/(1-p), the displacement:interchange ratio)
//     a single-cell displacement to a point inside the range-limiter
//     window, selected by D_s (or D_r);
//       - if rejected, the displacement is retried with the cell's aspect
//         ratio inverted (90-degree orientation change);
//       - if that also fails, a random orientation change is attempted;
//       - custom cells then attempt one pin-group move per uncommitted pin
//         and one aspect-ratio change;
//   * otherwise a pairwise interchange of two cells;
//       - if rejected, retried with both aspect ratios inverted.
//
// Cooling follows Table 1 with the S_T temperature scaling; the run stops
// after an inner loop executed with the range-limiter window at its
// minimum span (with a step-count safety net for rho = 1, whose window
// never contracts).
#pragma once

#include <functional>
#include <optional>

#include "anneal/displacement.hpp"
#include "anneal/range_limiter.hpp"
#include "anneal/schedule.hpp"
#include "check/cost_audit.hpp"
#include "place/cost.hpp"
#include "place/move_txn.hpp"
#include "recover/budget.hpp"
#include "recover/fault.hpp"

namespace tw {

/// Ablation switch for the paper's central contribution (Section 2.2).
enum class EstimatorMode {
  kDynamic,  ///< the paper's estimator: position + pin-density modulated
  kUniform,  ///< static 0.5*C_W border on every edge (factor (1) only)
  kNone,     ///< no interconnect allowance at all
};

struct Stage1Params {
  /// r: ratio of single-cell displacements to pairwise interchanges
  /// (Figure 3; r in [7,15] is within one percent of the best).
  double ratio_r = 10.0;

  /// A_c: attempted moves per cell per temperature (Figures 5-6; ~400
  /// saturates quality for 30-60 cell circuits, 25 is ~13 % worse but 16x
  /// faster). The library default favors speed; benches sweep it.
  int attempts_per_cell = 50;

  /// Range-limiter contraction exponent (Section 3.2.2).
  double rho = 4.0;

  /// Displacement-point selection: D_s (structured) or D_r (random).
  PointSelect selector = PointSelect::kStructured;

  /// eta / kappa of the cost function.
  CostParams cost;

  /// Desired core height/width ratio.
  double core_aspect = 1.0;

  /// Wire-length model driving the C_W estimate (Eqn 1). kappa calibrates
  /// the expected *routed* length (detours included), not the bounding-box
  /// lower bound — see WireEstimateParams.
  WireEstimateParams wire;

  /// Interconnect-area estimation mode (kDynamic = the paper; the others
  /// exist for the ablation bench).
  EstimatorMode estimator_mode = EstimatorMode::kDynamic;

  /// Random configurations sampled for the p2 calibration (Eqn 9).
  int p2_samples = 24;

  /// Growth of the overlap-penalty weight over the run: p2 ramps
  /// geometrically from the Eqn 9 calibration to `overlap_penalty_growth`
  /// times it at the final temperature. Eqn 9 balances the terms at T_inf;
  /// left constant, the penalty is too weak at low T to squeeze out the
  /// residual overlap (the successor TimberWolf releases ramp the penalty
  /// weight for the same reason). 1.0 disables the ramp.
  double overlap_penalty_growth = 20.0;

  /// Final-temperature factor: stage 1 cools until T <= S_T * t_stop_factor
  /// *and* the range-limiter window has reached its minimum span. The
  /// default reproduces the paper's ~6 decades of temperature (S_T * 1e5
  /// down to ~S_T * 0.1, about 120 steps under Table 1). On the paper's
  /// fine-grid industrial circuits the window minimum alone lands there;
  /// on coarse grids the window bottoms out early and the temperature
  /// floor carries the stopping criterion.
  double t_stop_factor = 0.1;

  /// Safety net: hard cap on temperature steps (rho=1 never reaches the
  /// window minimum).
  int max_temperature_steps = 200;

  /// Warm start (the multilevel flow's refinement anneal). 1.0 is the
  /// paper's cold start: the caller-provided placement is irrelevant (the
  /// p2 calibration leaves the last random sample as the initial
  /// configuration) and the anneal starts at T_infinity. A factor < 1
  /// declares the incoming placement meaningful: it is preserved through
  /// the calibration (snapshot before the random sampling, restore
  /// after), and the anneal starts at warm_start_t_factor * T_infinity.
  /// The range limiter and penalty ramp still span the full profile, so a
  /// warm start runs with proportionally contracted move windows — the
  /// refinement regime.
  double warm_start_t_factor = 1.0;

  /// Incremental-cost drift checkpoints (see check/cost_audit.hpp). The
  /// default checks at every temperature step in full-checks builds and is
  /// free otherwise.
  CostAuditParams audit;
};

/// Per-temperature trace entry (drives tests and the cooling diagnostics).
struct TemperaturePoint {
  double t = 0.0;
  double avg_cost = 0.0;
  double acceptance_rate = 0.0;
  Coord window_x = 0;
};

struct Stage1Result {
  double final_teic = 0.0;
  double final_teil = 0.0;
  Coord residual_overlap = 0;   ///< raw C2 at the end (paper's figure of merit)
  int overloaded_sites = 0;     ///< pin sites above capacity at the end
  Rect core;                    ///< target core region used
  double t_infinity = 0.0;
  double temperature_scale = 0.0;  ///< S_T
  double p2 = 0.0;
  int temperature_steps = 0;
  long long attempts = 0;
  long long accepts = 0;
  std::vector<TemperaturePoint> trace;
  /// How the run ended (kBudgetExhausted/kCancelled: best-so-far state).
  recover::RunOutcome outcome = recover::RunOutcome::kCompleted;
};

/// Everything (besides the placement itself, which the caller owns) needed
/// to restart stage 1 at a temperature-step boundary such that the resumed
/// run is byte-identical to the uninterrupted one: schedule position, the
/// Eqn 9 calibration (sampled once with the RNG, so it must be carried —
/// never recomputed), the accumulated result, and the exact RNG stream
/// position. Serialized by src/recover/checkpoint.{hpp,cpp}.
struct Stage1Cursor {
  int next_step = 0;       ///< temperature step about to execute
  double t = 0.0;          ///< temperature at that step
  double p2_base = 0.0;    ///< Eqn 9 calibration (pre-ramp)
  Stage1Result partial;    ///< result accumulated over completed steps
  std::array<std::uint64_t, 4> rng{};  ///< RNG stream state
};

/// Optional run-lifecycle instrumentation (see docs/ROBUSTNESS.md). All
/// pointers are non-owning and may be null; checkpoint emission and fault
/// polling never consume RNG state, so an instrumented run is
/// byte-identical to a bare one.
struct Stage1Hooks {
  recover::RunBudget* budget = nullptr;      ///< work budget + cancellation
  recover::FaultInjector* faults = nullptr;  ///< kill points (FaultPlan, watchdog)
  /// Called at the top of every `checkpoint_every`-th temperature step.
  std::function<void(const Stage1Cursor&)> on_checkpoint;
  int checkpoint_every = 5;
};

class Stage1Placer {
public:
  Stage1Placer(const Netlist& nl, Stage1Params params, std::uint64_t seed);

  /// Runs stage 1: sizes the core, calibrates p2, anneals, and leaves the
  /// final configuration in `placement`.
  Stage1Result run(Placement& placement);

  /// Restarts an interrupted run mid-schedule. `placement` must already
  /// hold the checkpointed cell states (see recover::apply_placement);
  /// the cursor supplies the rest. By construction the continuation is
  /// byte-identical to the uninterrupted same-seed run.
  Stage1Result resume(Placement& placement, const Stage1Cursor& cursor);

  /// Run-lifecycle hooks; set before run()/resume().
  void set_hooks(Stage1Hooks hooks) { hooks_ = std::move(hooks); }

  /// The estimator (valid after run()); stage 2 reuses its core region.
  const DynamicAreaEstimator& estimator() const { return estimator_; }

private:
  struct MoveOutcome {
    bool attempted_valid = false;
    bool accepted = false;
    double delta = 0.0;
  };

  /// Metropolis-judges the open transaction: evaluates it, then commits
  /// (folding the delta into `current_` and notifying the audit/fault
  /// hooks) or reverts. `what` labels the audit checkpoint.
  MoveOutcome decide(MoveTxn& txn, double t, const char* what);

  MoveOutcome try_displacement(MoveTxn& txn, CellId i, Point target, double t);
  MoveOutcome try_orient_change(MoveTxn& txn, CellId i, Orient o, double t);
  MoveOutcome try_interchange(const Placement& p, MoveTxn& txn, CellId i,
                              CellId j, bool invert_aspects, double t);
  MoveOutcome try_pin_move(MoveTxn& txn, CellId i, double t);
  MoveOutcome try_aspect_change(MoveTxn& txn, CellId i, double t);
  MoveOutcome try_instance_change(const Placement& p, MoveTxn& txn, CellId i,
                                  double t);

  Stage1Result run_impl(Placement& placement, const Stage1Cursor* cursor);

  /// One improvements-only sweep (T = 0): the graceful wind-down after a
  /// budget expiry or cancellation.
  void quench(Placement& placement, MoveTxn& txn, const Rect& core,
              long long inner);

  const Netlist& nl_;
  Stage1Params params_;
  Rng rng_;
  DynamicAreaEstimator estimator_;
  Stage1Hooks hooks_;
  CostTerms current_;  ///< running totals, resynced each temperature step
  CostAudit* audit_ = nullptr;  ///< drift checkpoints, set for the run() scope
};

}  // namespace tw
