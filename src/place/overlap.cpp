#include "place/overlap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/contracts.hpp"

namespace tw {

namespace {

/// Bin-axis cap as a function of circuit size. 64x64 = 4096 bins keeps
/// the index footprint small with single-digit candidates per bin up to
/// ~1k cells; past that a fixed cap would pack ~n/4096 cells into every
/// bin and the candidate sweep would degrade toward quadratic. Scaling
/// the cap with 2*sqrt(n) holds per-bin occupancy roughly constant
/// through the SoC tiers (1k-10k cells), with a 256 ceiling bounding the
/// grid at 64k bins. Circuits at or below 1024 cells get the historic 64,
/// so existing placements and fingerprints are untouched.
int max_bins_per_axis(std::size_t num_cells) {
  const double want = 2.0 * std::sqrt(static_cast<double>(num_cells));
  return std::clamp(static_cast<int>(want), 64, 256);
}

}  // namespace

OverlapEngine::OverlapEngine(const Placement& placement,
                             const DynamicAreaEstimator& est)
    : placement_(&placement), estimator_(&est), core_(est.core()) {
  const std::size_t n = placement.netlist().num_cells();
  expansion_.assign(n, {0, 0, 0, 0});
  tiles_.resize(n);
  bbox_.assign(n, Rect{});
  refresh_all();
}

OverlapEngine::OverlapEngine(const Placement& placement, Rect core,
                             std::vector<std::array<Coord, 4>> static_expansions)
    : placement_(&placement), core_(core) {
  const std::size_t n = placement.netlist().num_cells();
  if (static_expansions.empty()) static_expansions.assign(n, {0, 0, 0, 0});
  if (static_expansions.size() != n)
    throw std::invalid_argument("OverlapEngine: expansion count mismatch");
  expansion_ = std::move(static_expansions);
  tiles_.resize(n);
  bbox_.assign(n, Rect{});
  refresh_all();
}

void OverlapEngine::refresh(CellId c) {
  TW_ASSERT(c >= 0 && static_cast<std::size_t>(c) < tiles_.size(),
            "cell=", c, " of ", tiles_.size());
  const bool indexed = !bins_.empty();
  if (indexed) bins_remove(c);
  if (estimator_) {
    const CellState& st = placement_->state(c);
    expansion_[static_cast<std::size_t>(c)] = estimator_->side_expansions(
        c, st.instance, st.orient, st.center);
  }
  recache_tiles(c);
  if (indexed) bins_insert(c);
}

void OverlapEngine::refresh_all() {
  const auto n = static_cast<CellId>(placement_->netlist().num_cells());
  bins_.clear();  // suspend incremental maintenance during the sweep
  for (CellId c = 0; c < n; ++c) refresh(c);
  rebuild_index();
}

void OverlapEngine::recache_tiles(CellId c) {
  const auto& e = expansion_[static_cast<std::size_t>(c)];
  TW_ASSERT(e[0] >= 0 && e[1] >= 0 && e[2] >= 0 && e[3] >= 0,
            "cell=", c, " negative expansion (", e[0], ", ", e[1], ", ",
            e[2], ", ", e[3], ")");
  auto tiles = placement_->absolute_tiles(c);
  for (auto& t : tiles) t = t.inflated(e[0], e[1], e[2], e[3]);
  // Default Rect{} is the valid degenerate point (0,0), which would leak
  // the origin into every union — seed with an explicitly empty rect.
  Rect box{0, 0, -1, -1};
  for (const auto& t : tiles) {
    if (!box.valid()) {
      box = t;
    } else {
      box.xlo = std::min(box.xlo, t.xlo);
      box.xhi = std::max(box.xhi, t.xhi);
      box.ylo = std::min(box.ylo, t.ylo);
      box.yhi = std::max(box.yhi, t.yhi);
    }
  }
  tiles_[static_cast<std::size_t>(c)] = std::move(tiles);
  bbox_[static_cast<std::size_t>(c)] = box;
}

void OverlapEngine::set_expansions(CellId c, std::array<Coord, 4> e) {
  TW_REQUIRE(c >= 0 && static_cast<std::size_t>(c) < expansion_.size(),
             "cell=", c, " of ", expansion_.size());
  const bool indexed = !bins_.empty();
  if (indexed) bins_remove(c);
  expansion_[static_cast<std::size_t>(c)] = e;
  recache_tiles(c);
  if (indexed) bins_insert(c);
}

void OverlapEngine::save_cell(CellId c, CellCkpt& out) const {
  const auto k = static_cast<std::size_t>(c);
  out.expansion = expansion_[k];
  out.tiles = tiles_[k];  // copy-assign: the checkpoint's capacity is reused
  out.bbox = bbox_[k];
}

void OverlapEngine::rollback_cell(CellId c, const CellCkpt& ckpt) {
  const auto k = static_cast<std::size_t>(c);
  const bool indexed = !bins_.empty();
  if (indexed) bins_remove(c);
  expansion_[k] = ckpt.expansion;
  tiles_[k] = ckpt.tiles;
  bbox_[k] = ckpt.bbox;
  if (indexed) bins_insert(c);
}

void OverlapEngine::rebuild_index() {
  const std::size_t n = tiles_.size();
  // Grid extent: union of the current expanded bboxes (fall back to the
  // core). Cells that later drift outside clamp into the boundary bins,
  // which is conservative, never wrong.
  Rect extent{0, 0, -1, -1};  // empty, not the degenerate origin point
  Coord dim_sum = 0;
  std::size_t dim_count = 0;
  for (const Rect& b : bbox_) {
    if (!b.valid()) continue;
    if (!extent.valid()) {
      extent = b;
    } else {
      extent.xlo = std::min(extent.xlo, b.xlo);
      extent.xhi = std::max(extent.xhi, b.xhi);
      extent.ylo = std::min(extent.ylo, b.ylo);
      extent.yhi = std::max(extent.yhi, b.yhi);
    }
    dim_sum += b.width() + b.height();
    dim_count += 2;
  }
  if (!extent.valid()) extent = core_;
  // Bins of roughly one average cell span keep per-bin occupancy low
  // without exploding the number of bins a moving cell straddles.
  const Coord target = dim_count > 0
                           ? std::max<Coord>(1, dim_sum / static_cast<Coord>(dim_count))
                           : Coord{1};
  grid_ = BinGrid::make(extent, target, max_bins_per_axis(n));
  bins_.assign(static_cast<std::size_t>(grid_.num_bins()), {});
  bin_range_.assign(n, BinGrid::Range{});
  oversize_.clear();
  oversize_pos_.assign(n, -1);
  mark_.assign(n, 0);
  epoch_ = 0;
  for (CellId c = 0; c < static_cast<CellId>(n); ++c) bins_insert(c);
}

void OverlapEngine::bins_insert(CellId c) {
  const BinGrid::Range r = grid_.range(bbox_[static_cast<std::size_t>(c)]);
  bin_range_[static_cast<std::size_t>(c)] = r;
  const long covered = static_cast<long>(r.x1 - r.x0 + 1) *
                       static_cast<long>(r.y1 - r.y0 + 1);
  if (covered * 4 >= static_cast<long>(grid_.num_bins())) {
    oversize_pos_[static_cast<std::size_t>(c)] =
        static_cast<int>(oversize_.size());
    oversize_.push_back(c);
    return;
  }
  for (int by = r.y0; by <= r.y1; ++by)
    for (int bx = r.x0; bx <= r.x1; ++bx)
      bins_[static_cast<std::size_t>(grid_.index(bx, by))].push_back(c);
}

void OverlapEngine::bins_remove(CellId c) {
  const int pos = oversize_pos_[static_cast<std::size_t>(c)];
  if (pos >= 0) {
    oversize_[static_cast<std::size_t>(pos)] = oversize_.back();
    oversize_pos_[static_cast<std::size_t>(oversize_.back())] = pos;
    oversize_.pop_back();
    oversize_pos_[static_cast<std::size_t>(c)] = -1;
    return;
  }
  const BinGrid::Range r = bin_range_[static_cast<std::size_t>(c)];
  for (int by = r.y0; by <= r.y1; ++by)
    for (int bx = r.x0; bx <= r.x1; ++bx) {
      auto& bin = bins_[static_cast<std::size_t>(grid_.index(bx, by))];
      const auto it = std::find(bin.begin(), bin.end(), c);
      TW_ASSERT(it != bin.end(), "cell=", c, " missing from bin (", bx, ", ",
                by, ")");
      *it = bin.back();
      bin.pop_back();
    }
}

void OverlapEngine::gather_candidates(CellId c) const {
  cand_.clear();
  cand_area_.clear();
  const Rect& box = bbox_[static_cast<std::size_t>(c)];
  if (oversize_pos_[static_cast<std::size_t>(c)] >= 0) {
    // An oversize cell would visit nearly every bin; a flat sweep over
    // all cells is cheaper and trivially complete.
    const auto n = static_cast<CellId>(tiles_.size());
    for (CellId j = 0; j < n; ++j) {
      if (j == c) continue;
      const Coord a = box.overlap_area(bbox_[static_cast<std::size_t>(j)]);
      if (a > 0) {
        cand_.push_back(j);
        cand_area_.push_back(a);
      }
    }
    return;
  }
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  const BinGrid::Range r = bin_range_[static_cast<std::size_t>(c)];
  for (int by = r.y0; by <= r.y1; ++by)
    for (int bx = r.x0; bx <= r.x1; ++bx)
      for (const CellId j : bins_[static_cast<std::size_t>(grid_.index(bx, by))]) {
        if (j == c) continue;
        auto& m = mark_[static_cast<std::size_t>(j)];
        if (m == epoch_) continue;
        m = epoch_;
        // Pairs whose expanded bboxes share no positive area cannot have
        // positive tile overlap, so dropping them keeps the sum exact.
        const Coord a = box.overlap_area(bbox_[static_cast<std::size_t>(j)]);
        if (a > 0) {
          cand_.push_back(j);
          cand_area_.push_back(a);
        }
      }
  // Oversize cells are indexed in the flat list, not the bins; they are
  // distinct from the bin candidates by construction.
  for (const CellId j : oversize_) {
    if (j == c) continue;
    const Coord a = box.overlap_area(bbox_[static_cast<std::size_t>(j)]);
    if (a > 0) {
      cand_.push_back(j);
      cand_area_.push_back(a);
    }
  }
}

Coord OverlapEngine::pair_overlap(CellId i, CellId j) const {
  if (bbox_[static_cast<std::size_t>(i)].overlap_area(
          bbox_[static_cast<std::size_t>(j)]) <= 0)
    return 0;
  const auto& ti = tiles_[static_cast<std::size_t>(i)];
  const auto& tj = tiles_[static_cast<std::size_t>(j)];
  Coord sum = 0;
  for (const auto& a : ti)
    for (const auto& b : tj) sum += a.overlap_area(b);
  return sum;
}

Coord OverlapEngine::border_overlap(CellId c) const {
  Coord sum = 0;
  for (const auto& t : tiles_[static_cast<std::size_t>(c)])
    sum += t.area() - t.intersect(core_).area();
  return sum;
}

Coord OverlapEngine::cell_overlap(CellId c) const {
  gather_candidates(c);
  Coord sum = border_overlap(c);
  const auto& tc = tiles_[static_cast<std::size_t>(c)];
  const bool c1tile = tc.size() == 1;
  for (std::size_t k = 0; k < cand_.size(); ++k) {
    const CellId j = cand_[k];
    const auto& tj = tiles_[static_cast<std::size_t>(j)];
    if (c1tile && tj.size() == 1) {
      // Single tile each: the expanded tile is its own bbox, so the
      // overlap area the gather computed is already the pair overlap.
      sum += cand_area_[k];
    } else {
      for (const auto& a : tc)
        for (const auto& b : tj) sum += a.overlap_area(b);
    }
  }
  return sum;
}

Coord OverlapEngine::total_overlap() const {
  const auto n = static_cast<CellId>(tiles_.size());
  Coord sum = 0;
  for (CellId i = 0; i < n; ++i) {
    sum += border_overlap(i);
    gather_candidates(i);
    const auto& ti = tiles_[static_cast<std::size_t>(i)];
    const bool i1tile = ti.size() == 1;
    for (std::size_t k = 0; k < cand_.size(); ++k) {
      const CellId j = cand_[k];
      if (j <= i) continue;
      const auto& tj = tiles_[static_cast<std::size_t>(j)];
      if (i1tile && tj.size() == 1) {
        sum += cand_area_[k];
      } else {
        for (const auto& a : ti)
          for (const auto& b : tj) sum += a.overlap_area(b);
      }
    }
  }
  return sum;
}

Coord OverlapEngine::total_overlap_naive() const {
  const auto n = static_cast<CellId>(tiles_.size());
  Coord sum = 0;
  for (CellId i = 0; i < n; ++i) {
    sum += border_overlap(i);
    const auto& ti = tiles_[static_cast<std::size_t>(i)];
    for (CellId j = i + 1; j < n; ++j) {
      const auto& tj = tiles_[static_cast<std::size_t>(j)];
      for (const auto& a : ti)
        for (const auto& b : tj) sum += a.overlap_area(b);
    }
  }
  return sum;
}

}  // namespace tw
